#include <gtest/gtest.h>

#include <cmath>

#include "core/many_sources.hpp"
#include "loss/congestion_process.hpp"
#include "loss/droppers.hpp"
#include "model/throughput_function.hpp"

namespace {

using namespace ebrc;
using core::analyze_many_sources;

loss::CongestionProcess two_state(double p_good, double p_bad, std::uint64_t seed = 3) {
  return loss::CongestionProcess({{p_good, 1.0}, {p_bad, 1.0}}, seed);
}

TEST(ManySources, NonAdaptiveEqualsTimeAverage) {
  const auto z = two_state(0.01, 0.09);
  const auto f = model::make_throughput_function("sqrt", 0.1);
  const auto r = analyze_many_sources(z, *f, 0.0);
  // Lambda = 0: both states perceive p_bar, x_i constant, Eq. 13 collapses.
  EXPECT_NEAR(r.sampled_loss_rate, 0.05, 1e-12);
  EXPECT_NEAR(r.nonadaptive_loss_rate, 0.05, 1e-12);
  EXPECT_NEAR(r.per_state_rate[0], r.per_state_rate[1], 1e-12);
}

TEST(ManySources, FullyResponsiveHandComputed) {
  // pi = (1/2, 1/2), p = (0.01, 0.09), x_i = f(p_i) with SQRT:
  // x_i proportional to 1/sqrt(p_i) -> weights 10 and 10/3.
  const auto z = two_state(0.01, 0.09);
  const auto f = model::make_throughput_function("sqrt", 0.1);
  const auto r = analyze_many_sources(z, *f, 1.0);
  const double w0 = 1.0 / std::sqrt(0.01);
  const double w1 = 1.0 / std::sqrt(0.09);
  const double expected = (0.01 * w0 + 0.09 * w1) / (w0 + w1);
  EXPECT_NEAR(r.sampled_loss_rate, expected, 1e-12);
  EXPECT_LT(r.sampled_loss_rate, 0.05);  // below the time average
}

TEST(ManySources, Claim3OrderingAndMonotonicity) {
  // p' = p(1) <= p(lambda) <= p(0) = p'', monotonically in lambda.
  const auto z = two_state(0.005, 0.12);
  const auto f = model::make_throughput_function("pftk-simplified", 0.05);
  double prev = -1.0;
  for (double lambda : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    const auto r = analyze_many_sources(z, *f, lambda);
    EXPECT_GE(r.sampled_loss_rate, prev) << "lambda=" << lambda;
    EXPECT_GE(r.sampled_loss_rate, r.responsive_loss_rate - 1e-12);
    EXPECT_LE(r.sampled_loss_rate, r.nonadaptive_loss_rate + 1e-12);
    prev = r.sampled_loss_rate;
  }
}

TEST(ManySources, LargerWindowMeansLessResponsive) {
  // Figure 7's L-dependence through the responsiveness map: larger L =>
  // smaller responsiveness => larger sampled loss rate.
  const auto z = two_state(0.01, 0.10);
  const auto f = model::make_throughput_function("pftk-simplified", 0.05);
  const double events_per_state = 16.0;
  double prev = -1.0;
  for (std::size_t L : {2u, 4u, 8u, 16u, 32u}) {
    const double lambda = core::responsiveness_for_window(events_per_state, L);
    const auto r = analyze_many_sources(z, *f, lambda);
    EXPECT_GE(r.sampled_loss_rate, prev) << "L=" << L;
    prev = r.sampled_loss_rate;
  }
}

TEST(ManySources, MatchesModulatedDropperSimulation) {
  // Monte-Carlo cross-check of Eq. 13: a CBR source through a modulated
  // dropper measures p'' = the analytic nonadaptive rate.
  loss::CongestionProcess z({{0.02, 5.0}, {0.10, 5.0}}, 11);
  const double analytic = z.nonadaptive_loss_rate();
  loss::ModulatedDropper dropper(std::move(z), 13);
  int drops = 0;
  constexpr int kN = 400000;
  const double rate = 100.0;  // packets/s
  for (int i = 0; i < kN; ++i) {
    drops += dropper.drop(static_cast<double>(i) / rate);
  }
  EXPECT_NEAR(static_cast<double>(drops) / kN, analytic, 0.004);
}

TEST(ManySources, Validation) {
  const auto z = two_state(0.01, 0.09);
  const auto f = model::make_throughput_function("sqrt", 0.1);
  EXPECT_THROW((void)analyze_many_sources(z, *f, -0.1), std::invalid_argument);
  EXPECT_THROW((void)analyze_many_sources(z, *f, 1.1), std::invalid_argument);
  EXPECT_THROW((void)core::responsiveness_for_window(0.0, 8), std::invalid_argument);
}

}  // namespace
