// Round-trip of the shared bench flag plumbing (bench_common.hpp): every
// kSweepFlags flag must land in the right BenchArgs field, and the strict
// numeric parsing must reject unit-suffixed or truncated spellings at
// construction — BEFORE hours of simulation, not after.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using ebrc::bench::BenchArgs;

/// argv adapter: BenchArgs wants (argc, char**).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("prog"));
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(BenchArgs, SweepFlagsRoundTrip) {
  Argv a({"--full", "--seed=9223372036854775819", "--reps=3", "--jobs=4",
          "--duration=12.5", "--cache=/tmp/cache", "--shard-index=1", "--shard-count=2",
          "--summary-out=sum.txt", "--csv=out.csv", "--keep-going", "--max-retries=2",
          "--retry-backoff=0.5", "--cell-deadline=30", "--events-out=ev.jsonl"});
  BenchArgs args(a.argc(), a.argv(), ebrc::bench::kSweepFlags);
  args.cli.finish();
  EXPECT_TRUE(args.full);
  EXPECT_EQ(args.seed, 9223372036854775819ull);  // full uint64 range
  EXPECT_EQ(args.reps, 3);
  EXPECT_EQ(args.jobs, 4u);
  ASSERT_TRUE(args.duration_override.has_value());
  EXPECT_DOUBLE_EQ(*args.duration_override, 12.5);
  ASSERT_TRUE(args.cache_dir.has_value());
  EXPECT_EQ(*args.cache_dir, "/tmp/cache");
  EXPECT_EQ(args.shard_index, 1u);
  EXPECT_EQ(args.shard_count, 2u);
  ASSERT_TRUE(args.summary_out.has_value());
  EXPECT_EQ(*args.summary_out, "sum.txt");
  ASSERT_TRUE(args.csv_path.has_value());
  EXPECT_EQ(*args.csv_path, "out.csv");
  EXPECT_TRUE(args.keep_going);
  EXPECT_EQ(args.max_retries, 2);
  EXPECT_DOUBLE_EQ(args.retry_backoff_s, 0.5);
  EXPECT_DOUBLE_EQ(args.cell_deadline_s, 30.0);
  ASSERT_TRUE(args.events_out.has_value());
  EXPECT_EQ(*args.events_out, "ev.jsonl");
  EXPECT_DOUBLE_EQ(args.seconds(1.0, 2.0), 12.5);  // override wins over --full
}

TEST(BenchArgs, DefaultsWhenNoFlags) {
  Argv a({});
  BenchArgs args(a.argc(), a.argv(), ebrc::bench::kSweepFlags);
  EXPECT_FALSE(args.full);
  EXPECT_EQ(args.seed, 1ull);
  EXPECT_EQ(args.reps, 1);
  EXPECT_EQ(args.jobs, 0u);
  EXPECT_EQ(args.shard_count, 1u);
  EXPECT_FALSE(args.cache_dir);
  EXPECT_FALSE(args.duration_override);
  EXPECT_DOUBLE_EQ(args.seconds(1.0, 2.0), 1.0);
}

TEST(BenchArgs, StrictParsingRejectsUnitSuffixes) {
  // The historical failure: --cell-deadline=10s parsed as 10 via bare stod.
  {
    Argv a({"--cell-deadline=10s"});
    EXPECT_THROW(BenchArgs(a.argc(), a.argv(), ebrc::bench::kSweepFlags),
                 std::invalid_argument);
  }
  {
    Argv a({"--duration=5min"});
    EXPECT_THROW(BenchArgs(a.argc(), a.argv(), ebrc::bench::kSweepFlags),
                 std::invalid_argument);
  }
  {
    Argv a({"--reps=1e2"});  // stoi would read 1
    EXPECT_THROW(BenchArgs(a.argc(), a.argv(), ebrc::bench::kSweepFlags),
                 std::invalid_argument);
  }
  {
    Argv a({"--retry-backoff=0.5sec"});
    EXPECT_THROW(BenchArgs(a.argc(), a.argv(), ebrc::bench::kSweepFlags),
                 std::invalid_argument);
  }
}

TEST(BenchArgs, RangeGuardsStillFire) {
  {
    Argv a({"--reps=0"});
    EXPECT_THROW(BenchArgs(a.argc(), a.argv(), ebrc::bench::kSweepFlags),
                 std::invalid_argument);
  }
  {
    Argv a({"--shard-index=2", "--shard-count=2", "--cache=/tmp/c"});
    EXPECT_THROW(BenchArgs(a.argc(), a.argv(), ebrc::bench::kSweepFlags),
                 std::invalid_argument);
  }
  {
    Argv a({"--cell-deadline=-1"});
    EXPECT_THROW(BenchArgs(a.argc(), a.argv(), ebrc::bench::kSweepFlags),
                 std::invalid_argument);
  }
}

}  // namespace
