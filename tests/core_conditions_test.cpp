#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/conditions.hpp"
#include "core/weights.hpp"
#include "loss/loss_process.hpp"
#include "loss/markov_modulated.hpp"
#include "model/throughput_function.hpp"
#include "util/math.hpp"

namespace {

using namespace ebrc::core;
using ebrc::loss::Ar1Process;
using ebrc::loss::ShiftedExponentialProcess;

constexpr double kRtt = 1.0;

std::vector<double> draw_intervals(ebrc::loss::LossIntervalProcess& proc, int n) {
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(proc.next());
  return v;
}

TEST(FunctionConditions, SqrtSatisfiesF1AndF2) {
  auto f = ebrc::model::make_throughput_function("sqrt", kRtt);
  const auto c = check_function_conditions(*f, 2.0, 500.0);
  EXPECT_TRUE(c.F1);
  EXPECT_TRUE(c.F2);
  EXPECT_FALSE(c.F2c);
}

TEST(FunctionConditions, PftkSimplifiedF1EverywhereF2OnlyRareLoss) {
  auto f = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  EXPECT_TRUE(check_function_conditions(*f, 2.0, 500.0).F1);
  // Heavy-loss region: strictly convex h -> (F2c).
  const auto heavy = check_function_conditions(*f, 1.5, 4.0);
  EXPECT_FALSE(heavy.F2);
  EXPECT_TRUE(heavy.F2c);
  // Rare-loss region: concave h -> (F2).
  const auto rare = check_function_conditions(*f, 50.0, 500.0);
  EXPECT_TRUE(rare.F2);
  EXPECT_FALSE(rare.F2c);
}

TEST(FunctionConditions, Validation) {
  auto f = ebrc::model::make_throughput_function("sqrt", kRtt);
  EXPECT_THROW((void)check_function_conditions(*f, -1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)check_function_conditions(*f, 5.0, 2.0), std::invalid_argument);
}

TEST(CovarianceConditions, IidIntervalsSatisfyC1) {
  auto f = ebrc::model::make_throughput_function("sqrt", kRtt);
  ShiftedExponentialProcess proc(0.05, 0.9, 17);
  const auto intervals = draw_intervals(proc, 200000);
  // cov is in packets^2 (theta has mean 20 here), so the i.i.d. "zero" needs
  // a raw-unit Monte-Carlo tolerance; the normalized form is what the paper
  // plots and is tight.
  const auto c = check_covariance_conditions(*f, intervals, tfrc_weights(8), 1.0);
  EXPECT_TRUE(c.C1);  // cov ~ 0 for i.i.d.
  EXPECT_NEAR(c.cov_theta_thetahat * ebrc::util::sq(0.05), 0.0, 5e-3);
  EXPECT_TRUE(c.V);
  EXPECT_TRUE(c.C2);  // S = theta/X and X is a function of past intervals
}

TEST(CovarianceConditions, PositivelyCorrelatedIntervalsViolateC1) {
  auto f = ebrc::model::make_throughput_function("sqrt", kRtt);
  Ar1Process proc(20.0, 0.5, 0.8, 23);
  const auto intervals = draw_intervals(proc, 200000);
  const auto c = check_covariance_conditions(*f, intervals, tfrc_weights(8));
  EXPECT_FALSE(c.C1);
  EXPECT_GT(c.cov_theta_thetahat, 0.0);
}

TEST(CovarianceConditions, PhaseProcessViolatesC1) {
  // Slow phases make hat-theta a good predictor of theta (Sec. III-B.2).
  auto f = ebrc::model::make_throughput_function("sqrt", kRtt);
  auto proc = ebrc::loss::make_two_phase(200.0, 10.0, 200.0, 29);
  const auto intervals = draw_intervals(proc, 300000);
  const auto c = check_covariance_conditions(*f, intervals, tfrc_weights(8));
  EXPECT_GT(c.cov_theta_thetahat, 0.0);
  EXPECT_FALSE(c.C1);
}

TEST(Theorem1Bound, Equation10) {
  auto f = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  const double p = 0.1;
  // cov <= 0: the bound is at most f(p).
  EXPECT_LE(theorem1_bound(*f, p, -5.0), f->rate(p));
  EXPECT_NEAR(theorem1_bound(*f, p, 0.0), f->rate(p), 1e-12);
  // Small positive cov: bound slightly above f(p), still finite.
  const double b = theorem1_bound(*f, p, 1.0);
  EXPECT_GT(b, f->rate(p));
  EXPECT_TRUE(std::isfinite(b));
  // Huge positive cov degenerates.
  EXPECT_TRUE(std::isinf(theorem1_bound(*f, p, 1e9)));
  EXPECT_THROW((void)theorem1_bound(*f, 0.0, 0.0), std::invalid_argument);
}

TEST(Theorem1Bound, HoldsOnSimulatedRuns) {
  // For every run the measured throughput must respect Eq. 10 evaluated at
  // the measured covariance (Theorem 1's quantitative form).
  auto f = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ShiftedExponentialProcess proc(0.1, 0.9, seed);
    const auto r =
        run_basic_control(*f, proc, tfrc_weights(8), {.events = 400000, .warmup = 100});
    const double bound = theorem1_bound(*f, r.p, r.cov_theta_thetahat);
    EXPECT_LE(r.throughput, bound * 1.005) << "seed " << seed;  // 0.5% MC slack
  }
}

TEST(Proposition4, BoundForPftkStandard) {
  auto f = ebrc::model::make_throughput_function("pftk", kRtt);
  const double r = proposition4_bound(*f, 1.5, 20.0, 20000);
  EXPECT_NEAR(r, 1.0026, 5e-4);
  // The overshoot of a (C1)-satisfying run stays below the Prop-4 cap.
  ShiftedExponentialProcess proc(0.2, 0.9, 5);
  const auto run =
      run_basic_control(*f, proc, tfrc_weights(8), {.events = 300000, .warmup = 100});
  EXPECT_LE(run.normalized, r + 0.01);
}

TEST(Proposition4, BoundIsOneForConvexG) {
  auto f = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  EXPECT_NEAR(proposition4_bound(*f, 1.5, 100.0), 1.0, 1e-9);
}

TEST(Theorem2, NonConservativePathIsRealizable) {
  // Theorem 2 part 2 prerequisites measured on an audio-control run with
  // PFTK and heavy loss: (C2c) holds (cov ~ 0), (V) holds, h strictly convex
  // where the estimator lives -> the run overshoots f(p).
  auto f = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  const double p = 0.25;
  const auto run = run_audio_control(*f, 50.0, p, tfrc_weights(4), false, 11,
                                     {.events = 300000, .warmup = 100});
  // The estimator concentrates near 1/p = 4 packets, inside the strictly
  // convex stretch of h(x) = f(1/x) (the inflection to concavity sits
  // further right; Figure 1, left panel).
  const auto cond = check_function_conditions(*f, 1.5, 4.5);
  EXPECT_TRUE(cond.F2c);
  EXPECT_GT(run.normalized, 1.0);
}

}  // namespace
