#include <gtest/gtest.h>

#include <memory>

#include "net/dumbbell.hpp"
#include "net/link.hpp"
#include "net/probe_senders.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ebrc::net;
using ebrc::sim::Simulator;

Packet data_packet(std::int64_t seq, double bytes = 1000.0) {
  Packet p;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TEST(DropTail, AcceptsUpToCapacityThenDrops) {
  DropTailQueue q(3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.enqueue(data_packet(i), 0.0));
  EXPECT_FALSE(q.enqueue(data_packet(3), 0.0));
  EXPECT_EQ(q.packets(), 3u);
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.accepted(), 3u);
  // FIFO order.
  EXPECT_EQ(q.dequeue(0.0)->seq, 0);
  EXPECT_EQ(q.dequeue(0.0)->seq, 1);
  EXPECT_TRUE(q.enqueue(data_packet(4), 0.0));  // room again
  EXPECT_THROW(DropTailQueue(0), std::invalid_argument);
}

TEST(Red, NeverDropsBelowMinThreshold) {
  RedParams prm;
  prm.buffer_packets = 100;
  prm.min_th = 20;
  prm.max_th = 60;
  RedQueue q(prm, 1);
  // Alternate enqueue/dequeue keeping the instantaneous (and thus average)
  // queue well below min_th: no drops may occur.
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(i), t));
    if (q.packets() > 5) (void)q.dequeue(t);
    t += 1e-3;
  }
  EXPECT_EQ(q.drops(), 0u);
}

TEST(Red, DropsEverythingAboveMaxThresholdNonGentle) {
  RedParams prm;
  prm.buffer_packets = 200;
  prm.min_th = 5;
  prm.max_th = 20;
  prm.weight = 1.0;  // average == instantaneous, forces the regime
  RedQueue q(prm, 1);
  double t = 0.0;
  int accepted_above = 0;
  for (int i = 0; i < 100; ++i) {
    const bool ok = q.enqueue(data_packet(i), t);
    if (q.average_queue() >= prm.max_th && ok) ++accepted_above;
    t += 1e-4;
  }
  EXPECT_EQ(accepted_above, 0);  // forced drop region
  EXPECT_GT(q.drops(), 0u);
}

TEST(Red, ProbabilisticRegionDropsSome) {
  RedParams prm;
  prm.buffer_packets = 400;
  prm.min_th = 10;
  prm.max_th = 300;
  prm.max_p = 0.2;
  prm.weight = 1.0;
  RedQueue q(prm, 7);
  double t = 0.0;
  // Hold the queue between thresholds.
  for (int i = 0; i < 4000; ++i) {
    (void)q.enqueue(data_packet(i), t);
    if (q.packets() > 100) (void)q.dequeue(t);
    t += 1e-4;
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_GT(q.accepted(), 0u);
  EXPECT_LT(static_cast<double>(q.drops()) / static_cast<double>(q.accepted()), 0.5);
}

TEST(Red, BdpParameterDerivation) {
  // The paper's ns-2 setup: 15 Mb/s, 50 ms, 1000-B packets -> BDP ~ 93.75
  // packets; buffer 5/2, thresholds 1/4 and 5/4 of that.
  const auto prm = red_params_for_bdp(15e6, 0.050);
  EXPECT_NEAR(static_cast<double>(prm.buffer_packets), 234.0, 1.0);
  EXPECT_NEAR(prm.min_th, 23.4, 0.1);
  EXPECT_NEAR(prm.max_th, 117.2, 0.2);
  EXPECT_THROW((void)red_params_for_bdp(-1, 0.05), std::invalid_argument);
}

TEST(Red, Validation) {
  RedParams bad;
  bad.min_th = 10;
  bad.max_th = 5;
  EXPECT_THROW(RedQueue(bad, 1), std::invalid_argument);
}

TEST(Link, SerializationAndPropagationTiming) {
  Simulator sim;
  std::vector<double> arrivals;
  // 8000-bit packets at 1 Mb/s -> 8 ms serialization; 10 ms propagation.
  Link link(sim, std::make_unique<DropTailQueue>(100), 1e6, 0.010,
            [&](const Packet&) { arrivals.push_back(sim.now()); });
  link.send(data_packet(0));
  link.send(data_packet(1));  // queued behind packet 0
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.018, 1e-9);  // 8 ms + 10 ms
  EXPECT_NEAR(arrivals[1], 0.026, 1e-9);  // back-to-back serialization
  EXPECT_EQ(link.delivered(), 2u);
}

TEST(Link, UtilizationUnderLoad) {
  Simulator sim;
  Link link(sim, std::make_unique<DropTailQueue>(10000), 1e6, 0.0, [](const Packet&) {});
  // Offer exactly 50% load: one 1000-B packet every 16 ms against 8 ms tx.
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(i * 0.016, [&link, i] { link.send(data_packet(i)); });
  }
  sim.run();
  EXPECT_NEAR(link.utilization(), 0.5, 0.02);
}

TEST(DelayPipe, FixedDelay) {
  Simulator sim;
  double arrival = -1.0;
  DelayPipe pipe(sim, 0.025, [&](const Packet&) { arrival = sim.now(); });
  sim.schedule_at(1.0, [&] { pipe.send(data_packet(0)); });
  sim.run();
  EXPECT_NEAR(arrival, 1.025, 1e-12);
  EXPECT_THROW(DelayPipe(sim, -0.1, [](const Packet&) {}), std::invalid_argument);
}

TEST(Dumbbell, RoutesPerFlowAndMeasuresRtt) {
  Simulator sim;
  Dumbbell net(sim, std::make_unique<DropTailQueue>(100), 10e6, 0.001);
  const int a = net.add_flow(0.004, 0.005);
  const int b = net.add_flow(0.009, 0.010);
  int got_a = 0, got_b = 0;
  double echo_back_at = -1.0;
  net.on_data_at_receiver(a, [&](const Packet& p) {
    ++got_a;
    Packet ack;
    ack.kind = PacketKind::kAck;
    ack.echo_time = p.send_time;
    net.send_back(a, ack);
  });
  net.on_data_at_receiver(b, [&](const Packet&) { ++got_b; });
  net.on_packet_at_sender(a, [&](const Packet&) { echo_back_at = sim.now(); });

  Packet p = data_packet(0);
  p.send_time = 0.0;
  net.send_data(a, p);
  net.send_data(b, data_packet(0));
  sim.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
  // RTT of flow a: 4 ms access + 0.8 ms tx + 1 ms shared prop + 5 ms back.
  EXPECT_NEAR(echo_back_at, 0.004 + 0.0008 + 0.001 + 0.005, 1e-9);
}

TEST(ProbeSender, MeasuresLossOnCongestedLink) {
  Simulator sim;
  // 1 Mb/s bottleneck = 125 pkt/s of 1000 B; probe at 250 pkt/s with a tiny
  // buffer loses roughly half its packets.
  Dumbbell net(sim, std::make_unique<DropTailQueue>(4), 1e6, 0.001);
  const int id = net.add_flow(0.001, 0.001);
  ProbeSender probe(net, id, 250.0, 1000.0, ProbePattern::kCbr, 0.01, 3);
  probe.start(0.0);
  sim.run_until(60.0);
  probe.stop();
  sim.run_until(61.0);
  EXPECT_GT(probe.sent(), 10000u);
  const double delivered_frac =
      static_cast<double>(probe.received()) / static_cast<double>(probe.sent());
  EXPECT_NEAR(delivered_frac, 0.5, 0.05);
  EXPECT_GT(probe.recorder().events(), 100u);
}

TEST(ProbeSender, NoLossOnUncongestedLink) {
  Simulator sim;
  Dumbbell net(sim, std::make_unique<DropTailQueue>(100), 10e6, 0.001);
  const int id = net.add_flow(0.001, 0.001);
  ProbeSender probe(net, id, 50.0, 1000.0, ProbePattern::kPoisson, 0.01, 3);
  probe.start(0.0);
  sim.run_until(30.0);
  EXPECT_EQ(probe.recorder().losses(), 0u);
  EXPECT_NEAR(static_cast<double>(probe.received()), static_cast<double>(probe.sent()), 3.0);
}

TEST(OnOff, AverageRateIsHalfPeakForSymmetricPeriods) {
  Simulator sim;
  Dumbbell net(sim, std::make_unique<DropTailQueue>(100000), 100e6, 0.0);
  const int id = net.add_flow(0.0, 0.0);
  OnOffSender bg(net, id, 400.0, 1000.0, 0.5, 0.5, 11);
  bg.start(0.0);
  sim.run_until(200.0);
  const double avg_rate = static_cast<double>(bg.sent()) / 200.0;
  EXPECT_NEAR(avg_rate, 200.0, 20.0);
}

}  // namespace
