#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/dumbbell.hpp"
#include "net/link.hpp"
#include "net/probe_senders.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ebrc::net;
using ebrc::sim::Simulator;

Packet data_packet(std::int64_t seq, double bytes = 1000.0) {
  Packet p;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TEST(Packet, StaysAtOneCacheLinePlusUnionArm) {
  // The per-hop copy cost: 56 bytes, trivially copyable, union-discriminated
  // by kind. A regression here taxes every packet of every run.
  EXPECT_EQ(sizeof(Packet), 56u);
  EXPECT_TRUE(std::is_trivially_copyable_v<Packet>);
}

TEST(DropTail, AcceptsUpToCapacityThenDrops) {
  Queue q = Queue::drop_tail(3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.enqueue(data_packet(i), 0.0));
  EXPECT_FALSE(q.enqueue(data_packet(3), 0.0));
  EXPECT_EQ(q.packets(0.0), 3u);
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.accepted(), 3u);
  // FIFO order.
  Packet out;
  ASSERT_TRUE(q.dequeue(out, 0.0));
  EXPECT_EQ(out.seq, 0);
  ASSERT_TRUE(q.dequeue(out, 0.0));
  EXPECT_EQ(out.seq, 1);
  EXPECT_TRUE(q.enqueue(data_packet(4), 0.0));  // room again
  EXPECT_THROW((void)Queue::drop_tail(0), std::invalid_argument);
}

TEST(DropTail, VirtualClockOccupancyDrainsWithServiceStarts) {
  // Link-mode admission: packets admitted with known serialization starts
  // stop counting against the buffer once the clock passes their start.
  Queue q = Queue::drop_tail(3);
  EXPECT_TRUE(q.admit(0.0, /*service_start=*/1.0));
  EXPECT_TRUE(q.admit(0.0, 2.0));
  EXPECT_TRUE(q.admit(0.0, 3.0));
  EXPECT_FALSE(q.admit(0.5, 4.0));  // still 3 waiting
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.packets(0.5), 3u);
  EXPECT_EQ(q.packets(1.0), 2u);  // packet 0 entered service
  EXPECT_TRUE(q.admit(2.5, 4.0));  // 1 waiting again
  EXPECT_EQ(q.packets(2.5), 2u);
  EXPECT_EQ(q.packets(4.0), 0u);  // everything in service
  EXPECT_EQ(q.accepted(), 4u);
}

TEST(Red, NeverDropsBelowMinThreshold) {
  RedParams prm;
  prm.buffer_packets = 100;
  prm.min_th = 20;
  prm.max_th = 60;
  Queue q = Queue::red(prm, 1);
  // Alternate enqueue/dequeue keeping the instantaneous (and thus average)
  // queue well below min_th: no drops may occur.
  double t = 0.0;
  Packet out;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(i), t));
    if (q.packets(t) > 5) {
      ASSERT_TRUE(q.dequeue(out, t));
    }
    t += 1e-3;
  }
  EXPECT_EQ(q.drops(), 0u);
}

TEST(Red, DropsEverythingAboveMaxThresholdNonGentle) {
  RedParams prm;
  prm.buffer_packets = 200;
  prm.min_th = 5;
  prm.max_th = 20;
  prm.weight = 1.0;  // average == instantaneous, forces the regime
  Queue q = Queue::red(prm, 1);
  double t = 0.0;
  int accepted_above = 0;
  for (int i = 0; i < 100; ++i) {
    const bool ok = q.enqueue(data_packet(i), t);
    if (q.average_queue() >= prm.max_th && ok) ++accepted_above;
    t += 1e-4;
  }
  EXPECT_EQ(accepted_above, 0);  // forced drop region
  EXPECT_GT(q.drops(), 0u);
}

TEST(Red, ProbabilisticRegionDropsSome) {
  RedParams prm;
  prm.buffer_packets = 400;
  prm.min_th = 10;
  prm.max_th = 300;
  prm.max_p = 0.2;
  prm.weight = 1.0;
  Queue q = Queue::red(prm, 7);
  double t = 0.0;
  Packet out;
  // Hold the queue between thresholds.
  for (int i = 0; i < 4000; ++i) {
    (void)q.enqueue(data_packet(i), t);
    if (q.packets(t) > 100) (void)q.dequeue(out, t);
    t += 1e-4;
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_GT(q.accepted(), 0u);
  EXPECT_LT(static_cast<double>(q.drops()) / static_cast<double>(q.accepted()), 0.5);
}

TEST(Red, CountSpreadingBoundsTheDropGap) {
  // Floyd & Jacobson's count mechanism turns the geometric inter-drop gap
  // into a (roughly uniform) bounded one: with pa = pb / (1 - count*pb), a
  // drop is FORCED within ceil(1/pb) accepted packets. Hold the average
  // mid-way between the thresholds so pb is constant and check the bound.
  RedParams prm;
  prm.buffer_packets = 4000;
  prm.min_th = 10;
  prm.max_th = 210;
  prm.max_p = 0.10;
  prm.weight = 1.0;  // average == instantaneous
  Queue q = Queue::red(prm, 9);
  const double held_queue = 110.0;  // avg - min_th = 100 of 200 -> pb = 0.05
  const int max_gap = static_cast<int>(std::ceil(1.0 / 0.05));  // 20
  double t = 0.0;
  Packet out;
  // Build the queue up to the held level first (drops are expected once the
  // average passes min_th — keep offering).
  while (q.packets(t) < static_cast<std::size_t>(held_queue)) {
    (void)q.enqueue(data_packet(0), t);
    t += 1e-5;
  }
  int gap = 0;
  int observed_max = 0;
  for (int i = 0; i < 100000; ++i) {
    t += 1e-5;
    if (q.enqueue(data_packet(i), t)) {
      ++gap;
      observed_max = std::max(observed_max, gap);
      ASSERT_TRUE(q.dequeue(out, t));  // hold the level
    } else {
      gap = 0;
    }
  }
  EXPECT_LE(observed_max, max_gap + 1);
  EXPECT_GT(q.drops(), 1000u);  // the regime was actually exercised
}

TEST(Red, IdleTimeCompensationDecaysAverageExactly) {
  // After an idle stretch of m mean-packet-times the average must shrink by
  // exactly (1 - w)^m before the arriving packet is counted.
  RedParams prm;
  prm.buffer_packets = 500;
  prm.min_th = 400;  // keep drops out of the test
  prm.max_th = 450;
  prm.weight = 0.01;
  prm.mean_packet_time = 1e-3;
  Queue q = Queue::red(prm, 1);
  double t = 0.0;
  // Build a nonzero average with a standing queue.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(i), t));
    t += 1e-4;
    Packet out;
    if (q.packets(t) > 50) {
      ASSERT_TRUE(q.dequeue(out, t));
    }
  }
  const double avg_before = q.average_queue();
  ASSERT_GT(avg_before, 10.0);
  // Drain; the queue goes idle at the time of the last dequeue.
  Packet out;
  while (q.packets(t) > 0) ASSERT_TRUE(q.dequeue(out, t));
  const double idle_s = 0.5;  // 500 mean packet times
  ASSERT_TRUE(q.enqueue(data_packet(0), t + idle_s));
  const double m = idle_s / prm.mean_packet_time;
  // The idle branch decays as if m empty slots passed; the arriving packet
  // itself is counted on the NEXT update, matching Floyd's pseudocode.
  const double expected = avg_before * std::pow(1.0 - prm.weight, m);
  EXPECT_NEAR(q.average_queue(), expected, 1e-9 * expected + 1e-12);
}

TEST(Red, BdpParameterDerivation) {
  // The paper's ns-2 setup: 15 Mb/s, 50 ms, 1000-B packets -> BDP ~ 93.75
  // packets; buffer 5/2, thresholds 1/4 and 5/4 of that.
  const auto prm = red_params_for_bdp(15e6, 0.050);
  EXPECT_NEAR(static_cast<double>(prm.buffer_packets), 234.0, 1.0);
  EXPECT_NEAR(prm.min_th, 23.4, 0.1);
  EXPECT_NEAR(prm.max_th, 117.2, 0.2);
  EXPECT_THROW((void)red_params_for_bdp(-1, 0.05), std::invalid_argument);
}

TEST(Red, Validation) {
  RedParams bad;
  bad.min_th = 10;
  bad.max_th = 5;
  EXPECT_THROW((void)Queue::red(bad, 1), std::invalid_argument);
}

TEST(Link, SerializationAndPropagationTiming) {
  Simulator sim;
  std::vector<double> arrivals;
  // 8000-bit packets at 1 Mb/s -> 8 ms serialization; 10 ms propagation.
  Link link(sim, Queue::drop_tail(100), 1e6, 0.010,
            [&](const Packet&) { arrivals.push_back(sim.now()); });
  link.send(data_packet(0));
  link.send(data_packet(1));  // queued behind packet 0
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.018, 1e-9);  // 8 ms + 10 ms
  EXPECT_NEAR(arrivals[1], 0.026, 1e-9);  // back-to-back serialization
  EXPECT_EQ(link.delivered(), 2u);
}

TEST(Link, OneEventPerForwardedPacket) {
  // The fused serialize+propagate design: N packets through the link cost
  // exactly N simulator events (the old kernel paid 2N).
  Simulator sim;
  Link link(sim, Queue::drop_tail(1000), 1e6, 0.010, [](const Packet&) {});
  for (int i = 0; i < 100; ++i) link.send(data_packet(i));
  sim.run();
  EXPECT_EQ(link.delivered(), 100u);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Link, UtilizationUnderLoad) {
  Simulator sim;
  Link link(sim, Queue::drop_tail(10000), 1e6, 0.0, [](const Packet&) {});
  // Offer exactly 50% load: one 1000-B packet every 16 ms against 8 ms tx.
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(i * 0.016, [&link, i] { link.send(data_packet(i)); });
  }
  sim.run();
  EXPECT_NEAR(link.utilization(), 0.5, 0.02);
}

TEST(DelayPipe, FixedDelay) {
  Simulator sim;
  double arrival = -1.0;
  DelayPipe pipe(sim, 0.025, [&](const Packet&) { arrival = sim.now(); });
  sim.schedule_at(1.0, [&] { pipe.send(data_packet(0)); });
  sim.run();
  EXPECT_NEAR(arrival, 1.025, 1e-12);
  EXPECT_THROW(DelayPipe(sim, -0.1, [](const Packet&) {}), std::invalid_argument);
}

TEST(DelayPipe, FifoAcrossManyInFlight) {
  Simulator sim;
  std::vector<std::int64_t> seqs;
  DelayPipe pipe(sim, 0.100, [&](const Packet& p) { seqs.push_back(p.seq); });
  // 300 packets in flight at once: the ring wraps and regrows under load.
  for (int i = 0; i < 300; ++i) {
    sim.schedule_at(i * 1e-4, [&pipe, i] { pipe.send(data_packet(i)); });
  }
  sim.run();
  ASSERT_EQ(seqs.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(seqs[static_cast<std::size_t>(i)], i);
}

TEST(Dumbbell, RoutesPerFlowAndMeasuresRtt) {
  Simulator sim;
  Dumbbell net(sim, Queue::drop_tail(100), 10e6, 0.001);
  const int a = net.add_flow(0.004, 0.005);
  const int b = net.add_flow(0.009, 0.010);
  int got_a = 0, got_b = 0;
  double echo_back_at = -1.0;
  net.on_data_at_receiver(a, [&](const Packet& p) {
    ++got_a;
    Packet ack;
    ack.kind = PacketKind::kAck;
    ack.ack = {/*seq=*/0, /*echo_time=*/p.send_time};
    net.send_back(a, ack);
  });
  net.on_data_at_receiver(b, [&](const Packet&) { ++got_b; });
  net.on_packet_at_sender(a, [&](const Packet&) { echo_back_at = sim.now(); });

  Packet p = data_packet(0);
  p.send_time = 0.0;
  net.send_data(a, p);
  net.send_data(b, data_packet(0));
  sim.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
  // RTT of flow a: 4 ms access + 0.8 ms tx + 1 ms shared prop + 5 ms back.
  EXPECT_NEAR(echo_back_at, 0.004 + 0.0008 + 0.001 + 0.005, 1e-9);
}

TEST(ProbeSender, MeasuresLossOnCongestedLink) {
  Simulator sim;
  // 1 Mb/s bottleneck = 125 pkt/s of 1000 B; probe at 250 pkt/s with a tiny
  // buffer loses roughly half its packets.
  Dumbbell net(sim, Queue::drop_tail(4), 1e6, 0.001);
  const int id = net.add_flow(0.001, 0.001);
  ProbeSender probe(net, id, 250.0, 1000.0, ProbePattern::kCbr, 0.01, 3);
  probe.start(0.0);
  sim.run_until(60.0);
  probe.stop();
  sim.run_until(61.0);
  EXPECT_GT(probe.sent(), 10000u);
  const double delivered_frac =
      static_cast<double>(probe.received()) / static_cast<double>(probe.sent());
  EXPECT_NEAR(delivered_frac, 0.5, 0.05);
  EXPECT_GT(probe.recorder().events(), 100u);
}

TEST(ProbeSender, NoLossOnUncongestedLink) {
  Simulator sim;
  Dumbbell net(sim, Queue::drop_tail(100), 10e6, 0.001);
  const int id = net.add_flow(0.001, 0.001);
  ProbeSender probe(net, id, 50.0, 1000.0, ProbePattern::kPoisson, 0.01, 3);
  probe.start(0.0);
  sim.run_until(30.0);
  EXPECT_EQ(probe.recorder().losses(), 0u);
  EXPECT_NEAR(static_cast<double>(probe.received()), static_cast<double>(probe.sent()), 3.0);
}

TEST(OnOff, AverageRateIsHalfPeakForSymmetricPeriods) {
  Simulator sim;
  Dumbbell net(sim, Queue::drop_tail(100000), 100e6, 0.0);
  const int id = net.add_flow(0.0, 0.0);
  OnOffSender bg(net, id, 400.0, 1000.0, 0.5, 0.5, 11);
  bg.start(0.0);
  sim.run_until(200.0);
  const double avg_rate = static_cast<double>(bg.sent()) / 200.0;
  EXPECT_NEAR(avg_rate, 200.0, 20.0);
}

}  // namespace
