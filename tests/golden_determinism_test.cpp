// Golden determinism test for the event kernel.
//
// The kernel rewrite (4-ary POD heap + slab-owned InlineFunction callbacks)
// promises bit-identical event execution order to the original
// std::priority_queue<Entry> kernel. This test pins that promise: it drives a
// mixed schedule / cancel / reschedule workload — self-scheduling events,
// equal-time FIFO ties, cancellations of both pending and stale handles —
// and asserts the execution order matches the recording taken from the seed
// kernel (commit c65dbf6) before the rewrite.
//
// If this test ever fails, the kernel's ordering semantics changed: that is a
// correctness regression for every seeded experiment in the repo, not a test
// to update.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "golden_mixed_workload.hpp"
#include "sim/simulator.hpp"

namespace {

// Keep this workload byte-identical to the generator that produced the
// golden recording; any change invalidates the expected order below.
struct Workload {
  ebrc::sim::Simulator sim;
  std::vector<int> order;
  std::vector<ebrc::sim::EventHandle> handles;
  std::uint64_t rng_state = 0x243F6A8885A308D3ull;  // pi digits, fixed forever
  int next_id = 0;
  int spawned = 0;
  static constexpr int kMaxSpawned = 320;

  std::uint64_t next() {  // splitmix64
    std::uint64_t z = (rng_state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  void schedule_one(std::uint64_t ms) {
    const int id = next_id++;
    ++spawned;
    handles.push_back(sim.schedule(static_cast<double>(ms) * 1e-3, [this, id] { fire(id); }));
  }

  void fire(int id) {
    order.push_back(id);
    const std::uint64_t r = next();
    // ~3/4 of firings spawn a child somewhere in the next 500 ms (modulo
    // collisions produce plenty of equal-time ties for the FIFO tie-break).
    if (spawned < kMaxSpawned && (r & 3u) != 0) schedule_one((r >> 8) % 500);
    // ~1/4 cancel a random handle (often already stale — exercises
    // generation checks).
    if ((r & 12u) == 0 && !handles.empty()) {
      handles[(r >> 16) % handles.size()].cancel();
    }
    // ~1/4 "reschedule": cancel one pending timer and spawn a replacement.
    if ((r & 48u) == 16 && spawned < kMaxSpawned) {
      if (!handles.empty()) handles[(r >> 24) % handles.size()].cancel();
      schedule_one((r >> 32) % 300);
    }
  }

  void run() {
    for (int i = 0; i < 24; ++i) schedule_one(next() % 200);
    sim.run();
  }
};

// Execution order recorded from the seed kernel (std::priority_queue based,
// commit c65dbf6) running the exact workload above.
const std::vector<int> kGoldenOrder = {
    15,  21,  23,  8,   11,  1,   7,   5,   16,  2,   12,  3,   24,  14,  26,  33,
    19,  13,  20,  17,  36,  9,   4,   18,  35,  34,  27,  49,  42,  48,  43,  39,
    29,  57,  38,  59,  31,  44,  55,  53,  51,  37,  66,  30,  61,  52,  56,  40,
    32,  60,  65,  46,  54,  72,  62,  70,  71,  68,  67,  63,  58,  77,  74,  73,
    64,  69,  86,  79,  88,  80,  82,  75,  83,  84,  92,  90,  95,  81,  93,  89,
    98,  100, 87,  102, 91,  101, 94,  104, 96,  99,  106, 97,  107, 105, 103, 113,
    110, 115, 108, 109, 112, 117, 120, 114, 116, 118, 119, 124, 123, 121, 125, 126,
    122, 129, 128, 130, 132, 127, 133, 135, 136, 131, 134, 137, 138, 139, 140, 141};

TEST(GoldenDeterminism, ExecutionOrderMatchesSeedKernelRecording) {
  Workload w;
  w.run();
  EXPECT_EQ(w.spawned, 142);
  EXPECT_EQ(w.sim.events_executed(), 128u);
  EXPECT_DOUBLE_EQ(w.sim.now(), 4.5629999999999997);
  ASSERT_EQ(w.order.size(), kGoldenOrder.size());
  for (std::size_t i = 0; i < kGoldenOrder.size(); ++i) {
    ASSERT_EQ(w.order[i], kGoldenOrder[i]) << "divergence at event " << i;
  }
}

TEST(GoldenDeterminism, RerunIsBitIdentical) {
  Workload a, b;
  a.run();
  b.run();
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.sim.events_executed(), b.sim.events_executed());
}

// Execution order recorded from the heap-only kernel (before the timing
// wheel absorbed pinned scheduling) running golden::MixedWorkload — eight
// self-rescheduling pinned chains whose delay mix spans every wheel regime
// (same-instant double-bookings, sub-64 ms level-0 hops, 0–20 s cascade
// crossers, multi-kilosecond overflow residents) interleaved with slab
// events and cancellations. Entries 1000+p are pinned chain p; 0–119 are
// slab event ids.
const std::vector<int> kGoldenMixedOrder = {
    1000, 1, 8, 6, 1005, 1000, 5, 13, 1000, 1003, 7, 1000,
    2, 1003, 1001, 4, 1004, 1006, 15, 1002, 1003, 1007, 1001, 14,
    1003, 1003, 11, 3, 10, 0, 9, 1004, 1001, 1003, 1006, 1002,
    1001, 1002, 1001, 1007, 1002, 1001, 1001, 1002, 1007, 1002, 1007, 1005,
    1002, 1000, 19, 1003, 1002, 1001, 1006, 1003, 1007, 1007, 1007, 1005,
    1002, 1001, 1003, 1003, 1003, 1002, 1007, 1003, 1003, 1005, 1001, 1003,
    1003, 1000, 1001, 1002, 1002, 1002, 1002, 1003, 1002, 1003, 1003, 1003,
    1005, 1000, 1002, 1000, 1005, 1007, 1002, 1003, 1003, 1007, 1001, 1001,
    1003, 1002, 1007, 1002, 1002, 1003, 1002, 1003, 1003, 1007, 1006, 1005,
    1001, 46, 1007, 1002, 1002, 1001, 1002, 1006, 1001, 1001, 1003, 1003,
    34, 1006, 1005, 1001, 1002, 1006, 1006, 1004, 1001, 1001, 1001, 1006,
    1003, 1004, 1003, 1001, 1004, 1003, 1003, 1001, 1001, 1001, 1005, 1006,
    1002, 1005, 1005, 1002, 1004, 1004, 1006, 1001, 1001, 1006, 1004, 1004,
    1001, 1006, 1005, 1002, 1006, 1004, 1006, 1006, 1004, 1001, 1001, 1006,
    1004, 1006, 1004, 1001, 1001, 1001, 1001, 1001, 1002, 1001, 1006, 1001,
    1004, 33, 1006, 1006, 1004, 1007, 1004, 1007, 1006, 1001, 1004, 1007,
    1001, 1004, 1001, 1004, 1007, 1004, 1001, 1007, 1001, 1001, 1007, 1001,
    27, 1001, 1004, 1002, 1004, 1001, 1000, 1007, 1004, 1007, 1000, 1004,
    1004, 1004, 1000, 58, 1004, 1006, 1006, 1000, 1004, 1000, 1004, 44,
    1004, 60, 1000, 1001, 1004, 1001, 1007, 48, 1000, 1000, 1000, 1000,
    62, 1000, 1000, 1000, 1000, 45, 43, 73, 56, 1000, 69, 1000,
    32, 82, 74, 40, 81, 78, 86, 35, 72, 79, 87, 41,
    66, 88, 31, 80, 77, 94, 49, 67, 85, 37, 89, 52,
    83, 64, 50, 84, 95, 92, 71, 90, 97, 104, 109, 1003,
    1003, 1003, 1001, 93, 1003, 65, 1003, 1003, 1003, 1003, 1003, 102,
    1003, 98, 1003, 1003, 1001, 1003, 1003, 99, 1001, 1003, 1001, 1001,
    1003, 54, 105, 1003, 1001, 1003, 59, 1001, 91, 110, 1003, 1003,
    1001, 1003, 75, 100, 101, 1001, 53, 1003, 1003, 115, 111, 106,
    57, 107, 108, 116, 113, 118, 1007, 68, 70, 76, 112, 1003,
    1004, 1005, 119, 114, 117, 1002, 1005, 1001, 1001, 1006, 1007, 1003,
    1006, 1007, 1003, 1005, 1007, 1005, 1000, 1001, 1001, 1000, 1001, 1003,
    1003, 1003, 1004, 1006, 1003, 1003, 1004, 1002, 1002, 1006, 1001, 1004,
    1001, 1000, 1002, 1007, 1001, 1004, 1006, 1000, 1003, 1002, 1002, 1007,
    1001, 1003, 1006, 1001, 1000, 1003, 1007, 1002, 1001, 1003, 1000, 1005,
    1004};

TEST(GoldenDeterminism, MixedPinnedSlabOrderMatchesHeapKernelRecording) {
  golden::MixedWorkload w;
  w.run();
  EXPECT_EQ(w.slab_spawned, 120);
  EXPECT_EQ(w.pinned_fires, 314u);
  EXPECT_EQ(w.sim.events_executed(), 409u);
  EXPECT_DOUBLE_EQ(w.sim.now(), 4434.9679999999998);
  ASSERT_EQ(w.order.size(), kGoldenMixedOrder.size());
  for (std::size_t i = 0; i < kGoldenMixedOrder.size(); ++i) {
    ASSERT_EQ(w.order[i], kGoldenMixedOrder[i]) << "divergence at event " << i;
  }
}

}  // namespace
