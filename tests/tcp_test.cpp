#include <gtest/gtest.h>

#include <memory>

#include "model/aimd.hpp"
#include "model/throughput_function.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "tcp/aimd_sender.hpp"
#include "tcp/tcp_connection.hpp"

namespace {

using namespace ebrc;

struct TcpWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Dumbbell> net;
  std::unique_ptr<tcp::TcpConnection> conn;

  TcpWorld(double rate_bps, std::size_t buffer, double rtt_s, tcp::TcpConfig cfg = {}) {
    net = std::make_unique<net::Dumbbell>(
        sim, net::Queue::drop_tail(buffer), rate_bps, 0.001);
    const int id = net->add_flow(rtt_s / 2.0 - 0.001, rtt_s / 2.0);
    conn = std::make_unique<tcp::TcpConnection>(*net, id, rtt_s, cfg);
  }
};

TEST(Tcp, FillsAnUncongestedPipe) {
  // 4 Mb/s, large buffer: TCP should reach high utilization quickly.
  TcpWorld w(4e6, 200, 0.040);
  w.conn->start(0.0);
  w.sim.run_until(30.0);
  const double capacity_pps = 4e6 / 8.0 / 1000.0;  // 500 pkt/s
  const double goodput = static_cast<double>(w.conn->delivered()) / 30.0;
  EXPECT_GT(goodput, 0.85 * capacity_pps);
  EXPECT_LE(goodput, 1.01 * capacity_pps);
}

TEST(Tcp, MeasuresRttCloseToPathRtt) {
  TcpWorld w(8e6, 400, 0.060);
  w.conn->start(0.0);
  w.sim.run_until(20.0);
  // Smoothed RTT must be at least the propagation RTT and within queueing
  // slack of it.
  EXPECT_GE(w.conn->srtt(), 0.058);
  EXPECT_LT(w.conn->srtt(), 0.25);
  EXPECT_GT(w.conn->rtt_stats().count(), 10u);
}

TEST(Tcp, ExperiencesLossEventsWithSmallBuffer) {
  TcpWorld w(2e6, 10, 0.040);
  w.conn->start(0.0);
  w.sim.run_until(60.0);
  EXPECT_GT(w.conn->recorder().events(), 20u);
  EXPECT_GT(w.conn->fast_retransmits(), 10u);
  // Loss-event rate is sane (not every packet, not never).
  const double p = w.conn->recorder().loss_event_rate();
  EXPECT_GT(p, 1e-4);
  EXPECT_LT(p, 0.2);
}

TEST(Tcp, DeliversEverythingInOrderDespiteLosses) {
  // Goodput == delivered in-order packets; with retransmissions the receiver
  // must still advance: delivered keeps growing and approaches capacity.
  TcpWorld w(2e6, 8, 0.030);
  w.conn->start(0.0);
  w.sim.run_until(30.0);
  const auto d30 = w.conn->delivered();
  w.sim.run_until(60.0);
  const auto d60 = w.conn->delivered();
  EXPECT_GT(d60, d30 + 100);
  const double goodput = static_cast<double>(d60 - d30) / 30.0;
  EXPECT_GT(goodput, 0.5 * 250.0);  // at least half of the 250 pkt/s capacity
}

TEST(Tcp, ThroughputTracksPftkWithinFactorTwo) {
  // The PFTK formula was derived for exactly this kind of AIMD/timeout
  // dynamics: at the measured (p, r) the formula should predict the measured
  // throughput within a small factor (Figure 9 studies the residual bias).
  TcpWorld w(4e6, 25, 0.050);
  w.conn->start(0.0);
  w.sim.run_until(120.0);
  const double p = w.conn->recorder().loss_event_rate();
  ASSERT_GT(p, 0.0);
  const double r = w.conn->rtt_stats().mean();
  const auto f = model::make_throughput_function("pftk", r);
  const double predicted = f->rate(p);
  const double measured = static_cast<double>(w.conn->delivered()) / 120.0;
  EXPECT_GT(measured, 0.4 * predicted);
  EXPECT_LT(measured, 2.5 * predicted);
}

TEST(Tcp, TwoConnectionsShareFairly) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(50), 4e6, 0.001);
  const int a = net.add_flow(0.019, 0.020);
  const int b = net.add_flow(0.019, 0.020);
  tcp::TcpConnection ca(net, a, 0.040);
  tcp::TcpConnection cb(net, b, 0.040);
  ca.start(0.0);
  cb.start(0.3);
  sim.run_until(120.0);
  const double xa = static_cast<double>(ca.delivered());
  const double xb = static_cast<double>(cb.delivered());
  EXPECT_GT(xa / xb, 0.6);
  EXPECT_LT(xa / xb, 1.7);
}

TEST(Tcp, Validation) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(10), 1e6, 0.001);
  const int id = net.add_flow(0.01, 0.01);
  EXPECT_THROW(tcp::TcpConnection(net, id, -1.0), std::invalid_argument);
}

TEST(AimdSender, ConvergesToClosedFormLossRate) {
  // One AIMD sender alone on a small-buffer link approximates the Claim-4
  // deterministic model: p' ~ 2 alpha / ((1-beta^2) c^2).
  sim::Simulator sim;
  const double capacity_pps = 125.0;  // 1 Mb/s
  net::Dumbbell net(sim, net::Queue::drop_tail(5), 1e6, 0.0005);
  const int id = net.add_flow(0.0005, 0.001);
  tcp::AimdSenderConfig cfg;
  cfg.alpha = 50.0;  // fast sawtooth so many cycles fit
  cfg.beta = 0.5;
  cfg.rtt_s = 0.1;
  cfg.initial_rate = 60.0;
  tcp::AimdSender sender(net, id, cfg);
  sender.start(0.0);
  sim.run_until(400.0);
  const double p_measured = sender.recorder().loss_event_rate();
  // alpha in packets/RTT^2 with RTT 0.1 s: the model's alpha (per unit time
  // normalized to RTT = 1) is alpha * rtt = 5 packets per RTT of rate gain...
  // in rate units the closed form uses alpha per RTT: the sender gains
  // alpha/rtt pps per rtt; express the model with RTT = 1 by rescaling:
  // effective alpha = cfg.alpha * cfg.rtt = 5 pkt/RTT, capacity in pkt/RTT =
  // capacity_pps * rtt = 12.5.
  const model::AimdParams a{cfg.alpha * cfg.rtt_s, cfg.beta};
  const double c_rtt = capacity_pps * cfg.rtt_s;
  const double p_model = model::aimd_loss_event_rate(a, c_rtt);
  EXPECT_GT(sender.recorder().events(), 50u);
  EXPECT_GT(p_measured, 0.3 * p_model);
  EXPECT_LT(p_measured, 3.0 * p_model);
}

TEST(AimdSender, RateOscillatesBetweenBetaCAndC) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(3), 1e6, 0.0005);
  const int id = net.add_flow(0.0005, 0.001);
  tcp::AimdSenderConfig cfg;
  cfg.alpha = 1.0;  // gentle slope so the detection lag's overshoot is small
  cfg.beta = 0.5;
  cfg.rtt_s = 0.05;
  cfg.initial_rate = 50.0;
  tcp::AimdSender sender(net, id, cfg);
  sender.start(0.0);
  sim.run_until(300.0);
  // After warm-up the rate should live in roughly [beta*c, ~c+slack].
  EXPECT_GT(sender.rate(), 0.3 * 125.0);
  EXPECT_LT(sender.rate(), 2.0 * 125.0);
  EXPECT_THROW(tcp::AimdSender(net, id, tcp::AimdSenderConfig{-1.0, 0.5, 1.0, 1.0, 1000.0}),
               std::invalid_argument);
}

}  // namespace
