// The observability layer:
//   * Histogram bins, clamping, and quantiles,
//   * Registry snapshot order, probe_only exclusion, and the fixed histogram
//     key set,
//   * Probe sampling on a live simulator (interval schedule, ring overwrite),
//   * CellTrace / TraceWriter JSON export,
//   * the determinism contract: a probed run's encoded result is
//     bit-identical to an unprobed run's, and the obs snapshot survives the
//     ResultStore payload codec.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "obs/probe.hpp"
#include "obs/registry.hpp"
#include "obs/run_obs.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "testbed/experiment.hpp"
#include "testbed/result_store.hpp"
#include "testbed/scenario.hpp"

namespace {

namespace fs = std::filesystem;

using ebrc::obs::CellTrace;
using ebrc::obs::Histogram;
using ebrc::obs::Probe;
using ebrc::obs::Registry;
using ebrc::obs::RunObs;
using ebrc::obs::Series;
using ebrc::obs::Snapshot;
using ebrc::obs::TraceWriter;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("ebrc_obs_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

[[nodiscard]] double snap_value(const Snapshot& s, const std::string& name) {
  for (const auto& [k, v] : s) {
    if (k == name) return v;
  }
  ADD_FAILURE() << "snapshot has no key '" << name << "'";
  return -1.0;
}

[[nodiscard]] bool snap_has(const Snapshot& s, const std::string& name) {
  for (const auto& [k, v] : s) {
    (void)v;
    if (k == name) return true;
  }
  return false;
}

// ---- Histogram --------------------------------------------------------------

TEST(HistogramTest, CountsMeanMaxAndClamping) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);

  h.record(1.0);
  h.record(3.0);
  h.record(5.0);
  h.record(-7.0);   // clamps into the low edge bin
  h.record(123.0);  // clamps into the high edge bin
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 3.0 + 5.0 - 7.0 + 123.0) / 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 123.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndInRange) {
  Histogram h(0.0, 100.0, 50);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i));
  const double p10 = h.quantile(0.10);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p90);
  // Linear bins over a uniform sample: quantiles land near their exact spot.
  EXPECT_NEAR(p50, 50.0, 5.0);
  EXPECT_NEAR(p90, 90.0, 5.0);
}

// ---- Registry ---------------------------------------------------------------

TEST(RegistryTest, SnapshotKeepsRegistrationOrderAndExpandsHistograms) {
  Registry reg;
  std::uint64_t pops = 41;
  reg.add_counter("kernel_events", [&](double) { return static_cast<double>(pops); });
  reg.add_gauge("queue_occupancy", [](double) { return 7.0; });
  Histogram* h = reg.add_histogram("completion_s", 0.0, 10.0, 16);
  ASSERT_NE(h, nullptr);
  h->record(2.0);
  h->record(4.0);
  ++pops;

  const Snapshot s = reg.snapshot(/*now=*/1.0);
  ASSERT_EQ(s.size(), 7u);  // counter + gauge + 5 histogram keys
  EXPECT_EQ(s[0].first, "kernel_events");
  EXPECT_DOUBLE_EQ(s[0].second, 42.0);
  EXPECT_EQ(s[1].first, "queue_occupancy");
  EXPECT_DOUBLE_EQ(s[1].second, 7.0);
  EXPECT_EQ(s[2].first, "completion_s_count");
  EXPECT_DOUBLE_EQ(s[2].second, 2.0);
  EXPECT_EQ(s[3].first, "completion_s_mean");
  EXPECT_DOUBLE_EQ(s[3].second, 3.0);
  EXPECT_EQ(s[4].first, "completion_s_p50");
  EXPECT_EQ(s[5].first, "completion_s_p90");
  EXPECT_EQ(s[6].first, "completion_s_max");
  EXPECT_DOUBLE_EQ(s[6].second, 4.0);
}

TEST(RegistryTest, EmptyHistogramStillExportsItsFixedKeySet) {
  Registry reg;
  (void)reg.add_histogram("drops", 0.0, 1.0, 4);
  const Snapshot s = reg.snapshot(0.0);
  ASSERT_EQ(s.size(), 5u);
  for (const auto& [k, v] : s) {
    (void)k;
    EXPECT_EQ(v, 0.0) << "empty histogram keys must read 0";
  }
}

TEST(RegistryTest, ProbeOnlyGaugesAreSampledButNeverSnapshotted) {
  Registry reg;
  int stateful_samples = 0;
  reg.add_gauge("plain", [](double) { return 1.0; });
  reg.add_gauge("rate_estimator",
                [&](double) { return static_cast<double>(++stateful_samples); },
                /*probe_only=*/true);

  EXPECT_EQ(reg.gauge_count(), 2u);  // the probe sees both
  EXPECT_EQ(reg.gauge_name(1), "rate_estimator");
  EXPECT_DOUBLE_EQ(reg.sample_gauge(1, 0.0), 1.0);

  const Snapshot s = reg.snapshot(0.0);
  EXPECT_TRUE(snap_has(s, "plain"));
  EXPECT_FALSE(snap_has(s, "rate_estimator"))
      << "probe_only gauges must not leak into the deterministic snapshot";
  EXPECT_EQ(stateful_samples, 1) << "snapshot() must not sample probe_only gauges";
}

// ---- Probe ------------------------------------------------------------------

// The driver loop every probed run uses: run to each due time, sample, and
// finish at the horizon. Mirrors run_probed_until in experiment.cpp.
void drive(ebrc::sim::Simulator& sim, Probe& probe, double horizon) {
  while (probe.next_due() <= horizon) {
    sim.run_until(probe.next_due());
    probe.sample();
  }
  sim.run_until(horizon);
}

TEST(ProbeTest, SamplesGaugesAtTheConfiguredInterval) {
  ebrc::sim::Simulator sim;
  Registry reg;
  reg.add_gauge("sim_now", [&](double now) { return now; });

  Probe probe(sim, reg, /*interval_s=*/0.5, /*capacity=*/64, /*stop_at=*/10.0);
  drive(sim, probe, 10.0);

  auto series = probe.take_series();
  ASSERT_EQ(series.size(), 1u);
  const Series& s = series[0];
  EXPECT_EQ(s.name, "sim_now");
  EXPECT_EQ(s.size(), 20u);  // samples at 0.5, 1.0, ..., 10.0
  EXPECT_EQ(sim.events_executed(), 0u) << "the probe must not inject kernel events";
  EXPECT_DOUBLE_EQ(s.time_at(0), 0.5);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_DOUBLE_EQ(s.at(i), s.time_at(i)) << "gauge read the sim clock at sample time";
  }
}

TEST(ProbeTest, RingKeepsTheMostRecentSamples) {
  ebrc::sim::Simulator sim;
  Registry reg;
  reg.add_gauge("sim_now", [&](double now) { return now; });

  Probe probe(sim, reg, /*interval_s=*/1.0, /*capacity=*/4, /*stop_at=*/10.0);
  drive(sim, probe, 10.0);

  auto series = probe.take_series();
  ASSERT_EQ(series.size(), 1u);
  const Series& s = series[0];
  EXPECT_EQ(s.total, 10u);
  EXPECT_EQ(s.size(), 4u);
  // The ring keeps the last four samples: t = 7, 8, 9, 10.
  EXPECT_DOUBLE_EQ(s.at(0), 7.0);
  EXPECT_DOUBLE_EQ(s.time_at(0), 7.0);
  EXPECT_DOUBLE_EQ(s.at(3), 10.0);
  EXPECT_DOUBLE_EQ(s.time_at(3), 10.0);
}

TEST(ProbeTest, RejectsNonPositiveIntervalAndZeroCapacity) {
  ebrc::sim::Simulator sim;
  Registry reg;
  EXPECT_THROW(Probe(sim, reg, 0.0, 16, 1.0), std::invalid_argument);
  EXPECT_THROW(Probe(sim, reg, -1.0, 16, 1.0), std::invalid_argument);
  EXPECT_THROW(Probe(sim, reg, 0.1, 0, 1.0), std::invalid_argument);
}

// ---- CellTrace / TraceWriter ------------------------------------------------

TEST(TraceTest, WritesChromeTracingJson) {
  TempDir dir;
  CellTrace trace;
  trace.span(1.0, 2.5, "transfer:tfrc", "transfers");
  trace.instant(1.75, "drop", "queue");
  trace.counter(1.0, "queue_occupancy", 12.0);
  trace.counter(2.0, "queue_occupancy", 9.0);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 0u);

  TraceWriter writer;
  writer.absorb(3, "cell \"three\"", std::move(trace));
  const std::string path = (dir.path / "trace.json").string();
  ASSERT_TRUE(writer.write(path));

  std::ifstream in(path, std::ios::binary);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Sim seconds become microseconds; the span's dur is (2.5 - 1.0) s.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"dur\":1500000.000"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\":3"), std::string::npos);
  // Scenario names are escaped into the process_name metadata.
  EXPECT_NE(text.find("cell \\\"three\\\""), std::string::npos);
  EXPECT_NE(text.find("process_name"), std::string::npos);
  EXPECT_EQ(text.find('\t'), std::string::npos) << "no raw control chars in the JSON";
}

TEST(TraceTest, BufferCapCountsDroppedEvents) {
  CellTrace trace(/*max_events=*/2);
  trace.instant(0.0, "a", "t");
  trace.instant(1.0, "b", "t");
  trace.instant(2.0, "c", "t");
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 1u);

  TraceWriter writer;
  writer.absorb(0, "cell", std::move(trace));
  EXPECT_EQ(writer.dropped(), 1u);
}

// ---- end-to-end determinism -------------------------------------------------

ebrc::testbed::Scenario short_churn(std::uint64_t seed) {
  auto s = ebrc::testbed::churn_scenario(/*rho=*/0.8, /*tfrc_fraction=*/0.5, seed);
  s.duration_s = 6.0;
  s.warmup_s = 1.0;
  return s;
}

TEST(ObsEndToEnd, SnapshotCarriesKernelNetAndWorkloadInstruments) {
  const auto r = ebrc::testbed::run_experiment(short_churn(7));
  EXPECT_GT(snap_value(r.obs, "kernel_events"), 0.0);
  EXPECT_GT(snap_value(r.obs, "queue_accepted"), 0.0);
  EXPECT_GT(snap_value(r.obs, "link_delivered"), 0.0);
  EXPECT_TRUE(snap_has(r.obs, "queue_drops"));
  EXPECT_TRUE(snap_has(r.obs, "queue_drop_occupancy_count"));
  EXPECT_TRUE(snap_has(r.obs, "wl_opens_tfrc"));
  EXPECT_TRUE(snap_has(r.obs, "wl_completion_s_p90"));
  // Pops split across wheel and heap cover every executed event, plus the
  // pops that drained cancelled slab entries — so >=, not ==.
  EXPECT_GE(snap_value(r.obs, "kernel_wheel_pops") +
                snap_value(r.obs, "kernel_heap_pops"),
            snap_value(r.obs, "kernel_events"));
  // The probe-only aggregate-rate gauge must NOT be in the snapshot.
  EXPECT_FALSE(snap_has(r.obs, "agg_rate_pps"));
  EXPECT_TRUE(r.obs_series.empty()) << "no probe attached, no series";
}

TEST(ObsEndToEnd, ProbedRunIsBitIdenticalToUnprobedRun) {
  const auto sc = short_churn(11);
  const auto plain = ebrc::testbed::run_experiment(sc);

  RunObs ro;
  ro.probe_interval_s = 0.25;
  ro.probe_capacity = 32;
  const auto probed = ebrc::testbed::run_experiment(sc, &ro);

  EXPECT_FALSE(probed.obs_series.empty());
  EXPECT_GT(probed.obs_series.front().total, 0u);
  // Probe events only read state: the encoded payload (metrics + workload
  // telemetry + obs snapshot; series excluded by design) must not move by a
  // single bit.
  EXPECT_EQ(ebrc::testbed::encode_result(plain), ebrc::testbed::encode_result(probed));
}

TEST(ObsEndToEnd, TracedRunRecordsTransfersAndMatchesPlainRun) {
  const auto sc = short_churn(13);
  const auto plain = ebrc::testbed::run_experiment(sc);

  CellTrace trace;
  RunObs ro;
  ro.trace = &trace;
  const auto traced = ebrc::testbed::run_experiment(sc, &ro);
  EXPECT_GT(trace.size(), 0u) << "churn completions must appear as spans";
  EXPECT_EQ(ebrc::testbed::encode_result(plain), ebrc::testbed::encode_result(traced));
}

TEST(ObsEndToEnd, ObsSnapshotSurvivesTheResultStoreCodec) {
  const auto r = ebrc::testbed::run_experiment(short_churn(17));
  ASSERT_FALSE(r.obs.empty());
  const auto decoded = ebrc::testbed::decode_result(ebrc::testbed::encode_result(r));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->obs.size(), r.obs.size());
  for (std::size_t i = 0; i < r.obs.size(); ++i) {
    EXPECT_EQ(decoded->obs[i].first, r.obs[i].first);
    EXPECT_EQ(decoded->obs[i].second, r.obs[i].second) << r.obs[i].first;
  }
  EXPECT_TRUE(decoded->obs_series.empty()) << "series are never persisted";
}

}  // namespace
