// RFC 3448 Section 5.5 history discounting (an optional TFRC extension the
// paper's analysis omits; implemented and tested here as the natural
// "future work" feature of the comprehensive control).
#include <gtest/gtest.h>

#include "core/estimator.hpp"
#include "core/weights.hpp"
#include "tfrc/loss_history.hpp"

namespace {

using ebrc::core::MovingAverageEstimator;
using ebrc::core::tfrc_weights;
using ebrc::tfrc::LossHistory;

TEST(Discounting, ReducesToPlainOpenValueAtDiscountOne) {
  MovingAverageEstimator e(tfrc_weights(8));
  e.seed(50.0);
  for (double open : {0.0, 40.0, 120.0, 400.0}) {
    EXPECT_NEAR(e.value_with_open_discounted(open, 1.0), e.value_with_open(open), 1e-12)
        << "open=" << open;
  }
}

TEST(Discounting, GrowsFasterThanUndiscountedForLongOpenIntervals) {
  MovingAverageEstimator e(tfrc_weights(8));
  e.seed(50.0);
  const double open = 400.0;  // 8x the average: deep into the discount regime
  EXPECT_GT(e.value_with_open_discounted(open, 0.5), e.value_with_open(open));
}

TEST(Discounting, NeverBelowClosedValue) {
  MovingAverageEstimator e(tfrc_weights(8));
  e.seed(50.0);
  for (double open : {0.0, 10.0, 100.0}) {
    for (double d : {0.5, 0.75, 1.0}) {
      EXPECT_GE(e.value_with_open_discounted(open, d), e.value() - 1e-12);
    }
  }
}

TEST(Discounting, Validation) {
  MovingAverageEstimator e(tfrc_weights(4));
  e.seed(10.0);
  EXPECT_THROW((void)e.value_with_open_discounted(-1.0, 0.7), std::invalid_argument);
  EXPECT_THROW((void)e.value_with_open_discounted(5.0, 0.4), std::invalid_argument);
  EXPECT_THROW((void)e.value_with_open_discounted(5.0, 1.1), std::invalid_argument);
}

LossHistory warmed_history(bool discounting) {
  LossHistory h(tfrc_weights(8), /*comprehensive=*/true, discounting);
  double t = 0.0;
  const double rtt = 0.1;
  for (int ev = 0; ev < 12; ++ev) {
    for (int k = 0; k < 20; ++k) h.on_packet(0, t += 0.02, rtt);
    if (ev == 0) h.seed(21.0);
    h.on_packet(1, t += 0.02, rtt);
  }
  return h;
}

TEST(Discounting, LossHistoryRecoversFasterAfterLossFreeStretch) {
  auto plain = warmed_history(false);
  auto disc = warmed_history(true);
  // No discount effect while the open interval is short.
  EXPECT_NEAR(plain.mean_interval(), disc.mean_interval(), 1e-9);
  // A long loss-free run: the discounted history reports a larger mean
  // interval (higher allowed rate) than the plain comprehensive control.
  double t = 100.0;
  for (int k = 0; k < 500; ++k) {
    plain.on_packet(0, t += 0.02, 0.1);
    disc.on_packet(0, t += 0.02, 0.1);
  }
  EXPECT_GT(disc.mean_interval(), plain.mean_interval() * 1.05);
  // Both still dominate the closed-history value (Eq. 4's max rule).
  EXPECT_GE(plain.mean_interval(), plain.estimator().value() - 1e-9);
}

TEST(Discounting, FloorAtHalf) {
  // Even an absurdly long open interval cannot discount history below 1/2.
  auto disc = warmed_history(true);
  double t = 100.0;
  for (int k = 0; k < 20000; ++k) disc.on_packet(0, t += 0.02, 0.1);
  const auto& est = disc.estimator();
  const double expect_floor = est.value_with_open_discounted(disc.open_interval(), 0.5);
  EXPECT_NEAR(disc.mean_interval(), expect_floor, 1e-9);
}

}  // namespace
