// Property sweep (Theorem 1 / Corollary 1): for every simplified-family
// throughput function, every loss-event rate, every interval variability and
// every estimator window, i.i.d. loss-event intervals (cov[theta, hat-theta]
// = 0) plus convex g must yield a conservative basic control. This is the
// paper's central guarantee, swept over a parameter grid.
#include <gtest/gtest.h>

#include <tuple>

#include "core/analyzer.hpp"
#include "core/weights.hpp"
#include "loss/loss_process.hpp"
#include "model/throughput_function.hpp"

namespace {

using namespace ebrc::core;

struct Case {
  const char* function;
  double p;
  double cv;
  std::size_t L;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  std::string s = std::string(c.function) + "_p" + std::to_string(int(c.p * 1000)) + "_cv" +
                  std::to_string(int(c.cv * 100)) + "_L" + std::to_string(c.L);
  for (char& ch : s) {
    if (ch == '-' || ch == '.') ch = '_';
  }
  return s;
}

class ConservativenessSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ConservativenessSweep, BasicControlIsConservativeUnderIidLosses) {
  const auto& c = GetParam();
  auto f = ebrc::model::make_throughput_function(c.function, 1.0);
  ebrc::loss::ShiftedExponentialProcess proc(c.p, c.cv, 1234 + c.L);
  const auto r =
      run_basic_control(*f, proc, tfrc_weights(c.L), {.events = 150000, .warmup = 200});
  // Corollary 1 is exact in expectation; allow small Monte-Carlo slack.
  EXPECT_LE(r.normalized, 1.01) << "normalized throughput exceeded 1";
  // Unbiasedness (E) holds across the sweep.
  EXPECT_NEAR(r.mean_thetahat / r.mean_theta, 1.0, 0.02);
}

TEST_P(ConservativenessSweep, ComprehensiveStaysBelowPropositionFourCap) {
  // Prop. 2 says comprehensive >= basic; combined with Claim 1 the
  // comprehensive control still respects conservativeness under (C1) for
  // convex-g functions, up to the Prop-4 deviation cap (== 1 here).
  const auto& c = GetParam();
  auto f = ebrc::model::make_throughput_function(c.function, 1.0);
  ebrc::loss::ShiftedExponentialProcess proc(c.p, c.cv, 4321 + c.L);
  const auto r = run_comprehensive_control(*f, proc, tfrc_weights(c.L),
                                           {.events = 150000, .warmup = 200});
  EXPECT_LE(r.normalized, 1.02) << "comprehensive control overshot";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservativenessSweep,
    ::testing::Values(
        Case{"sqrt", 0.01, 0.5, 1}, Case{"sqrt", 0.01, 0.999, 8}, Case{"sqrt", 0.1, 0.7, 4},
        Case{"sqrt", 0.3, 0.999, 2}, Case{"sqrt", 0.3, 0.3, 16},
        Case{"pftk-simplified", 0.01, 0.5, 1}, Case{"pftk-simplified", 0.01, 0.999, 8},
        Case{"pftk-simplified", 0.05, 0.7, 4}, Case{"pftk-simplified", 0.1, 0.999, 2},
        Case{"pftk-simplified", 0.2, 0.7, 8}, Case{"pftk-simplified", 0.3, 0.999, 16},
        Case{"pftk-simplified", 0.3, 0.3, 1}),
    case_name);

// Estimator-window monotonicity (Claim 1, second bullet) swept over p.
class WindowMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(WindowMonotonicity, NormalizedThroughputIncreasesWithL) {
  const double p = GetParam();
  auto f = ebrc::model::make_throughput_function("pftk-simplified", 1.0);
  double prev = 0.0;
  for (std::size_t L : {1u, 2u, 4u, 8u, 16u}) {
    ebrc::loss::ShiftedExponentialProcess proc(p, 1.0 - 1.0 / 1000.0, 777);
    const auto r =
        run_basic_control(*f, proc, tfrc_weights(L), {.events = 200000, .warmup = 200});
    EXPECT_GT(r.normalized, prev - 0.01) << "L=" << L << " p=" << p;
    prev = r.normalized;
  }
}

INSTANTIATE_TEST_SUITE_P(PSweep, WindowMonotonicity, ::testing::Values(0.02, 0.05, 0.1, 0.2),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "p" + std::to_string(int(info.param * 1000));
                         });

}  // namespace
