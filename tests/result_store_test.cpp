// The on-disk result cache and the sharded sweep path, locked down:
//   * a cache hit returns bit-identical ExperimentResults to the fresh run,
//   * any scenario-field or seed perturbation misses,
//   * corrupted / truncated / foreign cache files fall back to re-simulation
//     (and are repaired) instead of crashing,
//   * a sweep sharded over {1, 2, 3, 8} processes through a shared store,
//     then folded by an unsharded warm pass, is bit-identical to the
//     unsharded run — per run AND per aggregated metric.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "testbed/batch.hpp"
#include "testbed/experiment.hpp"
#include "testbed/fault_injection.hpp"
#include "testbed/result_store.hpp"
#include "testbed/scenario.hpp"
#include "testbed/scenario_io.hpp"

namespace {

namespace fs = std::filesystem;

using ebrc::testbed::BatchRunner;
using ebrc::testbed::ExperimentResult;
using ebrc::testbed::ResultStore;
using ebrc::testbed::Scenario;
using ebrc::testbed::ShardSpec;
using ebrc::testbed::SweepReport;

Scenario short_ns2(std::uint64_t seed) {
  auto s = ebrc::testbed::ns2_scenario(1, 1, 8, seed);
  s.duration_s = 4.0;
  s.warmup_s = 1.0;
  return s;
}

/// A fresh directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("ebrc_result_store_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)) << what;
}

/// Full bitwise equality over every ExperimentResult field.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.scenario_name, b.scenario_name);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].kind, b.flows[i].kind);
    EXPECT_EQ(a.flows[i].flow_id, b.flows[i].flow_id);
    expect_bits(a.flows[i].throughput_pps, b.flows[i].throughput_pps, "throughput_pps");
    expect_bits(a.flows[i].p, b.flows[i].p, "p");
    expect_bits(a.flows[i].mean_rtt_s, b.flows[i].mean_rtt_s, "mean_rtt_s");
    expect_bits(a.flows[i].formula_rate, b.flows[i].formula_rate, "formula_rate");
    expect_bits(a.flows[i].normalized, b.flows[i].normalized, "normalized");
    expect_bits(a.flows[i].cov_theta_thetahat, b.flows[i].cov_theta_thetahat, "cov");
    expect_bits(a.flows[i].normalized_cov, b.flows[i].normalized_cov, "normalized_cov");
    EXPECT_EQ(a.flows[i].loss_events, b.flows[i].loss_events);
  }
  expect_bits(a.tfrc_throughput, b.tfrc_throughput, "tfrc_throughput");
  expect_bits(a.tcp_throughput, b.tcp_throughput, "tcp_throughput");
  expect_bits(a.tfrc_p, b.tfrc_p, "tfrc_p");
  expect_bits(a.tcp_p, b.tcp_p, "tcp_p");
  expect_bits(a.poisson_p, b.poisson_p, "poisson_p");
  expect_bits(a.tfrc_rtt, b.tfrc_rtt, "tfrc_rtt");
  expect_bits(a.tcp_rtt, b.tcp_rtt, "tcp_rtt");
  expect_bits(a.bottleneck_utilization, b.bottleneck_utilization, "bottleneck_utilization");
  expect_bits(a.breakdown.conservativeness, b.breakdown.conservativeness, "conservativeness");
  expect_bits(a.breakdown.loss_rate_ratio, b.breakdown.loss_rate_ratio, "loss_rate_ratio");
  expect_bits(a.breakdown.rtt_ratio, b.breakdown.rtt_ratio, "rtt_ratio");
  expect_bits(a.breakdown.tcp_formula_ratio, b.breakdown.tcp_formula_ratio,
              "tcp_formula_ratio");
  expect_bits(a.breakdown.friendliness, b.breakdown.friendliness, "friendliness");
  EXPECT_EQ(a.workload_active, b.workload_active);
  EXPECT_EQ(a.workload.arrivals, b.workload.arrivals);
  EXPECT_EQ(a.workload.completions, b.workload.completions);
  EXPECT_EQ(a.workload.rejections, b.workload.rejections);
  expect_bits(a.workload.mean_flows, b.workload.mean_flows, "wl.mean_flows");
  expect_bits(a.workload.mean_flows_tfrc, b.workload.mean_flows_tfrc, "wl.mean_flows_tfrc");
  expect_bits(a.workload.mean_flows_tcp, b.workload.mean_flows_tcp, "wl.mean_flows_tcp");
  EXPECT_EQ(a.workload.peak_flows, b.workload.peak_flows);
  expect_bits(a.workload.tfrc_completion_s, b.workload.tfrc_completion_s,
              "wl.tfrc_completion_s");
  expect_bits(a.workload.tcp_completion_s, b.workload.tcp_completion_s, "wl.tcp_completion_s");
  expect_bits(a.workload.tfrc_completion_cov, b.workload.tfrc_completion_cov,
              "wl.tfrc_completion_cov");
  expect_bits(a.workload.tcp_completion_cov, b.workload.tcp_completion_cov,
              "wl.tcp_completion_cov");
  expect_bits(a.workload.tfrc_goodput_pps, b.workload.tfrc_goodput_pps, "wl.tfrc_goodput_pps");
  expect_bits(a.workload.tcp_goodput_pps, b.workload.tcp_goodput_pps, "wl.tcp_goodput_pps");
  expect_bits(a.workload.tfrc_share, b.workload.tfrc_share, "wl.tfrc_share");
  expect_bits(a.workload.tfrc_p, b.workload.tfrc_p, "wl.tfrc_p");
  expect_bits(a.workload.tcp_p, b.workload.tcp_p, "wl.tcp_p");
}

TEST(ResultStore, HitIsBitIdenticalToFreshRun) {
  TempDir dir;
  ResultStore store(dir.path);
  const Scenario s = short_ns2(123);
  const ExperimentResult fresh = ebrc::testbed::run_experiment(s);
  store.store(s, fresh);

  const auto cached = store.load(s);
  ASSERT_TRUE(cached.has_value());
  expect_identical(fresh, *cached);
  const auto c = store.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.stored, 1u);
  EXPECT_EQ(c.corrupt, 0u);
}

TEST(ResultStore, CodecRoundTripsExactly) {
  const ExperimentResult fresh = ebrc::testbed::run_experiment(short_ns2(7));
  const auto decoded = ebrc::testbed::decode_result(ebrc::testbed::encode_result(fresh));
  ASSERT_TRUE(decoded.has_value());
  expect_identical(fresh, *decoded);
  EXPECT_FALSE(ebrc::testbed::decode_result("garbage").has_value());
  EXPECT_FALSE(ebrc::testbed::decode_result("").has_value());
}

TEST(ResultStore, MissesOnAnyPerturbation) {
  TempDir dir;
  ResultStore store(dir.path);
  const Scenario s = short_ns2(123);
  store.store(s, ebrc::testbed::run_experiment(s));

  Scenario seed_moved = s;
  seed_moved.seed += 1;
  EXPECT_FALSE(store.load(seed_moved).has_value());

  Scenario field_moved = s;
  field_moved.n_tcp += 1;
  EXPECT_FALSE(store.load(field_moved).has_value());

  Scenario tfrc_moved = s;
  tfrc_moved.tfrc.history_length += 1;
  EXPECT_FALSE(store.load(tfrc_moved).has_value());

  Scenario renamed = s;
  renamed.name += "-b";
  EXPECT_FALSE(store.load(renamed).has_value());

  // A different code-version salt must not see the old entry either.
  ResultStore salted(dir.path, ebrc::testbed::kResultCacheSalt + 1);
  EXPECT_FALSE(salted.load(s).has_value());
  EXPECT_EQ(store.counters().misses, 4u);
}

TEST(ResultStore, CorruptAndTruncatedEntriesReadAsMisses) {
  TempDir dir;
  ResultStore store(dir.path);
  const Scenario s = short_ns2(55);
  const ExperimentResult fresh = ebrc::testbed::run_experiment(s);
  store.store(s, fresh);
  const fs::path entry = store.path_for(s);
  ASSERT_TRUE(fs::exists(entry));
  ASSERT_TRUE(ebrc::testbed::validate_result_file(entry));

  // Truncation.
  const auto size = fs::file_size(entry);
  fs::resize_file(entry, size / 2);
  EXPECT_FALSE(store.load(s).has_value());
  EXPECT_FALSE(ebrc::testbed::validate_result_file(entry));

  // Flipped payload byte (restore full length first).
  store.store(s, fresh);
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size) - 3);
    f.put('\x5a');
  }
  EXPECT_FALSE(store.load(s).has_value());

  // Foreign file content.
  {
    std::ofstream f(entry, std::ios::binary | std::ios::trunc);
    f << "not a result file";
  }
  EXPECT_FALSE(store.load(s).has_value());
  EXPECT_EQ(store.counters().corrupt, 3u);

  // The batch path must fall back to re-simulation and repair the entry.
  SweepReport report;
  const auto out = BatchRunner(2).run({s}, &store, ShardSpec{}, &report);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(report.hits, 0u);
  EXPECT_EQ(report.simulated, 1u);
  expect_identical(fresh, out[0]);
  EXPECT_TRUE(ebrc::testbed::validate_result_file(entry));
  const auto healed = store.load(s);
  ASSERT_TRUE(healed.has_value());
  expect_identical(fresh, *healed);
}

TEST(ResultStore, BatchRunnerWarmCacheSimulatesNothing) {
  TempDir dir;
  ResultStore store(dir.path);
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/42, /*reps=*/4);

  SweepReport cold;
  const auto first = BatchRunner(4).run(batch, &store, ShardSpec{}, &cold);
  EXPECT_EQ(cold.simulated, 4u);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_TRUE(cold.complete());

  SweepReport warm;
  const auto second = BatchRunner(4).run(batch, &store, ShardSpec{}, &warm);
  EXPECT_EQ(warm.simulated, 0u);
  EXPECT_EQ(warm.hits, 4u);
  EXPECT_TRUE(warm.complete());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) expect_identical(first[i], second[i]);
}

TEST(ResultStore, ShardedSweepMergesBitIdenticalForEveryShardCount) {
  // The acceptance bar of the sharding layer: for --shard-count in
  // {1, 2, 3, 8}, running every shard against a shared store and then
  // folding with an unsharded warm pass reproduces the direct unsharded
  // run bit-for-bit — per run and per aggregated metric.
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/7, /*reps=*/8);
  const BatchRunner runner(4);
  const auto reference = runner.run(batch);
  const auto ref_agg = ebrc::testbed::aggregate(reference);

  for (const std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{8}}) {
    TempDir dir;
    ResultStore store(dir.path);
    std::size_t simulated_total = 0;
    for (std::size_t index = 0; index < count; ++index) {
      SweepReport rep;
      const auto part = runner.run(batch, &store, ShardSpec(index, count), &rep);
      simulated_total += rep.simulated;
      // Shard-local cells are already bit-identical to the reference.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (rep.available[i] != 0) expect_identical(reference[i], part[i]);
      }
    }
    // Every run simulated exactly once across all shards.
    EXPECT_EQ(simulated_total, batch.size()) << "shard count " << count;

    SweepReport merged_rep;
    const auto merged = runner.run(batch, &store, ShardSpec{}, &merged_rep);
    EXPECT_EQ(merged_rep.simulated, 0u) << "shard count " << count;
    EXPECT_EQ(merged_rep.hits, batch.size()) << "shard count " << count;
    ASSERT_TRUE(merged_rep.complete());
    for (std::size_t i = 0; i < batch.size(); ++i) expect_identical(reference[i], merged[i]);

    // And the aggregate folds to the same accumulators, bit for bit.
    const auto merged_agg = ebrc::testbed::aggregate(merged);
    EXPECT_EQ(merged_agg.runs, ref_agg.runs);
    ASSERT_EQ(merged_agg.metrics.size(), ref_agg.metrics.size());
    for (const auto& [name, m] : ref_agg.metrics) {
      const auto& other = merged_agg.metric(name);
      EXPECT_EQ(other.count(), m.count()) << name;
      expect_bits(other.mean(), m.mean(), name.c_str());
      expect_bits(other.m2(), m.m2(), name.c_str());
      expect_bits(other.min(), m.min(), name.c_str());
      expect_bits(other.max(), m.max(), name.c_str());
    }
  }
}

TEST(ResultStore, ColdShardRunReportsSkippedCells) {
  TempDir dir;
  ResultStore store(dir.path);
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/9, /*reps=*/5);
  SweepReport rep;
  const auto out = BatchRunner(2).run(batch, &store, ShardSpec(0, 2), &rep);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(rep.total, 5u);
  EXPECT_EQ(rep.simulated, 3u);  // cells 0, 2, 4
  EXPECT_EQ(rep.skipped, 2u);
  EXPECT_FALSE(rep.complete());
  EXPECT_EQ(rep.available[0], 1);
  EXPECT_EQ(rep.available[1], 0);
}

TEST(ResultStore, IndexAnswersWarmProbesWithoutFilesystemOps) {
  // The checkpoint-resume acceptance bar: against a 10^4-entry cache, the
  // INDEX sidecar answers presence in memory — absent keys cost ZERO
  // filesystem operations (no per-file stat storm), and only actual hits
  // read a file. Entries are canned results, not simulations: this test is
  // about the index, not the simulator.
  TempDir dir;
  constexpr std::uint64_t kEntries = 10'000;
  const ExperimentResult canned;  // payload content is irrelevant here
  {
    ResultStore writer(dir.path);
    for (std::uint64_t seed = 0; seed < kEntries; ++seed) {
      Scenario s = short_ns2(1);
      s.seed = seed;  // fingerprint excludes the seed: 10^4 distinct keys
      writer.store(s, canned);
    }
    EXPECT_EQ(writer.counters().stored, kEntries);
  }

  // A fresh store loads the index once at construction; probes after that
  // are pure memory lookups.
  ResultStore store(dir.path);
  for (std::uint64_t seed = 0; seed < kEntries; ++seed) {
    Scenario s = short_ns2(1);
    s.seed = seed;
    EXPECT_TRUE(store.probe(s));
  }
  EXPECT_EQ(store.counters().fs_probes, 0u);

  // 10^4 absent keys: all misses, still zero filesystem traffic.
  for (std::uint64_t seed = kEntries; seed < 2 * kEntries; ++seed) {
    Scenario s = short_ns2(1);
    s.seed = seed;
    EXPECT_FALSE(store.probe(s));
    EXPECT_FALSE(store.load(s).has_value());
  }
  auto c = store.counters();
  EXPECT_EQ(c.fs_probes, 0u);
  EXPECT_EQ(c.index_filtered, kEntries);
  EXPECT_EQ(c.misses, kEntries);

  // Only a real hit touches the filesystem — exactly once.
  Scenario present = short_ns2(1);
  present.seed = 123;
  EXPECT_TRUE(store.load(present).has_value());
  c = store.counters();
  EXPECT_EQ(c.fs_probes, 1u);
  EXPECT_EQ(c.hits, 1u);
}

TEST(ResultStore, AdmitMergesForeignKeyIntoIndex) {
  // The process-isolated sweep handoff: a worker subprocess stores an entry
  // through its OWN ResultStore, so the parent's in-memory index (loaded at
  // construction, before the entry existed) has never seen the key. Without
  // admit() the parent's index filters the probe to a miss even though the
  // bytes are on disk.
  TempDir dir;
  ResultStore parent(dir.path);  // constructed first: index snapshot is empty
  const Scenario s = short_ns2(123);
  const ExperimentResult fresh = ebrc::testbed::run_experiment(s);
  {
    ResultStore worker(dir.path);
    worker.store(s, fresh);  // writes the entry AND the on-disk index record
  }

  EXPECT_FALSE(parent.probe(s));
  EXPECT_FALSE(parent.load(s).has_value());
  auto c = parent.counters();
  EXPECT_EQ(c.index_filtered, 1u);
  EXPECT_EQ(c.fs_probes, 0u) << "a filtered miss must not touch the filesystem";

  parent.admit(s);
  EXPECT_TRUE(parent.probe(s));
  const auto cached = parent.load(s);
  ASSERT_TRUE(cached.has_value());
  expect_identical(fresh, *cached);
  c = parent.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.fs_probes, 1u) << "the admitted hit reads the worker's bytes";
}

TEST(ResultStore, TornIndexRecordIsDetectedAndRebuiltFromFilenames) {
  TempDir dir;
  const ExperimentResult canned;
  std::vector<Scenario> entries;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Scenario s = short_ns2(1);
    s.seed = seed;
    entries.push_back(s);
  }
  {
    ResultStore writer(dir.path);
    // The second index append (ordinal 1) crashes mid-record: only a prefix
    // of the 32-byte record reaches the file, shifting everything after it.
    ebrc::testbed::fault::arm({{ebrc::testbed::fault::Kind::kTornIndexRecord, 1, 0}});
    for (const auto& s : entries) writer.store(s, canned);
    ebrc::testbed::fault::disarm();
    // The torn append is non-fatal for the writer itself (its in-memory set
    // is intact); the defect bites the NEXT reader of the file.
    for (const auto& s : entries) EXPECT_TRUE(writer.probe(s));
    EXPECT_NE((fs::file_size(writer.index_path()) - 16) % 32, 0u);  // torn: misaligned
  }

  // A fresh store must refuse the torn index and rebuild from the entry
  // filenames: every stored key probes true again, and the rewritten index
  // is whole-record aligned.
  ResultStore store(dir.path);
  for (const auto& s : entries) {
    EXPECT_TRUE(store.probe(s));
    EXPECT_TRUE(store.load(s).has_value());
  }
  EXPECT_EQ(fs::file_size(store.index_path()), 16u + 3u * 32u);
  EXPECT_EQ(store.counters().corrupt, 0u);  // entries themselves untouched
}

TEST(ResultStore, TornCacheWriteIsQuarantinedWithForensicsFile) {
  TempDir dir;
  ResultStore store(dir.path);
  const Scenario s = short_ns2(77);
  const ExperimentResult fresh = ebrc::testbed::run_experiment(s);

  // The first store() write (ordinal 0) is torn in half right after the
  // atomic rename — the post-crash corruption a resumed sweep must survive.
  ebrc::testbed::fault::arm({{ebrc::testbed::fault::Kind::kTornCacheWrite, 0, 0}});
  store.store(s, fresh);
  ebrc::testbed::fault::disarm();
  const fs::path entry = store.path_for(s);
  ASSERT_TRUE(fs::exists(entry));
  EXPECT_FALSE(ebrc::testbed::validate_result_file(entry));

  // Loading diagnoses on stderr and moves the entry aside instead of
  // deleting it — *.corrupt is kept for forensics.
  testing::internal::CaptureStderr();
  EXPECT_FALSE(store.load(s).has_value());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[cache] quarantined"), std::string::npos) << err;
  EXPECT_FALSE(fs::exists(entry));
  fs::path forensics = entry;
  forensics += std::string(ebrc::testbed::quarantine_suffix());
  EXPECT_TRUE(fs::exists(forensics));
  auto c = store.counters();
  EXPECT_EQ(c.quarantined, 1u);
  EXPECT_EQ(c.corrupt, 1u);

  // Re-storing heals the cache; the forensics file stays.
  store.store(s, fresh);
  const auto healed = store.load(s);
  ASSERT_TRUE(healed.has_value());
  expect_identical(fresh, *healed);
  EXPECT_TRUE(fs::exists(forensics));
}

TEST(ResultStore, EntriesLandUnderFingerprintFanout) {
  TempDir dir;
  ResultStore store(dir.path);
  const Scenario s = short_ns2(3);
  const auto path = store.path_for(s);
  // <root>/<2 hex>/<fp16>-<seed16>-<salt16>.ebrcres
  EXPECT_EQ(path.parent_path().parent_path(), dir.path);
  EXPECT_EQ(path.parent_path().filename().string().size(), 2u);
  EXPECT_EQ(path.extension().string(), std::string(ebrc::testbed::result_file_extension()));
  const std::string stem = path.stem().string();
  EXPECT_EQ(stem.size(), 16u + 1 + 16u + 1 + 16u);
  EXPECT_EQ(stem.substr(0, 2), path.parent_path().filename().string());
}

}  // namespace
