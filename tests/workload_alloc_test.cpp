// Lifecycle-hygiene gate for the flow pool: churn is the first subsystem
// that constructs and retires connections on the hot path, so this binary
// overrides global operator new with a counting shim (same harness as
// packet_path_alloc_test) and asserts the pool's steady-state contract:
//
//   * once every slot has served both traffic classes, spawning/retiring
//     hundreds more flows performs (amortized) zero heap allocations — slot
//     recycling is open()/close() state rewinds, never construction,
//   * no pinned kernel callbacks are registered per arrival (pins are
//     permanent, so a per-flow pin is a leak by definition),
//   * retirement leaks no timers or event chains: after stop() the kernel
//     drains COMPLETELY, and the pending-event census stays flat across
//     measurement windows while churn runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/dumbbell.hpp"
#include "net/queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "workload/flow_manager.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace ebrc;

workload::FlowManagerConfig churn_config() {
  workload::FlowManagerConfig cfg;
  cfg.workload.arrival_rate_per_s = 30.0;
  cfg.workload.mean_size_pkts = 40.0;
  cfg.workload.max_concurrent = 8;
  cfg.base_rtt_s = 0.050;
  cfg.drain_s = 0.3;
  cfg.seed = 17;
  return cfg;
}

TEST(WorkloadAlloc, SteadyStateChurnIsAmortizedZeroAllocAndPinFlat) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 8e6, 0.001);
  workload::FlowManager mgr(net, churn_config());
  mgr.start(0.0);

  // Warm-up: with ~30 arrivals/s through an 8-slot pool, every slot has
  // served both classes many times over — all connections, dumbbell flows,
  // rings, and vector capacities exist.
  sim.run_until(60.0);
  mgr.begin_epoch();

  const std::uint64_t news0 = g_news.load(std::memory_order_relaxed);
  const std::uint64_t inline0 = sim::inline_function_heap_allocs();
  const std::uint64_t pins0 = sim.pinned_callbacks();
  const std::size_t queue0 = sim.queue_size();

  sim.run_until(180.0);

  const auto summary = mgr.summarize();
  ASSERT_GT(summary.completions, 400u) << "the window must churn real flows";

  // No pins per arrival, ever: the census is identical, not merely close.
  EXPECT_EQ(sim.pinned_callbacks(), pins0);
  // No inline-function spills: every lifecycle closure fits its buffer.
  EXPECT_EQ(sim::inline_function_heap_allocs() - inline0, 0u);
  // Amortized zero heap traffic per retired flow. The only allowed residue
  // is the geometric regrowth of the per-slot loss-interval SERIES kept for
  // post-run analysis; per completed transfer it must vanish.
  const double allocs_per_completion =
      static_cast<double>(g_news.load(std::memory_order_relaxed) - news0) /
      static_cast<double>(summary.completions);
  EXPECT_LT(allocs_per_completion, 0.05);
  // The pending-event census stays bounded: dead chains are collected, so a
  // tripled horizon may not triple the heap (allow slack for phase noise).
  EXPECT_LT(sim.queue_size(), queue0 * 3 + 64);
}

TEST(WorkloadAlloc, RetirementLeaksNoTimersKernelDrainsCompletely) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 8e6, 0.001);
  workload::FlowManager mgr(net, churn_config());
  mgr.start(0.0);
  sim.run_until(30.0);
  mgr.stop();  // arrival chain dies; active transfers run out

  // If any retired connection leaked a live timer or an immortal pinned
  // chain, run() would never return (or leave events pending).
  sim.run();
  EXPECT_EQ(sim.queue_size(), 0u);
  EXPECT_EQ(mgr.active_flows(), 0) << "every admitted transfer must retire";

  // And the pool's connections are all idle, ready for a next epoch.
  const auto summary = mgr.summarize();
  EXPECT_EQ(summary.arrivals, summary.completions);
}

}  // namespace
