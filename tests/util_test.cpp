#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace ebrc::util;

TEST(Math, SquareAndCube) {
  EXPECT_DOUBLE_EQ(sq(3.0), 9.0);
  EXPECT_DOUBLE_EQ(cube(2.0), 8.0);
  EXPECT_EQ(sq(-4), 16);
}

TEST(Math, Close) {
  EXPECT_TRUE(close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(close(1.0, 1.001));
  EXPECT_TRUE(close(1e12, 1e12 + 1.0, 1e-9));  // relative scaling
}

TEST(Math, ClampAndLerp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--alpha=1.5", "--beta", "2", "--verbose", "input.txt"};
  Cli cli(6, argv);
  EXPECT_TRUE(cli.has("alpha"));
  EXPECT_DOUBLE_EQ(cli.get("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get("beta", 0), 2);
  EXPECT_TRUE(cli.get("verbose", false));
  EXPECT_FALSE(cli.get("quiet", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, BooleanForms) {
  const char* argv[] = {"prog", "--a=true", "--b=off", "--c"};
  Cli cli(4, argv);
  EXPECT_TRUE(cli.get("a", false));
  EXPECT_FALSE(cli.get("b", true));
  EXPECT_TRUE(cli.get("c", false));
}

TEST(Cli, UnknownFlagRejected) {
  const char* argv[] = {"prog", "--oops"};
  Cli cli(2, argv);
  cli.know("fine");
  EXPECT_THROW(cli.finish(), std::invalid_argument);
}

TEST(Cli, KnownFlagsPass) {
  const char* argv[] = {"prog", "--fine=1"};
  Cli cli(2, argv);
  cli.know("fine");
  EXPECT_NO_THROW(cli.finish());
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/ebrc_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({1.0, 2.5});
    csv.raw_row({"x", "y"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, RowArityEnforced) {
  const std::string path = ::testing::TempDir() + "/ebrc_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({std::string("x"), std::string("1")});
  t.row({1.23456789, 2.0}, 3);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Table, RejectsBadArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({std::string("only-one")}), std::invalid_argument);
}

TEST(Fmt, SignificantDigits) {
  EXPECT_EQ(fmt(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(fmt(1234.0, 2), "1.2e+03");
}

}  // namespace
