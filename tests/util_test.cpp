#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace ebrc::util;

TEST(Math, SquareAndCube) {
  EXPECT_DOUBLE_EQ(sq(3.0), 9.0);
  EXPECT_DOUBLE_EQ(cube(2.0), 8.0);
  EXPECT_EQ(sq(-4), 16);
}

TEST(Math, Close) {
  EXPECT_TRUE(close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(close(1.0, 1.001));
  EXPECT_TRUE(close(1e12, 1e12 + 1.0, 1e-9));  // relative scaling
}

TEST(Math, ClampAndLerp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--alpha=1.5", "--beta", "2", "--verbose", "input.txt"};
  Cli cli(6, argv);
  EXPECT_TRUE(cli.has("alpha"));
  EXPECT_DOUBLE_EQ(cli.get("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get("beta", 0), 2);
  EXPECT_TRUE(cli.get("verbose", false));
  EXPECT_FALSE(cli.get("quiet", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, BooleanForms) {
  const char* argv[] = {"prog", "--a=true", "--b=off", "--c"};
  Cli cli(4, argv);
  EXPECT_TRUE(cli.get("a", false));
  EXPECT_FALSE(cli.get("b", true));
  EXPECT_TRUE(cli.get("c", false));
}

TEST(Cli, UnknownFlagRejected) {
  const char* argv[] = {"prog", "--oops"};
  Cli cli(2, argv);
  cli.know("fine");
  EXPECT_THROW(cli.finish(), std::invalid_argument);
}

TEST(Cli, UnknownFlagErrorListsKnownFlags) {
  const char* argv[] = {"prog", "--oops"};
  Cli cli(2, argv);
  cli.know("seed").know("jobs");
  try {
    cli.finish();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--oops"), std::string::npos);
    EXPECT_NE(msg.find("--seed"), std::string::npos);
    EXPECT_NE(msg.find("--jobs"), std::string::npos);
  }
}

TEST(Cli, Uint64SeedSurvivesFullRange) {
  // 2^63 + 11 would truncate or throw through the int overload.
  const char* argv[] = {"prog", "--seed=9223372036854775819"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get("seed", std::uint64_t{1}), 9223372036854775819ull);
  EXPECT_EQ(cli.get("absent", std::uint64_t{7}), 7ull);
}

TEST(Cli, IntRejectsPartialParses) {
  // std::stoi would read "1e2" as 1; the strict parse must reject it.
  const char* argv[] = {"prog", "--reps=1e2", "--jobs=2x", "--n=7"};
  Cli cli(4, argv);
  EXPECT_THROW((void)cli.get("reps", 1), std::invalid_argument);
  EXPECT_THROW((void)cli.get("jobs", 0), std::invalid_argument);
  EXPECT_EQ(cli.get("n", 0), 7);
}

TEST(Cli, Uint64RejectsGarbageAndNegatives) {
  const char* argv[] = {"prog", "--a=-3", "--b=12x"};
  Cli cli(3, argv);
  EXPECT_THROW((void)cli.get("a", std::uint64_t{0}), std::invalid_argument);
  EXPECT_THROW((void)cli.get("b", std::uint64_t{0}), std::invalid_argument);
}

TEST(Cli, KnownFlagsPass) {
  const char* argv[] = {"prog", "--fine=1"};
  Cli cli(2, argv);
  cli.know("fine");
  EXPECT_NO_THROW(cli.finish());
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/ebrc_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({1.0, 2.5});
    csv.raw_row({"x", "y"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, RowArityEnforced) {
  const std::string path = ::testing::TempDir() + "/ebrc_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({std::string("x"), std::string("1")});
  t.row({1.23456789, 2.0}, 3);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Table, RejectsBadArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({std::string("only-one")}), std::invalid_argument);
}

TEST(Fmt, SignificantDigits) {
  EXPECT_EQ(fmt(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(fmt(1234.0, 2), "1.2e+03");
}

}  // namespace
