#include <gtest/gtest.h>

#include <bit>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/binary_io.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/doc.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace ebrc::util;

TEST(Math, SquareAndCube) {
  EXPECT_DOUBLE_EQ(sq(3.0), 9.0);
  EXPECT_DOUBLE_EQ(cube(2.0), 8.0);
  EXPECT_EQ(sq(-4), 16);
}

TEST(Math, Close) {
  EXPECT_TRUE(close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(close(1.0, 1.001));
  EXPECT_TRUE(close(1e12, 1e12 + 1.0, 1e-9));  // relative scaling
}

TEST(Math, ClampAndLerp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--alpha=1.5", "--beta", "2", "--verbose", "input.txt"};
  Cli cli(6, argv);
  EXPECT_TRUE(cli.has("alpha"));
  EXPECT_DOUBLE_EQ(cli.get("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get("beta", 0), 2);
  EXPECT_TRUE(cli.get("verbose", false));
  EXPECT_FALSE(cli.get("quiet", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, BooleanForms) {
  const char* argv[] = {"prog", "--a=true", "--b=off", "--c"};
  Cli cli(4, argv);
  EXPECT_TRUE(cli.get("a", false));
  EXPECT_FALSE(cli.get("b", true));
  EXPECT_TRUE(cli.get("c", false));
}

TEST(Cli, UnknownFlagRejected) {
  const char* argv[] = {"prog", "--oops"};
  Cli cli(2, argv);
  cli.know("fine");
  EXPECT_THROW(cli.finish(), std::invalid_argument);
}

TEST(Cli, UnknownFlagErrorListsKnownFlags) {
  const char* argv[] = {"prog", "--oops"};
  Cli cli(2, argv);
  cli.know("seed").know("jobs");
  try {
    cli.finish();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--oops"), std::string::npos);
    EXPECT_NE(msg.find("--seed"), std::string::npos);
    EXPECT_NE(msg.find("--jobs"), std::string::npos);
  }
}

TEST(Cli, SweepFlagListingNamesShardAndCacheFlags) {
  // The sweep binaries register these through BenchArgs; a typo'd flag must
  // point the operator at the persistence-layer spelling.
  const char* argv[] = {"prog", "--shard=1"};
  Cli cli(2, argv);
  cli.know("reps").know("jobs").know("cache").know("shard-index").know("shard-count")
      .know("summary-out");
  try {
    cli.finish();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--shard (known"), std::string::npos);
    EXPECT_NE(msg.find("--shard-index"), std::string::npos);
    EXPECT_NE(msg.find("--shard-count"), std::string::npos);
    EXPECT_NE(msg.find("--cache"), std::string::npos);
    EXPECT_NE(msg.find("--summary-out"), std::string::npos);
  }
}

TEST(Cli, Uint64SeedSurvivesFullRange) {
  // 2^63 + 11 would truncate or throw through the int overload.
  const char* argv[] = {"prog", "--seed=9223372036854775819"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get("seed", std::uint64_t{1}), 9223372036854775819ull);
  EXPECT_EQ(cli.get("absent", std::uint64_t{7}), 7ull);
}

TEST(Cli, IntRejectsPartialParses) {
  // std::stoi would read "1e2" as 1; the strict parse must reject it.
  const char* argv[] = {"prog", "--reps=1e2", "--jobs=2x", "--n=7"};
  Cli cli(4, argv);
  EXPECT_THROW((void)cli.get("reps", 1), std::invalid_argument);
  EXPECT_THROW((void)cli.get("jobs", 0), std::invalid_argument);
  EXPECT_EQ(cli.get("n", 0), 7);
}

TEST(Cli, Uint64RejectsGarbageAndNegatives) {
  const char* argv[] = {"prog", "--a=-3", "--b=12x"};
  Cli cli(3, argv);
  EXPECT_THROW((void)cli.get("a", std::uint64_t{0}), std::invalid_argument);
  EXPECT_THROW((void)cli.get("b", std::uint64_t{0}), std::invalid_argument);
}

TEST(Cli, DoubleRejectsPartialParses) {
  // std::stod would silently read "--cell-deadline=10s" as 10 — a unit typo
  // must fail loudly, naming the flag and the offending token.
  const char* argv[] = {"prog", "--cell-deadline=10s", "--rate=1.5e3x", "--w= ",
                        "--empty=", "--ok=2.5e-3"};
  Cli cli(6, argv);
  for (const char* flag : {"cell-deadline", "rate", "w", "empty"}) {
    try {
      (void)cli.get(flag, 0.0);
      FAIL() << "expected rejection of --" << flag;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(std::string("--") + flag), std::string::npos);
    }
  }
  EXPECT_DOUBLE_EQ(cli.get("ok", 0.0), 2.5e-3);
  EXPECT_DOUBLE_EQ(cli.get("absent", 1.25), 1.25);
}

TEST(Cli, DoubleErrorNamesTheToken) {
  const char* argv[] = {"prog", "--cell-deadline=10s"};
  Cli cli(2, argv);
  try {
    (void)cli.get("cell-deadline", 0.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'10s'"), std::string::npos);
  }
}

TEST(Cli, ParsePositiveIntListAcceptsIntegersAndScientific) {
  using ebrc::util::parse_positive_int_list;
  const auto v = parse_positive_int_list("pools", "100,300,1e6,10000000000");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 100);
  EXPECT_EQ(v[1], 300);
  EXPECT_EQ(v[2], 1000000);          // the 1M rung, scientific spelling
  EXPECT_EQ(v[3], 10000000000ll);    // past 2^31: must not throw like stoi
  EXPECT_EQ(parse_positive_int_list("pools", "42")[0], 42);
}

TEST(Cli, ParsePositiveIntListRejectsGarbageNamingTheToken) {
  using ebrc::util::parse_positive_int_list;
  for (const char* bad : {"abc", "0", "-5", "1.5", "1e6.5", "100,,300", "100,2x", ""}) {
    try {
      (void)parse_positive_int_list("pools", bad);
      FAIL() << "expected rejection of '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--pools"), std::string::npos) << bad;
    }
  }
  // The bad token itself is named (not just the whole list).
  try {
    (void)parse_positive_int_list("pools", "100,oops,300");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'oops'"), std::string::npos);
  }
}

TEST(Cli, KnownFlagsPass) {
  const char* argv[] = {"prog", "--fine=1"};
  Cli cli(2, argv);
  cli.know("fine");
  EXPECT_NO_THROW(cli.finish());
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/ebrc_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({1.0, 2.5});
    csv.raw_row({"x", "y"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, RowArityEnforced) {
  const std::string path = ::testing::TempDir() + "/ebrc_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({std::string("x"), std::string("1")});
  t.row({1.23456789, 2.0}, 3);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Table, RejectsBadArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({std::string("only-one")}), std::invalid_argument);
}

TEST(Fmt, SignificantDigits) {
  EXPECT_EQ(fmt(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(fmt(1234.0, 2), "1.2e+03");
}

// ---- doc: the TOML/JSON carrier of scenario files ----------------------------

TEST(Doc, FormatDoubleRoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, -0.0, 1e-300, 1e300, 15e6, -2.5, 4.9e-324}) {
    const std::string s = format_double(v);
    double back = 0.0;
    const auto r = std::from_chars(s.data(), s.data() + s.size(), back);
    ASSERT_EQ(r.ec, std::errc{}) << s;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back), std::bit_cast<std::uint64_t>(v)) << s;
  }
  // Integral doubles stay float-shaped so parsers type them as floats.
  EXPECT_NE(format_double(4.0).find_first_of(".eE"), std::string::npos);
}

TEST(Doc, TomlParsesScalarsCommentsAndSections) {
  const DocTable doc = parse_toml(
      "# a scenario file\n"
      "name = \"lab \\\"A\\\"\"   # trailing comment\n"
      "rate = 1.5e7\n"
      "count = -3\n"
      "big = 18446744073709551615\n"
      "on = true\n"
      "\n"
      "[sub]\n"
      "x = 2.0\n");
  ASSERT_NE(doc_find(doc, "name"), nullptr);
  EXPECT_EQ(*doc_find(doc, "name")->if_string(), "lab \"A\"");
  EXPECT_DOUBLE_EQ(*doc_find(doc, "rate")->if_double(), 1.5e7);
  EXPECT_EQ(*doc_find(doc, "count")->if_i64(), -3);
  EXPECT_EQ(*doc_find(doc, "big")->if_u64(), ~std::uint64_t{0});
  EXPECT_TRUE(*doc_find(doc, "on")->if_bool());
  const DocTable* sub = doc_find(doc, "sub")->if_table();
  ASSERT_NE(sub, nullptr);
  EXPECT_DOUBLE_EQ(*doc_find(*sub, "x")->if_double(), 2.0);
}

TEST(Doc, TomlRejectsMalformedInputWithLineNumbers) {
  EXPECT_THROW((void)parse_toml("a = 1\na = 2\n"), std::invalid_argument);  // duplicate
  EXPECT_THROW((void)parse_toml("a 1\n"), std::invalid_argument);           // no '='
  EXPECT_THROW((void)parse_toml("[t\n"), std::invalid_argument);            // missing ']'
  EXPECT_THROW((void)parse_toml("a = \"x\\q\"\n"), std::invalid_argument);  // bad escape
  EXPECT_THROW((void)parse_toml("a = 12x\n"), std::invalid_argument);       // bad number
  try {
    (void)parse_toml("ok = 1\nbroken\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Doc, TomlAndJsonRoundTripADocumentExactly) {
  DocTable doc;
  doc.push_back({"s", DocValue(std::string("quotes \" slashes \\ lines \n tabs \t"))});
  doc.push_back({"f", DocValue(0.1)});
  doc.push_back({"neg", DocValue(std::int64_t{-42})});
  doc.push_back({"u", DocValue(~std::uint64_t{0})});
  doc.push_back({"b", DocValue(false)});
  DocTable sub;
  sub.push_back({"inner", DocValue(2.5)});
  doc.push_back({"t", DocValue(std::move(sub))});

  EXPECT_TRUE(parse_toml(to_toml(doc)) == doc);
  EXPECT_TRUE(parse_json(to_json(doc)) == doc);
}

TEST(Doc, JsonRejectsMalformedInput) {
  EXPECT_THROW((void)parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\": 1} trailing"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\": 1, \"a\": 2}"), std::invalid_argument);
}

TEST(Doc, TomlNestedTablesBeyondOneLevelThrow) {
  DocTable inner_inner;
  inner_inner.push_back({"x", DocValue(1.0)});
  DocTable inner;
  inner.push_back({"deep", DocValue(std::move(inner_inner))});
  DocTable doc;
  doc.push_back({"t", DocValue(std::move(inner))});
  EXPECT_THROW((void)to_toml(doc), std::invalid_argument);
  EXPECT_NO_THROW((void)to_json(doc));  // JSON nests freely
}

// ---- binary_io: the cache codec primitives -----------------------------------

TEST(BinaryIo, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u64(~std::uint64_t{0});
  w.i64(-17);
  w.f64(-0.0);
  w.str("hello \0 world");  // embedded NUL via string_view literal truncation is fine
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u64(), ~std::uint64_t{0});
  EXPECT_EQ(r.i64(), -17);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()), std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(r.str(), "hello ");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(BinaryIo, ReaderFlagsOverrunsInsteadOfThrowing) {
  ByteWriter w;
  w.u64(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u64(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // past the end
  EXPECT_FALSE(r.ok());

  // A length-prefixed string whose length exceeds the buffer must not read
  // out of bounds.
  ByteWriter bad;
  bad.u64(1000);
  ByteReader rb(bad.bytes());
  EXPECT_EQ(rb.str(), "");
  EXPECT_FALSE(rb.ok());
}

TEST(BinaryIo, Fnv1aSeparatesFieldBoundaries) {
  Fnv1a a;
  a.str("ab");
  a.str("c");
  Fnv1a b;
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.digest(), b.digest());
  Fnv1a empty;
  EXPECT_NE(empty.digest(), 0u);  // FNV offset basis
}

}  // namespace
