// Property test: the cached (O(1)-query) MovingAverageEstimator agrees
// BIT-FOR-BIT with the naive O(L)-per-query implementation it replaced,
// across random push/seed sequences, window lengths, weight profiles, open
// intervals, and discount factors. The cache recomputes in the same
// accumulation order as the naive loops, so agreement is exact — any ulp of
// drift here would shift sample paths of every TFRC experiment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/estimator.hpp"
#include "core/weights.hpp"

namespace {

using ebrc::core::MovingAverageEstimator;

/// The pre-overhaul reference: a deque history, every query an O(L) loop
/// (verbatim port of the old estimator.cpp).
class NaiveEstimator {
 public:
  explicit NaiveEstimator(std::vector<double> weights) : weights_(std::move(weights)) {}

  void push(double theta) {
    history_.push_front(theta);
    if (history_.size() > weights_.size()) history_.pop_back();
  }
  void seed(double theta) { history_.assign(weights_.size(), theta); }

  [[nodiscard]] double value() const {
    double num = 0.0;
    double mass = 0.0;
    const std::size_t n = std::min(history_.size(), weights_.size());
    for (std::size_t l = 0; l < n; ++l) {
      num += weights_[l] * history_[l];
      mass += weights_[l];
    }
    return num / mass;
  }
  [[nodiscard]] double shifted_tail() const {
    double tail = 0.0;
    const std::size_t n = std::min(history_.size(), weights_.size() - 1);
    for (std::size_t l = 0; l < n; ++l) tail += weights_[l + 1] * history_[l];
    return tail;
  }
  [[nodiscard]] double shifted_tail_mass() const {
    double mass = 0.0;
    const std::size_t n = std::min(history_.size(), weights_.size() - 1);
    for (std::size_t l = 0; l < n; ++l) mass += weights_[l + 1];
    return mass;
  }
  [[nodiscard]] double open_threshold() const {
    return (value() - shifted_tail()) / weights_.front();
  }
  [[nodiscard]] double value_with_open(double open) const {
    return std::max(value(), weights_.front() * open + shifted_tail());
  }
  [[nodiscard]] double value_with_open_discounted(double open, double d) const {
    const double w1 = weights_.front();
    return std::max(value(), (w1 * open + d * shifted_tail()) / (w1 + d * shifted_tail_mass()));
  }

 private:
  std::vector<double> weights_;
  std::deque<double> history_;
};

// Deterministic generator independent of the library's Rng (so this test
// cannot drift when the engine changes): splitmix64.
struct Splitmix {
  std::uint64_t x;
  std::uint64_t next() {
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

void check_agreement(const MovingAverageEstimator& fast, const NaiveEstimator& naive,
                     Splitmix& rng, std::size_t step) {
  ASSERT_EQ(fast.value(), naive.value()) << "step " << step;
  ASSERT_EQ(fast.shifted_tail(), naive.shifted_tail()) << "step " << step;
  ASSERT_EQ(fast.shifted_tail_mass(), naive.shifted_tail_mass()) << "step " << step;
  ASSERT_EQ(fast.open_threshold(), naive.open_threshold()) << "step " << step;
  const double open = rng.unit() * 500.0;
  ASSERT_EQ(fast.value_with_open(open), naive.value_with_open(open)) << "step " << step;
  const double d = 0.5 + 0.5 * rng.unit();
  ASSERT_EQ(fast.value_with_open_discounted(open, d),
            naive.value_with_open_discounted(open, d))
      << "step " << step;
}

TEST(EstimatorProperty, BitIdenticalToNaiveAcrossRandomSequences) {
  for (const std::size_t L : {1u, 2u, 3u, 8u, 16u, 32u}) {
    for (const std::uint64_t seed : {1u, 7u, 99u}) {
      const auto weights = ebrc::core::tfrc_weights(L);
      MovingAverageEstimator fast(weights);
      NaiveEstimator naive(weights);
      Splitmix rng{seed * 1000003ull + L};
      for (std::size_t step = 0; step < 500; ++step) {
        const std::uint64_t op = rng.next() % 16;
        if (op == 0) {
          const double theta = 1.0 + rng.unit() * 100.0;
          fast.seed(theta);
          naive.seed(theta);
        } else {
          const double theta = 0.5 + rng.unit() * 200.0;
          fast.push(theta);
          naive.push(theta);
        }
        check_agreement(fast, naive, rng, step);
      }
    }
  }
}

TEST(EstimatorProperty, UniformAndGeometricProfilesAgreeToo) {
  for (const auto& weights :
       {ebrc::core::uniform_weights(8), ebrc::core::geometric_weights(8, 0.7)}) {
    MovingAverageEstimator fast(weights);
    NaiveEstimator naive(weights);
    Splitmix rng{42};
    for (std::size_t step = 0; step < 300; ++step) {
      const double theta = 0.1 + rng.unit() * 50.0;
      fast.push(theta);
      naive.push(theta);
      check_agreement(fast, naive, rng, step);
    }
  }
}

TEST(EstimatorProperty, WarmupPrefixRenormalizationMatches) {
  // The pre-warmup renormalization path (mass < 1) is where an incremental
  // scheme would most plausibly diverge; hammer the first L pushes.
  const auto weights = ebrc::core::tfrc_weights(16);
  MovingAverageEstimator fast(weights);
  NaiveEstimator naive(weights);
  Splitmix rng{1234};
  for (std::size_t step = 0; step < 16; ++step) {
    const double theta = 1.0 + rng.unit() * 10.0;
    fast.push(theta);
    naive.push(theta);
    ASSERT_FALSE(step + 1 < 16 && fast.warmed_up());
    check_agreement(fast, naive, rng, step);
  }
  EXPECT_TRUE(fast.warmed_up());
}

}  // namespace
