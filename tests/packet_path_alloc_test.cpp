// The acceptance gate for the zero-allocation packet path: once a topology
// is warmed up (rings at steady capacity, slab and heap reserved, RTT
// estimates settled), forwarding packets must allocate NOTHING — the test
// binary overrides global operator new with a counting shim and asserts an
// exact zero over a measurement window on the pure forwarding path, plus
// zero InlineFunction heap fallbacks and a near-zero amortized total for the
// full TFRC/TCP protocol stack (whose loss-interval SERIES, recorded for
// post-analysis, grows amortized-geometrically by design).
//
// Also pins the event economics the self-clocking pipes promise: a data
// packet costs two simulator events end to end (the sender's emission event,
// inside which bottleneck admission resolves on the virtual clock, plus the
// tail pipe's delivery), where the old layout paid four.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/dumbbell.hpp"
#include "net/probe_senders.hpp"
#include "net/queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "tfrc/tfrc_connection.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace ebrc;

TEST(PacketPathAlloc, ForwardingPathIsExactlyZeroAllocSteadyState) {
  sim::Simulator sim;
  // Two CBR probes at 99% of link capacity: the bottleneck serializes
  // back-to-back and its ring wraps on every packet, with no losses (a loss
  // event would append to the probes' recorded interval series, which is
  // measurement state, not forwarding state — the congested case is covered
  // with an amortized bound below).
  net::Dumbbell net(sim, net::Queue::drop_tail(32), 1e6, 0.001);
  const int a = net.add_flow(0.004, 0.005);
  const int b = net.add_flow(0.009, 0.010);
  net::ProbeSender p1(net, a, 62.0, 1000.0, net::ProbePattern::kCbr, 0.05, 3);
  net::ProbeSender p2(net, b, 62.0, 1000.0, net::ProbePattern::kCbr, 0.05, 4);
  p1.start(0.0);
  p2.start(0.1037);  // offset phases so arrivals interleave
  sim.run_until(20.0);  // warm-up: rings, slab, heap all reach steady size

  const std::uint64_t news0 = g_news.load(std::memory_order_relaxed);
  const std::uint64_t if0 = sim::inline_function_heap_allocs();
  const std::uint64_t delivered0 = net.bottleneck().delivered();
  const std::uint64_t events0 = sim.events_executed();
  const std::uint64_t sent0 = p1.sent() + p2.sent();

  sim.run_until(80.0);

  const std::uint64_t forwarded = net.bottleneck().delivered() - delivered0;
  EXPECT_GT(forwarded, 7000u);  // the window moved real traffic
  EXPECT_EQ(g_news.load(std::memory_order_relaxed) - news0, 0u)
      << "steady-state forwarding must not touch the heap";
  EXPECT_EQ(sim::inline_function_heap_allocs() - if0, 0u);
  // Event economics: per packet one pacing event (bottleneck admission
  // resolves inline in it) + one tail-pipe delivery — exactly 2, where the
  // pre-overhaul layout paid 4 (pacing + access + serialization-finish +
  // delivery).
  const double events_per_packet =
      static_cast<double>(sim.events_executed() - events0) /
      static_cast<double>(p1.sent() + p2.sent() - sent0);
  EXPECT_NEAR(events_per_packet, 2.0, 0.05);
}

TEST(PacketPathAlloc, TfrcTcpStackZeroInlineFallbacksAndAmortizedTotal) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::red(net::red_params_for_bdp(15e6, 0.05), 7), 15e6,
                    0.001);
  std::deque<tfrc::TfrcConnection> tfrcs;
  std::deque<tcp::TcpConnection> tcps;
  for (int i = 0; i < 2; ++i) {
    const int id = net.add_flow(0.024, 0.025);
    tfrcs.emplace_back(net, id, 0.050).start(0.05 * i);
  }
  for (int i = 0; i < 2; ++i) {
    const int id = net.add_flow(0.024, 0.025);
    tcps.emplace_back(net, id, 0.050).start(0.025 + 0.05 * i);
  }
  sim.run_until(30.0);

  const std::uint64_t news0 = g_news.load(std::memory_order_relaxed);
  const std::uint64_t if0 = sim::inline_function_heap_allocs();
  const std::uint64_t delivered0 = net.bottleneck().delivered();

  sim.run_until(90.0);

  const std::uint64_t forwarded = net.bottleneck().delivered() - delivered0;
  EXPECT_GT(forwarded, 50000u);
  // No event closure on the protocol stack may outgrow its inline buffer.
  EXPECT_EQ(sim::inline_function_heap_allocs() - if0, 0u);
  // The only remaining heap activity is the amortized growth of the recorded
  // loss-interval SERIES (kept deliberately for post-run covariance
  // analysis): a handful of vector regrowths per minute, invisible per
  // packet.
  const double allocs_per_packet =
      static_cast<double>(g_news.load(std::memory_order_relaxed) - news0) /
      static_cast<double>(forwarded);
  EXPECT_LT(allocs_per_packet, 0.005);
}

}  // namespace
