#include <gtest/gtest.h>

#include <memory>

#include "core/weights.hpp"
#include "loss/droppers.hpp"
#include "model/throughput_function.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/tfrc_connection.hpp"
#include "tfrc/variable_packet_sender.hpp"

namespace {

using namespace ebrc;
using tfrc::LossHistory;

TEST(LossHistory, ClosesIntervalsOnSpacedLosses) {
  LossHistory h(core::tfrc_weights(4), /*comprehensive=*/true);
  const double rtt = 0.1;
  double t = 0.0;
  EXPECT_FALSE(h.has_loss());
  // 10 in-order packets, then a loss (gap of 1), repeated with > RTT spacing.
  for (int ev = 0; ev < 6; ++ev) {
    for (int k = 0; k < 10; ++k) h.on_packet(0, t += 0.05, rtt);
    if (ev == 0) h.seed(11.0);  // first event seeds
    h.on_packet(1, t += 0.05, rtt);  // one missing before this packet
  }
  EXPECT_TRUE(h.has_loss());
  EXPECT_EQ(h.events(), 6u);
  ASSERT_GE(h.closed_intervals().size(), 4u);
  // Every closed interval contains the 10 arrivals + 1 lost + the packet
  // after the previous gap = 12 sequence numbers.
  for (double v : h.closed_intervals()) EXPECT_NEAR(v, 12.0, 1e-12);
}

TEST(LossHistory, GroupsLossesWithinOneRtt) {
  LossHistory h(core::tfrc_weights(4), true);
  const double rtt = 1.0;
  double t = 0.0;
  for (int k = 0; k < 20; ++k) h.on_packet(0, t += 0.01, rtt);
  h.seed(20.0);
  h.on_packet(1, t += 0.01, rtt);   // event 1
  h.on_packet(1, t += 0.01, rtt);   // same event (within 1 RTT)
  h.on_packet(1, t += 2.00, rtt);   // event 2
  EXPECT_EQ(h.events(), 2u);
}

TEST(LossHistory, ComprehensiveIncludesOpenInterval) {
  LossHistory hc(core::tfrc_weights(2), true);
  LossHistory hb(core::tfrc_weights(2), false);
  const double rtt = 0.1;
  double t = 0.0;
  for (LossHistory* h : {&hc, &hb}) {
    double tt = t;
    for (int k = 0; k < 5; ++k) h->on_packet(0, tt += 0.05, rtt);
    h->seed(5.0);
    h->on_packet(1, tt += 0.5, rtt);
  }
  // Long loss-free run: the comprehensive estimate grows, the basic is flat.
  double tt = t + 1.0;
  for (int k = 0; k < 200; ++k) {
    hc.on_packet(0, tt += 0.05, rtt);
    hb.on_packet(0, tt += 0.05, rtt);
  }
  EXPECT_GT(hc.mean_interval(), hb.mean_interval() * 2.0);
  EXPECT_NEAR(hb.mean_interval(), 5.0, 1e-9);
}

TEST(LossHistory, RequiresSeedBeforeQuery) {
  LossHistory h(core::tfrc_weights(4), true);
  EXPECT_THROW((void)h.mean_interval(), std::logic_error);
  EXPECT_DOUBLE_EQ(h.loss_event_rate(), 0.0);
  EXPECT_THROW(h.on_packet(-1, 0.0, 0.1), std::invalid_argument);
}

struct TfrcWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Dumbbell> net;
  std::unique_ptr<tfrc::TfrcConnection> conn;

  TfrcWorld(double rate_bps, std::size_t buffer, double rtt_s, tfrc::TfrcConfig cfg = {}) {
    net = std::make_unique<net::Dumbbell>(
        sim, net::Queue::drop_tail(buffer), rate_bps, 0.001);
    const int id = net->add_flow(rtt_s / 2.0 - 0.001, rtt_s / 2.0);
    conn = std::make_unique<tfrc::TfrcConnection>(*net, id, rtt_s, cfg);
  }
};

TEST(Tfrc, SlowStartsThenFillsThePipe) {
  TfrcWorld w(4e6, 40, 0.040);
  w.conn->start(0.0);
  w.sim.run_until(120.0);
  const double capacity_pps = 500.0;
  const double goodput = static_cast<double>(w.conn->delivered()) / 120.0;
  EXPECT_GT(goodput, 0.6 * capacity_pps);
  EXPECT_LT(goodput, 1.05 * capacity_pps);
  EXPECT_GE(w.conn->loss_history().events(), 3u);
}

TEST(Tfrc, RttEstimateTracksPath) {
  TfrcWorld w(4e6, 100, 0.080);
  w.conn->start(0.0);
  w.sim.run_until(40.0);
  EXPECT_GE(w.conn->srtt(), 0.078);
  EXPECT_LT(w.conn->srtt(), 0.4);
}

TEST(Tfrc, RateFollowsFormulaAfterLoss) {
  TfrcWorld w(2e6, 30, 0.050);
  w.conn->start(0.0);
  w.sim.run_until(90.0);
  ASSERT_GT(w.conn->loss_history().events(), 10u);
  // The instantaneous rate equals f(p,r) at the connection's own estimates
  // (within the 2x receive-rate cap and feedback lag).
  const double formula = w.conn->formula_rate();
  ASSERT_GT(formula, 0.0);
  EXPECT_GT(w.conn->rate(), 0.25 * formula);
  EXPECT_LT(w.conn->rate(), 2.5 * formula);
}

TEST(Tfrc, SmootherThanTcpUnderSameConditions) {
  // A core TFRC design goal: rate variance lower than TCP's cwnd-driven
  // sawtooth. We compare the loss-interval-estimator cv as a proxy via the
  // recorder series.
  TfrcWorld w(2e6, 20, 0.040);
  w.conn->start(0.0);
  w.sim.run_until(120.0);
  const auto& intervals = w.conn->recorder().intervals_packets();
  ASSERT_GT(intervals.size(), 20u);
  // Sanity: the measured loss-event rate is positive and the mean interval
  // finite (the estimator is doing real smoothing work).
  EXPECT_GT(w.conn->recorder().loss_event_rate(), 0.0);
}

TEST(Tfrc, BasicControlVariantDisablesOpenInterval) {
  tfrc::TfrcConfig cfg;
  cfg.comprehensive = false;
  TfrcWorld w(2e6, 30, 0.050, cfg);
  w.conn->start(0.0);
  w.sim.run_until(60.0);
  EXPECT_GT(w.conn->delivered(), 1000u);
}

TEST(Tfrc, Validation) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(10), 1e6, 0.001);
  const int id = net.add_flow(0.01, 0.01);
  EXPECT_THROW(tfrc::TfrcConnection(net, id, 0.0), std::invalid_argument);
  tfrc::TfrcConfig bad;
  bad.initial_rate_pps = -1.0;
  EXPECT_THROW(tfrc::TfrcConnection(net, id, 0.05, bad), std::invalid_argument);
}

TEST(VariablePacketSender, MatchesAnalyticAudioModel) {
  // The packet-level audio sender through a Bernoulli dropper reproduces the
  // analytic run_audio_control shape: conservative for SQRT, non-conservative
  // for PFTK under heavy loss.
  sim::Simulator sim;
  auto fp = model::make_throughput_function("pftk-simplified", 1.0);
  loss::BernoulliDropper dropper(0.22, 9);
  tfrc::VariablePacketConfig cfg;
  cfg.packet_rate_pps = 50.0;
  cfg.history_length = 4;
  cfg.comprehensive = false;
  tfrc::VariablePacketSender audio(sim, dropper, fp, cfg);
  audio.start(0.0);
  sim.run_until(400.0);
  audio.reset_measurement();
  sim.run_until(4400.0);
  EXPECT_GT(audio.loss_event_rate(), 0.18);
  EXPECT_GT(audio.normalized_throughput(), 1.0);

  // SQRT stays conservative at the same loss rate.
  sim::Simulator sim2;
  auto fs = model::make_throughput_function("sqrt", 1.0);
  loss::BernoulliDropper dropper2(0.22, 9);
  tfrc::VariablePacketSender audio2(sim2, dropper2, fs, cfg);
  audio2.start(0.0);
  sim2.run_until(400.0);
  audio2.reset_measurement();
  sim2.run_until(4400.0);
  EXPECT_LE(audio2.normalized_throughput(), 1.02);
}

TEST(VariablePacketSender, ComprehensiveRaisesThroughput) {
  sim::Simulator sim;
  auto f = model::make_throughput_function("pftk-simplified", 1.0);
  loss::BernoulliDropper d1(0.05, 4), d2(0.05, 4);
  tfrc::VariablePacketConfig basic_cfg, comp_cfg;
  basic_cfg.comprehensive = false;
  comp_cfg.comprehensive = true;
  tfrc::VariablePacketSender basic(sim, d1, f, basic_cfg);
  tfrc::VariablePacketSender comp(sim, d2, f, comp_cfg);
  basic.start(0.0);
  comp.start(0.0);
  sim.run_until(2000.0);
  EXPECT_GE(comp.mean_rate(), basic.mean_rate() * 0.98);
}

}  // namespace
