#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "stats/online.hpp"
#include "testbed/batch.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario_registry.hpp"

namespace {

using ebrc::stats::OnlineMoments;
using ebrc::testbed::BatchRunner;
using ebrc::testbed::ExperimentResult;
using ebrc::testbed::Scenario;
using ebrc::testbed::ScenarioRegistry;
using ebrc::testbed::ShardSpec;

Scenario short_ns2(std::uint64_t seed) {
  auto s = ebrc::testbed::ns2_scenario(1, 1, 8, seed);
  s.duration_s = 6.0;
  s.warmup_s = 1.0;
  return s;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.scenario_name, b.scenario_name);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].kind, b.flows[i].kind);
    EXPECT_EQ(a.flows[i].loss_events, b.flows[i].loss_events);
    // Bit-identical, not merely close: the thread count must not leak into
    // any run's sample path.
    EXPECT_DOUBLE_EQ(a.flows[i].throughput_pps, b.flows[i].throughput_pps);
    EXPECT_DOUBLE_EQ(a.flows[i].p, b.flows[i].p);
    EXPECT_DOUBLE_EQ(a.flows[i].mean_rtt_s, b.flows[i].mean_rtt_s);
    EXPECT_DOUBLE_EQ(a.flows[i].normalized, b.flows[i].normalized);
  }
  EXPECT_DOUBLE_EQ(a.tfrc_throughput, b.tfrc_throughput);
  EXPECT_DOUBLE_EQ(a.tcp_throughput, b.tcp_throughput);
  EXPECT_DOUBLE_EQ(a.bottleneck_utilization, b.bottleneck_utilization);
  EXPECT_DOUBLE_EQ(a.breakdown.friendliness, b.breakdown.friendliness);
  EXPECT_DOUBLE_EQ(a.breakdown.conservativeness, b.breakdown.conservativeness);
}

TEST(BatchRunner, JobCountDoesNotChangeResults) {
  // The acceptance bar of the batch engine: >= 8 replications of the ns-2
  // scenario, --jobs=8 bit-identical to --jobs=1.
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/42, /*reps=*/8);
  const auto serial = BatchRunner(1).run(batch);
  const auto parallel = BatchRunner(8).run(batch);
  ASSERT_EQ(serial.size(), 8u);
  ASSERT_EQ(parallel.size(), 8u);
  for (std::size_t i = 0; i < serial.size(); ++i) expect_identical(serial[i], parallel[i]);
}

TEST(BatchRunner, ReplicationsUseDistinctDerivedSeeds) {
  const auto batch = ebrc::testbed::replicate(short_ns2(0), 42, 8);
  std::set<std::uint64_t> seeds;
  for (const auto& s : batch) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), 8u);
  // Prefix property: asking for fewer replications yields the same leading
  // seeds, so growing a sweep never perturbs existing runs.
  const auto fewer = ebrc::testbed::replicate(short_ns2(0), 42, 3);
  for (std::size_t i = 0; i < fewer.size(); ++i) EXPECT_EQ(fewer[i].seed, batch[i].seed);
  // And a different root seed moves every replication.
  const auto other_root = ebrc::testbed::replicate(short_ns2(0), 43, 8);
  for (std::size_t i = 0; i < other_root.size(); ++i) {
    EXPECT_NE(other_root[i].seed, batch[i].seed);
  }
}

TEST(BatchRunner, MapPreservesIndexOrder) {
  BatchRunner runner(4);
  const auto out = runner.map<std::size_t>(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(BatchRunner, PropagatesWorkerExceptions) {
  BatchRunner runner(4);
  const std::function<int(std::size_t)> boom = [](std::size_t i) -> int {
    if (i == 7) throw std::runtime_error("boom");
    return 0;
  };
  EXPECT_THROW((void)runner.map<int>(16, boom), std::runtime_error);
}

TEST(BatchRunner, ZeroJobsPicksHardwareConcurrency) {
  EXPECT_GE(BatchRunner(0).jobs(), 1u);
  EXPECT_EQ(BatchRunner(3).jobs(), 3u);
}

TEST(BatchResult, AggregatesMeanAndCi) {
  std::vector<ExperimentResult> runs(3);
  runs[0].breakdown.friendliness = 1.0;
  runs[1].breakdown.friendliness = 2.0;
  runs[2].breakdown.friendliness = 3.0;
  const auto agg = ebrc::testbed::aggregate(runs);
  EXPECT_EQ(agg.runs, 3u);
  EXPECT_DOUBLE_EQ(agg.mean("friendliness"), 2.0);
  EXPECT_DOUBLE_EQ(agg.metric("friendliness").stddev(), 1.0);
  EXPECT_NEAR(agg.ci("friendliness"), 1.96 / std::sqrt(3.0), 1e-12);
  EXPECT_THROW((void)agg.metric("no-such-metric"), std::out_of_range);
}

TEST(ReplicatePaired, SharesSeedsWithinPairsDistinctAcrossReps) {
  Scenario a = short_ns2(0);
  a.name = "arm-a";
  Scenario b = short_ns2(0);
  b.name = "arm-b";
  b.n_tcp = 2;
  const auto paired = ebrc::testbed::replicate_paired(a, b, "contrast", 9, 5);
  ASSERT_EQ(paired.a.size(), 5u);
  ASSERT_EQ(paired.b.size(), 5u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < paired.a.size(); ++i) {
    EXPECT_EQ(paired.a[i].seed, paired.b[i].seed);
    seeds.insert(paired.a[i].seed);
    EXPECT_EQ(paired.a[i].n_tcp, 1);  // configs survive, only seeds assigned
    EXPECT_EQ(paired.b[i].n_tcp, 2);
  }
  EXPECT_EQ(seeds.size(), 5u);
  // The seed derivation keys on the pair tag, not either arm's name.
  Scenario renamed = a;
  renamed.name = "renamed";
  const auto again = ebrc::testbed::replicate_paired(renamed, b, "contrast", 9, 5);
  for (std::size_t i = 0; i < 5u; ++i) EXPECT_EQ(again.a[i].seed, paired.a[i].seed);
  EXPECT_THROW((void)ebrc::testbed::replicate_paired(a, b, "contrast", 9, 0),
               std::invalid_argument);
  EXPECT_THROW((void)ebrc::testbed::replicate_paired(a, b, "", 9, 2), std::invalid_argument);
}

TEST(PairedDifference, ExactAlgebraOnSyntheticRuns) {
  // Construct per-pair results whose difference is a known constant plus a
  // pair-specific common term: the paired fold must see EXACTLY the
  // constant with a zero-width interval, while the unpaired CIs are wide.
  std::vector<ExperimentResult> a(4), b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const double common = static_cast<double>(i) * 10.0;  // shared noise
    a[i].tfrc_throughput = common + 3.0;
    b[i].tfrc_throughput = common;
    a[i].bottleneck_utilization = 0.9;
    b[i].bottleneck_utilization = 0.8;
  }
  const auto diff = ebrc::testbed::paired_difference(a, b);
  EXPECT_EQ(diff.runs, 4u);
  EXPECT_DOUBLE_EQ(diff.mean("tfrc_throughput"), 3.0);
  EXPECT_DOUBLE_EQ(diff.ci("tfrc_throughput"), 0.0);  // noise cancelled exactly
  EXPECT_NEAR(diff.mean("bottleneck_utilization"), 0.1, 1e-12);
  const auto unpaired = ebrc::testbed::aggregate(a).metric("tfrc_throughput");
  EXPECT_GT(unpaired.ci_halfwidth(), 1.0) << "the common term must dominate unpaired spread";
  EXPECT_THROW((void)ebrc::testbed::paired_difference(a, std::vector<ExperimentResult>(3)),
               std::invalid_argument);
}

TEST(Replicate, RejectsNonPositiveReps) {
  EXPECT_THROW((void)ebrc::testbed::replicate(short_ns2(0), 1, 0), std::invalid_argument);
}

TEST(ScenarioRegistry, BuiltinNamesConstructAndRun) {
  // Registry round-trip: every registered scenario constructs and completes
  // a short horizon through the batch engine.
  const auto& reg = ScenarioRegistry::builtin();
  const auto names = reg.names();
  ASSERT_GE(names.size(), 8u);
  EXPECT_TRUE(reg.contains("ns2"));
  EXPECT_TRUE(reg.contains("lab-red"));
  EXPECT_TRUE(reg.contains("wan-umelb"));

  std::vector<Scenario> batch;
  for (const auto& name : names) {
    auto s = reg.make(name, /*seed=*/7);
    s.duration_s = 4.0;
    s.warmup_s = 1.0;
    batch.push_back(std::move(s));
  }
  const auto results = BatchRunner(4).run(batch);
  ASSERT_EQ(results.size(), names.size());
  for (const auto& r : results) {
    EXPECT_FALSE(r.scenario_name.empty());
    if (r.workload_active) {
      // Churn scenarios carry no static flows; their population is dynamic.
      EXPECT_GT(r.workload.arrivals + r.workload.rejections, 0u);
    } else {
      EXPECT_FALSE(r.flows.empty());
    }
    EXPECT_GT(r.bottleneck_utilization, 0.0);
  }
}

TEST(ScenarioRegistry, UnknownNameListsRegistered) {
  try {
    (void)ScenarioRegistry::builtin().make("nope", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope"), std::string::npos);
    EXPECT_NE(msg.find("ns2"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RejectsDuplicatesAndNullFactories) {
  ScenarioRegistry reg;
  reg.add("a", "first", [](std::uint64_t seed) { return short_ns2(seed); });
  EXPECT_THROW(reg.add("a", "again", [](std::uint64_t seed) { return short_ns2(seed); }),
               std::invalid_argument);
  EXPECT_THROW(reg.add("b", "null", nullptr), std::invalid_argument);
}

TEST(ScenarioRegistry, SweepExpandsNamesByReps) {
  const auto& reg = ScenarioRegistry::builtin();
  const auto batch = ebrc::testbed::sweep(reg, {"ns2", "lab-red"}, /*root_seed=*/5, /*reps=*/3);
  ASSERT_EQ(batch.size(), 6u);
  std::set<std::uint64_t> seeds;
  for (const auto& s : batch) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), 6u);  // every (name, rep) pair gets its own stream
  EXPECT_EQ(batch[0].name, batch[1].name);
  EXPECT_NE(batch[0].name, batch[3].name);
}

TEST(ScenarioRegistry, SweepSeedsMatchReplicateForTheSameScenario) {
  // The two batch entry points must key seeds identically, or the planned
  // (scenario, seed) result cache would miss on equivalent runs.
  const auto& reg = ScenarioRegistry::builtin();
  const auto via_sweep = ebrc::testbed::sweep(reg, {"ns2"}, 42, 3);
  const auto via_replicate = ebrc::testbed::replicate(reg.make("ns2", 0), 42, 3);
  ASSERT_EQ(via_sweep.size(), via_replicate.size());
  for (std::size_t i = 0; i < via_sweep.size(); ++i) {
    EXPECT_EQ(via_sweep[i].seed, via_replicate[i].seed);
    EXPECT_EQ(via_sweep[i].name, via_replicate[i].name);
  }
}

// ---- shard partitioning ------------------------------------------------------

TEST(ShardSpec, RejectsOutOfRangeIndexWithClearMessage) {
  try {
    (void)ShardSpec(2, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--shard-index"), std::string::npos);
    EXPECT_NE(msg.find("--shard-count"), std::string::npos);
    EXPECT_NE(msg.find("2"), std::string::npos);
  }
  EXPECT_THROW((void)ShardSpec(0, 0), std::invalid_argument);
  EXPECT_NO_THROW((void)ShardSpec(0, 1));
  EXPECT_NO_THROW((void)ShardSpec(7, 8));
}

TEST(ShardSpec, ShardsPartitionEveryIndexExactlyOnce) {
  for (const std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{8}}) {
    for (std::size_t i = 0; i < 100; ++i) {
      std::size_t owners = 0;
      for (std::size_t index = 0; index < count; ++index) {
        if (ShardSpec(index, count).owns(i)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "index " << i << " count " << count;
    }
  }
  EXPECT_TRUE(ShardSpec{}.whole());
  EXPECT_FALSE(ShardSpec(0, 2).whole());
}

// ---- merge algebra -----------------------------------------------------------

/// Deterministic value stream for the algebra checks.
std::vector<double> algebra_samples(std::size_t n, std::uint64_t seed) {
  std::vector<double> out;
  out.reserve(n);
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    // Spread across magnitudes and signs.
    out.push_back((static_cast<double>(x >> 11) * 0x1.0p-53 - 0.5) *
                  static_cast<double>(1 + (x % 1000)));
  }
  return out;
}

OnlineMoments accumulate(const std::vector<double>& xs) {
  OnlineMoments m;
  for (double x : xs) m.add(x);
  return m;
}

void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)) << what;
}

TEST(OnlineMomentsMerge, CommutativeAndExactOnCountMinMax) {
  const auto xs = algebra_samples(64, 1);
  const auto ys = algebra_samples(41, 2);
  auto ab = accumulate(xs);
  ab.merge(accumulate(ys));
  auto ba = accumulate(ys);
  ba.merge(accumulate(xs));

  EXPECT_EQ(ab.count(), 105u);
  EXPECT_EQ(ab.count(), ba.count());
  expect_bits(ab.min(), ba.min(), "min");
  expect_bits(ab.max(), ba.max(), "max");
  // Mean and variance are mathematically symmetric; allow only rounding.
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-12 * std::abs(ab.mean()) + 1e-300);
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-9 * ab.variance() + 1e-300);
}

TEST(OnlineMomentsMerge, AssociativeUpToRounding) {
  const auto xs = algebra_samples(30, 3);
  const auto ys = algebra_samples(50, 4);
  const auto zs = algebra_samples(17, 5);
  auto left = accumulate(xs);
  left.merge(accumulate(ys));
  left.merge(accumulate(zs));
  auto right_tail = accumulate(ys);
  right_tail.merge(accumulate(zs));
  auto right = accumulate(xs);
  right.merge(right_tail);

  EXPECT_EQ(left.count(), right.count());
  expect_bits(left.min(), right.min(), "min");
  expect_bits(left.max(), right.max(), "max");
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12 * std::abs(left.mean()) + 1e-300);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-9 * left.variance() + 1e-300);

  // And both agree with the single-pass accumulation over everything.
  std::vector<double> all;
  all.insert(all.end(), xs.begin(), xs.end());
  all.insert(all.end(), ys.begin(), ys.end());
  all.insert(all.end(), zs.begin(), zs.end());
  const auto direct = accumulate(all);
  EXPECT_EQ(left.count(), direct.count());
  EXPECT_NEAR(left.mean(), direct.mean(), 1e-12 * std::abs(direct.mean()) + 1e-300);
  EXPECT_NEAR(left.variance(), direct.variance(), 1e-9 * direct.variance() + 1e-300);
}

TEST(OnlineMomentsMerge, EmptySidesAreExactIdentities) {
  const auto xs = algebra_samples(23, 6);
  const auto reference = accumulate(xs);

  auto into_empty = OnlineMoments{};
  into_empty.merge(reference);
  EXPECT_EQ(into_empty.count(), reference.count());
  expect_bits(into_empty.mean(), reference.mean(), "mean");
  expect_bits(into_empty.m2(), reference.m2(), "m2");

  auto with_empty = reference;
  with_empty.merge(OnlineMoments{});
  EXPECT_EQ(with_empty.count(), reference.count());
  expect_bits(with_empty.mean(), reference.mean(), "mean");
  expect_bits(with_empty.m2(), reference.m2(), "m2");
}

TEST(BatchResult, MergeBatchResultsFoldsRunsAndMetrics) {
  ebrc::testbed::BatchResult a, b;
  a.runs = 3;
  a.metrics["friendliness"] = accumulate({1.0, 2.0, 3.0});
  a.metrics["only_in_a"] = accumulate({5.0});
  b.runs = 2;
  b.metrics["friendliness"] = accumulate({4.0, 5.0});
  const auto merged = ebrc::testbed::merge_batch_results({a, b});
  EXPECT_EQ(merged.runs, 5u);
  EXPECT_EQ(merged.metric("friendliness").count(), 5u);
  EXPECT_NEAR(merged.mean("friendliness"), 3.0, 1e-12);
  EXPECT_EQ(merged.metric("only_in_a").count(), 1u);
  EXPECT_DOUBLE_EQ(merged.metric("friendliness").min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.metric("friendliness").max(), 5.0);
}

TEST(BatchResult, SummaryFileRoundTripIsExact) {
  namespace fs = std::filesystem;
  ebrc::testbed::BatchResult r;
  r.runs = 4;
  // Values chosen to stress shortest-round-trip formatting.
  r.metrics["alpha"] = accumulate({0.1, 1.0 / 3.0, -0.0, 1e-300});
  r.metrics["beta"] = accumulate(algebra_samples(64, 9));
  const fs::path path =
      fs::temp_directory_path() / ("ebrc_batch_summary_" + std::to_string(::getpid()) + ".txt");
  ebrc::testbed::save_batch_result(r, path);
  const auto back = ebrc::testbed::load_batch_result(path);
  EXPECT_EQ(back.runs, r.runs);
  ASSERT_EQ(back.metrics.size(), r.metrics.size());
  for (const auto& [name, m] : r.metrics) {
    const auto& o = back.metric(name);
    EXPECT_EQ(o.count(), m.count()) << name;
    expect_bits(o.mean(), m.mean(), name.c_str());
    expect_bits(o.m2(), m.m2(), name.c_str());
    expect_bits(o.min(), m.min(), name.c_str());
    expect_bits(o.max(), m.max(), name.c_str());
  }
  fs::remove(path);

  // Malformed inputs fail loudly.
  const fs::path bad =
      fs::temp_directory_path() / ("ebrc_batch_summary_bad_" + std::to_string(::getpid()));
  {
    std::ofstream f(bad);
    f << "not a summary\n";
  }
  EXPECT_THROW((void)ebrc::testbed::load_batch_result(bad), std::invalid_argument);
  {
    std::ofstream f(bad, std::ios::trunc);
    f << "ebrc-batch-result v1\nruns abc\n";
  }
  EXPECT_THROW((void)ebrc::testbed::load_batch_result(bad), std::invalid_argument);
  {
    std::ofstream f(bad, std::ios::trunc);
    f << "ebrc-batch-result v1\nruns 2\nmetric m 1 0.5 0.0 0.5 0.5\nmetric m 1 0.5 0.0 0.5 0.5\n";
  }
  EXPECT_THROW((void)ebrc::testbed::load_batch_result(bad), std::invalid_argument);
  fs::remove(bad);
  EXPECT_THROW((void)ebrc::testbed::load_batch_result(bad), std::runtime_error);
}

TEST(ScenarioRegistry, GridSweepAppliesValuesDeterministically) {
  const auto& reg = ScenarioRegistry::builtin();
  const auto apply = [](Scenario& s, double v) { s.n_tcp = static_cast<int>(v); };
  const auto a = ebrc::testbed::grid_sweep(reg, "ns2", 9, 2, {1.0, 4.0}, apply);
  const auto b = ebrc::testbed::grid_sweep(reg, "ns2", 9, 2, {1.0, 4.0}, apply);
  ASSERT_EQ(a.size(), 4u);  // value-major: index = v * reps + rep
  EXPECT_EQ(a[0].n_tcp, 1);
  EXPECT_EQ(a[3].n_tcp, 4);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].seed, b[i].seed);
  EXPECT_NE(a[0].seed, a[1].seed);
  EXPECT_NE(a[1].seed, a[2].seed);
}

}  // namespace
