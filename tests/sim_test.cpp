#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/online.hpp"

namespace {

using ebrc::sim::EventHandle;
using ebrc::sim::Rng;
using ebrc::sim::Simulator;

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(3.0, [&] { order.push_back(3); });
  s.schedule(1.0, [&] { order.push_back(1); });
  s.schedule(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelledEventNeverFires) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, RunUntilStopsTheClock) {
  Simulator s;
  int count = 0;
  s.schedule(1.0, [&] { ++count; });
  s.schedule(5.0, [&] { ++count; });
  s.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  s.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule(1.0, chain);
  };
  s.schedule(1.0, chain);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Simulator, SlabRecyclesSlotsInsteadOfGrowing) {
  // The pooled liveness slab: a long chain of schedule/fire cycles must reuse
  // a bounded set of slots, not allocate one per event.
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 1000) s.schedule(0.001, chain);
  };
  s.schedule(0.001, chain);
  s.run();
  EXPECT_EQ(count, 1000);
  EXPECT_LE(s.slab().capacity(), 4u);
}

TEST(Simulator, StaleHandleDoesNotCancelRecycledSlot) {
  Simulator s;
  bool first_fired = false, second_fired = false;
  EventHandle h1 = s.schedule(1.0, [&] { first_fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(first_fired);
  EXPECT_FALSE(h1.pending());
  // The next event reuses h1's slot under a new generation; cancelling the
  // stale handle must not touch it.
  EventHandle h2 = s.schedule(1.0, [&] { second_fired = true; });
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  s.run();
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, HandleReportsNotPendingInsideOwnCallback) {
  Simulator s;
  EventHandle h;
  bool pending_inside = true;
  h = s.schedule(1.0, [&] { pending_inside = h.pending(); });
  s.run();
  EXPECT_FALSE(pending_inside);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator s;
  EventHandle h = s.schedule(1.0, [] {});
  h.cancel();
  h.cancel();  // idempotent
  s.run();
  h.cancel();  // safe after the queue drained
  EXPECT_FALSE(h.pending());
  EventHandle default_constructed;
  default_constructed.cancel();  // no slab attached: no-op
  EXPECT_FALSE(default_constructed.pending());
}

TEST(Simulator, HandleOutlivesSimulatorSafely) {
  // Handles hold a reference on the slab: querying or cancelling one after
  // its simulator is gone must be safe, not a use-after-free. (As in the
  // original shared_ptr-slab kernel, an event that never fired still reports
  // pending — the slot was never retired — and cancel() still withdraws it.)
  EventHandle h;
  {
    Simulator s;
    h = s.schedule(1.0, [] {});
    EXPECT_TRUE(h.pending());
  }
  EXPECT_TRUE(h.pending());
  EventHandle copy = h;
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(copy.pending());
}

TEST(Simulator, WideCaptureSlotsRecycleLikeTinyOnes) {
  // Mid-sized captures (9..56 bytes) use the wide slot class; a long chain
  // must recycle a bounded set of slots there too.
  Simulator s;
  int count = 0;
  struct {
    double a[5];
  } pad{{1, 2, 3, 4, 5}};
  std::function<void()> chain = [&, pad] {
    if (++count < 1000) s.schedule(0.001, chain);
    (void)pad;
  };
  s.schedule(0.001, chain);
  s.run();
  EXPECT_EQ(count, 1000);
  EXPECT_LE(s.slab().capacity(), 4u);
}

TEST(Simulator, ReservePreservesSemantics) {
  Simulator s;
  s.reserve(4096);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(s.queue_size(), 5u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s.queue_size(), 0u);
}

TEST(Simulator, NegativeZeroDelayOrdersLikeZero) {
  // -0.0 must not be treated as a distinct (later) time by the packed
  // bit-pattern heap key.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(0.0, [&] { order.push_back(0); });
  s.schedule_at(-0.0, [&] { order.push_back(1); });
  s.schedule(0.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, PinnedEventsInterleaveWithSlabEventsInSeqOrder) {
  // Pinned callbacks share the global (time, insertion-seq) order with
  // ordinary events — including FIFO tie-breaks at equal times.
  Simulator s;
  std::vector<int> order;
  const auto ping = s.pin([&] { order.push_back(100); });
  const auto pong = s.pin([&] { order.push_back(200); });
  s.schedule_at(1.0, [&] { order.push_back(0); });
  s.schedule_pinned_at(1.0, ping);   // same time: after 0, before 1
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_pinned(0.5, pong);      // earliest
  s.schedule_pinned_at(2.0, ping);   // the same pin pending twice is fine
  s.run();
  EXPECT_EQ(order, (std::vector<int>{200, 0, 100, 1, 100}));
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, PinnedSelfRescheduleRunsZeroAlloc) {
  Simulator s;
  int count = 0;
  Simulator::PinnedEvent tick = 0;
  tick = s.pin([&] {
    if (++count < 1000) s.schedule_pinned(0.001, tick);
  });
  const std::uint64_t allocs0 = ebrc::sim::inline_function_heap_allocs();
  s.schedule_pinned(0.001, tick);
  s.run();
  EXPECT_EQ(count, 1000);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
  EXPECT_EQ(ebrc::sim::inline_function_heap_allocs() - allocs0, 0u);
}

TEST(Simulator, PinnedRejectsBadTimes) {
  Simulator s;
  const auto ev = s.pin([] {});
  EXPECT_THROW(s.schedule_pinned(-1.0, ev), std::invalid_argument);
  s.schedule(1.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_pinned_at(0.5, ev), std::invalid_argument);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator s;
  s.schedule(1.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitStreamsDiffer) {
  Rng root(42);
  Rng a = root.split("flows");
  Rng b = root.split("queues");
  // Not a statistical test, just divergence of the first draws.
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(Rng, ExponentialMean) {
  Rng r(7);
  ebrc::stats::OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.add(r.exponential_mean(2.5));
  EXPECT_NEAR(m.mean(), 2.5, 0.03);
  EXPECT_NEAR(m.cv(), 1.0, 0.02);
}

TEST(Rng, ShiftedExponentialMoments) {
  Rng r(7);
  ebrc::stats::OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.add(r.shifted_exponential(3.0, 0.5));
  EXPECT_NEAR(m.mean(), 5.0, 0.05);        // x0 + 1/a = 3 + 2
  EXPECT_NEAR(m.stddev(), 2.0, 0.05);      // sd = 1/a
}

TEST(Rng, BernoulliRate) {
  Rng r(9);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.2);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.2, 0.01);
}

TEST(Rng, ParetoMean) {
  Rng r(11);
  ebrc::stats::OnlineMoments m;
  for (int i = 0; i < 400000; ++i) m.add(r.pareto_mean(10.0, 2.5));
  EXPECT_NEAR(m.mean(), 10.0, 0.3);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng r(1);
  EXPECT_THROW(r.exponential_mean(0.0), std::invalid_argument);
  EXPECT_THROW(r.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW(r.pareto_mean(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r.shifted_exponential(-1.0, 1.0), std::invalid_argument);
}

TEST(ShiftedExpFor, RealizesTargetMoments) {
  // The paper's design: fix p and cv independently.
  for (double p : {0.01, 0.1, 0.3}) {
    for (double cv : {0.2, 0.5, 0.999}) {
      const auto prm = ebrc::sim::shifted_exp_for(p, cv);
      const double mean = prm.x0 + 1.0 / prm.a;
      const double cv2 = (1.0 / prm.a) / mean;
      EXPECT_NEAR(mean, 1.0 / p, 1e-9);
      EXPECT_NEAR(cv2, cv * cv, 1e-9);
      EXPECT_GE(prm.x0, 0.0);
    }
  }
  EXPECT_THROW((void)ebrc::sim::shifted_exp_for(0.1, 1.5), std::invalid_argument);
  EXPECT_THROW((void)ebrc::sim::shifted_exp_for(-0.1, 0.5), std::invalid_argument);
}

TEST(Simulator, WallDeadlinePreemptsAnInfiniteEventChain) {
  // A self-rescheduling chain that never drains: without the cooperative
  // 64k-event poll in run_until this test would spin forever.
  Simulator s;
  std::function<void()> chain = [&] { s.schedule(1.0, chain); };
  s.schedule(1.0, chain);
  ebrc::sim::arm_thread_wall_deadline(0.2);
  EXPECT_THROW(s.run(), ebrc::sim::WallDeadlineError);
  ebrc::sim::disarm_thread_wall_deadline();
  EXPECT_FALSE(ebrc::sim::thread_wall_deadline_armed());

  // Disarmed, a finite run is unaffected.
  Simulator s2;
  int fired = 0;
  s2.schedule(1.0, [&] { ++fired; });
  s2.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
