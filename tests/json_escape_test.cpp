// util::json_escape — the one escaper behind the JSONL event feed and the
// chrome://tracing writer:
//   * every mandatory JSON escape (quote, backslash, all 32 control bytes),
//   * UTF-8 passthrough,
//   * round-trip: feed lines (schema header included) parse with
//     util::parse_json — our strictest in-repo JSON reader — and decode back
//     to the original bytes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "testbed/supervisor.hpp"
#include "util/doc.hpp"
#include "util/json_escape.hpp"

namespace {

namespace fs = std::filesystem;

using ebrc::util::doc_find;
using ebrc::util::json_escape;
using ebrc::util::json_escape_into;
using ebrc::util::parse_json;

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndNamedControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
}

TEST(JsonEscapeTest, EscapesEveryControlByteAsU00XX) {
  for (int c = 0; c < 0x20; ++c) {
    if (c == '\n' || c == '\r' || c == '\t' || c == '\b' || c == '\f') continue;
    const std::string in(1, static_cast<char>(c));
    const std::string out = json_escape(in);
    char expect[8];
    std::snprintf(expect, sizeof(expect), "\\u%04x", c);
    EXPECT_EQ(out, expect) << "control byte " << c;
  }
}

TEST(JsonEscapeTest, PassesUtf8AndHighBytesThrough) {
  const std::string utf8 = "r\xC3\xA9seau \xE2\x86\x92 ok";  // "réseau → ok"
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(JsonEscapeTest, AppendsWithoutClobbering) {
  std::string out = "prefix:";
  json_escape_into(out, "a\"b");
  EXPECT_EQ(out, "prefix:a\\\"b");
}

TEST(JsonEscapeTest, RoundTripsThroughParseJson) {
  std::string nasty;
  for (int c = 1; c < 0x20; ++c) nasty += static_cast<char>(c);
  nasty += "\"quoted\" back\\slash r\xC3\xA9seau";
  const std::string doc = "{\"k\":\"" + json_escape(nasty) + "\"}";
  const auto table = parse_json(doc);
  const auto* v = doc_find(table, "k");
  ASSERT_NE(v, nullptr);
  ASSERT_NE(v->if_string(), nullptr);
  EXPECT_EQ(*v->if_string(), nasty) << "escape + parse must reproduce the exact bytes";
}

// ---- the event feed, line by line, through the strict parser ----------------

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("ebrc_json_escape_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(JsonEscapeTest, EveryFeedLineParsesAsStrictJson) {
  TempDir dir;
  const fs::path path = dir.path / "events.jsonl";
  const std::string hostile = "cell \"A\"\nwith\tcontrols\x01\x02 and r\xC3\xA9seau";
  {
    ebrc::testbed::SweepEventFeed feed(path);
    feed.emit("cell_start", 0, hostile, 42, 0);
    feed.emit("cell_done", 0, hostile, 42, 0, 1.25, 2048, {},
              ",\"obs\":{\"kernel_events\":1234,\"queue_drops\":0}");
    feed.emit("cell_crashed", 1, "sc", 7, 2, 0.5, -1, "crashed: SIGSEGV \x7f\x01");
    feed.emit_sweep("sweep_done", ",\"cells\":2,\"obs\":{\"store_hits\":1}");
  }

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);

  for (const auto& l : lines) {
    const auto table = parse_json(l);  // throws on anything non-JSON
    ASSERT_NE(doc_find(table, "ts"), nullptr) << l;
    ASSERT_NE(doc_find(table, "event"), nullptr) << l;
  }

  // The schema header names its version and both field lists.
  const auto schema = parse_json(lines[0]);
  const auto* version = doc_find(schema, "version");
  ASSERT_NE(version, nullptr);
  ASSERT_NE(version->if_u64(), nullptr);
  EXPECT_EQ(*version->if_u64(), 2u);
  ASSERT_NE(doc_find(schema, "events"), nullptr);
  ASSERT_NE(doc_find(schema, "fields"), nullptr);

  // The hostile scenario name round-trips byte-exact through the feed.
  const auto start = parse_json(lines[1]);
  const auto* scenario = doc_find(start, "scenario");
  ASSERT_NE(scenario, nullptr);
  ASSERT_NE(scenario->if_string(), nullptr);
  EXPECT_EQ(*scenario->if_string(), hostile);

  // cell_done's obs fragment is a nested object with numeric values.
  const auto done = parse_json(lines[2]);
  const auto* obs = doc_find(done, "obs");
  ASSERT_NE(obs, nullptr);
  ASSERT_NE(obs->if_table(), nullptr);
  const auto* events = doc_find(*obs->if_table(), "kernel_events");
  ASSERT_NE(events, nullptr);
  ASSERT_NE(events->if_u64(), nullptr);
  EXPECT_EQ(*events->if_u64(), 1234u);
}

TEST(JsonParseTest, DecodesBFAndUnicodeEscapes) {
  const auto table = parse_json("{\"k\":\"a\\bb\\fc\\u0001d\\u00e9e\\/f\"}");
  const auto* v = doc_find(table, "k");
  ASSERT_NE(v, nullptr);
  ASSERT_NE(v->if_string(), nullptr);
  EXPECT_EQ(*v->if_string(), "a\bb\fc\x01"
                             "d\xC3\xA9"
                             "e/f");
  EXPECT_THROW((void)parse_json("{\"k\":\"\\u12\"}"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"k\":\"\\ud800\"}"), std::invalid_argument);
}

}  // namespace
