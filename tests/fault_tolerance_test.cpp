// The fault-tolerant sweep execution layer, proven by injection:
//   * keep_going isolates K injected cell failures — every healthy cell
//     completes bit-identical to a fault-free run and the failure manifest
//     lists exactly the K injected cells,
//   * retries reuse the cell's unchanged seed, so a recovered transient
//     fault is bit-identical to a run that never failed (CRN preserved),
//   * a resumed sweep over the same store simulates ONLY the failed cells
//     and converges to bitwise equality with a clean cold run,
//   * a deadline overrun is captured as a timed_out CellFailure,
//   * fail-fast (the default) rethrows with the cell named,
//   * the --inject-faults spec parser and the failure-manifest file format
//     round-trip and reject malformed input.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "testbed/batch.hpp"
#include "testbed/experiment.hpp"
#include "testbed/fault_injection.hpp"
#include "testbed/result_store.hpp"
#include "testbed/scenario.hpp"
#include "testbed/scenario_io.hpp"

namespace {

namespace fs = std::filesystem;

using ebrc::testbed::BatchRunner;
using ebrc::testbed::CellFailure;
using ebrc::testbed::ExperimentResult;
using ebrc::testbed::ResultStore;
using ebrc::testbed::RunPolicy;
using ebrc::testbed::Scenario;
using ebrc::testbed::ShardSpec;
using ebrc::testbed::SweepReport;
namespace fault = ebrc::testbed::fault;

Scenario short_ns2(std::uint64_t seed) {
  auto s = ebrc::testbed::ns2_scenario(1, 1, 8, seed);
  s.duration_s = 4.0;
  s.warmup_s = 1.0;
  return s;
}

/// Disarms the process-wide injection plan on scope exit, so a failing
/// assertion can never leak an armed plan into the next test.
struct FaultGuard {
  ~FaultGuard() { fault::disarm(); }
};

/// A fresh directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("ebrc_fault_tolerance_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)) << what;
}

/// Spot-check bitwise equality on the fields that would drift first if a
/// retry or resume perturbed the sample path (result_store_test carries the
/// exhaustive field-by-field comparator).
void expect_same_run(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.scenario_name, b.scenario_name);
  expect_bits(a.tfrc_throughput, b.tfrc_throughput, "tfrc_throughput");
  expect_bits(a.tcp_throughput, b.tcp_throughput, "tcp_throughput");
  expect_bits(a.tfrc_p, b.tfrc_p, "tfrc_p");
  expect_bits(a.breakdown.friendliness, b.breakdown.friendliness, "friendliness");
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    expect_bits(a.flows[i].throughput_pps, b.flows[i].throughput_pps, "flow throughput");
    EXPECT_EQ(a.flows[i].loss_events, b.flows[i].loss_events);
  }
}

TEST(FaultInjection, PlanSpecParsesAndRejectsMalformedInput) {
  const auto plan =
      fault::parse_plan("throw@3,throw@7:1,timeout@5:*,torn-cache@0;torn-index@2");
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan[0].kind, fault::Kind::kThrow);
  EXPECT_EQ(plan[0].key, 3u);
  EXPECT_EQ(plan[0].attempt, 0);
  EXPECT_EQ(plan[1].kind, fault::Kind::kThrow);
  EXPECT_EQ(plan[1].key, 7u);
  EXPECT_EQ(plan[1].attempt, 1);
  EXPECT_EQ(plan[2].kind, fault::Kind::kDeadlineOverrun);
  EXPECT_EQ(plan[2].attempt, fault::kEveryAttempt);
  EXPECT_EQ(plan[3].kind, fault::Kind::kTornCacheWrite);
  EXPECT_EQ(plan[4].kind, fault::Kind::kTornIndexRecord);
  EXPECT_EQ(plan[4].key, 2u);

  const auto process_plan = fault::parse_plan("crash@1:*,hang@2,oom@4:1");
  ASSERT_EQ(process_plan.size(), 3u);
  EXPECT_EQ(process_plan[0].kind, fault::Kind::kCrash);
  EXPECT_EQ(process_plan[0].key, 1u);
  EXPECT_EQ(process_plan[0].attempt, fault::kEveryAttempt);
  EXPECT_EQ(process_plan[1].kind, fault::Kind::kHang);
  EXPECT_EQ(process_plan[1].attempt, 0);
  EXPECT_EQ(process_plan[2].kind, fault::Kind::kOomStorm);
  EXPECT_EQ(process_plan[2].attempt, 1);

  EXPECT_THROW((void)fault::parse_plan(""), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("explode@1"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("throw"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("throw@"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("throw@x"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("throw@1:"), std::invalid_argument);
  // Torn kinds fire by ordinal, not attempt — an attempt suffix is an error.
  EXPECT_THROW((void)fault::parse_plan("torn-cache@0:1"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_plan("torn-index@0:*"), std::invalid_argument);
}

TEST(FaultInjection, FireMatchesKeyAndAttemptAndCounts) {
  FaultGuard guard;
  fault::arm({{fault::Kind::kThrow, 2, 0},
              {fault::Kind::kThrow, 5, fault::kEveryAttempt},
              {fault::Kind::kTornCacheWrite, 1, 0}});
  EXPECT_TRUE(fault::armed());
  EXPECT_FALSE(fault::fire(fault::Kind::kThrow, 0, 0));  // wrong key
  EXPECT_FALSE(fault::fire(fault::Kind::kThrow, 2, 1));  // wrong attempt
  EXPECT_TRUE(fault::fire(fault::Kind::kThrow, 2, 0));
  EXPECT_TRUE(fault::fire(fault::Kind::kThrow, 5, 0));  // every attempt
  EXPECT_TRUE(fault::fire(fault::Kind::kThrow, 5, 3));
  EXPECT_FALSE(fault::fire(fault::Kind::kDeadlineOverrun, 2, 0));  // wrong kind
  EXPECT_TRUE(fault::fire(fault::Kind::kTornCacheWrite, 1));
  EXPECT_EQ(fault::fired(), 4u);

  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::fire(fault::Kind::kThrow, 2, 0));
}

TEST(FaultTolerance, KeepGoingIsolatesInjectedFailures) {
  FaultGuard guard;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/11, /*reps=*/6);
  const BatchRunner runner(3);
  const auto reference = runner.run(batch);  // faults disarmed: clean baseline

  // Two persistently failing cells; the other four must complete untouched.
  fault::arm({{fault::Kind::kThrow, 1, fault::kEveryAttempt},
              {fault::Kind::kThrow, 4, fault::kEveryAttempt}});
  RunPolicy policy;
  policy.keep_going = true;
  SweepReport rep;
  const auto out = runner.run(batch, nullptr, ShardSpec{}, &rep, policy);

  EXPECT_EQ(rep.failed, 2u);
  EXPECT_EQ(rep.simulated, 4u);
  EXPECT_EQ(rep.timed_out, 0u);
  EXPECT_FALSE(rep.complete());
  ASSERT_EQ(rep.failures.size(), 2u);
  EXPECT_EQ(rep.failures[0].index, 1u);  // manifest is index-ordered
  EXPECT_EQ(rep.failures[1].index, 4u);
  for (const auto& f : rep.failures) {
    EXPECT_EQ(f.scenario, batch[f.index].name);
    EXPECT_EQ(f.seed, batch[f.index].seed);
    EXPECT_EQ(f.attempts, 1);
    EXPECT_NE(f.what.find("injected fault"), std::string::npos) << f.what;
    EXPECT_EQ(rep.available[f.index], 0);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i == 1 || i == 4) continue;
    EXPECT_EQ(rep.available[i], 1);
    expect_same_run(reference[i], out[i]);
  }
}

TEST(FaultTolerance, RetryRecoversTransientFaultBitIdentically) {
  FaultGuard guard;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/13, /*reps=*/3);
  const BatchRunner runner(2);
  const auto reference = runner.run(batch);

  // Attempt 0 of cell 2 throws; attempt 1 (same seed) must succeed and
  // reproduce the fault-free run exactly — retries never perturb seeds.
  fault::arm({{fault::Kind::kThrow, 2, /*attempt=*/0}});
  RunPolicy policy;
  policy.max_retries = 1;
  SweepReport rep;
  const auto out = runner.run(batch, nullptr, ShardSpec{}, &rep, policy);

  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.retried, 1u);
  EXPECT_EQ(rep.simulated, batch.size());
  EXPECT_TRUE(rep.complete());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_run(reference[i], out[i]);
}

TEST(FaultTolerance, ResumeConvergesToCleanColdRun) {
  FaultGuard guard;
  TempDir dir;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/17, /*reps=*/6);
  const BatchRunner runner(3);
  const auto reference = runner.run(batch);

  // Faulted first pass: cells 1 and 3 fail, the rest land in the store.
  ResultStore store(dir.path / "cache");
  fault::arm({{fault::Kind::kThrow, 1, fault::kEveryAttempt},
              {fault::Kind::kThrow, 3, fault::kEveryAttempt}});
  RunPolicy policy;
  policy.keep_going = true;
  SweepReport faulted;
  (void)runner.run(batch, &store, ShardSpec{}, &faulted, policy);
  EXPECT_EQ(faulted.failed, 2u);
  EXPECT_EQ(faulted.simulated, 4u);
  EXPECT_FALSE(faulted.complete());

  // Resume with the cause fixed: ONLY the failed cells simulate, and the
  // final sweep is bitwise equal to a clean cold run.
  fault::disarm();
  SweepReport resumed;
  const auto out = runner.run(batch, &store, ShardSpec{}, &resumed, policy);
  EXPECT_EQ(resumed.hits, 4u);
  EXPECT_EQ(resumed.simulated, 2u);
  EXPECT_EQ(resumed.failed, 0u);
  EXPECT_TRUE(resumed.complete());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_run(reference[i], out[i]);

  // A fully warm pass touches nothing.
  SweepReport warm;
  (void)runner.run(batch, &store, ShardSpec{}, &warm, policy);
  EXPECT_EQ(warm.hits, batch.size());
  EXPECT_EQ(warm.simulated, 0u);
}

TEST(FaultTolerance, DeadlineOverrunIsCapturedAsTimedOutFailure) {
  FaultGuard guard;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/19, /*reps=*/2);
  const BatchRunner runner(2);

  // The injection inflates the measured wall-clock past the (generous)
  // deadline, so the check trips deterministically without a real hang.
  fault::arm({{fault::Kind::kDeadlineOverrun, 0, fault::kEveryAttempt}});
  RunPolicy policy;
  policy.keep_going = true;
  policy.cell_deadline_s = 600.0;
  SweepReport rep;
  (void)runner.run(batch, nullptr, ShardSpec{}, &rep, policy);

  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.timed_out, 1u);
  ASSERT_EQ(rep.failures.size(), 1u);
  EXPECT_EQ(rep.failures[0].index, 0u);
  EXPECT_TRUE(rep.failures[0].timed_out);
  EXPECT_GT(rep.failures[0].elapsed_s, policy.cell_deadline_s);
  EXPECT_NE(rep.failures[0].what.find("--cell-deadline"), std::string::npos);
  EXPECT_EQ(rep.simulated, 1u);  // the healthy cell still completed
}

TEST(FaultTolerance, FailFastNamesTheFailingCell) {
  FaultGuard guard;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/23, /*reps=*/3);
  fault::arm({{fault::Kind::kThrow, 1, fault::kEveryAttempt}});
  try {
    (void)BatchRunner(2).run(batch);  // default policy: fail fast
    FAIL() << "expected the injected fault to abort the run";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sweep cell #1"), std::string::npos) << what;
    EXPECT_NE(what.find(batch[1].name), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(batch[1].seed)), std::string::npos) << what;
    EXPECT_NE(what.find("injected fault"), std::string::npos) << what;
  }
}

TEST(FaultTolerance, FailureManifestRoundTripsAndSanitizes) {
  TempDir dir;
  std::vector<CellFailure> failures(2);
  failures[0].index = 3;
  failures[0].scenario = "grid cell p=0.01 rtt=0.1";  // spaces: sanitized to '_'
  failures[0].seed = 0xdeadbeefcafe1234ull;
  failures[0].shard = 1;
  failures[0].attempts = 3;
  failures[0].timed_out = true;
  failures[0].elapsed_s = 12.5;
  failures[0].what = "line one\nline two";  // newlines: flattened to spaces
  failures[1].index = 7;
  failures[1].scenario = "clean-name";
  failures[1].seed = 42;
  failures[1].attempts = 1;
  failures[1].what = "std::bad_alloc";

  const fs::path path = dir.path / "sweep.failures";
  ebrc::testbed::save_failure_manifest(failures, path);
  const auto loaded = ebrc::testbed::load_failure_manifest(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].index, 3u);
  EXPECT_EQ(loaded[0].scenario, "grid_cell_p=0.01_rtt=0.1");
  EXPECT_EQ(loaded[0].seed, failures[0].seed);
  EXPECT_EQ(loaded[0].shard, 1u);
  EXPECT_EQ(loaded[0].attempts, 3);
  EXPECT_TRUE(loaded[0].timed_out);
  EXPECT_EQ(loaded[0].what, "line one line two");
  EXPECT_EQ(loaded[1].index, 7u);
  EXPECT_EQ(loaded[1].scenario, "clean-name");
  EXPECT_EQ(loaded[1].what, "std::bad_alloc");
  EXPECT_FALSE(loaded[1].timed_out);

  EXPECT_THROW((void)ebrc::testbed::load_failure_manifest(dir.path / "absent"),
               std::runtime_error);
}

TEST(FaultTolerance, FailureManifestRoundTripsCrashFieldsAndControlChars) {
  TempDir dir;
  std::vector<CellFailure> failures(2);
  failures[0].index = 2;
  // \v and \f are isspace for operator>> but were NOT sanitized pre-v2;
  // pipes and 0x01 ride along to prove all control chars flatten to '_'.
  failures[0].scenario = std::string("evil\vname\fwith|pipe\x01" "and\nnewline");
  failures[0].seed = 99;
  failures[0].attempts = 2;
  failures[0].crashed = true;
  failures[0].signal = 11;
  failures[0].what = "crashed: SIGSEGV";
  failures[1].index = 5;
  failures[1].scenario = "hung-cell";
  failures[1].timed_out = true;
  failures[1].signal = 9;
  failures[1].attempts = 1;
  failures[1].what = "killed at the cell deadline";

  const fs::path path = dir.path / "sweep.failures";
  ebrc::testbed::save_failure_manifest(failures, path);
  const auto loaded = ebrc::testbed::load_failure_manifest(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].scenario, "evil_name_with|pipe_and_newline");
  EXPECT_TRUE(loaded[0].crashed);
  EXPECT_EQ(loaded[0].signal, 11);
  EXPECT_FALSE(loaded[0].timed_out);
  EXPECT_EQ(loaded[0].what, "crashed: SIGSEGV");
  EXPECT_TRUE(loaded[1].timed_out);
  EXPECT_FALSE(loaded[1].crashed);
  EXPECT_EQ(loaded[1].signal, 9);
}

TEST(FaultTolerance, EmptyFailureManifestRoundTripsAsEmpty) {
  TempDir dir;
  const fs::path path = dir.path / "clean.failures";
  ebrc::testbed::save_failure_manifest({}, path);
  const auto loaded = ebrc::testbed::load_failure_manifest(path);
  EXPECT_TRUE(loaded.empty());
}

// ---- process isolation ------------------------------------------------------

TEST(ProcessIsolation, BitIdenticalToInProcessRun) {
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/29, /*reps=*/3);
  const BatchRunner runner(2);
  const auto reference = runner.run(batch);

  RunPolicy policy;
  policy.isolate = ebrc::testbed::IsolationMode::kProcess;
  SweepReport rep;
  const auto out = runner.run(batch, nullptr, ShardSpec{}, &rep, policy);
  EXPECT_TRUE(rep.complete());
  EXPECT_EQ(rep.simulated, batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_run(reference[i], out[i]);
}

TEST(ProcessIsolation, WorkerCrashIsRetryableAndLeavesABundleAndResumes) {
  FaultGuard guard;
  TempDir dir;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/31, /*reps=*/4);
  const BatchRunner runner(2);
  const auto reference = runner.run(batch);

  // Cell 1 aborts in its worker subprocess on every attempt. In-process this
  // injection would kill the whole test binary — surviving it at all IS the
  // tentpole property.
  ResultStore store(dir.path / "cache");
  fault::arm({{fault::Kind::kCrash, 1, fault::kEveryAttempt}});
  RunPolicy policy;
  policy.keep_going = true;
  policy.max_retries = 1;
  policy.isolate = ebrc::testbed::IsolationMode::kProcess;
  policy.crash_dir = (dir.path / "crashes").string();
  policy.invocation = "unit-test-sweep --reps=4";
  SweepReport rep;
  (void)runner.run(batch, &store, ShardSpec{}, &rep, policy);

  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.crashed, 1u);
  EXPECT_EQ(rep.retried, 1u);
  EXPECT_EQ(rep.simulated, 3u);
  ASSERT_EQ(rep.failures.size(), 1u);
  const CellFailure& f = rep.failures[0];
  EXPECT_EQ(f.index, 1u);
  EXPECT_TRUE(f.crashed);
  EXPECT_EQ(f.signal, SIGABRT);
  EXPECT_FALSE(f.timed_out);
  EXPECT_EQ(f.attempts, 2);
  EXPECT_NE(f.what.find("SIGABRT"), std::string::npos) << f.what;
  EXPECT_NE(f.what.find("injected fault: crash"), std::string::npos)
      << "the worker's stderr tail must ride along: " << f.what;

  // Repro bundle: scenario TOML with the derived seed + forensics.
  const fs::path bundle = dir.path / "crashes" / "cell-1";
  EXPECT_TRUE(fs::exists(bundle / "scenario.toml"));
  EXPECT_TRUE(fs::exists(bundle / "stderr.txt"));
  EXPECT_TRUE(fs::exists(bundle / "status.txt"));
  EXPECT_TRUE(fs::exists(bundle / "repro.txt"));
  const Scenario replay = ebrc::testbed::load_scenario(bundle / "scenario.toml");
  EXPECT_EQ(replay.seed, batch[1].seed) << "the bundle must replay this exact cell";

  // Fault-free resume over the same store: only the crashed cell simulates,
  // and the sweep converges bitwise to the clean cold run.
  fault::disarm();
  RunPolicy resume_policy;
  resume_policy.keep_going = true;
  SweepReport resumed;
  const auto out = runner.run(batch, &store, ShardSpec{}, &resumed, resume_policy);
  EXPECT_EQ(resumed.hits, 3u);
  EXPECT_EQ(resumed.simulated, 1u);
  EXPECT_TRUE(resumed.complete());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_run(reference[i], out[i]);
}

TEST(ProcessIsolation, HungWorkerIsKilledAtTheHardDeadline) {
  FaultGuard guard;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/37, /*reps=*/2);
  const BatchRunner runner(2);

  fault::arm({{fault::Kind::kHang, 0, fault::kEveryAttempt}});
  RunPolicy policy;
  policy.keep_going = true;
  policy.cell_deadline_s = 1.0;
  policy.isolate = ebrc::testbed::IsolationMode::kProcess;
  SweepReport rep;
  (void)runner.run(batch, nullptr, ShardSpec{}, &rep, policy);

  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.timed_out, 1u);
  EXPECT_EQ(rep.crashed, 0u) << "a deadline kill is a timeout, not a crash";
  EXPECT_EQ(rep.simulated, 1u);  // the healthy cell completed meanwhile
  ASSERT_EQ(rep.failures.size(), 1u);
  EXPECT_EQ(rep.failures[0].index, 0u);
  EXPECT_TRUE(rep.failures[0].timed_out);
  EXPECT_EQ(rep.failures[0].signal, SIGKILL);
  EXPECT_GE(rep.failures[0].elapsed_s, 1.0);
  EXPECT_LT(rep.failures[0].elapsed_s, 60.0) << "the kill must not wait out the hang";
}

TEST(ProcessIsolation, InjectedOomStormIsContainedAndAttributed) {
  FaultGuard guard;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/41, /*reps=*/2);
  const BatchRunner runner(1);

  fault::arm({{fault::Kind::kOomStorm, 1, fault::kEveryAttempt}});
  RunPolicy policy;
  policy.keep_going = true;
  policy.isolate = ebrc::testbed::IsolationMode::kProcess;
  SweepReport rep;
  (void)runner.run(batch, nullptr, ShardSpec{}, &rep, policy);

  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.crashed, 1u);
  EXPECT_EQ(rep.simulated, 1u);
  ASSERT_EQ(rep.failures.size(), 1u);
  EXPECT_TRUE(rep.failures[0].crashed);
  EXPECT_NE(rep.failures[0].what.find("oom storm"), std::string::npos)
      << rep.failures[0].what;
}

// ---- preemptive in-process deadline -----------------------------------------

TEST(InProcessDeadline, EventLoopPollPreemptsARunawayCellMidRun) {
  FaultGuard guard;
  // A cell that would simulate ~1e9 seconds: completing it would take hours,
  // so the ONLY way this test finishes promptly is the 64k-event poll inside
  // Simulator::run throwing WallDeadlineError mid-run.
  Scenario runaway = short_ns2(0);
  runaway.duration_s = 1.0e9;
  runaway.warmup_s = 1.0;
  const auto batch = ebrc::testbed::replicate(runaway, /*root_seed=*/43, /*reps=*/1);
  const BatchRunner runner(1);

  RunPolicy policy;
  policy.keep_going = true;
  policy.cell_deadline_s = 0.3;
  SweepReport rep;
  (void)runner.run(batch, nullptr, ShardSpec{}, &rep, policy);

  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.timed_out, 1u);
  ASSERT_EQ(rep.failures.size(), 1u);
  EXPECT_TRUE(rep.failures[0].timed_out);
  EXPECT_GE(rep.failures[0].elapsed_s, 0.3);
  EXPECT_LT(rep.failures[0].elapsed_s, 120.0);
  EXPECT_NE(rep.failures[0].what.find("--cell-deadline"), std::string::npos)
      << rep.failures[0].what;
}

TEST(InProcessDeadline, InjectedHangTimesOutViaCooperativePoll) {
  FaultGuard guard;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/47, /*reps=*/2);
  const BatchRunner runner(2);

  fault::arm({{fault::Kind::kHang, 1, fault::kEveryAttempt}});
  RunPolicy policy;
  policy.keep_going = true;
  policy.cell_deadline_s = 0.3;
  SweepReport rep;
  (void)runner.run(batch, nullptr, ShardSpec{}, &rep, policy);

  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.timed_out, 1u);
  EXPECT_EQ(rep.simulated, 1u);
  ASSERT_EQ(rep.failures.size(), 1u);
  EXPECT_EQ(rep.failures[0].index, 1u);
  EXPECT_TRUE(rep.failures[0].timed_out);
}

// ---- event feed through the batch layer -------------------------------------

TEST(EventFeed, SweepEmitsLifecycleEvents) {
  FaultGuard guard;
  TempDir dir;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/53, /*reps=*/3);
  const BatchRunner runner(2);

  // Cell 1: throws on attempt 0, recovers on attempt 1 → retry + cell_done.
  // Cell 2: throws on every attempt → cell_failed.
  fault::arm({{fault::Kind::kThrow, 1, 0}, {fault::Kind::kThrow, 2, fault::kEveryAttempt}});
  const fs::path feed_path = dir.path / "events.jsonl";
  ebrc::testbed::SweepEventFeed feed(feed_path);
  RunPolicy policy;
  policy.keep_going = true;
  policy.max_retries = 1;
  policy.events = &feed;
  SweepReport rep;
  (void)runner.run(batch, nullptr, ShardSpec{}, &rep, policy);
  EXPECT_EQ(rep.failed, 1u);

  std::ifstream in(feed_path);
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"event\":\"cell_start\""), std::string::npos);
  EXPECT_NE(all.find("\"event\":\"cell_done\""), std::string::npos);
  EXPECT_NE(all.find("\"event\":\"retry\""), std::string::npos);
  EXPECT_NE(all.find("\"event\":\"cell_failed\""), std::string::npos);
  EXPECT_NE(all.find("\"detail\":\"injected fault"), std::string::npos);
}

}  // namespace
