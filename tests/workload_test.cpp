// The dynamic-workload subsystem, locked down:
//   * finite TFRC/TCP transfers complete (reliably for TCP, even under
//     forced loss) and connections rewind cleanly for reuse,
//   * the flow pool caps concurrency, rejects overload, recycles slots, and
//     never wires more dumbbell flows than 2 x max_concurrent,
//   * sessions spawn think-time follow-up transfers,
//   * a churn run is bit-identical under --jobs=1 vs --jobs=8 (mid-run
//     spawn/retire included) and through the result cache: warm passes
//     simulate nothing and a 2-shard merged sweep equals the unsharded run
//     including every workload telemetry field,
//   * the PopulationTracker's time-average/epoch algebra is exact.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "net/dumbbell.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "stats/population.hpp"
#include "tcp/tcp_connection.hpp"
#include "testbed/batch.hpp"
#include "testbed/experiment.hpp"
#include "testbed/result_store.hpp"
#include "testbed/scenario.hpp"
#include "tfrc/tfrc_connection.hpp"
#include "workload/flow_manager.hpp"

namespace {

namespace fs = std::filesystem;
using namespace ebrc;

testbed::Scenario short_churn(std::uint64_t seed, double load = 1.0) {
  auto s = testbed::churn_scenario(load, 0.5, seed);
  s.duration_s = 20.0;
  s.warmup_s = 4.0;
  s.workload.max_concurrent = 32;
  return s;
}

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() / ("ebrc_workload_test_" + std::to_string(::getpid()) +
                                        "_" + std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)) << what;
}

/// Bitwise equality of the churn-relevant result surface.
void expect_same_workload(const testbed::ExperimentResult& a,
                          const testbed::ExperimentResult& b) {
  EXPECT_EQ(a.workload_active, b.workload_active);
  EXPECT_EQ(a.workload.arrivals, b.workload.arrivals);
  EXPECT_EQ(a.workload.completions, b.workload.completions);
  EXPECT_EQ(a.workload.rejections, b.workload.rejections);
  EXPECT_EQ(a.workload.peak_flows, b.workload.peak_flows);
  expect_bits(a.workload.mean_flows, b.workload.mean_flows, "mean_flows");
  expect_bits(a.workload.mean_flows_tfrc, b.workload.mean_flows_tfrc, "mean_flows_tfrc");
  expect_bits(a.workload.mean_flows_tcp, b.workload.mean_flows_tcp, "mean_flows_tcp");
  expect_bits(a.workload.tfrc_completion_s, b.workload.tfrc_completion_s, "tfrc_completion_s");
  expect_bits(a.workload.tcp_completion_s, b.workload.tcp_completion_s, "tcp_completion_s");
  expect_bits(a.workload.tfrc_completion_cov, b.workload.tfrc_completion_cov,
              "tfrc_completion_cov");
  expect_bits(a.workload.tcp_completion_cov, b.workload.tcp_completion_cov,
              "tcp_completion_cov");
  expect_bits(a.workload.tfrc_goodput_pps, b.workload.tfrc_goodput_pps, "tfrc_goodput_pps");
  expect_bits(a.workload.tcp_goodput_pps, b.workload.tcp_goodput_pps, "tcp_goodput_pps");
  expect_bits(a.workload.tfrc_share, b.workload.tfrc_share, "tfrc_share");
  expect_bits(a.workload.tfrc_p, b.workload.tfrc_p, "tfrc_p");
  expect_bits(a.workload.tcp_p, b.workload.tcp_p, "tcp_p");
  expect_bits(a.bottleneck_utilization, b.bottleneck_utilization, "utilization");
}

// ---- connection lifecycle ----------------------------------------------------

TEST(WorkloadLifecycle, TfrcFiniteTransferCompletesAtLastEmission) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 15e6, 0.001);
  const int id = net.add_flow(0.024, 0.025);
  tfrc::TfrcConnection c(net, id, 0.050);

  int completions = 0;
  c.open(200, [&] { ++completions; });
  EXPECT_TRUE(c.active());
  sim.run_until(400.0);
  EXPECT_EQ(completions, 1);
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.sent(), 200u);
  EXPECT_EQ(c.transfers_completed(), 1u);

  // Reuse after a drain: sequencing restarts, cumulative counters continue.
  const std::uint64_t sent0 = c.sent();
  const std::uint64_t delivered0 = c.delivered();
  c.open(150, [&] { ++completions; });
  sim.run_until(800.0);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(c.sent() - sent0, 150u);
  EXPECT_EQ(c.delivered() - delivered0, 150u);  // lossless link: all arrive
}

TEST(WorkloadLifecycle, TcpFiniteTransferCompletesReliablyUnderLoss) {
  sim::Simulator sim;
  // A 4-packet buffer forces drops; the transfer must still complete (and
  // deliver every packet) through retransmission.
  net::Dumbbell net(sim, net::Queue::drop_tail(4), 2e6, 0.001);
  const int id = net.add_flow(0.024, 0.025);
  tcp::TcpConnection c(net, id, 0.050);

  int completions = 0;
  c.open(500, [&] { ++completions; });
  sim.run_until(300.0);
  ASSERT_EQ(completions, 1);
  EXPECT_FALSE(c.active());
  EXPECT_GE(c.sent(), 500u);       // retransmissions on top of the 500
  EXPECT_EQ(c.delivered(), 500u);  // reliable: exactly the transfer, in order
  EXPECT_GT(c.recorder().losses(), 0u) << "the tiny buffer must actually drop";

  // Second incarnation on the same slot: fresh sequencing, reliable again.
  c.open(300, [&] { ++completions; });
  sim.run_until(600.0);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(c.delivered(), 800u);
}

TEST(WorkloadLifecycle, CloseDropsCompletionAndStopsTraffic) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 15e6, 0.001);
  const int id = net.add_flow(0.024, 0.025);
  tfrc::TfrcConnection c(net, id, 0.050);
  int completions = 0;
  c.open(100000, [&] { ++completions; });
  sim.run_until(2.0);
  c.close();
  const auto sent = c.sent();
  sim.run_until(10.0);
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(c.sent(), sent) << "a closed flow must not emit";
  // The kernel must fully drain: no immortal pacing/feedback chain.
  sim.run();
  EXPECT_EQ(sim.queue_size(), 0u);
}

// ---- the flow pool -----------------------------------------------------------

workload::FlowManagerConfig manager_config(std::uint64_t seed) {
  workload::FlowManagerConfig cfg;
  cfg.workload.arrival_rate_per_s = 20.0;
  cfg.workload.mean_size_pkts = 50.0;
  cfg.workload.max_concurrent = 8;
  cfg.base_rtt_s = 0.050;
  cfg.drain_s = 0.3;
  cfg.seed = seed;
  return cfg;
}

TEST(FlowPool, CapsConcurrencyRecyclesSlotsAndRejectsOverload) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(60), 2e6, 0.001);  // slow: overload
  workload::FlowManager mgr(net, manager_config(11));
  mgr.start(0.0);
  sim.run_until(60.0);
  const auto summary = mgr.summarize();

  EXPECT_LE(mgr.pool_slots(), 8u);
  EXPECT_LE(summary.peak_flows, 8u);
  EXPECT_GT(summary.completions, 50u) << "slots must recycle many times";
  EXPECT_GT(summary.rejections, 0u) << "an overloaded 8-slot pool must reject";
  EXPECT_LE(net.flows(), 16u) << "at most two wired dumbbell flows per slot";
  EXPECT_GT(summary.tfrc_share, 0.0);
  EXPECT_LT(summary.tfrc_share, 1.0);
  EXPECT_GT(summary.mean_flows, 0.0);
  EXPECT_NEAR(summary.mean_flows, summary.mean_flows_tfrc + summary.mean_flows_tcp, 1e-9);
}

TEST(FlowPool, SessionsSpawnThinkTimeFollowups) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 15e6, 0.001);
  auto cfg = manager_config(5);
  cfg.workload.arrival_rate_per_s = 2.0;
  cfg.workload.session_fraction = 1.0;
  cfg.workload.session_transfers_mean = 4.0;
  cfg.workload.session_think_s = 0.5;
  workload::FlowManager mgr(net, cfg);
  mgr.start(0.0);
  sim.run_until(60.0);
  EXPECT_GT(mgr.session_followups(), 20u);
  const auto summary = mgr.summarize();
  // Admitted transfers = fresh arrivals + follow-ups, so with mean 4
  // transfers/session the admissions far exceed the ~120 session arrivals.
  EXPECT_GT(summary.arrivals, 200u);
}

TEST(FlowPool, RejectsInvalidConfigurations) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 15e6, 0.001);
  auto bad = manager_config(1);
  bad.workload.arrival_rate_per_s = 0.0;
  EXPECT_THROW(workload::FlowManager(net, bad), std::invalid_argument);
  bad = manager_config(1);
  bad.workload.size_dist = "bimodal";
  EXPECT_THROW(workload::FlowManager(net, bad), std::invalid_argument);
  bad = manager_config(1);
  bad.workload.interarrival = "uniform";
  EXPECT_THROW(workload::FlowManager(net, bad), std::invalid_argument);
  bad = manager_config(1);
  bad.workload.max_concurrent = 0;
  EXPECT_THROW(workload::FlowManager(net, bad), std::invalid_argument);
  bad = manager_config(1);
  bad.workload.tfrc_fraction = 1.5;
  EXPECT_THROW(workload::FlowManager(net, bad), std::invalid_argument);
}

// ---- churn through the experiment runner and batch engine --------------------

TEST(Churn, ExperimentReportsWorkloadTelemetry) {
  const auto r = testbed::run_experiment(short_churn(42));
  ASSERT_TRUE(r.workload_active);
  EXPECT_GT(r.workload.arrivals, 50u);
  EXPECT_GT(r.workload.completions, 20u);
  EXPECT_GT(r.workload.mean_flows, 0.0);
  EXPECT_GT(r.workload.peak_flows, 0u);
  EXPECT_GT(r.workload.tfrc_goodput_pps + r.workload.tcp_goodput_pps, 0.0);
  EXPECT_GE(r.workload.tfrc_share, 0.0);
  EXPECT_LE(r.workload.tfrc_share, 1.0);
  EXPECT_GT(r.bottleneck_utilization, 0.2);
  // Static-population metrics stay empty — the population is dynamic.
  EXPECT_TRUE(r.flows.empty());

  // And a plain scenario reports no workload.
  auto plain = testbed::ns2_scenario(1, 1, 8, 1);
  plain.duration_s = 4.0;
  plain.warmup_s = 1.0;
  EXPECT_FALSE(testbed::run_experiment(plain).workload_active);
}

TEST(Churn, BitIdenticalAcrossJobCounts) {
  // Mid-run spawn/retire under one worker vs eight: per-run numbers may
  // depend only on the seed, never on the thread layout.
  const auto batch = testbed::replicate(short_churn(0), /*root_seed=*/77, /*reps=*/6);
  const auto serial = testbed::BatchRunner(1).run(batch);
  const auto parallel = testbed::BatchRunner(8).run(batch);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_workload(serial[i], parallel[i]);
  }
}

TEST(Churn, SweepThroughCacheAndShardsIsBitIdentical) {
  TempDir dir;
  testbed::ResultStore store(dir.path / "cache");
  const auto batch = testbed::replicate(short_churn(0, /*load=*/1.2), 9, 4);
  testbed::BatchRunner runner(4);

  // Cold pass simulates everything; warm pass simulates NOTHING and matches
  // bit for bit, workload telemetry included.
  testbed::SweepReport cold_rep;
  const auto cold = runner.run(batch, &store, {}, &cold_rep);
  EXPECT_EQ(cold_rep.simulated, batch.size());
  testbed::SweepReport warm_rep;
  const auto warm = runner.run(batch, &store, {}, &warm_rep);
  EXPECT_EQ(warm_rep.simulated, 0u);
  EXPECT_EQ(warm_rep.hits, batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) expect_same_workload(cold[i], warm[i]);

  // Two shards into separate stores, folded through a shared directory (the
  // stores validate on load), then an unsharded warm pass: bit-identical.
  testbed::ResultStore s0(dir.path / "s0");
  testbed::ResultStore s1(dir.path / "s1");
  testbed::SweepReport r0, r1;
  (void)runner.run(batch, &s0, testbed::ShardSpec(0, 2), &r0);
  (void)runner.run(batch, &s1, testbed::ShardSpec(1, 2), &r1);
  EXPECT_EQ(r0.simulated + r1.simulated, batch.size());
  testbed::ResultStore merged(dir.path / "merged");
  for (const auto& shard_dir : {dir.path / "s0", dir.path / "s1"}) {
    for (const auto& e : fs::recursive_directory_iterator(shard_dir)) {
      if (!e.is_regular_file()) continue;
      const auto rel = fs::relative(e.path(), shard_dir);
      fs::create_directories((dir.path / "merged" / rel).parent_path());
      fs::copy_file(e.path(), dir.path / "merged" / rel,
                    fs::copy_options::overwrite_existing);
    }
  }
  // Out-of-band copies bypass store(), so the index sidecar is stale; the
  // merge workflow (and merge_results --into) rebuilds it from filenames.
  EXPECT_EQ(merged.rebuild_index(), batch.size());
  testbed::SweepReport merged_rep;
  const auto merged_run = runner.run(batch, &merged, {}, &merged_rep);
  EXPECT_EQ(merged_rep.simulated, 0u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_workload(cold[i], merged_run[i]);
  }

  // The overload scenario must actually exercise the many-flows regime.
  for (const auto& r : cold) EXPECT_GT(r.workload.peak_flows, 20u);
}

TEST(Churn, CrnPairingSharesSeedsAndTightensContrast) {
  auto a = short_churn(0, 0.8);
  a.workload.tfrc_fraction = 1.0;
  a.name = "crn-a";
  auto b = short_churn(0, 0.8);
  b.workload.tfrc_fraction = 0.0;
  b.name = "crn-b";
  const auto paired = testbed::replicate_paired(a, b, "test-crn", 3, 4);
  ASSERT_EQ(paired.a.size(), 4u);
  for (std::size_t i = 0; i < paired.a.size(); ++i) {
    EXPECT_EQ(paired.a[i].seed, paired.b[i].seed);  // common random numbers
    for (std::size_t j = i + 1; j < paired.a.size(); ++j) {
      EXPECT_NE(paired.a[i].seed, paired.a[j].seed);  // reps independent
    }
  }
  testbed::BatchRunner runner(4);
  const auto ra = runner.run(paired.a);
  const auto rb = runner.run(paired.b);
  // CRN alignment: identical arrival/size draws mean identical admitted
  // arrival counts per pair (both arms draw class/size before admission).
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].workload.arrivals + ra[i].workload.rejections,
              rb[i].workload.arrivals + rb[i].workload.rejections);
  }
  const auto diff = testbed::paired_difference(ra, rb);
  EXPECT_EQ(diff.runs, 4u);
  // The paired CI on utilization must not exceed the unpaired two-sample
  // width (it is the point of CRN); with shared seeds it is typically much
  // tighter, but assert only the inequality to stay robust.
  const auto ua = testbed::aggregate(ra).metric("bottleneck_utilization");
  const auto ub = testbed::aggregate(rb).metric("bottleneck_utilization");
  const double unpaired_hw = 1.96 * std::sqrt(ua.stderr_mean() * ua.stderr_mean() +
                                              ub.stderr_mean() * ub.stderr_mean());
  EXPECT_LE(diff.ci("bottleneck_utilization"), unpaired_hw * 1.05);
}

// ---- the population tracker --------------------------------------------------

TEST(PopulationTracker, TimeAverageAndEpochAlgebraAreExact) {
  stats::PopulationTracker pop;
  pop.begin_epoch(0.0);
  pop.on_open(1.0, 0);   // 1 flow over [1, 3)
  pop.on_open(3.0, 1);   // 2 flows over [3, 5)
  pop.on_close(5.0, 0, 4.0, 100.0);
  pop.on_close(7.0, 1, 4.0, 50.0);  // 1 flow over [5, 7)
  pop.finish(8.0);
  // integral = 0*1 + 1*2 + 2*2 + 1*2 = 8 over 8 seconds.
  EXPECT_DOUBLE_EQ(pop.mean_flows_total(), 1.0);
  EXPECT_EQ(pop.arrivals(), 2u);
  EXPECT_EQ(pop.completions(), 2u);
  EXPECT_EQ(pop.peak(), 2u);
  EXPECT_DOUBLE_EQ(pop.completion_time(0).mean(), 4.0);
  EXPECT_DOUBLE_EQ(pop.completion_size(1).mean(), 50.0);

  // A new epoch forgets the window but keeps the instantaneous population.
  pop.begin_epoch(10.0);
  EXPECT_EQ(pop.arrivals(), 0u);
  EXPECT_EQ(pop.active_total(), 0);
  pop.on_open(10.0, 0);
  pop.finish(12.0);
  EXPECT_DOUBLE_EQ(pop.mean_flows(0), 1.0);
  EXPECT_THROW(pop.on_close(12.0, 1, 1.0, 1.0), std::logic_error);
}

}  // namespace
