#include "testbed/supervisor.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

namespace {

namespace fs = std::filesystem;
using ebrc::testbed::IsolationMode;
using ebrc::testbed::SweepEventFeed;
using ebrc::testbed::WorkerLimits;
using ebrc::testbed::WorkerOutcome;
using ebrc::testbed::isolation_from;
using ebrc::testbed::isolation_name;
using ebrc::testbed::run_supervised;
using ebrc::testbed::signal_name;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("ebrc-supervisor-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(IsolationModeTest, ParsesAndNames) {
  EXPECT_EQ(isolation_from("none"), IsolationMode::kInProcess);
  EXPECT_EQ(isolation_from("in-process"), IsolationMode::kInProcess);
  EXPECT_EQ(isolation_from("process"), IsolationMode::kProcess);
  EXPECT_THROW((void)isolation_from("container"), std::invalid_argument);
  EXPECT_STREQ(isolation_name(IsolationMode::kInProcess), "none");
  EXPECT_STREQ(isolation_name(IsolationMode::kProcess), "process");
}

TEST(SupervisorTest, CleanExitIsOk) {
  const WorkerOutcome o = run_supervised([] { return 0; }, {});
  EXPECT_TRUE(o.ok);
  EXPECT_FALSE(o.crashed);
  EXPECT_FALSE(o.killed);
  EXPECT_EQ(o.exit_code, 0);
  EXPECT_EQ(o.describe(), "exited 0");
}

TEST(SupervisorTest, NonzeroExitCodeIsReported) {
  const WorkerOutcome o = run_supervised([] { return 7; }, {});
  EXPECT_FALSE(o.ok);
  EXPECT_FALSE(o.crashed);
  EXPECT_EQ(o.exit_code, 7);
  EXPECT_EQ(o.describe(), "exited 7");
}

TEST(SupervisorTest, ThrowingBodyExitsOneWithWhatOnStderr) {
  const WorkerOutcome o = run_supervised(
      []() -> int { throw std::runtime_error("deliberate test failure"); }, {});
  EXPECT_FALSE(o.ok);
  EXPECT_EQ(o.exit_code, 1);
  EXPECT_NE(o.stderr_tail.find("deliberate test failure"), std::string::npos);
}

TEST(SupervisorTest, AbortIsAttributedAsCrashWithSignal) {
  const WorkerOutcome o = run_supervised(
      []() -> int {
        std::abort();
      },
      {});
  EXPECT_FALSE(o.ok);
  EXPECT_TRUE(o.crashed);
  EXPECT_FALSE(o.killed);
  EXPECT_EQ(o.term_signal, SIGABRT);
  EXPECT_NE(o.describe().find("SIGABRT"), std::string::npos);
}

TEST(SupervisorTest, SegfaultIsAttributedAsCrash) {
  const WorkerOutcome o = run_supervised(
      []() -> int {
        ::raise(SIGSEGV);
        return 0;
      },
      {});
  EXPECT_TRUE(o.crashed);
  EXPECT_EQ(o.term_signal, SIGSEGV);
}

TEST(SupervisorTest, DeadlineKillsHungWorker) {
  WorkerLimits limits;
  limits.deadline_s = 0.3;
  const auto t0 = std::chrono::steady_clock::now();
  const WorkerOutcome o = run_supervised(
      []() -> int {
        for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
      },
      limits);
  const double waited = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_FALSE(o.ok);
  EXPECT_TRUE(o.killed);
  EXPECT_FALSE(o.crashed) << "a deadline kill must not be misattributed as a crash";
  EXPECT_GE(o.elapsed_s, 0.3);
  EXPECT_LT(waited, 30.0) << "the supervisor must not wait for the sleep to finish";
  EXPECT_NE(o.describe().find("deadline"), std::string::npos);
}

TEST(SupervisorTest, StderrTailKeepsOnlyTheEnd) {
  WorkerLimits limits;
  limits.stderr_tail_bytes = 256;
  const WorkerOutcome o = run_supervised(
      []() -> int {
        for (int i = 0; i < 1000; ++i) std::fprintf(stderr, "line %04d\n", i);
        return 3;
      },
      limits);
  EXPECT_EQ(o.exit_code, 3);
  EXPECT_LE(o.stderr_tail.size(), 256u);
  EXPECT_NE(o.stderr_tail.find("line 0999"), std::string::npos);
  EXPECT_EQ(o.stderr_tail.find("line 0000"), std::string::npos);
}

TEST(SupervisorTest, WorkerStdoutCannotReachParentStdout) {
  const WorkerOutcome o = run_supervised(
      []() -> int {
        std::printf("worker stdout noise\n");
        return 0;
      },
      {});
  // The worker's stdout is redirected onto the supervision pipe, i.e. it
  // lands in the captured tail rather than the parent's stdout.
  EXPECT_TRUE(o.ok);
  EXPECT_NE(o.stderr_tail.find("worker stdout noise"), std::string::npos);
}

TEST(SupervisorTest, RusageIsReaped) {
  const WorkerOutcome o = run_supervised([] { return 0; }, {});
  EXPECT_GT(o.max_rss_kb, 0) << "ru_maxrss of a real process is never zero";
}

TEST(SignalNameTest, KnownAndUnknown) {
  EXPECT_EQ(signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(signal_name(SIGKILL), "SIGKILL");
  EXPECT_EQ(signal_name(SIGABRT), "SIGABRT");
  EXPECT_EQ(signal_name(42), "signal 42");
}

TEST(SweepEventFeedTest, WritesOneJsonObjectPerLineAndEscapes) {
  TempDir dir;
  const fs::path path = dir.path / "events.jsonl";
  {
    SweepEventFeed feed(path);
    feed.emit("cell_start", 3, "fig16/b=0.25", 123, 0);
    feed.emit("cell_done", 3, "fig16/b=0.25", 123, 0, 1.5, 4096);
    feed.emit("cell_failed", 4, "name-with\"quote\nand-newline", 9, 1, 0.25, -1,
              "detail with \\ backslash");
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u) << "schema header + 3 events";
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  // Line 0 is always the schema header.
  EXPECT_NE(lines[0].find("\"event\":\"schema\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"version\":2"), std::string::npos);
  EXPECT_NE(lines[0].find("sweep_done"), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"cell_start\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"cell\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seed\":123"), std::string::npos);
  EXPECT_EQ(lines[1].find("elapsed_s"), std::string::npos) << "unknown fields are omitted";
  EXPECT_EQ(lines[1].find("rss_kb"), std::string::npos);
  EXPECT_NE(lines[2].find("\"elapsed_s\":1.500000"), std::string::npos);
  EXPECT_NE(lines[2].find("\"rss_kb\":4096"), std::string::npos);
  EXPECT_NE(lines[3].find("name-with\\\"quote\\nand-newline"), std::string::npos);
  EXPECT_NE(lines[3].find("detail with \\\\ backslash"), std::string::npos);
  EXPECT_NE(lines[3].find("\"ts\":"), std::string::npos);
}

TEST(SweepEventFeedTest, ExtraJsonAndSweepEvents) {
  TempDir dir;
  const fs::path path = dir.path / "events.jsonl";
  {
    SweepEventFeed feed(path);
    feed.emit("cell_done", 0, "sc", 1, 0, 0.5, -1, {}, ",\"obs\":{\"kernel_events\":42}");
    feed.emit_sweep("sweep_done", ",\"cells\":7,\"obs\":{\"store_hits\":3}");
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find(",\"obs\":{\"kernel_events\":42}}"), std::string::npos);
  EXPECT_NE(lines[2].find("\"event\":\"sweep_done\""), std::string::npos);
  EXPECT_NE(lines[2].find(",\"cells\":7,\"obs\":{\"store_hits\":3}}"), std::string::npos);
  EXPECT_EQ(lines[2].find("\"cell\":"), std::string::npos) << "sweep events carry no cell";
}

TEST(SweepEventFeedTest, UnopenablePathThrows) {
  EXPECT_THROW(SweepEventFeed feed("/nonexistent-dir-ebrc/events.jsonl"), std::runtime_error);
}

}  // namespace
