#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"
#include "stats/autocovariance.hpp"
#include "stats/binned.hpp"
#include "stats/histogram.hpp"
#include "stats/loss_events.hpp"
#include "stats/online.hpp"
#include "stats/time_average.hpp"

namespace {

using namespace ebrc::stats;

TEST(OnlineMoments, MatchesClosedForm) {
  OnlineMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(v);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(OnlineMoments, MergeEqualsSequential) {
  OnlineMoments a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 3 + i * 0.01;
    (i < 20 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineCovariance, KnownCovariance) {
  OnlineCovariance c;
  // y = 2x exactly: cov = 2 var(x), corr = 1.
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) c.add(x, 2.0 * x);
  EXPECT_NEAR(c.covariance(), 2.0 * 2.5, 1e-12);  // var_x of 1..5 = 2.5
  EXPECT_NEAR(c.correlation(), 1.0, 1e-12);
}

TEST(OnlineCovariance, IndependentNearZero) {
  ebrc::sim::Rng r(3);
  OnlineCovariance c;
  for (int i = 0; i < 200000; ++i) c.add(r.uniform(), r.uniform());
  EXPECT_NEAR(c.covariance(), 0.0, 1e-3);
}

TEST(LaggedAutocovariance, DetectsLagOneStructure) {
  // x_n alternates +1, -1: lag-1 autocovariance = -1, lag-2 = +1.
  LaggedAutocovariance ac(2);
  for (int i = 0; i < 1000; ++i) ac.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(ac.at(1), -1.0, 1e-2);
  EXPECT_NEAR(ac.at(2), 1.0, 1e-2);
  EXPECT_NEAR(ac.correlation_at(1), -1.0, 1e-2);
}

TEST(LaggedAutocovariance, WeightedSumMatchesEquation11) {
  LaggedAutocovariance ac(3);
  ebrc::sim::Rng r(5);
  for (int i = 0; i < 5000; ++i) ac.add(r.uniform());
  const std::vector<double> w{0.5, 0.3, 0.2};
  const double expect = 0.5 * ac.at(1) + 0.3 * ac.at(2) + 0.2 * ac.at(3);
  EXPECT_DOUBLE_EQ(ac.weighted(w), expect);
}

TEST(LaggedAutocovariance, Validation) {
  EXPECT_THROW(LaggedAutocovariance(0), std::invalid_argument);
  LaggedAutocovariance ac(2);
  ac.add(1.0);
  EXPECT_THROW((void)ac.at(0), std::out_of_range);
  EXPECT_THROW((void)ac.at(3), std::out_of_range);
  EXPECT_THROW((void)ac.weighted({1.0, 1.0, 1.0}), std::invalid_argument);
}

TEST(TimeWeightedAverage, PiecewiseConstant) {
  TimeWeightedAverage a;
  a.start(0.0, 10.0);
  a.set(2.0, 20.0);   // 10 for 2s
  a.set(3.0, 0.0);    // 20 for 1s
  a.finish(5.0);      // 0 for 2s
  EXPECT_DOUBLE_EQ(a.integral(), 10.0 * 2 + 20.0 * 1 + 0.0 * 2);
  EXPECT_DOUBLE_EQ(a.average(), 40.0 / 5.0);
}

TEST(TimeWeightedAverage, RejectsBackwardsTime) {
  TimeWeightedAverage a;
  a.start(1.0, 1.0);
  EXPECT_THROW(a.set(0.5, 2.0), std::invalid_argument);
}

TEST(BinnedSeries, PerBinMeansAndCI) {
  BinnedSeries b(0.0, 10.0, 5);
  for (int i = 0; i < 100; ++i) {
    const double t = i * 0.1;  // covers [0, 10)
    b.add(t, 1.0);             // constant signal
  }
  const auto est = b.estimate();
  EXPECT_EQ(est.bins, 5u);
  EXPECT_DOUBLE_EQ(est.mean, 1.0);
  EXPECT_DOUBLE_EQ(est.half_width, 0.0);
  // Out-of-window samples are dropped.
  b.add(-1.0, 100.0);
  b.add(10.0, 100.0);
  EXPECT_DOUBLE_EQ(b.estimate().mean, 1.0);
}

TEST(BinnedSeries, CIWidthBehaves) {
  const auto est = estimate_from({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  EXPECT_DOUBLE_EQ(est.mean, 3.5);
  EXPECT_GT(est.half_width, 0.0);
  EXPECT_LT(est.lo(), est.mean);
  EXPECT_GT(est.hi(), est.mean);
}

TEST(StudentT, QuantileTable) {
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile_975(5), 2.571, 1e-3);
  EXPECT_NEAR(t_quantile_975(100), 1.96, 1e-3);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(i % 10 + 0.5);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.6);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(LossEventRecorder, GroupsLossesWithinRtt) {
  LossEventRecorder rec(1.0);  // 1 s window
  double t = 0.0;
  // 3 packets/s; losses at t=10, 10.5 (same event), 20 (new event).
  for (int i = 0; i < 100; ++i) {
    t = i * (1.0 / 3.0);
    rec.on_packet(t);
  }
  EXPECT_TRUE(rec.on_loss(10.0));
  EXPECT_FALSE(rec.on_loss(10.5));  // merged
  EXPECT_TRUE(rec.on_loss(20.0));
  EXPECT_EQ(rec.events(), 2u);
  EXPECT_EQ(rec.losses(), 3u);
}

TEST(LossEventRecorder, IntervalsAndRates) {
  LossEventRecorder rec(0.1);
  // 10 packets then a loss, repeated; every loss a new event.
  double t = 0.0;
  int sent = 0;
  for (int ev = 0; ev < 5; ++ev) {
    for (int k = 0; k < 10; ++k) {
      rec.on_packet(t);
      t += 1.0;
      ++sent;
    }
    rec.on_loss(t);
    rec.note_rate(1.0);
  }
  ASSERT_EQ(rec.events(), 5u);
  ASSERT_EQ(rec.intervals_packets().size(), 4u);
  for (double th : rec.intervals_packets()) EXPECT_DOUBLE_EQ(th, 10.0);
  for (double s : rec.intervals_seconds()) EXPECT_DOUBLE_EQ(s, 10.0);
  EXPECT_NEAR(rec.loss_event_rate(), 0.1, 1e-9);
  EXPECT_NEAR(rec.mean_interval(), 10.0, 1e-9);
}

TEST(LossEventRecorder, RecordsRateSetAfterEvent) {
  LossEventRecorder rec(0.5);
  rec.on_packet(0.0);
  rec.on_loss(1.0);
  rec.note_rate(42.0);  // rate set at event 0 -> X_0
  for (int i = 0; i < 10; ++i) rec.on_packet(1.0 + i * 0.1);
  rec.on_loss(3.0);
  rec.note_rate(7.0);
  rec.on_packet(3.1);
  rec.on_loss(5.0);
  ASSERT_EQ(rec.rates_at_event().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.rates_at_event()[0], 42.0);
  EXPECT_DOUBLE_EQ(rec.rates_at_event()[1], 7.0);
}

}  // namespace
