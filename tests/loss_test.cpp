#include <gtest/gtest.h>

#include "loss/congestion_process.hpp"
#include "loss/droppers.hpp"
#include "loss/loss_process.hpp"
#include "loss/markov_modulated.hpp"
#include "stats/autocovariance.hpp"
#include "stats/online.hpp"

namespace {

using namespace ebrc::loss;

TEST(Deterministic, ConstantIntervals) {
  DeterministicProcess p(25.0);
  EXPECT_DOUBLE_EQ(p.mean(), 25.0);
  EXPECT_DOUBLE_EQ(p.loss_event_rate(), 0.04);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(p.next(), 25.0);
  EXPECT_THROW(DeterministicProcess(0.0), std::invalid_argument);
}

TEST(ShiftedExponential, TargetsMeanAndCv) {
  // Paper convention (Sec. V-A.1): cv^2 = (1/a)/mean, so the conventional
  // sd/mean of the distribution equals cv^2.
  for (double p : {0.01, 0.1}) {
    for (double cv : {0.3, 0.999}) {
      ShiftedExponentialProcess proc(p, cv, 42);
      ebrc::stats::OnlineMoments m;
      for (int i = 0; i < 300000; ++i) m.add(proc.next());
      EXPECT_NEAR(m.mean() * p, 1.0, 0.02) << "p=" << p << " cv=" << cv;
      EXPECT_NEAR(m.cv(), cv * cv, 0.02) << "p=" << p << " cv=" << cv;
    }
  }
}

TEST(ShiftedExponential, IntervalsAreIid) {
  ShiftedExponentialProcess proc(0.1, 0.8, 7);
  ebrc::stats::LaggedAutocovariance ac(3);
  for (int i = 0; i < 200000; ++i) ac.add(proc.next());
  for (std::size_t lag = 1; lag <= 3; ++lag) {
    EXPECT_NEAR(ac.correlation_at(lag), 0.0, 0.01) << "lag " << lag;
  }
}

TEST(Gamma, SupportsHighVariability) {
  GammaProcess proc(50.0, 1.5, 13);
  ebrc::stats::OnlineMoments m;
  for (int i = 0; i < 400000; ++i) m.add(proc.next());
  EXPECT_NEAR(m.mean(), 50.0, 1.0);
  EXPECT_NEAR(m.cv(), 1.5, 0.05);
}

TEST(Ar1, PositiveRhoGivesPositiveLag1Correlation) {
  Ar1Process proc(100.0, 0.4, 0.7, 3);
  ebrc::stats::LaggedAutocovariance ac(2);
  for (int i = 0; i < 200000; ++i) ac.add(proc.next());
  EXPECT_GT(ac.correlation_at(1), 0.5);
  EXPECT_NEAR(ac.marginal().mean(), 100.0, 3.0);
}

TEST(Ar1, NegativeRhoGivesNegativeLag1Correlation) {
  Ar1Process proc(100.0, 0.4, -0.5, 3);
  ebrc::stats::LaggedAutocovariance ac(1);
  for (int i = 0; i < 200000; ++i) ac.add(proc.next());
  EXPECT_LT(ac.correlation_at(1), -0.3);
}

TEST(Ar1, Validation) {
  EXPECT_THROW(Ar1Process(1.0, 0.5, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(Ar1Process(-1.0, 0.5, 0.0, 1), std::invalid_argument);
}

TEST(MarkovModulated, MeanIsSojournWeighted) {
  MarkovModulatedProcess proc({{100.0, 50.0}, {10.0, 25.0}}, 99);
  // Stationary event-weights 50/75 and 25/75.
  EXPECT_NEAR(proc.mean(), (50.0 * 100.0 + 25.0 * 10.0) / 75.0, 1e-12);
  ebrc::stats::OnlineMoments m;
  for (int i = 0; i < 500000; ++i) m.add(proc.next());
  EXPECT_NEAR(m.mean(), proc.mean(), 0.02 * proc.mean());
}

TEST(MarkovModulated, SlowPhasesInducePositiveAutocorrelation) {
  // Phase persistence makes intervals predictable — the (C1)-violating
  // regime of Section III-B.2.
  auto proc = make_two_phase(200.0, 10.0, 100.0, 5);
  ebrc::stats::LaggedAutocovariance ac(1);
  for (int i = 0; i < 300000; ++i) ac.add(proc.next());
  EXPECT_GT(ac.correlation_at(1), 0.3);
}

TEST(MarkovModulated, Validation) {
  EXPECT_THROW(MarkovModulatedProcess({}, 1), std::invalid_argument);
  EXPECT_THROW(MarkovModulatedProcess({{0.0, 10.0}}, 1), std::invalid_argument);
  EXPECT_THROW(MarkovModulatedProcess({{5.0, 0.5}}, 1), std::invalid_argument);
}

TEST(CongestionProcess, StationaryWeights) {
  CongestionProcess cp({{0.01, 1.0}, {0.1, 3.0}}, 5);
  const auto pi = cp.stationary();
  EXPECT_NEAR(pi[0], 0.25, 1e-12);
  EXPECT_NEAR(pi[1], 0.75, 1e-12);
}

TEST(CongestionProcess, Equation13Ordering) {
  // A responsive source (high rate in good states) sees a SMALLER sampled
  // loss rate than a non-adaptive one; an anti-adaptive source a larger one.
  CongestionProcess cp({{0.01, 1.0}, {0.2, 1.0}}, 5);
  const double p_cbr = cp.nonadaptive_loss_rate();
  const double p_responsive = cp.sampled_loss_rate({10.0, 1.0});
  const double p_anti = cp.sampled_loss_rate({1.0, 10.0});
  EXPECT_LT(p_responsive, p_cbr);
  EXPECT_GT(p_anti, p_cbr);
  EXPECT_NEAR(p_cbr, 0.105, 1e-12);
}

TEST(CongestionProcess, SamplePathVisitsAllStates) {
  CongestionProcess cp({{0.01, 0.5}, {0.05, 0.5}, {0.2, 0.5}}, 17);
  std::vector<int> visits(3, 0);
  for (double t = 0.0; t < 3000.0; t += 0.1) {
    cp.advance(t);
    ++visits[static_cast<int>(cp.state())];
  }
  for (int v : visits) EXPECT_GT(v, 1000);
  EXPECT_THROW(cp.advance(0.0), std::invalid_argument);  // time went backwards
}

TEST(WeatherProcess, GeometricSweep) {
  auto cp = make_weather_process(0.01, 0.16, 5, 10.0, 3);
  ASSERT_EQ(cp.states().size(), 5u);
  EXPECT_NEAR(cp.states()[0].loss_rate, 0.01, 1e-12);
  EXPECT_NEAR(cp.states()[4].loss_rate, 0.16, 1e-9);
  EXPECT_NEAR(cp.states()[2].loss_rate, 0.04, 1e-9);  // geometric midpoint
  EXPECT_THROW(make_weather_process(0.2, 0.1, 3, 1.0, 1), std::invalid_argument);
}

TEST(BernoulliDropper, DropRate) {
  BernoulliDropper d(0.25, 123);
  int drops = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) drops += d.drop(static_cast<double>(i));
  EXPECT_NEAR(static_cast<double>(drops) / kN, 0.25, 0.005);
  EXPECT_THROW(BernoulliDropper(1.5, 1), std::invalid_argument);
}

TEST(ModulatedDropper, TracksCongestionState) {
  // Two states with very different loss rates and slow switching: the
  // overall drop rate approaches the stationary mixture.
  CongestionProcess cp({{0.02, 20.0}, {0.3, 20.0}}, 7);
  ModulatedDropper d(std::move(cp), 11);
  int drops = 0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) {
    drops += d.drop(static_cast<double>(i) * 0.01);  // 100 pkt/s for 4000 s
  }
  EXPECT_NEAR(static_cast<double>(drops) / kN, 0.16, 0.02);
}

}  // namespace
