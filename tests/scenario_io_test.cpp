// Property suite for the scenario serialization layer: Scenario → TOML/JSON
// → Scenario is lossless (every field bit-identical) and fingerprint-stable
// across randomized field values, the fingerprint reacts to every field
// except the seed, and malformed documents fail loudly. The generator is
// splitmix-driven (same style as estimator_property_test.cpp) so the test
// cannot drift when the library's Rng engine changes.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "testbed/scenario.hpp"
#include "testbed/scenario_io.hpp"

namespace {

using ebrc::testbed::Scenario;

struct Splitmix {
  std::uint64_t x;
  std::uint64_t next() {
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
};

/// Finite doubles across many magnitudes, signs, and "round number" special
/// cases (integral values, zero, negative zero) — the values most likely to
/// expose formatting shortcuts.
double random_double(Splitmix& g) {
  switch (g.range(0, 9)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return static_cast<double>(g.range(-1000, 1000));  // integral
    default: {
      const double mantissa = g.uniform() * 2.0 - 1.0;
      const int exponent = g.range(-12, 12);
      double v = mantissa;
      for (int i = 0; i < exponent; ++i) v *= 10.0;
      for (int i = 0; i > exponent; --i) v /= 10.0;
      return v;
    }
  }
}

/// Strings exercising quoting, escapes, TOML-significant punctuation, and
/// non-ASCII bytes.
std::string random_string(Splitmix& g) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-#=[]\"\\\n\t\r";
  static const char* utf8_extras[] = {"\xc3\xa9", "\xe2\x82\xac"};  // é, €
  std::string s;
  const int len = g.range(0, 24);
  for (int i = 0; i < len; ++i) {
    if (g.range(0, 15) == 0) {
      s += utf8_extras[g.range(0, 1)];
    } else {
      s += alphabet[g.range(0, static_cast<int>(sizeof(alphabet)) - 2)];
    }
  }
  return s;
}

Scenario random_scenario(Splitmix& g) {
  Scenario s;
  s.name = random_string(g);
  s.bottleneck_bps = random_double(g);
  s.base_rtt_s = random_double(g);
  s.queue = g.range(0, 1) == 0 ? ebrc::testbed::QueueKind::kDropTail
                               : ebrc::testbed::QueueKind::kRed;
  s.droptail_buffer = static_cast<std::size_t>(g.next() >> 32);
  s.n_tfrc = g.range(-5, 1000);
  s.n_tcp = g.range(-5, 1000);
  s.n_poisson = g.range(0, 64);
  s.poisson_rate_pps = random_double(g);
  s.n_onoff = g.range(0, 64);
  s.onoff_peak_pps = random_double(g);
  s.onoff_mean_on_s = random_double(g);
  s.onoff_mean_off_s = random_double(g);
  s.duration_s = random_double(g);
  s.warmup_s = random_double(g);
  s.seed = g.next();  // full 64-bit range
  s.rtt_spread = random_double(g);
  if (g.range(0, 1) == 0) {
    ebrc::net::RedParams red;
    red.buffer_packets = static_cast<std::size_t>(g.next() >> 40);
    red.min_th = random_double(g);
    red.max_th = random_double(g);
    red.max_p = random_double(g);
    red.weight = random_double(g);
    red.gentle = g.range(0, 1) == 1;
    red.mean_packet_time = random_double(g);
    s.red = red;
  } else {
    s.red.reset();
  }
  s.tfrc.history_length = static_cast<std::size_t>(g.range(0, 64));
  s.tfrc.comprehensive = g.range(0, 1) == 1;
  s.tfrc.history_discounting = g.range(0, 1) == 1;
  s.tfrc.receive_rate_cap = g.range(0, 1) == 1;
  s.tfrc.formula = random_string(g);
  s.tfrc.packet_bytes = random_double(g);
  s.tfrc.initial_rate_pps = random_double(g);
  s.tfrc.rtt_smoothing = random_double(g);
  s.tfrc.min_rate_pps = random_double(g);
  s.tcp.packet_bytes = random_double(g);
  s.tcp.initial_cwnd = random_double(g);
  s.tcp.initial_ssthresh = random_double(g);
  s.tcp.dupack_threshold = g.range(-3, 100);
  s.tcp.ack_every = g.range(0, 16);
  s.tcp.delayed_ack_timeout = random_double(g);
  s.tcp.min_rto = random_double(g);
  s.tcp.max_rto = random_double(g);
  s.tcp.max_cwnd = random_double(g);
  if (g.range(0, 1) == 0) {
    // Workload block engaged: randomize every field. (A randomized config
    // colliding with the default — which would elide the block — has
    // negligible probability; the other half of the draws covers the
    // default-elided path explicitly.)
    s.workload.arrival_rate_per_s = random_double(g);
    s.workload.interarrival = random_string(g);
    s.workload.interarrival_shape = random_double(g);
    s.workload.size_dist = random_string(g);
    s.workload.mean_size_pkts = random_double(g);
    s.workload.pareto_shape = random_double(g);
    s.workload.max_size_pkts = random_double(g);
    s.workload.min_size_pkts = random_double(g);
    s.workload.tfrc_fraction = random_double(g);
    switch (g.range(0, 5)) {  // zoo names, the default, and arbitrary text
      case 0: s.workload.controller = "tfrc"; break;
      case 1: s.workload.controller = "tcp"; break;
      case 2: s.workload.controller = "delay_aimd"; break;
      case 3: s.workload.controller = "rcp"; break;
      case 4: s.workload.controller = ""; break;
      default: s.workload.controller = random_string(g); break;
    }
    s.workload.max_concurrent = g.range(1, 4096);
    s.workload.session_fraction = random_double(g);
    s.workload.session_transfers_mean = random_double(g);
    s.workload.session_think_s = random_double(g);
  }
  return s;
}

/// Bitwise double equality: -0.0 != 0.0 here, NaN == NaN. Serialization must
/// preserve the exact pattern, not just operator== equivalence.
void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b)) << what;
}

void expect_identical(const Scenario& a, const Scenario& b) {
  EXPECT_EQ(a.name, b.name);
  expect_bits(a.bottleneck_bps, b.bottleneck_bps, "bottleneck_bps");
  expect_bits(a.base_rtt_s, b.base_rtt_s, "base_rtt_s");
  EXPECT_EQ(a.queue, b.queue);
  EXPECT_EQ(a.droptail_buffer, b.droptail_buffer);
  EXPECT_EQ(a.n_tfrc, b.n_tfrc);
  EXPECT_EQ(a.n_tcp, b.n_tcp);
  EXPECT_EQ(a.n_poisson, b.n_poisson);
  expect_bits(a.poisson_rate_pps, b.poisson_rate_pps, "poisson_rate_pps");
  EXPECT_EQ(a.n_onoff, b.n_onoff);
  expect_bits(a.onoff_peak_pps, b.onoff_peak_pps, "onoff_peak_pps");
  expect_bits(a.onoff_mean_on_s, b.onoff_mean_on_s, "onoff_mean_on_s");
  expect_bits(a.onoff_mean_off_s, b.onoff_mean_off_s, "onoff_mean_off_s");
  expect_bits(a.duration_s, b.duration_s, "duration_s");
  expect_bits(a.warmup_s, b.warmup_s, "warmup_s");
  EXPECT_EQ(a.seed, b.seed);
  expect_bits(a.rtt_spread, b.rtt_spread, "rtt_spread");
  ASSERT_EQ(a.red.has_value(), b.red.has_value());
  if (a.red) {
    EXPECT_EQ(a.red->buffer_packets, b.red->buffer_packets);
    expect_bits(a.red->min_th, b.red->min_th, "red.min_th");
    expect_bits(a.red->max_th, b.red->max_th, "red.max_th");
    expect_bits(a.red->max_p, b.red->max_p, "red.max_p");
    expect_bits(a.red->weight, b.red->weight, "red.weight");
    EXPECT_EQ(a.red->gentle, b.red->gentle);
    expect_bits(a.red->mean_packet_time, b.red->mean_packet_time, "red.mean_packet_time");
  }
  EXPECT_EQ(a.tfrc.history_length, b.tfrc.history_length);
  EXPECT_EQ(a.tfrc.comprehensive, b.tfrc.comprehensive);
  EXPECT_EQ(a.tfrc.history_discounting, b.tfrc.history_discounting);
  EXPECT_EQ(a.tfrc.receive_rate_cap, b.tfrc.receive_rate_cap);
  EXPECT_EQ(a.tfrc.formula, b.tfrc.formula);
  expect_bits(a.tfrc.packet_bytes, b.tfrc.packet_bytes, "tfrc.packet_bytes");
  expect_bits(a.tfrc.initial_rate_pps, b.tfrc.initial_rate_pps, "tfrc.initial_rate_pps");
  expect_bits(a.tfrc.rtt_smoothing, b.tfrc.rtt_smoothing, "tfrc.rtt_smoothing");
  expect_bits(a.tfrc.min_rate_pps, b.tfrc.min_rate_pps, "tfrc.min_rate_pps");
  expect_bits(a.tcp.packet_bytes, b.tcp.packet_bytes, "tcp.packet_bytes");
  expect_bits(a.tcp.initial_cwnd, b.tcp.initial_cwnd, "tcp.initial_cwnd");
  expect_bits(a.tcp.initial_ssthresh, b.tcp.initial_ssthresh, "tcp.initial_ssthresh");
  EXPECT_EQ(a.tcp.dupack_threshold, b.tcp.dupack_threshold);
  EXPECT_EQ(a.tcp.ack_every, b.tcp.ack_every);
  expect_bits(a.tcp.delayed_ack_timeout, b.tcp.delayed_ack_timeout, "tcp.delayed_ack_timeout");
  expect_bits(a.tcp.min_rto, b.tcp.min_rto, "tcp.min_rto");
  expect_bits(a.tcp.max_rto, b.tcp.max_rto, "tcp.max_rto");
  expect_bits(a.tcp.max_cwnd, b.tcp.max_cwnd, "tcp.max_cwnd");
  expect_bits(a.workload.arrival_rate_per_s, b.workload.arrival_rate_per_s,
              "workload.arrival_rate_per_s");
  EXPECT_EQ(a.workload.interarrival, b.workload.interarrival);
  expect_bits(a.workload.interarrival_shape, b.workload.interarrival_shape,
              "workload.interarrival_shape");
  EXPECT_EQ(a.workload.size_dist, b.workload.size_dist);
  expect_bits(a.workload.mean_size_pkts, b.workload.mean_size_pkts, "workload.mean_size_pkts");
  expect_bits(a.workload.pareto_shape, b.workload.pareto_shape, "workload.pareto_shape");
  expect_bits(a.workload.max_size_pkts, b.workload.max_size_pkts, "workload.max_size_pkts");
  expect_bits(a.workload.min_size_pkts, b.workload.min_size_pkts, "workload.min_size_pkts");
  expect_bits(a.workload.tfrc_fraction, b.workload.tfrc_fraction, "workload.tfrc_fraction");
  EXPECT_EQ(a.workload.controller, b.workload.controller);
  EXPECT_EQ(a.workload.max_concurrent, b.workload.max_concurrent);
  expect_bits(a.workload.session_fraction, b.workload.session_fraction,
              "workload.session_fraction");
  expect_bits(a.workload.session_transfers_mean, b.workload.session_transfers_mean,
              "workload.session_transfers_mean");
  expect_bits(a.workload.session_think_s, b.workload.session_think_s,
              "workload.session_think_s");
}

// Layout tripwire: if one of these sizes changes, a field was added to (or
// removed from) the serialized structs — update visit_scenario in
// scenario_io.cpp, the generator/comparator in THIS file, bump
// testbed::kResultCacheSalt, and then update the expected sizes. The
// constants are libstdc++/LP64 layout (what CI builds); other ABIs skip
// rather than chase a schema change that never happened.
TEST(ScenarioIo, SerializedStructLayoutsUnchanged) {
#if defined(__GLIBCXX__) && defined(__x86_64__)
  EXPECT_EQ(sizeof(ebrc::testbed::Scenario), 544u);
  EXPECT_EQ(sizeof(ebrc::net::RedParams), 56u);
  EXPECT_EQ(sizeof(ebrc::tfrc::TfrcConfig), 80u);
  EXPECT_EQ(sizeof(ebrc::tcp::TcpConfig), 64u);
  EXPECT_EQ(sizeof(ebrc::workload::WorkloadConfig), 184u);
#else
  GTEST_SKIP() << "layout constants recorded for libstdc++ on x86-64";
#endif
}

TEST(ScenarioIo, TomlRoundTripIsLosslessAndFingerprintStable) {
  Splitmix g{2002};
  for (int i = 0; i < 200; ++i) {
    const Scenario s = random_scenario(g);
    const Scenario back = ebrc::testbed::scenario_from_toml(ebrc::testbed::scenario_to_toml(s));
    expect_identical(s, back);
    EXPECT_EQ(ebrc::testbed::fingerprint(s), ebrc::testbed::fingerprint(back));
  }
}

TEST(ScenarioIo, JsonRoundTripIsLosslessAndFingerprintStable) {
  Splitmix g{77};
  for (int i = 0; i < 200; ++i) {
    const Scenario s = random_scenario(g);
    const Scenario back = ebrc::testbed::scenario_from_json(ebrc::testbed::scenario_to_json(s));
    expect_identical(s, back);
    EXPECT_EQ(ebrc::testbed::fingerprint(s), ebrc::testbed::fingerprint(back));
  }
}

TEST(ScenarioIo, CrossFormatAgreement) {
  // TOML and JSON must describe the same scenario: through either format the
  // parse lands on the identical Scenario and fingerprint.
  Splitmix g{31337};
  for (int i = 0; i < 50; ++i) {
    const Scenario s = random_scenario(g);
    const Scenario via_toml =
        ebrc::testbed::scenario_from_toml(ebrc::testbed::scenario_to_toml(s));
    const Scenario via_json =
        ebrc::testbed::scenario_from_json(ebrc::testbed::scenario_to_json(s));
    expect_identical(via_toml, via_json);
  }
}

TEST(ScenarioIo, FingerprintIgnoresSeedOnly) {
  Splitmix g{5};
  Scenario s = random_scenario(g);
  const std::uint64_t fp = ebrc::testbed::fingerprint(s);
  s.seed ^= 0xDEADBEEFull;
  EXPECT_EQ(ebrc::testbed::fingerprint(s), fp);
}

TEST(ScenarioIo, FingerprintReactsToEveryField) {
  // One mutator per serialized field; each must move the fingerprint. A
  // mutator that does NOT move it means the field fell out of the visitor —
  // its cache entries would survive a change they must invalidate.
  using Mutator = std::function<void(Scenario&)>;
  const std::vector<std::pair<const char*, Mutator>> mutators = {
      {"name", [](Scenario& s) { s.name += "x"; }},
      {"bottleneck_bps", [](Scenario& s) { s.bottleneck_bps += 1.0; }},
      {"base_rtt_s", [](Scenario& s) { s.base_rtt_s += 0.001; }},
      {"queue",
       [](Scenario& s) {
         s.queue = s.queue == ebrc::testbed::QueueKind::kRed
                       ? ebrc::testbed::QueueKind::kDropTail
                       : ebrc::testbed::QueueKind::kRed;
       }},
      {"droptail_buffer", [](Scenario& s) { s.droptail_buffer += 1; }},
      {"n_tfrc", [](Scenario& s) { s.n_tfrc += 1; }},
      {"n_tcp", [](Scenario& s) { s.n_tcp += 1; }},
      {"n_poisson", [](Scenario& s) { s.n_poisson += 1; }},
      {"poisson_rate_pps", [](Scenario& s) { s.poisson_rate_pps += 1.0; }},
      {"n_onoff", [](Scenario& s) { s.n_onoff += 1; }},
      {"onoff_peak_pps", [](Scenario& s) { s.onoff_peak_pps += 1.0; }},
      {"onoff_mean_on_s", [](Scenario& s) { s.onoff_mean_on_s += 1.0; }},
      {"onoff_mean_off_s", [](Scenario& s) { s.onoff_mean_off_s += 1.0; }},
      {"duration_s", [](Scenario& s) { s.duration_s += 1.0; }},
      {"warmup_s", [](Scenario& s) { s.warmup_s += 1.0; }},
      {"rtt_spread", [](Scenario& s) { s.rtt_spread += 0.01; }},
      {"red presence", [](Scenario& s) { s.red.reset(); }},
      {"red.buffer_packets", [](Scenario& s) { s.red->buffer_packets += 1; }},
      {"red.min_th", [](Scenario& s) { s.red->min_th += 1.0; }},
      {"red.max_th", [](Scenario& s) { s.red->max_th += 1.0; }},
      {"red.max_p", [](Scenario& s) { s.red->max_p += 0.01; }},
      {"red.weight", [](Scenario& s) { s.red->weight += 0.001; }},
      {"red.gentle", [](Scenario& s) { s.red->gentle = !s.red->gentle; }},
      {"red.mean_packet_time", [](Scenario& s) { s.red->mean_packet_time += 1e-5; }},
      {"tfrc.history_length", [](Scenario& s) { s.tfrc.history_length += 1; }},
      {"tfrc.comprehensive", [](Scenario& s) { s.tfrc.comprehensive = !s.tfrc.comprehensive; }},
      {"tfrc.history_discounting",
       [](Scenario& s) { s.tfrc.history_discounting = !s.tfrc.history_discounting; }},
      {"tfrc.receive_rate_cap",
       [](Scenario& s) { s.tfrc.receive_rate_cap = !s.tfrc.receive_rate_cap; }},
      {"tfrc.formula", [](Scenario& s) { s.tfrc.formula += "x"; }},
      {"tfrc.packet_bytes", [](Scenario& s) { s.tfrc.packet_bytes += 1.0; }},
      {"tfrc.initial_rate_pps", [](Scenario& s) { s.tfrc.initial_rate_pps += 1.0; }},
      {"tfrc.rtt_smoothing", [](Scenario& s) { s.tfrc.rtt_smoothing += 0.01; }},
      {"tfrc.min_rate_pps", [](Scenario& s) { s.tfrc.min_rate_pps += 0.1; }},
      {"tcp.packet_bytes", [](Scenario& s) { s.tcp.packet_bytes += 1.0; }},
      {"tcp.initial_cwnd", [](Scenario& s) { s.tcp.initial_cwnd += 1.0; }},
      {"tcp.initial_ssthresh", [](Scenario& s) { s.tcp.initial_ssthresh += 1.0; }},
      {"tcp.dupack_threshold", [](Scenario& s) { s.tcp.dupack_threshold += 1; }},
      {"tcp.ack_every", [](Scenario& s) { s.tcp.ack_every += 1; }},
      {"tcp.delayed_ack_timeout", [](Scenario& s) { s.tcp.delayed_ack_timeout += 0.01; }},
      {"tcp.min_rto", [](Scenario& s) { s.tcp.min_rto += 0.01; }},
      {"tcp.max_rto", [](Scenario& s) { s.tcp.max_rto += 1.0; }},
      {"tcp.max_cwnd", [](Scenario& s) { s.tcp.max_cwnd += 1.0; }},
      {"workload.arrival_rate_per_s",
       [](Scenario& s) { s.workload.arrival_rate_per_s += 1.0; }},
      {"workload.interarrival", [](Scenario& s) { s.workload.interarrival = "pareto"; }},
      {"workload.interarrival_shape",
       [](Scenario& s) { s.workload.interarrival_shape += 0.1; }},
      {"workload.size_dist", [](Scenario& s) { s.workload.size_dist = "pareto"; }},
      {"workload.mean_size_pkts", [](Scenario& s) { s.workload.mean_size_pkts += 1.0; }},
      {"workload.pareto_shape", [](Scenario& s) { s.workload.pareto_shape += 0.1; }},
      {"workload.max_size_pkts", [](Scenario& s) { s.workload.max_size_pkts += 1.0; }},
      {"workload.min_size_pkts", [](Scenario& s) { s.workload.min_size_pkts += 1.0; }},
      {"workload.tfrc_fraction", [](Scenario& s) { s.workload.tfrc_fraction += 0.1; }},
      {"workload.controller", [](Scenario& s) { s.workload.controller = "delay_aimd"; }},
      {"workload.max_concurrent", [](Scenario& s) { s.workload.max_concurrent += 1; }},
      {"workload.session_fraction", [](Scenario& s) { s.workload.session_fraction += 0.1; }},
      {"workload.session_transfers_mean",
       [](Scenario& s) { s.workload.session_transfers_mean += 1.0; }},
      {"workload.session_think_s", [](Scenario& s) { s.workload.session_think_s += 0.1; }},
  };

  const Scenario base = ebrc::testbed::ns2_scenario(2, 3, 8, /*seed=*/9);
  ASSERT_FALSE(base.red.has_value());
  for (const auto& [what, mutate] : mutators) {
    Scenario red_base = base;
    red_base.red.emplace();  // red.* mutators need an engaged optional
    // workload.* mutators need an ENABLED workload (a default block is
    // deliberately invisible to the fingerprint).
    red_base.workload.arrival_rate_per_s = 3.0;
    Scenario mutated = red_base;
    mutate(mutated);
    EXPECT_NE(ebrc::testbed::fingerprint(mutated), ebrc::testbed::fingerprint(red_base))
        << "fingerprint blind to field: " << what;
  }
  // And engaging the optional at all must move it too.
  Scenario engaged = base;
  engaged.red.emplace();
  EXPECT_NE(ebrc::testbed::fingerprint(engaged), ebrc::testbed::fingerprint(base));
  // Same for turning the workload on at all.
  Scenario churny = base;
  churny.workload.arrival_rate_per_s = 3.0;
  EXPECT_NE(ebrc::testbed::fingerprint(churny), ebrc::testbed::fingerprint(base));
}

// Back-compat contract of the workload extension: scenario files written
// before the workload block existed must parse to a default (disabled)
// workload, serialize WITHOUT a workload table, and keep the exact
// fingerprints the pre-workload code computed. The golden values below were
// recorded from the PR-4 tree (commit 6048f06) before src/workload/ landed —
// if one moves, cached results of every non-churn sweep are being
// invalidated by a feature they do not use.
TEST(ScenarioIo, DefaultWorkloadKeepsPreWorkloadFingerprints) {
  EXPECT_EQ(ebrc::testbed::fingerprint(Scenario{}), 0x1c62fb1dd35729fdull);
  EXPECT_EQ(ebrc::testbed::fingerprint(ebrc::testbed::ns2_scenario(2, 3, 8, /*seed=*/9)),
            0x69b2de4b51b5ebf8ull);
  EXPECT_EQ(ebrc::testbed::fingerprint(
                ebrc::testbed::lab_scenario(ebrc::testbed::QueueKind::kRed, 100, 2, 11)),
            0x33fe1a161b9dd1e5ull);
}

TEST(ScenarioIo, DefaultWorkloadIsElidedFromDocuments) {
  const Scenario plain = ebrc::testbed::ns2_scenario(1, 1, 8, 1);
  EXPECT_EQ(ebrc::testbed::scenario_to_toml(plain).find("[workload]"), std::string::npos);
  // A pre-workload document (no workload key) parses to the default config.
  const Scenario parsed = ebrc::testbed::scenario_from_toml("n_tfrc = 2\n[tfrc]\n"
                                                            "history_length = 4\n");
  EXPECT_EQ(parsed.workload, ebrc::workload::WorkloadConfig{});
  // An enabled workload round-trips through a visible [workload] table.
  Scenario churn = plain;
  churn.workload.arrival_rate_per_s = 12.5;
  churn.workload.size_dist = "pareto";
  const std::string toml = ebrc::testbed::scenario_to_toml(churn);
  EXPECT_NE(toml.find("[workload]"), std::string::npos);
  EXPECT_NE(toml.find("arrival_rate_per_s"), std::string::npos);
  expect_identical(churn, ebrc::testbed::scenario_from_toml(toml));
}

// Back-compat contract of the controller field (PR 9): an enabled workload
// with the DEFAULT controller ("" = the tfrc_fraction mix) must serialize
// without a controller key and hash exactly as it did before the field
// existed — pre-zoo churn scenario files and their cache fingerprints stay
// valid. Only a non-default controller becomes visible.
TEST(ScenarioIo, DefaultControllerIsElidedAndFingerprintInvisible) {
  Scenario churn = ebrc::testbed::churn_scenario(0.8, 0.5, /*seed=*/7);
  ASSERT_EQ(churn.workload.controller, "");
  const std::string toml = ebrc::testbed::scenario_to_toml(churn);
  EXPECT_NE(toml.find("[workload]"), std::string::npos);
  EXPECT_EQ(toml.find("controller"), std::string::npos);
  // A pre-zoo document (workload table, no controller key) parses to the
  // default and round-trips onto the identical fingerprint.
  const Scenario parsed = ebrc::testbed::scenario_from_toml(toml);
  EXPECT_EQ(parsed.workload.controller, "");
  EXPECT_EQ(ebrc::testbed::fingerprint(parsed), ebrc::testbed::fingerprint(churn));

  // A pinned controller is visible, lossless, and moves the fingerprint —
  // one cache cell per controller class.
  Scenario pinned = churn;
  pinned.workload.controller = "delay_aimd";
  const std::string pinned_toml = ebrc::testbed::scenario_to_toml(pinned);
  EXPECT_NE(pinned_toml.find("controller = \"delay_aimd\""), std::string::npos);
  expect_identical(pinned, ebrc::testbed::scenario_from_toml(pinned_toml));
  EXPECT_NE(ebrc::testbed::fingerprint(pinned), ebrc::testbed::fingerprint(churn));
  // Every zoo member lands on its own fingerprint.
  std::vector<std::uint64_t> fps;
  for (const char* ctrl : {"", "tfrc", "tcp", "delay_aimd", "rcp"}) {
    Scenario s = churn;
    s.workload.controller = ctrl;
    fps.push_back(ebrc::testbed::fingerprint(s));
  }
  for (std::size_t i = 0; i < fps.size(); ++i) {
    for (std::size_t j = i + 1; j < fps.size(); ++j) EXPECT_NE(fps[i], fps[j]);
  }
}

TEST(ScenarioIo, UnknownWorkloadKeysThrowNamingTheField) {
  try {
    (void)ebrc::testbed::scenario_from_toml("[workload]\narrival_rate = 3\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("workload.arrival_rate"), std::string::npos);
  }
}

TEST(ScenarioIo, MissingKeysKeepDefaults) {
  const Scenario s = ebrc::testbed::scenario_from_toml("n_tfrc = 7\n");
  const Scenario d;
  EXPECT_EQ(s.n_tfrc, 7);
  EXPECT_EQ(s.n_tcp, d.n_tcp);
  EXPECT_EQ(s.name, d.name);
  EXPECT_DOUBLE_EQ(s.bottleneck_bps, d.bottleneck_bps);
  EXPECT_EQ(s.tfrc.history_length, d.tfrc.history_length);
}

TEST(ScenarioIo, UnknownKeysThrowNamingTheField) {
  try {
    (void)ebrc::testbed::scenario_from_toml("n_tfrcc = 7\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("n_tfrcc"), std::string::npos);
  }
  try {
    (void)ebrc::testbed::scenario_from_toml("[tfrc]\nhistory_len = 8\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tfrc.history_len"), std::string::npos);
  }
}

TEST(ScenarioIo, TypeAndRangeMismatchesThrow) {
  EXPECT_THROW((void)ebrc::testbed::scenario_from_toml("name = 5\n"), std::invalid_argument);
  EXPECT_THROW((void)ebrc::testbed::scenario_from_toml("n_tfrc = \"many\"\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ebrc::testbed::scenario_from_toml("n_tfrc = 99999999999999\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ebrc::testbed::scenario_from_toml("droptail_buffer = -3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ebrc::testbed::scenario_from_toml("queue = \"fifo\"\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ebrc::testbed::scenario_from_json("{\"red\": 5}"), std::invalid_argument);
}

TEST(ScenarioIo, SeedSurvivesFullUint64Range) {
  Scenario s;
  s.seed = ~std::uint64_t{0};
  const Scenario t = ebrc::testbed::scenario_from_toml(ebrc::testbed::scenario_to_toml(s));
  EXPECT_EQ(t.seed, ~std::uint64_t{0});
  const Scenario j = ebrc::testbed::scenario_from_json(ebrc::testbed::scenario_to_json(s));
  EXPECT_EQ(j.seed, ~std::uint64_t{0});
}

TEST(ScenarioIo, FileRoundTripDispatchesOnExtension) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ebrc_scenario_io_test";
  fs::create_directories(dir);
  Splitmix g{404};
  const Scenario s = random_scenario(g);
  for (const char* name : {"s.toml", "s.json"}) {
    const fs::path p = dir / name;
    ebrc::testbed::save_scenario(s, p);
    expect_identical(s, ebrc::testbed::load_scenario(p));
  }
  EXPECT_THROW(ebrc::testbed::save_scenario(s, dir / "s.yaml"), std::invalid_argument);
  EXPECT_THROW((void)ebrc::testbed::load_scenario(dir / "missing.toml"), std::runtime_error);
  // An unknown extension (the --scenario=FILE path) names the supported
  // formats instead of guessing a parser.
  {
    std::ofstream(dir / "s.ya_ml") << "n_tfrc = 1\n";
    try {
      (void)ebrc::testbed::load_scenario(dir / "s.ya_ml");
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(".toml"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(".json"), std::string::npos);
    }
  }
  fs::remove_all(dir);
}

TEST(ScenarioIo, QueueKindNamesRoundTrip) {
  using ebrc::testbed::QueueKind;
  EXPECT_EQ(ebrc::testbed::queue_kind_from(
                ebrc::testbed::queue_kind_name(QueueKind::kDropTail)),
            QueueKind::kDropTail);
  EXPECT_EQ(ebrc::testbed::queue_kind_from(ebrc::testbed::queue_kind_name(QueueKind::kRed)),
            QueueKind::kRed);
  EXPECT_THROW((void)ebrc::testbed::queue_kind_from("codel"), std::invalid_argument);
}

TEST(ScenarioIo, BuiltinScenariosSerializeReadably) {
  // The practical use: every built-in setup must survive the file format,
  // and the TOML must carry the section structure a human would edit.
  const Scenario s = ebrc::testbed::lab_scenario(ebrc::testbed::QueueKind::kRed, 100, 2, 11);
  const std::string toml = ebrc::testbed::scenario_to_toml(s);
  EXPECT_NE(toml.find("[red]"), std::string::npos);
  EXPECT_NE(toml.find("[tfrc]"), std::string::npos);
  EXPECT_NE(toml.find("[tcp]"), std::string::npos);
  EXPECT_NE(toml.find("queue = \"red\""), std::string::npos);
  expect_identical(s, ebrc::testbed::scenario_from_toml(toml));
}

}  // namespace
