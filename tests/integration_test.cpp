// Cross-layer integration: the analytic core and the packet-level protocol
// stack must tell the same story when pointed at the same physics.
#include <gtest/gtest.h>

#include <memory>

#include "core/analyzer.hpp"
#include "core/conditions.hpp"
#include "core/estimator.hpp"
#include "core/weights.hpp"
#include "loss/droppers.hpp"
#include "model/throughput_function.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/variable_packet_sender.hpp"

namespace {

using namespace ebrc;

TEST(Integration, PacketAudioMatchesAnalyticAudioModel) {
  // The same (formula, p, L) through two completely different code paths:
  // core::run_audio_control (analytic Monte Carlo, no simulator) and the
  // event-driven VariablePacketSender through a BernoulliDropper.
  const double p = 0.15;
  auto f = model::make_throughput_function("pftk-simplified", 1.0);

  const auto analytic = core::run_audio_control(*f, 50.0, p, core::tfrc_weights(4),
                                                /*comprehensive=*/false, 3,
                                                {.events = 300000, .warmup = 200});

  sim::Simulator sim;
  loss::BernoulliDropper channel(p, 11);
  tfrc::VariablePacketConfig cfg;
  cfg.packet_rate_pps = 50.0;
  cfg.history_length = 4;
  cfg.comprehensive = false;
  tfrc::VariablePacketSender audio(sim, channel, f, cfg);
  audio.start(0.0);
  sim.run_until(500.0);
  audio.reset_measurement();
  sim.run_until(8000.0);

  EXPECT_NEAR(audio.loss_event_rate(), analytic.p, 0.01);
  EXPECT_NEAR(audio.normalized_throughput(), analytic.normalized, 0.05);
  EXPECT_NEAR(audio.cv_thetahat_sq(), analytic.cv_thetahat * analytic.cv_thetahat, 0.05);
}

TEST(Integration, LossHistoryAgreesWithCoreEstimatorOnATrace) {
  // Feeding identical interval sequences, the receiver-side LossHistory and
  // the core MovingAverageEstimator must report the same closed-history
  // average, and the same open-interval behavior.
  const auto weights = core::tfrc_weights(8);
  tfrc::LossHistory hist(weights, /*comprehensive=*/true);
  core::MovingAverageEstimator est(weights);

  const double rtt = 0.05;
  double t = 0.0;
  const int interval_lengths[] = {12, 30, 9, 44, 17, 25, 33, 8, 21, 40};
  bool seeded = false;
  for (int len : interval_lengths) {
    // len - 1 arrivals, then one packet with a single missing seq before it
    // closes an interval of exactly `len` sequence numbers.
    for (int k = 0; k < len - 2; ++k) hist.on_packet(0, t += 0.01, rtt);
    if (!seeded) {
      hist.seed(static_cast<double>(len));
      est.seed(static_cast<double>(len));
      seeded = true;
      hist.on_packet(1, t += rtt + 0.01, rtt);
      continue;
    }
    hist.on_packet(1, t += rtt + 0.01, rtt);
    est.push(static_cast<double>(len));
  }
  EXPECT_NEAR(hist.estimator().value(), est.value(), 1e-9);
  // Open-interval growth matches value_with_open at the same open count.
  for (int k = 0; k < 200; ++k) hist.on_packet(0, t += 0.01, rtt);
  EXPECT_NEAR(hist.mean_interval(), est.value_with_open(hist.open_interval()), 1e-9);
}

TEST(Integration, ConservativenessSurvivesTheFullStack) {
  // Claim 1 at the highest integration level: on the paper's RED dumbbell,
  // every TFRC flow's normalized throughput stays at or below ~1 and the
  // Theorem-1 bound at its measured covariance is respected.
  auto s = testbed::ns2_scenario(3, 3, 8, 21);
  s.duration_s = 150.0;
  s.warmup_s = 30.0;
  const auto r = testbed::run_experiment(s);
  int checked = 0;
  for (const auto* f : r.of_kind("tfrc")) {
    if (f->p <= 0 || f->normalized <= 0 || f->loss_events < 40) continue;
    EXPECT_LT(f->normalized, 1.15) << "flow " << f->flow_id;
    const auto fn = model::make_throughput_function("pftk", f->mean_rtt_s);
    const double bound = core::theorem1_bound(*fn, f->p, f->cov_theta_thetahat);
    EXPECT_LT(f->throughput_pps, bound * 1.3) << "flow " << f->flow_id;
    ++checked;
  }
  EXPECT_GE(checked, 2);
}

TEST(Integration, BreakdownRatiosRecomputeFromAggregates) {
  // The reported breakdown must be exactly the ratios of the reported
  // aggregates (no hidden averaging asymmetry in the harness).
  auto s = testbed::ns2_scenario(2, 2, 8, 5);
  s.duration_s = 120.0;
  s.warmup_s = 30.0;
  const auto r = testbed::run_experiment(s);
  ASSERT_GT(r.tfrc_p, 0.0);
  ASSERT_GT(r.tcp_p, 0.0);
  EXPECT_NEAR(r.breakdown.loss_rate_ratio, r.tcp_p / r.tfrc_p, 1e-12);
  EXPECT_NEAR(r.breakdown.rtt_ratio, r.tcp_rtt / r.tfrc_rtt, 1e-12);
  EXPECT_NEAR(r.breakdown.friendliness, r.tfrc_throughput / r.tcp_throughput, 1e-12);
  // Per-flow normalized values average to the reported conservativeness.
  double sum = 0.0;
  int n = 0;
  for (const auto* f : r.of_kind("tfrc")) {
    if (f->normalized > 0) {
      sum += f->normalized;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(r.breakdown.conservativeness, sum / n, 1e-12);
}

}  // namespace
