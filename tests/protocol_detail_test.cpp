// Detail-level behavior of the protocol substrate: RED's averaging and drop
// spreading, TCP's timer/backoff machinery, and the TFRC feedback loop.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "net/dumbbell.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "tfrc/tfrc_connection.hpp"

namespace {

using namespace ebrc;
using net::Packet;

TEST(RedDetail, EwmaTracksOccupancySlowly) {
  net::RedParams prm;
  prm.buffer_packets = 1000;
  prm.min_th = 400;  // keep drops out of the picture
  prm.max_th = 900;
  prm.weight = 0.002;
  net::Queue q = net::Queue::red(prm, 1);
  Packet p, out;
  // Fill 100 packets back-to-back: the EWMA must lag far behind.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.enqueue(p, i * 1e-4));
  EXPECT_EQ(q.packets(0.01), 100u);
  EXPECT_LT(q.average_queue(), 15.0);
  // Keep the instantaneous queue at 100 long enough and the average closes in.
  double t = 0.01;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(q.enqueue(p, t += 1e-4));
    (void)q.dequeue(out, t);
  }
  EXPECT_GT(q.average_queue(), 80.0);
}

TEST(RedDetail, IdlePeriodDecaysAverage) {
  net::RedParams prm;
  prm.buffer_packets = 200;
  prm.min_th = 150;
  prm.max_th = 190;
  prm.weight = 0.01;
  prm.mean_packet_time = 1e-3;
  net::Queue q = net::Queue::red(prm, 1);
  Packet p, out;
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(q.enqueue(p, t += 1e-4));
    if (q.packets(t) > 60) (void)q.dequeue(out, t);
  }
  const double avg_busy = q.average_queue();
  ASSERT_GT(avg_busy, 30.0);
  // Drain completely, wait 2000 packet-times idle, then touch the queue.
  while (q.packets(t) > 0) (void)q.dequeue(out, t);
  ASSERT_TRUE(q.enqueue(p, t + 2.0));
  EXPECT_LT(q.average_queue(), 0.1 * avg_busy);
}

TEST(RedDetail, CountSpreadingShortensDropGaps) {
  // With the count mechanism, the gap between drops in the probabilistic
  // region is roughly uniform rather than geometric: its coefficient of
  // variation should be well below 1.
  net::RedParams prm;
  prm.buffer_packets = 4000;
  prm.min_th = 10;
  prm.max_th = 3000;
  prm.max_p = 0.05;
  prm.weight = 1.0;
  net::Queue q = net::Queue::red(prm, 42);
  Packet p, out;
  double t = 0.0;
  std::vector<int> gaps;
  int gap = 0;
  for (int i = 0; i < 200000; ++i) {
    t += 1e-5;
    if (q.enqueue(p, t)) {
      ++gap;
      if (q.packets(t) > 100) (void)q.dequeue(out, t);
    } else {
      gaps.push_back(gap);
      gap = 0;
    }
  }
  ASSERT_GT(gaps.size(), 200u);
  double mean = 0;
  for (int g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0;
  for (int g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size() - 1);
  const double cv = std::sqrt(var) / mean;
  EXPECT_LT(cv, 0.75) << "drop gaps should be spread (uniform-ish), not geometric";
}

struct TcpWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Dumbbell> net;
  std::unique_ptr<tcp::TcpConnection> conn;

  TcpWorld(double rate_bps, std::size_t buffer, double rtt_s) {
    net = std::make_unique<net::Dumbbell>(
        sim, net::Queue::drop_tail(buffer), rate_bps, 0.001);
    const int id = net->add_flow(rtt_s / 2.0 - 0.001, rtt_s / 2.0);
    conn = std::make_unique<tcp::TcpConnection>(*net, id, rtt_s);
  }
};

TEST(TcpDetail, SlowStartDoublesPerRtt) {
  TcpWorld w(100e6, 10000, 0.100);  // fat pipe: no losses for a while
  w.conn->start(0.0);
  w.sim.run_until(0.45);  // ~4 RTTs
  // cwnd starts at 2 and roughly doubles per RTT in slow start.
  EXPECT_GT(w.conn->cwnd(), 12.0);
  EXPECT_LT(w.conn->cwnd(), 80.0);
  EXPECT_EQ(w.conn->timeouts(), 0u);
}

TEST(TcpDetail, NoSpuriousTimeoutsOnCleanPath) {
  TcpWorld w(8e6, 4000, 0.050);
  w.conn->start(0.0);
  w.sim.run_until(30.0);
  EXPECT_EQ(w.conn->timeouts(), 0u);
  EXPECT_EQ(w.conn->fast_retransmits(), 0u);
  // Everything sent is either delivered or still in flight (<= cwnd): no
  // retransmissions were wasted.
  EXPECT_LE(static_cast<double>(w.conn->sent() - w.conn->delivered()),
            w.conn->cwnd() + 2.0);
}

TEST(TcpDetail, StopCancelsTimers) {
  TcpWorld w(1e6, 4, 0.050);
  w.conn->start(0.0);
  w.sim.run_until(10.0);
  w.conn->stop();
  const auto executed = w.sim.events_executed();
  w.sim.run_until(100.0);
  // Only residual in-flight deliveries may fire; no sustained activity.
  EXPECT_LT(w.sim.events_executed() - executed, 500u);
}

TEST(TcpDetail, DelayedAckRatio) {
  TcpWorld w(8e6, 4000, 0.050);
  w.conn->start(0.0);
  w.sim.run_until(20.0);
  // With b = 2, roughly one ack per two packets: the receiver's deliveries
  // should be about twice the acks... measured indirectly: goodput high and
  // cwnd growth slower than per-packet-ack slow start would give.
  EXPECT_GT(w.conn->delivered(), 10000u);
}

TEST(TfrcDetail, FeedbackDrivesRateWithinTwoReceiveRates) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(60), 4e6, 0.001);
  const int id = net.add_flow(0.024, 0.025);
  tfrc::TfrcConnection conn(net, id, 0.050);
  conn.start(0.0);
  sim.run_until(60.0);
  // The standard cap: the send rate never exceeds twice what the receiver
  // reports, which on a 500 pkt/s link bounds it near 1000 pkt/s.
  EXPECT_LT(conn.rate(), 1100.0);
  EXPECT_GT(conn.rate(), 50.0);
}

TEST(TfrcDetail, HistoryDiscountingSpeedsRecovery) {
  tfrc::TfrcConfig plain_cfg, disc_cfg;
  plain_cfg.history_discounting = false;
  disc_cfg.history_discounting = true;

  const auto run = [](const tfrc::TfrcConfig& cfg) {
    sim::Simulator sim;
    net::Dumbbell net(sim, net::Queue::drop_tail(25), 2e6, 0.001);
    const int id = net.add_flow(0.024, 0.025);
    tfrc::TfrcConnection conn(net, id, 0.050, cfg);
    conn.start(0.0);
    sim.run_until(120.0);
    return conn.delivered();
  };
  const auto d_plain = run(plain_cfg);
  const auto d_disc = run(disc_cfg);
  // Discounting forgets stale loss history faster; it should never do much
  // worse, and typically does at least as well.
  EXPECT_GT(static_cast<double>(d_disc), 0.9 * static_cast<double>(d_plain));
}

}  // namespace
