#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.hpp"
#include "core/weights.hpp"
#include "loss/loss_process.hpp"
#include "model/throughput_function.hpp"

namespace {

using namespace ebrc::core;
using ebrc::loss::DeterministicProcess;
using ebrc::loss::ShiftedExponentialProcess;

constexpr double kRtt = 1.0;

TEST(BasicControl, DeterministicProcessGivesExactlyF) {
  // With theta_n == m the estimator is constant: X == f(1/m) == f(p).
  auto f = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  DeterministicProcess proc(50.0);
  const auto r = run_basic_control(*f, proc, tfrc_weights(8), {.events = 1000, .warmup = 10});
  EXPECT_NEAR(r.normalized, 1.0, 1e-9);
  EXPECT_NEAR(r.throughput, f->rate(0.02), 1e-9);
  EXPECT_NEAR(r.p, 0.02, 1e-12);
  EXPECT_DOUBLE_EQ(r.cov_theta_thetahat, 0.0);
  EXPECT_DOUBLE_EQ(r.cv_thetahat, 0.0);
}

TEST(BasicControl, EstimatorIsUnbiased) {
  // Assumption (E): E[hat-theta] == E[theta] == 1/p.
  auto f = ebrc::model::make_throughput_function("sqrt", kRtt);
  ShiftedExponentialProcess proc(0.05, 0.9, 21);
  const auto r = run_basic_control(*f, proc, tfrc_weights(8), {.events = 400000, .warmup = 100});
  EXPECT_NEAR(r.mean_thetahat / r.mean_theta, 1.0, 0.01);
}

TEST(BasicControl, MonteCarloMatchesQuadratureForL1) {
  // For L = 1 and i.i.d. intervals, Prop. 1 reduces to x̄/f(p) = g(m)/E[g],
  // computable by quadrature — an independent check of the MC engine.
  for (const char* name : {"sqrt", "pftk-simplified"}) {
    auto f = ebrc::model::make_throughput_function(name, kRtt);
    const double p = 0.1, cv = 0.7;
    ShiftedExponentialProcess proc(p, cv, 99);
    const auto mc =
        run_basic_control(*f, proc, tfrc_weights(1), {.events = 2000000, .warmup = 100});
    const double quad = quadrature_normalized_L1(*f, p, cv);
    EXPECT_NEAR(mc.normalized, quad, 0.01) << name;
  }
}

TEST(BasicControl, CovXSNegativeForIidDrivingProcess) {
  // S_n = theta_n / X_n with theta independent of X_n: larger rate at the
  // event means proportionally shorter interval in real time, so (C2) holds.
  auto f = ebrc::model::make_throughput_function("sqrt", kRtt);
  ShiftedExponentialProcess proc(0.05, 0.9, 5);
  const auto r = run_basic_control(*f, proc, tfrc_weights(4), {.events = 300000, .warmup = 100});
  EXPECT_LT(r.cov_x_s, 0.0);
}

TEST(Proposition3, MatchesComprehensiveSimulationExactly) {
  // S_n = theta_n/f(1/hat) - V_n 1{hat_{n+1} > hat_n} is an identity, so the
  // Prop-3 evaluator and the closed-form comprehensive simulator must agree
  // to floating-point accuracy on the same sample path (same seed).
  for (const char* name : {"sqrt", "pftk-simplified"}) {
    auto f = ebrc::model::make_throughput_function(name, kRtt);
    ShiftedExponentialProcess proc_a(0.05, 0.9, 31);
    ShiftedExponentialProcess proc_b(0.05, 0.9, 31);
    const RunConfig cfg{.events = 50000, .warmup = 50};
    const auto sim = run_comprehensive_control(*f, proc_a, tfrc_weights(8), cfg);
    const auto p3 = run_proposition3(*f, proc_b, tfrc_weights(8), cfg);
    EXPECT_NEAR(sim.throughput, p3.throughput, 1e-9 * sim.throughput) << name;
  }
}

TEST(Proposition3, RequiresSimplifiedFamily) {
  auto f = ebrc::model::make_throughput_function("pftk", kRtt);
  ShiftedExponentialProcess proc(0.05, 0.9, 31);
  EXPECT_THROW((void)run_proposition3(*f, proc, tfrc_weights(8), {}), std::invalid_argument);
}

TEST(Proposition2, ComprehensiveAtLeastBasic) {
  // Proposition 2: the comprehensive control's throughput is lower-bounded
  // by the basic control's expression, for every formula incl. the
  // quadrature fallback path (PFTK-standard).
  for (const char* name : {"sqrt", "pftk-simplified", "pftk"}) {
    auto f = ebrc::model::make_throughput_function(name, kRtt);
    ShiftedExponentialProcess pa(0.08, 0.9, 77);
    ShiftedExponentialProcess pb(0.08, 0.9, 77);
    const RunConfig cfg{.events = 100000, .warmup = 100};
    const auto basic = run_basic_control(*f, pa, tfrc_weights(8), cfg);
    const auto comp = run_comprehensive_control(*f, pb, tfrc_weights(8), cfg);
    EXPECT_GE(comp.throughput, basic.throughput * (1 - 1e-9)) << name;
  }
}

TEST(ComprehensiveControl, ClosedFormMatchesQuadratureFallback) {
  // PFTK-standard has our piecewise closed-form antiderivative; a wrapper
  // hiding it forces the quadrature path. Both must agree.
  class HideClosedForm final : public ebrc::model::ThroughputFunction {
   public:
    explicit HideClosedForm(std::shared_ptr<const ThroughputFunction> inner)
        : inner_(std::move(inner)) {}
    double rate(double p) const override { return inner_->rate(p); }
    std::string name() const override { return inner_->name() + "-no-closed-form"; }
    double rtt() const override { return inner_->rtt(); }

   private:
    std::shared_ptr<const ThroughputFunction> inner_;
  };

  auto f = ebrc::model::make_throughput_function("pftk", kRtt);
  HideClosedForm fq(f);
  ShiftedExponentialProcess pa(0.1, 0.9, 13);
  ShiftedExponentialProcess pb(0.1, 0.9, 13);
  const RunConfig cfg{.events = 20000, .warmup = 50};
  const auto exact = run_comprehensive_control(*f, pa, tfrc_weights(8), cfg);
  const auto quad = run_comprehensive_control(fq, pb, tfrc_weights(8), cfg);
  EXPECT_NEAR(exact.throughput, quad.throughput, 1e-6 * exact.throughput);
}

TEST(Claim1, MoreConvexMeansMoreConservative) {
  // Figure 3's headline: at the same (p, cv, L), PFTK-simplified (strongly
  // convex g) is more conservative than SQRT; and conservativeness grows
  // with p for PFTK.
  const double cv = 1.0 - 1.0 / 1000.0;
  auto fs = ebrc::model::make_throughput_function("sqrt", kRtt);
  auto fp = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  const RunConfig cfg{.events = 300000, .warmup = 100};

  ShiftedExponentialProcess p1(0.2, cv, 1);
  ShiftedExponentialProcess p2(0.2, cv, 1);
  const auto sqrt_02 = run_basic_control(*fs, p1, tfrc_weights(4), cfg);
  const auto pftk_02 = run_basic_control(*fp, p2, tfrc_weights(4), cfg);
  EXPECT_LT(pftk_02.normalized, sqrt_02.normalized);

  ShiftedExponentialProcess p3(0.02, cv, 1);
  const auto pftk_002 = run_basic_control(*fp, p3, tfrc_weights(4), cfg);
  EXPECT_LT(pftk_02.normalized, pftk_002.normalized);  // heavier loss, more conservative
}

TEST(Claim1, LargerWindowLessConservative) {
  // Larger L smooths the estimator -> less variability -> less conservative.
  const double cv = 1.0 - 1.0 / 1000.0;
  auto fp = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  const RunConfig cfg{.events = 300000, .warmup = 200};
  double prev = 0.0;
  for (std::size_t L : {1u, 4u, 16u}) {
    ShiftedExponentialProcess proc(0.1, cv, 55);
    const auto r = run_basic_control(*fp, proc, tfrc_weights(L), cfg);
    EXPECT_GT(r.normalized, prev) << "L=" << L;
    prev = r.normalized;
  }
}

TEST(Claim1, SqrtNormalizedThroughputInvariantInP) {
  // For SQRT and the scale-family density of Sec. V-A.1 the normalized
  // throughput does not depend on p (paper, Sec. V-B.1).
  const double cv = 1.0 - 1.0 / 1000.0;
  auto fs = ebrc::model::make_throughput_function("sqrt", kRtt);
  const RunConfig cfg{.events = 400000, .warmup = 200};
  ShiftedExponentialProcess pa(0.01, cv, 3);
  ShiftedExponentialProcess pb(0.35, cv, 3);
  const auto lo = run_basic_control(*fs, pa, tfrc_weights(4), cfg);
  const auto hi = run_basic_control(*fs, pb, tfrc_weights(4), cfg);
  EXPECT_NEAR(lo.normalized, hi.normalized, 0.015);
}

TEST(AudioControl, ConservativeForSqrtEverywhere) {
  // Claim 2, first bullet: f(1/x) concave (SQRT) + cov[X,S] ~ 0 ->
  // conservative, at every loss rate.
  auto fs = ebrc::model::make_throughput_function("sqrt", kRtt);
  for (double p : {0.02, 0.1, 0.25}) {
    const auto r = run_audio_control(*fs, 50.0, p, tfrc_weights(4), false, 7,
                                     {.events = 200000, .warmup = 100});
    EXPECT_LE(r.normalized, 1.005) << "p=" << p;
    EXPECT_NEAR(r.cov_x_s, 0.0, 0.05 * std::abs(r.mean_rate));  // (C2c) with equality
  }
}

TEST(AudioControl, NonConservativeForPftkHeavyLoss) {
  // Claim 2, second bullet (the Figure-6 shape): with PFTK and heavy loss
  // the estimator lives where f(1/x) is strictly convex -> non-conservative.
  auto fp = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  const auto heavy = run_audio_control(*fp, 50.0, 0.22, tfrc_weights(4), false, 7,
                                       {.events = 200000, .warmup = 100});
  EXPECT_GT(heavy.normalized, 1.02);
  // ... and conservative for light loss (concave region).
  const auto light = run_audio_control(*fp, 50.0, 0.01, tfrc_weights(4), false, 7,
                                       {.events = 200000, .warmup = 100});
  EXPECT_LE(light.normalized, 1.0);
}

TEST(AudioControl, ComprehensiveAtLeastBasic) {
  auto fp = ebrc::model::make_throughput_function("pftk-simplified", kRtt);
  const auto basic = run_audio_control(*fp, 50.0, 0.05, tfrc_weights(8), false, 3,
                                       {.events = 100000, .warmup = 100});
  const auto comp = run_audio_control(*fp, 50.0, 0.05, tfrc_weights(8), true, 3,
                                      {.events = 100000, .warmup = 100});
  EXPECT_GE(comp.mean_rate, basic.mean_rate * (1 - 1e-9));
}

TEST(Analyzer, Validation) {
  auto f = ebrc::model::make_throughput_function("sqrt", kRtt);
  ShiftedExponentialProcess proc(0.1, 0.5, 1);
  EXPECT_THROW((void)run_basic_control(*f, proc, tfrc_weights(4), {.events = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)run_audio_control(*f, 0.0, 0.1, tfrc_weights(4), false, 1, {}),
               std::invalid_argument);
  EXPECT_THROW((void)run_audio_control(*f, 10.0, 0.0, tfrc_weights(4), false, 1, {}),
               std::invalid_argument);
}

}  // namespace
