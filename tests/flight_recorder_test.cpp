// obs::FlightRecorder — the crash-surviving kernel-event ring:
//   * create/record/dump on a live simulator, oldest-first ring order,
//   * the MAP_SHARED contract: records written before an abort() are
//     readable from the file afterwards with no flush or handler,
//   * dump_to_text rejects missing/foreign/truncated files,
//   * end-to-end: an --isolate=process sweep with an injected crash leaves a
//     parseable flight_recorder.txt inside the cell's repro bundle.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "sim/simulator.hpp"
#include "testbed/batch.hpp"
#include "testbed/fault_injection.hpp"
#include "testbed/scenario.hpp"

namespace {

namespace fs = std::filesystem;

using ebrc::obs::FlightRecorder;
using ebrc::testbed::BatchRunner;
using ebrc::testbed::RunPolicy;
using ebrc::testbed::Scenario;
using ebrc::testbed::ShardSpec;
using ebrc::testbed::SweepReport;
namespace fault = ebrc::testbed::fault;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("ebrc_flight_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

struct FaultGuard {
  ~FaultGuard() { fault::disarm(); }
};

[[nodiscard]] std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(FlightRecorderTest, RecordsExecutedEventsAndDumpsOldestFirst) {
  TempDir dir;
  const std::string ring_path = (dir.path / "ring.flight").string();
  auto rec = FlightRecorder::create(ring_path, /*capacity=*/8);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->cursor(), 0u);

  ebrc::sim::Simulator sim;
  sim.set_kernel_ring(rec->ring());
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(0.5 * (i + 1), [&] { ++fired; });
  }
  sim.run_until(10.0);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(rec->cursor(), 5u);

  const std::string out_path = (dir.path / "dump.txt").string();
  ASSERT_TRUE(FlightRecorder::dump_to_text(ring_path, out_path));
  const std::string dump = read_file(out_path);
  EXPECT_NE(dump.find("flight-recorder v1"), std::string::npos);
  EXPECT_NE(dump.find("executed=5"), std::string::npos);
  EXPECT_NE(dump.find("kept=5"), std::string::npos);
  // Oldest first: the t=0.5 record precedes the t=2.5 one.
  const auto first = dump.find("t=0.500000000");
  const auto last = dump.find("t=2.500000000");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  EXPECT_LT(first, last);
}

TEST(FlightRecorderTest, RingOverwriteKeepsTheTail) {
  TempDir dir;
  const std::string ring_path = (dir.path / "ring.flight").string();
  auto rec = FlightRecorder::create(ring_path, /*capacity=*/4);
  ASSERT_NE(rec, nullptr);

  ebrc::sim::Simulator sim;
  sim.set_kernel_ring(rec->ring());
  for (int i = 0; i < 10; ++i) sim.schedule(1.0 * (i + 1), [] {});
  sim.run_until(20.0);
  EXPECT_EQ(rec->cursor(), 10u);

  const std::string out_path = (dir.path / "dump.txt").string();
  ASSERT_TRUE(FlightRecorder::dump_to_text(ring_path, out_path));
  const std::string dump = read_file(out_path);
  EXPECT_NE(dump.find("executed=10"), std::string::npos);
  EXPECT_NE(dump.find("kept=4"), std::string::npos);
  EXPECT_EQ(dump.find("t=6.000000000"), std::string::npos) << "overwritten";
  EXPECT_NE(dump.find("t=7.000000000"), std::string::npos);
  EXPECT_NE(dump.find("t=10.000000000"), std::string::npos);
}

TEST(FlightRecorderTest, DumpRejectsMissingAndForeignFiles) {
  TempDir dir;
  const std::string out_path = (dir.path / "dump.txt").string();
  EXPECT_FALSE(
      FlightRecorder::dump_to_text((dir.path / "nope.flight").string(), out_path));

  const fs::path foreign = dir.path / "foreign.flight";
  std::ofstream(foreign, std::ios::binary) << "this is not a flight ring";
  EXPECT_FALSE(FlightRecorder::dump_to_text(foreign.string(), out_path));
}

TEST(FlightRecorderTest, SurvivesAnAbortingChildProcess) {
  TempDir dir;
  const std::string ring_path = (dir.path / "child.flight").string();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // ---- child: record some events, then die without any cleanup ----
    auto rec = FlightRecorder::create(ring_path, /*capacity=*/16);
    if (rec == nullptr) ::_exit(2);
    ebrc::sim::Simulator sim;
    sim.set_kernel_ring(rec->ring());
    for (int i = 0; i < 6; ++i) sim.schedule(0.25 * (i + 1), [] {});
    sim.run_until(5.0);
    std::abort();  // MAP_SHARED pages must survive this
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  const std::string out_path = (dir.path / "dump.txt").string();
  ASSERT_TRUE(FlightRecorder::dump_to_text(ring_path, out_path));
  const std::string dump = read_file(out_path);
  EXPECT_NE(dump.find("executed=6"), std::string::npos);
  EXPECT_NE(dump.find("t=1.500000000"), std::string::npos);
}

// ---- end-to-end through the isolated sweep path ----------------------------

Scenario short_ns2(std::uint64_t seed) {
  auto s = ebrc::testbed::ns2_scenario(1, 1, 8, seed);
  s.duration_s = 4.0;
  s.warmup_s = 1.0;
  return s;
}

TEST(FlightRecorderTest, CrashedIsolatedCellBundleContainsAParseableDump) {
  FaultGuard guard;
  TempDir dir;
  const auto batch = ebrc::testbed::replicate(short_ns2(0), /*root_seed=*/99, /*reps=*/3);

  // Cell 1 crashes on every attempt; the others complete.
  fault::arm({{fault::Kind::kCrash, 1, fault::kEveryAttempt}});
  RunPolicy policy;
  policy.keep_going = true;
  policy.isolate = ebrc::testbed::IsolationMode::kProcess;
  policy.crash_dir = (dir.path / "crashes").string();
  policy.invocation = "flight_recorder_test";
  SweepReport rep;
  const BatchRunner runner(1);
  (void)runner.run(batch, nullptr, ShardSpec{}, &rep, policy);
  EXPECT_EQ(rep.crashed, 1u);

  const fs::path bundle = dir.path / "crashes" / "cell-1";
  ASSERT_TRUE(fs::exists(bundle / "scenario.toml"));
  ASSERT_TRUE(fs::exists(bundle / "flight_recorder.txt"))
      << "the repro bundle must carry the flight-recorder dump";
  const std::string dump = read_file(bundle / "flight_recorder.txt");
  EXPECT_NE(dump.find("flight-recorder v1"), std::string::npos);
  EXPECT_NE(dump.find("capacity="), std::string::npos);
  EXPECT_NE(dump.find("executed="), std::string::npos);

  // The temp ring files are cleaned up for crashed and healthy cells alike.
  std::size_t stray = 0;
  for (const auto& e : fs::directory_iterator(fs::temp_directory_path())) {
    const std::string name = e.path().filename().string();
    if (name.find("ebrc-cell-" + std::to_string(::getpid())) == 0) ++stray;
  }
  EXPECT_EQ(stray, 0u) << "no handoff/flight temp files left behind";
}

}  // namespace
