#include <gtest/gtest.h>

#include <numeric>

#include "core/estimator.hpp"
#include "core/rate_controller.hpp"
#include "core/weights.hpp"
#include "model/throughput_function.hpp"

namespace {

using namespace ebrc::core;

TEST(Weights, TfrcProfileL8MatchesRfc3448) {
  // Raw profile 1,1,1,1,.8,.6,.4,.2 normalized by 6.
  const auto w = tfrc_weights(8);
  ASSERT_EQ(w.size(), 8u);
  const double s = 6.0;
  const double expected[] = {1 / s, 1 / s, 1 / s, 1 / s, .8 / s, .6 / s, .4 / s, .2 / s};
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(w[i], expected[i], 1e-12) << "w[" << i << "]";
}

TEST(Weights, SumToOneForAllWindows) {
  for (std::size_t L : {1u, 2u, 3u, 4u, 8u, 16u, 32u}) {
    const auto w = tfrc_weights(L);
    EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12) << "L=" << L;
    EXPECT_NO_THROW(validate_weights(w));
    // Non-increasing profile.
    for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i], w[i - 1] + 1e-12);
  }
}

TEST(Weights, DegenerateWindows) {
  EXPECT_EQ(tfrc_weights(1), std::vector<double>{1.0});
  const auto w2 = tfrc_weights(2);
  EXPECT_NEAR(w2[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(w2[1], 1.0 / 3.0, 1e-12);
}

TEST(Weights, UniformAndGeometric) {
  const auto u = uniform_weights(4);
  for (double v : u) EXPECT_DOUBLE_EQ(v, 0.25);
  const auto g = geometric_weights(3, 0.5);
  EXPECT_NEAR(g[0], 4.0 / 7.0, 1e-12);
  EXPECT_NEAR(g[1], 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(g[2], 1.0 / 7.0, 1e-12);
}

TEST(Weights, ValidationRejectsBadVectors) {
  EXPECT_THROW(validate_weights({}), std::invalid_argument);
  EXPECT_THROW(validate_weights({0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(validate_weights({0.5, -0.1, 0.6}), std::invalid_argument);
  EXPECT_THROW(validate_weights({0.5, 0.4}), std::invalid_argument);  // sum != 1
  EXPECT_THROW(tfrc_weights(0), std::invalid_argument);
}

TEST(Estimator, MovingAverageValue) {
  MovingAverageEstimator e(tfrc_weights(2));  // weights {2/3, 1/3}
  e.push(30.0);
  e.push(60.0);  // newest
  // hat = 2/3*60 + 1/3*30 = 50.
  EXPECT_NEAR(e.value(), 50.0, 1e-12);
  e.push(90.0);  // 30 falls out
  EXPECT_NEAR(e.value(), 2.0 / 3.0 * 90 + 1.0 / 3.0 * 60, 1e-12);
}

TEST(Estimator, PrefixRenormalizationBeforeWarmup) {
  MovingAverageEstimator e(tfrc_weights(8));
  EXPECT_FALSE(e.warmed_up());
  e.push(100.0);
  EXPECT_NEAR(e.value(), 100.0, 1e-12);  // single sample, full mass on it
  e.push(50.0);
  // w1*50 + w2*100 over (w1+w2); w1 == w2 for L=8 -> mean 75.
  EXPECT_NEAR(e.value(), 75.0, 1e-12);
}

TEST(Estimator, SeedFillsWindow) {
  MovingAverageEstimator e(tfrc_weights(8));
  e.seed(42.0);
  EXPECT_TRUE(e.warmed_up());
  EXPECT_NEAR(e.value(), 42.0, 1e-12);
}

TEST(Estimator, ShiftedTailAndThreshold) {
  // L = 2, weights {2/3, 1/3}: W_n = w2 * theta_{n-1}.
  MovingAverageEstimator e(tfrc_weights(2));
  e.push(30.0);
  e.push(60.0);
  EXPECT_NEAR(e.shifted_tail(), 1.0 / 3.0 * 60.0, 1e-12);
  // threshold = (50 - 20) / (2/3) = 45.
  EXPECT_NEAR(e.open_threshold(), 45.0, 1e-12);
  // Below threshold the estimator is unchanged; above it grows.
  EXPECT_NEAR(e.value_with_open(40.0), 50.0, 1e-12);
  EXPECT_NEAR(e.value_with_open(45.0), 50.0, 1e-12);
  EXPECT_NEAR(e.value_with_open(60.0), 2.0 / 3.0 * 60 + 20.0, 1e-12);
}

TEST(Estimator, OpenIntervalIsMonotone) {
  MovingAverageEstimator e(tfrc_weights(8));
  e.seed(100.0);
  double prev = 0.0;
  for (double open = 0.0; open <= 400.0; open += 10.0) {
    const double v = e.value_with_open(open);
    EXPECT_GE(v, prev - 1e-12);
    EXPECT_GE(v, e.value() - 1e-12);  // never smaller than the closed value
    prev = v;
  }
}

TEST(Estimator, Validation) {
  MovingAverageEstimator e(tfrc_weights(4));
  EXPECT_THROW((void)e.value(), std::logic_error);
  EXPECT_THROW(e.push(0.0), std::invalid_argument);
  e.push(10.0);
  EXPECT_THROW((void)e.value_with_open(-1.0), std::invalid_argument);
}

TEST(RateController, SeedFromRateInvertsF) {
  auto f = ebrc::model::make_throughput_function("pftk-simplified", 0.1);
  RateController rc({f, tfrc_weights(8), true});
  EXPECT_FALSE(rc.active());
  EXPECT_THROW((void)rc.allowed_rate(0.0), std::logic_error);
  rc.seed_from_rate(200.0);
  EXPECT_TRUE(rc.active());
  // f(1/estimate) == 200 (within the bisection tolerance).
  EXPECT_NEAR(f->rate_from_interval(rc.estimate()), 200.0, 1e-3);
  EXPECT_NEAR(rc.allowed_rate(0.0), 200.0, 1e-3);
}

TEST(RateController, ComprehensiveRaisesRateOnLongOpenInterval) {
  auto f = ebrc::model::make_throughput_function("sqrt", 0.1);
  RateController rc({f, tfrc_weights(8), true});
  rc.seed_interval(50.0);
  const double base = rc.allowed_rate(0.0);
  EXPECT_NEAR(rc.allowed_rate(40.0), base, 1e-12);     // below threshold
  EXPECT_GT(rc.allowed_rate(200.0), base * 1.2);       // far above threshold
}

TEST(RateController, BasicIgnoresOpenInterval) {
  auto f = ebrc::model::make_throughput_function("sqrt", 0.1);
  RateController rc({f, tfrc_weights(8), false});
  rc.seed_interval(50.0);
  EXPECT_DOUBLE_EQ(rc.allowed_rate(0.0), rc.allowed_rate(1000.0));
}

TEST(RateController, LossEventLowersRate) {
  auto f = ebrc::model::make_throughput_function("pftk-simplified", 0.1);
  RateController rc({f, tfrc_weights(8), true});
  rc.seed_interval(100.0);
  const double before = rc.allowed_rate(0.0);
  rc.on_loss_event(5.0);  // a short interval: more losses
  EXPECT_LT(rc.allowed_rate(0.0), before);
}

}  // namespace
