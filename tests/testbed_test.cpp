#include <gtest/gtest.h>

#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"
#include "testbed/wan_paths.hpp"

namespace {

using namespace ebrc::testbed;

TEST(Scenario, Ns2PresetMatchesPaperSetup) {
  const auto s = ns2_scenario(4, 4, 8, 1);
  EXPECT_DOUBLE_EQ(s.bottleneck_bps, 15e6);
  EXPECT_DOUBLE_EQ(s.base_rtt_s, 0.050);
  EXPECT_EQ(s.queue, QueueKind::kRed);
  EXPECT_TRUE(s.tfrc.comprehensive);
  EXPECT_EQ(s.tfrc.formula, "pftk");
  EXPECT_EQ(s.n_tfrc, 4);
  EXPECT_EQ(s.n_tcp, 4);
}

TEST(Scenario, LabPresetMatchesPaperSetup) {
  const auto s = lab_scenario(QueueKind::kRed, 0, 2, 1);
  EXPECT_DOUBLE_EQ(s.bottleneck_bps, 10e6);
  EXPECT_FALSE(s.tfrc.comprehensive);  // disabled in the lab runs
  ASSERT_TRUE(s.red.has_value());
  EXPECT_NEAR(s.red->min_th, 9.375, 1e-9);
  EXPECT_NEAR(s.red->max_th, 78.125, 1e-9);
  EXPECT_FALSE(s.red->gentle);
  const auto d = lab_scenario(QueueKind::kDropTail, 64, 1, 1);
  EXPECT_EQ(d.droptail_buffer, 64u);
}

TEST(Experiment, SmallMixedPopulationProducesFullBreakdown) {
  Scenario s = ns2_scenario(2, 2, 8, 7);
  s.duration_s = 120.0;
  s.warmup_s = 30.0;
  s.n_poisson = 1;
  s.poisson_rate_pps = 20.0;
  const auto r = run_experiment(s);

  ASSERT_EQ(r.flows.size(), 5u);
  EXPECT_EQ(r.of_kind("tfrc").size(), 2u);
  EXPECT_EQ(r.of_kind("tcp").size(), 2u);
  EXPECT_EQ(r.of_kind("poisson").size(), 1u);

  // The bottleneck is saturated by 4 greedy flows.
  EXPECT_GT(r.bottleneck_utilization, 0.80);
  // Everyone measured a positive loss-event rate and throughput.
  EXPECT_GT(r.tfrc_p, 0.0);
  EXPECT_GT(r.tcp_p, 0.0);
  EXPECT_GT(r.poisson_p, 0.0);
  EXPECT_GT(r.tfrc_throughput, 10.0);
  EXPECT_GT(r.tcp_throughput, 10.0);
  // RTTs track the configured 50 ms base plus queueing.
  EXPECT_GT(r.tfrc_rtt, 0.045);
  EXPECT_LT(r.tfrc_rtt, 0.30);
  // The breakdown ratios are populated and finite.
  EXPECT_GT(r.breakdown.conservativeness, 0.0);
  EXPECT_GT(r.breakdown.loss_rate_ratio, 0.0);
  EXPECT_GT(r.breakdown.rtt_ratio, 0.5);
  EXPECT_LT(r.breakdown.rtt_ratio, 2.0);
  EXPECT_GT(r.breakdown.tcp_formula_ratio, 0.0);
  EXPECT_GT(r.breakdown.friendliness, 0.0);
}

TEST(Experiment, Claim4FewFlowsTcpSeesLargerLossEventRate) {
  // The headline of Claim 4 / Figure 17 (right): one TCP and one TFRC on a
  // DropTail bottleneck — TCP's loss-event rate exceeds TFRC's.
  Scenario s = lab_scenario(QueueKind::kDropTail, 40, 1, 3);
  s.duration_s = 300.0;
  s.warmup_s = 60.0;
  const auto r = run_experiment(s);
  ASSERT_GT(r.tfrc_p, 0.0);
  ASSERT_GT(r.tcp_p, 0.0);
  EXPECT_GT(r.breakdown.loss_rate_ratio, 1.05) << "p'/p should exceed 1 for few flows";
}

TEST(Experiment, TfrcIsRoughlyConservativeOnRedBottleneck) {
  // Figure 5 regime: many flows on RED; TFRC normalized throughput near or
  // below 1 (strong conservativeness appears only at high p).
  Scenario s = ns2_scenario(4, 4, 8, 11);
  s.duration_s = 150.0;
  s.warmup_s = 30.0;
  const auto r = run_experiment(s);
  ASSERT_GT(r.breakdown.conservativeness, 0.0);
  EXPECT_LT(r.breakdown.conservativeness, 1.35);
}

TEST(Experiment, Validation) {
  Scenario s = ns2_scenario(1, 1, 8, 1);
  s.duration_s = 10.0;
  s.warmup_s = 20.0;
  EXPECT_THROW((void)run_experiment(s), std::invalid_argument);
}

TEST(WanPaths, TableOneShape) {
  const auto paths = table1_paths();
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_EQ(paths[0].name, "INRIA");
  EXPECT_NEAR(paths[0].base_rtt_s, 0.030, 1e-9);
  EXPECT_EQ(paths[3].name, "UMELB");
  EXPECT_NEAR(paths[3].base_rtt_s, 0.350, 1e-9);
  // Access classes: INRIA/UMASS faster than KTH/UMELB.
  EXPECT_GT(paths[0].access_bps, paths[2].access_bps);
}

TEST(WanPaths, ScenarioBuilds) {
  const auto paths = table1_paths();
  const auto s = wan_scenario(paths[2], 2, 5);
  EXPECT_EQ(s.n_tfrc, 2);
  EXPECT_EQ(s.n_tcp, 2);
  EXPECT_GT(s.n_onoff, 0);
  EXPECT_EQ(s.queue, QueueKind::kDropTail);
  EXPECT_DOUBLE_EQ(s.base_rtt_s, 0.046);
}

TEST(WanPaths, KthRunHasLowLossAndFullBreakdown) {
  auto s = wan_scenario(table1_paths()[2], 1, 9);  // KTH, 1 TCP + 1 TFRC
  s.duration_s = 120.0;
  s.warmup_s = 30.0;
  const auto r = run_experiment(s);
  // Low ambient loss (the paper's KTH p was ~1e-4..6e-4; ours just needs to
  // be well below the lab regime).
  if (r.tfrc_p > 0.0) {
    EXPECT_LT(r.tfrc_p, 0.05);
  }
  EXPECT_GT(r.tfrc_throughput, 0.0);
  EXPECT_GT(r.tcp_throughput, 0.0);
}

}  // namespace
