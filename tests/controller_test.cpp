// The controller zoo, locked down:
//   * the typed units (DataRate / TimeDelta / Timestamp) do exact arithmetic
//     and stay 8-byte trivially-copyable (they live inside POD rewind blocks),
//   * all four connection classes satisfy the workload Sender concept,
//   * delay-AIMD and RCP finite transfers complete standalone and rewind
//     cleanly for slot reuse, like TFRC/TCP,
//   * an end-to-end churn run pinned to each controller completes transfers
//     and reports its telemetry in the right WorkloadSummary slice —
//     queuing-delay samples only from the delay-sensing classes,
//   * the RCP router law on net::Link stamps a fair share that senders adopt,
//   * a pinned controller still burns the class draw, so CRN-paired arms see
//     identical arrival streams,
//   * FlowManager rejects unknown controller names loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>

#include "delay_aimd/delay_aimd_connection.hpp"
#include "net/dumbbell.hpp"
#include "net/queue.hpp"
#include "rcp/rcp_connection.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"
#include "tfrc/tfrc_connection.hpp"
#include "util/units.hpp"
#include "workload/flow_manager.hpp"
#include "workload/sender.hpp"

namespace {

using namespace ebrc;
using util::DataRate;
using util::TimeDelta;
using util::Timestamp;

// ---- typed units -------------------------------------------------------------

TEST(Units, TimeDeltaArithmetic) {
  const TimeDelta a = TimeDelta::seconds(1.5);
  const TimeDelta b = TimeDelta::millis(500.0);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 1.0);
  EXPECT_DOUBLE_EQ(b.millis(), 500.0);
  EXPECT_DOUBLE_EQ((2.0 * b).seconds(), 1.0);
  EXPECT_TRUE(b < a);
  EXPECT_EQ(util::min(a, b), b);
  EXPECT_EQ(util::max(a, b), a);
  EXPECT_EQ(TimeDelta(), TimeDelta::seconds(0.0));
}

TEST(Units, TimestampAlgebra) {
  const Timestamp t0 = Timestamp::seconds(10.0);
  const Timestamp t1 = t0 + TimeDelta::seconds(2.5);
  EXPECT_DOUBLE_EQ(t1.seconds(), 12.5);
  EXPECT_DOUBLE_EQ((t1 - t0).seconds(), 2.5);
  EXPECT_DOUBLE_EQ((t1 - TimeDelta::seconds(0.5)).seconds(), 12.0);
  EXPECT_TRUE(t0 < t1);
}

TEST(Units, DataRateConversions) {
  const DataRate r = DataRate::packets_per_second(100.0);
  EXPECT_DOUBLE_EQ(r.pps(), 100.0);
  EXPECT_DOUBLE_EQ(r.bps(/*packet_bytes=*/1000.0), 800e3);
  EXPECT_DOUBLE_EQ(DataRate::bits_per_second(800e3, 1000.0).pps(), 100.0);
  EXPECT_DOUBLE_EQ(r.packet_interval().seconds(), 0.01);
  EXPECT_DOUBLE_EQ(r.packets_over(TimeDelta::seconds(2.0)), 200.0);
  EXPECT_DOUBLE_EQ((r + DataRate::packets_per_second(50.0)).pps(), 150.0);
  EXPECT_DOUBLE_EQ((0.85 * r).pps(), 85.0);
  EXPECT_EQ(util::min(r, DataRate::packets_per_second(7.0)).pps(), 7.0);
}

TEST(Units, PodAndPointerSized) {
  static_assert(std::is_trivially_copyable_v<DataRate>);
  static_assert(std::is_trivially_copyable_v<TimeDelta>);
  static_assert(std::is_trivially_copyable_v<Timestamp>);
  static_assert(sizeof(DataRate) == 8 && sizeof(TimeDelta) == 8 && sizeof(Timestamp) == 8);
}

// ---- the Sender concept ------------------------------------------------------

static_assert(workload::Sender<tfrc::TfrcConnection>);
static_assert(workload::Sender<tcp::TcpConnection>);
static_assert(workload::Sender<delay_aimd::DelayAimdConnection>);
static_assert(workload::Sender<rcp::RcpConnection>);

// ---- standalone lifecycle ----------------------------------------------------

TEST(ControllerLifecycle, DelayAimdFiniteTransferCompletesAndRewinds) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 15e6, 0.001);
  const int id = net.add_flow(0.024, 0.025);
  delay_aimd::DelayAimdConnection c(net, id, 0.050);

  int completions = 0;
  c.open(200, [&] { ++completions; });
  EXPECT_TRUE(c.active());
  sim.run_until(400.0);
  EXPECT_EQ(completions, 1);
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.sent(), 200u);
  EXPECT_EQ(c.transfers_completed(), 1u);
  // Delay telemetry accumulated (one sample per feedback).
  EXPECT_GT(c.queuing_delay_samples(), 0u);

  // Reuse after a drain: sequencing restarts, cumulative counters continue.
  const std::uint64_t sent0 = c.sent();
  const std::uint64_t delivered0 = c.delivered();
  c.open(150, [&] { ++completions; });
  sim.run_until(800.0);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(c.sent() - sent0, 150u);
  EXPECT_EQ(c.delivered() - delivered0, 150u);  // lossless link: all arrive
}

TEST(ControllerLifecycle, RcpSenderAdoptsRouterStampAndCompletes) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 15e6, 0.001);
  net::RcpParams rp;
  rp.d0_s = 0.050;
  net.bottleneck().enable_rcp(rp);
  ASSERT_TRUE(net.bottleneck().rcp_enabled());
  const int id = net.add_flow(0.024, 0.025);
  rcp::RcpConnection c(net, id, 0.050);

  int completions = 0;
  c.open(400, [&] { ++completions; });
  sim.run_until(400.0);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(c.sent(), 400u);
  EXPECT_TRUE(c.rate_stamped());  // the router's fair share reached the sender
  EXPECT_GT(c.queuing_delay_samples(), 0u);

  // The advertised fair share is bounded by the link's packet capacity.
  const double capacity_pps = 15e6 / (8.0 * 1000.0);
  EXPECT_LE(net.bottleneck().rcp_rate_pps(), capacity_pps + 1e-9);
  EXPECT_GT(net.bottleneck().rcp_rate_pps(), 0.0);

  // Rewind for a second transfer.
  c.open(100, [&] { ++completions; });
  sim.run_until(800.0);
  EXPECT_EQ(completions, 2);
}

TEST(ControllerLifecycle, RcpRouterRejectsBadParams) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 15e6, 0.001);
  net::RcpParams bad;
  bad.alpha = 0.0;
  EXPECT_THROW(net.bottleneck().enable_rcp(bad), std::invalid_argument);
  bad = net::RcpParams{};
  bad.d0_s = -1.0;
  EXPECT_THROW(net.bottleneck().enable_rcp(bad), std::invalid_argument);
}

// ---- end-to-end churn runs ---------------------------------------------------

testbed::Scenario pinned_churn(const std::string& controller, std::uint64_t seed) {
  auto s = testbed::churn_scenario(/*offered_load=*/0.8, /*tfrc_fraction=*/0.5, seed);
  s.name = "ctrl-test-" + controller;
  s.workload.controller = controller;
  s.duration_s = 30.0;
  s.warmup_s = 5.0;
  s.workload.max_concurrent = 32;
  return s;
}

TEST(ControllerMatrix, EachControllerCarriesTheWholeWorkload) {
  for (const std::string ctrl : {"tfrc", "tcp", "delay_aimd", "rcp"}) {
    const auto r = testbed::run_experiment(pinned_churn(ctrl, 21));
    ASSERT_TRUE(r.workload_active) << ctrl;
    const auto& wl = r.workload;
    EXPECT_GT(wl.arrivals, 0u) << ctrl;
    EXPECT_GT(wl.completions, 0u) << ctrl;

    // Telemetry lands in the pinned class's slice and nowhere else.
    const double goodputs[4] = {wl.tfrc_goodput_pps, wl.tcp_goodput_pps, wl.aimd_goodput_pps,
                                wl.rcp_goodput_pps};
    const double flows[4] = {wl.mean_flows_tfrc, wl.mean_flows_tcp, wl.mean_flows_aimd,
                             wl.mean_flows_rcp};
    const int expected = ctrl == "tfrc" ? 0 : ctrl == "tcp" ? 1 : ctrl == "delay_aimd" ? 2 : 3;
    for (int c = 0; c < 4; ++c) {
      if (c == expected) {
        EXPECT_GT(goodputs[c], 0.0) << ctrl;
        EXPECT_GT(flows[c], 0.0) << ctrl;
      } else {
        EXPECT_EQ(goodputs[c], 0.0) << ctrl << " leaked goodput into class " << c;
        EXPECT_EQ(flows[c], 0.0) << ctrl << " leaked flows into class " << c;
      }
    }

    // Queuing-delay telemetry only from the delay-sensing classes.
    if (ctrl == "delay_aimd" || ctrl == "rcp") {
      EXPECT_GT(wl.qdelay_mean_s, 0.0) << ctrl;
    } else {
      EXPECT_EQ(wl.qdelay_mean_s, 0.0) << ctrl;
    }
  }
}

TEST(ControllerMatrix, PinnedControllerKeepsTheArrivalStream) {
  // CRN contract: pinning a controller burns the class draw, so two runs on
  // one seed see the same arrival count regardless of which controller the
  // arrivals land on (completions and goodput may differ freely).
  const auto a = testbed::run_experiment(pinned_churn("tfrc", 33));
  auto sc_b = pinned_churn("delay_aimd", 33);
  sc_b.name = a.scenario_name;  // same name => same derived streams
  const auto b = testbed::run_experiment(sc_b);
  EXPECT_EQ(a.workload.arrivals + a.workload.rejections,
            b.workload.arrivals + b.workload.rejections);
}

TEST(ControllerMatrix, UnknownControllerThrowsNamingTheZoo) {
  sim::Simulator sim;
  net::Dumbbell net(sim, net::Queue::drop_tail(100), 15e6, 0.001);
  workload::FlowManagerConfig cfg;
  cfg.workload.arrival_rate_per_s = 1.0;
  cfg.workload.controller = "bbr";
  try {
    workload::FlowManager fm(net, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bbr"), std::string::npos);
    EXPECT_NE(msg.find("delay_aimd"), std::string::npos);
    EXPECT_NE(msg.find("rcp"), std::string::npos);
  }
}

}  // namespace
