// Shared fixture for the mixed pinned+slab golden-determinism test.
//
// The workload drives both scheduling families of the kernel at once —
// pinned callbacks (the timing-wheel path) self-rescheduling with a delay
// mix that spans every wheel regime (equal-time ties, level-0 short hops,
// mid-range cascade boundaries, far-future overflow), interleaved with
// ordinary slab events and handle cancellations. Keep it byte-identical to
// the generator that produced the recorded order in
// golden_determinism_test.cpp; any change invalidates the recording.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace golden {

struct MixedWorkload {
  ebrc::sim::Simulator sim;
  std::vector<int> order;
  std::vector<ebrc::sim::EventHandle> handles;
  std::uint64_t rng_state = 0x9E3779B97F4A7C15ull;  // phi, fixed forever
  int slab_spawned = 0;
  std::uint64_t pinned_fires = 0;
  static constexpr int kPinned = 8;
  static constexpr std::uint64_t kMaxPinnedFires = 260;
  static constexpr int kMaxSlab = 120;
  ebrc::sim::Simulator::PinnedEvent pins[kPinned] = {};

  std::uint64_t next() {  // splitmix64
    std::uint64_t z = (rng_state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  void pinned_fire(int p) {
    order.push_back(1000 + p);
    ++pinned_fires;
    const std::uint64_t r = next();
    if (pinned_fires + kPinned <= kMaxPinnedFires) {
      // Delay mix chosen to hit every wheel regime: same-time ties, short
      // level-0 hops, cascade-crossing mid delays, far-future overflow.
      double delay;
      switch (r & 15u) {
        case 0: delay = 0.0; break;
        case 1: delay = static_cast<double>((r >> 8) % 5000); break;
        case 2:
        case 3: delay = static_cast<double>((r >> 8) % 400) * 0.050; break;
        default: delay = static_cast<double>((r >> 8) % 64) * 1e-3; break;
      }
      sim.schedule_pinned(delay, pins[p]);
      // Occasionally double-book a second pin at the very same instant.
      if ((r & 0x30u) == 0) sim.schedule_pinned(delay, pins[(r >> 16) % kPinned]);
    }
    if ((r & 0xC0u) == 0 && slab_spawned < kMaxSlab) spawn_slab((r >> 24) % 2000);
    if ((r & 0x300u) == 0 && !handles.empty()) {
      handles[(r >> 32) % handles.size()].cancel();
    }
  }

  void spawn_slab(std::uint64_t ms) {
    const int id = slab_spawned++;
    handles.push_back(
        sim.schedule(static_cast<double>(ms) * 1e-3, [this, id] { slab_fire(id); }));
  }

  void slab_fire(int id) {
    order.push_back(id);
    const std::uint64_t r = next();
    if ((r & 3u) != 0 && slab_spawned < kMaxSlab) spawn_slab((r >> 8) % 700);
  }

  void run() {
    for (int p = 0; p < kPinned; ++p) {
      pins[p] = sim.pin([this, p] { pinned_fire(p); });
    }
    for (int p = 0; p < kPinned; ++p) {
      sim.schedule_pinned(static_cast<double>(next() % 50) * 1e-3, pins[p]);
    }
    for (int i = 0; i < 16; ++i) spawn_slab(next() % 100);
    sim.run();
  }
};

}  // namespace golden
