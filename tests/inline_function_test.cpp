// Unit tests for InlineFunction: inline storage of small captures with zero
// heap allocations, the heap fallback for oversized captures (counted),
// move-only capture support, destructor accounting, and the compressed
// one-word representation the event slab uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"

namespace {

using ebrc::sim::EventFn;
using ebrc::sim::inline_function_heap_allocs;
using ebrc::sim::InlineFunction;

TEST(InlineFunction, SmallCaptureStoresInlineWithZeroAllocations) {
  const std::uint64_t before = inline_function_heap_allocs();
  int x = 0;
  struct {
    double a[6];
  } big48{{1, 2, 3, 4, 5, 6}};
  EventFn small([&x] { ++x; });                               // 8-byte capture
  EventFn mid([&x, big48] { x += static_cast<int>(big48.a[0]); });  // 56-byte capture
  EXPECT_FALSE(small.uses_heap());
  EXPECT_FALSE(mid.uses_heap());
  EXPECT_EQ(inline_function_heap_allocs(), before);
  small();
  mid();
  EXPECT_EQ(x, 2);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapAndIsCounted) {
  const std::uint64_t before = inline_function_heap_allocs();
  struct {
    double a[8];
  } big64{{1, 2, 3, 4, 5, 6, 7, 8}};
  double sink = 0;
  EventFn fn([&sink, big64] { sink += big64.a[7]; });  // 64 + 8 bytes > 56
  EXPECT_TRUE(fn.uses_heap());
  EXPECT_EQ(inline_function_heap_allocs(), before + 1);
  fn();
  EXPECT_DOUBLE_EQ(sink, 8.0);
}

TEST(InlineFunction, MoveOnlyCapturesWork) {
  auto box = std::make_unique<int>(41);
  int result = 0;
  EventFn fn([&result, b = std::move(box)] { result = *b + 1; });
  EXPECT_FALSE(fn.uses_heap());  // unique_ptr capture is 8 bytes
  EventFn moved = std::move(fn);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move) — moved-from is empty
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(result, 42);
}

struct DtorCounter {
  int* count;
  explicit DtorCounter(int* c) : count(c) {}
  DtorCounter(DtorCounter&& o) noexcept : count(o.count) { o.count = nullptr; }
  DtorCounter(const DtorCounter& o) = default;
  ~DtorCounter() {
    if (count != nullptr) ++*count;
  }
};

TEST(InlineFunction, DestructorRunsExactlyOnceThroughMoves) {
  int destroyed = 0;
  {
    EventFn fn([d = DtorCounter(&destroyed)] { (void)d; });
    EventFn second = std::move(fn);
    EventFn third;
    third = std::move(second);
    EXPECT_EQ(destroyed, 0);  // live capture not destroyed by relocation
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, AssigningOverDestroysThePreviousCallable) {
  int destroyed = 0;
  EventFn fn([d = DtorCounter(&destroyed)] { (void)d; });
  fn = nullptr;
  EXPECT_EQ(destroyed, 1);
  EXPECT_FALSE(fn);
}

TEST(InlineFunction, EmptyCallThrowsBadFunctionCall) {
  EventFn fn;
  EXPECT_THROW(fn(), std::bad_function_call);
  EventFn null2(nullptr);
  EXPECT_THROW(null2(), std::bad_function_call);
}

TEST(InlineFunction, ArgumentsAndReturnValuesPassThrough) {
  InlineFunction<int(int, int), 24> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(20, 22), 42);
}

TEST(InlineFunction, CompressRoundTripsTinyAndBoxedCallables) {
  int calls = 0;
  EventFn tiny([&calls] { ++calls; });
  ASSERT_TRUE(tiny.compressible());
  EventFn back = EventFn::decompress(tiny.compress());
  EXPECT_FALSE(tiny);  // ownership moved out
  back();
  EXPECT_EQ(calls, 1);

  // Oversized capture: the heap box pointer is the one-word payload.
  struct {
    double a[8];
  } big64{{0, 0, 0, 0, 0, 0, 0, 9}};
  double sink = 0;
  EventFn boxed([&sink, big64] { sink = big64.a[7]; });
  ASSERT_TRUE(boxed.uses_heap());
  ASSERT_TRUE(boxed.compressible());
  EventFn boxed_back = EventFn::decompress(boxed.compress());
  boxed_back();
  EXPECT_DOUBLE_EQ(sink, 9.0);

  // Mid-sized trivial captures stay full-width.
  struct {
    double a[4];
  } big32{{1, 2, 3, 4}};
  EventFn mid([&sink, big32] { sink = big32.a[0]; });
  EXPECT_FALSE(mid.compressible());

  // The empty function compresses to the null representation.
  EventFn none;
  ASSERT_TRUE(none.compressible());
  EventFn none_back = EventFn::decompress(none.compress());
  EXPECT_FALSE(none_back);
}

TEST(InlineFunction, SchedulingSmallCapturesAllocatesNothing) {
  // The acceptance property of the kernel rewrite: zero heap allocations per
  // scheduled event for captures up to 56 bytes — including timer churn.
  ebrc::sim::Simulator sim;
  double sink = 0;
  struct {
    double a[6];
  } big48{{1, 2, 3, 4, 5, 6}};
  // Warm up the simulator's pools (vector growth is not a per-event cost).
  for (int i = 0; i < 64; ++i) sim.schedule(1e-4 * i, [&sink] { sink += 1; });
  sim.run();

  const std::uint64_t before = inline_function_heap_allocs();
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(1e-4, [&sink] { sink += 1; });                       // 8B capture
    sim.schedule(2e-4, [&sink, big48] { sink += big48.a[5]; });       // 56B capture
    auto h = sim.schedule(3e-4, [&sink] { sink += 100; });            // cancelled timer
    h.cancel();
    sim.run();
  }
  EXPECT_EQ(inline_function_heap_allocs(), before);
  EXPECT_DOUBLE_EQ(sink, 64.0 + 1000.0 * 7.0);
}

TEST(InlineFunction, OversizedScheduleAllocatesExactlyOncePerEvent) {
  ebrc::sim::Simulator sim;
  struct {
    double a[16];
  } big128{};
  big128.a[0] = 1;
  double sink = 0;
  const std::uint64_t before = inline_function_heap_allocs();
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1e-4, [&sink, big128] { sink += big128.a[0]; });
  }
  sim.run();
  EXPECT_EQ(inline_function_heap_allocs(), before + 10);
  EXPECT_DOUBLE_EQ(sink, 10.0);
}

}  // namespace
