// Unit and property tests for the hierarchical timing wheel.
//
// The wheel's contract is total-order equivalence: any interleaving of
// push/pop (with pushes never before the last popped time — the simulator
// clock's guarantee) must drain in exactly the 128-bit (time bits ‖ seq) key
// order, no matter which level, the overflow ring, or a lazy cascade
// boundary an event traverses. The property tests drive the wheel against a
// std::multiset model under several granularity regimes; the deterministic
// tests aim at the classic wheel bugs — window-start ticks, bucket wrap,
// span crossings, -0.0 deadlines, equal-time FIFO ties.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timing_wheel.hpp"

namespace {

using ebrc::sim::EarlierCompare;
using ebrc::sim::QueuedEvent;
using ebrc::sim::TimingWheel;

// Layout tripwires: queue entries are the PODs both structures shuffle, and
// the wheel itself must stay a flat ~19 KB of bucket headers (768 vectors +
// bitmaps), never grow per-event state.
static_assert(sizeof(QueuedEvent) == 24);
static_assert(std::is_trivially_copyable_v<QueuedEvent>);
static_assert(sizeof(TimingWheel) < 20 * 1024);

std::uint64_t splitmix(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Random push/pop interleaving vs an exact model. `max_delay_qticks` is the
// delay range in QUARTER ticks, so delays include 0, sub-tick fractions, and
// whatever multiple of the span the caller wants.
void run_property(double dt, std::uint64_t max_delay_qticks, int ops, std::uint64_t seed) {
  TimingWheel w;
  w.activate(dt, 0.0);
  std::multiset<QueuedEvent, EarlierCompare> model;
  std::uint64_t rng = seed;
  double now = 0.0;
  std::uint64_t seq = 0;
  for (int i = 0; i < ops; ++i) {
    ASSERT_EQ(w.size(), model.size());
    if (model.empty() || (splitmix(rng) & 3u) != 0) {
      const double delay =
          static_cast<double>(splitmix(rng) % max_delay_qticks) * dt * 0.25;
      const QueuedEvent e{now + delay, seq++, 7u};
      w.push(e);
      model.insert(e);
    } else {
      const QueuedEvent* p = w.peek();
      ASSERT_NE(p, nullptr);
      const QueuedEvent expect = *model.begin();
      ASSERT_EQ(p->seq, expect.seq) << "op " << i;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(p->at),
                std::bit_cast<std::uint64_t>(expect.at));
      now = p->at;
      w.pop_front();
      model.erase(model.begin());
    }
  }
  while (!model.empty()) {
    const QueuedEvent* p = w.peek();
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(p->seq, model.begin()->seq);
    w.pop_front();
    model.erase(model.begin());
  }
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.peek(), nullptr);
}

TEST(TimingWheel, PropertyLevel0AndBucketWrap) {
  // Delays up to 64 ticks: level-0 traffic with constant 256-tick wraps.
  run_property(1e-3, 256, 6000, 0x1234567);
}

TEST(TimingWheel, PropertyCascadeLevels) {
  // Delays up to 2^17 ticks: level-1/level-2 residents that cascade down.
  run_property(1e-3, 1u << 19, 6000, 0xABCDEF01);
}

TEST(TimingWheel, PropertyOverflowAndRehome) {
  // Delays up to 4 spans (2^26 ticks): the overflow ring is rehomed across
  // several 2^24-tick window crossings.
  run_property(1e-6, 1ull << 28, 4000, 0xFEEDBEEF);
}

TEST(TimingWheel, WindowStartBoundariesDrainInOrder) {
  // The exact ticks where cascade bookkeeping is easiest to get wrong:
  // window starts and their neighbours at every level, plus span crossings.
  TimingWheel w;
  const double dt = 1.0;  // 1 tick == 1 second: ticks are times
  w.activate(dt, 0.0);
  const std::uint64_t marks[] = {0,       1,       255,     256,     257,
                                 65535,   65536,   65537,   1u << 24, (1u << 24) + 1,
                                 (1u << 24) - 1, 3u << 24, (3u << 24) + 255};
  std::uint64_t seq = 0;
  // Push in a scrambled order so placement happens at several levels.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < std::size(marks); ++i) {
      const std::uint64_t m = marks[(i * 7 + 3 + static_cast<std::size_t>(round)) %
                                    std::size(marks)];
      w.push(QueuedEvent{static_cast<double>(m), seq++, 7u});
    }
  }
  double prev_at = -1.0;
  std::uint64_t prev_seq = 0;
  std::size_t popped = 0;
  while (const QueuedEvent* p = w.peek()) {
    if (p->at == prev_at) {
      EXPECT_GT(p->seq, prev_seq) << "equal-time FIFO broken at " << p->at;
    } else {
      EXPECT_GT(p->at, prev_at) << "time order broken after " << popped << " pops";
    }
    prev_at = p->at;
    prev_seq = p->seq;
    w.pop_front();
    ++popped;
  }
  EXPECT_EQ(popped, 2 * std::size(marks));
}

TEST(TimingWheel, SameInstantRebookingJoinsTheCurrentTick) {
  TimingWheel w;
  w.activate(1e-3, 0.0);
  w.push(QueuedEvent{0.5, 0, 7u});
  const QueuedEvent* p = w.peek();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->seq, 0u);
  // While 0.5 is the loaded tick, a same-instant re-booking (and one a hair
  // later inside the same tick) must land behind the head in key order.
  w.push(QueuedEvent{0.5, 1, 7u});
  w.push(QueuedEvent{0.5 + 1e-5, 2, 7u});
  std::vector<std::uint64_t> seqs;
  while (const QueuedEvent* q = w.peek()) {
    seqs.push_back(q->seq);
    w.pop_front();
  }
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
}

// -------- simulator-level integration ---------------------------------------

TEST(TimingWheel, SimulatorCalibratesThenRoutesPinnedThroughWheel) {
  ebrc::sim::Simulator sim;
  int fires = 0;
  ebrc::sim::Simulator::PinnedEvent ev{};
  ev = sim.pin([&] {
    if (++fires < 200) sim.schedule_pinned(1e-3, ev);
  });
  sim.schedule_pinned(1e-3, ev);
  sim.run();
  EXPECT_EQ(fires, 200);
  EXPECT_TRUE(sim.wheel().active());
  // The first 64 positive delays calibrate (and ride the heap); the rest pop
  // from the wheel.
  EXPECT_GT(sim.wheel_pops(), 100u);
  EXPECT_GE(sim.heap_pops(), 64u);
  EXPECT_NEAR(sim.now(), 0.2, 1e-12);
}

TEST(TimingWheel, NegativeZeroDeadlineNormalizedOnWheelPath) {
  ebrc::sim::Simulator sim;
  std::vector<int> order;
  const auto ev = sim.pin([&] { order.push_back(1); });
  const auto tick = sim.pin([&] { order.push_back(0); });
  // Activate the wheel with positive-delay schedules first.
  int warm = 0;
  ebrc::sim::Simulator::PinnedEvent warmup{};
  warmup = sim.pin([&] {
    if (++warm < 70) sim.schedule_pinned(1e-4, warmup);
  });
  sim.schedule_pinned(1e-4, warmup);
  sim.run();
  ASSERT_TRUE(sim.wheel().active());
  // now() > 0; schedule two pinned events at the same instant, the second
  // via a -0.0 delay: -0.0 must order exactly like +0.0 (seq breaks the tie).
  sim.schedule_pinned(0.0, tick);
  sim.schedule_pinned(-0.0, ev);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(TimingWheel, EqualTimeWheelAndHeapEventsInterleaveBySeq) {
  ebrc::sim::Simulator sim;
  std::vector<int> order;
  int warm = 0;
  ebrc::sim::Simulator::PinnedEvent warmup{};
  warmup = sim.pin([&] {
    if (++warm < 70) sim.schedule_pinned(1e-4, warmup);
  });
  sim.schedule_pinned(1e-4, warmup);
  sim.run();
  ASSERT_TRUE(sim.wheel().active());
  const auto pinned = sim.pin([&] { order.push_back(100); });
  // Alternate slab (heap) and pinned (wheel) events at one instant: the
  // merged pop must interleave them in insertion order.
  const double at = sim.now() + 0.5;
  sim.schedule_at(at, [&] { order.push_back(0); });
  sim.schedule_pinned_at(at, pinned);
  sim.schedule_at(at, [&] { order.push_back(1); });
  sim.schedule_pinned_at(at, pinned);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 100, 1, 100}));
}

TEST(TimingWheel, QueueSizeSpansBothStructures) {
  ebrc::sim::Simulator sim;
  int warm = 0;
  ebrc::sim::Simulator::PinnedEvent warmup{};
  warmup = sim.pin([&] {
    if (++warm < 70) sim.schedule_pinned(1e-4, warmup);
  });
  sim.schedule_pinned(1e-4, warmup);
  sim.run();
  ASSERT_TRUE(sim.wheel().active());
  const auto pinned = sim.pin([] {});
  sim.schedule_pinned(1.0, pinned);   // wheel
  sim.schedule_pinned(2000.0, pinned);  // wheel (far future)
  auto h = sim.schedule(3.0, [] {});  // heap
  EXPECT_EQ(sim.queue_size(), 3u);
  h.cancel();
  EXPECT_EQ(sim.queue_size(), 3u);  // cancelled-but-unpopped still counted
  sim.run();
  EXPECT_EQ(sim.queue_size(), 0u);
}

}  // namespace
