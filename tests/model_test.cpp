#include <gtest/gtest.h>

#include <cmath>

#include "model/aimd.hpp"
#include "model/convex_closure.hpp"
#include "model/convexity.hpp"
#include "model/quadrature.hpp"
#include "model/solvers.hpp"
#include "model/throughput_function.hpp"
#include "util/math.hpp"

namespace {

using namespace ebrc::model;

constexpr double kR = 1.0;  // paper's Figure 1 normalization: r = 1, q = 4r

TEST(Formulas, Constants) {
  EXPECT_NEAR(pftk_c1(2), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(pftk_c2(2), 1.5 * std::sqrt(3.0), 1e-12);
}

TEST(Formulas, SqrtValue) {
  SqrtFormula f(kR);
  // f(p) = 1/(c1 r sqrt(p))
  EXPECT_NEAR(f.rate(0.01), 1.0 / (pftk_c1(2) * 0.1), 1e-12);
  EXPECT_NEAR(f.rate_from_interval(100.0), f.rate(0.01), 1e-12);
  EXPECT_NEAR(f.g(100.0), 1.0 / f.rate(0.01), 1e-12);
}

TEST(Formulas, StandardEqualsSimplifiedBelowClamp) {
  PftkStandard fs(kR);
  PftkSimplified fm(kR);
  const double split = fs.clamp_threshold();
  EXPECT_NEAR(split, 1.0 / ebrc::util::sq(pftk_c2(2)), 1e-12);
  for (double p : {1e-4, 1e-3, 1e-2, 0.9 * split}) {
    EXPECT_NEAR(fs.rate(p), fm.rate(p), 1e-12 * fs.rate(p)) << "p=" << p;
  }
  // Above the clamp the simplified formula is SMALLER (paper, Sec. II-C).
  for (double p : {1.05 * split, 0.3, 0.6, 1.0}) {
    EXPECT_LT(fm.rate(p), fs.rate(p)) << "p=" << p;
  }
}

TEST(Formulas, SqrtIsRareLossLimitOfPftk) {
  SqrtFormula fsqrt(kR);
  PftkSimplified fpftk(kR);
  // As p -> 0 the PFTK retransmission term vanishes.
  EXPECT_NEAR(fpftk.rate(1e-8) / fsqrt.rate(1e-8), 1.0, 1e-3);
}

TEST(Formulas, DomainChecks) {
  SqrtFormula f(kR);
  EXPECT_THROW(f.rate(0.0), std::invalid_argument);
  EXPECT_THROW(f.rate(-0.1), std::invalid_argument);
  // p > 1 is unphysical but permitted (estimator transients).
  EXPECT_GT(f.rate(1.5), 0.0);
  EXPECT_THROW(SqrtFormula(-1.0), std::invalid_argument);
}

TEST(Formulas, AnalyticDerivativesMatchNumeric) {
  SqrtFormula fs(kR);
  PftkSimplified fp(kR);
  for (double p : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    const double h = 1e-7 * p;
    const double numeric_s = (fs.rate(p + h) - fs.rate(p - h)) / (2 * h);
    const double numeric_p = (fp.rate(p + h) - fp.rate(p - h)) / (2 * h);
    EXPECT_NEAR(fs.drate_dp(p), numeric_s, 1e-4 * std::abs(numeric_s));
    EXPECT_NEAR(fp.drate_dp(p), numeric_p, 1e-4 * std::abs(numeric_p));
  }
}

TEST(Formulas, AntiderivativeDifferentiatesToG) {
  // G'(x) == g(x) for all three formulas (incl. the piecewise PFTK-standard
  // branch stitch at x = c2^2).
  SqrtFormula fs(kR);
  PftkSimplified fm(kR);
  PftkStandard fd(kR);
  const double split = ebrc::util::sq(pftk_c2(2));
  for (const ThroughputFunction* f :
       std::initializer_list<const ThroughputFunction*>{&fs, &fm, &fd}) {
    for (double x : {2.0, 4.0, split - 0.5, split + 0.5, 20.0, 200.0}) {
      const double h = 1e-5 * x;
      const double dG = (*f->g_antiderivative(x + h) - *f->g_antiderivative(x - h)) / (2 * h);
      EXPECT_NEAR(dG, f->g(x), 1e-5 * std::abs(f->g(x)))
          << f->name() << " at x=" << x;
    }
  }
}

TEST(Formulas, AntiderivativeContinuousAtClampSplit) {
  PftkStandard f(kR);
  const double split = ebrc::util::sq(pftk_c2(2));
  const double below = *f.g_antiderivative(split * (1 - 1e-9));
  const double above = *f.g_antiderivative(split * (1 + 1e-9));
  EXPECT_NEAR(below, above, 1e-6 * std::abs(above));
}

TEST(Formulas, Factory) {
  EXPECT_EQ(make_throughput_function("sqrt", 0.05)->name(), "SQRT");
  EXPECT_EQ(make_throughput_function("PFTK", 0.05)->name(), "PFTK-standard");
  EXPECT_EQ(make_throughput_function("pftk-simplified", 0.05)->name(), "PFTK-simplified");
  EXPECT_THROW(make_throughput_function("bogus", 0.05), std::invalid_argument);
}

// --- Convexity: the paper's Figure 1 claims ---------------------------------

TEST(Convexity, F1HoldsForSqrtAndSimplified) {
  SqrtFormula fs(kR);
  PftkSimplified fm(kR);
  // g(x) = 1/f(1/x) convex over a wide interval range (x in packets).
  EXPECT_TRUE(is_convex_on([&](double x) { return fs.g(x); }, 1.5, 500.0));
  EXPECT_TRUE(is_convex_on([&](double x) { return fm.g(x); }, 1.5, 500.0));
}

TEST(Convexity, F1AlmostHoldsForStandard) {
  // PFTK-standard is NOT convex (the min() kink), but nearly so.
  PftkStandard fd(kR);
  const auto rep = probe_convexity([&](double x) { return fd.g(x); }, 1.5, 500.0, 4096);
  EXPECT_FALSE(rep.convex);
  // The violation is tiny relative to the function scale.
  EXPECT_GT(rep.min_second_difference, -5e-4);
}

TEST(Convexity, F2SqrtConcaveEverywhere) {
  SqrtFormula fs(kR);
  // h(x) = f(1/x) = sqrt(x)/(c1 r): concave on all of x > 0.
  EXPECT_TRUE(is_concave_on([&](double x) { return fs.rate_from_interval(x); }, 1.5, 500.0));
}

TEST(Convexity, PftkConvexForHeavyLossConcaveForRare) {
  // Figure 1 (left): for PFTK, x -> f(1/x) is convex at small x (heavy loss)
  // and concave at large x (rare loss).
  PftkSimplified fm(kR);
  const auto h = [&](double x) { return fm.rate_from_interval(x); };
  EXPECT_TRUE(probe_convexity(h, 1.5, 4.0, 256).strictly_convex);
  EXPECT_TRUE(probe_convexity(h, 50.0, 500.0, 256).concave);
}

TEST(Convexity, ProbeValidation) {
  EXPECT_THROW(probe_convexity([](double x) { return x; }, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(probe_convexity([](double x) { return x; }, 0.0, 1.0, 2), std::invalid_argument);
}

// --- Convex closure: Figure 2 -----------------------------------------------

TEST(ConvexClosure, PftkStandardDeviationRatioMatchesPaper) {
  // Figure 2: the non-convexity of PFTK-standard's g sits around the min()
  // kink at x = c2^2, with sup g/g** = 1.0026. The paper's figure places the
  // kink at x = 3.375 = c2^2 for b = 1 (its common tangent spans
  // [3.2953, 3.4493]), so this check uses b = 1.
  PftkStandard f(kR, -1.0, /*b=*/1);
  const auto cc = convex_closure([&](double x) { return f.g(x); }, 1.5, 20.0, 20000);
  EXPECT_NEAR(cc.deviation_ratio, 1.0026, 5e-4);
  EXPECT_GT(cc.argmax, 3.2);
  EXPECT_LT(cc.argmax, 3.6);
  // With b = 2 the kink moves to c2^2 = 6.75; the deviation stays tiny.
  PftkStandard f2(kR, -1.0, /*b=*/2);
  const auto cc2 = convex_closure([&](double x) { return f2.g(x); }, 1.5, 30.0, 20000);
  EXPECT_GT(cc2.argmax, 6.0);
  EXPECT_LT(cc2.argmax, 7.5);
  EXPECT_LT(cc2.deviation_ratio, 1.01);
}

TEST(ConvexClosure, ConvexFunctionsHaveRatioOne) {
  SqrtFormula fs(kR);
  PftkSimplified fm(kR);
  const auto cs = convex_closure([&](double x) { return fs.g(x); }, 1.5, 100.0, 4096);
  const auto cm = convex_closure([&](double x) { return fm.g(x); }, 1.5, 100.0, 4096);
  EXPECT_NEAR(cs.deviation_ratio, 1.0, 1e-6);
  EXPECT_NEAR(cm.deviation_ratio, 1.0, 1e-6);
}

TEST(ConvexClosure, ClosureLowerBoundsSamples) {
  PftkStandard f(kR);
  const auto cc = convex_closure([&](double x) { return f.g(x); }, 2.0, 10.0, 1000);
  for (std::size_t i = 0; i < cc.x.size(); ++i) {
    EXPECT_LE(cc.closure[i], cc.g[i] + 1e-12);
  }
  // Interpolation agrees with grid values.
  EXPECT_NEAR(cc.closure_at(cc.x[500]), cc.closure[500], 1e-9);
}

// --- Quadrature --------------------------------------------------------------

TEST(Quadrature, PolynomialExact) {
  const double v = integrate([](double x) { return 3 * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(v, 8.0, 1e-9);
}

TEST(Quadrature, OscillatoryAccurate) {
  const double v = integrate([](double x) { return std::sin(x); }, 0.0, M_PI);
  EXPECT_NEAR(v, 2.0, 1e-8);
}

TEST(Quadrature, ReversedLimits) {
  const double v = integrate([](double x) { return x; }, 1.0, 0.0);
  EXPECT_NEAR(v, -0.5, 1e-9);
}

TEST(Quadrature, ShiftedExpExpectation) {
  // E[theta] = x0 + 1/a; E[theta^2] = (x0+1/a)^2 + 1/a^2.
  const double x0 = 3.0, a = 0.5;
  EXPECT_NEAR(expect_shifted_exp([](double x) { return x; }, x0, a), 5.0, 1e-6);
  EXPECT_NEAR(expect_shifted_exp([](double x) { return x * x; }, x0, a), 29.0, 1e-5);
}

// --- Solvers ------------------------------------------------------------------

TEST(Solvers, BisectFindsRoot) {
  const double root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0), std::invalid_argument);
}

TEST(Solvers, FixedPointConverges) {
  const double x = fixed_point([](double v) { return std::cos(v); }, 0.5);
  EXPECT_NEAR(x, 0.7390851332, 1e-6);
}

// --- AIMD / Claim 4 -----------------------------------------------------------

TEST(Aimd, ClosedForms) {
  const AimdParams a{1.0, 0.5};
  const double c = 100.0;
  EXPECT_NEAR(aimd_sqrt_constant(a), std::sqrt(1.5), 1e-12);
  EXPECT_NEAR(aimd_loss_event_rate(a, c), 2.0 / (0.75 * 1e4), 1e-12);
  EXPECT_NEAR(ebrc_fixed_point_loss_rate(a, c), 1.5 / (1.0 * 1e4), 1e-12);
  EXPECT_NEAR(aimd_time_average_rate(a, c), 75.0, 1e-12);
}

TEST(Aimd, Claim4RatioIs16Over9ForBetaHalf) {
  // The paper's numeric value: p'/p = 16/9 ~ 1.7778 at beta = 1/2. (The TR's
  // printed formula 4/(1-beta)^2 is a typo; the quotient of its own closed
  // forms is 4/(1+beta)^2 — see DESIGN.md.)
  const AimdParams a{1.0, 0.5};
  EXPECT_NEAR(claim4_ratio(a), 16.0 / 9.0, 1e-12);
  const double direct = aimd_loss_event_rate(a, 50.0) / ebrc_fixed_point_loss_rate(a, 50.0);
  EXPECT_NEAR(direct, claim4_ratio(a), 1e-12);
}

TEST(Aimd, RatioIndependentOfAlphaAndCapacity) {
  for (double alpha : {0.5, 1.0, 2.0}) {
    for (double c : {10.0, 100.0}) {
      const AimdParams a{alpha, 0.7};
      EXPECT_NEAR(aimd_loss_event_rate(a, c) / ebrc_fixed_point_loss_rate(a, c),
                  4.0 / ebrc::util::sq(1.7), 1e-12);
    }
  }
}

TEST(Aimd, FluidSimulationMatchesClosedForms) {
  const AimdParams a{1.0, 0.5};
  const double c = 60.0;
  const auto r = simulate_fluid_aimd(a, c, 200);
  EXPECT_NEAR(r.loss_event_rate, aimd_loss_event_rate(a, c), 1e-6);
  EXPECT_NEAR(r.time_average_rate, aimd_time_average_rate(a, c), 1e-6);
  // Cycle length: (1-beta) c / alpha RTTs.
  EXPECT_NEAR(r.cycle_length_rtts, 30.0, 1e-6);
}

TEST(Aimd, LossThroughputLawConsistency) {
  // Evaluating the AIMD loss-throughput law at the AIMD loss-event rate must
  // recover the deterministic time-average rate (self-consistency of the
  // Claim-4 model).
  const AimdParams a{2.0, 0.5};
  const double c = 80.0;
  const double p = aimd_loss_event_rate(a, c);
  EXPECT_NEAR(aimd_rate(a, p), aimd_time_average_rate(a, c), 1e-9);
}

TEST(Aimd, Validation) {
  EXPECT_THROW(aimd_loss_event_rate({0.0, 0.5}, 10.0), std::invalid_argument);
  EXPECT_THROW(aimd_loss_event_rate({1.0, 1.5}, 10.0), std::invalid_argument);
  EXPECT_THROW(aimd_loss_event_rate({1.0, 0.5}, -1.0), std::invalid_argument);
}

}  // namespace
