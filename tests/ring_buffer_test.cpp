// Boundary behavior of the packet path's ring buffer: wrap-around, empty and
// full edges, and geometric regrowth preserving FIFO order.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/ring_buffer.hpp"

namespace {

using ebrc::util::RingBuffer;
using ebrc::util::round_up_pow2;

TEST(RingBuffer, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(0), 2u);
  EXPECT_EQ(round_up_pow2(1), 2u);
  EXPECT_EQ(round_up_pow2(2), 2u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(16), 16u);
  EXPECT_EQ(round_up_pow2(17), 32u);
  EXPECT_EQ(round_up_pow2(1000), 1024u);
}

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> r(8);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.capacity(), 8u);
}

TEST(RingBuffer, FifoThroughManyWraps) {
  RingBuffer<int> r(4);
  int next_in = 0;
  int next_out = 0;
  // Push/pop at mixed cadence, draining to the 4-slot bound, so head_ wraps
  // the ring hundreds of times without ever growing.
  for (int round = 0; round < 1000; ++round) {
    r.push_back(next_in++);
    while (r.size() > (round % 3 == 0 ? 1u : 3u)) {
      ASSERT_EQ(r.front(), next_out) << "round " << round;
      r.pop_front();
      ++next_out;
    }
    ASSERT_LE(r.size(), 4u) << "round " << round;
  }
  EXPECT_EQ(r.capacity(), 4u);  // never grew
  while (!r.empty()) {
    EXPECT_EQ(r.front(), next_out++);
    r.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingBuffer, FullTriggersGrowthPreservingOrder) {
  RingBuffer<int> r(4);
  // Misalign head first so the regrowth has to unwrap a split run.
  for (int i = 0; i < 3; ++i) r.push_back(i);
  r.pop_front();
  r.pop_front();  // head at offset 2, one element (2) left
  for (int i = 3; i < 20; ++i) r.push_back(i);  // forces capacity 4 -> 32
  EXPECT_EQ(r.size(), 18u);
  EXPECT_GE(r.capacity(), 18u);
  for (int i = 2; i < 20; ++i) {
    ASSERT_EQ(r.front(), i);
    r.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

TEST(RingBuffer, GrowthFromUnsizedDefault) {
  RingBuffer<std::uint64_t> r;  // no hint: first push allocates
  EXPECT_EQ(r.capacity(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) r.push_back(i);
  EXPECT_EQ(r.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(r.front(), i);
    r.pop_front();
  }
}

TEST(RingBuffer, AtOffsetIndexesFromFront) {
  RingBuffer<int> r(8);
  for (int i = 0; i < 6; ++i) r.push_back(i);
  r.pop_front();
  r.pop_front();
  r.push_back(6);
  r.push_back(7);  // wraps
  // Logical contents: 2,3,4,5,6,7.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(r.at_offset(static_cast<std::size_t>(i)), i + 2);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> r(4);
  for (int i = 0; i < 3; ++i) r.push_back(i);
  r.clear();
  EXPECT_TRUE(r.empty());
  r.push_back(42);
  EXPECT_EQ(r.front(), 42);
  EXPECT_EQ(r.size(), 1u);
}

}  // namespace
