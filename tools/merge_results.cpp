// Folds the artifacts of a sharded sweep back into one.
//
// Two modes, matching the two things shards produce:
//
//   merge_results --into=DIR SRC_DIR...
//     Merges per-shard ResultStore caches: every valid *.ebrcres entry from
//     the source directories is copied under DIR (entries are content-
//     addressed, so collisions are identical by construction and the first
//     copy wins). Corrupt or truncated entries are skipped and counted, not
//     propagated. Re-running the sweep unsharded with --cache=DIR then
//     performs zero simulations and reproduces the unsharded output
//     bit-for-bit — the exact merge workflow CI asserts.
//
//   merge_results --summaries=OUT FILE...
//     Folds per-shard BatchResult summary files (--summary-out) into OUT via
//     stats::OnlineMoments::merge: counts/min/max exact, mean/variance equal
//     to the unsharded aggregate up to floating-point rounding. Use this for
//     quick cross-host summaries when shipping the caches is not worth it.
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "testbed/batch.hpp"
#include "testbed/result_store.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

namespace fs = std::filesystem;

int merge_caches(const fs::path& into, const std::vector<std::string>& sources) {
  fs::create_directories(into);
  std::size_t copied = 0, already = 0, corrupt = 0, quarantined = 0;
  for (const auto& src : sources) {
    std::error_code ec;
    if (!fs::is_directory(src, ec) || ec) {
      std::cerr << "merge_results: source '" << src << "' is not a directory\n";
      return 1;
    }
    // An unreadable source (permissions, disappearing NFS mount) must name
    // itself in one line, not surface as an unhandled-throw traceback.
    try {
      for (const auto& entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file()) continue;
        const fs::path& p = entry.path();
        // Quarantined forensics files are a shard that already diagnosed the
        // corruption: count them, never propagate them.
        if (p.extension() == ebrc::testbed::quarantine_suffix()) {
          ++quarantined;
          continue;
        }
        if (p.extension() != ebrc::testbed::result_file_extension()) continue;
        if (!ebrc::testbed::validate_result_file(p)) {
          ++corrupt;
          std::cerr << "merge_results: skipping corrupt entry " << p << "\n";
          continue;
        }
        // Entries are content-addressed by filename; keep the 2-hex fan-out.
        const fs::path dest = into / p.filename().string().substr(0, 2) / p.filename();
        if (fs::exists(dest) && ebrc::testbed::validate_result_file(dest)) {
          ++already;
          continue;
        }
        fs::create_directories(dest.parent_path());
        fs::copy_file(p, dest, fs::copy_options::overwrite_existing);
        ++copied;
      }
    } catch (const fs::filesystem_error& e) {
      std::cerr << "merge_results: cannot read source '" << src << "': " << e.what() << "\n";
      return 1;
    }
  }
  // The copies bypassed ResultStore::store(), so the destination's index
  // sidecar is stale (or absent); rebuild it so the merged cache keeps its
  // O(1) warm-probe property.
  ebrc::testbed::ResultStore store(into);
  const std::size_t indexed = store.rebuild_index();
  std::cout << "[merge] cache " << into.string() << ": copied=" << copied
            << " already-present=" << already << " corrupt-skipped=" << corrupt
            << " quarantined-skipped=" << quarantined << " indexed=" << indexed << "\n";
  return 0;
}

int merge_summaries(const fs::path& out_path, const std::vector<std::string>& files) {
  std::vector<ebrc::testbed::BatchResult> parts;
  parts.reserve(files.size());
  for (const auto& f : files) parts.push_back(ebrc::testbed::load_batch_result(f));
  const auto merged = ebrc::testbed::merge_batch_results(parts);
  ebrc::testbed::save_batch_result(merged, out_path);

  ebrc::util::Table t({"metric", "n", "mean", "ci95", "min", "max"});
  for (const auto& [name, m] : merged.metrics) {
    t.row({name, ebrc::util::fmt(static_cast<double>(m.count()), 4),
           ebrc::util::fmt(m.mean(), 5), ebrc::util::fmt(m.ci_halfwidth(), 3),
           ebrc::util::fmt(m.min(), 5), ebrc::util::fmt(m.max(), 5)});
  }
  t.print("Merged " + std::to_string(parts.size()) + " summaries (" +
          std::to_string(merged.runs) + " runs) into " + out_path.string() + ":");
  return 0;
}

void usage() {
  std::cerr << "usage:\n"
            << "  merge_results --into=DIR SRC_DIR...    merge shard result caches into DIR\n"
            << "  merge_results --summaries=OUT FILE...  fold BatchResult summaries into OUT\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ebrc::util::Cli cli(argc, argv);
    cli.know("into").know("summaries").know("help");
    cli.finish();
    if (cli.has("help")) {
      usage();
      return 0;
    }
    const auto& positional = cli.positional();
    if (cli.has("into")) {
      const std::string into = cli.get("into", std::string{});
      if (into.empty() || positional.empty()) {
        usage();
        return 1;
      }
      return merge_caches(into, positional);
    }
    if (cli.has("summaries")) {
      const std::string out = cli.get("summaries", std::string{});
      if (out.empty() || positional.empty()) {
        usage();
        return 1;
      }
      return merge_summaries(out, positional);
    }
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "merge_results: " << e.what() << "\n";
    return 1;
  }
}
