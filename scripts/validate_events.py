#!/usr/bin/env python3
"""Strict validator for the sweep telemetry artifacts.

Two modes:

  validate_events.py EVENTS.jsonl [EVENTS2.jsonl ...]
      Validates --events-out feeds: every line is strict JSON, the first
      line is a version-2 schema header, timestamps are non-decreasing in
      file order, every cell_start is paired with exactly one terminal
      event for its (cell, attempt), and obs payloads are objects with
      finite numeric values.

  validate_events.py --trace TRACE.json [TRACE2.json ...]
      Validates --trace-out chrome://tracing exports: strict JSON, the
      traceEvents array, per-phase required fields, and non-negative
      microsecond timestamps/durations.

Exits 0 when every file passes, 1 with one line per problem otherwise.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

KNOWN_EVENTS = {
    "schema",
    "cell_start",
    "cell_done",
    "cell_failed",
    "cell_crashed",
    "cell_killed",
    "retry",
    "sweep_done",
}
TERMINAL_EVENTS = {"cell_done", "cell_failed", "cell_crashed", "cell_killed"}
CELL_EVENTS = TERMINAL_EVENTS | {"cell_start", "retry"}

REQUIRED_SCHEMA_FIELDS = {"ts", "event", "cell", "scenario", "seed", "attempt"}


def is_finite_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


class Errors:
    def __init__(self, path: str):
        self.path = path
        self.count = 0

    def add(self, lineno: int, msg: str) -> None:
        print(f"{self.path}:{lineno}: {msg}", file=sys.stderr)
        self.count += 1


def check_obs(obj: dict, err: Errors, lineno: int) -> None:
    obs = obj.get("obs")
    if obs is None:
        return
    if not isinstance(obs, dict):
        err.add(lineno, f'"obs" must be an object, got {type(obs).__name__}')
        return
    for key, value in obs.items():
        if not is_finite_number(value):
            err.add(lineno, f'obs["{key}"] must be a finite number, got {value!r}')


def validate_feed(path: str) -> int:
    err = Errors(path)
    try:
        with open(path, "rb") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        return 1

    if not raw_lines:
        err.add(0, "empty feed (schema header expected)")
        return err.count

    prev_ts = None
    # (cell, attempt) -> count of cell_start / terminal events seen.
    starts: dict[tuple[int, int], int] = {}
    terminals: dict[tuple[int, int], int] = {}
    sweep_done_seen = False

    for lineno, raw in enumerate(raw_lines, start=1):
        try:
            obj = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as e:
            err.add(lineno, f"not valid JSON: {e}")
            continue
        if not isinstance(obj, dict):
            err.add(lineno, "line is not a JSON object")
            continue

        ts = obj.get("ts")
        event = obj.get("event")
        if not is_finite_number(ts):
            err.add(lineno, f'"ts" must be a finite number, got {ts!r}')
        else:
            if prev_ts is not None and ts < prev_ts:
                err.add(lineno, f"ts went backwards: {ts} < {prev_ts}")
            prev_ts = ts
        if not isinstance(event, str):
            err.add(lineno, f'"event" must be a string, got {event!r}')
            continue
        if event not in KNOWN_EVENTS:
            err.add(lineno, f'unknown event "{event}"')
            continue

        if lineno == 1:
            if event != "schema":
                err.add(lineno, f'first line must be the schema header, got "{event}"')
            else:
                if obj.get("version") != 2:
                    err.add(lineno, f'schema version must be 2, got {obj.get("version")!r}')
                for key in ("events", "fields"):
                    if not isinstance(obj.get(key), str):
                        err.add(lineno, f'schema "{key}" must be a string of names')
            continue
        if event == "schema":
            err.add(lineno, "schema header repeated after line 1")
            continue

        if event == "sweep_done":
            if sweep_done_seen:
                err.add(lineno, "sweep_done emitted twice")
            sweep_done_seen = True
            if "cell" in obj:
                err.add(lineno, 'sweep-level event must not carry "cell"')
            check_obs(obj, err, lineno)
            continue

        # Cell-level events.
        missing = REQUIRED_SCHEMA_FIELDS - obj.keys()
        if missing:
            err.add(lineno, f'{event} missing fields: {sorted(missing)}')
            continue
        cell, attempt = obj["cell"], obj["attempt"]
        if not isinstance(cell, int) or isinstance(cell, bool) or cell < 0:
            err.add(lineno, f'"cell" must be a non-negative integer, got {cell!r}')
            continue
        if not isinstance(attempt, int) or isinstance(attempt, bool) or attempt < 0:
            err.add(lineno, f'"attempt" must be a non-negative integer, got {attempt!r}')
            continue
        if not isinstance(obj["scenario"], str):
            err.add(lineno, '"scenario" must be a string')
        if not isinstance(obj["seed"], int) or obj["seed"] < 0:
            err.add(lineno, '"seed" must be a non-negative integer')
        key = (cell, attempt)
        if event == "cell_start":
            starts[key] = starts.get(key, 0) + 1
            if starts[key] > 1:
                err.add(lineno, f"cell {cell} attempt {attempt} started twice")
        elif event in TERMINAL_EVENTS:
            terminals[key] = terminals.get(key, 0) + 1
            if key not in starts:
                err.add(lineno, f"{event} for cell {cell} attempt {attempt} without cell_start")
            elif terminals[key] > 1:
                err.add(lineno, f"cell {cell} attempt {attempt} terminated twice")
            if event == "cell_done" and "elapsed_s" not in obj:
                err.add(lineno, "cell_done must carry elapsed_s")
        elif event == "retry":
            if attempt < 1:
                err.add(lineno, "retry must carry attempt >= 1")
        check_obs(obj, err, lineno)

    for key in sorted(set(starts) - set(terminals)):
        err.add(len(raw_lines), f"cell {key[0]} attempt {key[1]} started but never terminated")
    if err.count == 0:
        cells = len({c for (c, _) in starts})
        print(
            f"{path}: OK ({len(raw_lines)} lines, {cells} cells, "
            f"{sum(terminals.values())} attempts terminated"
            f"{', sweep_done' if sweep_done_seen else ''})"
        )
    return err.count


def validate_trace(path: str) -> int:
    err = Errors(path)
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        return 1
    except ValueError as e:
        err.add(0, f"not valid JSON: {e}")
        return err.count

    if not isinstance(doc, dict):
        err.add(0, "top level must be an object")
        return err.count
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        err.add(0, '"traceEvents" must be an array')
        return err.count

    phase_counts: dict[str, int] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            err.add(0, f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            err.add(0, f"{where}: bad phase {ph!r}")
            continue
        phase_counts[ph] = phase_counts.get(ph, 0) + 1
        if ph == "M":
            if not isinstance(ev.get("name"), str):
                err.add(0, f"{where}: metadata event needs a name")
            continue
        for field in ("name", "pid", "ts"):
            if field not in ev:
                err.add(0, f"{where}: missing {field}")
        if is_finite_number(ev.get("ts")):
            if ev["ts"] < 0:
                err.add(0, f"{where}: negative ts")
        else:
            err.add(0, f"{where}: ts must be a finite number")
        if ph == "X":
            if not is_finite_number(ev.get("dur")) or ev["dur"] < 0:
                err.add(0, f"{where}: X event needs non-negative dur")
        elif ph == "C":
            if not isinstance(ev.get("args"), dict):
                err.add(0, f"{where}: counter event needs args")

    if phase_counts.get("X", 0) == 0:
        err.add(0, "no complete ('X') span events — empty trace?")
    if err.count == 0:
        phases = " ".join(f"{k}={v}" for k, v in sorted(phase_counts.items()))
        print(f"{path}: OK ({len(events)} trace events; {phases})")
    return err.count


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="feed .jsonl files (or trace .json with --trace)")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="validate chrome://tracing JSON exports instead of JSONL feeds",
    )
    args = parser.parse_args()

    problems = 0
    for path in args.files:
        problems += validate_trace(path) if args.trace else validate_feed(path)
    return 0 if problems == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
