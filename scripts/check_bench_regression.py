#!/usr/bin/env python3
"""Fail CI when a benchmark throughput regresses versus a committed baseline.

Compares per-workload throughput (events_per_sec for the kernel bench, pps
for the packet-path bench) of a freshly produced BENCH_*.json against a
baseline JSON committed under bench/baselines/. A workload fails when

    current < (1 - tolerance) * baseline

Baselines are set deliberately LOW (roughly a third of a quiet dev box) so
the gate trips on structural regressions — an accidental O(n) in the hot
path, a lost inline fast path — rather than on shared-runner noise; the
default tolerance adds a further 25% slack on top.

Usage:
    check_bench_regression.py --current BENCH_net.json \
        --baseline bench/baselines/BENCH_net.baseline.json [--tolerance 0.25]
"""

import argparse
import json
import sys

THROUGHPUT_KEYS = ("events_per_sec", "pps")


def throughput(workload: dict) -> tuple[str, float]:
    for key in THROUGHPUT_KEYS:
        if key in workload:
            return key, float(workload[key])
    raise KeyError(f"workload {workload.get('name')!r} has no throughput key "
                   f"(expected one of {THROUGHPUT_KEYS})")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True, help="freshly measured BENCH_*.json")
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression versus baseline (default 0.25)")
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    current_by_name = {w["name"]: w for w in current.get("workloads", []) if "name" in w}
    failures = []
    print(f"[bench-gate] {args.current} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    for base_wl in baseline.get("workloads", []):
        name = base_wl.get("name")
        if name is None:
            failures.append(f"baseline entry without a 'name' key: {base_wl!r}")
            continue
        cur_wl = current_by_name.get(name)
        if cur_wl is None:
            failures.append(f"{name}: missing from {args.current}")
            continue
        # A malformed or renamed-key workload entry is a clear per-workload
        # failure, not a traceback: report it and keep checking the rest so
        # one bad entry cannot mask other regressions.
        try:
            key, base_val = throughput(base_wl)
        except KeyError as e:
            failures.append(f"{name}: baseline entry unusable — {e.args[0]}")
            continue
        try:
            _, cur_val = throughput(cur_wl)
        except KeyError as e:
            failures.append(f"{name}: current entry unusable — {e.args[0]}")
            continue
        floor = (1.0 - args.tolerance) * base_val
        status = "ok" if cur_val >= floor else "REGRESSED"
        print(f"  {name:>16}  {key}: {cur_val:>12.0f}  "
              f"(baseline {base_val:.0f}, floor {floor:.0f})  {status}")
        if cur_val < floor:
            failures.append(f"{name}: {key} {cur_val:.0f} < floor {floor:.0f}")

    if failures:
        print("[bench-gate] FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("[bench-gate] all workloads at or above the regression floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
