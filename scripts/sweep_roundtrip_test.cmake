# End-to-end assertion for the sweep persistence layer, run as a ctest
# target (see CMakeLists.txt). Drives a real figure binary through the three
# workflows that must agree bit-for-bit on stdout:
#
#   1. cold run   — every cell simulated, cache populated
#   2. warm run   — zero simulations, all cells loaded from the cache
#   3. 2 shards into separate caches, folded with merge_results --into,
#      then an unsharded pass over the merged cache (zero simulations)
#   4. fault-injected keep-going run (3 cells fail, manifest written), then
#      a fault-free resume that simulates only those 3 cells and reproduces
#      the clean cold stdout bit-for-bit; fail-fast aborts naming the cell
#   5. --isolate=process: cold and warm isolated runs match the in-process
#      stdout bit-for-bit (warm forks nothing); a crash/hang/throw-injected
#      isolated sweep survives all three worker deaths, attributes them in
#      the v2 manifest (signal numbers), drops repro bundles, streams the
#      JSONL event feed, and resumes fault-free to the clean cold stdout
#   6. observability is result-neutral: a --probe-interval + --trace-out run
#      over the unprobed cache is simulation-free (same fingerprints), a cold
#      probed run writes cache entries an unprobed warm run replays
#      bit-for-bit, and the figure output is a byte-exact prefix of the
#      probed run's (the probe table is purely additive)
#
# Inputs: -DFIGURE=<bench binary> -DMERGE_TOOL=<merge_results binary>
#         -DWORK_DIR=<scratch dir>
#         -DCELLS=<total sweep cells at --reps=2> (default 20, the fig16 grid;
#          the churn driver registers a second instance with its own count)
# Also asserts the unknown-flag error names the new sweep flags.

foreach(var FIGURE MERGE_TOOL WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sweep_roundtrip_test: missing -D${var}")
  endif()
endforeach()

if(NOT DEFINED CELLS)
  set(CELLS 20)
endif()
math(EXPR HALF "${CELLS} / 2")

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Small but real: the reduced fig16 grid at a short horizon (20 scenarios).
set(ARGS --reps=2 --jobs=2 --seed=3 --duration=8)

function(run_figure out_var err_var)
  execute_process(
    COMMAND ${FIGURE} ${ARGS} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "figure run failed (${code}): ${FIGURE} ${ARGS} ${ARGN}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

# --- 1+2: cold then warm against the same cache -------------------------------
run_figure(cold_out cold_err --cache=${WORK_DIR}/cache)
if(NOT cold_err MATCHES "simulated=${CELLS}")
  message(FATAL_ERROR "cold run did not simulate the full sweep:\n${cold_err}")
endif()

run_figure(warm_out warm_err --cache=${WORK_DIR}/cache)
if(NOT warm_err MATCHES "hits=${CELLS} simulated=0")
  message(FATAL_ERROR "warm-cache run was not simulation-free:\n${warm_err}")
endif()
if(NOT cold_out STREQUAL warm_out)
  message(FATAL_ERROR "warm-cache stdout differs from cold run")
endif()

# --- 3: two shards, separate caches, merged by the tool -----------------------
run_figure(s0_out s0_err --cache=${WORK_DIR}/shard0 --shard-index=0 --shard-count=2
           --summary-out=${WORK_DIR}/sum0.txt)
run_figure(s1_out s1_err --cache=${WORK_DIR}/shard1 --shard-index=1 --shard-count=2
           --summary-out=${WORK_DIR}/sum1.txt)
foreach(err IN ITEMS "${s0_err}" "${s1_err}")
  if(NOT err MATCHES "simulated=${HALF} skipped=${HALF}")
    message(FATAL_ERROR "shard did not simulate exactly its half:\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${MERGE_TOOL} --into=${WORK_DIR}/merged ${WORK_DIR}/shard0 ${WORK_DIR}/shard1
  RESULT_VARIABLE merge_code
  OUTPUT_VARIABLE merge_out
  ERROR_VARIABLE merge_err)
if(NOT merge_code EQUAL 0)
  message(FATAL_ERROR "merge_results failed: ${merge_out}${merge_err}")
endif()
if(NOT merge_out MATCHES "copied=${CELLS}")
  message(FATAL_ERROR "merge_results did not fold both shards: ${merge_out}")
endif()

run_figure(merged_out merged_err --cache=${WORK_DIR}/merged)
if(NOT merged_err MATCHES "hits=${CELLS} simulated=0")
  message(FATAL_ERROR "merged-cache run was not simulation-free:\n${merged_err}")
endif()
if(NOT cold_out STREQUAL merged_out)
  message(FATAL_ERROR "2-shard merged stdout differs from the unsharded run")
endif()

# --- summary fold -------------------------------------------------------------
execute_process(
  COMMAND ${MERGE_TOOL} --summaries=${WORK_DIR}/summary.txt ${WORK_DIR}/sum0.txt
          ${WORK_DIR}/sum1.txt
  RESULT_VARIABLE sum_code
  OUTPUT_VARIABLE sum_out
  ERROR_VARIABLE sum_err)
if(NOT sum_code EQUAL 0 OR NOT sum_out MATCHES "${CELLS} runs")
  message(FATAL_ERROR "summary fold failed: ${sum_out}${sum_err}")
endif()

# --- 4: fault-injected keep-going sweep, then resume --------------------------
# Three cells fail persistently (two throws, one deadline overrun); the sweep
# must complete the rest, write a 3-entry failure manifest, and a fault-free
# resume over the same cache must simulate ONLY those 3 cells and reproduce
# the clean cold stdout bit-for-bit.
math(EXPR HEALTHY "${CELLS} - 3")
run_figure(fault_out fault_err --cache=${WORK_DIR}/fault-cache --keep-going
           --max-retries=1 --cell-deadline=600
           --inject-faults=throw@1:*,throw@4:*,timeout@2:*
           --summary-out=${WORK_DIR}/fault-sum.txt)
if(NOT fault_err MATCHES "failed=3 retried=3 timed_out=1")
  message(FATAL_ERROR "keep-going sweep did not isolate the injected faults:\n${fault_err}")
endif()
if(NOT fault_err MATCHES "simulated=${HEALTHY}")
  message(FATAL_ERROR "keep-going sweep lost healthy cells:\n${fault_err}")
endif()
if(NOT EXISTS "${WORK_DIR}/fault-sum.txt.failures")
  message(FATAL_ERROR "keep-going sweep wrote no failure manifest")
endif()
file(READ "${WORK_DIR}/fault-sum.txt.failures" manifest)
if(NOT manifest MATCHES "failures 3")
  message(FATAL_ERROR "failure manifest does not list exactly 3 cells:\n${manifest}")
endif()

run_figure(resume_out resume_err --cache=${WORK_DIR}/fault-cache)
if(NOT resume_err MATCHES "hits=${HEALTHY} simulated=3")
  message(FATAL_ERROR "resume did not simulate exactly the failed cells:\n${resume_err}")
endif()
if(NOT cold_out STREQUAL resume_out)
  message(FATAL_ERROR "resumed sweep stdout differs from the clean cold run")
endif()

# --- 5: process isolation (--isolate=process) ---------------------------------
# Cold isolated run: every cell simulates in a forked worker, stdout must be
# bit-identical to the in-process cold run.
run_figure(iso_out iso_err --cache=${WORK_DIR}/iso-cache --isolate=process)
if(NOT iso_err MATCHES "simulated=${CELLS}")
  message(FATAL_ERROR "isolated cold run did not simulate the full sweep:\n${iso_err}")
endif()
if(NOT cold_out STREQUAL iso_out)
  message(FATAL_ERROR "--isolate=process stdout differs from the in-process cold run")
endif()

# Warm isolated run: the parent-side cache probes answer everything — zero
# simulations means zero forks.
run_figure(iso_warm_out iso_warm_err --cache=${WORK_DIR}/iso-cache --isolate=process)
if(NOT iso_warm_err MATCHES "hits=${CELLS} simulated=0")
  message(FATAL_ERROR "warm isolated run was not simulation-free:\n${iso_warm_err}")
endif()
if(NOT cold_out STREQUAL iso_warm_out)
  message(FATAL_ERROR "warm isolated stdout differs from the cold run")
endif()

# Crash/hang/throw containment: a worker that aborts (SIGABRT), a worker that
# hangs until the SIGKILL deadline, and a clean in-worker throw. The sweep
# survives all three, attributes each correctly in the manifest, drops repro
# bundles for the abnormal deaths, and streams the JSONL event feed.
run_figure(crash_out crash_err --cache=${WORK_DIR}/iso-fault-cache --keep-going
           --isolate=process --cell-deadline=60
           --inject-faults=crash@1:*,hang@2:*,throw@4:*
           --summary-out=${WORK_DIR}/iso-sum.txt
           --events-out=${WORK_DIR}/iso-events.jsonl)
if(NOT crash_err MATCHES "failed=3 retried=0 timed_out=1 crashed=1")
  message(FATAL_ERROR "isolated sweep did not contain the injected faults:\n${crash_err}")
endif()
if(NOT crash_err MATCHES "simulated=${HEALTHY}")
  message(FATAL_ERROR "isolated faulted sweep lost healthy cells:\n${crash_err}")
endif()
file(READ "${WORK_DIR}/iso-sum.txt.failures" iso_manifest)
if(NOT iso_manifest MATCHES "failures 3")
  message(FATAL_ERROR "isolated manifest does not list exactly 3 cells:\n${iso_manifest}")
endif()
if(NOT iso_manifest MATCHES "cell 1 [^\n]* crashed 1 signal 6")
  message(FATAL_ERROR "crashed worker not attributed as SIGABRT:\n${iso_manifest}")
endif()
if(NOT iso_manifest MATCHES "cell 2 [^\n]* timed_out 1 crashed 0 signal 9")
  message(FATAL_ERROR "hung worker not attributed as a SIGKILL timeout:\n${iso_manifest}")
endif()
foreach(cell IN ITEMS 1 2)
  foreach(f IN ITEMS scenario.toml stderr.txt status.txt repro.txt)
    if(NOT EXISTS "${WORK_DIR}/iso-sum.txt.crashes/cell-${cell}/${f}")
      message(FATAL_ERROR "missing repro bundle file: cell-${cell}/${f}")
    endif()
  endforeach()
endforeach()
file(READ "${WORK_DIR}/iso-events.jsonl" iso_events)
foreach(ev IN ITEMS cell_start cell_done cell_crashed cell_killed cell_failed)
  if(NOT iso_events MATCHES "\"event\":\"${ev}\"")
    message(FATAL_ERROR "event feed is missing ${ev}:\n${iso_events}")
  endif()
endforeach()

# Fault-free in-process resume over the isolated cache: only the 3 failed
# cells simulate, and stdout converges to the clean cold run bit-for-bit.
run_figure(iso_resume_out iso_resume_err --cache=${WORK_DIR}/iso-fault-cache)
if(NOT iso_resume_err MATCHES "hits=${HEALTHY} simulated=3")
  message(FATAL_ERROR "isolated resume did not simulate exactly the failed cells:\n${iso_resume_err}")
endif()
if(NOT cold_out STREQUAL iso_resume_out)
  message(FATAL_ERROR "isolated-crash resume stdout differs from the clean cold run")
endif()

# --- 6: the obs layer is result-neutral ---------------------------------------
# A probed + traced run over the unprobed warm cache must hit every cell:
# --probe-interval and --trace-out are excluded from the cache fingerprint
# because they cannot change results.
run_figure(probed_out probed_err --cache=${WORK_DIR}/cache
           --probe-interval=0.5 --trace-out=${WORK_DIR}/trace.json
           --events-out=${WORK_DIR}/probed-events.jsonl)
if(NOT probed_err MATCHES "hits=${CELLS} simulated=0")
  message(FATAL_ERROR "probed warm run re-simulated cached cells — the probe leaked into the fingerprint:\n${probed_err}")
endif()
if(NOT EXISTS "${WORK_DIR}/trace.json")
  message(FATAL_ERROR "probed run wrote no chrome trace")
endif()
file(READ "${WORK_DIR}/trace.json" trace_json)
if(NOT trace_json MATCHES "traceEvents")
  message(FATAL_ERROR "trace.json is not a chrome://tracing export:\n${trace_json}")
endif()

# A cold probed run must write cache entries an unprobed warm run replays
# bit-for-bit — the probe's presence never perturbs the simulated results.
run_figure(probed_cold_out probed_cold_err --cache=${WORK_DIR}/probed-cache
           --probe-interval=0.5)
if(NOT probed_cold_err MATCHES "simulated=${CELLS}")
  message(FATAL_ERROR "probed cold run did not simulate the full sweep:\n${probed_cold_err}")
endif()
string(FIND "${probed_cold_out}" "${cold_out}" prefix_at)
if(NOT prefix_at EQUAL 0)
  message(FATAL_ERROR "probed stdout does not start with the unprobed figure output")
endif()
if(NOT probed_cold_out MATCHES "\\[probe\\] cell")
  message(FATAL_ERROR "probed cold run printed no probe series table:\n${probed_cold_out}")
endif()
run_figure(probed_warm_out probed_warm_err --cache=${WORK_DIR}/probed-cache)
if(NOT probed_warm_err MATCHES "hits=${CELLS} simulated=0")
  message(FATAL_ERROR "unprobed run over the probed cache re-simulated — probed payloads differ:\n${probed_warm_err}")
endif()
if(NOT cold_out STREQUAL probed_warm_out)
  message(FATAL_ERROR "unprobed replay of probed cache entries differs from the clean cold run")
endif()

# Fail-fast (the default) must abort on the first injected fault and name
# the failing cell in the error.
execute_process(
  COMMAND ${FIGURE} ${ARGS} --inject-faults=throw@1:*
  RESULT_VARIABLE ff_code
  OUTPUT_VARIABLE ff_out
  ERROR_VARIABLE ff_err)
if(ff_code EQUAL 0 OR NOT ff_err MATCHES "sweep cell #1")
  message(FATAL_ERROR "fail-fast did not abort naming the cell: ${ff_err}")
endif()

# --- CLI guard rails ----------------------------------------------------------
# A missing merge source must fail with a one-line error naming the path,
# not a traceback or a silent empty merge.
execute_process(
  COMMAND ${MERGE_TOOL} --into=${WORK_DIR}/merged-missing ${WORK_DIR}/no-such-shard
  RESULT_VARIABLE missing_code
  OUTPUT_VARIABLE missing_out
  ERROR_VARIABLE missing_err)
if(missing_code EQUAL 0 OR NOT missing_err MATCHES "no-such-shard' is not a directory")
  message(FATAL_ERROR "merge_results did not reject a missing source dir: ${missing_err}")
endif()

execute_process(
  COMMAND ${FIGURE} --duration=8 --shard-index=2 --shard-count=2
  RESULT_VARIABLE bad_code
  OUTPUT_VARIABLE bad_out
  ERROR_VARIABLE bad_err)
if(bad_code EQUAL 0 OR NOT bad_err MATCHES "--shard-index \\(2\\) must be < --shard-count")
  message(FATAL_ERROR "out-of-range shard index not rejected: ${bad_err}")
endif()

execute_process(
  COMMAND ${FIGURE} --bogus-flag
  RESULT_VARIABLE unknown_code
  OUTPUT_VARIABLE unknown_out
  ERROR_VARIABLE unknown_err)
if(unknown_code EQUAL 0 OR NOT unknown_err MATCHES "--shard-index" OR
   NOT unknown_err MATCHES "--cache")
  message(FATAL_ERROR "unknown-flag listing misses the sweep flags: ${unknown_err}")
endif()

message(STATUS "sweep persistence round-trip OK: cold == warm == 2-shard merged == faulted+resumed")
