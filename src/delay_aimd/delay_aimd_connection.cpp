#include "delay_aimd/delay_aimd_connection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ebrc::delay_aimd {

DelayAimdConnection::DelayAimdConnection(net::Dumbbell& net, int flow_id, double base_rtt_s,
                                         DelayAimdConfig cfg)
    : net_(net),
      flow_(flow_id),
      base_rtt_s_(base_rtt_s),
      cfg_(cfg),
      send_ev_(net.simulator().pin([this] { send_next(); })),
      feedback_ev_(net.simulator().pin([this] { feedback_tick(); })),
      recorder_(base_rtt_s) {
  if (base_rtt_s <= 0) throw std::invalid_argument("DelayAimdConnection: base RTT must be > 0");
  if (cfg_.initial_rate <= util::DataRate::zero() || cfg_.packet_bytes <= 0 ||
      cfg_.beta <= 0.0 || cfg_.beta > 1.0 || cfg_.increase_factor < 1.0) {
    throw std::invalid_argument("DelayAimdConnection: bad configuration");
  }
  snd_.rate = cfg_.initial_rate;
  snd_.srtt = base_rtt_s;
  snd_.threshold = cfg_.initial_threshold;
  rcv_.rtt_hint = base_rtt_s;
  net_.on_data_at_receiver(flow_, [this](const net::Packet& p) { on_data(p); });
  net_.on_packet_at_sender(flow_, [this](const net::Packet& p) { on_feedback(p); });
}

void DelayAimdConnection::start(double at) {
  net_.simulator().schedule_at(at, [this] {
    snd_.running = true;
    send_next();
  });
}

void DelayAimdConnection::stop() { snd_.running = false; }

void DelayAimdConnection::open(std::uint64_t transfer_packets, CompletionFn on_complete) {
  reset_transfer_state();
  snd_.transfer_limit = transfer_packets;
  done_ = std::move(on_complete);
  snd_.running = true;
  // Reuse a pacing chain still armed from the previous incarnation; either
  // way exactly one chain is live (same guard discipline as TFRC).
  if (!snd_.pacing_armed) {
    snd_.pacing_armed = true;
    net_.simulator().schedule_pinned(0.0, send_ev_);
  }
}

void DelayAimdConnection::close() {
  snd_.running = false;
  done_ = CompletionFn{};
}

void DelayAimdConnection::finish_transfer() {
  snd_.running = false;
  ++transfers_completed_;
  if (done_) {
    CompletionFn done = std::move(done_);
    done_ = CompletionFn{};
    done();
  }
}

void DelayAimdConnection::reset_transfer_state() {
  // Wholesale POD rewind; the chain guards survive it (see TFRC's idiom).
  // min_rtt and the detector threshold are per-transfer: a pool slot's next
  // incarnation may live on a different path.
  const bool pacing = snd_.pacing_armed;
  const bool feedback = snd_.feedback_armed;
  snd_ = SenderState{};
  snd_.rate = cfg_.initial_rate;
  snd_.srtt = base_rtt_s_;
  snd_.threshold = cfg_.initial_threshold;
  snd_.pacing_armed = pacing;
  snd_.feedback_armed = feedback;
  rcv_ = ReceiverState{};
  rcv_.rtt_hint = base_rtt_s_;
  recorder_.set_rtt_window(base_rtt_s_);
}

void DelayAimdConnection::reset_counters() {
  sent_ = 0;
  delivered_ = 0;
  qdelay_sum_s_ = 0.0;
  qdelay_samples_ = 0;
}

// --------------------------------------------------------------- sender ----

void DelayAimdConnection::send_next() {
  if (!snd_.running) {
    snd_.pacing_armed = false;  // the chain dies here; open() may start a new one
    return;
  }
  net::Packet p;
  p.seq = snd_.next_seq++;
  p.size_bytes = cfg_.packet_bytes;
  p.send_time = net_.simulator().now();
  p.data.rtt_hint = snd_.srtt;
  net_.send_data(flow_, p);
  ++sent_;
  ++snd_.transfer_sent;
  if (snd_.transfer_limit != 0 && snd_.transfer_sent >= snd_.transfer_limit) {
    // Paced unreliable stream, like TFRC: the source is done the moment it
    // emits its last packet; the pacing chain ends with it.
    snd_.pacing_armed = false;
    finish_transfer();
    return;
  }
  snd_.pacing_armed = true;
  net_.simulator().schedule_pinned(snd_.rate.packet_interval().seconds(), send_ev_);
}

void DelayAimdConnection::on_feedback(const net::Packet& p) {
  if (!snd_.running || p.kind != net::PacketKind::kFeedback) return;
  const double now = net_.simulator().now();

  const double sample_s = now - p.fb.echo_time;
  if (sample_s <= 0) return;
  const auto sample = util::TimeDelta::seconds(sample_s);

  if (snd_.srtt <= 0) {
    snd_.srtt = sample_s;
  } else {
    snd_.srtt = cfg_.rtt_smoothing * snd_.srtt + (1.0 - cfg_.rtt_smoothing) * sample_s;
  }
  if (now >= next_rtt_sample_at_) {
    rtt_stats_.add(sample_s);
    next_rtt_sample_at_ = now + snd_.srtt;
  }

  // Queuing delay: the sample's excess over the per-transfer RTT floor.
  if (snd_.min_rtt.is_zero() || sample < snd_.min_rtt) snd_.min_rtt = sample;
  const util::TimeDelta qdelay = sample - snd_.min_rtt;
  qdelay_sum_s_ += qdelay.seconds();
  ++qdelay_samples_;

  // Adaptive overuse threshold (goog_cc): chase the observed queuing delay
  // fast when exceeded, decay toward it slowly otherwise.
  // dt capped at 100 ms, as in goog_cc: a long feedback gap must not let one
  // adaptation step overshoot the target.
  const double dt_ms = snd_.last_feedback_time > 0
                           ? std::min(100.0, (now - snd_.last_feedback_time) * 1e3)
                           : 0.0;
  const double k = qdelay > snd_.threshold ? cfg_.k_up : cfg_.k_down;
  snd_.threshold = util::min(
      cfg_.max_threshold,
      util::max(cfg_.min_threshold,
                snd_.threshold + k * dt_ms * (qdelay - snd_.threshold)));
  snd_.last_feedback_time = now;

  const bool overuse = qdelay > snd_.threshold;
  const auto recv_rate = util::DataRate::packets_per_second(std::max(0.0, p.fb.recv_rate));

  if (overuse) {
    snd_.state = RateState::kDecrease;
  } else if (snd_.state == RateState::kDecrease) {
    snd_.state = RateState::kHold;  // one interval of hold after backing off
  } else {
    snd_.state = RateState::kIncrease;
  }

  switch (snd_.state) {
    case RateState::kDecrease: {
      if (recv_rate > util::DataRate::zero()) {
        // The delivered rate during overuse IS a link-capacity sample; track
        // its EWMA mean and variance for the near-capacity test below.
        const double err = recv_rate.pps() - snd_.capacity.pps();
        if (snd_.capacity.is_zero()) {
          snd_.capacity = recv_rate;
        } else {
          snd_.capacity = snd_.capacity + util::DataRate::packets_per_second(0.05 * err);
        }
        snd_.capacity_var = 0.95 * snd_.capacity_var + 0.05 * err * err;
        snd_.rate = cfg_.beta * recv_rate;
      } else {
        snd_.rate = cfg_.beta * snd_.rate;
      }
      break;
    }
    case RateState::kHold:
      break;
    case RateState::kIncrease: {
      if (snd_.capacity.is_zero()) {
        // No capacity estimate yet (no overuse seen): slow-start like TFRC,
        // doubling per feedback capped at twice the delivered rate.
        snd_.rate = snd_.rate * 2.0;
        if (recv_rate > util::DataRate::zero()) {
          snd_.rate = util::min(snd_.rate, 2.0 * recv_rate);
        }
      } else {
        const double sigma = std::sqrt(std::max(0.0, snd_.capacity_var));
        const bool near_capacity =
            snd_.rate.pps() >= snd_.capacity.pps() - 3.0 * sigma;
        if (near_capacity) {
          // Additive: one packet per RTT, the classic AIMD probe.
          snd_.rate = snd_.rate + util::DataRate::packets_per_second(
                                      1.0 / std::max(1e-3, snd_.srtt));
        } else {
          snd_.rate = snd_.rate * cfg_.increase_factor;
        }
        if (recv_rate > util::DataRate::zero()) {
          snd_.rate = util::min(snd_.rate, 1.5 * recv_rate);
        }
      }
      break;
    }
  }
  snd_.rate = util::max(snd_.rate, cfg_.min_rate);
  recorder_.note_rate(snd_.rate.pps());
}

// ------------------------------------------------------------- receiver ----

void DelayAimdConnection::on_data(const net::Packet& p) {
  const double now = net_.simulator().now();
  if (p.data.rtt_hint > 0) rcv_.rtt_hint = p.data.rtt_hint;
  recorder_.set_rtt_window(rcv_.rtt_hint);

  const std::int64_t missing = std::max<std::int64_t>(0, p.seq - rcv_.expected_seq);
  if (p.seq >= rcv_.expected_seq) rcv_.expected_seq = p.seq + 1;
  for (std::int64_t i = 0; i < missing; ++i) recorder_.on_loss(now);
  recorder_.on_packet(now);
  ++delivered_;
  ++rcv_.recv_since_feedback;
  rcv_.last_data_send_time = p.send_time;

  if (!rcv_.started) {
    rcv_.started = true;
    rcv_.last_feedback_time = now;
    if (!snd_.feedback_armed) {
      snd_.feedback_armed = true;
      net_.simulator().schedule_pinned(std::max(1e-3, rcv_.rtt_hint), feedback_ev_);
    }
  }
}

void DelayAimdConnection::feedback_tick() {
  if (!snd_.running) {
    snd_.feedback_armed = false;  // chain dies; the next incarnation re-arms
    return;
  }
  const double now = net_.simulator().now();
  if (rcv_.recv_since_feedback > 0) {
    net::Packet report;
    report.kind = net::PacketKind::kFeedback;
    report.size_bytes = 40.0;
    report.send_time = now;
    const double elapsed = std::max(1e-9, now - rcv_.last_feedback_time);
    report.fb = {/*mean_interval=*/0.0,  // no loss-interval estimator here
                 /*recv_rate=*/static_cast<double>(rcv_.recv_since_feedback) / elapsed,
                 /*echo_time=*/rcv_.last_data_send_time};
    net_.send_back(flow_, report);
    rcv_.recv_since_feedback = 0;
    rcv_.last_feedback_time = now;
  }
  snd_.feedback_armed = true;
  net_.simulator().schedule_pinned(std::max(1e-3, rcv_.rtt_hint), feedback_ev_);
}

}  // namespace ebrc::delay_aimd
