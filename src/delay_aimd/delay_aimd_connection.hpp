// Delay-based AIMD rate control in the goog_cc style: the sender watches
// queuing delay (RTT sample minus the per-transfer minimum RTT), detects
// overuse against an adaptive threshold, and runs a Hold/Increase/Decrease
// state machine with link-capacity estimation — multiplicative decrease to
// beta times the delivered rate on overuse, additive increase near the
// capacity estimate, multiplicative increase far below it.
//
// Unlike TFRC/TCP this controller SEES the queue: it backs off before losses
// happen and exports queuing-delay telemetry (sum + sample count) that
// loss-based metrics cannot, which is the whole point of putting it in the
// controller matrix.
//
// Wire protocol: data packets carry the sender's smoothed RTT as a hint (the
// receiver paces feedback off it, like TFRC); the receiver sends one
// kFeedback report per RTT with mean_interval = 0 (no loss-interval
// estimator here), the measured receive rate, and the echo timestamp the
// sender turns into an RTT sample.
//
// Interfaces use the typed units of util/units.hpp (DataRate, TimeDelta) so
// a rate can't be accidentally fed where a delay belongs; the compiler
// enforces what a double-typed API leaves to code review.
#pragma once

#include <cstdint>
#include <type_traits>

#include "net/dumbbell.hpp"
#include "stats/loss_events.hpp"
#include "stats/online.hpp"
#include "util/units.hpp"

namespace ebrc::delay_aimd {

struct DelayAimdConfig {
  double packet_bytes = 1000.0;
  util::DataRate initial_rate = util::DataRate::packets_per_second(2.0);
  util::DataRate min_rate = util::DataRate::packets_per_second(0.1);
  /// Multiplicative-decrease factor applied to the delivered rate on overuse.
  double beta = 0.85;
  /// Multiplicative-increase factor when far below the capacity estimate.
  double increase_factor = 1.08;
  /// Overuse threshold adaptation (goog_cc): the threshold chases |queuing
  /// delay| fast when exceeded (k_up) and decays slowly otherwise (k_down),
  /// bounded to [min_threshold, max_threshold].
  util::TimeDelta min_threshold = util::TimeDelta::millis(2.0);
  util::TimeDelta max_threshold = util::TimeDelta::millis(600.0);
  util::TimeDelta initial_threshold = util::TimeDelta::millis(12.5);
  double k_up = 0.01;
  double k_down = 0.00018;
  /// EWMA coefficient for the RTT estimate (same convention as TFRC).
  double rtt_smoothing = 0.9;
};

class DelayAimdConnection {
 public:
  using CompletionFn = sim::InlineFunction<void(), 24>;

  DelayAimdConnection(net::Dumbbell& net, int flow_id, double base_rtt_s,
                      DelayAimdConfig cfg = {});

  // Registers this-capturing handlers and pinned events at construction;
  // the object must stay at its construction address.
  DelayAimdConnection(const DelayAimdConnection&) = delete;
  DelayAimdConnection& operator=(const DelayAimdConnection&) = delete;

  void start(double at);
  void stop();

  // --- pooled lifecycle (Sender concept; see workload/sender.hpp) --------
  void open(std::uint64_t transfer_packets, CompletionFn on_complete = {});
  void close();
  [[nodiscard]] bool active() const noexcept { return snd_.running; }
  [[nodiscard]] std::uint64_t transfers_completed() const noexcept {
    return transfers_completed_;
  }

  // --- measurement -------------------------------------------------------
  [[nodiscard]] const stats::LossEventRecorder& recorder() const noexcept { return recorder_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] double srtt() const noexcept { return snd_.srtt; }
  [[nodiscard]] const stats::OnlineMoments& rtt_stats() const noexcept { return rtt_stats_; }
  /// Cumulative queuing-delay telemetry: one sample per feedback, taken as
  /// (RTT sample - per-transfer min RTT). Survives open()/close() cycles.
  [[nodiscard]] double queuing_delay_sum_s() const noexcept { return qdelay_sum_s_; }
  [[nodiscard]] std::uint64_t queuing_delay_samples() const noexcept { return qdelay_samples_; }
  void reset_counters();

  // --- typed-unit surface --------------------------------------------------
  [[nodiscard]] util::DataRate target_rate() const noexcept { return snd_.rate; }
  [[nodiscard]] util::DataRate link_capacity_estimate() const noexcept {
    return snd_.capacity;
  }
  [[nodiscard]] util::TimeDelta min_round_trip() const noexcept { return snd_.min_rtt; }
  [[nodiscard]] util::TimeDelta overuse_threshold() const noexcept { return snd_.threshold; }

 private:
  enum class RateState : std::uint8_t { kHold, kIncrease, kDecrease };

  void send_next();
  void on_feedback(const net::Packet& p);
  void finish_transfer();
  void reset_transfer_state();
  void on_data(const net::Packet& p);
  void feedback_tick();

  net::Dumbbell& net_;
  int flow_;
  double base_rtt_s_;
  DelayAimdConfig cfg_;

  sim::Simulator::PinnedEvent send_ev_;
  sim::Simulator::PinnedEvent feedback_ev_;

  /// Per-transfer sender hot state (pacing + rate control + detector). The
  /// typed units are 8-byte trivially-copyable wrappers, so they live in the
  /// POD rewind block directly. Chain guards survive the rewind (see
  /// reset_transfer_state / open).
  struct SenderState {
    util::DataRate rate;        // current pacing rate
    util::DataRate capacity;    // link-capacity EWMA (0 = no estimate yet)
    double capacity_var = 0.0;  // EWMA variance of capacity samples (pps^2)
    double srtt = 0.0;
    util::TimeDelta min_rtt;    // per-transfer floor (0 = no sample yet)
    util::TimeDelta threshold;  // adaptive overuse threshold
    double last_feedback_time = 0.0;
    std::int64_t next_seq = 0;
    std::uint64_t transfer_limit = 0;
    std::uint64_t transfer_sent = 0;
    RateState state = RateState::kHold;
    bool running = false;
    bool pacing_armed = false;
    bool feedback_armed = false;
  };
  static_assert(sizeof(SenderState) == 88, "DelayAimd sender hot state outgrew its budget");
  static_assert(std::is_trivially_copyable_v<SenderState>);

  /// Per-transfer receiver hot state, same idiom as TFRC's.
  struct ReceiverState {
    std::int64_t expected_seq = 0;
    double rtt_hint = 0.0;
    double last_feedback_time = 0.0;
    double last_data_send_time = 0.0;
    std::uint64_t recv_since_feedback = 0;
    bool started = false;
  };
  static_assert(sizeof(ReceiverState) == 48, "DelayAimd receiver hot state outgrew its budget");
  static_assert(std::is_trivially_copyable_v<ReceiverState>);

  SenderState snd_;
  ReceiverState rcv_;

  std::uint64_t transfers_completed_ = 0;
  CompletionFn done_;

  // cumulative counters (survive open()/close())
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  double qdelay_sum_s_ = 0.0;
  std::uint64_t qdelay_samples_ = 0;

  stats::LossEventRecorder recorder_;
  stats::OnlineMoments rtt_stats_;
  double next_rtt_sample_at_ = 0.0;
};

}  // namespace ebrc::delay_aimd
