#include "sim/random.hpp"

#include <cassert>
#include <cmath>
#include <random>
#include <stdexcept>

namespace ebrc::sim {

std::uint64_t hash_seed(std::uint64_t root, std::string_view component) {
  // FNV-1a over the component name, folded with the root seed.
  std::uint64_t h = 14695981039346656037ull ^ root;
  for (unsigned char c : component) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Final avalanche (splitmix64 finalizer) so nearby roots diverge.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

Rng Rng::split(std::string_view component) const {
  // Derive a child seed from this engine's *initial* configuration: we use a
  // copy so splitting never disturbs this generator's own stream.
  Xoshiro256pp probe = engine_;
  const std::uint64_t salt = probe();
  return Rng(hash_seed(salt, component));
}

double Rng::exponential_mean(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential_mean: mean must be > 0");
  // Inverse CDF on 1-u with u in [0,1): log1p(-u) is finite and <= 0.
  return -std::log1p(-uniform()) * mean;
}

double Rng::shifted_exponential(double x0, double a) {
  if (x0 < 0 || a <= 0) throw std::invalid_argument("shifted_exponential: need x0 >= 0, a > 0");
  return x0 - std::log1p(-uniform()) / a;
}

bool Rng::bernoulli(double p) {
  if (p < 0 || p > 1) throw std::invalid_argument("bernoulli: p outside [0,1]");
  return uniform() < p;
}

double Rng::pareto_mean(double mean, double alpha) {
  if (alpha <= 1) throw std::invalid_argument("pareto_mean: alpha must be > 1");
  const double xm = mean * (alpha - 1.0) / alpha;  // scale for the target mean
  const double u = uniform();
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

double Rng::normal(double mu, double sigma) {
  return std::normal_distribution<double>(mu, sigma)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

ShiftedExpParams shifted_exp_for(double p, double cv) {
  if (p <= 0) throw std::invalid_argument("shifted_exp_for: p must be > 0");
  if (cv <= 0 || cv > 1) {
    // cv^2 = (1/a) / (x0 + 1/a) <= 1, with equality iff x0 = 0 (pure
    // exponential). cv -> 0 degenerates to the constant x0.
    throw std::invalid_argument("shifted_exp_for: cv must lie in (0, 1]");
  }
  const double mean = 1.0 / p;
  const double inv_a = cv * cv * mean;  // 1/a = cv^2 * mean
  return ShiftedExpParams{mean - inv_a, 1.0 / inv_a};
}

}  // namespace ebrc::sim
