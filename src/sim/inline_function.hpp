// InlineFunction: a move-only std::function replacement for the simulator's
// hot path. Callables whose capture fits the inline buffer are stored in
// place — scheduling an event then costs zero heap allocations — and only
// oversized (or over-aligned, or throwing-move) callables fall back to a
// heap box. Unlike std::function it accepts move-only captures
// (std::unique_ptr and friends), which timer closures increasingly want.
//
// Dispatch is one vtable pointer per object: {invoke, relocate, destroy},
// instantiated per decayed callable type. Relocation is destructive
// (move-construct at the destination, destroy the source), which is what the
// event slab needs when its slot vector regrows, and is a pointer copy for
// heap-boxed callables.
//
// Heap fallbacks are counted in a thread-local counter
// (inline_function_heap_allocs()) so tests and benchmarks can assert the
// zero-allocation property of the scheduling hot path. The counter is
// per-thread: BatchRunner workers each drive their own simulator, and a
// worker's count is never perturbed by its siblings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace ebrc::sim {

namespace inline_function_detail {
inline thread_local std::uint64_t heap_allocs = 0;
}  // namespace inline_function_detail

/// Number of heap-fallback allocations made by InlineFunction on this thread
/// since it started. Monotonic; sample before/after a region and subtract.
[[nodiscard]] inline std::uint64_t inline_function_heap_allocs() noexcept {
  return inline_function_detail::heap_allocs;
}

template <typename Signature, std::size_t Capacity>
class InlineFunction;  // primary template intentionally undefined

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
  static_assert(Capacity >= sizeof(void*), "capacity must hold at least a pointer");

  /// A callable D is stored inline when it fits the buffer, needs no stricter
  /// alignment than a pointer, and can be relocated without throwing.
  template <typename D>
  static constexpr bool stores_inline_v = sizeof(D) <= Capacity &&
                                          alignof(D) <= alignof(void*) &&
                                          std::is_nothrow_move_constructible_v<D>;

 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable invocable as R(Args...).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (stores_inline_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      if constexpr (sizeof(D) < sizeof(std::uint64_t)) {
        // Zero-pad to the compress() payload width so the word read there is
        // fully initialized (an empty lambda stores no bytes of its own).
        std::memset(buf_ + sizeof(D), 0, sizeof(std::uint64_t) - sizeof(D));
      }
      vt_ = &kVTable<D, /*Heap=*/false>;
    } else {
      ++inline_function_detail::heap_allocs;
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kVTable<D, /*Heap=*/true>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  /// True when a callable is held.
  explicit operator bool() const noexcept { return vt_ != nullptr; }

  R operator()(Args... args) const {
    if (!vt_) throw std::bad_function_call();
    return vt_->invoke(vt_->heap ? *reinterpret_cast<void* const*>(buf_)
                                 : static_cast<void*>(buf_),
                       std::forward<Args>(args)...);
  }

  /// True when the held callable lives in a heap box (capture too large for
  /// the inline buffer). Exposed for the allocation tests.
  [[nodiscard]] bool uses_heap() const noexcept { return vt_ != nullptr && vt_->heap; }

  // -- Compressed representation -------------------------------------------
  //
  // A callable whose meaningful state is at most 8 trivially relocatable
  // bytes (a captureless lambda, a `this` capture, or a heap box's pointer)
  // is fully described by its vtable pointer plus one 64-bit payload word.
  // The event slab stores such callbacks in 16-byte slots instead of
  // full-width ones — with tens of thousands of events pending this is the
  // difference between the callback pool fitting in L2 or thrashing it.
  // compress() transfers ownership out (no destructor will run on this
  // object); decompress() reconstitutes an equivalent InlineFunction. An
  // empty function compresses to {nullptr, 0}.

  struct Compressed {
    const void* vtable = nullptr;
    std::uint64_t payload = 0;
  };

  /// True when compress()/decompress() round-trips this callable.
  [[nodiscard]] bool compressible() const noexcept {
    return vt_ == nullptr || (vt_->trivial_relocate && vt_->size <= sizeof(std::uint64_t));
  }

  /// Destructive: returns the compressed form and leaves this empty.
  /// Pre-condition: compressible().
  [[nodiscard]] Compressed compress() noexcept {
    Compressed c;
    if (vt_ != nullptr) {
      c.vtable = vt_;
      std::memcpy(&c.payload, buf_, sizeof(c.payload));
      vt_ = nullptr;  // ownership moved; no destroy (state was trivially relocatable)
    }
    return c;
  }

  /// Reconstitutes a callable previously taken apart by compress().
  [[nodiscard]] static InlineFunction decompress(Compressed c) noexcept {
    InlineFunction f;
    if (c.vtable != nullptr) {
      f.vt_ = static_cast<const VTable*>(c.vtable);
      std::memcpy(f.buf_, &c.payload, sizeof(c.payload));
    }
    return f;
  }

  /// Inline buffer size in bytes.
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return Capacity; }

  /// Whether a callable of type D would be stored inline (compile-time).
  template <typename D>
  [[nodiscard]] static constexpr bool would_store_inline() noexcept {
    return stores_inline_v<std::decay_t<D>>;
  }

 private:
  struct VTable {
    R (*invoke)(void* obj, Args&&... args);
    void (*relocate)(void* from, void* to) noexcept;  // destructive move of the buffer
    void (*destroy)(void* buffer) noexcept;
    bool heap;
    // Hot-path fast flags: a trivially relocatable buffer is moved with a
    // fixed-size memcpy instead of an indirect call (true for trivially
    // copyable inline captures AND for heap boxes — stealing the box pointer
    // is exactly a buffer copy), and a trivially destructible inline capture
    // needs no destroy call at all. The kernel moves every callback into and
    // out of its slab slot, so these flags remove two indirect calls per
    // event for typical captures.
    bool trivial_relocate;
    bool trivial_destroy;
    std::uint32_t size;  // sizeof the stored representation (callable or box pointer)
  };

  template <typename D, bool Heap>
  static constexpr VTable kVTable{
      /*invoke=*/[](void* obj, Args&&... args) -> R {
        return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* from, void* to) noexcept {
        if constexpr (Heap) {
          ::new (to) D*(*static_cast<D**>(from));  // steal the box pointer
        } else {
          D* src = static_cast<D*>(from);
          ::new (to) D(std::move(*src));
          src->~D();
        }
      },
      /*destroy=*/
      [](void* buffer) noexcept {
        if constexpr (Heap) {
          delete *static_cast<D**>(buffer);
        } else {
          static_cast<D*>(buffer)->~D();
        }
      },
      /*heap=*/Heap,
      /*trivial_relocate=*/Heap || std::is_trivially_copyable_v<D>,
      /*trivial_destroy=*/!Heap && std::is_trivially_destructible_v<D>,
      /*size=*/Heap ? static_cast<std::uint32_t>(sizeof(D*))
                    : static_cast<std::uint32_t>(sizeof(D))};

  void move_from(InlineFunction& other) noexcept {
    if (other.vt_ != nullptr) {
      if (other.vt_->trivial_relocate) {
        std::memcpy(buf_, other.buf_, Capacity);
      } else {
        other.vt_->relocate(other.buf_, buf_);
      }
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (!vt_->trivial_destroy) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(void*) mutable unsigned char buf_[Capacity];
};

}  // namespace ebrc::sim
