// A lazily re-armed deadline timer over the event kernel.
//
// Protocol timers (TCP's RTO, delayed ACKs) are re-armed far more often than
// they fire: the classic cancel-and-reschedule idiom leaves a window's worth
// of dead heap entries cycling through the simulator per flow. A LazyTimer
// keeps the LIVE deadline in the component: extending it (the overwhelmingly
// common case) is a plain store, firing the armed kernel event re-checks the
// deadline and chases it when it moved, and disarming is a flag write. At
// most one kernel event per timeout period per timer reaches the heap.
#pragma once

#include "sim/simulator.hpp"

namespace ebrc::sim {

class LazyTimer {
 public:
  /// Arms (or extends) the deadline to the absolute time `at`; `schedule`
  /// is a callable `EventHandle(Time)` that schedules this timer's kernel
  /// event (invoked only when no pending event fires at or before `at`).
  template <typename Schedule>
  void arm(Time at, Schedule&& schedule) {
    deadline_ = at;
    active_ = true;
    if (timer_.pending() && event_at_ <= deadline_) return;
    timer_.cancel();
    event_at_ = deadline_;
    timer_ = schedule(deadline_);
  }

  /// Call from the kernel event. Returns true when the deadline is due (the
  /// timer deactivates; the caller performs the action); when the deadline
  /// moved later, re-arms the chase event and returns false. Stale firings
  /// after disarm() return false and die.
  template <typename Schedule>
  [[nodiscard]] bool fire(Time now, Schedule&& schedule) {
    if (!active_) return false;
    if (now >= deadline_) {
      active_ = false;
      return true;
    }
    event_at_ = deadline_;
    timer_ = schedule(deadline_);
    return false;
  }

  /// Deactivates without touching the kernel; any pending event dies lazily.
  void disarm() noexcept { active_ = false; }

  /// Deactivates AND cancels the pending kernel event (teardown).
  void cancel() {
    active_ = false;
    timer_.cancel();
  }

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] Time deadline() const noexcept { return deadline_; }

 private:
  Time deadline_ = 0.0;
  Time event_at_ = 0.0;  // fire time of the pending kernel event
  bool active_ = false;
  EventHandle timer_;
};

}  // namespace ebrc::sim
