#include "sim/simulator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ebrc::sim {

EventHandle Simulator::schedule(Time delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  const EventSlab::Ticket ticket = slab_->acquire();
  queue_.push(Entry{at, next_seq_++, std::move(fn), ticket});
  return EventHandle{slab_, ticket};
}

void Simulator::run_until(Time horizon) {
  while (!queue_.empty() && queue_.top().at <= horizon) {
    // priority_queue::top() is const; move out via const_cast as the entry is
    // popped immediately after (standard idiom for move-out-of-heap).
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    const bool live = slab_->alive(e.ticket);
    // Recycle the slot before running: a handle must report !pending() from
    // inside its own callback, and new events may reuse the slot under a
    // fresh generation without confusing stale handles.
    slab_->retire(e.ticket.index);
    if (!live) continue;  // cancelled
    assert(e.at >= now_);
    now_ = e.at;
    ++executed_;
    e.fn();
  }
  if (now_ < horizon && std::isfinite(horizon)) now_ = horizon;
}

void Simulator::run() {
  run_until(std::numeric_limits<Time>::infinity());
}

}  // namespace ebrc::sim
