#include "sim/simulator.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ebrc::sim {

namespace {

thread_local bool t_deadline_armed = false;
thread_local std::chrono::steady_clock::time_point t_deadline{};

}  // namespace

void arm_thread_wall_deadline(double seconds_from_now) {
  t_deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(seconds_from_now));
  t_deadline_armed = true;
}

void disarm_thread_wall_deadline() noexcept { t_deadline_armed = false; }

bool thread_wall_deadline_armed() noexcept { return t_deadline_armed; }

void poll_thread_wall_deadline() {
  if (!t_deadline_armed) return;
  if (std::chrono::steady_clock::now() < t_deadline) return;
  throw WallDeadlineError("wall-clock deadline expired mid-run (cooperative 64k-event poll)");
}

namespace {
// Heap size (in entries) above which sift-down child prefetching pays for
// itself; ~8k 24-byte entries ≈ 192 KiB, the scale where the lower tree
// levels start missing L2.
constexpr std::size_t kPrefetchHeapSize = 8192;
}  // namespace

void Simulator::throw_negative_delay() {
  throw std::invalid_argument("Simulator::schedule: negative delay");
}

void Simulator::throw_past_time() {
  throw std::invalid_argument("Simulator::schedule_at: time in the past");
}

void Simulator::pop_min() {
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Sift the hole at the root down along min children to a leaf, then bubble
  // `last` back up from there. Compared to the textbook "compare the moved
  // leaf at every level" descent this does the same number of child scans but
  // drops the extra compare per level, and `last` — usually one of the
  // largest keys, having sat at the bottom — rarely bubbles more than a step.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first + 4 > n) {
      // Frontier level with fewer than 4 children (at most once); its
      // children are the heap's last nodes, necessarily leaves.
      if (first >= n) break;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      heap_[i] = heap_[best];
      i = best;
      break;
    }
    // Full fanout: pairwise min-of-4 as two independent compares plus a
    // final, all selected with conditional moves on indices (no
    // data-dependent branches — heap keys are adversarially unpredictable).
    const std::size_t a = first + (earlier(heap_[first + 1], heap_[first]) ? 1 : 0);
    const std::size_t b = first + 2 + (earlier(heap_[first + 3], heap_[first + 2]) ? 1 : 0);
    const std::size_t best = earlier(heap_[b], heap_[a]) ? b : a;
#if defined(__GNUC__) || defined(__clang__)
    // Heaps past L2 leave the lower levels' children cold: start the next
    // level's line in before descending. On cache-resident heaps the extra
    // prefetch traffic only costs, so gate it on size (predictable branch).
    if (n > kPrefetchHeapSize && 4 * best + 1 < n) __builtin_prefetch(&heap_[4 * best + 1]);
#endif
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(last, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = last;
}

void Simulator::run_until(Time horizon) {
  EventSlab* const slab = slab_;
  for (;;) {
    // Cooperative wall-deadline poll: one mask test per event keeps the
    // unarmed cost invisible, yet a wedged cell still surfaces within 64k
    // events instead of holding its sweep slot forever.
    if ((executed_ & 0xFFFFu) == 0) poll_thread_wall_deadline();
    // Merge-pop: the wheel's front run and the heap top compete on the same
    // 128-bit (time bits ‖ seq) key, so the interleaved execution order is
    // bit-identical to the single-heap kernel. peek() may advance the wheel
    // (lazy cascade), but never past an unexamined tick.
    const QueuedEvent* w = wheel_.peek();
    const bool heap_has = !heap_.empty();
    if (w == nullptr && !heap_has) break;
    const bool from_wheel = w != nullptr && (!heap_has || earlier(*w, heap_.front()));
    const Entry e = from_wheel ? *w : heap_.front();
    if (!(e.at <= horizon)) break;
    if (from_wheel) {
      wheel_.pop_front();
      ++wheel_pops_;
    } else {
      pop_min();
      ++heap_pops_;
    }
    // The next event to run is usually already known (the wheel's run head or
    // the new heap top): start pulling its callback line in while this
    // event's callback executes.
    const QueuedEvent* nw = wheel_.peek_ready();
    const Entry* nh = heap_.empty() ? nullptr : &heap_.front();
    if (const Entry* nx = (nw != nullptr && (nh == nullptr || earlier(*nw, *nh))) ? nw : nh) {
      const std::uint32_t next = nx->slot;
      if ((next & kPinnedBit) == 0) {
        slab->prefetch(next);
      }
#if defined(__GNUC__) || defined(__clang__)
      else {
        __builtin_prefetch(&pinned_[next & ~kPinnedBit]);
      }
#endif
    }
    if ((e.slot & kPinnedBit) != 0) {
      // Pinned fast path: no liveness check, no retire, no callback move —
      // invoke in place. Always live by construction.
      record_executed(e.at, e.slot, static_cast<std::uint8_t>(2u | (from_wheel ? 1u : 0u)));
      now_ = e.at;
      ++executed_;
      pinned_[e.slot & ~kPinnedBit]();
      continue;
    }
    const bool live = slab->slot_live(e.slot);
    // Move the callback out and recycle the slot before running: a handle
    // must report !pending() from inside its own callback, and new events may
    // reuse the slot under a fresh generation without confusing stale
    // handles. (This also retires the old move-out-of-priority_queue
    // const_cast idiom — the callback is owned by the slab, not the heap.)
    EventFn fn = slab->retire(e.slot);
    if (!live) continue;  // cancelled
    assert(e.at >= now_);
    record_executed(e.at, e.slot, from_wheel ? 1u : 0u);
    now_ = e.at;
    ++executed_;
    fn();
  }
  if (now_ < horizon && std::isfinite(horizon)) now_ = horizon;
}

void Simulator::run() {
  run_until(std::numeric_limits<Time>::infinity());
}

}  // namespace ebrc::sim
