// Discrete-event simulation kernel.
//
// Events are closures scheduled at absolute simulated times. Ties are broken
// by insertion order so a run is fully deterministic for a fixed seed. An
// EventHandle allows O(1) logical cancellation (the event stays in the heap
// but is skipped when popped), which is how pending retransmit timers and
// feedback timers are withdrawn.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace ebrc::sim {

/// Simulated time, in seconds.
using Time = double;

/// Handle to a scheduled event; cancel() is idempotent.
class EventHandle {
 public:
  EventHandle() = default;

  /// Logically removes the event; a cancelled event never fires.
  void cancel() const {
    if (alive_) *alive_ = false;
  }

  /// True when the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// The event-driven simulator: a clock plus a priority queue of closures.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at `now() + delay`. `delay` must be >= 0.
  EventHandle schedule(Time delay, std::function<void()> fn);

  /// Schedules `fn` at the absolute time `at` (>= now()).
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// The clock is left at min(horizon, time of last event).
  void run_until(Time horizon);

  /// Runs until the queue drains completely.
  void run();

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events currently pending (including cancelled-but-unpopped).
  [[nodiscard]] std::size_t queue_size() const noexcept { return queue_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace ebrc::sim
