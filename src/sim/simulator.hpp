// Discrete-event simulation kernel.
//
// Events are closures scheduled at absolute simulated times. Ties are broken
// by insertion order so a run is fully deterministic for a fixed seed. An
// EventHandle allows O(1) logical cancellation (the event stays in the heap
// but is skipped when popped), which is how pending retransmit timers and
// feedback timers are withdrawn.
//
// Hot-path layout (the kernel executes every packet, timer, and feedback
// event of every experiment, so BatchRunner wall clock is mostly spent here):
//
//   - Callbacks are InlineFunction<void(), 56>: typical timer captures
//     (`this` plus a few words, or a Packet pointer) are stored inline, so
//     scheduling an event performs zero heap allocations. Only captures
//     beyond 56 bytes fall back to a heap box (counted, see
//     inline_function_heap_allocs()).
//   - The priority queue is a hand-rolled 4-ary min-heap over 24-byte POD
//     entries {time, seq, slot}. Sift operations move trivially copyable
//     PODs — four children per node halves the tree depth and keeps the
//     working set in two cache lines — while the callbacks themselves sit
//     still inside the slab and are moved exactly once, out of the slot,
//     when their entry is popped.
//   - Liveness tracking uses a pooled generation slab shared by the
//     simulator and its handles: scheduling recycles slots from a free list
//     (the old shared_ptr<bool>-per-event design is long gone), and the slot
//     now owns the callback storage too. Each Simulator owns its own slab,
//     so independent instances are safe to run concurrently on separate
//     threads.
//
// The observable semantics — (time, insertion-seq) execution order, cancel /
// retire / generation behavior, handles reporting !pending() inside their
// own callback — are bit-identical to the previous std::priority_queue
// kernel; tests/golden_determinism_test.cpp pins that with an execution
// order recorded from the old kernel.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/timing_wheel.hpp"

namespace ebrc::sim {

/// The kernel's callback type: captures up to 56 bytes are stored inline
/// (one cache line per callback including the dispatch pointer).
using EventFn = InlineFunction<void(), 56>;

/// Thrown out of Simulator::run / run_until by the cooperative wall-clock
/// deadline poll (see arm_thread_wall_deadline).
class WallDeadlineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Arms a wall-clock deadline for simulators running on the CURRENT thread:
/// run_until polls it once per 64k executed events (a mask test plus, on the
/// rare hit, one clock read) and throws WallDeadlineError once the deadline
/// has passed — so a runaway cell times out mid-run instead of only at
/// attempt completion. Thread-local by design: each BatchRunner worker arms
/// it around its own cell without touching the others. Re-arming replaces
/// the previous deadline.
void arm_thread_wall_deadline(double seconds_from_now);
void disarm_thread_wall_deadline() noexcept;
[[nodiscard]] bool thread_wall_deadline_armed() noexcept;

/// Throws WallDeadlineError if a deadline is armed on this thread and has
/// expired; otherwise returns. The deadline stays armed across the throw
/// (the arming scope disarms it), so long-running non-simulator loops can
/// also poll this.
void poll_thread_wall_deadline();

/// Pool of event slots. A slot is identified by (index, generation);
/// retiring a slot bumps its generation, so handles to a recycled slot go
/// stale instead of observing the next event that reuses it. The slot also
/// owns its event's callback: the heap above it only shuffles POD entries.
///
/// Two layout decisions keep the pool cache-resident:
///   - Structure-of-arrays: the 8-byte liveness metadata that cancel /
///     pending checks touch lives in its own dense array, separate from the
///     callback storage.
///   - Two slot classes: callbacks whose state compresses to one word (a
///     captureless lambda, a `this` capture, or an oversized capture's heap
///     box pointer — i.e. almost every closure the protocols schedule) live
///     in 16-byte "tiny" slots; only mid-sized captures (9..56 bytes) use a
///     full cache line. With tens of thousands of events pending, the tiny
///     pool is a quarter the footprint of a one-line-per-callback layout.
/// Slot indices carry the class in their top bit.
class EventSlab {
 public:
  struct Ticket {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;
  };

  EventSlab() = default;
  EventSlab(const EventSlab&) = delete;
  EventSlab& operator=(const EventSlab&) = delete;

  /// Tiny slots store compressed callbacks as raw words, so a heap-boxed
  /// callable in a slot that was never retired (simulator destroyed with
  /// events still pending) must be reclaimed here; wide slots destroy
  /// themselves through ~EventFn.
  ~EventSlab() {
    std::vector<bool> retired(tiny_.size(), false);
    for (const std::uint32_t i : tiny_free_) retired[i] = true;
    for (std::size_t i = 0; i < tiny_.size(); ++i) {
      if (!retired[i]) (void)EventFn::decompress(tiny_[i]);  // dtor frees any box
    }
  }

  /// Reserves a live slot holding `fn`, recycling a retired slot when one is
  /// available.
  Ticket acquire(EventFn&& fn) {
    if (fn.compressible()) {
      if (!tiny_free_.empty()) {
        const std::uint32_t idx = tiny_free_.back();
        tiny_free_.pop_back();
        tiny_[idx] = fn.compress();
        Meta& m = tiny_meta_[idx];
        m.alive = true;
        return {idx, m.generation};
      }
      tiny_meta_.push_back(Meta{0, true});
      tiny_.push_back(fn.compress());
      return {static_cast<std::uint32_t>(tiny_meta_.size() - 1), 0};
    }
    if (!wide_free_.empty()) {
      const std::uint32_t idx = wide_free_.back();
      wide_free_.pop_back();
      wide_[idx].fn = std::move(fn);
      Meta& m = wide_meta_[idx];
      m.alive = true;
      return {idx | kWideBit, m.generation};
    }
    wide_meta_.push_back(Meta{0, true});
    wide_.emplace_back();
    wide_.back().fn = std::move(fn);
    return {static_cast<std::uint32_t>(wide_meta_.size() - 1) | kWideBit, 0};
  }

  /// True while the ticket's event is pending (not fired, not cancelled).
  [[nodiscard]] bool alive(Ticket t) const noexcept {
    const std::vector<Meta>& meta = meta_of(t.index);
    const std::uint32_t i = t.index & ~kWideBit;
    return i < meta.size() && meta[i].generation == t.generation && meta[i].alive;
  }

  /// Marks the ticket's event as no longer pending; stale tickets are ignored.
  void cancel(Ticket t) noexcept {
    std::vector<Meta>& meta = meta_of(t.index);
    const std::uint32_t i = t.index & ~kWideBit;
    if (i < meta.size() && meta[i].generation == t.generation) {
      meta[i].alive = false;
    }
  }

  /// Liveness of a slot by index. Only the simulator calls this — a slot is
  /// owned by exactly one heap entry, so when that entry is popped the slot's
  /// current generation is necessarily the entry's generation.
  [[nodiscard]] bool slot_live(std::uint32_t index) const noexcept {
    const std::vector<Meta>& meta = meta_of(index);
    const std::uint32_t i = index & ~kWideBit;
    assert(i < meta.size());
    return meta[i].alive;
  }

  /// Moves the callback out and returns the slot to the free list once its
  /// heap entry has been popped. The slot is immediately reusable (under a
  /// fresh generation) even while the returned callback is still executing.
  [[nodiscard]] EventFn retire(std::uint32_t index) {
    const std::uint32_t i = index & ~kWideBit;
    if ((index & kWideBit) == 0) {
      Meta& m = tiny_meta_[i];
      m.alive = false;
      ++m.generation;
      tiny_free_.push_back(i);
      return EventFn::decompress(tiny_[i]);
    }
    Meta& m = wide_meta_[i];
    m.alive = false;
    ++m.generation;
    wide_free_.push_back(i);
    return std::move(wide_[i].fn);
  }

  /// Hints the prefetcher at the callback of the slot about to be retired —
  /// called as soon as the next event's slot is known so the line load
  /// overlaps the preceding callback's execution.
  void prefetch(std::uint32_t index) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint32_t i = index & ~kWideBit;
    if ((index & kWideBit) == 0) {
      __builtin_prefetch(&tiny_[i], /*rw=*/0, /*locality=*/3);
    } else {
      __builtin_prefetch(&wide_[i], /*rw=*/0, /*locality=*/3);
    }
#else
    (void)index;
#endif
  }

  /// Pre-sizes slot and free-list storage (no slots are created). Sized for
  /// the common case: most callbacks are tiny, a fraction are wide.
  void reserve(std::size_t n) {
    tiny_meta_.reserve(n);
    tiny_.reserve(n);
    tiny_free_.reserve(n);
    const std::size_t wide = n / 4 + 1;
    wide_meta_.reserve(wide);
    wide_.reserve(wide);
    wide_free_.reserve(wide);
  }

  /// Number of slots ever created (capacity watermark, for tests).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return tiny_meta_.size() + wide_meta_.size();
  }

  // Intrusive, non-atomic reference count keeping the slab alive for the
  // simulator plus any outstanding EventHandles (so a handle never dangles,
  // even if it outlives its simulator). Non-atomic is deliberate: a
  // Simulator, its slab, and all handles to its events are confined to one
  // thread — BatchRunner gives every run its own simulator on its own
  // worker — and the shared_ptr this replaces paid two atomic RMWs on every
  // scheduled event just to construct and discard the returned handle.
  void retain() noexcept { ++refs_; }
  void release() noexcept {
    if (--refs_ == 0) delete this;
  }

 private:
  static constexpr std::uint32_t kWideBit = 0x8000'0000u;
  std::uint32_t refs_ = 1;  // the owning simulator's reference

  struct Meta {
    std::uint32_t generation = 0;
    bool alive = false;
  };
  struct alignas(64) WideFn {  // one cache line per callback, exactly
    EventFn fn;
  };
  static_assert(sizeof(WideFn) == 64);

  [[nodiscard]] const std::vector<Meta>& meta_of(std::uint32_t index) const noexcept {
    return (index & kWideBit) == 0 ? tiny_meta_ : wide_meta_;
  }
  [[nodiscard]] std::vector<Meta>& meta_of(std::uint32_t index) noexcept {
    return (index & kWideBit) == 0 ? tiny_meta_ : wide_meta_;
  }

  std::vector<Meta> tiny_meta_;
  std::vector<EventFn::Compressed> tiny_;  // 16-byte compressed callbacks
  std::vector<std::uint32_t> tiny_free_;
  std::vector<Meta> wide_meta_;
  std::vector<WideFn> wide_;
  std::vector<std::uint32_t> wide_free_;
};

/// Handle to a scheduled event; cancel() is idempotent. Copyable; each copy
/// holds a (non-atomic) reference on the simulator's slab, so a handle stays
/// safe to query even after the simulator is gone — but must stay on the
/// simulator's thread.
class EventHandle {
 public:
  EventHandle() = default;

  EventHandle(const EventHandle& other) noexcept : slab_(other.slab_), ticket_(other.ticket_) {
    if (slab_) slab_->retain();
  }
  EventHandle(EventHandle&& other) noexcept : slab_(other.slab_), ticket_(other.ticket_) {
    other.slab_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& other) noexcept {
    if (this != &other) {
      if (other.slab_) other.slab_->retain();
      if (slab_) slab_->release();
      slab_ = other.slab_;
      ticket_ = other.ticket_;
    }
    return *this;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      if (slab_) slab_->release();
      slab_ = other.slab_;
      ticket_ = other.ticket_;
      other.slab_ = nullptr;
    }
    return *this;
  }
  ~EventHandle() {
    if (slab_) slab_->release();
  }

  /// Logically removes the event; a cancelled event never fires.
  void cancel() const {
    if (slab_) slab_->cancel(ticket_);
  }

  /// True when the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const noexcept { return slab_ && slab_->alive(ticket_); }

 private:
  friend class Simulator;
  EventHandle(EventSlab* slab, EventSlab::Ticket ticket) : slab_(slab), ticket_(ticket) {
    slab_->retain();
  }
  EventSlab* slab_ = nullptr;  // shared with the simulator, not per-event
  EventSlab::Ticket ticket_;
};

/// Optional view of an externally owned POD ring the kernel writes one
/// 16-byte record into per executed event — the obs flight recorder's window
/// into the hot loop. The simulator does not own any of it; whoever installs
/// the view (obs::FlightRecorder maps it from a MAP_SHARED file so the tail
/// survives SIGKILL) guarantees `records` spans `mask + 1` slots and that
/// `cursor` stays valid for the simulator's lifetime. A default-constructed
/// ring (null `records`) disables recording: the hot loop pays exactly one
/// predictable branch per event.
struct KernelRing {
  struct Record {
    double at = 0.0;        // sim time of the executed event
    std::uint32_t slot = 0; // raw heap-entry slot (pinned bit included)
    std::uint8_t src = 0;   // bit 0: popped from wheel; bit 1: pinned path
    std::uint8_t pad[3] = {};
  };
  static_assert(sizeof(Record) == 16);

  Record* records = nullptr;
  std::uint32_t mask = 0;          // capacity - 1; capacity is a power of two
  std::uint64_t* cursor = nullptr; // total records ever written (monotone)
};

/// The event-driven simulator: a clock plus a 4-ary min-heap of POD entries
/// whose callbacks live in the event slab.
class Simulator {
 public:
  Simulator() : slab_(new EventSlab) { reserve(kDefaultReserve); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator() { slab_->release(); }  // outstanding handles keep the slab alive

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at `now() + delay`. `delay` must be >= 0.
  EventHandle schedule(Time delay, EventFn fn) {
    if (delay < 0) throw_negative_delay();
    return schedule_impl(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at the absolute time `at` (>= now()).
  EventHandle schedule_at(Time at, EventFn fn) {
    if (at < now_) throw_past_time();
    return schedule_impl(at, std::move(fn));
  }

  // --- pinned events --------------------------------------------------------
  //
  // The packet path schedules the SAME component callback over and over: a
  // link's head-of-line delivery, a pipe's chain hop, a sender's pacing
  // tick. The general schedule() pays slab acquire/retire, callback
  // compression, and handle refcounting for every one of those — all pure
  // overhead when the callback never changes and is never cancelled. A
  // pinned event registers the callback once; scheduling it afterwards is a
  // bare entry push (24 bytes, zero slab traffic) — an O(1) timing-wheel
  // bucket append once the wheel has calibrated, a heap push before — and
  // firing invokes it in place. Pinned events cannot be cancelled
  // individually — guard with a component-side flag, as the protocols'
  // `running_` already does. Execution order remains the global
  // (time, insertion-seq) order shared with slab events: wheel and heap pops
  // merge on the same 128-bit key.

  using PinnedEvent = std::uint32_t;

  /// Registers `fn` as a pinned callback; the id stays valid for the
  /// simulator's lifetime. Safe to call between runs (storage is stable).
  PinnedEvent pin(EventFn fn) {
    pinned_.push_back(std::move(fn));
    return static_cast<PinnedEvent>(pinned_.size() - 1) | kPinnedBit;
  }

  /// Schedules a pinned callback after `delay` (>= 0).
  void schedule_pinned(Time delay, PinnedEvent ev) {
    if (delay < 0) throw_negative_delay();
    schedule_pinned_at(now_ + delay, ev);
  }

  /// Schedules a pinned callback at absolute time `at` (>= now()). Once the
  /// wheel has calibrated its tick from the first pinned delays this is an
  /// O(1) bucket append; until then (and for all slab events, always) entries
  /// go to the heap, so calibration can never perturb execution order.
  void schedule_pinned_at(Time at, PinnedEvent ev) {
    if (at < now_) throw_past_time();
    assert((ev & kPinnedBit) != 0 && "not a pin() id");
    at += 0.0;  // normalize -0.0, as in schedule_impl
    if (wheel_.active()) {
      wheel_.push(Entry{at, next_seq_++, ev});
      return;
    }
    const Time delay = at - now_;
    if (delay > 0) wheel_.observe(delay, now_);
    push_entry(Entry{at, next_seq_++, ev});
  }

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// The clock is left at min(horizon, time of last event).
  void run_until(Time horizon);

  /// Runs until the queue drains completely.
  void run();

  /// Pre-sizes the heap, slab, and wheel buckets for `events` concurrently
  /// pending events, so warm-up bursts don't pay vector regrowth on the hot
  /// path.
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slab_->reserve(events);
    wheel_.reserve(events);
  }

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events currently pending (including cancelled-but-unpopped),
  /// across both the heap and the wheel.
  [[nodiscard]] std::size_t queue_size() const noexcept {
    return heap_.size() + wheel_.size();
  }

  /// Kernel telemetry: how many executed events were popped from the timing
  /// wheel vs the 4-ary heap (a wheel that never activates pops everything
  /// from the heap; a saturated packet path should pop almost everything
  /// from the wheel).
  [[nodiscard]] std::uint64_t wheel_pops() const noexcept { return wheel_pops_; }
  [[nodiscard]] std::uint64_t heap_pops() const noexcept { return heap_pops_; }

  /// The pinned-event timing wheel (exposed for tests and benchmarks).
  [[nodiscard]] const TimingWheel& wheel() const noexcept { return wheel_; }

  /// Number of pinned callbacks ever registered. Pins are permanent, so a
  /// component that pins per-flow-arrival instead of per-component leaks
  /// them; the workload churn tests assert this stays flat in steady state.
  [[nodiscard]] std::size_t pinned_callbacks() const noexcept { return pinned_.size(); }

  /// Liveness slab (exposed for allocation-churn tests).
  [[nodiscard]] const EventSlab& slab() const noexcept { return *slab_; }

  /// Installs (or, with a default-constructed ring, removes) the flight
  /// recorder's event ring. See KernelRing for the ownership contract.
  void set_kernel_ring(KernelRing ring) noexcept { ring_ = ring; }

 private:
  /// Heap entries are the 24-byte trivially copyable PODs shared with the
  /// timing wheel (see timing_wheel.hpp for the layout and the branchless
  /// 128-bit key order the free `earlier()` implements).
  using Entry = QueuedEvent;

  /// Shared hot path of schedule()/schedule_at(). Takes the callback by
  /// rvalue reference: the call-site conversion constructs the EventFn once,
  /// and acquire() compresses or moves straight out of that object — no
  /// intermediate 64-byte copies.
  EventHandle schedule_impl(Time at, EventFn&& fn) {
    at += 0.0;  // normalize -0.0 to +0.0 so the bit-pattern key order holds
    const EventSlab::Ticket ticket = slab_->acquire(std::move(fn));
    push_entry(Entry{at, next_seq_++, ticket.index});
    return EventHandle{slab_, ticket};
  }

  void push_entry(Entry e) {
    // Sift up with a hole: the entry is written once, into its final position.
    std::size_t i = heap_.size();
    heap_.push_back(e);  // reserve the leaf; overwritten below unless already placed
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  [[noreturn]] static void throw_negative_delay();
  [[noreturn]] static void throw_past_time();
  void pop_min();

  /// Flight-recorder write: one store per executed event when a ring is
  /// installed, one predictable branch when it is not (the default).
  void record_executed(double at, std::uint32_t slot, std::uint8_t src) noexcept {
    if (ring_.records == nullptr) [[likely]] return;
    KernelRing::Record& r = ring_.records[*ring_.cursor & ring_.mask];
    r.at = at;
    r.slot = slot;
    r.src = src;
    ++*ring_.cursor;
  }

  static constexpr std::size_t kDefaultReserve = 256;
  /// Tags a heap entry's slot as a pinned-callback index. Distinct from
  /// EventSlab's kWideBit (the top bit): a pinned entry never reaches the
  /// slab, and slab indices stay far below 2^30.
  static constexpr std::uint32_t kPinnedBit = 0x4000'0000u;

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t wheel_pops_ = 0;
  std::uint64_t heap_pops_ = 0;
  EventSlab* slab_;  // intrusively refcounted; see EventSlab::retain/release
  std::vector<Entry> heap_;  // 4-ary min-heap: children of i at 4i+1 .. 4i+4
  std::deque<EventFn> pinned_;  // deque: pin() during a run never relocates
  TimingWheel wheel_;  // pinned entries after calibration; merged at pop
  KernelRing ring_;   // null records (the default) = recording disabled
};

}  // namespace ebrc::sim
