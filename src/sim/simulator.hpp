// Discrete-event simulation kernel.
//
// Events are closures scheduled at absolute simulated times. Ties are broken
// by insertion order so a run is fully deterministic for a fixed seed. An
// EventHandle allows O(1) logical cancellation (the event stays in the heap
// but is skipped when popped), which is how pending retransmit timers and
// feedback timers are withdrawn.
//
// Liveness tracking uses a pooled generation slab shared by the simulator and
// its handles: scheduling recycles slots from a free list instead of paying a
// heap allocation per event (the old shared_ptr<bool> design), which matters
// on the hot path when BatchRunner drives one simulator per worker thread.
// Each Simulator owns its own slab, so independent instances never share
// mutable state and are safe to run concurrently on separate threads.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace ebrc::sim {

/// Simulated time, in seconds.
using Time = double;

/// Pool of event-liveness slots. A slot is identified by (index, generation);
/// retiring a slot bumps its generation, so handles to a recycled slot go
/// stale instead of observing the next event that reuses it.
class EventSlab {
 public:
  struct Ticket {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;
  };

  /// Reserves a live slot, recycling a retired one when available.
  Ticket acquire() {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      slots_[idx].alive = true;
      return {idx, slots_[idx].generation};
    }
    slots_.push_back(Slot{0, true});
    return {static_cast<std::uint32_t>(slots_.size() - 1), 0};
  }

  /// True while the ticket's event is pending (not fired, not cancelled).
  [[nodiscard]] bool alive(Ticket t) const noexcept {
    return t.index < slots_.size() && slots_[t.index].generation == t.generation &&
           slots_[t.index].alive;
  }

  /// Marks the ticket's event as no longer pending; stale tickets are ignored.
  void cancel(Ticket t) noexcept {
    if (t.index < slots_.size() && slots_[t.index].generation == t.generation) {
      slots_[t.index].alive = false;
    }
  }

  /// Returns the slot to the free list once its queue entry has been popped.
  /// Only the simulator calls this — a slot is owned by exactly one entry.
  void retire(std::uint32_t index) noexcept {
    assert(index < slots_.size());
    slots_[index].alive = false;
    ++slots_[index].generation;
    free_.push_back(index);
  }

  /// Number of slots ever created (capacity watermark, for tests).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::uint32_t generation = 0;
    bool alive = false;
  };
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

/// Handle to a scheduled event; cancel() is idempotent.
class EventHandle {
 public:
  EventHandle() = default;

  /// Logically removes the event; a cancelled event never fires.
  void cancel() const {
    if (slab_) slab_->cancel(ticket_);
  }

  /// True when the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const noexcept { return slab_ && slab_->alive(ticket_); }

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<EventSlab> slab, EventSlab::Ticket ticket)
      : slab_(std::move(slab)), ticket_(ticket) {}
  std::shared_ptr<EventSlab> slab_;  // shared with the simulator, not per-event
  EventSlab::Ticket ticket_;
};

/// The event-driven simulator: a clock plus a priority queue of closures.
class Simulator {
 public:
  Simulator() : slab_(std::make_shared<EventSlab>()) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at `now() + delay`. `delay` must be >= 0.
  EventHandle schedule(Time delay, std::function<void()> fn);

  /// Schedules `fn` at the absolute time `at` (>= now()).
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// The clock is left at min(horizon, time of last event).
  void run_until(Time horizon);

  /// Runs until the queue drains completely.
  void run();

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events currently pending (including cancelled-but-unpopped).
  [[nodiscard]] std::size_t queue_size() const noexcept { return queue_.size(); }

  /// Liveness slab (exposed for allocation-churn tests).
  [[nodiscard]] const EventSlab& slab() const noexcept { return *slab_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
    EventSlab::Ticket ticket;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::shared_ptr<EventSlab> slab_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace ebrc::sim
