// Hierarchical timing wheel for pinned-event scheduling.
//
// The packet path schedules pinned callbacks — pipe deliveries, pacing
// ticks, feedback timers — whose deadlines are overwhelmingly near-monotone
// and clustered a few RTTs ahead. A comparison heap pays O(log n) sifts over
// adversarially unpredictable keys for every one of them; at 10^5..10^6
// concurrent flows those sifts dominate the kernel. The wheel turns the
// common case into an O(1) bucket append plus one amortized sort per
// occupied tick, while the 4-ary heap remains the exact-order home for
// irregular slab events. The two structures merge at pop time on the same
// branchless 128-bit (time bits ‖ seq) key, so execution order is
// bit-identical to the heap-only kernel (pinned by the golden determinism
// recordings).
//
// Layout: three levels of 256 buckets. A level-0 bucket is one tick wide, a
// level-1 bucket covers 256 ticks, a level-2 bucket 2^16 ticks; deadlines
// beyond the 2^24-tick span wait in an overflow ring that is rehomed once
// per span crossing. Each level keeps a 256-bit occupancy bitmap so "next
// nonempty bucket" is a couple of countr_zero scans, never a walk over
// empty vectors. The front of the wheel is a sorted "run" — the current
// tick's events, drained in key order through a head index; cascades are
// lazy (an upper-level bucket is scattered down only when the scan enters
// its window).
//
// The tick granularity is calibrated once per simulator from the first 64
// positive pinned delays (dt = p25/16, clamped): until then pinned entries
// go to the heap exactly as before, and because the tick mapping only needs
// to be MONOTONE in the deadline — equal times share a tick, a tick's
// events are key-sorted on load — the calibration choice can never perturb
// execution order, only bucket occupancy.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace ebrc::sim {

/// Simulated time, in seconds.
using Time = double;

/// Queue entries shared by the wheel and the 4-ary heap: 24-byte trivially
/// copyable PODs. `slot` is either an event-slab index or a pinned-callback
/// id (tagged with the simulator's pinned bit); the queues never look inside.
struct QueuedEvent {
  Time at;
  std::uint64_t seq;   // FIFO tie-break for equal timestamps
  std::uint32_t slot;  // slab index or tagged pinned id
};
static_assert(std::is_trivially_copyable_v<QueuedEvent>);
static_assert(sizeof(QueuedEvent) <= 24, "queue entries must stay two words + tag");
static_assert(alignof(QueuedEvent) == 8);

/// Strict order shared by the heap and the wheel: earlier time first, then
/// insertion order — compared as one 128-bit key. Simulated time never goes
/// negative (schedule rejects the past, the clock starts at 0, and -0.0 is
/// normalized away), so the IEEE-754 bit pattern of `at` is monotone in its
/// value and (bits(at), seq) compares branchlessly with a sub/sbb pair.
[[nodiscard]] inline bool earlier(const QueuedEvent& a, const QueuedEvent& b) noexcept {
#if defined(__SIZEOF_INT128__)
  const auto key = [](const QueuedEvent& e) {
    return (static_cast<unsigned __int128>(std::bit_cast<std::uint64_t>(e.at)) << 64) |
           e.seq;
  };
  return key(a) < key(b);
#else
  const std::uint64_t abits = std::bit_cast<std::uint64_t>(a.at);
  const std::uint64_t bbits = std::bit_cast<std::uint64_t>(b.at);
  if (abits != bbits) return abits < bbits;
  return a.seq < b.seq;
#endif
}

/// Function-object form of earlier() so sort/upper_bound inline the compare.
struct EarlierCompare {
  [[nodiscard]] bool operator()(const QueuedEvent& a, const QueuedEvent& b) const noexcept {
    return earlier(a, b);
  }
};

class TimingWheel {
 public:
  static constexpr int kBucketBits = 8;
  static constexpr std::uint64_t kBuckets = 1ull << kBucketBits;  // per level
  static constexpr int kLevels = 3;
  static constexpr std::uint64_t kSpanTicks = 1ull << (kLevels * kBucketBits);
  static constexpr int kCalibrationSamples = 64;

  TimingWheel() = default;
  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  /// True once the tick granularity has been calibrated; until then the
  /// simulator keeps routing pinned entries to the heap.
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Calibrated tick width in seconds (0 until active).
  [[nodiscard]] double granularity() const noexcept { return dt_; }

  /// Feeds one positive pinned-delay sample; the 64th activates the wheel at
  /// dt = p25/16, so a typical delay spans ~16 ticks and same-tick pileups
  /// stay shallow. Returns true when this call activated the wheel.
  bool observe(Time delay, Time now) {
    assert(!active_ && delay > 0);
    samples_[sample_count_++] = delay;
    if (sample_count_ < kCalibrationSamples) return false;
    std::sort(samples_, samples_ + kCalibrationSamples);
    activate(std::clamp(samples_[kCalibrationSamples / 4] / 16.0, 1e-9, 1e6), now);
    return true;
  }

  /// Activates immediately with an explicit granularity (benchmarks and the
  /// wheel's own unit tests; production goes through observe()).
  void activate(double dt, Time now) {
    dt_ = dt;
    inv_dt_ = 1.0 / dt;
    pos_ = tick_of(now);
    active_ = true;
    // Seed every bucket with a uniform capacity, once. Bucket indexes are
    // touched for the first time throughout the first full rotation of their
    // level — minutes of simulated time for level 1, hours for level 2 at
    // typical granularities — and a fresh vector's geometric growth would
    // otherwise trickle allocations long past any warm-up window. The seed
    // must cover the per-bucket occupancy of a steady workload (churn at RTT
    // granularity peaks around 32 per level-2 bucket); ~600 KB per activated
    // simulator buys an allocation-free steady state.
    for (auto& b : l0_) b.reserve(kSeedCapacity);
    for (auto& b : l1_) b.reserve(kSeedCapacity);
    for (auto& b : l2_) b.reserve(kSeedCapacity);
    run_.reserve(4 * kSeedCapacity);
    overflow_.reserve(4 * kSeedCapacity);
  }

  /// Number of events currently queued (front run + buckets + overflow).
  [[nodiscard]] std::size_t size() const noexcept {
    return pending_ + (run_.size() - run_head_);
  }

  /// O(1) append. Requires active(); `e.at` must be >= the time of the last
  /// event popped (the simulator's clock guarantees it).
  void push(const QueuedEvent& e) {
    assert(active_);
    const std::uint64_t t = tick_of(e.at);
    if (t <= pos_) {
      // The tick is already drained into the front run: sorted-insert at or
      // after the head (rare — same-instant re-bookings of the current tick).
      run_.insert(std::upper_bound(run_.begin() + static_cast<std::ptrdiff_t>(run_head_),
                                   run_.end(), e, EarlierCompare{}),
                  e);
      return;
    }
    ++pending_;
    place(e, t, pos_);
  }

  /// Earliest queued event, or nullptr when empty. May advance the wheel
  /// (lazy cascade + load of the next occupied tick); never touches time
  /// semantics, so calling it early is always safe.
  [[nodiscard]] const QueuedEvent* peek() {
    if (run_head_ < run_.size()) return &run_[run_head_];
    if (pending_ == 0) return nullptr;
    refill();
    assert(run_head_ < run_.size());
    return &run_[run_head_];
  }

  /// Non-advancing peek: the front-run head if one is ready (prefetch hints).
  [[nodiscard]] const QueuedEvent* peek_ready() const noexcept {
    return run_head_ < run_.size() ? &run_[run_head_] : nullptr;
  }

  /// Consumes the event returned by the last peek().
  void pop_front() noexcept {
    assert(run_head_ < run_.size());
    ++run_head_;
  }

  /// Pre-sizes the front run and level-0 buckets for `events` concurrently
  /// pending events. Skipped for small simulators — 256 tiny allocations
  /// would cost more than they save.
  void reserve(std::size_t events) {
    if (events < 4 * kBuckets) return;
    const std::size_t per = events / kBuckets + 1;
    run_.reserve(2 * per);
    for (auto& b : l0_) b.reserve(per);
    overflow_.reserve(kBuckets);
  }

 private:
  static constexpr std::uint64_t kMask = kBuckets - 1;
  static constexpr std::uint64_t kWords = kBuckets / 64;
  static constexpr std::size_t kSeedCapacity = 32;  // per-bucket, at activation

  /// Maps a deadline to its tick. Only MONOTONICITY matters for correctness
  /// (equal times share a tick; ticks are key-sorted on load); the clamp
  /// keeps the cast defined for absurd horizons without breaking order.
  [[nodiscard]] std::uint64_t tick_of(Time at) const noexcept {
    double x = at * inv_dt_;
    if (x > 9.0e18) x = 9.0e18;
    return static_cast<std::uint64_t>(x);
  }

  static void add(std::vector<QueuedEvent>* lvl, std::uint64_t* occ, std::uint64_t idx,
                  const QueuedEvent& e) {
    lvl[idx].push_back(e);
    occ[idx >> 6] |= 1ull << (idx & 63);
  }

  /// Routes an event with tick `t` > `p` into the level whose window around
  /// `p` contains it (or overflow beyond the span). Invariant: level-0 holds
  /// only p's 256-tick window, level-1 p's 2^16 window, level-2 p's 2^24
  /// window — so a level-0 bucket always holds exactly one tick value.
  void place(const QueuedEvent& e, std::uint64_t t, std::uint64_t p) {
    if ((t >> kBucketBits) == (p >> kBucketBits)) {
      add(l0_, occ0_, t & kMask, e);
    } else if ((t >> (2 * kBucketBits)) == (p >> (2 * kBucketBits))) {
      add(l1_, occ1_, (t >> kBucketBits) & kMask, e);
    } else if ((t >> (3 * kBucketBits)) == (p >> (3 * kBucketBits))) {
      add(l2_, occ2_, (t >> (2 * kBucketBits)) & kMask, e);
    } else {
      overflow_.push_back(e);
    }
  }

  /// First occupied bucket index >= `from`, or -1.
  [[nodiscard]] static int find_from(const std::uint64_t occ[kWords],
                                     std::uint64_t from) noexcept {
    if (from >= kBuckets) return -1;
    std::uint64_t w = from >> 6;
    std::uint64_t m = occ[w] & (~0ull << (from & 63));
    for (;;) {
      if (m != 0) return static_cast<int>(w * 64 + std::countr_zero(m));
      if (++w == kWords) return -1;
      m = occ[w];
    }
  }

  void scatter2(std::uint64_t i, std::uint64_t p) {
    std::vector<QueuedEvent>& b = l2_[i];
    occ2_[i >> 6] &= ~(1ull << (i & 63));
    for (const QueuedEvent& e : b) {
      const std::uint64_t t = tick_of(e.at);
      if ((t >> kBucketBits) == (p >> kBucketBits)) {
        add(l0_, occ0_, t & kMask, e);
      } else {
        add(l1_, occ1_, (t >> kBucketBits) & kMask, e);
      }
    }
    b.clear();
  }

  void scatter1(std::uint64_t i, std::uint64_t p) {
    std::vector<QueuedEvent>& b = l1_[i];
    occ1_[i >> 6] &= ~(1ull << (i & 63));
    (void)p;  // covering bucket: every tick is in p's level-0 window
    for (const QueuedEvent& e : b) add(l0_, occ0_, tick_of(e.at) & kMask, e);
    b.clear();
  }

  /// Crossed out of pos_'s 2^24 window: every bucket is empty, so jump to the
  /// window of the earliest overflow deadline and partition that window's
  /// events back into the levels, in place.
  void rehome(std::uint64_t& p) {
    assert(!overflow_.empty());
    std::uint64_t tmin = ~0ull;
    for (const QueuedEvent& e : overflow_) tmin = std::min(tmin, tick_of(e.at));
    if ((tmin >> (3 * kBucketBits)) > (p >> (3 * kBucketBits))) {
      p = (tmin >> (3 * kBucketBits)) << (3 * kBucketBits);
    }
    pos_ = p;  // p is a span start here, so no queued tick can precede it
    std::size_t keep = 0;
    for (std::size_t i = 0; i < overflow_.size(); ++i) {
      const QueuedEvent e = overflow_[i];
      const std::uint64_t t = tick_of(e.at);
      if ((t >> (3 * kBucketBits)) == (p >> (3 * kBucketBits))) {
        place(e, t, p);  // same span, so never routes back to overflow
      } else {
        overflow_[keep++] = e;
      }
    }
    overflow_.resize(keep);
  }

  /// Loads level-0 bucket `k` (one tick's events) into the front run. The
  /// events are COPIED out (a memcpy of PODs), not swapped: swapping storage
  /// would rotate capacities through bucket indexes, and every rarely-used
  /// bucket would re-inject a small vector into the rotation — with stable
  /// per-object storage each vector's capacity grows monotonically to its
  /// index's peak load and steady state is allocation-free.
  void load(std::uint64_t k) {
    std::vector<QueuedEvent>& b = l0_[k];
    occ0_[k >> 6] &= ~(1ull << (k & 63));
    pending_ -= b.size();
    run_.assign(b.begin(), b.end());  // run_ was cleared at refill entry
    b.clear();
    std::sort(run_.begin(), run_.end(), EarlierCompare{});
  }

  /// Advances to the next occupied tick and loads it. Requires pending_ > 0.
  /// Scan invariants: at the top of each iteration the covering level-2 and
  /// level-1 buckets of `p` are scattered down BEFORE level 0 is scanned
  /// (no-ops except right after a window boundary), and `p` only ever jumps
  /// to the window start of a found bucket — never past unexamined ticks.
  void refill() {
    assert(run_head_ == run_.size() && pending_ > 0);
    run_.clear();
    run_head_ = 0;
    std::uint64_t p = pos_ + 1;
    for (;;) {
      if ((p >> (3 * kBucketBits)) != (pos_ >> (3 * kBucketBits))) rehome(p);
      const std::uint64_t i2 = (p >> (2 * kBucketBits)) & kMask;
      if (!l2_[i2].empty()) scatter2(i2, p);
      const std::uint64_t i1 = (p >> kBucketBits) & kMask;
      if (!l1_[i1].empty()) scatter1(i1, p);
      const int k = find_from(occ0_, p & kMask);
      if (k >= 0) {
        p = (p & ~kMask) | static_cast<std::uint64_t>(k);
        load(static_cast<std::uint64_t>(k));
        pos_ = p;
        return;
      }
      const int j = find_from(occ1_, ((p >> kBucketBits) & kMask) + 1);
      if (j >= 0) {
        p = (p & ~(kMask << kBucketBits | kMask)) |
            (static_cast<std::uint64_t>(j) << kBucketBits);
        continue;
      }
      const int m = find_from(occ2_, ((p >> (2 * kBucketBits)) & kMask) + 1);
      if (m >= 0) {
        p = (p & ~(kSpanTicks - 1)) | (static_cast<std::uint64_t>(m) << (2 * kBucketBits));
        continue;
      }
      p = (p & ~(kSpanTicks - 1)) + kSpanTicks;  // span empty: rehome next pass
    }
  }

  double dt_ = 0.0;
  double inv_dt_ = 0.0;
  std::uint64_t pos_ = 0;       // drained watermark: buckets hold ticks > pos_
  std::size_t pending_ = 0;     // events in buckets + overflow (run_ excluded)
  std::size_t run_head_ = 0;    // consumption index into run_
  bool active_ = false;
  int sample_count_ = 0;
  double samples_[kCalibrationSamples] = {};
  std::uint64_t occ0_[kWords] = {};
  std::uint64_t occ1_[kWords] = {};
  std::uint64_t occ2_[kWords] = {};
  std::vector<QueuedEvent> run_;       // current tick, key-sorted
  std::vector<QueuedEvent> overflow_;  // deadlines beyond the 2^24-tick span
  std::vector<QueuedEvent> l0_[kBuckets];
  std::vector<QueuedEvent> l1_[kBuckets];
  std::vector<QueuedEvent> l2_[kBuckets];
};

}  // namespace ebrc::sim
