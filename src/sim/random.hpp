// Random-number utilities.
//
// One Rng per stochastic component, split deterministically from a root seed,
// keeps experiments reproducible and components decoupled (adding a flow does
// not perturb another flow's sample path).
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace ebrc::sim {

/// Deterministic 64-bit hash (FNV-1a) used to derive per-component seeds
/// from a root seed and a component name.
[[nodiscard]] std::uint64_t hash_seed(std::uint64_t root, std::string_view component);

/// Wrapper around std::mt19937_64 exposing the distributions the paper's
/// experiments need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Child generator for a named component; independent-looking stream.
  [[nodiscard]] Rng split(std::string_view component) const;

  /// U(0,1), open at 1.
  double uniform();
  /// U(lo,hi).
  double uniform(double lo, double hi);
  /// Exponential with given mean (NOT rate). mean > 0.
  double exponential_mean(double mean);
  /// Shifted exponential: x0 + Exp(a), the density of Section V-A.1:
  /// mu(x) = a exp(-a (x - x0)), x >= x0. Mean x0 + 1/a.
  double shifted_exponential(double x0, double a);
  /// Bernoulli with success probability p in [0,1].
  bool bernoulli(double p);
  /// Pareto with shape alpha > 1 and given mean (used for on/off cross traffic).
  double pareto_mean(double mean, double alpha);
  /// Normal(mu, sigma).
  double normal(double mu, double sigma);
  /// Uniform integer in [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Underlying engine (for std distributions in tests).
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Parameters (x0, a) of the shifted exponential that realize a target
/// loss-event rate p = 1/mean and the PAPER's coefficient of variation cv,
/// per Section V-A.1: mean = x0 + 1/a and cv^2 = (1/a)/(x0 + 1/a).
///
/// Convention note: since the distribution's standard deviation is 1/a, the
/// conventional coefficient of variation sd/mean equals the paper's cv^2.
/// All cv arguments in this library follow the paper's convention so the
/// figure axes match (cv in (0, 1], cv = 1 the pure exponential).
struct ShiftedExpParams {
  double x0;
  double a;
};
[[nodiscard]] ShiftedExpParams shifted_exp_for(double p, double cv);

}  // namespace ebrc::sim
