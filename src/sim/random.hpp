// Random-number utilities.
//
// One Rng per stochastic component, split deterministically from a root seed,
// keeps experiments reproducible and components decoupled (adding a flow does
// not perturb another flow's sample path).
//
// The engine is xoshiro256++ (Blackman & Vigna): 32 bytes of state and a
// handful of xor/rotate ops per draw, versus the 2.5 KB state and tempering
// pipeline of the std::mt19937_64 it replaced. Every stochastic component —
// RED's per-packet coin, the Poisson probes' inter-send gaps, the loss
// interval processes — embeds an Rng by value, so the swap shrinks those
// objects to cache-line size and makes the common draws (uniform,
// exponential) header-inline. Per-component seed derivation (hash_seed over
// the component name, splitmix64 avalanche) is unchanged; sample paths shift
// only because the engine's output stream differs.
#pragma once

#include <cstdint>
#include <string_view>

namespace ebrc::sim {

/// Deterministic 64-bit hash (FNV-1a) used to derive per-component seeds
/// from a root seed and a component name.
[[nodiscard]] std::uint64_t hash_seed(std::uint64_t root, std::string_view component);

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator, so the std
/// distributions the cold paths still use (gamma, geometric, normal) plug in
/// directly.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Seeds the 256-bit state from a splitmix64 stream over `seed`, the
  /// initialization the xoshiro authors recommend (an all-zero state, which
  /// the engine cannot leave, is impossible from splitmix64 output).
  explicit Xoshiro256pp(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint64_t s_[4];
};

/// Wrapper around the engine exposing the distributions the paper's
/// experiments need. The per-packet draws are defined inline below.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Child generator for a named component; independent-looking stream.
  [[nodiscard]] Rng split(std::string_view component) const;

  /// U(0,1), open at 1.
  double uniform() noexcept;
  /// U(lo,hi).
  double uniform(double lo, double hi) noexcept;
  /// Exponential with given mean (NOT rate). mean > 0.
  double exponential_mean(double mean);
  /// Shifted exponential: x0 + Exp(a), the density of Section V-A.1:
  /// mu(x) = a exp(-a (x - x0)), x >= x0. Mean x0 + 1/a.
  double shifted_exponential(double x0, double a);
  /// Bernoulli with success probability p in [0,1].
  bool bernoulli(double p);
  /// Pareto with shape alpha > 1 and given mean (used for on/off cross traffic).
  double pareto_mean(double mean, double alpha);
  /// Normal(mu, sigma).
  double normal(double mu, double sigma);
  /// Uniform integer in [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Underlying engine (for std distributions on cold paths and in tests).
  Xoshiro256pp& engine() noexcept { return engine_; }

 private:
  Xoshiro256pp engine_;
};

/// Parameters (x0, a) of the shifted exponential that realize a target
/// loss-event rate p = 1/mean and the PAPER's coefficient of variation cv,
/// per Section V-A.1: mean = x0 + 1/a and cv^2 = (1/a)/(x0 + 1/a).
///
/// Convention note: since the distribution's standard deviation is 1/a, the
/// conventional coefficient of variation sd/mean equals the paper's cv^2.
/// All cv arguments in this library follow the paper's convention so the
/// figure axes match (cv in (0, 1], cv = 1 the pure exponential).
struct ShiftedExpParams {
  double x0;
  double a;
};
[[nodiscard]] ShiftedExpParams shifted_exp_for(double p, double cv);

// ---- inline fast paths ------------------------------------------------------

inline double Rng::uniform() noexcept {
  // 53 mantissa bits of one draw: uniform on [0, 1), open at 1.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

inline double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

}  // namespace ebrc::sim
