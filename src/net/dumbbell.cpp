#include "net/dumbbell.hpp"

#include <stdexcept>

namespace ebrc::net {

Dumbbell::Dumbbell(sim::Simulator& sim, std::unique_ptr<Queue> queue, double rate_bps,
                   double shared_prop_delay_s)
    : sim_(sim) {
  bottleneck_ = std::make_unique<Link>(
      sim, std::move(queue), rate_bps, shared_prop_delay_s,
      [this](const Packet& p) { deliver_from_bottleneck(p); });
}

int Dumbbell::add_flow(double fwd_prop_s, double rev_prop_s) {
  if (fwd_prop_s < 0 || rev_prop_s < 0) throw std::invalid_argument("Dumbbell: negative delay");
  const int id = static_cast<int>(flows_.size());
  auto flow = std::make_unique<Flow>();
  flow->fwd_prop = fwd_prop_s;
  Flow* raw = flow.get();
  flow->reverse = std::make_unique<DelayPipe>(sim_, rev_prop_s, [raw](const Packet& p) {
    if (raw->at_sender) raw->at_sender(p);
  });
  flows_.push_back(std::move(flow));
  return id;
}

void Dumbbell::on_data_at_receiver(int id, PacketHandler h) {
  flows_.at(static_cast<std::size_t>(id))->at_receiver = std::move(h);
}

void Dumbbell::on_packet_at_sender(int id, PacketHandler h) {
  flows_.at(static_cast<std::size_t>(id))->at_sender = std::move(h);
}

void Dumbbell::send_data(int id, Packet p) {
  auto& flow = *flows_.at(static_cast<std::size_t>(id));
  p.flow = id;
  // Per-flow access propagation before the shared queue: modeled as a pure
  // delay, then the packet joins the bottleneck.
  const Packet copy = p;
  if (flow.fwd_prop > 0) {
    sim_.schedule(flow.fwd_prop, [this, copy] { bottleneck_->send(copy); });
  } else {
    bottleneck_->send(copy);
  }
}

void Dumbbell::send_back(int id, Packet p) {
  p.flow = id;
  flows_.at(static_cast<std::size_t>(id))->reverse->send(p);
}

void Dumbbell::deliver_from_bottleneck(const Packet& p) {
  auto& flow = *flows_.at(static_cast<std::size_t>(p.flow));
  if (flow.at_receiver) flow.at_receiver(p);
}

}  // namespace ebrc::net
