#include "net/dumbbell.hpp"

#include <stdexcept>

namespace ebrc::net {

Dumbbell::Dumbbell(sim::Simulator& sim, Queue queue, double rate_bps,
                   double shared_prop_delay_s)
    : sim_(sim),
      // The bottleneck is driven exclusively through forward(); its own
      // staging handler never runs.
      bottleneck_(sim, std::move(queue), rate_bps, shared_prop_delay_s,
                  [](const Packet&) {}) {}

Dumbbell::Flow::Flow(Dumbbell& owner, double fwd_prop_s, double rev_prop_s)
    : tail(owner.sim_, fwd_prop_s, [this](const Packet& p) {
        if (at_receiver) at_receiver(p);
      }),
      reverse(owner.sim_, rev_prop_s, [this](const Packet& p) {
        if (at_sender) at_sender(p);
      }) {}

int Dumbbell::add_flow(double fwd_prop_s, double rev_prop_s) {
  if (fwd_prop_s < 0 || rev_prop_s < 0) throw std::invalid_argument("Dumbbell: negative delay");
  const int id = static_cast<int>(flows_.size());
  flows_.emplace_back(*this, fwd_prop_s, rev_prop_s);
  return id;
}

void Dumbbell::on_data_at_receiver(int id, PacketHandler h) {
  flows_.at(static_cast<std::size_t>(id)).at_receiver = std::move(h);
}

void Dumbbell::on_packet_at_sender(int id, PacketHandler h) {
  flows_.at(static_cast<std::size_t>(id)).at_sender = std::move(h);
}

void Dumbbell::send_data(int id, Packet p) {
  Flow& flow = flows_.at(static_cast<std::size_t>(id));
  p.flow = id;
  // RCP router: stamp the advertised fair share into data packets, keeping
  // the min along the path (one hop here, but the min is the protocol).
  if (bottleneck_.rcp_enabled() && p.kind == PacketKind::kData) {
    const double advertised = bottleneck_.rcp_rate_pps();
    if (p.data.router_rate <= 0.0 || advertised < p.data.router_rate) {
      p.data.router_rate = advertised;
    }
  }
  // Bottleneck transit resolves inline (virtual clock); the accepted packet
  // is staged in the flow's tail pipe until it reaches the receiver.
  double deliver_at;
  if (!bottleneck_.forward(p, deliver_at)) return;  // dropped at the queue
  flow.tail.send_at(p, deliver_at + flow.tail.delay());
}

void Dumbbell::send_back(int id, Packet p) {
  p.flow = id;
  flows_.at(static_cast<std::size_t>(id)).reverse.send(p);
}

}  // namespace ebrc::net
