// The canonical experiment topology: N flows share one bottleneck link in
// the forward direction; acknowledgment/feedback traffic returns over
// uncongested delay pipes.
//
//   sender_i --> [queue|bottleneck link] --(prop fwd_i)--> receiver_i
//   receiver_i --(prop rev_i)--> sender_i
//
// The bottleneck sits at the FIRST hop and each flow's extra forward
// propagation follows it — exactly the paper's lab layout, where the hosts
// shared the bottleneck hub and NIST-Net added the path delay downstream
// (Section V-A.3). Per-flow round-trip times and queueing behavior are the
// same as with sender-side access links; only the constant per-flow phase at
// which a flow's packets sample the queue differs.
//
// That placement is also what makes the packet path cheap: a data packet's
// bottleneck admission resolves INLINE inside the sender's own emission
// event (Link::forward — virtual clock, no event), and its one timed hop is
// the flow's tail pipe, head-chained and pinned. End to end a data packet
// costs two simulator events (emission + tail delivery) and zero heap
// allocations, versus four events and per-packet callback boxes before the
// overhaul.
//
// Each flow registers two handlers: data arriving at its receiver, and
// ack/feedback arriving back at its sender.
#pragma once

#include <deque>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace ebrc::net {

class Dumbbell {
 public:
  /// The bottleneck: rate, its queue discipline, and the propagation delay of
  /// the shared segment.
  Dumbbell(sim::Simulator& sim, Queue queue, double rate_bps, double shared_prop_delay_s);

  Dumbbell(const Dumbbell&) = delete;  // flows' pipes capture stable addresses
  Dumbbell& operator=(const Dumbbell&) = delete;

  /// Adds a flow whose one-way forward extra propagation is `fwd_prop_s` and
  /// reverse (receiver->sender) propagation is `rev_prop_s`. Returns the flow
  /// id to stamp into packets.
  int add_flow(double fwd_prop_s, double rev_prop_s);

  /// Registers the handler for data packets arriving at flow `id`'s receiver.
  void on_data_at_receiver(int id, PacketHandler h);
  /// Registers the handler for ack/feedback packets arriving back at the
  /// flow's sender.
  void on_packet_at_sender(int id, PacketHandler h);

  /// Sender-side entry: pushes a data packet towards the bottleneck.
  void send_data(int id, Packet p);
  /// Receiver-side entry: returns an ack/feedback packet to the sender.
  void send_back(int id, Packet p);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] Link& bottleneck() noexcept { return bottleneck_; }
  [[nodiscard]] std::size_t flows() const noexcept { return flows_.size(); }

 private:
  struct Flow {
    Flow(Dumbbell& owner, double fwd_prop_s, double rev_prop_s);

    DelayPipe tail;     // post-bottleneck per-flow propagation to the receiver
    DelayPipe reverse;  // receiver -> sender return path
    PacketHandler at_receiver;
    PacketHandler at_sender;
  };

  sim::Simulator& sim_;
  Link bottleneck_;
  std::deque<Flow> flows_;  // deque: stable addresses for the pipes' captures
};

}  // namespace ebrc::net
