// The canonical experiment topology: N flows share one bottleneck link in
// the forward direction; acknowledgment/feedback traffic returns over
// uncongested delay pipes (as in the paper's lab where only the first router
// was the bottleneck).
//
//   sender_i --(prop fwd_i)--> [queue|bottleneck link] --> receiver_i
//   receiver_i --(prop rev_i)--> sender_i
//
// Each flow registers two handlers: data arriving at its receiver, and
// ack/feedback arriving back at its sender.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace ebrc::net {

class Dumbbell {
 public:
  /// The bottleneck: rate, its queue discipline, and the propagation delay of
  /// the shared segment.
  Dumbbell(sim::Simulator& sim, std::unique_ptr<Queue> queue, double rate_bps,
           double shared_prop_delay_s);

  /// Adds a flow whose one-way forward extra propagation is `fwd_prop_s` and
  /// reverse (receiver->sender) propagation is `rev_prop_s`. Returns the flow
  /// id to stamp into packets.
  int add_flow(double fwd_prop_s, double rev_prop_s);

  /// Registers the handler for data packets arriving at flow `id`'s receiver.
  void on_data_at_receiver(int id, PacketHandler h);
  /// Registers the handler for ack/feedback packets arriving back at the
  /// flow's sender.
  void on_packet_at_sender(int id, PacketHandler h);

  /// Sender-side entry: pushes a data packet towards the bottleneck.
  void send_data(int id, Packet p);
  /// Receiver-side entry: returns an ack/feedback packet to the sender.
  void send_back(int id, Packet p);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] Link& bottleneck() noexcept { return *bottleneck_; }
  [[nodiscard]] std::size_t flows() const noexcept { return flows_.size(); }

 private:
  struct Flow {
    double fwd_prop;
    std::unique_ptr<DelayPipe> reverse;
    PacketHandler at_receiver;
    PacketHandler at_sender;
  };

  void deliver_from_bottleneck(const Packet& p);

  sim::Simulator& sim_;
  std::unique_ptr<Link> bottleneck_;
  std::vector<std::unique_ptr<Flow>> flows_;
};

}  // namespace ebrc::net
