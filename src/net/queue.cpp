#include "net/queue.hpp"

#include <cmath>
#include <stdexcept>

namespace ebrc::net {

DropTailQueue::DropTailQueue(std::size_t capacity_packets) : capacity_(capacity_packets) {
  if (capacity_packets == 0) throw std::invalid_argument("DropTailQueue: zero capacity");
}

bool DropTailQueue::enqueue(const Packet& p, double /*now*/) {
  if (q_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  q_.push_back(p);
  ++accepted_;
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(double /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.front();
  q_.pop_front();
  return p;
}

RedQueue::RedQueue(RedParams params, std::uint64_t seed) : params_(params), rng_(seed) {
  if (params.min_th <= 0 || params.max_th <= params.min_th) {
    throw std::invalid_argument("RedQueue: need 0 < min_th < max_th");
  }
  if (params.max_p <= 0 || params.max_p > 1) {
    throw std::invalid_argument("RedQueue: max_p in (0,1]");
  }
  if (params.weight <= 0 || params.weight > 1) {
    throw std::invalid_argument("RedQueue: weight in (0,1]");
  }
  if (params.buffer_packets == 0) throw std::invalid_argument("RedQueue: zero buffer");
}

void RedQueue::update_average(double now) {
  if (q_.empty() && idle_since_ >= 0.0) {
    // Decay the average as if (idle / mean_packet_time) empty slots passed.
    const double m = (now - idle_since_) / params_.mean_packet_time;
    avg_ *= std::pow(1.0 - params_.weight, std::max(0.0, m));
    idle_since_ = now;  // keep decaying from here
  } else {
    avg_ = (1.0 - params_.weight) * avg_ +
           params_.weight * static_cast<double>(q_.size());
  }
}

bool RedQueue::enqueue(const Packet& p, double now) {
  update_average(now);

  bool drop = false;
  if (q_.size() >= params_.buffer_packets) {
    drop = true;  // physical overflow
  } else if (avg_ >= params_.max_th) {
    if (params_.gentle && avg_ < 2.0 * params_.max_th) {
      const double pb = params_.max_p +
                        (avg_ - params_.max_th) / params_.max_th * (1.0 - params_.max_p);
      drop = rng_.bernoulli(std::min(1.0, pb));
    } else {
      drop = true;  // forced drop (non-gentle)
    }
    count_ = 0;
  } else if (avg_ >= params_.min_th) {
    ++count_;
    const double pb =
        params_.max_p * (avg_ - params_.min_th) / (params_.max_th - params_.min_th);
    // Spread drops: pa = pb / (1 - count * pb), Floyd & Jacobson (1993).
    const double denom = 1.0 - static_cast<double>(count_) * pb;
    const double pa = denom > 0.0 ? std::min(1.0, pb / denom) : 1.0;
    if (rng_.bernoulli(pa)) {
      drop = true;
      count_ = 0;
    }
  } else {
    count_ = -1;
  }

  if (drop) {
    ++drops_;
    return false;
  }
  q_.push_back(p);
  ++accepted_;
  idle_since_ = -1.0;
  return true;
}

std::optional<Packet> RedQueue::dequeue(double now) {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.front();
  q_.pop_front();
  if (q_.empty()) idle_since_ = now;
  return p;
}

RedParams red_params_for_bdp(double bandwidth_bps, double rtt_s, double packet_bytes) {
  if (bandwidth_bps <= 0 || rtt_s <= 0 || packet_bytes <= 0) {
    throw std::invalid_argument("red_params_for_bdp: positive arguments required");
  }
  const double bdp_packets = bandwidth_bps / 8.0 * rtt_s / packet_bytes;
  RedParams prm;
  prm.buffer_packets = static_cast<std::size_t>(std::max(4.0, 2.5 * bdp_packets));
  prm.min_th = std::max(1.0, 0.25 * bdp_packets);
  prm.max_th = std::max(prm.min_th + 1.0, 1.25 * bdp_packets);
  prm.max_p = 0.10;
  prm.weight = 0.002;
  prm.gentle = false;
  prm.mean_packet_time = packet_bytes * 8.0 / bandwidth_bps;
  return prm;
}

}  // namespace ebrc::net
