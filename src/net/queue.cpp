#include "net/queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ebrc::net {
namespace {

// Upper bound on the up-front ring allocation: queues with huge nominal
// buffers (uncongested test fixtures) start smaller and regrow once if the
// backlog ever materializes; real scenario buffers sit far below this.
constexpr std::size_t kMaxInitialRing = 4096;

}  // namespace

Queue::Queue(Kind kind, std::size_t limit, RedParams params, std::uint64_t seed)
    : kind_(kind),
      limit_(limit),
      starts_(std::min(limit, kMaxInitialRing) + 1),
      params_(params),
      rng_(seed) {}

Queue Queue::drop_tail(std::size_t capacity_packets) {
  if (capacity_packets == 0) throw std::invalid_argument("Queue: zero DropTail capacity");
  return Queue(Kind::kDropTail, capacity_packets, RedParams{}, 0);
}

Queue Queue::red(RedParams params, std::uint64_t seed) {
  if (params.min_th <= 0 || params.max_th <= params.min_th) {
    throw std::invalid_argument("Queue: RED needs 0 < min_th < max_th");
  }
  if (params.max_p <= 0 || params.max_p > 1) {
    throw std::invalid_argument("Queue: RED max_p in (0,1]");
  }
  if (params.weight <= 0 || params.weight > 1) {
    throw std::invalid_argument("Queue: RED weight in (0,1]");
  }
  if (params.buffer_packets == 0) throw std::invalid_argument("Queue: zero RED buffer");
  return Queue(Kind::kRed, params.buffer_packets, params, seed);
}

void Queue::advance(double now) noexcept {
  double last_start = 0.0;
  bool emptied = false;
  while (!starts_.empty() && starts_.front() <= now) {
    last_start = starts_.front();
    starts_.pop_front();
    emptied = starts_.empty();
  }
  // The waiting set emptied when its last packet entered service — that is
  // the instant the old explicit-dequeue model stamped the idle clock.
  if (emptied && idle_since_ < 0.0) idle_since_ = last_start;
}

void Queue::update_average(double now) {
  if (starts_.empty() && idle_since_ >= 0.0) {
    // Decay the average as if (idle / mean_packet_time) empty slots passed.
    const double m = (now - idle_since_) / params_.mean_packet_time;
    avg_ *= std::pow(1.0 - params_.weight, std::max(0.0, m));
    idle_since_ = now;  // keep decaying from here
  } else {
    avg_ = (1.0 - params_.weight) * avg_ +
           params_.weight * static_cast<double>(starts_.size());
  }
}

bool Queue::red_admit(double now) {
  update_average(now);

  bool drop = false;
  if (starts_.size() >= params_.buffer_packets) {
    drop = true;  // physical overflow
  } else if (avg_ >= params_.max_th) {
    if (params_.gentle && avg_ < 2.0 * params_.max_th) {
      const double pb = params_.max_p +
                        (avg_ - params_.max_th) / params_.max_th * (1.0 - params_.max_p);
      drop = rng_.bernoulli(std::min(1.0, pb));
    } else {
      drop = true;  // forced drop (non-gentle)
    }
    count_ = 0;
  } else if (avg_ >= params_.min_th) {
    ++count_;
    const double pb =
        params_.max_p * (avg_ - params_.min_th) / (params_.max_th - params_.min_th);
    // Spread drops: pa = pb / (1 - count * pb), Floyd & Jacobson (1993).
    const double denom = 1.0 - static_cast<double>(count_) * pb;
    const double pa = denom > 0.0 ? std::min(1.0, pb / denom) : 1.0;
    if (rng_.bernoulli(pa)) {
      drop = true;
      count_ = 0;
    }
  } else {
    count_ = -1;
  }
  return !drop;
}

bool Queue::admit(double now, double service_start) {
  // Unconditional (not assert-only): mixing modes silently corrupts the
  // occupancy forever — a kNever entry at the ring front blocks the lazy
  // drain of every finite start behind it. One predictable branch per
  // admission buys a loud failure instead.
  const Mode mode = service_start == kNever ? Mode::kManual : Mode::kLink;
  if (mode_ != mode) {
    if (mode_ != Mode::kUnset) {
      throw std::logic_error(
          "Queue: cannot mix link-driven admission with standalone enqueue");
    }
    mode_ = mode;
  }
  advance(now);
  const bool admitted =
      kind_ == Kind::kDropTail ? starts_.size() < limit_ : red_admit(now);
  if (!admitted) {
    ++drops_;
    if (drop_hook_ != nullptr) drop_hook_(drop_ctx_, now, starts_.size());
    return false;
  }
  starts_.push_back(service_start);
  ++accepted_;
  idle_since_ = -1.0;
  return true;
}

bool Queue::dequeue(Packet& out, double now) {
  advance(now);
  if (store_.empty() || starts_.empty()) return false;
  out = store_.front();
  store_.pop_front();
  starts_.pop_front();
  if (starts_.empty() && idle_since_ < 0.0) idle_since_ = now;
  return true;
}

RedParams red_params_for_bdp(double bandwidth_bps, double rtt_s, double packet_bytes) {
  if (bandwidth_bps <= 0 || rtt_s <= 0 || packet_bytes <= 0) {
    throw std::invalid_argument("red_params_for_bdp: positive arguments required");
  }
  const double bdp_packets = bandwidth_bps / 8.0 * rtt_s / packet_bytes;
  RedParams prm;
  prm.buffer_packets = static_cast<std::size_t>(std::max(4.0, 2.5 * bdp_packets));
  prm.min_th = std::max(1.0, 0.25 * bdp_packets);
  prm.max_th = std::max(prm.min_th + 1.0, 1.25 * bdp_packets);
  prm.max_p = 0.10;
  prm.weight = 0.002;
  prm.gentle = false;
  prm.mean_packet_time = packet_bytes * 8.0 / bandwidth_bps;
  return prm;
}

}  // namespace ebrc::net
