// The packet: small, trivially copyable, shared by every protocol module.
#pragma once

#include <cstdint>

namespace ebrc::net {

enum class PacketKind : std::uint8_t {
  kData,
  kAck,       // TCP cumulative acknowledgment
  kFeedback,  // TFRC receiver report
};

struct Packet {
  int flow = 0;                 // flow identifier (index within an experiment)
  std::int64_t seq = 0;         // per-flow sequence number (data) / echo
  double size_bytes = 1000.0;   // wire size incl. headers
  double send_time = 0.0;       // stamped by the sender at transmission
  PacketKind kind = PacketKind::kData;

  // TCP: cumulative ack sequence (next expected byte/packet).
  std::int64_t ack_seq = 0;

  // TFRC feedback payload: receiver's loss-interval estimate, receive rate,
  // and the echoed timestamp for RTT measurement.
  double fb_mean_interval = 0.0;  // hat-theta reported by the receiver
  double fb_recv_rate = 0.0;      // packets/s measured over the last RTT
  double echo_time = 0.0;         // send_time of the packet being echoed

  // Sender's current RTT estimate carried in data packets (TFRC receivers
  // need it to group losses into loss events and to pace feedback).
  double rtt_hint = 0.0;
};

}  // namespace ebrc::net
