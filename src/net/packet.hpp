// The packet: small, trivially copyable, shared by every protocol module.
//
// The wire-common fields (flow, kind, seq, size, send timestamp) live
// unconditionally; everything a single protocol direction needs rides in a
// kind-discriminated union, so the struct stays at 56 bytes instead of the
// 80 a flat layout costs. Every forwarded packet is copied into (and out of)
// the network layer's ring buffers, so those 24 bytes are paid on every hop
// of every packet of every run. Readers must check `kind` before touching a
// union arm (the protocols all branch on it already).
#pragma once

#include <cstdint>
#include <type_traits>

namespace ebrc::net {

enum class PacketKind : std::uint8_t {
  kData,
  kAck,          // TCP cumulative acknowledgment
  kFeedback,     // TFRC / delay-AIMD receiver report
  kRcpFeedback,  // RCP receiver echo of the router-stamped rate
};

struct Packet {
  std::int64_t seq = 0;         // per-flow sequence number (data) / echo
  double size_bytes = 1000.0;   // wire size incl. headers
  double send_time = 0.0;       // stamped by the sender at transmission
  std::int32_t flow = 0;        // flow identifier (index within an experiment)
  PacketKind kind = PacketKind::kData;

  /// TCP cumulative acknowledgment payload (kind == kAck).
  struct AckInfo {
    std::int64_t seq;    // next expected sequence number
    double echo_time;    // send_time of the packet being acknowledged
  };
  /// TFRC receiver-report payload (kind == kFeedback).
  struct FeedbackInfo {
    double mean_interval;  // hat-theta reported by the receiver
    double recv_rate;      // packets/s measured over the last RTT
    double echo_time;      // send_time of the packet being echoed
  };
  /// Data-packet payload (kind == kData).
  struct DataInfo {
    // Sender's current RTT estimate (TFRC receivers need it to group losses
    // into loss events and to pace feedback).
    double rtt_hint;
    // RCP: min over traversed routers of the advertised fair-share rate in
    // packets/s; 0 means "no RCP router on the path has stamped yet".
    double router_rate;
  };
  /// RCP receiver echo (kind == kRcpFeedback).
  struct RcpInfo {
    double rate_pps;   // router_rate of the most recent data packet
    double recv_rate;  // packets/s measured over the last RTT
    double echo_time;  // send_time of the packet being echoed
  };

  union {
    DataInfo data = {0.0, 0.0};  // kind == kData
    AckInfo ack;                 // kind == kAck
    FeedbackInfo fb;             // kind == kFeedback
    RcpInfo rcp;                 // kind == kRcpFeedback
  };
};

static_assert(std::is_trivially_copyable_v<Packet>);
static_assert(sizeof(Packet) == 56, "keep the per-hop copy at 56 bytes");

}  // namespace ebrc::net
