// A fixed-rate output link fed by a queue discipline, plus a pure-delay pipe
// (the NIST-Net stand-in used to add propagation delay to a path).
//
// Both are self-clocking pipes: because the server is FIFO and its rate is
// constant, a packet's departure time is fully determined the moment it is
// admitted — service_start = max(now, clock_out), departure = service_start
// + tx + propagation. Link::forward() therefore resolves a packet's entire
// bottleneck transit inline at admission time, with NO simulator event of
// its own: the caller receives the delivery timestamp and stages the packet
// in whatever downstream pipe carries it (see Dumbbell, which pays exactly
// one timed event per forwarded packet, in the per-flow tail pipe). The old
// design cost a queue-service event plus a serialization-finish event plus a
// propagation event per packet.
//
// DelayPipe delivery events are HEAD-CHAINED and PINNED: only the oldest
// in-flight packet's delivery is armed in the kernel at any time (FIFO
// departure times never decrease, so the chain never schedules into the
// past), the closure is registered once via Simulator::pin (zero slab
// traffic per packet), and the packet itself waits in the pipe's ring — zero
// heap allocations and one 56-byte copy per hop.
#pragma once

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "util/ring_buffer.hpp"

namespace ebrc::net {

/// Delivery callback. Handlers are registered once per link/flow and invoked
/// on every packet, so they ride the same inline-storage callback type as the
/// event kernel: captures up to 48 bytes (typically `this` or a component
/// pointer) never touch the heap, and move-only captures are allowed.
using PacketHandler = sim::InlineFunction<void(const Packet&), 48>;

/// Infinite-capacity fixed-delay pipe (ACK/feedback return paths, added
/// propagation segments), also used as the staging stage behind a Link.
class DelayPipe {
 public:
  DelayPipe(sim::Simulator& sim, double delay_s, PacketHandler deliver);

  // The constructor pins a this-capturing callback into the simulator; a
  // copied or moved instance would leave that closure firing on the old
  // address. Construct in place (deque/member) and keep it there.
  DelayPipe(const DelayPipe&) = delete;
  DelayPipe& operator=(const DelayPipe&) = delete;

  /// Delivers `p` after this pipe's fixed delay.
  void send(const Packet& p) { send_at(p, sim_.now() + delay_s_); }

  /// Delivers `p` at the absolute time `deliver_at`. Times must be
  /// nondecreasing across calls (FIFO pipe); Link departure times are.
  void send_at(const Packet& p, double deliver_at);

  [[nodiscard]] double delay() const noexcept { return delay_s_; }

 private:
  void deliver_head();

  struct InFlight {
    Packet pkt;
    double deliver_at;
  };

  sim::Simulator& sim_;
  double delay_s_;
  PacketHandler deliver_;
  sim::Simulator::PinnedEvent deliver_ev_;  // pinned: zero slab traffic per packet
  util::RingBuffer<InFlight> flight_;
  bool delivery_armed_ = false;
};

/// RCP router parameters (Balakrishnan–Dukkipati–McKeown). The router keeps
/// one fair-share rate R and updates it every d0 seconds:
///   R <- R * (1 + (T/d0) * (alpha*(C - y) - beta*q/d0) / C)
/// where C is link capacity (pkts/s), y the measured arrival rate over the
/// last interval, q the queue occupancy in packets, and T the actual elapsed
/// interval. alpha/beta are the stability gains from the equilibrium paper.
struct RcpParams {
  double alpha = 0.4;
  double beta = 0.4;
  double d0_s = 0.05;            // control interval ~ average RTT
  double packet_bytes = 1000.0;  // converts rate_bps to capacity in pkts/s
  double min_rate_pps = 1.0;     // floor so R can recover from congestion
};

/// Serializes packets at `rate_bps`, then delivers them after `prop_delay_s`.
/// Arriving packets pass through the queue discipline; drops are silent
/// (protocols detect them end-to-end, as on a real router).
class Link {
 public:
  Link(sim::Simulator& sim, Queue queue, double rate_bps, double prop_delay_s,
       PacketHandler deliver);

  Link(const Link&) = delete;  // stage_ pins a this-capturing callback
  Link& operator=(const Link&) = delete;

  /// Resolves a packet's transit inline at the current simulated time:
  /// returns false when the discipline drops it; otherwise sets `deliver_at`
  /// to the instant the packet finishes serialization + propagation.
  /// The caller owns staging the packet until then — no event is scheduled.
  [[nodiscard]] bool forward(const Packet& p, double& deliver_at);

  /// Self-contained form: forward() plus staging in an internal pipe that
  /// invokes this link's delivery handler at the right time.
  void send(const Packet& p);

  [[nodiscard]] Queue& queue() noexcept { return queue_; }
  [[nodiscard]] const Queue& queue() const noexcept { return queue_; }
  [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }
  [[nodiscard]] double prop_delay() const noexcept { return prop_delay_s_; }
  /// Total packets admitted for forwarding (every one of them is delivered
  /// after its fixed transit time).
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  /// Utilization: busy transmission time / elapsed time since creation.
  [[nodiscard]] double utilization() const;

  /// Turns this link into an RCP router: forward() lazily updates the
  /// advertised fair-share rate at packet-arrival times (deterministic — no
  /// extra simulator events), and callers stamp it into data packets.
  void enable_rcp(const RcpParams& params);
  [[nodiscard]] bool rcp_enabled() const noexcept { return rcp_enabled_; }
  /// Current advertised fair share in packets/s (capacity until enabled
  /// traffic produces the first update).
  [[nodiscard]] double rcp_rate_pps() const noexcept { return rcp_rate_pps_; }

 private:
  void rcp_update(double now);

  sim::Simulator& sim_;
  Queue queue_;
  double rate_bps_;
  double inv_rate_;  // 8 / rate_bps: seconds per byte
  double prop_delay_s_;
  DelayPipe stage_;  // delivery staging for send(); unused via forward()
  double clock_out_ = 0.0;  // virtual clock: when the server frees up
  double busy_time_ = 0.0;
  double created_at_ = 0.0;
  std::uint64_t delivered_ = 0;

  // RCP router state (inactive unless enable_rcp() was called).
  bool rcp_enabled_ = false;
  RcpParams rcp_;
  double rcp_capacity_pps_ = 0.0;
  double rcp_rate_pps_ = 0.0;
  double rcp_last_update_ = 0.0;
  std::uint64_t rcp_arrivals_ = 0;  // arrivals since the last update
};

}  // namespace ebrc::net
