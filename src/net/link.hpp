// A fixed-rate output link fed by a queue discipline, plus a pure-delay pipe
// (the NIST-Net stand-in used to add propagation delay to a path).
#pragma once

#include <memory>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"

namespace ebrc::net {

/// Delivery callback. Handlers are registered once per link/flow and invoked
/// on every packet, so they ride the same inline-storage callback type as the
/// event kernel: captures up to 48 bytes (typically `this` or a component
/// pointer) never touch the heap, and move-only captures are allowed.
using PacketHandler = sim::InlineFunction<void(const Packet&), 48>;

/// Serializes packets at `rate_bps`, then delivers them after `prop_delay_s`.
/// Arriving packets pass through the queue discipline; drops are silent
/// (protocols detect them end-to-end, as on a real router).
class Link {
 public:
  Link(sim::Simulator& sim, std::unique_ptr<Queue> queue, double rate_bps, double prop_delay_s,
       PacketHandler deliver);

  /// Offers a packet to the link's queue at the current simulated time.
  void send(const Packet& p);

  [[nodiscard]] Queue& queue() noexcept { return *queue_; }
  [[nodiscard]] const Queue& queue() const noexcept { return *queue_; }
  [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }
  [[nodiscard]] double prop_delay() const noexcept { return prop_delay_s_; }
  /// Total packets handed to the delivery handler.
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  /// Utilization: busy transmission time / elapsed time since creation.
  [[nodiscard]] double utilization() const;

 private:
  void start_transmission();
  void finish_transmission(const Packet& p);

  sim::Simulator& sim_;
  std::unique_ptr<Queue> queue_;
  double rate_bps_;
  double prop_delay_s_;
  PacketHandler deliver_;
  bool busy_ = false;
  double busy_time_ = 0.0;
  double created_at_ = 0.0;
  std::uint64_t delivered_ = 0;
};

/// Infinite-capacity fixed-delay pipe (ACK/feedback return paths, added
/// propagation segments).
class DelayPipe {
 public:
  DelayPipe(sim::Simulator& sim, double delay_s, PacketHandler deliver);
  void send(const Packet& p);
  [[nodiscard]] double delay() const noexcept { return delay_s_; }

 private:
  sim::Simulator& sim_;
  double delay_s_;
  PacketHandler deliver_;
};

}  // namespace ebrc::net
