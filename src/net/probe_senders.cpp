#include "net/probe_senders.hpp"

#include <stdexcept>

namespace ebrc::net {

ProbeSender::ProbeSender(Dumbbell& net, int flow_id, double rate_pps, double packet_bytes,
                         ProbePattern pattern, double rtt_window_s, std::uint64_t seed)
    : net_(net),
      flow_(flow_id),
      rate_pps_(rate_pps),
      packet_bytes_(packet_bytes),
      pattern_(pattern),
      send_ev_(net.simulator().pin([this] { send_next(); })),
      rng_(seed),
      recorder_(rtt_window_s) {
  if (rate_pps <= 0 || packet_bytes <= 0) {
    throw std::invalid_argument("ProbeSender: rate and packet size must be > 0");
  }
  net_.on_data_at_receiver(flow_, [this](const Packet& p) { on_arrival(p); });
  recorder_.note_rate(rate_pps);
}

void ProbeSender::start(double at) {
  running_ = true;
  net_.simulator().schedule_pinned_at(at, send_ev_);
}

void ProbeSender::send_next() {
  if (!running_) return;
  Packet p;
  p.seq = next_seq_++;
  p.size_bytes = packet_bytes_;
  p.send_time = net_.simulator().now();
  net_.send_data(flow_, p);
  ++sent_;
  const double gap = pattern_ == ProbePattern::kCbr
                         ? 1.0 / rate_pps_
                         : rng_.exponential_mean(1.0 / rate_pps_);
  net_.simulator().schedule_pinned(gap, send_ev_);
}

void ProbeSender::on_arrival(const Packet& p) {
  const double now = net_.simulator().now();
  // FIFO network: a sequence gap means every skipped packet was dropped.
  for (std::int64_t missing = expected_seq_; missing < p.seq; ++missing) {
    recorder_.on_loss(now);
  }
  if (p.seq >= expected_seq_) expected_seq_ = p.seq + 1;
  recorder_.on_packet(now);
  ++received_;
}

OnOffSender::OnOffSender(Dumbbell& net, int flow_id, double peak_pps, double packet_bytes,
                         double mean_on_s, double mean_off_s, std::uint64_t seed)
    : net_(net),
      flow_(flow_id),
      peak_pps_(peak_pps),
      packet_bytes_(packet_bytes),
      mean_on_s_(mean_on_s),
      mean_off_s_(mean_off_s),
      begin_on_ev_(net.simulator().pin([this] { begin_on(); })),
      send_ev_(net.simulator().pin([this] { send_next(); })),
      rng_(seed) {
  if (peak_pps <= 0 || packet_bytes <= 0 || mean_on_s <= 0 || mean_off_s <= 0) {
    throw std::invalid_argument("OnOffSender: positive parameters required");
  }
}

void OnOffSender::start(double at) {
  running_ = true;
  net_.simulator().schedule_pinned_at(at, begin_on_ev_);
}

void OnOffSender::begin_on() {
  if (!running_) return;
  on_until_ = net_.simulator().now() + rng_.exponential_mean(mean_on_s_);
  send_next();
}

void OnOffSender::send_next() {
  if (!running_) return;
  const double now = net_.simulator().now();
  if (now >= on_until_) {
    net_.simulator().schedule_pinned(rng_.exponential_mean(mean_off_s_), begin_on_ev_);
    return;
  }
  Packet p;
  p.seq = next_seq_++;
  p.size_bytes = packet_bytes_;
  p.send_time = now;
  net_.send_data(flow_, p);
  ++sent_;
  net_.simulator().schedule_pinned(1.0 / peak_pps_, send_ev_);
}

}  // namespace ebrc::net
