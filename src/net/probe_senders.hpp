// Non-adaptive senders: CBR and Poisson probes (the paper's "Poisson"
// loss-rate reference in Figure 7) and on/off background traffic used to
// roughen the emulated WAN paths.
#pragma once

#include <cstdint>

#include "net/dumbbell.hpp"
#include "sim/random.hpp"
#include "stats/loss_events.hpp"

namespace ebrc::net {

enum class ProbePattern { kCbr, kPoisson };

/// Sends at a fixed average rate without adapting; its receiver half detects
/// losses from sequence gaps and feeds the shared LossEventRecorder, so the
/// probe measures the "non-adaptive" loss-event rate p''.
class ProbeSender {
 public:
  ProbeSender(Dumbbell& net, int flow_id, double rate_pps, double packet_bytes,
              ProbePattern pattern, double rtt_window_s, std::uint64_t seed);

  ProbeSender(const ProbeSender&) = delete;  // this-capturing pins/handlers
  ProbeSender& operator=(const ProbeSender&) = delete;

  void start(double at);
  void stop() { running_ = false; }

  [[nodiscard]] const stats::LossEventRecorder& recorder() const noexcept { return recorder_; }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  [[nodiscard]] int flow_id() const noexcept { return flow_; }

 private:
  void send_next();
  void on_arrival(const Packet& p);

  Dumbbell& net_;
  int flow_;
  double rate_pps_;
  double packet_bytes_;
  ProbePattern pattern_;
  sim::Simulator::PinnedEvent send_ev_;
  sim::Rng rng_;
  stats::LossEventRecorder recorder_;
  std::int64_t next_seq_ = 0;
  std::int64_t expected_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  bool running_ = false;
};

/// Exponential on / exponential off background source transmitting CBR at
/// `peak_pps` while on. Used as cross traffic; no loss measurement.
class OnOffSender {
 public:
  OnOffSender(Dumbbell& net, int flow_id, double peak_pps, double packet_bytes,
              double mean_on_s, double mean_off_s, std::uint64_t seed);

  OnOffSender(const OnOffSender&) = delete;  // this-capturing pins
  OnOffSender& operator=(const OnOffSender&) = delete;

  void start(double at);
  void stop() { running_ = false; }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }

 private:
  void begin_on();
  void send_next();

  Dumbbell& net_;
  int flow_;
  double peak_pps_;
  double packet_bytes_;
  double mean_on_s_;
  double mean_off_s_;
  sim::Simulator::PinnedEvent begin_on_ev_;
  sim::Simulator::PinnedEvent send_ev_;
  sim::Rng rng_;
  std::int64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
  double on_until_ = 0.0;
  bool running_ = false;
};

}  // namespace ebrc::net
