// Queue disciplines for the bottleneck router: DropTail (FIFO) and RED.
//
// The RED implementation follows Floyd & Jacobson's gentle-less variant used
// by the paper's lab setup: EWMA average queue with idle-time compensation,
// linear drop probability between min_th and max_th, forced drop above
// max_th, and the standard count-based spreading of drops.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "sim/random.hpp"

namespace ebrc::net {

class Queue {
 public:
  virtual ~Queue() = default;

  /// Offers a packet at time `now`; returns true when accepted, false when
  /// dropped (the caller owns drop accounting).
  [[nodiscard]] virtual bool enqueue(const Packet& p, double now) = 0;

  /// Removes the head-of-line packet; nullopt when empty.
  [[nodiscard]] virtual std::optional<Packet> dequeue(double now) = 0;

  [[nodiscard]] virtual std::size_t packets() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }

 protected:
  std::uint64_t drops_ = 0;
  std::uint64_t accepted_ = 0;
};

/// FIFO with a hard packet-count limit.
class DropTailQueue final : public Queue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets);
  [[nodiscard]] bool enqueue(const Packet& p, double now) override;
  [[nodiscard]] std::optional<Packet> dequeue(double now) override;
  [[nodiscard]] std::size_t packets() const noexcept override { return q_.size(); }
  [[nodiscard]] std::string name() const override { return "DropTail"; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<Packet> q_;
};

struct RedParams {
  std::size_t buffer_packets = 250;  // hard limit
  double min_th = 25.0;              // packets
  double max_th = 125.0;             // packets
  double max_p = 0.10;               // drop probability at max_th
  double weight = 0.002;             // EWMA gain w_q
  bool gentle = false;               // the lab setup could not enable gentle
  double mean_packet_time = 5e-4;    // s, for idle-time averaging compensation
};

class RedQueue final : public Queue {
 public:
  RedQueue(RedParams params, std::uint64_t seed);
  [[nodiscard]] bool enqueue(const Packet& p, double now) override;
  [[nodiscard]] std::optional<Packet> dequeue(double now) override;
  [[nodiscard]] std::size_t packets() const noexcept override { return q_.size(); }
  [[nodiscard]] std::string name() const override { return "RED"; }

  [[nodiscard]] double average_queue() const noexcept { return avg_; }
  [[nodiscard]] const RedParams& params() const noexcept { return params_; }

 private:
  void update_average(double now);

  RedParams params_;
  std::deque<Packet> q_;
  double avg_ = 0.0;
  std::int64_t count_ = -1;  // packets since last drop (-1 per Floyd's pseudocode)
  double idle_since_ = -1.0; // time the queue went empty; <0 while busy
  sim::Rng rng_;
};

/// Builds the paper's ns-2 RED configuration from a bandwidth-delay product:
/// buffer 5/2 BDP, min_th 1/4 BDP, max_th 5/4 BDP (Section V-A.2).
[[nodiscard]] RedParams red_params_for_bdp(double bandwidth_bps, double rtt_s,
                                           double packet_bytes = 1000.0);

}  // namespace ebrc::net
