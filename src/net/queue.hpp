// Queue disciplines for the bottleneck router: DropTail (FIFO) and RED.
//
// The RED implementation follows Floyd & Jacobson's gentle-less variant used
// by the paper's lab setup: EWMA average queue with idle-time compensation,
// linear drop probability between min_th and max_th, forced drop above
// max_th, and the standard count-based spreading of drops.
//
// Hot-path layout: one concrete class, discriminated by a kind tag, instead
// of the former virtual hierarchy — admission dispatch is a predicted branch
// and the bodies inline into Link::forward. Occupancy is virtual-clock
// driven: the owning link admits each packet with the simulated time its
// serialization will begin (`service_start`), and the waiting count — what
// the drop policies compare against their thresholds — is a power-of-two
// ring of those start times, sized from the buffer limit at construction and
// drained lazily as the clock passes them. The steady state therefore
// performs zero heap allocations and stores eight bytes per waiting packet
// (the packets themselves live in the pipes' flight rings until delivery).
//
// Standalone use (tests, micro-benches) goes through enqueue()/dequeue():
// packets then wait in an internal FIFO until explicitly dequeued, which
// reproduces the classic manual-queue behavior. The two modes cannot be
// mixed on one instance.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "util/ring_buffer.hpp"

namespace ebrc::net {

struct RedParams {
  std::size_t buffer_packets = 250;  // hard limit
  double min_th = 25.0;              // packets
  double max_th = 125.0;             // packets
  double max_p = 0.10;               // drop probability at max_th
  double weight = 0.002;             // EWMA gain w_q
  bool gentle = false;               // the lab setup could not enable gentle
  double mean_packet_time = 5e-4;    // s, for idle-time averaging compensation
};

class Queue {
 public:
  /// Sentinel service start: the packet waits until an explicit dequeue().
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  /// FIFO with a hard packet-count limit.
  [[nodiscard]] static Queue drop_tail(std::size_t capacity_packets);
  /// Floyd & Jacobson RED (gentle-less by default, per the lab setup).
  [[nodiscard]] static Queue red(RedParams params, std::uint64_t seed);

  Queue(Queue&&) = default;
  Queue& operator=(Queue&&) = default;
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  /// Admission at arrival time `now` for a packet whose serialization will
  /// begin at `service_start` (from the link's virtual clock). Returns true
  /// when accepted; false counts as a drop. The packet occupies the queue
  /// until the clock passes its service start.
  [[nodiscard]] bool admit(double now, double service_start);

  /// Standalone form: admits AND buffers the packet until dequeue().
  [[nodiscard]] bool enqueue(const Packet& p, double now) {
    if (!admit(now, kNever)) return false;
    store_.push_back(p);
    return true;
  }

  /// Removes the head-of-line waiting packet at time `now` (standalone use);
  /// false when nothing is waiting.
  [[nodiscard]] bool dequeue(Packet& out, double now);

  /// Waiting packets at `now`: admitted, serialization not yet begun. This is
  /// the occupancy the drop policies compare against their thresholds.
  [[nodiscard]] std::size_t packets(double now) noexcept {
    advance(now);
    return starts_.size();
  }

  [[nodiscard]] const char* name() const noexcept {
    return kind_ == Kind::kDropTail ? "DropTail" : "RED";
  }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  /// Hard packet-count limit (DropTail capacity / RED buffer).
  [[nodiscard]] std::size_t capacity() const noexcept { return limit_; }

  // --- RED view -----------------------------------------------------------
  [[nodiscard]] double average_queue() const noexcept { return avg_; }
  [[nodiscard]] const RedParams& params() const noexcept { return params_; }

  /// Observability hook, fired on the DROP path only (never on accept): the
  /// obs layer records occupancy-at-drop histograms and trace instants from
  /// it. A raw function pointer + context keeps net/ free of any obs
  /// dependency, and the null check is a predictable branch on a path that
  /// is already the rare one.
  using DropHook = void (*)(void* ctx, double now, std::size_t occupancy);
  void set_drop_hook(DropHook hook, void* ctx) noexcept {
    drop_hook_ = hook;
    drop_ctx_ = ctx;
  }

 private:
  enum class Kind : std::uint8_t { kDropTail, kRed };

  Queue(Kind kind, std::size_t limit, RedParams params, std::uint64_t seed);

  /// Lazily retires service starts the clock has passed; maintains RED's
  /// idle timestamp when the waiting set empties.
  void advance(double now) noexcept;
  void update_average(double now);
  [[nodiscard]] bool red_admit(double now);

  /// A queue is either link-driven (finite service starts) or standalone
  /// (kNever + explicit dequeue) — never both: a kNever entry would block
  /// the lazy drain of every finite start behind it, silently inflating the
  /// occupancy forever. The first admit fixes the mode; mixing asserts.
  enum class Mode : std::uint8_t { kUnset, kLink, kManual };

  Kind kind_;
  Mode mode_ = Mode::kUnset;
  std::size_t limit_;
  util::RingBuffer<double> starts_;  // service starts of waiting packets
  util::RingBuffer<Packet> store_;   // standalone mode only; empty under a link
  std::uint64_t drops_ = 0;
  std::uint64_t accepted_ = 0;
  DropHook drop_hook_ = nullptr;
  void* drop_ctx_ = nullptr;

  // RED state (inert for DropTail).
  RedParams params_;
  double avg_ = 0.0;
  std::int64_t count_ = -1;  // packets since last drop (-1 per Floyd's pseudocode)
  double idle_since_ = -1.0; // time the queue went empty; <0 while busy
  sim::Rng rng_;
};

/// Builds the paper's ns-2 RED configuration from a bandwidth-delay product:
/// buffer 5/2 BDP, min_th 1/4 BDP, max_th 5/4 BDP (Section V-A.2).
[[nodiscard]] RedParams red_params_for_bdp(double bandwidth_bps, double rtt_s,
                                           double packet_bytes = 1000.0);

}  // namespace ebrc::net
