#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ebrc::net {

DelayPipe::DelayPipe(sim::Simulator& sim, double delay_s, PacketHandler deliver)
    : sim_(sim),
      delay_s_(delay_s),
      deliver_(std::move(deliver)),
      deliver_ev_(sim.pin([this] { deliver_head(); })),
      flight_(32) {
  if (delay_s < 0) throw std::invalid_argument("DelayPipe: negative delay");
  if (!deliver_) throw std::invalid_argument("DelayPipe: null delivery handler");
}

void DelayPipe::send_at(const Packet& p, double deliver_at) {
  assert(flight_.empty() || deliver_at >= flight_.at_offset(flight_.size() - 1).deliver_at);
  flight_.push_back(InFlight{p, deliver_at});
  if (!delivery_armed_) {
    delivery_armed_ = true;
    sim_.schedule_pinned_at(deliver_at, deliver_ev_);
  }
}

void DelayPipe::deliver_head() {
  const Packet p = flight_.front().pkt;
  flight_.pop_front();
  if (!flight_.empty()) {
    sim_.schedule_pinned_at(flight_.front().deliver_at, deliver_ev_);
  } else {
    delivery_armed_ = false;
  }
  deliver_(p);
}

Link::Link(sim::Simulator& sim, Queue queue, double rate_bps, double prop_delay_s,
           PacketHandler deliver)
    : sim_(sim),
      queue_(std::move(queue)),
      rate_bps_(rate_bps),
      inv_rate_(8.0 / rate_bps),
      prop_delay_s_(prop_delay_s),
      stage_(sim, 0.0, std::move(deliver)),
      created_at_(sim.now()) {
  if (rate_bps <= 0) throw std::invalid_argument("Link: rate must be > 0");
  if (prop_delay_s < 0) throw std::invalid_argument("Link: negative delay");
}

bool Link::forward(const Packet& p, double& deliver_at) {
  const double now = sim_.now();
  if (rcp_enabled_) {
    ++rcp_arrivals_;
    if (now - rcp_last_update_ >= rcp_.d0_s) rcp_update(now);
  }
  const double start = std::max(now, clock_out_);
  if (!queue_.admit(now, start)) return false;  // dropped by the discipline
  const double tx = p.size_bytes * inv_rate_;
  clock_out_ = start + tx;
  busy_time_ += tx;
  ++delivered_;
  deliver_at = clock_out_ + prop_delay_s_;
  return true;
}

void Link::enable_rcp(const RcpParams& params) {
  if (params.alpha <= 0 || params.beta < 0 || params.d0_s <= 0 || params.packet_bytes <= 0 ||
      params.min_rate_pps <= 0) {
    throw std::invalid_argument(
        "Link::enable_rcp: need alpha > 0, beta >= 0, d0_s > 0, packet_bytes > 0, "
        "min_rate_pps > 0");
  }
  rcp_enabled_ = true;
  rcp_ = params;
  rcp_capacity_pps_ = rate_bps_ / (8.0 * params.packet_bytes);
  rcp_rate_pps_ = rcp_capacity_pps_;  // optimistic start, as the paper suggests
  rcp_last_update_ = sim_.now();
  rcp_arrivals_ = 0;
}

void Link::rcp_update(double now) {
  // Lazy control-law step, driven by packet arrivals: deterministic because
  // arrival times are, and free when the link is idle. T is the actual
  // elapsed interval (>= d0 by construction of the caller's check).
  const double elapsed = now - rcp_last_update_;
  const double y = static_cast<double>(rcp_arrivals_) / elapsed;  // arrival rate, pkts/s
  const double q = static_cast<double>(queue_.packets(now));     // backlog, pkts
  const double feedback =
      rcp_.alpha * (rcp_capacity_pps_ - y) - rcp_.beta * q / rcp_.d0_s;
  const double factor = 1.0 + (elapsed / rcp_.d0_s) * feedback / rcp_capacity_pps_;
  rcp_rate_pps_ = std::clamp(rcp_rate_pps_ * std::max(0.0, factor), rcp_.min_rate_pps,
                             rcp_capacity_pps_);
  rcp_last_update_ = now;
  rcp_arrivals_ = 0;
}

void Link::send(const Packet& p) {
  double deliver_at;
  if (forward(p, deliver_at)) stage_.send_at(p, deliver_at);
}

double Link::utilization() const {
  const double elapsed = sim_.now() - created_at_;
  if (elapsed <= 0.0) return 0.0;
  // busy_time_ accrues at admission; the work still scheduled beyond now
  // (clock_out_ - now on a backlogged server) has not happened yet. A
  // work-conserving FIFO server is busy exactly when committed work remains,
  // so past busy time = committed - remaining.
  const double remaining = std::max(0.0, clock_out_ - sim_.now());
  return (busy_time_ - remaining) / elapsed;
}

}  // namespace ebrc::net
