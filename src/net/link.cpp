#include "net/link.hpp"

#include <stdexcept>

namespace ebrc::net {

Link::Link(sim::Simulator& sim, std::unique_ptr<Queue> queue, double rate_bps,
           double prop_delay_s, PacketHandler deliver)
    : sim_(sim),
      queue_(std::move(queue)),
      rate_bps_(rate_bps),
      prop_delay_s_(prop_delay_s),
      deliver_(std::move(deliver)),
      created_at_(sim.now()) {
  if (!queue_) throw std::invalid_argument("Link: null queue");
  if (rate_bps <= 0) throw std::invalid_argument("Link: rate must be > 0");
  if (prop_delay_s < 0) throw std::invalid_argument("Link: negative delay");
  if (!deliver_) throw std::invalid_argument("Link: null delivery handler");
}

void Link::send(const Packet& p) {
  if (!queue_->enqueue(p, sim_.now())) return;  // dropped by the discipline
  if (!busy_) start_transmission();
}

void Link::start_transmission() {
  auto next = queue_->dequeue(sim_.now());
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const double tx = next->size_bytes * 8.0 / rate_bps_;
  busy_time_ += tx;
  const Packet p = *next;
  sim_.schedule(tx, [this, p] { finish_transmission(p); });
}

void Link::finish_transmission(const Packet& p) {
  ++delivered_;
  // Propagation is pipelined: delivery is scheduled while the next packet
  // begins serialization.
  const Packet copy = p;
  sim_.schedule(prop_delay_s_, [this, copy] { deliver_(copy); });
  start_transmission();
}

double Link::utilization() const {
  const double elapsed = sim_.now() - created_at_;
  return elapsed > 0.0 ? busy_time_ / elapsed : 0.0;
}

DelayPipe::DelayPipe(sim::Simulator& sim, double delay_s, PacketHandler deliver)
    : sim_(sim), delay_s_(delay_s), deliver_(std::move(deliver)) {
  if (delay_s < 0) throw std::invalid_argument("DelayPipe: negative delay");
  if (!deliver_) throw std::invalid_argument("DelayPipe: null delivery handler");
}

void DelayPipe::send(const Packet& p) {
  const Packet copy = p;
  sim_.schedule(delay_s_, [this, copy] { deliver_(copy); });
}

}  // namespace ebrc::net
