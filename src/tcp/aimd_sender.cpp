#include "tcp/aimd_sender.hpp"

#include <stdexcept>

namespace ebrc::tcp {

AimdSender::AimdSender(net::Dumbbell& net, int flow_id, AimdSenderConfig cfg)
    : net_(net), flow_(flow_id), cfg_(cfg), rate_(cfg.initial_rate), recorder_(cfg.rtt_s) {
  if (cfg.alpha <= 0 || !(cfg.beta > 0 && cfg.beta < 1) || cfg.rtt_s <= 0 ||
      cfg.initial_rate <= 0) {
    throw std::invalid_argument("AimdSender: bad configuration");
  }
  net_.on_data_at_receiver(flow_, [this](const net::Packet& p) { on_arrival(p); });
  recorder_.note_rate(rate_);
}

void AimdSender::start(double at) {
  running_ = true;
  net_.simulator().schedule_at(at, [this] {
    send_next();
    increase_tick();
  });
}

void AimdSender::send_next() {
  if (!running_) return;
  net::Packet p;
  p.seq = next_seq_++;
  p.size_bytes = cfg_.packet_bytes;
  p.send_time = net_.simulator().now();
  net_.send_data(flow_, p);
  ++sent_;
  net_.simulator().schedule(1.0 / rate_, [this] { send_next(); });
}

void AimdSender::increase_tick() {
  if (!running_) return;
  // Additive increase: alpha packets/RTT per RTT, i.e. alpha/rtt in rate
  // units every RTT.
  rate_ += cfg_.alpha / cfg_.rtt_s;
  recorder_.note_rate(rate_);
  net_.simulator().schedule(cfg_.rtt_s, [this] { increase_tick(); });
}

void AimdSender::on_arrival(const net::Packet& p) {
  const double now = net_.simulator().now();
  bool new_event = false;
  for (std::int64_t missing = expected_seq_; missing < p.seq; ++missing) {
    new_event = recorder_.on_loss(now) || new_event;
  }
  if (p.seq >= expected_seq_) expected_seq_ = p.seq + 1;
  recorder_.on_packet(now);
  ++received_;
  if (new_event) {
    rate_ *= cfg_.beta;
    recorder_.note_rate(rate_);
  }
}

}  // namespace ebrc::tcp
