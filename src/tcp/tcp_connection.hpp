// A window-based TCP model: slow start, congestion avoidance, fast
// retransmit / NewReno fast recovery, Jacobson/Karels RTO with Karn's rule
// and exponential backoff, delayed ACKs (every b = 2 packets, matching the
// PFTK formulas' acknowledgment model), and a greedy (long-lived bulk)
// application.
//
// Loss events are measured with the same LossEventRecorder (one-RTT
// grouping) that TFRC uses, so the p'-vs-p comparisons of Figures 7, 12-15,
// 17-19 compare like with like.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "net/dumbbell.hpp"
#include "sim/lazy_timer.hpp"
#include "stats/loss_events.hpp"
#include "stats/online.hpp"

namespace ebrc::tcp {

struct TcpConfig {
  double packet_bytes = 1000.0;
  double initial_cwnd = 2.0;       // packets
  double initial_ssthresh = 64.0;  // packets
  int dupack_threshold = 3;
  int ack_every = 2;               // delayed ACK factor b
  double delayed_ack_timeout = 0.1;  // s
  double min_rto = 0.2;            // s (ns-2 / Linux floor)
  double max_rto = 60.0;           // s
  double max_cwnd = 1e9;           // receiver window; huge = never limiting
};

class TcpConnection {
 public:
  /// Flow-retirement notification for pooled (finite-transfer) use.
  using CompletionFn = sim::InlineFunction<void(), 24>;

  /// Wires the connection onto flow `flow_id` of the dumbbell. `base_rtt_s`
  /// seeds the RTO before the first measurement.
  TcpConnection(net::Dumbbell& net, int flow_id, double base_rtt_s, TcpConfig cfg = {});

  // Registers this-capturing handlers at construction; the object must stay
  // at its construction address.
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  void start(double at);
  void stop();

  // --- pooled lifecycle (dynamic workloads) --------------------------------
  //
  // Same contract as TfrcConnection: construct once per pool slot, open()
  // per transfer. open() rewinds the congestion/sequencing/RTT-estimator
  // state to a fresh connection's while cumulative counters and the
  // loss-event recorder keep accumulating. Timers are LazyTimers — close()
  // cancels them and any stale kernel event dies against `snd_.running`. The
  // pool quarantines retired slots for a drain interval, so no packet of a
  // previous transfer can reach the next incarnation.

  /// (Re)opens the connection for a reliable transfer of `transfer_packets`
  /// data packets (0 = unbounded greedy source). The first window is sent
  /// at the current simulated time; `on_complete` fires once, when the
  /// final byte is cumulatively acknowledged.
  void open(std::uint64_t transfer_packets, CompletionFn on_complete = {});

  /// Retires the flow (timers cancelled, completion dropped, counters kept).
  void close();

  [[nodiscard]] bool active() const noexcept { return snd_.running; }
  [[nodiscard]] std::uint64_t transfers_completed() const noexcept {
    return transfers_completed_;
  }

  // --- measurement ---------------------------------------------------------
  [[nodiscard]] const stats::LossEventRecorder& recorder() const noexcept { return recorder_; }
  /// New in-order packets accepted by the receiver (goodput counter).
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  /// Data packets put on the wire (incl. retransmissions).
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] double cwnd() const noexcept { return snd_.cwnd; }
  [[nodiscard]] double srtt() const noexcept { return snd_.srtt; }
  /// Event-averaged RTT (sampled once per smoothed RTT, the paper's r).
  [[nodiscard]] const stats::OnlineMoments& rtt_stats() const noexcept { return rtt_stats_; }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] std::uint64_t fast_retransmits() const noexcept { return fast_retx_; }
  /// Queuing-delay telemetry (Sender concept): loss-based TCP reports none.
  [[nodiscard]] double queuing_delay_sum_s() const noexcept { return 0.0; }
  [[nodiscard]] std::uint64_t queuing_delay_samples() const noexcept { return 0; }
  /// Resets counters (recorder excepted) at the end of warm-up.
  void reset_counters();

 private:
  // sender side
  void try_send();
  void finish_transfer();
  void reset_transfer_state();
  void transmit(std::int64_t seq, bool retransmission);
  void on_packet_at_sender(const net::Packet& p);
  void on_new_ack(std::int64_t ack, double echo_time);
  void on_dupack();
  void enter_recovery();
  void on_timeout();
  void arm_rto();
  void rto_event();
  void delack_event();
  void note_rtt_sample(double sample);
  void record_loss_event();
  [[nodiscard]] double flight() const noexcept {
    return static_cast<double>(snd_.next_seq - snd_.high_ack);
  }

  // receiver side
  void on_data_at_receiver(const net::Packet& p);
  void send_ack(double echo_time);

  net::Dumbbell& net_;
  int flow_;
  double base_rtt_s_;
  TcpConfig cfg_;

  /// Per-transfer sender hot state — congestion control, sequencing, and
  /// the RTO estimator — grouped into one trivially-copyable block so
  /// open()'s rewind is a plain store sweep and the ACK-clocked working set
  /// stays within two cache lines per flow at pool scale.
  struct SenderState {
    double cwnd = 0.0;
    double ssthresh = 0.0;
    std::int64_t next_seq = 0;   // next NEW sequence to transmit
    std::int64_t high_ack = 0;   // highest cumulative ack (next expected)
    std::int64_t recover = 0;    // NewReno recovery point
    std::int64_t limit_seq = 0;  // first sequence NOT in the transfer; 0 = unbounded
    double srtt = 0.0;
    double rttvar = 0.0;
    double rto = 0.0;
    double last_retransmit_time = -1.0;  // Karn's rule cutoff
    std::int32_t dup_count = 0;
    std::int32_t backoff = 1;
    bool running = false;
    bool in_recovery = false;
    bool have_rtt = false;
  };
  static_assert(sizeof(SenderState) == 96, "TCP sender hot state outgrew its line budget");
  static_assert(std::is_trivially_copyable_v<SenderState>);

  /// Per-transfer receiver hot state (cumulative ack point + delack burst).
  struct ReceiverState {
    std::int64_t expected = 0;
    double last_echo = 0.0;
    std::int32_t pending_acks = 0;
  };
  static_assert(sizeof(ReceiverState) == 24, "TCP receiver hot state outgrew its line budget");
  static_assert(std::is_trivially_copyable_v<ReceiverState>);

  SenderState snd_;
  ReceiverState rcv_;

  // pooled-lifecycle state (cumulative across incarnations)
  std::uint64_t transfers_completed_ = 0;
  CompletionFn done_;

  // Lazily re-armed RTO deadline: every ACK used to cancel-and-reschedule
  // the kernel event, leaving a window's worth of dead heap entries cycling
  // through the simulator per flow; now each ACK is a store (see
  // sim::LazyTimer).
  sim::LazyTimer rto_timer_;
  std::uint64_t sent_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t fast_retx_ = 0;

  // Sorted ascending; a vector (capacity retained across loss episodes)
  // instead of a node-per-entry set, so reordering buffers allocate nothing
  // in steady state. Holes are at most a window's worth of packets, so the
  // O(n) insert shift is cache-friendly and tiny.
  std::vector<std::int64_t> out_of_order_;
  // Lazy delayed-ACK deadline, same shape as the RTO: arming is a store and
  // sending the ACK merely deactivates (at most one kernel event per delack
  // timeout per flow instead of a schedule+cancel pair per ACKed pair).
  sim::LazyTimer delack_timer_;
  std::uint64_t delivered_ = 0;

  // measurement
  stats::LossEventRecorder recorder_;
  stats::OnlineMoments rtt_stats_;
  double next_rtt_sample_at_ = 0.0;
};

}  // namespace ebrc::tcp
