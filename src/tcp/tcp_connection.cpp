#include "tcp/tcp_connection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ebrc::tcp {

TcpConnection::TcpConnection(net::Dumbbell& net, int flow_id, double base_rtt_s, TcpConfig cfg)
    : net_(net),
      flow_(flow_id),
      base_rtt_s_(base_rtt_s),
      cfg_(cfg),
      recorder_(base_rtt_s) {
  if (base_rtt_s <= 0) throw std::invalid_argument("TcpConnection: base RTT must be > 0");
  snd_.cwnd = cfg.initial_cwnd;
  snd_.ssthresh = cfg.initial_ssthresh;
  snd_.rto = std::max(cfg.min_rto, 2.0 * base_rtt_s);
  net_.on_data_at_receiver(flow_, [this](const net::Packet& p) { on_data_at_receiver(p); });
  net_.on_packet_at_sender(flow_, [this](const net::Packet& p) { on_packet_at_sender(p); });
}

void TcpConnection::start(double at) {
  net_.simulator().schedule_at(at, [this] {
    snd_.running = true;
    try_send();
    arm_rto();
  });
}

void TcpConnection::stop() {
  snd_.running = false;
  rto_timer_.cancel();
  delack_timer_.cancel();
}

void TcpConnection::open(std::uint64_t transfer_packets, CompletionFn on_complete) {
  if (transfer_packets >
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    // Silently treating this as the 0 = unbounded mode would strand the
    // completion callback (and the pool slot waiting on it) forever.
    throw std::invalid_argument("TcpConnection::open: transfer size exceeds sequence space");
  }
  reset_transfer_state();
  snd_.limit_seq = static_cast<std::int64_t>(transfer_packets);
  done_ = std::move(on_complete);
  snd_.running = true;
  try_send();
  arm_rto();
}

void TcpConnection::close() {
  snd_.running = false;
  rto_timer_.cancel();
  delack_timer_.cancel();
  done_ = CompletionFn{};
}

void TcpConnection::finish_transfer() {
  snd_.running = false;
  rto_timer_.cancel();
  delack_timer_.cancel();
  ++transfers_completed_;
  if (done_) {
    CompletionFn done = std::move(done_);
    done_ = CompletionFn{};
    done();
  }
}

void TcpConnection::reset_transfer_state() {
  // Wholesale POD rewind to a fresh connection's state (`running` is
  // restated by open() immediately after). Timers and the reorder buffer
  // keep their kernel slots and capacity.
  snd_ = SenderState{};
  snd_.cwnd = cfg_.initial_cwnd;
  snd_.ssthresh = cfg_.initial_ssthresh;
  snd_.rto = std::max(cfg_.min_rto, 2.0 * base_rtt_s_);
  rcv_ = ReceiverState{};
  rto_timer_.cancel();
  delack_timer_.cancel();
  out_of_order_.clear();  // capacity retained — reuse allocates nothing
  recorder_.set_rtt_window(base_rtt_s_);
}

void TcpConnection::reset_counters() {
  sent_ = 0;
  delivered_ = 0;
  timeouts_ = 0;
  fast_retx_ = 0;
}

// --------------------------------------------------------------- sender ----

void TcpConnection::try_send() {
  if (!snd_.running) return;
  while (flight() < std::min(snd_.cwnd, cfg_.max_cwnd) &&
         (snd_.limit_seq == 0 || snd_.next_seq < snd_.limit_seq)) {
    transmit(snd_.next_seq, /*retransmission=*/false);
    ++snd_.next_seq;
  }
}

void TcpConnection::transmit(std::int64_t seq, bool retransmission) {
  net::Packet p;
  p.seq = seq;
  p.size_bytes = cfg_.packet_bytes;
  p.send_time = net_.simulator().now();
  p.kind = net::PacketKind::kData;
  net_.send_data(flow_, p);
  ++sent_;
  recorder_.on_packet(p.send_time);
  if (retransmission) snd_.last_retransmit_time = p.send_time;
}

void TcpConnection::on_packet_at_sender(const net::Packet& p) {
  if (!snd_.running || p.kind != net::PacketKind::kAck) return;
  if (p.ack.seq > snd_.high_ack) {
    on_new_ack(p.ack.seq, p.ack.echo_time);
  } else {
    on_dupack();
  }
}

void TcpConnection::on_new_ack(std::int64_t ack, double echo_time) {
  const std::int64_t acked = ack - snd_.high_ack;
  snd_.high_ack = ack;
  snd_.dup_count = 0;

  // Karn's rule: only sample RTT when the echoed transmission is later than
  // the last retransmission.
  if (echo_time > snd_.last_retransmit_time) {
    note_rtt_sample(net_.simulator().now() - echo_time);
  }
  snd_.backoff = 1;

  // Finite transfer: done when the final byte is cumulatively acknowledged.
  if (snd_.limit_seq != 0 && snd_.high_ack >= snd_.limit_seq) {
    finish_transfer();
    return;
  }

  if (snd_.in_recovery) {
    if (ack >= snd_.recover) {
      // Full acknowledgment: leave recovery, deflate to ssthresh.
      snd_.in_recovery = false;
      snd_.cwnd = snd_.ssthresh;
    } else {
      // Partial ack: the next hole is lost too — retransmit it, deflate by
      // the amount acked (NewReno).
      transmit(snd_.high_ack, /*retransmission=*/true);
      snd_.cwnd = std::max(1.0, snd_.cwnd - static_cast<double>(acked) + 1.0);
      arm_rto();
      try_send();
      return;
    }
  } else if (snd_.cwnd < snd_.ssthresh) {
    snd_.cwnd += static_cast<double>(acked);  // slow start (with delayed acks)
  } else {
    snd_.cwnd += static_cast<double>(acked) / snd_.cwnd;  // congestion avoidance
  }
  recorder_.note_rate(snd_.srtt > 0 ? snd_.cwnd / snd_.srtt : 0.0);

  if (snd_.high_ack == snd_.next_seq) {
    rto_timer_.disarm();  // everything acked; the pending event dies lazily
  } else {
    arm_rto();
  }
  try_send();
}

void TcpConnection::on_dupack() {
  if (snd_.in_recovery) {
    snd_.cwnd += 1.0;  // window inflation per extra dupack
    try_send();
    return;
  }
  if (++snd_.dup_count >= cfg_.dupack_threshold) {
    enter_recovery();
  }
}

void TcpConnection::enter_recovery() {
  ++fast_retx_;
  record_loss_event();
  snd_.ssthresh = std::max(2.0, flight() / 2.0);
  snd_.recover = snd_.next_seq;
  snd_.in_recovery = true;
  transmit(snd_.high_ack, /*retransmission=*/true);
  snd_.cwnd = snd_.ssthresh + static_cast<double>(cfg_.dupack_threshold);
  recorder_.note_rate(snd_.srtt > 0 ? snd_.ssthresh / snd_.srtt : 0.0);
  arm_rto();
}

void TcpConnection::on_timeout() {
  if (!snd_.running) return;
  ++timeouts_;
  record_loss_event();
  snd_.ssthresh = std::max(2.0, flight() / 2.0);
  snd_.cwnd = 1.0;
  snd_.dup_count = 0;
  snd_.in_recovery = false;
  snd_.recover = snd_.next_seq;
  snd_.backoff = std::min(snd_.backoff * 2, 64);
  recorder_.note_rate(snd_.srtt > 0 ? 1.0 / snd_.srtt : 0.0);
  transmit(snd_.high_ack, /*retransmission=*/true);
  arm_rto();
}

void TcpConnection::arm_rto() {
  const double timeout = std::min(cfg_.max_rto, snd_.rto * static_cast<double>(snd_.backoff));
  rto_timer_.arm(net_.simulator().now() + timeout, [this](double at) {
    return net_.simulator().schedule_at(at, [this] { rto_event(); });
  });
}

void TcpConnection::rto_event() {
  if (!snd_.running) return;
  const bool due = rto_timer_.fire(net_.simulator().now(), [this](double at) {
    return net_.simulator().schedule_at(at, [this] { rto_event(); });
  });
  if (due) on_timeout();
}

void TcpConnection::note_rtt_sample(double sample) {
  if (sample <= 0) return;
  if (!snd_.have_rtt) {
    snd_.srtt = sample;
    snd_.rttvar = sample / 2.0;
    snd_.have_rtt = true;
  } else {
    snd_.rttvar += (std::abs(sample - snd_.srtt) - snd_.rttvar) / 4.0;
    snd_.srtt += (sample - snd_.srtt) / 8.0;
  }
  snd_.rto = std::clamp(snd_.srtt + 4.0 * snd_.rttvar, cfg_.min_rto, cfg_.max_rto);
  recorder_.set_rtt_window(snd_.srtt);
  // The paper's r: the event-average RTT, sampled once per round trip.
  const double now = net_.simulator().now();
  if (now >= next_rtt_sample_at_) {
    rtt_stats_.add(sample);
    next_rtt_sample_at_ = now + snd_.srtt;
  }
}

void TcpConnection::record_loss_event() {
  recorder_.on_loss(net_.simulator().now());
}

// ------------------------------------------------------------- receiver ----

void TcpConnection::on_data_at_receiver(const net::Packet& p) {
  rcv_.last_echo = p.send_time;
  bool out_of_order = false;
  if (p.seq == rcv_.expected) {
    ++rcv_.expected;
    ++delivered_;
    // Drain any buffered continuation, then trim the prefix in one move.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == rcv_.expected) {
      ++rcv_.expected;
      ++delivered_;
      ++it;
    }
    out_of_order_.erase(out_of_order_.begin(), it);
  } else if (p.seq > rcv_.expected) {
    const auto pos = std::lower_bound(out_of_order_.begin(), out_of_order_.end(), p.seq);
    if (pos == out_of_order_.end() || *pos != p.seq) out_of_order_.insert(pos, p.seq);
    out_of_order = true;
  } else {
    out_of_order = true;  // duplicate of already-delivered data: ack at once
  }

  ++rcv_.pending_acks;
  if (out_of_order || rcv_.pending_acks >= cfg_.ack_every) {
    send_ack(p.send_time);
  } else if (!delack_timer_.active()) {
    delack_timer_.arm(net_.simulator().now() + cfg_.delayed_ack_timeout,
                      [this](double at) {
                        return net_.simulator().schedule_at(
                            at, [this] { delack_event(); });
                      });
  }
}

void TcpConnection::delack_event() {
  if (!snd_.running) return;
  const bool due = delack_timer_.fire(net_.simulator().now(), [this](double at) {
    return net_.simulator().schedule_at(at, [this] { delack_event(); });
  });
  if (due) send_ack(rcv_.last_echo);
}

void TcpConnection::send_ack(double echo_time) {
  delack_timer_.disarm();
  rcv_.pending_acks = 0;
  net::Packet ack;
  ack.kind = net::PacketKind::kAck;
  ack.ack = {/*seq=*/rcv_.expected, /*echo_time=*/echo_time};
  ack.size_bytes = 40.0;
  ack.send_time = net_.simulator().now();
  net_.send_back(flow_, ack);
}

}  // namespace ebrc::tcp
