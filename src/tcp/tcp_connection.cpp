#include "tcp/tcp_connection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ebrc::tcp {

TcpConnection::TcpConnection(net::Dumbbell& net, int flow_id, double base_rtt_s, TcpConfig cfg)
    : net_(net),
      flow_(flow_id),
      base_rtt_s_(base_rtt_s),
      cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(cfg.initial_ssthresh),
      rto_(std::max(cfg.min_rto, 2.0 * base_rtt_s)),
      recorder_(base_rtt_s) {
  if (base_rtt_s <= 0) throw std::invalid_argument("TcpConnection: base RTT must be > 0");
  net_.on_data_at_receiver(flow_, [this](const net::Packet& p) { on_data_at_receiver(p); });
  net_.on_packet_at_sender(flow_, [this](const net::Packet& p) { on_packet_at_sender(p); });
}

void TcpConnection::start(double at) {
  net_.simulator().schedule_at(at, [this] {
    running_ = true;
    try_send();
    arm_rto();
  });
}

void TcpConnection::stop() {
  running_ = false;
  rto_timer_.cancel();
  delack_timer_.cancel();
}

void TcpConnection::open(std::uint64_t transfer_packets, CompletionFn on_complete) {
  if (transfer_packets >
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    // Silently treating this as the 0 = unbounded mode would strand the
    // completion callback (and the pool slot waiting on it) forever.
    throw std::invalid_argument("TcpConnection::open: transfer size exceeds sequence space");
  }
  reset_transfer_state();
  limit_seq_ = static_cast<std::int64_t>(transfer_packets);
  done_ = std::move(on_complete);
  running_ = true;
  try_send();
  arm_rto();
}

void TcpConnection::close() {
  running_ = false;
  rto_timer_.cancel();
  delack_timer_.cancel();
  done_ = CompletionFn{};
}

void TcpConnection::finish_transfer() {
  running_ = false;
  rto_timer_.cancel();
  delack_timer_.cancel();
  ++transfers_completed_;
  if (done_) {
    CompletionFn done = std::move(done_);
    done_ = CompletionFn{};
    done();
  }
}

void TcpConnection::reset_transfer_state() {
  cwnd_ = cfg_.initial_cwnd;
  ssthresh_ = cfg_.initial_ssthresh;
  next_seq_ = 0;
  high_ack_ = 0;
  dup_count_ = 0;
  in_recovery_ = false;
  recover_ = 0;
  srtt_ = 0.0;
  rttvar_ = 0.0;
  have_rtt_ = false;
  rto_ = std::max(cfg_.min_rto, 2.0 * base_rtt_s_);
  backoff_ = 1;
  last_retransmit_time_ = -1.0;
  limit_seq_ = 0;
  rto_timer_.cancel();
  expected_ = 0;
  out_of_order_.clear();  // capacity retained — reuse allocates nothing
  pending_acks_ = 0;
  last_echo_ = 0.0;
  delack_timer_.cancel();
  recorder_.set_rtt_window(base_rtt_s_);
}

void TcpConnection::reset_counters() {
  sent_ = 0;
  delivered_ = 0;
  timeouts_ = 0;
  fast_retx_ = 0;
}

// --------------------------------------------------------------- sender ----

void TcpConnection::try_send() {
  if (!running_) return;
  while (flight() < std::min(cwnd_, cfg_.max_cwnd) &&
         (limit_seq_ == 0 || next_seq_ < limit_seq_)) {
    transmit(next_seq_, /*retransmission=*/false);
    ++next_seq_;
  }
}

void TcpConnection::transmit(std::int64_t seq, bool retransmission) {
  net::Packet p;
  p.seq = seq;
  p.size_bytes = cfg_.packet_bytes;
  p.send_time = net_.simulator().now();
  p.kind = net::PacketKind::kData;
  net_.send_data(flow_, p);
  ++sent_;
  recorder_.on_packet(p.send_time);
  if (retransmission) last_retransmit_time_ = p.send_time;
}

void TcpConnection::on_packet_at_sender(const net::Packet& p) {
  if (!running_ || p.kind != net::PacketKind::kAck) return;
  if (p.ack.seq > high_ack_) {
    on_new_ack(p.ack.seq, p.ack.echo_time);
  } else {
    on_dupack();
  }
}

void TcpConnection::on_new_ack(std::int64_t ack, double echo_time) {
  const std::int64_t acked = ack - high_ack_;
  high_ack_ = ack;
  dup_count_ = 0;

  // Karn's rule: only sample RTT when the echoed transmission is later than
  // the last retransmission.
  if (echo_time > last_retransmit_time_) {
    note_rtt_sample(net_.simulator().now() - echo_time);
  }
  backoff_ = 1;

  // Finite transfer: done when the final byte is cumulatively acknowledged.
  if (limit_seq_ != 0 && high_ack_ >= limit_seq_) {
    finish_transfer();
    return;
  }

  if (in_recovery_) {
    if (ack >= recover_) {
      // Full acknowledgment: leave recovery, deflate to ssthresh.
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    } else {
      // Partial ack: the next hole is lost too — retransmit it, deflate by
      // the amount acked (NewReno).
      transmit(high_ack_, /*retransmission=*/true);
      cwnd_ = std::max(1.0, cwnd_ - static_cast<double>(acked) + 1.0);
      arm_rto();
      try_send();
      return;
    }
  } else if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(acked);  // slow start (with delayed acks)
  } else {
    cwnd_ += static_cast<double>(acked) / cwnd_;  // congestion avoidance
  }
  recorder_.note_rate(srtt_ > 0 ? cwnd_ / srtt_ : 0.0);

  if (high_ack_ == next_seq_) {
    rto_timer_.disarm();  // everything acked; the pending event dies lazily
  } else {
    arm_rto();
  }
  try_send();
}

void TcpConnection::on_dupack() {
  if (in_recovery_) {
    cwnd_ += 1.0;  // window inflation per extra dupack
    try_send();
    return;
  }
  if (++dup_count_ >= cfg_.dupack_threshold) {
    enter_recovery();
  }
}

void TcpConnection::enter_recovery() {
  ++fast_retx_;
  record_loss_event();
  ssthresh_ = std::max(2.0, flight() / 2.0);
  recover_ = next_seq_;
  in_recovery_ = true;
  transmit(high_ack_, /*retransmission=*/true);
  cwnd_ = ssthresh_ + static_cast<double>(cfg_.dupack_threshold);
  recorder_.note_rate(srtt_ > 0 ? ssthresh_ / srtt_ : 0.0);
  arm_rto();
}

void TcpConnection::on_timeout() {
  if (!running_) return;
  ++timeouts_;
  record_loss_event();
  ssthresh_ = std::max(2.0, flight() / 2.0);
  cwnd_ = 1.0;
  dup_count_ = 0;
  in_recovery_ = false;
  recover_ = next_seq_;
  backoff_ = std::min(backoff_ * 2, 64);
  recorder_.note_rate(srtt_ > 0 ? 1.0 / srtt_ : 0.0);
  transmit(high_ack_, /*retransmission=*/true);
  arm_rto();
}

void TcpConnection::arm_rto() {
  const double timeout = std::min(cfg_.max_rto, rto_ * static_cast<double>(backoff_));
  rto_timer_.arm(net_.simulator().now() + timeout, [this](double at) {
    return net_.simulator().schedule_at(at, [this] { rto_event(); });
  });
}

void TcpConnection::rto_event() {
  if (!running_) return;
  const bool due = rto_timer_.fire(net_.simulator().now(), [this](double at) {
    return net_.simulator().schedule_at(at, [this] { rto_event(); });
  });
  if (due) on_timeout();
}

void TcpConnection::note_rtt_sample(double sample) {
  if (sample <= 0) return;
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
    have_rtt_ = true;
  } else {
    rttvar_ += (std::abs(sample - srtt_) - rttvar_) / 4.0;
    srtt_ += (sample - srtt_) / 8.0;
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, cfg_.min_rto, cfg_.max_rto);
  recorder_.set_rtt_window(srtt_);
  // The paper's r: the event-average RTT, sampled once per round trip.
  const double now = net_.simulator().now();
  if (now >= next_rtt_sample_at_) {
    rtt_stats_.add(sample);
    next_rtt_sample_at_ = now + srtt_;
  }
}

void TcpConnection::record_loss_event() {
  recorder_.on_loss(net_.simulator().now());
}

// ------------------------------------------------------------- receiver ----

void TcpConnection::on_data_at_receiver(const net::Packet& p) {
  last_echo_ = p.send_time;
  bool out_of_order = false;
  if (p.seq == expected_) {
    ++expected_;
    ++delivered_;
    // Drain any buffered continuation, then trim the prefix in one move.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == expected_) {
      ++expected_;
      ++delivered_;
      ++it;
    }
    out_of_order_.erase(out_of_order_.begin(), it);
  } else if (p.seq > expected_) {
    const auto pos = std::lower_bound(out_of_order_.begin(), out_of_order_.end(), p.seq);
    if (pos == out_of_order_.end() || *pos != p.seq) out_of_order_.insert(pos, p.seq);
    out_of_order = true;
  } else {
    out_of_order = true;  // duplicate of already-delivered data: ack at once
  }

  ++pending_acks_;
  if (out_of_order || pending_acks_ >= cfg_.ack_every) {
    send_ack(p.send_time);
  } else if (!delack_timer_.active()) {
    delack_timer_.arm(net_.simulator().now() + cfg_.delayed_ack_timeout,
                      [this](double at) {
                        return net_.simulator().schedule_at(
                            at, [this] { delack_event(); });
                      });
  }
}

void TcpConnection::delack_event() {
  if (!running_) return;
  const bool due = delack_timer_.fire(net_.simulator().now(), [this](double at) {
    return net_.simulator().schedule_at(at, [this] { delack_event(); });
  });
  if (due) send_ack(last_echo_);
}

void TcpConnection::send_ack(double echo_time) {
  delack_timer_.disarm();
  pending_acks_ = 0;
  net::Packet ack;
  ack.kind = net::PacketKind::kAck;
  ack.ack = {/*seq=*/expected_, /*echo_time=*/echo_time};
  ack.size_bytes = 40.0;
  ack.send_time = net_.simulator().now();
  net_.send_back(flow_, ack);
}

}  // namespace ebrc::tcp
