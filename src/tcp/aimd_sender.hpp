// Rate-based AIMD sender for the Claim-4 numeric experiments: the send rate
// grows additively by alpha packets/RTT per RTT and is multiplied by beta on
// each loss event (detected from receiver gap reports, grouped within one
// RTT). This is the stochastic, packet-level counterpart of
// model::simulate_fluid_aimd.
#pragma once

#include <cstdint>

#include "net/dumbbell.hpp"
#include "sim/random.hpp"
#include "stats/loss_events.hpp"

namespace ebrc::tcp {

struct AimdSenderConfig {
  double alpha = 1.0;         // packets/RTT per RTT
  double beta = 0.5;
  double rtt_s = 1.0;         // fixed round-trip used for the increase clock
  double initial_rate = 10.0; // packets/s
  double packet_bytes = 1000.0;
};

class AimdSender {
 public:
  AimdSender(net::Dumbbell& net, int flow_id, AimdSenderConfig cfg);

  void start(double at);
  void stop() { running_ = false; }

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] const stats::LossEventRecorder& recorder() const noexcept { return recorder_; }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }

 private:
  void send_next();
  void increase_tick();
  void on_arrival(const net::Packet& p);

  net::Dumbbell& net_;
  int flow_;
  AimdSenderConfig cfg_;
  double rate_;
  bool running_ = false;
  std::int64_t next_seq_ = 0;
  std::int64_t expected_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  stats::LossEventRecorder recorder_;
};

}  // namespace ebrc::tcp
