#include "rcp/rcp_connection.hpp"

#include <algorithm>
#include <stdexcept>

namespace ebrc::rcp {

RcpConnection::RcpConnection(net::Dumbbell& net, int flow_id, double base_rtt_s, RcpConfig cfg)
    : net_(net),
      flow_(flow_id),
      base_rtt_s_(base_rtt_s),
      cfg_(cfg),
      send_ev_(net.simulator().pin([this] { send_next(); })),
      feedback_ev_(net.simulator().pin([this] { feedback_tick(); })),
      recorder_(base_rtt_s) {
  if (base_rtt_s <= 0) throw std::invalid_argument("RcpConnection: base RTT must be > 0");
  if (cfg_.initial_rate <= util::DataRate::zero() || cfg_.packet_bytes <= 0) {
    throw std::invalid_argument("RcpConnection: bad configuration");
  }
  snd_.rate = cfg_.initial_rate;
  snd_.srtt = base_rtt_s;
  rcv_.rtt_hint = base_rtt_s;
  net_.on_data_at_receiver(flow_, [this](const net::Packet& p) { on_data(p); });
  net_.on_packet_at_sender(flow_, [this](const net::Packet& p) { on_feedback(p); });
}

void RcpConnection::start(double at) {
  net_.simulator().schedule_at(at, [this] {
    snd_.running = true;
    send_next();
  });
}

void RcpConnection::stop() { snd_.running = false; }

void RcpConnection::open(std::uint64_t transfer_packets, CompletionFn on_complete) {
  reset_transfer_state();
  snd_.transfer_limit = transfer_packets;
  done_ = std::move(on_complete);
  snd_.running = true;
  if (!snd_.pacing_armed) {
    snd_.pacing_armed = true;
    net_.simulator().schedule_pinned(0.0, send_ev_);
  }
}

void RcpConnection::close() {
  snd_.running = false;
  done_ = CompletionFn{};
}

void RcpConnection::finish_transfer() {
  snd_.running = false;
  ++transfers_completed_;
  if (done_) {
    CompletionFn done = std::move(done_);
    done_ = CompletionFn{};
    done();
  }
}

void RcpConnection::reset_transfer_state() {
  const bool pacing = snd_.pacing_armed;
  const bool feedback = snd_.feedback_armed;
  snd_ = SenderState{};
  snd_.rate = cfg_.initial_rate;
  snd_.srtt = base_rtt_s_;
  snd_.pacing_armed = pacing;
  snd_.feedback_armed = feedback;
  rcv_ = ReceiverState{};
  rcv_.rtt_hint = base_rtt_s_;
  recorder_.set_rtt_window(base_rtt_s_);
}

void RcpConnection::reset_counters() {
  sent_ = 0;
  delivered_ = 0;
  qdelay_sum_s_ = 0.0;
  qdelay_samples_ = 0;
}

// --------------------------------------------------------------- sender ----

void RcpConnection::send_next() {
  if (!snd_.running) {
    snd_.pacing_armed = false;
    return;
  }
  net::Packet p;
  p.seq = snd_.next_seq++;
  p.size_bytes = cfg_.packet_bytes;
  p.send_time = net_.simulator().now();
  p.data.rtt_hint = snd_.srtt;
  // data.router_rate starts 0; the RCP router stamps it in transit.
  net_.send_data(flow_, p);
  ++sent_;
  ++snd_.transfer_sent;
  if (snd_.transfer_limit != 0 && snd_.transfer_sent >= snd_.transfer_limit) {
    // Paced unreliable stream: done at the emission of the final packet.
    snd_.pacing_armed = false;
    finish_transfer();
    return;
  }
  snd_.pacing_armed = true;
  net_.simulator().schedule_pinned(snd_.rate.packet_interval().seconds(), send_ev_);
}

void RcpConnection::on_feedback(const net::Packet& p) {
  if (!snd_.running || p.kind != net::PacketKind::kRcpFeedback) return;
  const double now = net_.simulator().now();

  const double sample_s = now - p.rcp.echo_time;
  if (sample_s > 0) {
    if (snd_.srtt <= 0) {
      snd_.srtt = sample_s;
    } else {
      snd_.srtt = cfg_.rtt_smoothing * snd_.srtt + (1.0 - cfg_.rtt_smoothing) * sample_s;
    }
    if (now >= next_rtt_sample_at_) {
      rtt_stats_.add(sample_s);
      next_rtt_sample_at_ = now + snd_.srtt;
    }
    const auto sample = util::TimeDelta::seconds(sample_s);
    if (snd_.min_rtt.is_zero() || sample < snd_.min_rtt) snd_.min_rtt = sample;
    qdelay_sum_s_ += (sample - snd_.min_rtt).seconds();
    ++qdelay_samples_;
  }

  if (p.rcp.rate_pps > 0.0) {
    // The router has spoken: pace at its advertised fair share.
    snd_.have_stamp = true;
    snd_.rate = util::max(cfg_.min_rate, util::DataRate::packets_per_second(p.rcp.rate_pps));
  } else if (!snd_.have_stamp) {
    // No RCP router on the path yet: TFRC-style slow start, doubling per
    // feedback capped at twice the delivered rate.
    auto rate = snd_.rate * 2.0;
    if (p.rcp.recv_rate > 0.0) {
      rate = util::min(rate, 2.0 * util::DataRate::packets_per_second(p.rcp.recv_rate));
    }
    snd_.rate = util::max(cfg_.min_rate, rate);
  }
  recorder_.note_rate(snd_.rate.pps());
}

// ------------------------------------------------------------- receiver ----

void RcpConnection::on_data(const net::Packet& p) {
  const double now = net_.simulator().now();
  if (p.data.rtt_hint > 0) rcv_.rtt_hint = p.data.rtt_hint;
  recorder_.set_rtt_window(rcv_.rtt_hint);
  rcv_.router_rate = p.data.router_rate;

  const std::int64_t missing = std::max<std::int64_t>(0, p.seq - rcv_.expected_seq);
  if (p.seq >= rcv_.expected_seq) rcv_.expected_seq = p.seq + 1;
  for (std::int64_t i = 0; i < missing; ++i) recorder_.on_loss(now);
  recorder_.on_packet(now);
  ++delivered_;
  ++rcv_.recv_since_feedback;
  rcv_.last_data_send_time = p.send_time;

  if (!rcv_.started) {
    rcv_.started = true;
    rcv_.last_feedback_time = now;
    if (!snd_.feedback_armed) {
      snd_.feedback_armed = true;
      net_.simulator().schedule_pinned(std::max(1e-3, rcv_.rtt_hint), feedback_ev_);
    }
  }
}

void RcpConnection::feedback_tick() {
  if (!snd_.running) {
    snd_.feedback_armed = false;
    return;
  }
  const double now = net_.simulator().now();
  if (rcv_.recv_since_feedback > 0) {
    net::Packet report;
    report.kind = net::PacketKind::kRcpFeedback;
    report.size_bytes = 40.0;
    report.send_time = now;
    const double elapsed = std::max(1e-9, now - rcv_.last_feedback_time);
    report.rcp = {/*rate_pps=*/rcv_.router_rate,
                  /*recv_rate=*/static_cast<double>(rcv_.recv_since_feedback) / elapsed,
                  /*echo_time=*/rcv_.last_data_send_time};
    net_.send_back(flow_, report);
    rcv_.recv_since_feedback = 0;
    rcv_.last_feedback_time = now;
  }
  snd_.feedback_armed = true;
  net_.simulator().schedule_pinned(std::max(1e-3, rcv_.rtt_hint), feedback_ev_);
}

}  // namespace ebrc::rcp
