// RCP (Rate Control Protocol): router-assisted explicit-rate congestion
// control per the RCP equilibrium analysis. The router on the bottleneck
// (net::Link with enable_rcp()) computes one fair-share rate for all flows
// and stamps it into passing data packets; the receiver echoes the stamp
// once per RTT (kRcpFeedback) and the sender simply paces at the advertised
// rate — no probing, no loss-driven sawtooth. Until the first stamp arrives
// the sender slow-starts like TFRC (double per feedback, capped at twice the
// delivered rate).
//
// The sender also measures queuing delay (RTT sample minus per-transfer
// minimum) purely as telemetry: RCP's equilibrium queue should be near
// empty, and the controller matrix's queuing-delay column is how that shows.
//
// Interfaces use typed units (util/units.hpp): the advertised rate is a
// DataRate, delays are TimeDeltas, and conversion to the simulator's raw
// doubles happens only at the packet boundary.
#pragma once

#include <cstdint>
#include <type_traits>

#include "net/dumbbell.hpp"
#include "stats/loss_events.hpp"
#include "stats/online.hpp"
#include "util/units.hpp"

namespace ebrc::rcp {

struct RcpConfig {
  double packet_bytes = 1000.0;
  util::DataRate initial_rate = util::DataRate::packets_per_second(2.0);
  util::DataRate min_rate = util::DataRate::packets_per_second(0.1);
  /// EWMA coefficient for the RTT estimate (same convention as TFRC).
  double rtt_smoothing = 0.9;
};

class RcpConnection {
 public:
  using CompletionFn = sim::InlineFunction<void(), 24>;

  RcpConnection(net::Dumbbell& net, int flow_id, double base_rtt_s, RcpConfig cfg = {});

  // Registers this-capturing handlers and pinned events at construction;
  // the object must stay at its construction address.
  RcpConnection(const RcpConnection&) = delete;
  RcpConnection& operator=(const RcpConnection&) = delete;

  void start(double at);
  void stop();

  // --- pooled lifecycle (Sender concept; see workload/sender.hpp) --------
  void open(std::uint64_t transfer_packets, CompletionFn on_complete = {});
  void close();
  [[nodiscard]] bool active() const noexcept { return snd_.running; }
  [[nodiscard]] std::uint64_t transfers_completed() const noexcept {
    return transfers_completed_;
  }

  // --- measurement -------------------------------------------------------
  [[nodiscard]] const stats::LossEventRecorder& recorder() const noexcept { return recorder_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] double srtt() const noexcept { return snd_.srtt; }
  [[nodiscard]] const stats::OnlineMoments& rtt_stats() const noexcept { return rtt_stats_; }
  /// Cumulative queuing-delay telemetry, one sample per feedback (RTT sample
  /// minus the per-transfer minimum RTT).
  [[nodiscard]] double queuing_delay_sum_s() const noexcept { return qdelay_sum_s_; }
  [[nodiscard]] std::uint64_t queuing_delay_samples() const noexcept { return qdelay_samples_; }
  void reset_counters();

  // --- typed-unit surface --------------------------------------------------
  [[nodiscard]] util::DataRate target_rate() const noexcept { return snd_.rate; }
  /// True once the sender has adopted a router-advertised rate.
  [[nodiscard]] bool rate_stamped() const noexcept { return snd_.have_stamp; }
  [[nodiscard]] util::TimeDelta min_round_trip() const noexcept { return snd_.min_rtt; }

 private:
  void send_next();
  void on_feedback(const net::Packet& p);
  void finish_transfer();
  void reset_transfer_state();
  void on_data(const net::Packet& p);
  void feedback_tick();

  net::Dumbbell& net_;
  int flow_;
  double base_rtt_s_;
  RcpConfig cfg_;

  sim::Simulator::PinnedEvent send_ev_;
  sim::Simulator::PinnedEvent feedback_ev_;

  /// Per-transfer sender hot state; chain guards survive the POD rewind.
  struct SenderState {
    util::DataRate rate;
    double srtt = 0.0;
    util::TimeDelta min_rtt;  // per-transfer floor (0 = no sample yet)
    std::int64_t next_seq = 0;
    std::uint64_t transfer_limit = 0;
    std::uint64_t transfer_sent = 0;
    bool running = false;
    bool pacing_armed = false;
    bool feedback_armed = false;
    bool have_stamp = false;  // a router-advertised rate has been adopted
  };
  static_assert(sizeof(SenderState) == 56, "RCP sender hot state outgrew its budget");
  static_assert(std::is_trivially_copyable_v<SenderState>);

  /// Per-transfer receiver hot state.
  struct ReceiverState {
    std::int64_t expected_seq = 0;
    double rtt_hint = 0.0;
    double last_feedback_time = 0.0;
    double last_data_send_time = 0.0;
    double router_rate = 0.0;  // stamp of the most recent data packet
    std::uint64_t recv_since_feedback = 0;
    bool started = false;
  };
  static_assert(sizeof(ReceiverState) == 56, "RCP receiver hot state outgrew its budget");
  static_assert(std::is_trivially_copyable_v<ReceiverState>);

  SenderState snd_;
  ReceiverState rcv_;

  std::uint64_t transfers_completed_ = 0;
  CompletionFn done_;

  // cumulative counters (survive open()/close())
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  double qdelay_sum_s_ = 0.0;
  std::uint64_t qdelay_samples_ = 0;

  stats::LossEventRecorder recorder_;
  stats::OnlineMoments rtt_stats_;
  double next_rtt_sample_at_ = 0.0;
};

}  // namespace ebrc::rcp
