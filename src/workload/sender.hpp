// The Sender concept: the contract every rate controller in the zoo
// satisfies, extracted from the TfrcConnection/TcpConnection lifecycle that
// PR 5 unified and PR 9 generalizes to DelayAimd and RCP.
//
// A Sender is constructed ONCE per pool slot (handlers and pinned events are
// permanent, the object is address-stable) and then cycled through
// open()/close() per transfer: open() rewinds per-transfer POD state while
// cumulative measurement counters survive, close() retires the flow with
// pacing/feedback chains dying lazily against the running flag. The pool
// quarantines retired slots for a drain interval before reuse.
//
// The concept is structural, checked at compile time for all four
// controllers (see flow_pools.hpp), so a new controller that forgets part of
// the lifecycle fails the build, not a 3 a.m. sweep.
#pragma once

#include <concepts>
#include <cstdint>

#include "sim/inline_function.hpp"
#include "stats/loss_events.hpp"
#include "stats/online.hpp"

namespace ebrc::workload {

/// Flow-retirement notification shared by all pooled controllers.
using CompletionFn = sim::InlineFunction<void(), 24>;

template <typename S>
concept Sender = requires(S s, const S cs, double at, std::uint64_t n, CompletionFn done) {
  // continuous-source control (figure experiments)
  s.start(at);
  s.stop();
  // pooled per-transfer lifecycle (dynamic workloads)
  s.open(n, std::move(done));
  s.close();
  { cs.active() } -> std::convertible_to<bool>;
  { cs.transfers_completed() } -> std::convertible_to<std::uint64_t>;
  // measurement surface the workload/testbed layers aggregate over
  { cs.recorder() } -> std::convertible_to<const stats::LossEventRecorder&>;
  { cs.delivered() } -> std::convertible_to<std::uint64_t>;
  { cs.sent() } -> std::convertible_to<std::uint64_t>;
  { cs.srtt() } -> std::convertible_to<double>;
  { cs.rtt_stats() } -> std::convertible_to<const stats::OnlineMoments&>;
  // queuing-delay telemetry: delay-sensing controllers report (sum, count)
  // of per-RTT queuing-delay samples; loss-based ones report zero samples.
  { cs.queuing_delay_sum_s() } -> std::convertible_to<double>;
  { cs.queuing_delay_samples() } -> std::convertible_to<std::uint64_t>;
  s.reset_counters();
};

}  // namespace ebrc::workload
