// Dynamic-workload description: the knobs of a flow-churn experiment.
//
// Every scenario in the repo used to pin its flow population at t = 0 and
// hold it to the end — the one regime real networks never exhibit. A
// WorkloadConfig instead describes an ARRIVAL PROCESS of finite transfers:
// connections are spawned during the run (Poisson or heavy-tailed renewal
// arrivals), carry a finite flow size (exponential or bounded-Pareto), run
// the real TFRC or TCP protocol machinery over the shared bottleneck, and
// retire when the transfer completes. Session traffic (a user fetching
// several objects with think times in between) rides the same pool.
//
// The default-constructed config is DISABLED (arrival_rate_per_s == 0) and
// is deliberately invisible to scenario serialization and the cache
// fingerprint: pre-workload scenario files parse unchanged and keep their
// exact pre-workload fingerprints (see scenario_io.cpp's defaulted_table).
#pragma once

#include <string>

namespace ebrc::workload {

struct WorkloadConfig {
  /// Mean transfer arrivals per second; 0 disables the dynamic workload.
  double arrival_rate_per_s = 0.0;

  /// Inter-arrival law: "exponential" (Poisson arrivals) or "pareto" (a
  /// heavy-tailed renewal process with the same mean).
  std::string interarrival = "exponential";
  /// Shape of the Pareto renewal inter-arrival (> 1; only used for "pareto").
  double interarrival_shape = 1.5;

  /// Flow-size law: "exponential" or "pareto" (bounded Pareto).
  std::string size_dist = "exponential";
  /// Mean transfer size in data packets.
  double mean_size_pkts = 100.0;
  /// Bounded-Pareto shape (> 0; only used for "pareto" sizes).
  double pareto_shape = 1.3;
  /// Upper truncation of a Pareto size draw, in packets.
  double max_size_pkts = 1e6;
  /// Floor applied to every size draw (a transfer is at least this long).
  double min_size_pkts = 1.0;

  /// Probability an arriving transfer runs TFRC; the rest run TCP.
  double tfrc_fraction = 0.5;

  /// Controller override for the whole arrival process: "" (default) keeps
  /// the two-class tfrc_fraction mix; "tfrc" | "tcp" | "delay_aimd" | "rcp"
  /// pins EVERY arrival to that controller class (the class draw is still
  /// burned so CRN-paired arms see identical arrival streams). "rcp" also
  /// turns the bottleneck into an RCP router.
  std::string controller = "";

  /// Flow-pool capacity: the maximum number of concurrently active dynamic
  /// flows. Arrivals that find the pool full are rejected (counted, not
  /// queued) — the classic loss-system admission model.
  int max_concurrent = 256;

  /// Probability an arrival opens a SESSION: after its first transfer
  /// completes, the session sleeps an exponential think time and fetches
  /// another object, for a geometrically distributed number of transfers.
  double session_fraction = 0.0;
  /// Mean transfers per session (geometric, >= 1).
  double session_transfers_mean = 5.0;
  /// Mean think time between a session's transfers, seconds.
  double session_think_s = 1.0;

  friend bool operator==(const WorkloadConfig&, const WorkloadConfig&) = default;
};

/// True when the config describes an active arrival process.
[[nodiscard]] inline bool workload_enabled(const WorkloadConfig& w) noexcept {
  return w.arrival_rate_per_s > 0.0;
}

}  // namespace ebrc::workload
