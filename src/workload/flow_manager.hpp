// The dynamic-workload engine: spawns and retires finite transfers DURING a
// run, over any controller class in the zoo (TFRC, TCP, delay-AIMD, RCP).
//
// Arrivals fire on one pinned simulator event (Poisson or Pareto-renewal
// inter-arrival gaps from the manager's own Rng); each arrival draws a
// traffic class, a finite flow size, and possibly a session continuation,
// then claims a slot from the run-time flow pool.
//
// The pool is where the zero-steady-state-allocation contract lives. A slot
// wires itself into the dumbbell ONCE per traffic class — one dumbbell flow
// id plus one permanently constructed TfrcConnection or TcpConnection, with
// its pinned pacing/feedback events and packet handlers registered at that
// first use and never again. Every later transfer the slot carries merely
// open()s the existing connection (a state rewind, no construction, no
// pins, no handler churn). Once every slot has served both classes the pool
// is saturated: spawning and retiring thousands of further flows performs
// no heap allocation and registers no new kernel state, which is what keeps
// the many-flows churn regime running at packet-path speed (asserted by
// tests/workload_alloc_test.cpp).
//
// Retired slots are QUARANTINED for a drain interval before re-entering the
// free list: a packet of the previous transfer still inside the bottleneck
// queue, the tail pipe, or the reverse path must not reach the slot's next
// incarnation (the connections reset their sequencing state at open, so a
// stale packet arriving before the quarantine expires lands in the OLD
// incarnation's tolerant, closed state instead). The drain bound is
// computed by the caller from the scenario's worst-case path residency.
//
// Determinism: all draws come from strictly event-ordered callbacks inside
// a single-threaded Simulator — runs are bit-identical for a fixed seed
// under any BatchRunner --jobs, shard layout, or cache state. The
// randomness is split into TWO streams so common-random-number pairing
// works: the WORKLOAD stream (inter-arrival gaps, traffic class, transfer
// size, session length — drawn in fixed order per arrival, BEFORE the
// admission check, so rejected arrivals consume exactly what admitted ones
// would) is a pure function of the seed and the arrival index; the PATH
// stream (per-slot RTT jitter, session think times) absorbs every draw
// whose timing depends on pool state. Two configs paired on one seed
// therefore see identical arrival times, classes, and sizes even when
// their completions, slot reuse, and rejections diverge. (Session
// follow-up admissions draw from the workload stream at completion-driven
// times, so CRN contrasts should pair session-free workloads.)
#pragma once

#include <cstdint>
#include <vector>

#include "net/dumbbell.hpp"
#include "sim/random.hpp"
#include "stats/population.hpp"
#include "workload/flow_pools.hpp"
#include "workload/workload_config.hpp"

namespace ebrc::workload {

/// Everything the manager needs beyond the dumbbell: the workload law, the
/// protocol configurations shared with the static population, the path
/// geometry for per-slot RTT draws, and the drain quarantine.
struct FlowManagerConfig {
  WorkloadConfig workload{};
  tfrc::TfrcConfig tfrc{};
  tcp::TcpConfig tcp{};
  delay_aimd::DelayAimdConfig aimd{};
  rcp::RcpConfig rcp{};
  double base_rtt_s = 0.050;
  double rtt_spread = 0.1;
  /// Propagation of the dumbbell's shared segment (subtracted from the
  /// forward one-way delay, as the static flow constructor does).
  double shared_prop_s = 0.001;
  /// Quarantine after retirement before a slot can be reused; must bound the
  /// residency of any in-flight packet of the retired transfer.
  double drain_s = 0.5;
  std::uint64_t seed = 1;
};

/// Long-run churn telemetry over the measurement window (begin_epoch to
/// summarize), embedded into testbed::ExperimentResult.
struct WorkloadSummary {
  std::uint64_t arrivals = 0;     // admitted transfers
  std::uint64_t completions = 0;  // transfers finished
  std::uint64_t rejections = 0;   // turned away, pool full
  double mean_flows = 0.0;        // time-averaged concurrent dynamic flows
  double mean_flows_tfrc = 0.0;
  double mean_flows_tcp = 0.0;
  std::uint64_t peak_flows = 0;   // max concurrent over the whole run
  double tfrc_completion_s = 0.0;    // mean per-transfer completion time
  double tcp_completion_s = 0.0;
  double tfrc_completion_cov = 0.0;  // CoV of the completion time
  double tcp_completion_cov = 0.0;
  double tfrc_goodput_pps = 0.0;  // delivered packets / window, per class
  double tcp_goodput_pps = 0.0;
  double tfrc_share = 0.0;        // tfrc goodput / (tfrc + tcp goodput)
  double tfrc_p = 0.0;            // aggregate per-class loss-event rates
  double tcp_p = 0.0;
  // Controller-zoo classes (PR 9); zero when the class carried no traffic.
  double mean_flows_aimd = 0.0;
  double mean_flows_rcp = 0.0;
  double aimd_completion_s = 0.0;
  double rcp_completion_s = 0.0;
  double aimd_completion_cov = 0.0;
  double rcp_completion_cov = 0.0;
  double aimd_goodput_pps = 0.0;
  double rcp_goodput_pps = 0.0;
  double aimd_p = 0.0;
  double rcp_p = 0.0;
  /// Mean queuing delay over every delay-sensing sample in the window
  /// (delay-AIMD + RCP senders; zero when only loss-based classes ran).
  double qdelay_mean_s = 0.0;
};

class FlowManager {
 public:
  FlowManager(net::Dumbbell& net, FlowManagerConfig cfg);

  FlowManager(const FlowManager&) = delete;  // pinned arrival event captures this
  FlowManager& operator=(const FlowManager&) = delete;

  /// Schedules the first arrival at absolute time `at` (>= now).
  void start(double at);

  /// Stops generating arrivals (active transfers run to completion; their
  /// session continuations still fire).
  void stop() noexcept { running_ = false; }

  /// Warm-up truncation: restarts the windowed statistics and snapshots
  /// every slot's cumulative counters at the CURRENT simulated time.
  void begin_epoch();

  /// Closes the window at the current time and folds the telemetry.
  /// Callable once per epoch (finishes the population time averages).
  [[nodiscard]] WorkloadSummary summarize();

  /// Observability hook, fired once per transfer completion (a rare path —
  /// thousands of packets per transfer). Raw function pointer + context so
  /// workload/ stays free of any obs dependency; the obs layer uses it to
  /// feed completion-time histograms and trace spans.
  using CompletionHook = void (*)(void* ctx, double opened_at, double closed_at, int cls,
                                  double size_pkts);
  void set_completion_hook(CompletionHook hook, void* ctx) noexcept {
    completion_hook_ = hook;
    completion_ctx_ = ctx;
  }

  // --- introspection (tests, drivers) ----------------------------------
  [[nodiscard]] const stats::PopulationTracker& population() const noexcept { return pop_; }
  [[nodiscard]] std::size_t pool_slots() const noexcept { return pools_.size(); }
  [[nodiscard]] int active_flows() const noexcept { return pop_.active_total(); }
  /// Transfers started as session follow-ups (after a think time).
  [[nodiscard]] std::uint64_t session_followups() const noexcept { return session_followups_; }

 private:
  void arrival();                    // pinned: admit one arrival, schedule the next
  void admit(int session_remaining);
  void complete(std::size_t idx);
  void release(std::size_t idx);     // post-quarantine: slot back on the free list
  void ensure_side(std::size_t idx, FlowClass cls);

  [[nodiscard]] double draw_interarrival();
  [[nodiscard]] double draw_size();
  [[nodiscard]] int draw_session_remaining();

  net::Dumbbell& net_;
  FlowManagerConfig cfg_;
  sim::Rng workload_rng_;  // arrival process + transfer attributes (CRN-common)
  sim::Rng path_rng_;      // RTT jitter + think times (pool-state dependent)
  sim::Simulator::PinnedEvent arrival_ev_;
  FlowPools pools_;                  // SoA slot state + on-demand connections
  std::vector<std::size_t> free_;    // LIFO free list of drained slots
  stats::PopulationTracker pop_;
  CompletionHook completion_hook_ = nullptr;
  void* completion_ctx_ = nullptr;
  int forced_cls_ = -1;  // workload.controller override; -1 = tfrc_fraction mix
  double epoch_start_ = 0.0;
  bool running_ = false;
  bool epoch_open_ = false;
  std::uint64_t session_followups_ = 0;
};

}  // namespace ebrc::workload
