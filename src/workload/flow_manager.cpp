#include "workload/flow_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ebrc::workload {

namespace {

[[nodiscard]] int class_index(FlowClass c) noexcept { return static_cast<int>(c); }

}  // namespace

FlowManager::FlowManager(net::Dumbbell& net, FlowManagerConfig cfg)
    : net_(net),
      cfg_(std::move(cfg)),
      workload_rng_(sim::Rng(cfg_.seed).split("workload-stream")),
      path_rng_(sim::Rng(cfg_.seed).split("path-stream")),
      arrival_ev_(net.simulator().pin([this] { arrival(); })) {
  const WorkloadConfig& w = cfg_.workload;
  if (!workload_enabled(w)) {
    throw std::invalid_argument("FlowManager: arrival_rate_per_s must be > 0");
  }
  if (w.mean_size_pkts <= 0 || w.min_size_pkts <= 0 || w.max_size_pkts < w.min_size_pkts) {
    throw std::invalid_argument("FlowManager: bad size distribution bounds");
  }
  if (w.interarrival != "exponential" && w.interarrival != "pareto") {
    throw std::invalid_argument("FlowManager: unknown interarrival '" + w.interarrival +
                                "' (expected exponential | pareto)");
  }
  if (w.size_dist != "exponential" && w.size_dist != "pareto") {
    throw std::invalid_argument("FlowManager: unknown size_dist '" + w.size_dist +
                                "' (expected exponential | pareto)");
  }
  if (w.tfrc_fraction < 0.0 || w.tfrc_fraction > 1.0 || w.session_fraction < 0.0 ||
      w.session_fraction > 1.0) {
    throw std::invalid_argument("FlowManager: fractions must lie in [0, 1]");
  }
  if (w.max_concurrent < 1) {
    throw std::invalid_argument("FlowManager: max_concurrent must be >= 1");
  }
  if (w.session_transfers_mean < 1.0) {
    throw std::invalid_argument("FlowManager: session_transfers_mean must be >= 1");
  }
  if (w.controller == "tfrc") {
    forced_cls_ = class_index(FlowClass::kTfrc);
  } else if (w.controller == "tcp") {
    forced_cls_ = class_index(FlowClass::kTcp);
  } else if (w.controller == "delay_aimd") {
    forced_cls_ = class_index(FlowClass::kDelayAimd);
  } else if (w.controller == "rcp") {
    forced_cls_ = class_index(FlowClass::kRcp);
  } else if (!w.controller.empty()) {
    throw std::invalid_argument("FlowManager: unknown controller '" + w.controller +
                                "' (expected tfrc | tcp | delay_aimd | rcp)");
  }
  free_.reserve(static_cast<std::size_t>(w.max_concurrent));
  pools_.reserve(static_cast<std::size_t>(w.max_concurrent));
}

void FlowManager::start(double at) {
  running_ = true;
  pop_.begin_epoch(net_.simulator().now());
  epoch_start_ = net_.simulator().now();
  epoch_open_ = true;
  net_.simulator().schedule_pinned_at(at, arrival_ev_);
}

void FlowManager::begin_epoch() {
  const double now = net_.simulator().now();
  pop_.begin_epoch(now);
  epoch_start_ = now;
  epoch_open_ = true;
  // One contiguous SideState sweep per class; only wired sides dereference a
  // connection. Written once against the Sender concept for the whole zoo.
  for (int c = 0; c < kFlowClasses; ++c) {
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      SideState& sd = pools_.side(c, i);
      if (sd.conn < 0) continue;
      pools_.with_sender(c, sd.conn, [&sd](const auto& conn) {
        sd.delivered0 = conn.delivered();
        sd.packets0 = conn.recorder().packets();
        sd.losses0 = conn.recorder().losses();
        sd.events0 = conn.recorder().events();
        sd.qd_sum0 = conn.queuing_delay_sum_s();
        sd.qd_count0 = conn.queuing_delay_samples();
      });
    }
  }
}

double FlowManager::draw_interarrival() {
  const WorkloadConfig& w = cfg_.workload;
  const double mean = 1.0 / w.arrival_rate_per_s;
  if (w.interarrival == "pareto") {
    return workload_rng_.pareto_mean(mean, w.interarrival_shape);
  }
  return workload_rng_.exponential_mean(mean);
}

double FlowManager::draw_size() {
  const WorkloadConfig& w = cfg_.workload;
  double size;
  if (w.size_dist == "pareto") {
    // Bounded Pareto: an unbounded pareto_mean draw truncated at the cap.
    // The truncation slightly lowers the realized mean; the heavy tail (the
    // property the churn experiments care about) survives the cap.
    size = std::min(workload_rng_.pareto_mean(w.mean_size_pkts, w.pareto_shape),
                    w.max_size_pkts);
  } else {
    size = workload_rng_.exponential_mean(w.mean_size_pkts);
  }
  return std::max(w.min_size_pkts, size);
}

int FlowManager::draw_session_remaining() {
  const WorkloadConfig& w = cfg_.workload;
  if (w.session_fraction <= 0.0 || workload_rng_.uniform() >= w.session_fraction) return 0;
  if (w.session_transfers_mean <= 1.0) return 0;
  // Geometric number of transfers with the configured mean m: success
  // probability 1/m, so K = 1 + floor(ln U / ln(1 - 1/m)); returns K - 1
  // follow-ups beyond the transfer being admitted now.
  const double q = 1.0 - 1.0 / w.session_transfers_mean;
  const double u = std::max(1e-300, workload_rng_.uniform());
  const double k = std::floor(std::log(u) / std::log(q));
  return static_cast<int>(std::min(k, 1e6));
}

void FlowManager::arrival() {
  if (!running_) return;  // stop(): the arrival chain dies here
  admit(draw_session_remaining());
  net_.simulator().schedule_pinned(draw_interarrival(), arrival_ev_);
}

void FlowManager::ensure_side(std::size_t idx, FlowClass cls) {
  SideState& sd = pools_.side(class_index(cls), idx);
  if (sd.conn >= 0) return;
  // First use of this slot under `cls`: wire a dumbbell flow and construct
  // the connection permanently (handlers + pinned events registered once).
  const double jitter =
      cfg_.rtt_spread > 0 ? cfg_.rtt_spread * (path_rng_.uniform() - 0.5) : 0.0;
  const double rtt = cfg_.base_rtt_s * (1.0 + jitter);
  const double one_way = std::max(0.0, rtt / 2.0 - cfg_.shared_prop_s);
  sd.flow_id = net_.add_flow(one_way, rtt / 2.0);
  switch (cls) {
    case FlowClass::kTfrc:
      sd.conn = pools_.make_tfrc(net_, sd.flow_id, rtt, cfg_.tfrc);
      break;
    case FlowClass::kTcp:
      sd.conn = pools_.make_tcp(net_, sd.flow_id, rtt, cfg_.tcp);
      break;
    case FlowClass::kDelayAimd:
      sd.conn = pools_.make_delay_aimd(net_, sd.flow_id, rtt, cfg_.aimd);
      break;
    case FlowClass::kRcp:
      sd.conn = pools_.make_rcp(net_, sd.flow_id, rtt, cfg_.rcp);
      break;
  }
}

void FlowManager::admit(int session_remaining) {
  const double now = net_.simulator().now();
  // Fixed draw order BEFORE the admission check: rejected arrivals consume
  // the same randomness as admitted ones, keeping CRN-paired workloads in
  // step even when only one of them saturates its pool. The class draw is
  // burned even under a controller override, so arms that differ only in
  // `controller` see identical arrival times and sizes.
  const double class_draw = workload_rng_.uniform();
  const FlowClass cls =
      forced_cls_ >= 0
          ? static_cast<FlowClass>(forced_cls_)
          : (class_draw < cfg_.workload.tfrc_fraction ? FlowClass::kTfrc : FlowClass::kTcp);
  const double size = draw_size();

  std::size_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else if (pools_.size() < static_cast<std::size_t>(cfg_.workload.max_concurrent)) {
    idx = pools_.add_slot();
  } else {
    pop_.on_reject(now, class_index(cls));
    return;  // loss-system admission: the transfer (and its session) is gone
  }

  ensure_side(idx, cls);
  SlotState& slot = pools_.slot(idx);
  assert(!slot.busy && "free-listed slot still occupied");
  slot.busy = true;
  slot.cls = static_cast<std::int8_t>(class_index(cls));
  slot.size_pkts = size;
  slot.opened_at = now;
  slot.session_remaining = session_remaining;
  pop_.on_open(now, class_index(cls));

  const auto packets = static_cast<std::uint64_t>(std::llround(size));
  const std::int32_t conn = pools_.side(class_index(cls), idx).conn;
  pools_.with_sender(class_index(cls), conn, [this, idx, packets](auto& sender) {
    sender.open(packets, [this, idx] { complete(idx); });
  });
}

void FlowManager::complete(std::size_t idx) {
  SlotState& slot = pools_.slot(idx);
  assert(slot.busy && "completion from an unoccupied slot");
  const double now = net_.simulator().now();
  pop_.on_close(now, slot.cls, now - slot.opened_at, slot.size_pkts);
  if (completion_hook_ != nullptr) {
    completion_hook_(completion_ctx_, slot.opened_at, now, slot.cls, slot.size_pkts);
  }
  slot.busy = false;

  // Quarantine: the slot rejoins the free list only once every in-flight
  // packet of the finished transfer has left the network.
  net_.simulator().schedule(cfg_.drain_s, [this, idx] { release(idx); });

  if (slot.session_remaining > 0) {
    const int remaining = slot.session_remaining - 1;
    ++session_followups_;
    const double think = path_rng_.exponential_mean(cfg_.workload.session_think_s);
    net_.simulator().schedule(think, [this, remaining] { admit(remaining); });
  }
}

void FlowManager::release(std::size_t idx) { free_.push_back(idx); }

WorkloadSummary FlowManager::summarize() {
  const double now = net_.simulator().now();
  if (!epoch_open_) throw std::logic_error("FlowManager::summarize: no open epoch");
  epoch_open_ = false;
  pop_.finish(now);
  const double window = std::max(1e-9, now - epoch_start_);

  WorkloadSummary out;
  out.arrivals = pop_.arrivals();
  out.completions = pop_.completions();
  out.rejections = pop_.rejections();
  out.mean_flows = pop_.mean_flows_total();
  out.mean_flows_tfrc = pop_.mean_flows(class_index(FlowClass::kTfrc));
  out.mean_flows_tcp = pop_.mean_flows(class_index(FlowClass::kTcp));
  out.mean_flows_aimd = pop_.mean_flows(class_index(FlowClass::kDelayAimd));
  out.mean_flows_rcp = pop_.mean_flows(class_index(FlowClass::kRcp));
  out.peak_flows = pop_.peak();
  const auto& tfrc_t = pop_.completion_time(class_index(FlowClass::kTfrc));
  const auto& tcp_t = pop_.completion_time(class_index(FlowClass::kTcp));
  const auto& aimd_t = pop_.completion_time(class_index(FlowClass::kDelayAimd));
  const auto& rcp_t = pop_.completion_time(class_index(FlowClass::kRcp));
  out.tfrc_completion_s = tfrc_t.mean();
  out.tcp_completion_s = tcp_t.mean();
  out.aimd_completion_s = aimd_t.mean();
  out.rcp_completion_s = rcp_t.mean();
  out.tfrc_completion_cov = tfrc_t.cv();
  out.tcp_completion_cov = tcp_t.cv();
  out.aimd_completion_cov = aimd_t.cv();
  out.rcp_completion_cov = rcp_t.cv();

  // Per-class goodput and aggregate loss-event rate over the window, from
  // the slots' cumulative counters against the epoch snapshots. One generic
  // Sender sweep covers the whole zoo, including the queuing-delay telemetry
  // only the delay-sensing classes report.
  std::uint64_t delivered[kFlowClasses] = {};
  std::uint64_t packets[kFlowClasses] = {};
  std::uint64_t losses[kFlowClasses] = {};
  std::uint64_t events[kFlowClasses] = {};
  double qd_sum = 0.0;
  std::uint64_t qd_count = 0;
  for (int c = 0; c < kFlowClasses; ++c) {
    std::uint64_t del = 0, pk = 0, lo = 0, ev = 0;
    for (const SideState& sd : pools_.sides(c)) {
      if (sd.conn < 0) continue;
      pools_.with_sender(c, sd.conn, [&](const auto& conn) {
        del += conn.delivered() - sd.delivered0;
        const auto& rec = conn.recorder();
        pk += rec.packets() - sd.packets0;
        lo += rec.losses() - sd.losses0;
        ev += rec.events() - sd.events0;
        qd_sum += conn.queuing_delay_sum_s() - sd.qd_sum0;
        qd_count += conn.queuing_delay_samples() - sd.qd_count0;
      });
    }
    delivered[c] = del;
    packets[c] = pk;
    losses[c] = lo;
    events[c] = ev;
  }
  const int tfrc_i = class_index(FlowClass::kTfrc);
  const int tcp_i = class_index(FlowClass::kTcp);
  const int aimd_i = class_index(FlowClass::kDelayAimd);
  const int rcp_i = class_index(FlowClass::kRcp);
  out.tfrc_goodput_pps = static_cast<double>(delivered[tfrc_i]) / window;
  out.tcp_goodput_pps = static_cast<double>(delivered[tcp_i]) / window;
  out.aimd_goodput_pps = static_cast<double>(delivered[aimd_i]) / window;
  out.rcp_goodput_pps = static_cast<double>(delivered[rcp_i]) / window;
  const double total = out.tfrc_goodput_pps + out.tcp_goodput_pps;
  out.tfrc_share = total > 0 ? out.tfrc_goodput_pps / total : 0.0;
  const auto rate = [](std::uint64_t ev, std::uint64_t pk, std::uint64_t lo) {
    const std::uint64_t denom = pk + lo;
    return denom > 0 ? static_cast<double>(ev) / static_cast<double>(denom) : 0.0;
  };
  out.tfrc_p = rate(events[tfrc_i], packets[tfrc_i], losses[tfrc_i]);
  out.tcp_p = rate(events[tcp_i], packets[tcp_i], losses[tcp_i]);
  out.aimd_p = rate(events[aimd_i], packets[aimd_i], losses[aimd_i]);
  out.rcp_p = rate(events[rcp_i], packets[rcp_i], losses[rcp_i]);
  out.qdelay_mean_s = qd_count > 0 ? qd_sum / static_cast<double>(qd_count) : 0.0;
  return out;
}

}  // namespace ebrc::workload
