// Structure-of-arrays storage for the dynamic-flow pool.
//
// The churn engine's per-event work divides cleanly into two access
// patterns. Protocol work (pacing, feedback, ACK clocking) is handled by the
// connection objects themselves, which are pinned at their construction
// address — their handlers capture `this`. Pool work — admit, complete,
// quarantine release, and the epoch sweeps that snapshot and fold every
// slot's counters — touches a few small fields per slot and, at 10^5–10^6
// slots, dominates cache behavior: with the old deque<Slot> layout each slot
// visit dragged in two std::optional connections' worth of cold bytes
// (~1 KB per slot) to read ~30 hot ones.
//
// FlowPools therefore splits the pool into parallel arrays indexed by slot
// id:
//
//   SlotState[]        — the per-transfer attributes admit/complete touch
//                        (24 B each; one cache line carries ~2.6 slots)
//   SideState[N][]     — per traffic class, the slot's dumbbell wiring and
//                        epoch counter snapshots (56 B each; the epoch sweep
//                        walks one class's array contiguously)
//   deque<Connection>  — the heavy protocol objects, constructed on demand,
//                        address-stable forever, referenced from SideState
//                        by index (never by pointer, so the arrays stay
//                        trivially copyable)
//
// Four traffic classes ride the pool (FlowClass): TFRC and TCP from the
// paper, plus the PR 9 controller zoo — delay-based AIMD and RCP. All four
// connection types satisfy the workload::Sender concept (checked below), and
// with_sender() dispatches a generic visitor over the class tag so the
// manager's epoch sweeps are written once, not four times.
//
// Static tripwires pin the record layouts the same way the 56-B Packet and
// 24-B queue-entry guards do: growing a record past its line budget is a
// compile error, not a silent regression.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <type_traits>
#include <vector>

#include "delay_aimd/delay_aimd_connection.hpp"
#include "rcp/rcp_connection.hpp"
#include "tcp/tcp_connection.hpp"
#include "tfrc/tfrc_connection.hpp"
#include "workload/sender.hpp"

namespace ebrc::workload {

enum class FlowClass : int { kTfrc = 0, kTcp = 1, kDelayAimd = 2, kRcp = 3 };
inline constexpr int kFlowClasses = 4;

// The whole zoo satisfies the Sender contract — a controller that forgets
// part of the pooled lifecycle fails here, at compile time.
static_assert(Sender<tfrc::TfrcConnection>);
static_assert(Sender<tcp::TcpConnection>);
static_assert(Sender<delay_aimd::DelayAimdConnection>);
static_assert(Sender<rcp::RcpConnection>);

/// Hot per-slot transfer attributes: everything admit()/complete() read or
/// write per transfer, and nothing else.
struct SlotState {
  double size_pkts = 0.0;
  double opened_at = 0.0;
  std::int32_t session_remaining = 0;  // follow-up transfers after this one
  std::int8_t cls = 0;                 // current/last occupant (FlowClass)
  bool busy = false;                   // occupancy guard: admit/complete alternate
};
static_assert(sizeof(SlotState) == 24, "SlotState grew past its line budget");
static_assert(alignof(SlotState) == 8);
static_assert(std::is_trivially_copyable_v<SlotState>);

/// Per-(slot, traffic-class) wiring and epoch snapshots. Stored as one array
/// per class so begin_epoch()/summarize() sweep each class contiguously.
struct SideState {
  std::int32_t flow_id = -1;  // dumbbell flow, wired once at first use
  std::int32_t conn = -1;     // index into the class's connection pool
  // epoch snapshots of the cumulative per-connection counters
  std::uint64_t delivered0 = 0;
  std::uint64_t packets0 = 0;
  std::uint64_t losses0 = 0;
  std::uint64_t events0 = 0;
  // queuing-delay telemetry snapshots (delay-sensing controllers; zero for
  // the loss-based classes)
  double qd_sum0 = 0.0;
  std::uint64_t qd_count0 = 0;
};
static_assert(sizeof(SideState) == 56, "SideState grew past its line budget");
static_assert(alignof(SideState) == 8);
static_assert(std::is_trivially_copyable_v<SideState>);

class FlowPools {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Pre-sizes the SoA arrays (not the connection pools — those are built
  /// lazily, one per slot-side actually exercised).
  void reserve(std::size_t n) {
    slots_.reserve(n);
    for (auto& s : sides_) s.reserve(n);
  }

  /// Appends an empty slot (all sides unwired) and returns its id.
  std::size_t add_slot() {
    slots_.emplace_back();
    for (auto& s : sides_) s.emplace_back();
    return slots_.size() - 1;
  }

  [[nodiscard]] SlotState& slot(std::size_t i) noexcept { return slots_[i]; }
  [[nodiscard]] const SlotState& slot(std::size_t i) const noexcept { return slots_[i]; }
  [[nodiscard]] SideState& side(int cls, std::size_t i) noexcept { return sides_[cls][i]; }
  [[nodiscard]] const SideState& side(int cls, std::size_t i) const noexcept {
    return sides_[cls][i];
  }
  /// The whole per-class array, for contiguous epoch sweeps.
  [[nodiscard]] const std::vector<SideState>& sides(int cls) const noexcept {
    return sides_[cls];
  }

  /// Constructs a connection in the class pool (address-stable deque) and
  /// returns its index for SideState::conn.
  [[nodiscard]] std::int32_t make_tfrc(net::Dumbbell& net, int flow_id, double rtt,
                                       const tfrc::TfrcConfig& cfg) {
    tfrc_.emplace_back(net, flow_id, rtt, cfg);
    return static_cast<std::int32_t>(tfrc_.size() - 1);
  }
  [[nodiscard]] std::int32_t make_tcp(net::Dumbbell& net, int flow_id, double rtt,
                                      const tcp::TcpConfig& cfg) {
    tcp_.emplace_back(net, flow_id, rtt, cfg);
    return static_cast<std::int32_t>(tcp_.size() - 1);
  }
  [[nodiscard]] std::int32_t make_delay_aimd(net::Dumbbell& net, int flow_id, double rtt,
                                             const delay_aimd::DelayAimdConfig& cfg) {
    aimd_.emplace_back(net, flow_id, rtt, cfg);
    return static_cast<std::int32_t>(aimd_.size() - 1);
  }
  [[nodiscard]] std::int32_t make_rcp(net::Dumbbell& net, int flow_id, double rtt,
                                      const rcp::RcpConfig& cfg) {
    rcp_.emplace_back(net, flow_id, rtt, cfg);
    return static_cast<std::int32_t>(rcp_.size() - 1);
  }

  [[nodiscard]] tfrc::TfrcConnection& tfrc(std::int32_t c) noexcept { return tfrc_[c]; }
  [[nodiscard]] const tfrc::TfrcConnection& tfrc(std::int32_t c) const noexcept {
    return tfrc_[c];
  }
  [[nodiscard]] tcp::TcpConnection& tcp(std::int32_t c) noexcept { return tcp_[c]; }
  [[nodiscard]] const tcp::TcpConnection& tcp(std::int32_t c) const noexcept { return tcp_[c]; }
  [[nodiscard]] delay_aimd::DelayAimdConnection& delay_aimd(std::int32_t c) noexcept {
    return aimd_[c];
  }
  [[nodiscard]] const delay_aimd::DelayAimdConnection& delay_aimd(std::int32_t c) const noexcept {
    return aimd_[c];
  }
  [[nodiscard]] rcp::RcpConnection& rcp(std::int32_t c) noexcept { return rcp_[c]; }
  [[nodiscard]] const rcp::RcpConnection& rcp(std::int32_t c) const noexcept { return rcp_[c]; }

  /// Applies `fn` to connection `c` of class `cls` as whatever concrete
  /// Sender it is. Pool/epoch code generic over the zoo is written once
  /// against the Sender concept and dispatched here.
  template <typename Fn>
  decltype(auto) with_sender(int cls, std::int32_t c, Fn&& fn) {
    switch (static_cast<FlowClass>(cls)) {
      case FlowClass::kTfrc: return fn(tfrc_[c]);
      case FlowClass::kTcp: return fn(tcp_[c]);
      case FlowClass::kDelayAimd: return fn(aimd_[c]);
      case FlowClass::kRcp: return fn(rcp_[c]);
    }
    return fn(tfrc_[c]);  // unreachable; keeps -Wreturn-type quiet
  }
  template <typename Fn>
  decltype(auto) with_sender(int cls, std::int32_t c, Fn&& fn) const {
    switch (static_cast<FlowClass>(cls)) {
      case FlowClass::kTfrc: return fn(tfrc_[c]);
      case FlowClass::kTcp: return fn(tcp_[c]);
      case FlowClass::kDelayAimd: return fn(aimd_[c]);
      case FlowClass::kRcp: return fn(rcp_[c]);
    }
    return fn(tfrc_[c]);  // unreachable; keeps -Wreturn-type quiet
  }

 private:
  std::vector<SlotState> slots_;
  std::vector<SideState> sides_[kFlowClasses];
  std::deque<tfrc::TfrcConnection> tfrc_;  // deque: connections never relocate
  std::deque<tcp::TcpConnection> tcp_;
  std::deque<delay_aimd::DelayAimdConnection> aimd_;
  std::deque<rcp::RcpConnection> rcp_;
};

}  // namespace ebrc::workload
