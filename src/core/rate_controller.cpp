#include "core/rate_controller.hpp"

#include <stdexcept>

#include "core/weights.hpp"
#include "model/solvers.hpp"

namespace ebrc::core {

RateController::RateController(RateControllerConfig cfg)
    : cfg_(std::move(cfg)), estimator_(cfg_.weights) {
  if (!cfg_.function) throw std::invalid_argument("RateController: null throughput function");
  validate_weights(cfg_.weights);
}

void RateController::seed_from_rate(double rate) {
  if (!(rate > 0)) throw std::invalid_argument("RateController: rate must be > 0");
  // Solve f(1/x) = rate for x by bisection on the monotone h(x) = f(1/x).
  const auto& f = *cfg_.function;
  double lo = 1.0;
  double hi = 2.0;
  // h is increasing in x; widen the bracket geometrically.
  while (f.rate_from_interval(lo) > rate && lo > 1e-9) lo *= 0.5;
  while (f.rate_from_interval(hi) < rate && hi < 1e12) hi *= 2.0;
  const double theta = model::bisect(
      [&](double x) { return f.rate_from_interval(x) - rate; }, lo, hi, 1e-9 * hi);
  seed_interval(theta);
}

void RateController::seed_interval(double theta) {
  estimator_.seed(theta);
  seeded_ = true;
}

void RateController::on_loss_event(double theta) {
  estimator_.push(theta);
  seeded_ = true;
}

double RateController::allowed_rate(double open_packets) const {
  if (!seeded_) throw std::logic_error("RateController: no loss history yet");
  const double hat = cfg_.comprehensive ? estimator_.value_with_open(open_packets)
                                        : estimator_.value();
  return cfg_.function->rate_from_interval(hat);
}

}  // namespace ebrc::core
