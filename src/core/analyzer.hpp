// Long-run analyzers for the basic (Eq. 3) and comprehensive (Eq. 4)
// controls, driven by a LossIntervalProcess.
//
// The central identity: the number of packets sent over the loss interval
// [T_n, T_{n+1}) equals theta_n, so the long-run throughput is always
//   x̄ = sum theta_n / sum S_n
// and all the work lies in computing the interval duration S_n:
//   * basic control:          S_n = theta_n / f(1/hat-theta_n)
//   * comprehensive control:  piecewise — constant rate up to the threshold
//     theta*_n, then the rate rises with the growing estimator; the extra
//     time is (G(hat-theta_{n+1}) - G(hat-theta_n)) / w1 for the closed-form
//     antiderivative G of g (Proposition 3), or a quadrature of g otherwise.
//
// The analyzers also accumulate every statistic the paper's figures need:
// cov[theta_0, hat-theta_0] (condition C1), cov[X_0, S_0] (condition C2),
// the estimator's coefficient of variation (Claims 1-2), and the Palm
// (per-event) rate average.
#pragma once

#include <cstdint>
#include <memory>

#include "core/estimator.hpp"
#include "loss/loss_process.hpp"
#include "model/throughput_function.hpp"

namespace ebrc::core {

struct RunResult {
  double throughput = 0.0;        // x̄ in packets/s
  double normalized = 0.0;        // x̄ / f(p), p = empirical loss-event rate
  double p = 0.0;                 // empirical loss-event rate 1/mean(theta)
  double mean_theta = 0.0;        // E[theta_0]
  double cov_theta_thetahat = 0.0;  // cov[theta_0, hat-theta_0]   (C1)
  double normalized_cov = 0.0;      // cov[theta_0, hat-theta_0] p^2 (Figs 5,10)
  double cov_x_s = 0.0;             // cov[X_0, S_0]               (C2)
  double cv_thetahat = 0.0;         // cv[hat-theta_0]
  double mean_thetahat = 0.0;       // E[hat-theta_0] (unbiasedness check)
  double palm_rate = 0.0;           // E0_N[X(0)], the event average of X_n
  std::uint64_t events = 0;
};

struct RunConfig {
  std::uint64_t events = 200000;  // loss events to simulate after warm-up
  std::uint64_t warmup = 1000;    // events discarded while the estimator fills
};

/// Monte-Carlo evaluation of the basic control via Proposition 1.
[[nodiscard]] RunResult run_basic_control(const model::ThroughputFunction& f,
                                          loss::LossIntervalProcess& process,
                                          const std::vector<double>& weights,
                                          const RunConfig& cfg = {});

/// Monte-Carlo evaluation of the comprehensive control. Uses the exact
/// closed-form interval duration when f provides g_antiderivative()
/// (SQRT, PFTK-simplified, and our piecewise extension for PFTK-standard);
/// otherwise integrates g numerically — both paths agree to quadrature
/// tolerance (tested).
[[nodiscard]] RunResult run_comprehensive_control(const model::ThroughputFunction& f,
                                                  loss::LossIntervalProcess& process,
                                                  const std::vector<double>& weights,
                                                  const RunConfig& cfg = {});

/// Proposition 3 evaluated sample-by-sample on the same stream:
/// S_n = theta_n/f(1/hat-theta_n) - V_n 1{hat-theta_{n+1} > hat-theta_n}.
/// Returns the throughput from E[theta_0] / (E[theta_0/f] - E[V_0 1{...}]).
/// Requires f.simplified_coeffs() (SQRT or PFTK-simplified).
[[nodiscard]] RunResult run_proposition3(const model::ThroughputFunction& f,
                                         loss::LossIntervalProcess& process,
                                         const std::vector<double>& weights,
                                         const RunConfig& cfg = {});

/// The single-sample V_n of Proposition 3 (exposed for tests).
[[nodiscard]] double proposition3_vn(const model::SimplifiedCoeffs& coeffs, double w1,
                                     double thetahat_n, double thetahat_n1,
                                     double rate_at_thetahat_n);

/// Quadrature (no Monte Carlo) normalized throughput of the basic control
/// for L = 1 and i.i.d. shifted-exponential intervals: with hat-theta_0 =
/// theta_{-1} independent of theta_0,
///   x̄ = 1 / E[g(theta)]  and  x̄/f(p) = g(m)/E[g(theta)].
[[nodiscard]] double quadrature_normalized_L1(const model::ThroughputFunction& f, double p,
                                              double cv);

/// The Claim-2 / Figure-6 sender: an audio-like source with a FIXED packet
/// rate (packets/s) that adapts its *byte* rate to f(1/hat-theta). Packets
/// are dropped i.i.d. Bernoulli(p) (RED in packet mode, drops independent of
/// packet length), so the loss-event interval theta_n is geometric and the
/// interval duration S_n = theta_n / packet_rate is INDEPENDENT of the
/// controlled rate X_n — condition (C2c) holds with equality. Theorem 2 then
/// predicts: conservative where f(1/x) is concave (SQRT; PFTK at low p),
/// non-conservative where it is strictly convex (PFTK at high p).
///
/// Time average measured: x̄ = sum over intervals of ∫X dt / total time;
/// under the comprehensive control X(t) rises once the open interval crosses
/// the threshold, integrated exactly via the rate function.
struct AudioRunResult {
  double mean_rate = 0.0;       // x̄ (same rate unit as f)
  double normalized = 0.0;      // x̄ / f(p_empirical)
  double p = 0.0;               // empirical per-packet loss-event rate
  double cov_x_s = 0.0;         // should be ~0 by construction
  double cv_thetahat = 0.0;
  double cv_thetahat_sq = 0.0;  // Fig. 6, bottom panel
  std::uint64_t events = 0;
};
[[nodiscard]] AudioRunResult run_audio_control(const model::ThroughputFunction& f,
                                               double packet_rate, double bernoulli_p,
                                               const std::vector<double>& weights,
                                               bool comprehensive, std::uint64_t seed,
                                               const RunConfig& cfg = {});

}  // namespace ebrc::core
