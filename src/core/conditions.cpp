#include "core/conditions.hpp"

#include <stdexcept>

#include "core/estimator.hpp"
#include "stats/online.hpp"
#include "util/math.hpp"

namespace ebrc::core {

FunctionConditions check_function_conditions(const model::ThroughputFunction& f, double x_lo,
                                             double x_hi, int grid, double tol) {
  if (!(x_lo > 0.0) || !(x_hi > x_lo)) {
    throw std::invalid_argument("check_function_conditions: need 0 < x_lo < x_hi");
  }
  FunctionConditions out;
  out.g_report =
      model::probe_convexity([&f](double x) { return f.g(x); }, x_lo, x_hi, grid, tol);
  out.h_report = model::probe_convexity([&f](double x) { return f.rate_from_interval(x); }, x_lo,
                                        x_hi, grid, tol);
  out.F1 = out.g_report.convex;
  out.F2 = out.h_report.concave;
  out.F2c = out.h_report.strictly_convex;
  return out;
}

CovarianceConditions check_covariance_conditions(const model::ThroughputFunction& f,
                                                 const std::vector<double>& intervals,
                                                 const std::vector<double>& weights,
                                                 double tol) {
  MovingAverageEstimator est(weights);
  stats::OnlineCovariance c1;  // (hat-theta, theta)
  stats::OnlineCovariance c2;  // (X, S)
  stats::OnlineMoments hat_m;
  for (double theta : intervals) {
    if (est.history_size() >= weights.size()) {
      const double hat = est.value();
      const double x = f.rate_from_interval(hat);
      c1.add(hat, theta);
      c2.add(x, theta / x);
      hat_m.add(hat);
    }
    est.push(theta);
  }
  CovarianceConditions out;
  out.cov_theta_thetahat = c1.covariance();
  out.cov_x_s = c2.covariance();
  out.var_thetahat = hat_m.variance();
  out.C1 = out.cov_theta_thetahat <= tol;
  out.C2 = out.cov_x_s <= tol;
  out.C2c = out.cov_x_s >= -tol;
  out.V = out.var_thetahat > tol;
  return out;
}

double theorem1_bound(const model::ThroughputFunction& f, double p, double cov_theta_thetahat) {
  if (!(p > 0.0) || p > 1.0) throw std::invalid_argument("theorem1_bound: p outside (0,1]");
  const double fp = f.rate(p);
  const double elasticity = f.drate_dp(p) * p / fp;  // f'(p) p / f(p), negative
  const double denom = 1.0 + elasticity * cov_theta_thetahat * util::sq(p);
  if (denom <= 0.0) return util::kInf;
  return fp / denom;
}

double proposition4_bound(const model::ThroughputFunction& f, double x_lo, double x_hi,
                          int grid) {
  const auto closure =
      model::convex_closure([&f](double x) { return f.g(x); }, x_lo, x_hi, grid);
  return closure.deviation_ratio;
}

}  // namespace ebrc::core
