#include "core/many_sources.hpp"

#include <algorithm>
#include <stdexcept>

namespace ebrc::core {

ManySourcesResult analyze_many_sources(const loss::CongestionProcess& z,
                                       const model::ThroughputFunction& f,
                                       double responsiveness) {
  if (responsiveness < 0.0 || responsiveness > 1.0) {
    throw std::invalid_argument("analyze_many_sources: responsiveness must lie in [0, 1]");
  }
  const auto& states = z.states();
  const auto pi = z.stationary();
  const double p_bar = z.nonadaptive_loss_rate();

  const auto rates_for = [&](double lambda) {
    std::vector<double> x;
    x.reserve(states.size());
    for (const auto& s : states) {
      const double perceived = lambda * s.loss_rate + (1.0 - lambda) * p_bar;
      x.push_back(f.rate(std::max(1e-12, perceived)));
    }
    return x;
  };

  ManySourcesResult out;
  out.per_state_rate = rates_for(responsiveness);
  out.perceived_rate.reserve(states.size());
  for (const auto& s : states) {
    out.perceived_rate.push_back(responsiveness * s.loss_rate +
                                 (1.0 - responsiveness) * p_bar);
  }
  out.sampled_loss_rate = z.sampled_loss_rate(out.per_state_rate);
  out.nonadaptive_loss_rate = p_bar;  // x_i constant cancels in Eq. 13
  out.responsive_loss_rate = z.sampled_loss_rate(rates_for(1.0));
  (void)pi;
  return out;
}

double responsiveness_for_window(double events_per_state, std::size_t L) {
  if (events_per_state <= 0 || L == 0) {
    throw std::invalid_argument("responsiveness_for_window: positive arguments required");
  }
  return std::min(1.0, events_per_state / static_cast<double>(L));
}

}  // namespace ebrc::core
