#include "core/estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/weights.hpp"

namespace ebrc::core {

MovingAverageEstimator::MovingAverageEstimator(std::vector<double> weights)
    : weights_(std::move(weights)) {
  validate_weights(weights_);
}

void MovingAverageEstimator::push(double theta) {
  if (!(theta > 0.0)) throw std::invalid_argument("estimator: interval must be > 0");
  history_.push_front(theta);
  if (history_.size() > weights_.size()) history_.pop_back();
}

void MovingAverageEstimator::seed(double theta) {
  if (!(theta > 0.0)) throw std::invalid_argument("estimator: seed must be > 0");
  history_.assign(weights_.size(), theta);
}

double MovingAverageEstimator::value() const {
  if (history_.empty()) throw std::logic_error("estimator: no history yet");
  double num = 0.0;
  double mass = 0.0;
  const std::size_t n = std::min(history_.size(), weights_.size());
  for (std::size_t l = 0; l < n; ++l) {
    num += weights_[l] * history_[l];
    mass += weights_[l];
  }
  return num / mass;
}

double MovingAverageEstimator::shifted_tail() const {
  if (history_.empty()) throw std::logic_error("estimator: no history yet");
  // W_n uses theta_{n-1}..theta_{n-L+1} with weights w2..wL. Before warm-up,
  // use the same prefix renormalization idea: scale to the mass that value()
  // would use for consistency of the threshold test.
  double tail = 0.0;
  const std::size_t n = std::min(history_.size(), weights_.size() - 1);
  for (std::size_t l = 0; l < n; ++l) {
    tail += weights_[l + 1] * history_[l];
  }
  return tail;
}

double MovingAverageEstimator::open_threshold() const {
  return (value() - shifted_tail()) / weights_.front();
}

double MovingAverageEstimator::value_with_open(double open_packets) const {
  if (open_packets < 0) throw std::invalid_argument("estimator: open interval must be >= 0");
  const double closed = value();
  const double with_open = weights_.front() * open_packets + shifted_tail();
  return std::max(closed, with_open);
}

double MovingAverageEstimator::shifted_tail_mass() const {
  if (history_.empty()) throw std::logic_error("estimator: no history yet");
  double mass = 0.0;
  const std::size_t n = std::min(history_.size(), weights_.size() - 1);
  for (std::size_t l = 0; l < n; ++l) mass += weights_[l + 1];
  return mass;
}

double MovingAverageEstimator::value_with_open_discounted(double open_packets,
                                                          double discount) const {
  if (open_packets < 0) throw std::invalid_argument("estimator: open interval must be >= 0");
  if (!(discount >= 0.5 && discount <= 1.0)) {
    throw std::invalid_argument("estimator: discount must lie in [0.5, 1]");
  }
  // Normalized weighted average with the open interval at full weight and
  // the closed history discounted (RFC 3448 Eq. for I_mean with DF_i); at
  // discount = 1 and full warm-up this reduces to value_with_open().
  const double w1 = weights_.front();
  const double num = w1 * open_packets + discount * shifted_tail();
  const double den = w1 + discount * shifted_tail_mass();
  return std::max(value(), num / den);
}

}  // namespace ebrc::core
