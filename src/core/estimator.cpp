#include "core/estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/weights.hpp"

namespace ebrc::core {

MovingAverageEstimator::MovingAverageEstimator(std::vector<double> weights)
    : weights_(std::move(weights)) {
  validate_weights(weights_);
  ring_.assign(weights_.size(), 0.0);
}

void MovingAverageEstimator::push(double theta) {
  if (!(theta > 0.0)) throw std::invalid_argument("estimator: interval must be > 0");
  newest_ = newest_ == 0 ? ring_.size() - 1 : newest_ - 1;
  ring_[newest_] = theta;
  if (count_ < ring_.size()) ++count_;
  recompute();
}

void MovingAverageEstimator::seed(double theta) {
  if (!(theta > 0.0)) throw std::invalid_argument("estimator: seed must be > 0");
  std::fill(ring_.begin(), ring_.end(), theta);
  newest_ = 0;
  count_ = ring_.size();
  recompute();
}

void MovingAverageEstimator::reset() noexcept {
  std::fill(ring_.begin(), ring_.end(), 0.0);
  newest_ = 0;
  count_ = 0;
  value_ = 0.0;
  tail_ = 0.0;
  tail_mass_ = 0.0;
}

void MovingAverageEstimator::recompute() noexcept {
  // theta_{n-l} lives at ring_[(newest_ + l) % L]; accumulate newest-first,
  // exactly like the per-query loops this cache replaced.
  const std::size_t L = weights_.size();
  double num = 0.0;
  double mass = 0.0;
  std::size_t slot = newest_;
  for (std::size_t l = 0; l < count_; ++l) {
    num += weights_[l] * ring_[slot];
    mass += weights_[l];
    slot = slot + 1 == L ? 0 : slot + 1;
  }
  value_ = num / mass;

  double tail = 0.0;
  double tail_mass = 0.0;
  const std::size_t n = std::min(count_, L - 1);
  slot = newest_;
  for (std::size_t l = 0; l < n; ++l) {
    tail += weights_[l + 1] * ring_[slot];
    tail_mass += weights_[l + 1];
    slot = slot + 1 == L ? 0 : slot + 1;
  }
  tail_ = tail;
  tail_mass_ = tail_mass;
}

void MovingAverageEstimator::require_history() const {
  if (count_ == 0) throw std::logic_error("estimator: no history yet");
}

double MovingAverageEstimator::value() const {
  require_history();
  return value_;
}

double MovingAverageEstimator::shifted_tail() const {
  require_history();
  return tail_;
}

double MovingAverageEstimator::open_threshold() const {
  require_history();
  return (value_ - tail_) / weights_.front();
}

double MovingAverageEstimator::value_with_open(double open_packets) const {
  if (open_packets < 0) throw std::invalid_argument("estimator: open interval must be >= 0");
  require_history();
  const double with_open = weights_.front() * open_packets + tail_;
  return std::max(value_, with_open);
}

double MovingAverageEstimator::shifted_tail_mass() const {
  require_history();
  return tail_mass_;
}

double MovingAverageEstimator::value_with_open_discounted(double open_packets,
                                                          double discount) const {
  if (open_packets < 0) throw std::invalid_argument("estimator: open interval must be >= 0");
  if (!(discount >= 0.5 && discount <= 1.0)) {
    throw std::invalid_argument("estimator: discount must lie in [0.5, 1]");
  }
  require_history();
  // Normalized weighted average with the open interval at full weight and
  // the closed history discounted (RFC 3448 Eq. for I_mean with DF_i); at
  // discount = 1 and full warm-up this reduces to value_with_open().
  const double w1 = weights_.front();
  const double num = w1 * open_packets + discount * tail_;
  const double den = w1 + discount * tail_mass_;
  return std::max(value_, num / den);
}

}  // namespace ebrc::core
