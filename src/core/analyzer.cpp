#include "core/analyzer.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "model/quadrature.hpp"
#include "stats/online.hpp"
#include "util/math.hpp"

namespace ebrc::core {
namespace {

/// Duration of loss interval n under the comprehensive control.
///
/// With hat-theta_{n+1} = w1 theta_n + W_n:
///  * if hat-theta_{n+1} <= hat-theta_n the rate never rises:
///        S_n = theta_n / f(1/hat-theta_n);
///  * else the first theta*_n packets go at the old rate
///    (U_n = theta*_n / f(1/hat-theta_n) seconds) and the remaining time is
///        (G(hat-theta_{n+1}) - G(hat-theta_n)) / w1,
///    G an antiderivative of g (closed form or quadrature).
double comprehensive_duration(const model::ThroughputFunction& f,
                              const MovingAverageEstimator& est, double theta) {
  const double hat_n = est.value();
  const double w1 = est.weights().front();
  const double tail = est.shifted_tail();
  const double hat_n1 = w1 * theta + tail;
  const double base_rate = f.rate_from_interval(hat_n);
  if (hat_n1 <= hat_n) {
    return theta / base_rate;
  }
  const double threshold = (hat_n - tail) / w1;  // theta*_n
  const double time_flat = threshold / base_rate;  // = U_n
  double grow;
  const auto g1 = f.g_antiderivative(hat_n1);
  if (g1) {
    grow = (*g1 - *f.g_antiderivative(hat_n)) / w1;
  } else {
    grow = model::integrate([&f](double y) { return f.g(y); }, hat_n, hat_n1, 1e-10) / w1;
  }
  return time_flat + grow;
}

enum class Mode { kBasic, kComprehensive, kProposition3 };

RunResult run_control(Mode mode, const model::ThroughputFunction& f,
                      loss::LossIntervalProcess& process, const std::vector<double>& weights,
                      const RunConfig& cfg) {
  if (cfg.events == 0) throw std::invalid_argument("run_control: events must be > 0");
  model::SimplifiedCoeffs coeffs{0.0, 0.0};
  if (mode == Mode::kProposition3) {
    const auto c = f.simplified_coeffs();
    if (!c) {
      throw std::invalid_argument(
          "run_proposition3: function must belong to the simplified family (SQRT or "
          "PFTK-simplified)");
    }
    coeffs = *c;
  }

  MovingAverageEstimator est(weights);
  const double w1 = weights.front();

  // Warm-up: fill the window and let the process forget its initial state.
  est.push(process.next());
  for (std::uint64_t i = 1; i < cfg.warmup + weights.size(); ++i) est.push(process.next());

  stats::OnlineMoments theta_m, thetahat_m, x_palm;
  stats::OnlineCovariance cov_c1;  // (hat-theta_n, theta_n)
  stats::OnlineCovariance cov_c2;  // (X_n, S_n)
  double sum_theta = 0.0;
  double sum_s = 0.0;

  for (std::uint64_t n = 0; n < cfg.events; ++n) {
    const double hat = est.value();
    const double rate = f.rate_from_interval(hat);
    const double theta = process.next();

    double s;
    switch (mode) {
      case Mode::kBasic:
        s = theta / rate;
        break;
      case Mode::kComprehensive:
        s = comprehensive_duration(f, est, theta);
        break;
      case Mode::kProposition3: {
        const double hat_n1 = w1 * theta + est.shifted_tail();
        s = theta / rate;
        if (hat_n1 > hat) s -= proposition3_vn(coeffs, w1, hat, hat_n1, rate);
        break;
      }
    }

    sum_theta += theta;
    sum_s += s;
    theta_m.add(theta);
    thetahat_m.add(hat);
    x_palm.add(rate);
    cov_c1.add(hat, theta);
    cov_c2.add(rate, s);
    est.push(theta);
  }

  RunResult r;
  r.events = cfg.events;
  r.throughput = sum_theta / sum_s;
  r.mean_theta = theta_m.mean();
  r.p = 1.0 / r.mean_theta;
  r.normalized = r.throughput / f.rate(std::min(1.0, r.p));
  r.cov_theta_thetahat = cov_c1.covariance();
  r.normalized_cov = r.cov_theta_thetahat * util::sq(r.p);
  r.cov_x_s = cov_c2.covariance();
  r.cv_thetahat = thetahat_m.cv();
  r.mean_thetahat = thetahat_m.mean();
  r.palm_rate = x_palm.mean();
  return r;
}

}  // namespace

RunResult run_basic_control(const model::ThroughputFunction& f,
                            loss::LossIntervalProcess& process,
                            const std::vector<double>& weights, const RunConfig& cfg) {
  return run_control(Mode::kBasic, f, process, weights, cfg);
}

RunResult run_comprehensive_control(const model::ThroughputFunction& f,
                                    loss::LossIntervalProcess& process,
                                    const std::vector<double>& weights, const RunConfig& cfg) {
  return run_control(Mode::kComprehensive, f, process, weights, cfg);
}

RunResult run_proposition3(const model::ThroughputFunction& f,
                           loss::LossIntervalProcess& process,
                           const std::vector<double>& weights, const RunConfig& cfg) {
  return run_control(Mode::kProposition3, f, process, weights, cfg);
}

double proposition3_vn(const model::SimplifiedCoeffs& coeffs, double w1, double thetahat_n,
                       double thetahat_n1, double rate_at_thetahat_n) {
  // V_n = (1/w1) [ -2 c1r (y1^{1/2} - y0^{1/2}) + 2 c2q (y1^{-1/2} - y0^{-1/2})
  //                + (64/5) c2q (y1^{-5/2} - y0^{-5/2})
  //                + (y1 - y0) / f(1/y0) ]
  const double y0 = thetahat_n;
  const double y1 = thetahat_n1;
  const double sqrt_term = -2.0 * coeffs.c1r * (std::sqrt(y1) - std::sqrt(y0));
  const double inv_sqrt_term = 2.0 * coeffs.c2q * (1.0 / std::sqrt(y1) - 1.0 / std::sqrt(y0));
  const double inv_52_term =
      (64.0 / 5.0) * coeffs.c2q *
      (1.0 / (y1 * y1 * std::sqrt(y1)) - 1.0 / (y0 * y0 * std::sqrt(y0)));
  const double linear_term = (y1 - y0) / rate_at_thetahat_n;
  return (sqrt_term + inv_sqrt_term + inv_52_term + linear_term) / w1;
}

AudioRunResult run_audio_control(const model::ThroughputFunction& f, double packet_rate,
                                 double bernoulli_p, const std::vector<double>& weights,
                                 bool comprehensive, std::uint64_t seed, const RunConfig& cfg) {
  if (!(packet_rate > 0)) throw std::invalid_argument("run_audio_control: packet_rate > 0");
  if (!(bernoulli_p > 0) || bernoulli_p >= 1) {
    throw std::invalid_argument("run_audio_control: p must be in (0,1)");
  }
  sim::Rng rng(seed);
  std::geometric_distribution<long> geom(bernoulli_p);
  // Loss-event interval: packets between consecutive dropped packets
  // (support >= 1, mean 1/p).
  const auto draw_theta = [&]() { return static_cast<double>(geom(rng.engine()) + 1); };

  MovingAverageEstimator est(weights);
  est.push(draw_theta());
  for (std::uint64_t i = 1; i < cfg.warmup + weights.size(); ++i) est.push(draw_theta());

  stats::OnlineMoments thetahat_m;
  stats::OnlineCovariance cov_xs;
  double sum_bytes = 0.0;  // ∫X dt, in f's rate unit * seconds
  double sum_time = 0.0;
  double sum_packets = 0.0;

  for (std::uint64_t n = 0; n < cfg.events; ++n) {
    const double hat = est.value();
    const double base_rate = f.rate_from_interval(hat);
    const double theta = draw_theta();
    const double s = theta / packet_rate;

    double bytes;
    if (!comprehensive) {
      bytes = base_rate * s;
    } else {
      // Open interval grows deterministically at the packet rate; the byte
      // rate is flat until theta* packets, then follows f(1/(w1 x + W_n)).
      const double tail = est.shifted_tail();
      const double w1 = est.weights().front();
      const double threshold = util::clamp((hat - tail) / w1, 0.0, theta);
      const double flat = base_rate * threshold / packet_rate;
      double rising = 0.0;
      if (threshold < theta) {
        rising = model::integrate(
                     [&](double x) { return f.rate_from_interval(w1 * x + tail); }, threshold,
                     theta, 1e-9) /
                 packet_rate;
      }
      bytes = flat + rising;
    }

    sum_bytes += bytes;
    sum_time += s;
    sum_packets += theta;
    thetahat_m.add(hat);
    cov_xs.add(base_rate, s);
    est.push(theta);
  }

  AudioRunResult r;
  r.events = cfg.events;
  r.mean_rate = sum_bytes / sum_time;
  r.p = static_cast<double>(cfg.events) / sum_packets;
  r.normalized = r.mean_rate / f.rate(std::min(1.0, r.p));
  r.cov_x_s = cov_xs.covariance();
  r.cv_thetahat = thetahat_m.cv();
  r.cv_thetahat_sq = util::sq(r.cv_thetahat);
  return r;
}

double quadrature_normalized_L1(const model::ThroughputFunction& f, double p, double cv) {
  const auto params = sim::shifted_exp_for(p, cv);
  const double m = 1.0 / p;
  const double eg = model::expect_shifted_exp([&f](double x) { return f.g(x); }, params.x0,
                                              params.a);
  return f.g(m) / eg;
}

}  // namespace ebrc::core
