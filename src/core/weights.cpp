#include "core/weights.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ebrc::core {
namespace {

std::vector<double> normalized(std::vector<double> w) {
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  for (double& v : w) v /= sum;
  return w;
}

}  // namespace

std::vector<double> tfrc_weights(std::size_t L) {
  if (L == 0) throw std::invalid_argument("tfrc_weights: L must be >= 1");
  std::vector<double> w(L);
  const double half = static_cast<double>(L) / 2.0;
  for (std::size_t l = 1; l <= L; ++l) {
    const double lf = static_cast<double>(l);
    w[l - 1] = lf <= std::ceil(half) ? 1.0 : 1.0 - (lf - half) / (half + 1.0);
  }
  return normalized(std::move(w));
}

std::vector<double> uniform_weights(std::size_t L) {
  if (L == 0) throw std::invalid_argument("uniform_weights: L must be >= 1");
  return std::vector<double>(L, 1.0 / static_cast<double>(L));
}

std::vector<double> geometric_weights(std::size_t L, double rho) {
  if (L == 0) throw std::invalid_argument("geometric_weights: L must be >= 1");
  if (!(rho > 0.0 && rho <= 1.0)) throw std::invalid_argument("geometric_weights: rho in (0,1]");
  std::vector<double> w(L);
  double v = 1.0;
  for (std::size_t l = 0; l < L; ++l) {
    w[l] = v;
    v *= rho;
  }
  return normalized(std::move(w));
}

void validate_weights(const std::vector<double>& w) {
  if (w.empty()) throw std::invalid_argument("weights: empty");
  if (!(w.front() > 0.0)) throw std::invalid_argument("weights: w1 must be > 0");
  double sum = 0.0;
  for (double v : w) {
    if (v < 0.0) throw std::invalid_argument("weights: negative entry");
    sum += v;
  }
  if (std::abs(sum - 1.0) > 1e-9) throw std::invalid_argument("weights: must sum to 1");
}

}  // namespace ebrc::core
