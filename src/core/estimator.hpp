// The moving-average loss-event interval estimator (Eq. 2) together with the
// "open interval" view used by the comprehensive control (Eq. 4).
//
// Storage is a fixed ring of the last L intervals (no deque nodes), and the
// weighted aggregates every query needs — the closed average, the shifted
// tail W_n, its weight mass, and the open-interval threshold theta* — are
// recomputed once per push()/seed() and cached. Queries are therefore O(1):
// the packet-level senders consult the estimator on every packet (TFRC's
// comprehensive control, the Figure-6 audio source), while intervals close
// only once per loss event, so the O(L) work now runs once per event instead
// of once per packet. The cached recompute accumulates in exactly the order
// the naive per-query loops used, so every query is bit-identical to the old
// implementation (pinned by tests/estimator_property_test.cpp).
#pragma once

#include <cstddef>
#include <vector>

namespace ebrc::core {

class MovingAverageEstimator {
 public:
  /// `weights` must satisfy validate_weights (sum 1, w1 > 0).
  explicit MovingAverageEstimator(std::vector<double> weights);

  /// Records the newly completed loss-event interval theta_n (packets).
  void push(double theta);

  /// Pre-fills the whole history with `theta` (TFRC's initialization after
  /// the first loss event).
  void seed(double theta);

  /// Forgets every observed interval (connection reuse in the flow pool);
  /// the weight profile is kept and the ring's storage is retained, so a
  /// reset-and-refill allocates nothing.
  void reset() noexcept;

  /// True once L intervals have been observed.
  [[nodiscard]] bool warmed_up() const noexcept { return count_ >= weights_.size(); }
  [[nodiscard]] std::size_t history_size() const noexcept { return count_; }
  [[nodiscard]] std::size_t window() const noexcept { return weights_.size(); }
  [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }

  /// hat-theta_n = sum_l w_l theta_{n-l}. Before warm-up the observed prefix
  /// is renormalized by the weight mass actually used (TFRC behavior).
  /// Requires at least one interval.
  [[nodiscard]] double value() const;

  /// W_n = sum_{l=1}^{L-1} w_{l+1} theta_{n-l}: the history contribution when
  /// the open interval is promoted to the newest slot.
  [[nodiscard]] double shifted_tail() const;

  /// The open-interval threshold theta*_n = (hat-theta_n - W_n)/w1 beyond
  /// which the comprehensive estimator starts to grow (condition A_t).
  [[nodiscard]] double open_threshold() const;

  /// hat-theta(t) = max(hat-theta_n, w1 * open + W_n): Eq. 4's estimator.
  [[nodiscard]] double value_with_open(double open_packets) const;

  /// Weight mass behind shifted_tail() (w2..wL over the observed prefix);
  /// needed by RFC 3448 history discounting to renormalize.
  [[nodiscard]] double shifted_tail_mass() const;

  /// RFC 3448 Section 5.5 history discounting: the open interval keeps full
  /// weight while every closed interval's weight is scaled by `discount`
  /// in [0.5, 1]:
  ///   (w1 * open + discount * W_n) / (w1 + discount * mass(W_n)).
  [[nodiscard]] double value_with_open_discounted(double open_packets, double discount) const;

 private:
  void require_history() const;
  /// Rebuilds every cached aggregate from the ring, accumulating in the same
  /// newest-to-oldest order as the former per-query loops (bit-identity).
  void recompute() noexcept;

  std::vector<double> weights_;
  std::vector<double> ring_;   // capacity L; ring_[newest_] is theta_n
  std::size_t newest_ = 0;
  std::size_t count_ = 0;

  // Aggregates cached at the last push()/seed().
  double value_ = 0.0;
  double tail_ = 0.0;
  double tail_mass_ = 0.0;
};

}  // namespace ebrc::core
