// Protocol-facing incremental controller: the piece a packet-level sender
// (TFRC, the audio source) embeds. It owns the moving-average estimator and
// answers "what send rate does the control allow right now?" given the
// number of packets sent since the last loss event.
#pragma once

#include <memory>
#include <vector>

#include "core/estimator.hpp"
#include "model/throughput_function.hpp"

namespace ebrc::core {

struct RateControllerConfig {
  std::shared_ptr<const model::ThroughputFunction> function;
  std::vector<double> weights;
  /// true = comprehensive control (Eq. 4, TFRC); false = basic control (Eq. 3)
  bool comprehensive = true;
};

class RateController {
 public:
  explicit RateController(RateControllerConfig cfg);

  /// True once the controller has loss history and produces rates.
  [[nodiscard]] bool active() const noexcept { return seeded_; }

  /// TFRC-style initialization after the first loss event: synthesizes a
  /// loss-interval history consistent with the given send rate by inverting
  /// f, i.e. seeds hat-theta with the x solving f(1/x) = rate.
  void seed_from_rate(double rate);

  /// Seeds the history directly with a known interval (packets).
  void seed_interval(double theta);

  /// A loss event closed an interval of `theta` packets.
  void on_loss_event(double theta);

  /// Allowed send rate with `open_packets` sent since the last loss event.
  /// Under the basic control the open interval is ignored.
  [[nodiscard]] double allowed_rate(double open_packets) const;

  /// Current (closed-history) estimator value.
  [[nodiscard]] double estimate() const { return estimator_.value(); }

  /// Open-interval threshold above which the rate starts rising (Eq. 4).
  [[nodiscard]] double open_threshold() const { return estimator_.open_threshold(); }

  [[nodiscard]] const model::ThroughputFunction& function() const { return *cfg_.function; }
  [[nodiscard]] const MovingAverageEstimator& estimator() const noexcept { return estimator_; }

 private:
  RateControllerConfig cfg_;
  MovingAverageEstimator estimator_;
  bool seeded_ = false;
};

}  // namespace ebrc::core
