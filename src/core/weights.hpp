// Moving-average weights for the loss-interval estimator (Eq. 2).
//
// The paper (and TFRC / RFC 3448) uses weights that are flat over the most
// recent half of the window and decay linearly over the older half; the
// estimator is unbiased when the weights sum to one (assumption (E)).
#pragma once

#include <cstddef>
#include <vector>

namespace ebrc::core {

/// TFRC weights of window L, normalized to sum 1. Raw shape: w_l = 1 for
/// l <= ceil(L/2), then linearly decaying, w_l = 1 - (l - L/2)/(L/2 + 1)
/// (for L = 8: 1, 1, 1, 1, .8, .6, .4, .2 — the RFC 3448 profile).
[[nodiscard]] std::vector<double> tfrc_weights(std::size_t L);

/// Uniform weights 1/L (the plain moving average).
[[nodiscard]] std::vector<double> uniform_weights(std::size_t L);

/// Geometric weights proportional to rho^{l-1}, normalized (EWMA-like with a
/// finite window); rho in (0, 1].
[[nodiscard]] std::vector<double> geometric_weights(std::size_t L, double rho);

/// Validates an arbitrary weight vector: non-empty, strictly positive first
/// weight, non-negative entries, sums to 1 within tolerance.
void validate_weights(const std::vector<double>& w);

}  // namespace ebrc::core
