// The many-sources limit of Section IV-A.1 (Claim 3), analytically.
//
// A slowly-varying congestion process Z(t) carries a per-state "network"
// loss-event rate p_i. In the separation-of-timescales limit (b_i -> 1 in
// Eq. 12) a source whose time-average send rate in state i is x_i samples
//
//     p  ->  sum_i p_i x_i pi_i / sum_i x_i pi_i            (Eq. 13)
//
// The source's responsiveness decides x_i:
//   * a non-adaptive source (CBR/Poisson) has x_i = const   -> p'' (largest),
//   * a perfectly responsive source tracks p_i: x_i = f(p_i) -> p' (smallest),
//   * an equation-based source with averaging window L sits in between: its
//     estimator sees a mixture of the current state and the long-run
//     average. We model the perceived rate as
//         p̂_i = responsiveness * p_i + (1 - responsiveness) * p̄,
//     responsiveness in [0, 1], and x_i = f(p̂_i).
//
// Claim 3 then reads: p(responsiveness) is non-increasing, i.e.
// p' = p(1) <= p(lambda) <= p(0) = p''.
#pragma once

#include <vector>

#include "loss/congestion_process.hpp"
#include "model/throughput_function.hpp"

namespace ebrc::core {

struct ManySourcesResult {
  std::vector<double> per_state_rate;   // x_i
  std::vector<double> perceived_rate;   // p̂_i
  double sampled_loss_rate = 0.0;       // Eq. 13 at this responsiveness
  double nonadaptive_loss_rate = 0.0;   // p'' (responsiveness 0)
  double responsive_loss_rate = 0.0;    // p'  (responsiveness 1)
};

/// Evaluates Eq. 13 for a source of the given responsiveness in [0, 1].
[[nodiscard]] ManySourcesResult analyze_many_sources(const loss::CongestionProcess& z,
                                                     const model::ThroughputFunction& f,
                                                     double responsiveness);

/// Maps an estimator window L to an effective responsiveness: the estimator
/// averages over ~L loss events, so with state sojourns of `events_per_state`
/// loss events the fraction of the window filled inside the current state is
/// roughly min(1, events_per_state / L). This is the heuristic coupling the
/// paper's "responsiveness depends on the averaging window L" remark.
[[nodiscard]] double responsiveness_for_window(double events_per_state, std::size_t L);

}  // namespace ebrc::core
