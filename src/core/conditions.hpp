// Checkers for the paper's conservativeness conditions and bounds.
//
//   (F1)  x -> 1/f(1/x) = g(x) convex                     (Theorem 1)
//   (F2)  x -> f(1/x) concave                             (Theorem 2, part 1)
//   (F2c) x -> f(1/x) strictly convex                     (Theorem 2, part 2)
//   (C1)  cov[theta_0, hat-theta_0] <= 0                  (Theorem 1)
//   (C2)  cov[X_0, S_0] <= 0                              (Theorem 2, part 1)
//   (C2c) cov[X_0, S_0] >= 0                              (Theorem 2, part 2)
//   (V)   hat-theta has non-zero variance
//
// Note on (F2): the theorem statement writes "x -> f(x) concave", but its
// proof uses concavity of 1/g, i.e. of x -> f(1/x), and Claim 2 states the
// condition in exactly that form ("f(1/x) concave in the region where the
// estimator takes its values"); we implement the proof's form.
#pragma once

#include <vector>

#include "model/convex_closure.hpp"
#include "model/convexity.hpp"
#include "model/throughput_function.hpp"

namespace ebrc::core {

struct FunctionConditions {
  model::ConvexityReport g_report;  // on g(x) = 1/f(1/x) -> (F1)
  model::ConvexityReport h_report;  // on h(x) = f(1/x)   -> (F2)/(F2c)
  bool F1 = false;
  bool F2 = false;
  bool F2c = false;
};

/// Probes (F1), (F2), (F2c) on the interval-region [x_lo, x_hi] where the
/// estimator takes its values.
[[nodiscard]] FunctionConditions check_function_conditions(const model::ThroughputFunction& f,
                                                           double x_lo, double x_hi,
                                                           int grid = 512, double tol = 1e-9);

struct CovarianceConditions {
  double cov_theta_thetahat = 0.0;
  double cov_x_s = 0.0;
  double var_thetahat = 0.0;
  bool C1 = false;
  bool C2 = false;
  bool C2c = false;
  bool V = false;
};

/// Replays an interval trace through the moving-average estimator and
/// measures the covariances entering (C1), (C2) and the variance entering
/// (V). `f` supplies X_n = f(1/hat-theta_n) and S_n = theta_n / X_n
/// (basic control).
[[nodiscard]] CovarianceConditions check_covariance_conditions(
    const model::ThroughputFunction& f, const std::vector<double>& intervals,
    const std::vector<double>& weights, double tol = 1e-12);

/// Theorem 1's quantitative bound (Eq. 10):
///   E[X(0)] <= f(p) / (1 + (f'(p) p / f(p)) cov[theta_0,hat-theta_0] p^2),
/// valid while the denominator is positive; returns +infinity otherwise
/// (the bound degenerates).
[[nodiscard]] double theorem1_bound(const model::ThroughputFunction& f, double p,
                                    double cov_theta_thetahat);

/// Proposition 4's overshoot cap: r = sup g/g** over [x_lo, x_hi]. A control
/// satisfying (C1) cannot exceed f(p) by more than this factor.
[[nodiscard]] double proposition4_bound(const model::ThroughputFunction& f, double x_lo,
                                        double x_hi, int grid = 4096);

}  // namespace ebrc::core
