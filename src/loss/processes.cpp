#include "loss/loss_process.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "util/math.hpp"

namespace ebrc::loss {

DeterministicProcess::DeterministicProcess(double mean) : mean_(mean) {
  if (mean <= 0) throw std::invalid_argument("DeterministicProcess: mean must be > 0");
}

ShiftedExponentialProcess::ShiftedExponentialProcess(double p, double cv, std::uint64_t seed)
    : params_(sim::shifted_exp_for(p, cv)), cv_(cv), rng_(seed) {}

double ShiftedExponentialProcess::next() {
  return rng_.shifted_exponential(params_.x0, params_.a);
}

double ShiftedExponentialProcess::mean() const { return params_.x0 + 1.0 / params_.a; }

GammaProcess::GammaProcess(double mean, double cv, std::uint64_t seed)
    : mean_(mean), shape_(1.0 / util::sq(cv)), scale_(mean * util::sq(cv)), rng_(seed) {
  if (mean <= 0 || cv <= 0) throw std::invalid_argument("GammaProcess: mean, cv must be > 0");
}

double GammaProcess::next() {
  std::gamma_distribution<double> dist(shape_, scale_);
  return dist(rng_.engine());
}

Ar1Process::Ar1Process(double mean, double cv, double rho, std::uint64_t seed)
    : mean_(mean),
      rho_(rho),
      // Var[theta] = sd_eps^2 / (1 - rho^2) => sd_eps = cv*mean*sqrt(1-rho^2).
      innovation_sd_(cv * mean * std::sqrt(1.0 - rho * rho)),
      floor_(0.05 * mean),
      state_(mean),
      rng_(seed) {
  if (mean <= 0 || cv <= 0) throw std::invalid_argument("Ar1Process: mean, cv must be > 0");
  if (!(rho > -1.0 && rho < 1.0)) throw std::invalid_argument("Ar1Process: rho must be in (-1,1)");
}

double Ar1Process::next() {
  // Centered innovation built from a shifted exponential so the marginal
  // stays right-skewed like measured loss intervals; truncation at the floor
  // slightly biases the mean upward — acceptable for the sign experiments
  // this process exists for (documented in the header).
  const double eps = innovation_sd_ * (rng_.exponential_mean(1.0) - 1.0);
  state_ = mean_ + rho_ * (state_ - mean_) + eps;
  if (state_ < floor_) state_ = floor_;
  return state_;
}

}  // namespace ebrc::loss
