// Per-packet loss modules ("droppers") for packet-level experiments.
#pragma once

#include <cstdint>

#include "loss/congestion_process.hpp"
#include "sim/random.hpp"

namespace ebrc::loss {

/// Interface: decides for each packet (at simulated time t) whether it is
/// lost. Used by the Figure-6 Bernoulli experiment and the Claim-3
/// many-sources experiments.
class PacketDropper {
 public:
  virtual ~PacketDropper() = default;
  [[nodiscard]] virtual bool drop(double t) = 0;
};

/// Fixed-probability Bernoulli dropper (the paper's "loss module ... that
/// drops a packet with a fixed probability p", Section V-C.1).
class BernoulliDropper final : public PacketDropper {
 public:
  BernoulliDropper(double p, std::uint64_t seed);
  [[nodiscard]] bool drop(double t) override;
  [[nodiscard]] double probability() const noexcept { return p_; }

 private:
  double p_;
  sim::Rng rng_;
};

/// Dropper whose per-packet loss probability follows a CongestionProcess —
/// the sample-path realization of the Section IV-A.1 limit model.
class ModulatedDropper final : public PacketDropper {
 public:
  ModulatedDropper(CongestionProcess process, std::uint64_t seed);
  [[nodiscard]] bool drop(double t) override;
  [[nodiscard]] const CongestionProcess& process() const noexcept { return process_; }

 private:
  CongestionProcess process_;
  sim::Rng rng_;
};

}  // namespace ebrc::loss
