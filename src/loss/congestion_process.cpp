#include "loss/congestion_process.hpp"

#include <cmath>
#include <stdexcept>

namespace ebrc::loss {

CongestionProcess::CongestionProcess(std::vector<CongestionState> states, std::uint64_t seed)
    : states_(std::move(states)), rng_(seed) {
  if (states_.empty()) throw std::invalid_argument("CongestionProcess: no states");
  for (const auto& s : states_) {
    if (s.loss_rate < 0 || s.loss_rate > 1 || s.mean_sojourn <= 0) {
      throw std::invalid_argument("CongestionProcess: bad state parameters");
    }
  }
  next_transition_ = rng_.exponential_mean(states_[0].mean_sojourn);
}

std::vector<double> CongestionProcess::stationary() const {
  // For the cyclic chain each state is visited once per cycle, so the
  // time-stationary weight is the normalized mean sojourn.
  double total = 0.0;
  for (const auto& s : states_) total += s.mean_sojourn;
  std::vector<double> pi;
  pi.reserve(states_.size());
  for (const auto& s : states_) pi.push_back(s.mean_sojourn / total);
  return pi;
}

double CongestionProcess::sampled_loss_rate(const std::vector<double>& x) const {
  if (x.size() != states_.size()) {
    throw std::invalid_argument("sampled_loss_rate: rate vector arity mismatch");
  }
  const auto pi = stationary();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    num += states_[i].loss_rate * x[i] * pi[i];
    den += x[i] * pi[i];
  }
  if (den <= 0) throw std::invalid_argument("sampled_loss_rate: zero total send rate");
  return num / den;
}

double CongestionProcess::nonadaptive_loss_rate() const {
  const auto pi = stationary();
  double p = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) p += pi[i] * states_[i].loss_rate;
  return p;
}

void CongestionProcess::advance(double t) {
  if (t < now_) throw std::invalid_argument("CongestionProcess::advance: time went backwards");
  now_ = t;
  while (now_ >= next_transition_) {
    state_ = (state_ + 1) % states_.size();
    next_transition_ += rng_.exponential_mean(states_[state_].mean_sojourn);
  }
}

CongestionProcess make_weather_process(double p_good, double p_bad, int k, double mean_sojourn_s,
                                       std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("make_weather_process: need k >= 2 states");
  if (!(p_good > 0) || !(p_bad > p_good) || p_bad > 1) {
    throw std::invalid_argument("make_weather_process: need 0 < p_good < p_bad <= 1");
  }
  std::vector<CongestionState> states;
  states.reserve(static_cast<std::size_t>(k));
  const double ratio = std::pow(p_bad / p_good, 1.0 / static_cast<double>(k - 1));
  double p = p_good;
  for (int i = 0; i < k; ++i) {
    states.push_back(CongestionState{p, mean_sojourn_s});
    p *= ratio;
  }
  return CongestionProcess(std::move(states), seed);
}

}  // namespace ebrc::loss
