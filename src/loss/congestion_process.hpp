// The many-sources-limit congestion process of Section IV-A.1.
//
// A continuous-time Markov chain Z(t) over a finite state space; each state i
// carries a "network" loss-event rate p_i. A source with per-state
// time-average send rate x_i samples, in the separation-of-timescales limit
// (Eq. 13),
//     p -> sum_i p_i x_i pi_i / sum_i x_i pi_i .
// The class exposes both the analytic evaluation of Eq. 13 and the sample
// path (for driving a ModulatedDropper in packet-level simulation).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace ebrc::loss {

struct CongestionState {
  double loss_rate;     // p_i: per-packet loss-event probability in state i
  double mean_sojourn;  // mean real-time the chain spends in state i per visit
};

class CongestionProcess {
 public:
  /// Cyclic chain over the given states with exponential sojourns.
  CongestionProcess(std::vector<CongestionState> states, std::uint64_t seed);

  /// Steady-state time probabilities pi_i (sojourn-weighted for the cycle).
  [[nodiscard]] std::vector<double> stationary() const;

  /// Eq. 13: loss-event rate seen by a source whose time-average send rate in
  /// state i is x[i].
  [[nodiscard]] double sampled_loss_rate(const std::vector<double>& x) const;

  /// Loss-event rate of a non-adaptive source: p'' = sum_i pi_i p_i.
  [[nodiscard]] double nonadaptive_loss_rate() const;

  // --- sample-path interface -------------------------------------------
  /// Advances the chain to time t (t must not decrease between calls).
  void advance(double t);
  /// Current state index.
  [[nodiscard]] std::size_t state() const noexcept { return state_; }
  /// Loss rate of the current state.
  [[nodiscard]] double current_loss_rate() const { return states_[state_].loss_rate; }
  [[nodiscard]] const std::vector<CongestionState>& states() const noexcept { return states_; }

 private:
  std::vector<CongestionState> states_;
  std::size_t state_ = 0;
  double next_transition_ = 0.0;
  double now_ = 0.0;
  sim::Rng rng_;
};

/// Preset: a k-state chain whose loss rates sweep geometrically between
/// p_good and p_bad with equal sojourns — a simple "network weather" model.
[[nodiscard]] CongestionProcess make_weather_process(double p_good, double p_bad, int k,
                                                     double mean_sojourn_s, std::uint64_t seed);

}  // namespace ebrc::loss
