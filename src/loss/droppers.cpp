#include "loss/droppers.hpp"

#include <stdexcept>

namespace ebrc::loss {

BernoulliDropper::BernoulliDropper(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0 || p > 1) throw std::invalid_argument("BernoulliDropper: p outside [0,1]");
}

bool BernoulliDropper::drop(double /*t*/) { return rng_.bernoulli(p_); }

ModulatedDropper::ModulatedDropper(CongestionProcess process, std::uint64_t seed)
    : process_(std::move(process)), rng_(seed) {}

bool ModulatedDropper::drop(double t) {
  process_.advance(t);
  return rng_.bernoulli(process_.current_loss_rate());
}

}  // namespace ebrc::loss
