// Markov-modulated loss-interval process: the loss process moves through
// phases with slow transitions, making the loss-event interval highly
// predictable — the scenario Section III-B.2 identifies as a potential
// source of non-conservativeness (and of (C1) violation).
#pragma once

#include <vector>

#include "loss/loss_process.hpp"

namespace ebrc::loss {

struct Phase {
  double mean_interval;     // E[theta | phase]
  double mean_sojourn;      // expected number of loss events spent in phase
};

class MarkovModulatedProcess final : public LossIntervalProcess {
 public:
  /// Cyclic phase chain (phase i -> i+1 mod k after a geometric number of
  /// events with the given mean sojourn); intervals are exponential with the
  /// per-phase mean.
  MarkovModulatedProcess(std::vector<Phase> phases, std::uint64_t seed);

  [[nodiscard]] double next() override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override { return "markov-modulated"; }
  [[nodiscard]] std::size_t current_phase() const noexcept { return phase_; }

 private:
  std::vector<Phase> phases_;
  std::size_t phase_ = 0;
  sim::Rng rng_;
};

/// Two-phase congestion/no-congestion preset: a "good" phase with long
/// intervals and a "bad" phase with short intervals, switching slowly.
[[nodiscard]] MarkovModulatedProcess make_two_phase(double good_mean, double bad_mean,
                                                    double mean_sojourn_events,
                                                    std::uint64_t seed);

}  // namespace ebrc::loss
