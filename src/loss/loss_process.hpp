// Loss-interval processes: stationary generators of the packet-counted
// loss-event intervals {theta_n} that drive the basic/comprehensive control
// in the paper's numerical experiments.
#pragma once

#include <memory>
#include <string>

#include "sim/random.hpp"

namespace ebrc::loss {

/// A stationary, ergodic source of loss-event intervals theta_n > 0
/// (measured in packets). Implementations own their randomness.
class LossIntervalProcess {
 public:
  virtual ~LossIntervalProcess() = default;

  /// Draws the next interval (the process may be serially dependent).
  [[nodiscard]] virtual double next() = 0;

  /// Stationary mean E[theta_0] = 1/p.
  [[nodiscard]] virtual double mean() const = 0;

  /// Stationary loss-event rate p = 1/mean().
  [[nodiscard]] double loss_event_rate() const { return 1.0 / mean(); }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// theta_n == m: the degenerate case (V) of Theorem 2 excludes.
class DeterministicProcess final : public LossIntervalProcess {
 public:
  explicit DeterministicProcess(double mean);
  [[nodiscard]] double next() override { return mean_; }
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] std::string name() const override { return "deterministic"; }

 private:
  double mean_;
};

/// i.i.d. shifted exponential, the paper's Section V-A.1 design:
/// theta = x0 + Exp(a); mean = x0 + 1/a, cv^2 = (1/a)/mean. Parameterized
/// directly by the target (p, cv), cv in (0, 1].
class ShiftedExponentialProcess final : public LossIntervalProcess {
 public:
  ShiftedExponentialProcess(double p, double cv, std::uint64_t seed);
  [[nodiscard]] double next() override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override { return "shifted-exponential"; }
  [[nodiscard]] double cv() const noexcept { return cv_; }
  [[nodiscard]] const sim::ShiftedExpParams& params() const noexcept { return params_; }

 private:
  sim::ShiftedExpParams params_;
  double cv_;
  sim::Rng rng_;
};

/// i.i.d. gamma intervals: allows cv > 1 (more variable than exponential),
/// complementing the shifted exponential which caps cv at 1.
class GammaProcess final : public LossIntervalProcess {
 public:
  GammaProcess(double mean, double cv, std::uint64_t seed);
  [[nodiscard]] double next() override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] std::string name() const override { return "gamma"; }

 private:
  double mean_;
  double shape_;
  double scale_;
  sim::Rng rng_;
};

/// AR(1)-correlated intervals with tunable lag-1 autocorrelation rho in
/// (-1, 1): theta_n = m + rho (theta_{n-1} - m) + eps_n, eps_n centered
/// shifted-exponential innovations, truncated at a small positive floor.
/// Positive rho makes the estimator a good predictor (cov[theta_0,
/// hat-theta_0] > 0, violating (C1)); negative rho strengthens (C1).
class Ar1Process final : public LossIntervalProcess {
 public:
  Ar1Process(double mean, double cv, double rho, std::uint64_t seed);
  [[nodiscard]] double next() override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] std::string name() const override { return "ar1"; }
  [[nodiscard]] double rho() const noexcept { return rho_; }

 private:
  double mean_;
  double rho_;
  double innovation_sd_;
  double floor_;
  double state_;
  sim::Rng rng_;
};

}  // namespace ebrc::loss
