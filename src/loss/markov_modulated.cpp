#include "loss/markov_modulated.hpp"

#include <stdexcept>

namespace ebrc::loss {

MarkovModulatedProcess::MarkovModulatedProcess(std::vector<Phase> phases, std::uint64_t seed)
    : phases_(std::move(phases)), rng_(seed) {
  if (phases_.empty()) throw std::invalid_argument("MarkovModulatedProcess: no phases");
  for (const auto& ph : phases_) {
    if (ph.mean_interval <= 0 || ph.mean_sojourn < 1.0) {
      throw std::invalid_argument(
          "MarkovModulatedProcess: phase needs mean_interval > 0 and mean_sojourn >= 1");
    }
  }
}

double MarkovModulatedProcess::next() {
  const auto& ph = phases_[phase_];
  const double theta = rng_.exponential_mean(ph.mean_interval);
  // Geometric sojourn: leave the phase with probability 1/mean_sojourn after
  // each event, giving the requested expected number of events per visit.
  if (rng_.bernoulli(1.0 / ph.mean_sojourn)) {
    phase_ = (phase_ + 1) % phases_.size();
  }
  return theta;
}

double MarkovModulatedProcess::mean() const {
  // Stationary phase weights of the cyclic chain are proportional to the
  // mean sojourns (in events), so the event-stationary interval mean is the
  // sojourn-weighted mean of the per-phase means.
  double wsum = 0.0;
  double msum = 0.0;
  for (const auto& ph : phases_) {
    wsum += ph.mean_sojourn;
    msum += ph.mean_sojourn * ph.mean_interval;
  }
  return msum / wsum;
}

MarkovModulatedProcess make_two_phase(double good_mean, double bad_mean,
                                      double mean_sojourn_events, std::uint64_t seed) {
  return MarkovModulatedProcess(
      {Phase{good_mean, mean_sojourn_events}, Phase{bad_mean, mean_sojourn_events}}, seed);
}

}  // namespace ebrc::loss
