// Root finding / fixed-point helpers.
#pragma once

#include <functional>

namespace ebrc::model {

/// Bisection root of fn on [lo, hi]; requires a sign change. Returns the
/// midpoint once the bracket is below xtol.
[[nodiscard]] double bisect(const std::function<double(double)>& fn, double lo, double hi,
                            double xtol = 1e-12, int max_iter = 200);

/// Damped fixed-point iteration x <- (1-damping) x + damping fn(x) starting
/// from x0 until |fn(x) - x| <= tol * max(1, |x|). Throws on divergence.
[[nodiscard]] double fixed_point(const std::function<double(double)>& fn, double x0,
                                 double damping = 0.5, double tol = 1e-10, int max_iter = 10000);

}  // namespace ebrc::model
