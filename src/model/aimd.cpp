#include "model/aimd.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace ebrc::model {
namespace {

void require(const AimdParams& a, double capacity) {
  if (a.alpha <= 0) throw std::invalid_argument("AIMD: alpha must be > 0");
  if (!(a.beta > 0.0 && a.beta < 1.0)) throw std::invalid_argument("AIMD: beta must be in (0,1)");
  if (capacity <= 0) throw std::invalid_argument("AIMD: capacity must be > 0");
}

}  // namespace

double aimd_sqrt_constant(const AimdParams& a) {
  if (a.alpha <= 0 || !(a.beta > 0.0 && a.beta < 1.0)) {
    throw std::invalid_argument("AIMD: bad parameters");
  }
  return std::sqrt(a.alpha * (1.0 + a.beta) / (2.0 * (1.0 - a.beta)));
}

double aimd_rate(const AimdParams& a, double p) {
  if (!(p > 0)) throw std::invalid_argument("aimd_rate: p must be > 0");
  return aimd_sqrt_constant(a) / std::sqrt(p);
}

double aimd_loss_event_rate(const AimdParams& a, double capacity) {
  require(a, capacity);
  return 2.0 * a.alpha / ((1.0 - a.beta * a.beta) * util::sq(capacity));
}

double aimd_time_average_rate(const AimdParams& a, double capacity) {
  require(a, capacity);
  return 0.5 * (1.0 + a.beta) * capacity;
}

double ebrc_fixed_point_loss_rate(const AimdParams& a, double capacity) {
  require(a, capacity);
  return a.alpha * (1.0 + a.beta) / (2.0 * (1.0 - a.beta) * util::sq(capacity));
}

double claim4_ratio(const AimdParams& a) {
  if (!(a.beta > 0.0 && a.beta < 1.0)) throw std::invalid_argument("AIMD: beta must be in (0,1)");
  return 4.0 / util::sq(1.0 + a.beta);
}

FluidAimdResult simulate_fluid_aimd(const AimdParams& a, double capacity, int n_cycles) {
  require(a, capacity);
  if (n_cycles < 1) throw std::invalid_argument("simulate_fluid_aimd: n_cycles must be >= 1");
  // Deterministic sawtooth between beta*c and c: by symmetry every cycle is
  // identical, but we integrate numerically (per-RTT steps) to exercise the
  // same code path a stochastic variant would.
  double rate = a.beta * capacity;
  double sent = 0.0;  // packets
  double time = 0.0;  // RTTs (= seconds, RTT = 1)
  int events = 0;
  while (events < n_cycles) {
    if (rate >= capacity) {
      ++events;
      rate *= a.beta;
      continue;
    }
    // One RTT of linear growth; trapezoidal packet count for the RTT.
    const double next = std::min(capacity, rate + a.alpha);
    const double dt = (next - rate) / a.alpha;
    sent += 0.5 * (rate + next) * dt;
    time += dt;
    rate = next;
  }
  FluidAimdResult r{};
  r.loss_event_rate = static_cast<double>(events) / sent;
  r.time_average_rate = sent / time;
  r.cycle_length_rtts = time / static_cast<double>(events);
  return r;
}

}  // namespace ebrc::model
