#include "model/throughput_function.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace ebrc::model {
namespace {

void require_p(double p) {
  // p > 1 is unphysical (more than one loss event per packet) but the
  // formulas remain well defined there, and a moving-average estimator can
  // transiently report mean intervals below one packet when driven by a
  // continuous interval distribution — so only p <= 0 is rejected.
  if (!(p > 0.0)) {
    throw std::invalid_argument("loss-event rate must be > 0, got " + std::to_string(p));
  }
}

double default_q(double rtt_s, double q_s) {
  // TFRC recommendation: retransmission timeout q = 4r.
  return q_s < 0.0 ? 4.0 * rtt_s : q_s;
}

}  // namespace

double pftk_c1(int b) noexcept { return std::sqrt(2.0 * b / 3.0); }
double pftk_c2(int b) noexcept { return 1.5 * std::sqrt(1.5 * b); }

double ThroughputFunction::drate_dp(double p) const {
  // Central difference with a relative step; adequate for the analysis and
  // overridden with exact derivatives for the simplified family.
  const double h = std::max(1e-9, 1e-6 * p);
  const double hi = std::min(1.0, p + h);
  const double lo = std::max(1e-12, p - h);
  return (rate(hi) - rate(lo)) / (hi - lo);
}

// ---------------------------------------------------------------- SQRT ----

SqrtFormula::SqrtFormula(double rtt_s, int b) : r_(rtt_s), c1_(pftk_c1(b)) {
  if (rtt_s <= 0) throw std::invalid_argument("SqrtFormula: rtt must be > 0");
}

double SqrtFormula::rate(double p) const {
  require_p(p);
  return 1.0 / (c1_ * r_ * std::sqrt(p));
}

std::optional<SimplifiedCoeffs> SqrtFormula::simplified_coeffs() const {
  return SimplifiedCoeffs{c1_ * r_, 0.0};
}

double SqrtFormula::drate_dp(double p) const {
  require_p(p);
  return -0.5 / (c1_ * r_ * p * std::sqrt(p));
}

std::optional<double> SqrtFormula::g_antiderivative(double x) const {
  // g(x) = c1 r x^{-1/2}; G(x) = 2 c1 r x^{1/2}.
  return 2.0 * c1_ * r_ * std::sqrt(x);
}

// ------------------------------------------------------- PFTK-standard ----

PftkStandard::PftkStandard(double rtt_s, double q_s, int b)
    : r_(rtt_s), q_(default_q(rtt_s, q_s)), c1_(pftk_c1(b)), c2_(pftk_c2(b)) {
  if (rtt_s <= 0) throw std::invalid_argument("PftkStandard: rtt must be > 0");
}

double PftkStandard::rate(double p) const {
  require_p(p);
  const double sp = std::sqrt(p);
  const double denom =
      c1_ * r_ * sp + q_ * std::min(1.0, c2_ * sp) * p * (1.0 + 32.0 * p * p);
  return 1.0 / denom;
}

double PftkStandard::clamp_threshold() const noexcept { return 1.0 / (c2_ * c2_); }

std::optional<double> PftkStandard::g_antiderivative(double x) const {
  // g(x) = c1 r x^{-1/2} + q min(1, c2 x^{-1/2}) (x^{-1} + 32 x^{-3}).
  // The min splits at x* = c2^2 (x >= x*: the simplified branch applies).
  //
  // Branch A (x >= c2^2, rare loss):   g = c1 r x^{-1/2} + q c2 (x^{-3/2} + 32 x^{-7/2})
  //   G_A(x) = 2 c1 r x^{1/2} - 2 q c2 x^{-1/2} - (64/5) q c2 x^{-5/2}
  // Branch B (x < c2^2, heavy loss):   g = c1 r x^{-1/2} + q (x^{-1} + 32 x^{-3})
  //   G_B(x) = 2 c1 r x^{1/2} + q ln x - 16 q x^{-2}
  // We stitch the branches continuously at x* so G is a true antiderivative.
  if (!(x > 0.0)) throw std::invalid_argument("g_antiderivative: x must be > 0");
  const double xs = c2_ * c2_;
  const auto ga = [&](double y) {
    return 2.0 * c1_ * r_ * std::sqrt(y) - 2.0 * q_ * c2_ / std::sqrt(y) -
           (64.0 / 5.0) * q_ * c2_ / (y * y * std::sqrt(y));
  };
  const auto gb = [&](double y) {
    return 2.0 * c1_ * r_ * std::sqrt(y) + q_ * std::log(y) - 16.0 * q_ / (y * y);
  };
  if (x >= xs) return ga(x);
  // Continuity constant: G_B(xs) + C == G_A(xs).
  return gb(x) + (ga(xs) - gb(xs));
}

// ----------------------------------------------------- PFTK-simplified ----

PftkSimplified::PftkSimplified(double rtt_s, double q_s, int b)
    : r_(rtt_s), q_(default_q(rtt_s, q_s)), c1_(pftk_c1(b)), c2_(pftk_c2(b)) {
  if (rtt_s <= 0) throw std::invalid_argument("PftkSimplified: rtt must be > 0");
}

double PftkSimplified::rate(double p) const {
  require_p(p);
  const double sp = std::sqrt(p);
  const double denom = c1_ * r_ * sp + q_ * c2_ * sp * p * (1.0 + 32.0 * p * p);
  return 1.0 / denom;
}

std::optional<SimplifiedCoeffs> PftkSimplified::simplified_coeffs() const {
  return SimplifiedCoeffs{c1_ * r_, c2_ * q_};
}

double PftkSimplified::drate_dp(double p) const {
  require_p(p);
  // 1/f = c1 r p^{1/2} + c2 q (p^{3/2} + 32 p^{7/2})
  const double sp = std::sqrt(p);
  const double denom = c1_ * r_ * sp + c2_ * q_ * (p * sp + 32.0 * p * p * p * sp);
  const double ddenom =
      0.5 * c1_ * r_ / sp + c2_ * q_ * (1.5 * sp + 112.0 * p * p * sp);
  return -ddenom / (denom * denom);
}

std::optional<double> PftkSimplified::g_antiderivative(double x) const {
  // g(x) = c1 r x^{-1/2} + c2 q (x^{-3/2} + 32 x^{-7/2})
  // G(x) = 2 c1 r x^{1/2} - 2 c2 q x^{-1/2} - (64/5) c2 q x^{-5/2}
  if (!(x > 0.0)) throw std::invalid_argument("g_antiderivative: x must be > 0");
  return 2.0 * c1_ * r_ * std::sqrt(x) - 2.0 * c2_ * q_ / std::sqrt(x) -
         (64.0 / 5.0) * c2_ * q_ / (x * x * std::sqrt(x));
}

// -------------------------------------------------------------- factory ----

std::shared_ptr<const ThroughputFunction> make_throughput_function(const std::string& name,
                                                                   double rtt_s, double q_s,
                                                                   int b) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (key == "sqrt") return std::make_shared<SqrtFormula>(rtt_s, b);
  if (key == "pftk" || key == "pftk-standard" || key == "pftk_standard") {
    return std::make_shared<PftkStandard>(rtt_s, q_s, b);
  }
  if (key == "pftk-simplified" || key == "pftk_simplified" || key == "simplified") {
    return std::make_shared<PftkSimplified>(rtt_s, q_s, b);
  }
  throw std::invalid_argument("unknown throughput function: " + name);
}

}  // namespace ebrc::model
