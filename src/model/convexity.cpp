#include "model/convexity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ebrc::model {

ConvexityReport probe_convexity(const std::function<double(double)>& fn, double lo, double hi,
                                int n, double tol) {
  if (!(hi > lo)) throw std::invalid_argument("probe_convexity: empty interval");
  if (n < 3) throw std::invalid_argument("probe_convexity: need at least 3 points");

  const double h = (hi - lo) / static_cast<double>(n - 1);
  std::vector<double> v(static_cast<std::size_t>(n));
  double scale = 0.0;
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = fn(lo + h * static_cast<double>(i));
    scale = std::max(scale, std::abs(v[static_cast<std::size_t>(i)]));
  }
  if (scale == 0.0) scale = 1.0;

  ConvexityReport rep;
  rep.min_second_difference = std::numeric_limits<double>::infinity();
  rep.max_second_difference = -std::numeric_limits<double>::infinity();
  for (int i = 1; i + 1 < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const double d2 = (v[u - 1] - 2.0 * v[u] + v[u + 1]) / scale;
    rep.min_second_difference = std::min(rep.min_second_difference, d2);
    rep.max_second_difference = std::max(rep.max_second_difference, d2);
  }
  rep.convex = rep.min_second_difference >= -tol;
  rep.concave = rep.max_second_difference <= tol;
  rep.strictly_convex = rep.min_second_difference > tol;
  rep.strictly_concave = rep.max_second_difference < -tol;
  return rep;
}

bool is_convex_on(const std::function<double(double)>& fn, double lo, double hi, int n,
                  double tol) {
  return probe_convexity(fn, lo, hi, n, tol).convex;
}

bool is_concave_on(const std::function<double(double)>& fn, double lo, double hi, int n,
                   double tol) {
  return probe_convexity(fn, lo, hi, n, tol).concave;
}

}  // namespace ebrc::model
