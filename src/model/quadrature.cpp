#include "model/quadrature.hpp"

#include <cmath>
#include <stdexcept>

namespace ebrc::model {
namespace {

double simpson(const std::function<double(double)>& fn, double a, double fa, double m, double fm,
               double b, double fb) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& fn, double a, double fa, double m, double fm,
                double b, double fb, double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = fn(lm);
  const double frm = fn(rm);
  const double left = simpson(fn, a, fa, lm, flm, m, fm);
  const double right = simpson(fn, m, fm, rm, frm, b, fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(fn, a, fa, lm, flm, m, fm, left, 0.5 * tol, depth - 1) +
         adaptive(fn, m, fm, rm, frm, b, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& fn, double a, double b, double tol,
                 int max_depth) {
  if (a == b) return 0.0;
  if (a > b) return -integrate(fn, b, a, tol, max_depth);
  const double m = 0.5 * (a + b);
  const double fa = fn(a);
  const double fm = fn(m);
  const double fb = fn(b);
  const double whole = simpson(fn, a, fa, m, fm, b, fb);
  return adaptive(fn, a, fa, m, fm, b, fb, whole, tol, max_depth);
}

double expect_shifted_exp(const std::function<double(double)>& h, double x0, double a,
                          double tol) {
  if (x0 < 0 || a <= 0) throw std::invalid_argument("expect_shifted_exp: need x0 >= 0, a > 0");
  // u ~ U(0,1); theta = x0 - ln(1-u)/a. Avoid the logarithmic endpoint at
  // u = 1 by stopping at 1 - eps; the truncated tail mass eps carries value
  // h(x0 - ln(eps)/a) ~ eps * h(large), negligible for our integrands which
  // grow at most polynomially.
  constexpr double kEps = 1e-12;
  const auto fn = [&](double u) { return h(x0 - std::log1p(-u) / a); };
  return integrate(fn, 0.0, 1.0 - kEps, tol);
}

}  // namespace ebrc::model
