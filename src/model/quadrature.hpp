// Numeric integration used by the closed-form checks: adaptive Simpson on a
// finite interval and expectations under the paper's shifted-exponential
// loss-interval density.
#pragma once

#include <functional>

namespace ebrc::model {

/// Adaptive Simpson quadrature of fn over [a, b] to absolute tolerance tol.
[[nodiscard]] double integrate(const std::function<double(double)>& fn, double a, double b,
                               double tol = 1e-10, int max_depth = 40);

/// E[h(theta)] when theta = x0 + Exp(a) (the Section V-A.1 density
/// mu(x) = a exp(-a(x - x0)), x >= x0). Computed by the inverse-CDF
/// substitution u -> x0 - ln(1-u)/a on (0, 1).
[[nodiscard]] double expect_shifted_exp(const std::function<double(double)>& h, double x0,
                                        double a, double tol = 1e-10);

}  // namespace ebrc::model
