// Numeric convexity/concavity probes for the conditions (F1), (F2), (F2c).
#pragma once

#include <functional>

namespace ebrc::model {

struct ConvexityReport {
  bool convex = false;          // second differences all >= -tol
  bool concave = false;         // second differences all <= +tol
  bool strictly_convex = false; // second differences all > +tol
  bool strictly_concave = false;
  double min_second_difference = 0.0;  // scaled second differences extrema
  double max_second_difference = 0.0;
};

/// Probes fn on a uniform grid of n points over [lo, hi] using normalized
/// second differences fn(x-h) - 2 fn(x) + fn(x+h), scaled by max|fn| so the
/// tolerance is dimensionless.
[[nodiscard]] ConvexityReport probe_convexity(const std::function<double(double)>& fn, double lo,
                                              double hi, int n = 512, double tol = 1e-9);

/// True when fn is convex on [lo, hi] (within tolerance).
[[nodiscard]] bool is_convex_on(const std::function<double(double)>& fn, double lo, double hi,
                                int n = 512, double tol = 1e-9);

/// True when fn is concave on [lo, hi] (within tolerance).
[[nodiscard]] bool is_concave_on(const std::function<double(double)>& fn, double lo, double hi,
                                 int n = 512, double tol = 1e-9);

}  // namespace ebrc::model
