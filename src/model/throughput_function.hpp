// TCP loss-throughput formulae (Section II-C of the paper).
//
// All three functions map a loss-event rate p in (0, 1] to a send rate in
// packets per second:
//
//   SQRT            f(p) = 1 / (c1 r sqrt(p))                        (Eq. 5)
//   PFTK-standard   f(p) = 1 / (c1 r sqrt(p)
//                           + q min(1, c2 sqrt(p)) p (1 + 32 p^2))    (Eq. 6)
//   PFTK-simplified f(p) = 1 / (c1 r sqrt(p)
//                           + q c2 (p^{3/2} + 32 p^{7/2}))            (Eq. 7)
//
// with c1 = sqrt(2b/3), c2 = (3/2) sqrt(3b/2), r the mean round-trip time in
// seconds, q the TCP retransmission timeout (TFRC recommends q = 4r), and b
// the number of packets per ACK (typically 2).
//
// The analysis works with three views of the same formula:
//   rate(p)      = f(p)
//   h(x)         = f(1/x)      rate as a function of the mean loss interval
//   g(x)         = 1/f(1/x)    the functional whose convexity drives Thm. 1
#pragma once

#include <memory>
#include <optional>
#include <string>

namespace ebrc::model {

/// Coefficients of the "simplified family" denominator
///   1/f(p) = c1r sqrt(p) + c2q (p^{3/2} + 32 p^{7/2}),
/// which covers SQRT (c2q = 0) and PFTK-simplified. Proposition 3's exact
/// comprehensive-control correction V_n exists in closed form exactly for
/// this family.
struct SimplifiedCoeffs {
  double c1r;  // c1 * r
  double c2q;  // c2 * q
};

class ThroughputFunction {
 public:
  virtual ~ThroughputFunction() = default;

  /// f(p), packets/second. Requires p in (0, 1].
  [[nodiscard]] virtual double rate(double p) const = 0;

  /// Human-readable name ("SQRT", "PFTK-standard", "PFTK-simplified").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Mean round-trip time r (seconds) baked into the formula.
  [[nodiscard]] virtual double rtt() const = 0;

  /// Closed-form coefficients when the function belongs to the simplified
  /// family; nullopt for PFTK-standard (its min() term splits the form).
  [[nodiscard]] virtual std::optional<SimplifiedCoeffs> simplified_coeffs() const {
    return std::nullopt;
  }

  /// h(x) = f(1/x): send rate as a function of the mean loss-event interval.
  [[nodiscard]] double rate_from_interval(double x) const { return rate(1.0 / x); }

  /// g(x) = 1/f(1/x): the Theorem-1 functional.
  [[nodiscard]] double g(double x) const { return 1.0 / rate_from_interval(x); }

  /// df/dp by central difference (analytic overrides where available).
  [[nodiscard]] virtual double drate_dp(double p) const;

  /// Antiderivative of g evaluated at x, i.e. G(x) with G'(x) = g(x), used by
  /// the comprehensive-control exact interval duration:
  ///   time to send packets while the estimator grows from y0 to y1
  ///   equals (G(y1) - G(y0)) / w1.
  /// Returns nullopt when no closed form exists (then use the ODE path).
  [[nodiscard]] virtual std::optional<double> g_antiderivative(double x) const {
    (void)x;
    return std::nullopt;
  }
};

/// SQRT formula (Eq. 5).
class SqrtFormula final : public ThroughputFunction {
 public:
  explicit SqrtFormula(double rtt_s, int b = 2);
  [[nodiscard]] double rate(double p) const override;
  [[nodiscard]] std::string name() const override { return "SQRT"; }
  [[nodiscard]] double rtt() const override { return r_; }
  [[nodiscard]] std::optional<SimplifiedCoeffs> simplified_coeffs() const override;
  [[nodiscard]] double drate_dp(double p) const override;
  [[nodiscard]] std::optional<double> g_antiderivative(double x) const override;

 private:
  double r_;
  double c1_;
};

/// PFTK-standard formula (Eq. 6) — PFTK Eq. (30) with the min() clamp.
class PftkStandard final : public ThroughputFunction {
 public:
  /// q defaults to the TFRC recommendation 4r.
  explicit PftkStandard(double rtt_s, double q_s = -1.0, int b = 2);
  [[nodiscard]] double rate(double p) const override;
  [[nodiscard]] std::string name() const override { return "PFTK-standard"; }
  [[nodiscard]] double rtt() const override { return r_; }
  [[nodiscard]] std::optional<double> g_antiderivative(double x) const override;
  /// p above which the min() clamps to 1 (= 1/c2^2).
  [[nodiscard]] double clamp_threshold() const noexcept;

 private:
  double r_, q_, c1_, c2_;
};

/// PFTK-simplified formula (Eq. 7) — the TFRC (RFC 3448) recommendation.
class PftkSimplified final : public ThroughputFunction {
 public:
  explicit PftkSimplified(double rtt_s, double q_s = -1.0, int b = 2);
  [[nodiscard]] double rate(double p) const override;
  [[nodiscard]] std::string name() const override { return "PFTK-simplified"; }
  [[nodiscard]] double rtt() const override { return r_; }
  [[nodiscard]] std::optional<SimplifiedCoeffs> simplified_coeffs() const override;
  [[nodiscard]] double drate_dp(double p) const override;
  [[nodiscard]] std::optional<double> g_antiderivative(double x) const override;

 private:
  double r_, q_, c1_, c2_;
};

/// c1 = sqrt(2b/3).
[[nodiscard]] double pftk_c1(int b) noexcept;
/// c2 = (3/2) sqrt(3b/2).
[[nodiscard]] double pftk_c2(int b) noexcept;

/// Factory by name ("sqrt" | "pftk" | "pftk-simplified"), case-insensitive.
[[nodiscard]] std::shared_ptr<const ThroughputFunction> make_throughput_function(
    const std::string& name, double rtt_s, double q_s = -1.0, int b = 2);

}  // namespace ebrc::model
