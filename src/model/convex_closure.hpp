// Convex closure g** of a sampled function and its deviation-from-convexity
// ratio r = sup_x g(x)/g**(x) (paper Section III-B.1, Figure 2,
// Proposition 4). For PFTK-standard the paper reports r = 1.0026.
#pragma once

#include <functional>
#include <vector>

namespace ebrc::model {

struct ConvexClosure {
  /// Sample abscissae (uniform grid over [lo, hi]).
  std::vector<double> x;
  /// g sampled on the grid.
  std::vector<double> g;
  /// The convex closure g** evaluated on the grid (piecewise linear between
  /// lower-hull vertices; exact at hull vertices, the tightest convex
  /// minorant of the samples).
  std::vector<double> closure;
  /// Deviation ratio sup g/g** over the grid.
  double deviation_ratio = 1.0;
  /// Grid point where the deviation is attained.
  double argmax = 0.0;

  /// Evaluates the closure at arbitrary x within [front, back] by hull
  /// interpolation.
  [[nodiscard]] double closure_at(double xq) const;
};

/// Computes the convex closure of fn over [lo, hi] from n uniform samples
/// via the lower convex hull (Andrew's monotone chain).
[[nodiscard]] ConvexClosure convex_closure(const std::function<double(double)>& fn, double lo,
                                           double hi, int n = 4096);

}  // namespace ebrc::model
