#include "model/convex_closure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ebrc::model {
namespace {

/// Cross product (b - a) x (c - a); >= 0 means c is left of / on line ab,
/// i.e. the hull turn at b is convex.
double cross(double ax, double ay, double bx, double by, double cx, double cy) {
  return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

}  // namespace

double ConvexClosure::closure_at(double xq) const {
  if (x.empty()) throw std::logic_error("ConvexClosure: empty");
  if (xq <= x.front()) return closure.front();
  if (xq >= x.back()) return closure.back();
  // Uniform grid: direct index.
  const double step = (x.back() - x.front()) / static_cast<double>(x.size() - 1);
  auto i = static_cast<std::size_t>((xq - x.front()) / step);
  if (i + 1 >= x.size()) i = x.size() - 2;
  const double t = (xq - x[i]) / (x[i + 1] - x[i]);
  return closure[i] + t * (closure[i + 1] - closure[i]);
}

ConvexClosure convex_closure(const std::function<double(double)>& fn, double lo, double hi,
                             int n) {
  if (!(hi > lo)) throw std::invalid_argument("convex_closure: empty interval");
  if (n < 3) throw std::invalid_argument("convex_closure: need at least 3 samples");

  ConvexClosure out;
  out.x.resize(static_cast<std::size_t>(n));
  out.g.resize(static_cast<std::size_t>(n));
  const double h = (hi - lo) / static_cast<double>(n - 1);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    out.x[u] = lo + h * static_cast<double>(i);
    out.g[u] = fn(out.x[u]);
  }

  // Lower convex hull over the samples (x sorted already).
  std::vector<std::size_t> hull;
  for (std::size_t i = 0; i < out.x.size(); ++i) {
    while (hull.size() >= 2) {
      const std::size_t a = hull[hull.size() - 2];
      const std::size_t b = hull[hull.size() - 1];
      // Keep b only if it lies strictly below the chord a->i.
      if (cross(out.x[a], out.g[a], out.x[b], out.g[b], out.x[i], out.g[i]) <= 0.0) {
        hull.pop_back();
      } else {
        break;
      }
    }
    hull.push_back(i);
  }

  // Piecewise-linear interpolation of the hull back onto the grid.
  out.closure.resize(out.x.size());
  std::size_t seg = 0;
  for (std::size_t i = 0; i < out.x.size(); ++i) {
    while (seg + 1 < hull.size() && out.x[hull[seg + 1]] < out.x[i]) ++seg;
    const std::size_t a = hull[seg];
    const std::size_t b = hull[std::min(seg + 1, hull.size() - 1)];
    if (a == b || out.x[b] == out.x[a]) {
      out.closure[i] = out.g[a];
    } else {
      const double t = (out.x[i] - out.x[a]) / (out.x[b] - out.x[a]);
      out.closure[i] = out.g[a] + t * (out.g[b] - out.g[a]);
    }
  }

  out.deviation_ratio = 1.0;
  out.argmax = out.x.front();
  for (std::size_t i = 0; i < out.x.size(); ++i) {
    if (out.closure[i] > 0.0) {
      const double ratio = out.g[i] / out.closure[i];
      if (ratio > out.deviation_ratio) {
        out.deviation_ratio = ratio;
        out.argmax = out.x[i];
      }
    }
  }
  return out;
}

}  // namespace ebrc::model
