// Claim 4 (Section IV-A.2): deterministic analysis of one sender on a link
// of fixed capacity c, RTT fixed to 1 — AIMD versus equation-based control.
//
// AIMD(alpha, beta): rate grows by alpha per RTT; on hitting capacity the
// rate is cut to beta * rate. Its loss-throughput function is
//   f(p) = sqrt(alpha (1+beta) / (2 (1-beta))) / sqrt(p),
// its deterministic loss-event rate on the link is
//   p' = 2 alpha / ((1 - beta^2) c^2).
// The equation-based sender using the same f converges to the fixed point
// with loss-event rate
//   p  = alpha (1+beta) / (2 (1-beta) c^2),
// whence p'/p = 4 / (1+beta)^2 (= 16/9 ~ 1.78 for beta = 1/2).
//
// NOTE (erratum): the technical report prints p'/p = 4/(1-beta)^2, which
// contradicts its own p', p and its numeric value 16/9 at beta = 1/2; the
// quotient of the printed rates is 4/(1+beta)^2, which we implement (and
// verify against the closed forms in tests).
#pragma once

namespace ebrc::model {

struct AimdParams {
  double alpha = 1.0;  // additive increase, packets/RTT per RTT
  double beta = 0.5;   // multiplicative decrease factor in (0,1)
};

/// sqrt(alpha (1+beta) / (2 (1-beta))), the constant in the AIMD
/// loss-throughput law f(p) = k / sqrt(p) (RTT = 1).
[[nodiscard]] double aimd_sqrt_constant(const AimdParams& a);

/// f(p) for the AIMD law above (packets per RTT; RTT = 1 s).
[[nodiscard]] double aimd_rate(const AimdParams& a, double p);

/// Deterministic loss-event rate of AIMD alone on capacity c:
/// p' = 2 alpha / ((1 - beta^2) c^2).
[[nodiscard]] double aimd_loss_event_rate(const AimdParams& a, double capacity);

/// Time-average rate of the deterministic AIMD sawtooth: (1+beta) c / 2.
[[nodiscard]] double aimd_time_average_rate(const AimdParams& a, double capacity);

/// Loss-event rate of the equation-based sender (comprehensive control with
/// the AIMD f) at its fixed point on capacity c:
/// p = alpha (1+beta) / (2 (1-beta) c^2).
[[nodiscard]] double ebrc_fixed_point_loss_rate(const AimdParams& a, double capacity);

/// The headline ratio p'/p = 4/(1+beta)^2.
[[nodiscard]] double claim4_ratio(const AimdParams& a);

/// Deterministic fluid simulation of the AIMD sawtooth on a unit-RTT link:
/// returns measured (loss_event_rate, time_average_rate) over n_cycles
/// congestion epochs, cross-checking the closed forms.
struct FluidAimdResult {
  double loss_event_rate;
  double time_average_rate;
  double cycle_length_rtts;
};
[[nodiscard]] FluidAimdResult simulate_fluid_aimd(const AimdParams& a, double capacity,
                                                  int n_cycles = 64);

}  // namespace ebrc::model
