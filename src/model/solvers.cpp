#include "model/solvers.hpp"

#include <cmath>
#include <stdexcept>

namespace ebrc::model {

double bisect(const std::function<double(double)>& fn, double lo, double hi, double xtol,
              int max_iter) {
  double flo = fn(lo);
  double fhi = fn(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0) == (fhi > 0)) {
    throw std::invalid_argument("bisect: no sign change over the bracket");
  }
  for (int i = 0; i < max_iter && hi - lo > xtol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = fn(mid);
    if (fmid == 0.0) return mid;
    if ((fmid > 0) == (flo > 0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double fixed_point(const std::function<double(double)>& fn, double x0, double damping, double tol,
                   int max_iter) {
  double x = x0;
  for (int i = 0; i < max_iter; ++i) {
    const double fx = fn(x);
    if (!std::isfinite(fx)) throw std::runtime_error("fixed_point: iterate diverged");
    if (std::abs(fx - x) <= tol * std::max(1.0, std::abs(x))) return fx;
    x = (1.0 - damping) * x + damping * fx;
  }
  throw std::runtime_error("fixed_point: no convergence");
}

}  // namespace ebrc::model
