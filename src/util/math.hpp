// Small math helpers shared across the library.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ebrc::util {

/// Square of a value; clearer than std::pow(x, 2) and avoids libm.
template <typename T>
constexpr T sq(T x) noexcept {
  return x * x;
}

/// Cube of a value.
template <typename T>
constexpr T cube(T x) noexcept {
  return x * x * x;
}

/// True when |a - b| <= tol * max(1, |a|, |b|) (mixed absolute/relative).
inline bool close(double a, double b, double tol = 1e-9) noexcept {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tol * scale;
}

/// Clamp helper that tolerates an inverted range in debug builds.
inline double clamp(double x, double lo, double hi) noexcept {
  assert(lo <= hi);
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Linear interpolation between a and b.
constexpr double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// Positive infinity shorthand.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Quiet NaN shorthand.
inline constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace ebrc::util
