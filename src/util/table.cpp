#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace ebrc::util {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  row(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::cout << caption << '\n';
  std::cout << str() << std::flush;
}

}  // namespace ebrc::util
