// Minimal command-line flag parser used by the bench and example binaries.
//
// Supports `--flag`, `--flag=value` and `--flag value` forms. Unknown flags
// raise an error so typos in experiment scripts do not silently run the
// default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ebrc::util {

class Cli {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  /// True when `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name` or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] int get(const std::string& name, int fallback) const;
  /// Full-width unsigned parse (seeds are 64-bit; the int overload would
  /// truncate or throw on values past 2^31).
  [[nodiscard]] std::uint64_t get(const std::string& name, std::uint64_t fallback) const;
  [[nodiscard]] bool get(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  /// Declares a flag as known; returns *this for chaining. Calling
  /// `finish()` afterwards rejects any flag never declared.
  Cli& know(const std::string& name);

  /// Throws std::invalid_argument if an undeclared flag was passed.
  void finish() const;

 private:
  std::string program_;
  std::map<std::string, std::optional<std::string>> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> known_;
};

/// Parses a comma-separated list of strictly positive 64-bit integers, e.g.
/// "100,300,1e6". Each token is parsed whole (no trailing junk); integral
/// scientific notation is accepted so big pool sizes don't need six zeros.
/// Throws std::invalid_argument naming the flag and the offending token.
[[nodiscard]] std::vector<std::int64_t> parse_positive_int_list(const std::string& flag_name,
                                                                const std::string& csv);

}  // namespace ebrc::util
