#include "util/json_escape.hpp"

#include <cstdio>

namespace ebrc::util {

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  json_escape_into(out, s);
  return out;
}

}  // namespace ebrc::util
