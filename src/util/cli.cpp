#include "util/cli.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace ebrc::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg.empty()) throw std::invalid_argument("bare '--' is not a valid flag");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--flag value` form: consume the next token only when it parses as a
    // number — otherwise `--verbose input.txt` would swallow the positional.
    const auto is_number = [](const std::string& s) {
      if (s.empty()) return false;
      char* end = nullptr;
      (void)std::strtod(s.c_str(), &end);
      return end == s.c_str() + s.size();
    };
    if (i + 1 < argc && is_number(argv[i + 1])) {
      flags_[arg] = std::string(argv[++i]);
    } else {
      flags_[arg] = std::nullopt;
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || !it->second) return fallback;
  return *it->second;
}

double Cli::get(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || !it->second) return fallback;
  const std::string& v = *it->second;
  // Whole-token parse: std::stod would silently read "10s" as 10.
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + v + "'");
  }
}

int Cli::get(const std::string& name, int fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || !it->second) return fallback;
  const std::string& v = *it->second;
  // Whole-token parse: std::stoi would silently read "1e2" as 1.
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing characters");
    if (parsed < std::numeric_limits<int>::min() ||
        parsed > std::numeric_limits<int>::max()) {
      throw std::out_of_range("out of int range");
    }
    return static_cast<int>(parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + v + "'");
  }
}

std::uint64_t Cli::get(const std::string& name, std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || !it->second) return fallback;
  const std::string& v = *it->second;
  try {
    if (!v.empty() && v[0] == '-') throw std::invalid_argument("negative");
    std::size_t pos = 0;
    const unsigned long long parsed = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing characters");
    return static_cast<std::uint64_t>(parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an unsigned 64-bit integer, got '" +
                                v + "'");
  }
}

bool Cli::get(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (!it->second) return true;  // bare `--flag` means true
  const std::string& v = *it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + v + "'");
}

std::vector<std::int64_t> parse_positive_int_list(const std::string& flag_name,
                                                  const std::string& csv) {
  const auto bad = [&flag_name](const std::string& tok) {
    return std::invalid_argument("flag --" + flag_name +
                                 " expects a comma-separated list of positive integers, got '" +
                                 tok + "'");
  };
  std::vector<std::int64_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string tok =
        csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? csv.size() + 1 : comma + 1;
    if (tok.empty()) throw bad(tok);
    std::int64_t value = 0;
    try {
      std::size_t pos = 0;
      value = std::stoll(tok, &pos);
      if (pos != tok.size()) {
        // Not a plain integer token; accept integral scientific notation
        // ("1e6") via a whole-token double parse that must round-trip.
        pos = 0;
        const double d = std::stod(tok, &pos);
        if (pos != tok.size()) throw std::invalid_argument("trailing characters");
        if (!(d >= 1.0 && d <= 9.2e18) || d != std::floor(d)) {
          throw std::invalid_argument("not a positive integer");
        }
        value = static_cast<std::int64_t>(d);
      }
    } catch (const std::exception&) {
      throw bad(tok);
    }
    if (value <= 0) throw bad(tok);
    out.push_back(value);
  }
  return out;
}

Cli& Cli::know(const std::string& name) {
  known_.push_back(name);
  return *this;
}

void Cli::finish() const {
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (std::find(known_.begin(), known_.end(), name) == known_.end()) {
      std::string msg = "unknown flag --" + name;
      if (!known_.empty()) {
        msg += " (known flags:";
        for (const auto& k : known_) msg += " --" + k;
        msg += ")";
      }
      throw std::invalid_argument(msg);
    }
  }
}

}  // namespace ebrc::util
