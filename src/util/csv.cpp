#include "util/csv.hpp"

#include <iomanip>
#include <limits>
#include <stdexcept>

namespace ebrc::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != arity_) throw std::invalid_argument("CsvWriter: row arity mismatch");
  out_ << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::raw_row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_) throw std::invalid_argument("CsvWriter: row arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace ebrc::util
