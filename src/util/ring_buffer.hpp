// A power-of-two ring buffer for the packet path's POD payloads.
//
// The network layer keeps every queued, in-service, and in-flight packet in
// one of these instead of a std::deque: contiguous storage, index-mask
// addressing, and no per-node allocation. Capacity is fixed up front from
// the queue's buffer size (round_up_pow2), so the steady state performs zero
// heap allocations; only a workload whose in-flight population outgrows the
// initial hint pays a one-time geometric regrowth.
#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace ebrc::util {

/// Smallest power of two >= n (and >= 2).
[[nodiscard]] constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

template <typename T>
class RingBuffer {
  static_assert(std::is_nothrow_move_constructible_v<T> || std::is_copy_assignable_v<T>,
                "RingBuffer payloads must relocate cheaply");

 public:
  /// `capacity_hint` pre-sizes the ring (rounded up to a power of two);
  /// 0 defers allocation to the first push.
  explicit RingBuffer(std::size_t capacity_hint = 0) {
    if (capacity_hint > 0) reallocate(round_up_pow2(capacity_hint));
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  void push_back(const T& v) {
    if (count_ == buf_.size()) reallocate(buf_.empty() ? kMinCapacity : buf_.size() * 2);
    buf_[(head_ + count_) & mask_] = v;
    ++count_;
  }

  [[nodiscard]] T& front() noexcept {
    assert(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const noexcept {
    assert(count_ > 0);
    return buf_[head_];
  }

  /// Element `i` positions behind the front (0 = front). i < size().
  [[nodiscard]] T& at_offset(std::size_t i) noexcept {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] const T& at_offset(std::size_t i) const noexcept {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  void pop_front() noexcept {
    assert(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void reallocate(std::size_t new_capacity) {
    std::vector<T> next(new_capacity);
    for (std::size_t i = 0; i < count_; ++i) next[i] = buf_[(head_ + i) & mask_];
    buf_ = std::move(next);
    head_ = 0;
    mask_ = buf_.size() - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ebrc::util
