// Aligned console tables: the bench binaries print paper figures as tables.
#pragma once

#include <string>
#include <vector>

namespace ebrc::util {

/// Collects rows of cells and prints them with column alignment, in the
/// style the paper's tables/figure series are reported.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row of preformatted cells (arity must match header).
  void row(std::vector<std::string> cells);

  /// Appends a row of doubles formatted with `precision` significant digits.
  void row(const std::vector<double>& values, int precision = 5);

  /// Renders the table (header, rule, rows) to a string.
  [[nodiscard]] std::string str() const;

  /// Prints to stdout with an optional caption line.
  void print(const std::string& caption = "") const;

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant digits (%.{p}g).
[[nodiscard]] std::string fmt(double v, int precision = 5);

}  // namespace ebrc::util
