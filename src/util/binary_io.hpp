// Little-endian byte codec and FNV-1a hashing shared by the sweep
// persistence layer (scenario fingerprints, cached ExperimentResult files).
//
// The writer appends fixed-width words into a std::string buffer; the reader
// walks a string_view and never throws — an overrun or short buffer flips a
// sticky ok() flag and every subsequent read returns zero, so callers
// validate once at the end (corrupt cache files must fall back to
// re-simulation, not crash). Doubles travel as their IEEE bit patterns, which
// is what makes cache hits bit-identical to fresh runs.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ebrc::util {

class ByteWriter {
 public:
  void u64(std::uint64_t v) {
    char raw[8];
    for (int i = 0; i < 8; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    buf_.append(raw, 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) noexcept : p_(bytes.data()), end_(p_ + bytes.size()) {}

  std::uint64_t u64() noexcept {
    if (end_ - p_ < 8) {
      ok_ = false;
      p_ = end_;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i])) << (8 * i);
    }
    p_ += 8;
    return v;
  }
  std::int64_t i64() noexcept { return static_cast<std::int64_t>(u64()); }
  double f64() noexcept { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    if (!ok_ || static_cast<std::uint64_t>(end_ - p_) < n) {
      ok_ = false;
      p_ = end_;
      return {};
    }
    std::string s(p_, n);
    p_ += n;
    return s;
  }

  /// False once any read ran past the end of the buffer.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True when every byte has been consumed (trailing garbage = corruption).
  [[nodiscard]] bool exhausted() const noexcept { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

/// Incremental FNV-1a over heterogeneous fields. Scalars are folded as their
/// fixed-width byte patterns, strings length-prefixed (so {"ab","c"} and
/// {"a","bc"} hash differently).
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, 8); }
  void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) noexcept {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
};

}  // namespace ebrc::util
