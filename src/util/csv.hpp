// CSV writer used by the bench harness to dump figure series.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace ebrc::util {

/// Writes rows of doubles/strings to a CSV file. Values are written with
/// enough precision to round-trip (max_digits10).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error when the file cannot be created.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; must have the same arity as the header.
  void row(const std::vector<double>& values);

  /// Appends a mixed row of preformatted cells.
  void raw_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

}  // namespace ebrc::util
