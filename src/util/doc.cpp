#include "util/doc.hpp"

#include <charconv>
#include <stdexcept>

namespace ebrc::util {

namespace {

[[noreturn]] void fail(const std::string& format, std::size_t line, const std::string& what) {
  throw std::invalid_argument(format + " parse error at line " + std::to_string(line) + ": " +
                              what);
}

[[nodiscard]] bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v';
}

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

[[nodiscard]] bool valid_bare_key(std::string_view key) noexcept {
  if (key.empty()) return false;
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

/// Classifies and parses an unquoted scalar token (shared by both formats).
[[nodiscard]] DocValue parse_scalar(std::string_view token, const char* format,
                                    std::size_t line) {
  if (token == "true") return DocValue(true);
  if (token == "false") return DocValue(false);
  if (token.empty()) fail(format, line, "empty value");

  const bool floaty = token.find_first_of(".eE") != std::string_view::npos ||
                      token.find("inf") != std::string_view::npos ||
                      token.find("nan") != std::string_view::npos;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  if (floaty) {
    double d = 0.0;
    const auto r = std::from_chars(first, last, d);
    if (r.ec != std::errc{} || r.ptr != last) {
      fail(format, line, "malformed float '" + std::string(token) + "'");
    }
    return DocValue(d);
  }
  if (token.front() == '-') {
    std::int64_t i = 0;
    const auto r = std::from_chars(first, last, i);
    if (r.ec != std::errc{} || r.ptr != last) {
      fail(format, line, "malformed integer '" + std::string(token) + "'");
    }
    return DocValue(i);
  }
  std::uint64_t u = 0;
  const auto r = std::from_chars(first, last, u);
  if (r.ec != std::errc{} || r.ptr != last) {
    fail(format, line, "malformed integer '" + std::string(token) + "'");
  }
  return DocValue(u);
}

/// Decodes a quoted string starting at s[i] == '"'. Returns the decoded
/// string; i is left one past the closing quote.
[[nodiscard]] std::string parse_quoted(std::string_view s, std::size_t& i, const char* format,
                                       std::size_t line) {
  std::string out;
  ++i;  // opening quote
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return out;
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) fail(format, line, "dangling escape");
      const char e = s[++i];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // \uXXXX (BMP, no surrogate pairs — the escapers here only emit
          // \u00XX for control characters), decoded to UTF-8.
          if (i + 4 >= s.size()) fail(format, line, "truncated \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[++i];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail(format, line, "malformed \\u escape");
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            fail(format, line, "surrogate \\u escape unsupported");
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail(format, line, std::string("unknown escape \\") + e);
      }
      continue;
    }
    out += c;
  }
  fail(format, line, "unterminated string");
}

void check_duplicate(const DocTable& table, std::string_view key, const char* format,
                     std::size_t line) {
  if (doc_find(table, key) != nullptr) {
    fail(format, line, "duplicate key '" + std::string(key) + "'");
  }
}

void emit_scalar(std::string& out, const DocValue& v) {
  if (const bool* b = v.if_bool()) {
    out += *b ? "true" : "false";
  } else if (const std::uint64_t* u = v.if_u64()) {
    out += std::to_string(*u);
  } else if (const std::int64_t* i = v.if_i64()) {
    out += std::to_string(*i);
  } else if (const double* d = v.if_double()) {
    out += format_double(*d);
  } else if (const std::string* s = v.if_string()) {
    append_escaped(out, *s);
  }
}

void json_emit(std::string& out, const DocTable& table, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
  out += "{";
  bool first = true;
  for (const auto& [key, value] : table) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad;
    append_escaped(out, key);
    out += ": ";
    if (const DocTable* sub = value.if_table()) {
      json_emit(out, *sub, indent + 2);
    } else {
      emit_scalar(out, value);
    }
  }
  out += '\n';
  out.append(static_cast<std::size_t>(indent), ' ');
  out += '}';
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  [[nodiscard]] DocTable parse() {
    skip_ws();
    DocTable root = parse_object();
    skip_ws();
    if (i_ != s_.size()) fail("json", line(), "trailing characters after document");
    return root;
  }

 private:
  [[nodiscard]] std::size_t line() const noexcept {
    std::size_t n = 1;
    for (std::size_t j = 0; j < i_ && j < s_.size(); ++j) {
      if (s_[j] == '\n') ++n;
    }
    return n;
  }

  void skip_ws() noexcept {
    while (i_ < s_.size() && (is_space(s_[i_]) || s_[i_] == '\n')) ++i_;
  }

  void expect(char c) {
    if (i_ >= s_.size() || s_[i_] != c) {
      fail("json", line(), std::string("expected '") + c + "'");
    }
    ++i_;
  }

  [[nodiscard]] DocTable parse_object() {
    expect('{');
    DocTable table;
    skip_ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return table;
    }
    for (;;) {
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != '"') fail("json", line(), "expected string key");
      std::string key = parse_quoted(s_, i_, "json", line());
      check_duplicate(table, key, "json", line());
      skip_ws();
      expect(':');
      skip_ws();
      table.push_back({std::move(key), parse_value()});
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return table;
    }
  }

  [[nodiscard]] DocValue parse_value() {
    if (i_ >= s_.size()) fail("json", line(), "unexpected end of input");
    const char c = s_[i_];
    if (c == '{') return DocValue(parse_object());
    if (c == '"') return DocValue(parse_quoted(s_, i_, "json", line()));
    // Bare token: runs to the next delimiter.
    const std::size_t start = i_;
    while (i_ < s_.size() && s_[i_] != ',' && s_[i_] != '}' && !is_space(s_[i_]) &&
           s_[i_] != '\n') {
      ++i_;
    }
    return parse_scalar(s_.substr(start, i_ - start), "json", line());
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace

const char* DocValue::type_name() const noexcept {
  switch (v_.index()) {
    case 0: return "bool";
    case 1:
    case 2: return "integer";
    case 3: return "float";
    case 4: return "string";
    default: return "table";
  }
}

bool operator==(const DocValue& a, const DocValue& b) { return a.v_ == b.v_; }

const DocValue* doc_find(const DocTable& table, std::string_view key) {
  for (const auto& entry : table) {
    if (entry.key == key) return &entry.value;
  }
  return nullptr;
}

std::string format_double(double v) {
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  std::string s(buf, r.ptr);
  // "15000000" would read back as an integer token; keep floats float-shaped.
  if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
  return s;
}

std::string to_toml(const DocTable& root) {
  std::string out;
  for (const auto& [key, value] : root) {
    if (value.if_table() != nullptr) continue;
    out += key;
    out += " = ";
    emit_scalar(out, value);
    out += '\n';
  }
  for (const auto& [key, value] : root) {
    const DocTable* sub = value.if_table();
    if (sub == nullptr) continue;
    out += "\n[" + key + "]\n";
    for (const auto& [skey, svalue] : *sub) {
      if (svalue.if_table() != nullptr) {
        throw std::invalid_argument("to_toml: nested table '" + key + "." + skey +
                                    "' not supported (flat schema)");
      }
      out += skey;
      out += " = ";
      emit_scalar(out, svalue);
      out += '\n';
    }
  }
  return out;
}

DocTable parse_toml(std::string_view text) {
  DocTable root;
  // Sections are collected separately and appended after the scalars so a
  // pointer into `root` never dangles across push_backs.
  std::vector<std::pair<std::string, DocTable>> sections;
  std::ptrdiff_t current = -1;  // -1 = top level, else index into sections

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view raw = text.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    std::string_view sv = trim(raw);
    if (sv.empty() || sv.front() == '#') continue;

    if (sv.front() == '[') {
      const std::size_t close = sv.find(']');
      if (close == std::string_view::npos) fail("toml", line_no, "missing ']'");
      const std::string_view rest = trim(sv.substr(close + 1));
      if (!rest.empty() && rest.front() != '#') fail("toml", line_no, "text after ']'");
      std::string name(trim(sv.substr(1, close - 1)));
      if (!valid_bare_key(name)) fail("toml", line_no, "bad table name '" + name + "'");
      if (doc_find(root, name) != nullptr) fail("toml", line_no, "duplicate key '" + name + "'");
      for (const auto& s : sections) {
        if (s.first == name) fail("toml", line_no, "duplicate table '" + name + "'");
      }
      sections.emplace_back(std::move(name), DocTable{});
      current = static_cast<std::ptrdiff_t>(sections.size()) - 1;
      continue;
    }

    const std::size_t eq = sv.find('=');
    if (eq == std::string_view::npos) fail("toml", line_no, "expected 'key = value'");
    std::string key(trim(sv.substr(0, eq)));
    if (!valid_bare_key(key)) fail("toml", line_no, "bad key '" + key + "'");

    std::string_view val = trim(sv.substr(eq + 1));
    DocValue parsed;
    if (!val.empty() && val.front() == '"') {
      std::size_t i = 0;
      parsed = DocValue(parse_quoted(val, i, "toml", line_no));
      const std::string_view rest = trim(val.substr(i));
      if (!rest.empty() && rest.front() != '#') fail("toml", line_no, "text after string value");
    } else {
      const std::size_t hash = val.find('#');
      if (hash != std::string_view::npos) val = trim(val.substr(0, hash));
      parsed = parse_scalar(val, "toml", line_no);
    }

    DocTable& target =
        current < 0 ? root : sections[static_cast<std::size_t>(current)].second;
    check_duplicate(target, key, "toml", line_no);
    target.push_back({std::move(key), std::move(parsed)});
  }

  for (auto& [name, table] : sections) {
    root.push_back({std::move(name), DocValue(std::move(table))});
  }
  return root;
}

std::string to_json(const DocTable& root) {
  std::string out;
  json_emit(out, root, 0);
  out += '\n';
  return out;
}

DocTable parse_json(std::string_view text) { return JsonParser(text).parse(); }

}  // namespace ebrc::util
