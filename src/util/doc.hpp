// A tiny ordered key-value document tree with TOML and JSON text forms —
// the carrier for file-defined scenarios (testbed/scenario_io). No external
// dependency: both formats are implemented here as the subset the scenario
// files need (scalars and one level of named tables for TOML; arbitrary
// nesting for JSON), with shortest-round-trip number formatting via
// std::to_chars so every double survives text I/O bit-for-bit.
//
// Integers keep their signedness: unsigned values (seeds use the full 64-bit
// range) are stored as std::uint64_t, negative ones as std::int64_t, and the
// consumer coerces to the field's type. Infinities and NaN are emitted as
// inf/nan tokens — valid in our own parsers (a deliberate JSON superset),
// never produced by sane scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ebrc::util {

class DocValue;

struct DocEntry;
/// Insertion-ordered table: emitted files list keys in the order the
/// producer wrote them, so serialized scenarios are stable and diffable.
using DocTable = std::vector<DocEntry>;

class DocValue {
 public:
  using Variant =
      std::variant<bool, std::uint64_t, std::int64_t, double, std::string, DocTable>;

  DocValue() : v_(false) {}
  DocValue(bool b) : v_(b) {}
  DocValue(std::uint64_t u) : v_(u) {}
  DocValue(std::int64_t i) : v_(i) {}
  DocValue(double d) : v_(d) {}
  DocValue(std::string s) : v_(std::move(s)) {}
  DocValue(const char* s) : v_(std::string(s)) {}
  DocValue(DocTable t) : v_(std::move(t)) {}

  [[nodiscard]] const bool* if_bool() const noexcept { return std::get_if<bool>(&v_); }
  [[nodiscard]] const std::uint64_t* if_u64() const noexcept {
    return std::get_if<std::uint64_t>(&v_);
  }
  [[nodiscard]] const std::int64_t* if_i64() const noexcept {
    return std::get_if<std::int64_t>(&v_);
  }
  [[nodiscard]] const double* if_double() const noexcept { return std::get_if<double>(&v_); }
  [[nodiscard]] const std::string* if_string() const noexcept {
    return std::get_if<std::string>(&v_);
  }
  [[nodiscard]] const DocTable* if_table() const noexcept { return std::get_if<DocTable>(&v_); }

  /// "bool" | "integer" | "float" | "string" | "table", for error messages.
  [[nodiscard]] const char* type_name() const noexcept;

  [[nodiscard]] const Variant& raw() const noexcept { return v_; }

  friend bool operator==(const DocValue& a, const DocValue& b);

 private:
  Variant v_;
};

struct DocEntry {
  std::string key;
  DocValue value;

  friend bool operator==(const DocEntry& a, const DocEntry& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// First entry with `key`, or nullptr.
[[nodiscard]] const DocValue* doc_find(const DocTable& table, std::string_view key);

/// Shortest text that round-trips the double exactly (std::to_chars);
/// integral values gain a ".0" suffix so they read back as floats.
[[nodiscard]] std::string format_double(double v);

// ---- TOML subset -------------------------------------------------------------
// Top-level scalars first, then one [section] per table-valued entry (deeper
// nesting throws std::invalid_argument — the scenario schema is flat).
// Parsing accepts comments (#), blank lines, quoted strings with
// \" \\ \n \t \r escapes, booleans, signed/unsigned integers, and floats
// (including inf/nan). Duplicate keys and malformed lines throw
// std::invalid_argument with the line number.
[[nodiscard]] std::string to_toml(const DocTable& root);
[[nodiscard]] DocTable parse_toml(std::string_view text);

// ---- JSON --------------------------------------------------------------------
// One object, arbitrarily nested; pretty-printed with 2-space indent.
// The parser accepts the superset with bare inf/nan number tokens.
[[nodiscard]] std::string to_json(const DocTable& root);
[[nodiscard]] DocTable parse_json(std::string_view text);

}  // namespace ebrc::util
