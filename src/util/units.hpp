// Typed quantities for rate-controller code: DataRate, TimeDelta, Timestamp.
//
// The controller zoo (delay_aimd/, rcp/) mixes three kinds of scalar —
// sending rates, durations, and absolute simulated instants — whose raw
// `double` representations are mutually assignable, which is exactly the
// int-truncating-seed class of bug the ROADMAP calls out. These wrappers are
// zero-cost (one double, fully constexpr, trivially copyable) but make the
// unit part of the type: a DataRate cannot be added to a TimeDelta, a
// Timestamp minus a Timestamp is a TimeDelta, and every boundary to the raw
// simulator/packet world is an explicit accessor call.
//
// Conventions: rates are carried in packets/second (the simulator's native
// pacing unit; bits/second converts through the packet size at the edge),
// times in seconds since simulation start.
#pragma once

#include <type_traits>

namespace ebrc::util {

/// A duration. Construct via seconds()/millis(); read via seconds().
class TimeDelta {
 public:
  constexpr TimeDelta() = default;
  [[nodiscard]] static constexpr TimeDelta seconds(double s) noexcept { return TimeDelta(s); }
  [[nodiscard]] static constexpr TimeDelta millis(double ms) noexcept {
    return TimeDelta(ms / 1e3);
  }
  [[nodiscard]] static constexpr TimeDelta zero() noexcept { return TimeDelta(0.0); }

  [[nodiscard]] constexpr double seconds() const noexcept { return s_; }
  [[nodiscard]] constexpr double millis() const noexcept { return s_ * 1e3; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return s_ == 0.0; }

  constexpr TimeDelta operator+(TimeDelta o) const noexcept { return TimeDelta(s_ + o.s_); }
  constexpr TimeDelta operator-(TimeDelta o) const noexcept { return TimeDelta(s_ - o.s_); }
  constexpr TimeDelta operator*(double k) const noexcept { return TimeDelta(s_ * k); }
  constexpr double operator/(TimeDelta o) const noexcept { return s_ / o.s_; }
  constexpr auto operator<=>(const TimeDelta&) const = default;

 private:
  constexpr explicit TimeDelta(double s) noexcept : s_(s) {}
  double s_ = 0.0;
};

/// An absolute simulated instant (seconds since simulation start).
class Timestamp {
 public:
  constexpr Timestamp() = default;
  [[nodiscard]] static constexpr Timestamp seconds(double s) noexcept { return Timestamp(s); }
  [[nodiscard]] static constexpr Timestamp zero() noexcept { return Timestamp(0.0); }

  [[nodiscard]] constexpr double seconds() const noexcept { return s_; }

  constexpr Timestamp operator+(TimeDelta d) const noexcept {
    return Timestamp(s_ + d.seconds());
  }
  constexpr Timestamp operator-(TimeDelta d) const noexcept {
    return Timestamp(s_ - d.seconds());
  }
  constexpr TimeDelta operator-(Timestamp o) const noexcept {
    return TimeDelta::seconds(s_ - o.s_);
  }
  constexpr auto operator<=>(const Timestamp&) const = default;

 private:
  constexpr explicit Timestamp(double s) noexcept : s_(s) {}
  double s_ = 0.0;
};

/// A sending rate in packets/second. bits/second converts at the edge
/// through the packet size, where the byte count is actually known.
class DataRate {
 public:
  constexpr DataRate() = default;
  [[nodiscard]] static constexpr DataRate packets_per_second(double pps) noexcept {
    return DataRate(pps);
  }
  [[nodiscard]] static constexpr DataRate bits_per_second(double bps,
                                                          double packet_bytes) noexcept {
    return DataRate(bps / (8.0 * packet_bytes));
  }
  [[nodiscard]] static constexpr DataRate zero() noexcept { return DataRate(0.0); }

  [[nodiscard]] constexpr double pps() const noexcept { return pps_; }
  [[nodiscard]] constexpr double bps(double packet_bytes) const noexcept {
    return pps_ * 8.0 * packet_bytes;
  }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return pps_ == 0.0; }

  /// Packets emitted over a duration (rate × time — the only rate/time
  /// product with a meaning).
  [[nodiscard]] constexpr double packets_over(TimeDelta d) const noexcept {
    return pps_ * d.seconds();
  }
  /// Pacing gap between back-to-back packets at this rate.
  [[nodiscard]] constexpr TimeDelta packet_interval() const noexcept {
    return TimeDelta::seconds(1.0 / pps_);
  }

  constexpr DataRate operator+(DataRate o) const noexcept { return DataRate(pps_ + o.pps_); }
  constexpr DataRate operator-(DataRate o) const noexcept { return DataRate(pps_ - o.pps_); }
  constexpr DataRate operator*(double k) const noexcept { return DataRate(pps_ * k); }
  constexpr double operator/(DataRate o) const noexcept { return pps_ / o.pps_; }
  constexpr auto operator<=>(const DataRate&) const = default;

 private:
  constexpr explicit DataRate(double pps) noexcept : pps_(pps) {}
  double pps_ = 0.0;
};

constexpr DataRate operator*(double k, DataRate r) noexcept { return r * k; }
constexpr TimeDelta operator*(double k, TimeDelta d) noexcept { return d * k; }

[[nodiscard]] constexpr DataRate min(DataRate a, DataRate b) noexcept { return a < b ? a : b; }
[[nodiscard]] constexpr DataRate max(DataRate a, DataRate b) noexcept { return a < b ? b : a; }
[[nodiscard]] constexpr TimeDelta min(TimeDelta a, TimeDelta b) noexcept {
  return a < b ? a : b;
}
[[nodiscard]] constexpr TimeDelta max(TimeDelta a, TimeDelta b) noexcept {
  return a < b ? b : a;
}

static_assert(std::is_trivially_copyable_v<TimeDelta>);
static_assert(std::is_trivially_copyable_v<Timestamp>);
static_assert(std::is_trivially_copyable_v<DataRate>);
static_assert(sizeof(TimeDelta) == 8 && sizeof(Timestamp) == 8 && sizeof(DataRate) == 8,
              "typed units must stay zero-cost wrappers over one double");

}  // namespace ebrc::util
