// JSON string escaping shared by every JSON producer in the repo (the sweep
// event feed, the chrome://tracing writer, the bench JSON emitters).
//
// Escapes the two mandatory characters (quote, backslash), the common
// control characters by their short forms (\n \r \t), and every other byte
// below 0x20 as \u00XX — so a scenario name containing a newline or a stray
// control byte can never shear a JSONL feed line or corrupt a trace file.
// Bytes >= 0x20 pass through untouched (UTF-8 sequences survive verbatim).
#pragma once

#include <string>
#include <string_view>

namespace ebrc::util {

/// Appends the escaped form of `s` to `out` (no surrounding quotes).
void json_escape_into(std::string& out, std::string_view s);

/// Convenience form returning the escaped copy.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ebrc::util
