// Packet-level TFRC: a rate-paced sender driven by receiver feedback.
//
// Receiver: detects losses from sequence gaps, maintains the RFC 3448 loss
// history (LossHistory), measures the receive rate, and sends one feedback
// packet per RTT carrying (hat-theta, receive rate, echo timestamp).
//
// Sender: before the first loss event it slow-starts (rate doubles each
// feedback, capped at twice the receive rate); afterwards it applies the
// equation X = f(p, r) with p = 1/hat-theta from feedback and r the smoothed
// measured RTT, optionally capped at twice the receive rate (the TFRC
// standard behavior; can be disabled to study the pure control).
//
// The formulas are used with the TFRC recommendation q = 4r, under which
// every formula in this library scales exactly as f(p, r) = f(p, 1)/r; the
// sender therefore evaluates the unit-RTT formula and divides by the
// measured smoothed RTT.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/weights.hpp"
#include "model/throughput_function.hpp"
#include "net/dumbbell.hpp"
#include "stats/loss_events.hpp"
#include "stats/online.hpp"
#include "tfrc/loss_history.hpp"

namespace ebrc::tfrc {

struct TfrcConfig {
  /// Loss-interval estimator window L (TFRC default 8).
  std::size_t history_length = 8;
  /// Comprehensive control (include the open interval). The lab experiments
  /// of the paper disable this.
  bool comprehensive = true;
  /// RFC 3448 history discounting (off by default: the paper's analysis and
  /// its experimental TFRC omit it).
  bool history_discounting = false;
  /// Cap the computed rate at 2x the reported receive rate (TFRC standard).
  bool receive_rate_cap = true;
  /// Throughput formula family: "sqrt" | "pftk" | "pftk-simplified".
  std::string formula = "pftk";
  double packet_bytes = 1000.0;
  double initial_rate_pps = 2.0;
  /// EWMA coefficient for the RTT estimate (RFC 3448 q = 0.9).
  double rtt_smoothing = 0.9;
  double min_rate_pps = 0.1;
};

class TfrcConnection {
 public:
  /// Flow-retirement notification for pooled (finite-transfer) use.
  using CompletionFn = sim::InlineFunction<void(), 24>;

  TfrcConnection(net::Dumbbell& net, int flow_id, double base_rtt_s, TfrcConfig cfg = {});

  // Registers this-capturing handlers and pinned events at construction;
  // the object must stay at its construction address.
  TfrcConnection(const TfrcConnection&) = delete;
  TfrcConnection& operator=(const TfrcConnection&) = delete;

  void start(double at);
  void stop();

  // --- pooled lifecycle (dynamic workloads) ----------------------------
  //
  // A pool slot constructs the connection ONCE (handlers and pinned events
  // are permanent) and then open()s it for each transfer it carries. open()
  // resets every piece of per-transfer protocol and estimator state —
  // sequencing, rate, smoothed RTT, the loss history — while the cumulative
  // measurement counters (sent/delivered, the loss-event recorder, RTT
  // moments) keep accumulating across incarnations for long-run statistics.
  // The pacing and feedback pinned chains are guarded, not cancelled: a
  // chain that is still armed from the previous incarnation is reused, never
  // doubled. The pool must quarantine a retired slot for a drain interval
  // before reopening it, so packets of the previous transfer cannot reach
  // the new one (see workload::FlowManager).

  /// (Re)opens the connection for a transfer of `transfer_packets` data
  /// packets (0 = unbounded stream); the first packet is paced out at the
  /// current simulated time. `on_complete` fires once, at the emission of
  /// the transfer's final packet — TFRC is an unreliable paced stream, so
  /// the source is done when it has paced everything out.
  void open(std::uint64_t transfer_packets, CompletionFn on_complete = {});

  /// Retires the flow: pacing and feedback chains die lazily, pending
  /// completion is dropped. Counters survive for post-run analysis.
  void close();

  /// True between open()/start() and close()/completion.
  [[nodiscard]] bool active() const noexcept { return snd_.running; }
  /// Transfers completed (completion fired) since construction.
  [[nodiscard]] std::uint64_t transfers_completed() const noexcept {
    return transfers_completed_;
  }

  // --- measurement -----------------------------------------------------
  [[nodiscard]] const stats::LossEventRecorder& recorder() const noexcept { return recorder_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] double rate() const noexcept { return snd_.rate; }
  [[nodiscard]] double srtt() const noexcept { return snd_.srtt; }
  [[nodiscard]] const stats::OnlineMoments& rtt_stats() const noexcept { return rtt_stats_; }
  /// Queuing-delay telemetry (Sender concept): TFRC is loss-based and does
  /// not sense queuing delay, so it reports no samples.
  [[nodiscard]] double queuing_delay_sum_s() const noexcept { return 0.0; }
  [[nodiscard]] std::uint64_t queuing_delay_samples() const noexcept { return 0; }
  [[nodiscard]] const LossHistory& loss_history() const noexcept { return history_; }
  /// f(p, r) evaluated at this connection's current estimates (the paper's
  /// conservativeness reference).
  [[nodiscard]] double formula_rate() const;
  void reset_counters();

 private:
  // sender side
  void send_next();
  void on_feedback(const net::Packet& p);
  void finish_transfer();
  /// Rewinds per-transfer protocol/estimator state to the constructor's
  /// (cumulative counters and the recorder survive).
  void reset_transfer_state();
  // receiver side
  void on_data(const net::Packet& p);
  void feedback_tick();

  net::Dumbbell& net_;
  int flow_;
  double base_rtt_s_;
  TfrcConfig cfg_;
  std::shared_ptr<const model::ThroughputFunction> unit_formula_;  // rtt = 1, q = 4

  // Pinned per-packet/per-RTT events (pacing and feedback fire constantly;
  // `snd_.running` gates them instead of cancellation).
  sim::Simulator::PinnedEvent send_ev_;
  sim::Simulator::PinnedEvent feedback_ev_;

  /// Per-transfer sender hot state: everything the per-packet pacing path
  /// (send_next / on_feedback) reads or writes, grouped into one
  /// trivially-copyable block so open()'s rewind is a plain store sweep and
  /// each flow's sender working set is a single cache line at pool scale.
  /// The chain guards (running / armed) live here but SURVIVE the rewind —
  /// see reset_transfer_state().
  struct SenderState {
    double rate = 0.0;
    double srtt = 0.0;
    std::int64_t next_seq = 0;
    std::uint64_t transfer_limit = 0;  // 0 = unbounded stream
    std::uint64_t transfer_sent = 0;   // packets emitted this incarnation
    bool running = false;
    bool pacing_armed = false;    // a pinned send_next is pending in the kernel
    bool feedback_armed = false;  // a pinned feedback_tick is pending
    bool have_rtt = false;
    bool saw_loss = false;
  };
  static_assert(sizeof(SenderState) == 48, "TFRC sender hot state outgrew its line budget");
  static_assert(std::is_trivially_copyable_v<SenderState>);

  /// Per-transfer receiver hot state (on_data / feedback_tick), same idiom.
  struct ReceiverState {
    std::int64_t expected_seq = 0;
    double rtt_hint = 0.0;
    double last_feedback_time = 0.0;
    double last_data_send_time = 0.0;
    std::uint64_t recv_since_feedback = 0;
    bool started = false;
  };
  static_assert(sizeof(ReceiverState) == 48, "TFRC receiver hot state outgrew its line budget");
  static_assert(std::is_trivially_copyable_v<ReceiverState>);

  SenderState snd_;
  ReceiverState rcv_;

  // pooled-lifecycle state (cumulative across incarnations)
  std::uint64_t transfers_completed_ = 0;
  CompletionFn done_;

  // cumulative counters and the receiver's loss-interval estimator
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  LossHistory history_;

  // measurement
  stats::LossEventRecorder recorder_;
  stats::OnlineMoments rtt_stats_;
  double next_rtt_sample_at_ = 0.0;
};

}  // namespace ebrc::tfrc
