#include "tfrc/loss_history.hpp"

#include <algorithm>
#include <stdexcept>

namespace ebrc::tfrc {

LossHistory::LossHistory(std::vector<double> weights, bool comprehensive, bool discounting)
    : estimator_(std::move(weights)), comprehensive_(comprehensive), discounting_(discounting) {}

void LossHistory::on_packet(std::int64_t missing_before, double now, double rtt) {
  if (missing_before < 0) throw std::invalid_argument("LossHistory: negative gap");
  if (missing_before > 0) {
    // All packets in the gap were lost; a new loss event starts only when the
    // previous one is at least one RTT old (all gap members share one event —
    // they were sent within a transmission burst).
    const bool new_event = last_event_time_ < 0.0 || now >= last_event_time_ + rtt;
    // The lost packets still advance the interval count.
    open_packets_ += static_cast<double>(missing_before);
    if (new_event) {
      if (events_ > 0 && seeded_) {
        estimator_.push(open_packets_);
        closed_.push_back(open_packets_);
      }
      ++events_;
      last_event_time_ = now;
      open_packets_ = 0.0;
    }
  }
  open_packets_ += 1.0;
}

void LossHistory::seed(double interval_packets) {
  estimator_.seed(interval_packets);
  seeded_ = true;
}

void LossHistory::reset() noexcept {
  estimator_.reset();
  seeded_ = false;
  open_packets_ = 0.0;
  last_event_time_ = -1.0;
  events_ = 0;
  closed_.clear();
}

double LossHistory::mean_interval() const {
  if (!has_loss() || !seeded_) throw std::logic_error("LossHistory: no loss events yet");
  if (!comprehensive_) return estimator_.value();
  if (discounting_) {
    const double avg = estimator_.value();
    if (open_packets_ > 2.0 * avg && open_packets_ > 0.0) {
      const double discount = std::max(0.5, std::min(1.0, 2.0 * avg / open_packets_));
      return estimator_.value_with_open_discounted(open_packets_, discount);
    }
  }
  return estimator_.value_with_open(open_packets_);
}

double LossHistory::loss_event_rate() const {
  if (!has_loss() || !seeded_) return 0.0;
  return 1.0 / mean_interval();
}

}  // namespace ebrc::tfrc
