// The Claim-2 / Figure-6 sender at packet level: a source with a FIXED
// packet rate that adapts its byte rate by varying packet lengths, running
// through a loss module (Bernoulli dropper). Because drops do not depend on
// packet length, the real-time length of a loss interval is independent of
// the controlled rate — condition (C2c) with equality.
//
// The control is equation-based on the loss-event intervals counted in
// packets; losses are learned immediately (the experiment's feedback path is
// uncongested and its delay does not affect long-run averages).
#pragma once

#include <cstdint>
#include <vector>

#include "core/estimator.hpp"
#include "loss/droppers.hpp"
#include "model/throughput_function.hpp"
#include "sim/simulator.hpp"
#include "stats/online.hpp"
#include "stats/time_average.hpp"

namespace ebrc::tfrc {

struct VariablePacketConfig {
  double packet_rate_pps = 50.0;  // fixed packet clock
  std::size_t history_length = 4;   // the paper's Figure 6 uses L = 4
  bool comprehensive = true;
  /// Loss-event grouping window in seconds; 0 = every lost packet is its own
  /// event (the analytic model of Section V-C.1).
  double group_window_s = 0.0;
  double min_bytes = 40.0;
  double max_bytes = 64000.0;
};

class VariablePacketSender {
 public:
  VariablePacketSender(sim::Simulator& sim, loss::PacketDropper& dropper,
                       std::shared_ptr<const model::ThroughputFunction> function,
                       VariablePacketConfig cfg = {});

  void start(double at);
  void stop() { running_ = false; }
  /// Discards accumulated measurements (call at the end of warm-up).
  void reset_measurement();

  // --- measurement ---------------------------------------------------------
  /// Time-average of the controlled rate X(t) (the f-rate unit).
  [[nodiscard]] double mean_rate() const { return rate_avg_.average(); }
  /// Empirical per-packet loss-event rate.
  [[nodiscard]] double loss_event_rate() const;
  /// x̄ / f(p) at the measured p — Figure 6, top panel.
  [[nodiscard]] double normalized_throughput() const;
  /// Squared coefficient of variation of hat-theta — Figure 6, bottom panel.
  [[nodiscard]] double cv_thetahat_sq() const;
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return packets_; }
  [[nodiscard]] std::uint64_t loss_events() const noexcept { return events_; }

 private:
  void tick();
  [[nodiscard]] double current_rate() const;

  sim::Simulator& sim_;
  loss::PacketDropper& dropper_;
  std::shared_ptr<const model::ThroughputFunction> f_;
  VariablePacketConfig cfg_;
  core::MovingAverageEstimator estimator_;
  bool running_ = false;
  bool seeded_ = false;
  double open_packets_ = 0.0;
  double last_event_time_ = -1.0;
  std::uint64_t packets_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t measured_packets_ = 0;
  std::uint64_t measured_events_ = 0;
  stats::TimeWeightedAverage rate_avg_;
  stats::OnlineMoments thetahat_m_;
};

}  // namespace ebrc::tfrc
