// TFRC receiver-side loss history (RFC 3448 Section 5).
//
// Turns the arriving sequence-number stream into loss-event intervals:
// losses within one RTT of the start of a loss event belong to that event;
// the average loss interval is the moving average of the last L closed
// intervals, and — when the comprehensive control is enabled — the open
// (still growing) interval is promoted into the newest slot whenever that
// increases the average (Eq. 4 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "core/estimator.hpp"

namespace ebrc::tfrc {

class LossHistory {
 public:
  /// `weights`: the moving-average profile (normally core::tfrc_weights(L)).
  /// `comprehensive`: include the open interval (TFRC default). The paper's
  /// lab runs disable it to isolate the basic control.
  /// `discounting`: RFC 3448 Section 5.5 history discounting — when the open
  /// interval exceeds twice the average, older intervals are de-weighted by
  /// max(0.5, 2 I_mean / I_0) so the rate recovers faster after a loss-free
  /// stretch (an extension the paper's analysis deliberately omits).
  LossHistory(std::vector<double> weights, bool comprehensive, bool discounting = false);

  /// Feeds one arrived packet. `missing_before` is how many sequence numbers
  /// were skipped right before this packet (0 when in order); `now` the
  /// arrival time; `rtt` the current loss-event grouping window.
  void on_packet(std::int64_t missing_before, double now, double rtt);

  /// True once at least one loss event has been seen (the estimator is live).
  [[nodiscard]] bool has_loss() const noexcept { return events_ > 0; }

  /// The TFRC average loss interval hat-theta (with the open-interval rule
  /// when comprehensive). Requires has_loss().
  [[nodiscard]] double mean_interval() const;

  /// Estimated loss-event rate p = 1/mean_interval(); 0 before any loss.
  [[nodiscard]] double loss_event_rate() const;

  /// Seeds the history after the first loss event so the reported rate
  /// matches the current throughput (RFC 3448 Section 6.3.1).
  void seed(double interval_packets);

  /// Forgets all loss state (connection reuse in the flow pool): the next
  /// transfer on this history starts from a clean estimator. Retains the
  /// weight profile and every vector's capacity — reset allocates nothing.
  void reset() noexcept;

  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] double open_interval() const noexcept { return open_packets_; }
  [[nodiscard]] const core::MovingAverageEstimator& estimator() const noexcept {
    return estimator_;
  }
  /// Completed loss-event intervals (packets), most recent last.
  [[nodiscard]] const std::vector<double>& closed_intervals() const noexcept {
    return closed_;
  }

 private:
  core::MovingAverageEstimator estimator_;
  bool comprehensive_;
  bool discounting_;
  bool seeded_ = false;
  double open_packets_ = 0.0;
  double last_event_time_ = -1.0;
  std::uint64_t events_ = 0;
  std::vector<double> closed_;
};

}  // namespace ebrc::tfrc
