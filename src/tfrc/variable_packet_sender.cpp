#include "tfrc/variable_packet_sender.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/weights.hpp"
#include "util/math.hpp"

namespace ebrc::tfrc {

VariablePacketSender::VariablePacketSender(
    sim::Simulator& sim, loss::PacketDropper& dropper,
    std::shared_ptr<const model::ThroughputFunction> function, VariablePacketConfig cfg)
    : sim_(sim),
      dropper_(dropper),
      f_(std::move(function)),
      cfg_(cfg),
      estimator_(core::tfrc_weights(cfg.history_length)) {
  if (!f_) throw std::invalid_argument("VariablePacketSender: null function");
  if (cfg.packet_rate_pps <= 0) {
    throw std::invalid_argument("VariablePacketSender: packet rate must be > 0");
  }
}

void VariablePacketSender::start(double at) {
  running_ = true;
  sim_.schedule_at(at, [this] { tick(); });
}

void VariablePacketSender::reset_measurement() {
  rate_avg_ = stats::TimeWeightedAverage{};
  thetahat_m_ = stats::OnlineMoments{};
  measured_packets_ = 0;
  measured_events_ = 0;
}

double VariablePacketSender::current_rate() const {
  if (!seeded_) return f_->rate(1.0);  // worst-case rate until first loss
  const double hat = cfg_.comprehensive ? estimator_.value_with_open(open_packets_)
                                        : estimator_.value();
  return f_->rate_from_interval(std::max(1.0, hat));
}

void VariablePacketSender::tick() {
  if (!running_) return;
  const double now = sim_.now();
  const double rate = current_rate();
  rate_avg_.set(now, rate);
  if (seeded_) thetahat_m_.add(estimator_.value());

  // The packet whose length realizes the current byte rate is emitted, then
  // the loss module decides its fate.
  ++packets_;
  ++measured_packets_;
  open_packets_ += 1.0;
  if (dropper_.drop(now)) {
    const bool new_event =
        last_event_time_ < 0.0 || now >= last_event_time_ + cfg_.group_window_s;
    if (new_event) {
      if (seeded_) {
        estimator_.push(std::max(1.0, open_packets_));
      } else {
        estimator_.seed(std::max(1.0, open_packets_));
        seeded_ = true;
      }
      ++events_;
      ++measured_events_;
      last_event_time_ = now;
      open_packets_ = 0.0;
    }
  }
  sim_.schedule(1.0 / cfg_.packet_rate_pps, [this] { tick(); });
}

double VariablePacketSender::loss_event_rate() const {
  if (measured_packets_ == 0) return 0.0;
  return static_cast<double>(measured_events_) / static_cast<double>(measured_packets_);
}

double VariablePacketSender::normalized_throughput() const {
  const double p = loss_event_rate();
  if (p <= 0.0) return 0.0;
  return mean_rate() / f_->rate(std::min(1.0, p));
}

double VariablePacketSender::cv_thetahat_sq() const {
  return ebrc::util::sq(thetahat_m_.cv());
}

}  // namespace ebrc::tfrc
