#include "tfrc/tfrc_connection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/solvers.hpp"

namespace ebrc::tfrc {
namespace {

/// Inverts h(x) = f(1/x) at a target rate by bisection (h is increasing).
double invert_rate(const model::ThroughputFunction& f, double target_rate) {
  double lo = 1.0;
  double hi = 2.0;
  while (f.rate_from_interval(lo) > target_rate && lo > 1e-9) lo *= 0.5;
  while (f.rate_from_interval(hi) < target_rate && hi < 1e12) hi *= 2.0;
  return model::bisect([&](double x) { return f.rate_from_interval(x) - target_rate; }, lo, hi,
                       1e-9 * hi);
}

}  // namespace

TfrcConnection::TfrcConnection(net::Dumbbell& net, int flow_id, double base_rtt_s, TfrcConfig cfg)
    : net_(net),
      flow_(flow_id),
      base_rtt_s_(base_rtt_s),
      cfg_(std::move(cfg)),
      unit_formula_(model::make_throughput_function(cfg_.formula, 1.0)),  // q = 4r implied
      send_ev_(net.simulator().pin([this] { send_next(); })),
      feedback_ev_(net.simulator().pin([this] { feedback_tick(); })),
      history_(core::tfrc_weights(cfg_.history_length), cfg_.comprehensive,
               cfg_.history_discounting),
      recorder_(base_rtt_s) {
  if (base_rtt_s <= 0) throw std::invalid_argument("TfrcConnection: base RTT must be > 0");
  snd_.rate = cfg_.initial_rate_pps;
  snd_.srtt = base_rtt_s;
  rcv_.rtt_hint = base_rtt_s;
  if (cfg_.initial_rate_pps <= 0 || cfg_.packet_bytes <= 0) {
    throw std::invalid_argument("TfrcConnection: bad configuration");
  }
  net_.on_data_at_receiver(flow_, [this](const net::Packet& p) { on_data(p); });
  net_.on_packet_at_sender(flow_, [this](const net::Packet& p) { on_feedback(p); });
}

void TfrcConnection::start(double at) {
  net_.simulator().schedule_at(at, [this] {
    snd_.running = true;
    send_next();
  });
}

void TfrcConnection::stop() { snd_.running = false; }

void TfrcConnection::open(std::uint64_t transfer_packets, CompletionFn on_complete) {
  reset_transfer_state();
  snd_.transfer_limit = transfer_packets;
  done_ = std::move(on_complete);
  snd_.running = true;
  // Reuse a pacing chain still armed from the previous incarnation (close()
  // between its scheduling and its firing); otherwise start a fresh one at
  // the current time. Either way exactly one chain is live.
  if (!snd_.pacing_armed) {
    snd_.pacing_armed = true;
    net_.simulator().schedule_pinned(0.0, send_ev_);
  }
}

void TfrcConnection::close() {
  snd_.running = false;
  done_ = CompletionFn{};
}

void TfrcConnection::finish_transfer() {
  snd_.running = false;
  ++transfers_completed_;
  if (done_) {
    // Move out first: the callback may re-enter the pool and hand this slot
    // a fresh done_ later (never synchronously — slots are quarantined).
    CompletionFn done = std::move(done_);
    done_ = CompletionFn{};
    done();
  }
}

void TfrcConnection::reset_transfer_state() {
  // Wholesale POD rewind; the chain guards survive it — an armed pacing or
  // feedback chain from the previous incarnation is reused, never doubled
  // (see open()). `running` is restated by open() right after.
  const bool pacing = snd_.pacing_armed;
  const bool feedback = snd_.feedback_armed;
  snd_ = SenderState{};
  snd_.rate = cfg_.initial_rate_pps;
  snd_.srtt = base_rtt_s_;
  snd_.pacing_armed = pacing;
  snd_.feedback_armed = feedback;
  rcv_ = ReceiverState{};
  rcv_.rtt_hint = base_rtt_s_;
  history_.reset();
  recorder_.set_rtt_window(base_rtt_s_);
}

void TfrcConnection::reset_counters() {
  sent_ = 0;
  delivered_ = 0;
}

double TfrcConnection::formula_rate() const {
  if (!snd_.saw_loss) return 0.0;
  const double p = std::min(1.0, history_.loss_event_rate());
  if (p <= 0.0) return 0.0;
  return unit_formula_->rate(p) / snd_.srtt;
}

// --------------------------------------------------------------- sender ----

void TfrcConnection::send_next() {
  if (!snd_.running) {
    snd_.pacing_armed = false;  // the chain dies here; open() may start a new one
    return;
  }
  net::Packet p;
  p.seq = snd_.next_seq++;
  p.size_bytes = cfg_.packet_bytes;
  p.send_time = net_.simulator().now();
  p.data.rtt_hint = snd_.srtt;
  net_.send_data(flow_, p);
  ++sent_;
  ++snd_.transfer_sent;
  if (snd_.transfer_limit != 0 && snd_.transfer_sent >= snd_.transfer_limit) {
    // Finite transfer: the paced source is done the moment it emits its last
    // packet (TFRC has no retransmission — delivery of the tail is the
    // network's business). The pacing chain ends with it.
    snd_.pacing_armed = false;
    finish_transfer();
    return;
  }
  snd_.pacing_armed = true;
  net_.simulator().schedule_pinned(1.0 / snd_.rate, send_ev_);
}

void TfrcConnection::on_feedback(const net::Packet& p) {
  if (!snd_.running || p.kind != net::PacketKind::kFeedback) return;
  const double now = net_.simulator().now();

  const double sample = now - p.fb.echo_time;
  if (sample > 0) {
    if (!snd_.have_rtt) {
      snd_.srtt = sample;
      snd_.have_rtt = true;
    } else {
      snd_.srtt = cfg_.rtt_smoothing * snd_.srtt + (1.0 - cfg_.rtt_smoothing) * sample;
    }
    if (now >= next_rtt_sample_at_) {
      rtt_stats_.add(sample);
      next_rtt_sample_at_ = now + snd_.srtt;
    }
  }

  double new_rate;
  if (p.fb.mean_interval > 0.0) {
    snd_.saw_loss = true;
    const double loss_rate = std::min(1.0, 1.0 / p.fb.mean_interval);
    // f(p, r) = f(p, 1) / r, exact under the q = 4r recommendation.
    new_rate = unit_formula_->rate(loss_rate) / snd_.srtt;
    if (cfg_.receive_rate_cap && p.fb.recv_rate > 0.0) {
      new_rate = std::min(new_rate, 2.0 * p.fb.recv_rate);
    }
  } else {
    // Slow-start phase: double per feedback, capped by twice the receive
    // rate (RFC 3448 Section 4.3).
    new_rate = 2.0 * snd_.rate;
    if (p.fb.recv_rate > 0.0) new_rate = std::min(new_rate, 2.0 * p.fb.recv_rate);
  }
  snd_.rate = std::max(cfg_.min_rate_pps, new_rate);
  recorder_.note_rate(snd_.rate);
}

// ------------------------------------------------------------- receiver ----

void TfrcConnection::on_data(const net::Packet& p) {
  const double now = net_.simulator().now();
  if (p.data.rtt_hint > 0) rcv_.rtt_hint = p.data.rtt_hint;
  recorder_.set_rtt_window(rcv_.rtt_hint);

  const std::int64_t missing = std::max<std::int64_t>(0, p.seq - rcv_.expected_seq);
  if (p.seq >= rcv_.expected_seq) rcv_.expected_seq = p.seq + 1;

  if (missing > 0 && !history_.has_loss()) {
    // First loss event: seed the history so that the reported rate matches
    // the rate the connection actually achieved so far (RFC 3448 6.3.1).
    const double elapsed = std::max(1e-9, now - rcv_.last_feedback_time);
    const double recv_rate =
        rcv_.recv_since_feedback > 0 ? static_cast<double>(rcv_.recv_since_feedback) / elapsed : snd_.rate;
    const double theta0 = invert_rate(*unit_formula_, recv_rate * rcv_.rtt_hint);
    history_.seed(std::max(1.0, theta0));
  }
  history_.on_packet(missing, now, rcv_.rtt_hint);

  for (std::int64_t i = 0; i < missing; ++i) recorder_.on_loss(now);
  recorder_.on_packet(now);
  ++delivered_;
  ++rcv_.recv_since_feedback;
  rcv_.last_data_send_time = p.send_time;

  if (!rcv_.started) {
    rcv_.started = true;
    rcv_.last_feedback_time = now;
    if (!snd_.feedback_armed) {
      snd_.feedback_armed = true;
      net_.simulator().schedule_pinned(std::max(1e-3, rcv_.rtt_hint), feedback_ev_);
    }
  }
}

void TfrcConnection::feedback_tick() {
  if (!snd_.running) {
    snd_.feedback_armed = false;  // chain dies; the next incarnation re-arms
    return;
  }
  const double now = net_.simulator().now();
  if (rcv_.recv_since_feedback > 0) {
    net::Packet report;
    report.kind = net::PacketKind::kFeedback;
    report.size_bytes = 40.0;
    report.send_time = now;
    const double elapsed = std::max(1e-9, now - rcv_.last_feedback_time);
    report.fb = {/*mean_interval=*/history_.has_loss() ? history_.mean_interval() : 0.0,
                 /*recv_rate=*/static_cast<double>(rcv_.recv_since_feedback) / elapsed,
                 /*echo_time=*/rcv_.last_data_send_time};
    net_.send_back(flow_, report);
    rcv_.recv_since_feedback = 0;
    rcv_.last_feedback_time = now;
  }
  snd_.feedback_armed = true;
  net_.simulator().schedule_pinned(std::max(1e-3, rcv_.rtt_hint), feedback_ev_);
}

}  // namespace ebrc::tfrc
