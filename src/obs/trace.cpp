#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/json_escape.hpp"

namespace ebrc::obs {

void CellTrace::span(double t0, double t1, std::string_view name, std::string_view track) {
  if (!admit()) return;
  events_.push_back(Ev{'X', t0, t1, 0.0, std::string(name), std::string(track)});
}

void CellTrace::instant(double t, std::string_view name, std::string_view track) {
  if (!admit()) return;
  events_.push_back(Ev{'i', t, 0.0, 0.0, std::string(name), std::string(track)});
}

void CellTrace::counter(double t, std::string_view name, double value) {
  if (!admit()) return;
  events_.push_back(Ev{'C', t, 0.0, value, std::string(name), ""});
}

void TraceWriter::absorb(std::size_t cell, std::string cell_name, CellTrace&& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back(CellBlock{cell, std::move(cell_name), std::move(trace)});
}

std::size_t TraceWriter::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const CellBlock& c : cells_) n += c.trace.dropped();
  return n;
}

namespace {

void append_f(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

constexpr double kMicros = 1e6;  // sim seconds -> trace microseconds

}  // namespace

bool TraceWriter::write(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;

  // Deterministic output order regardless of worker completion order.
  std::vector<const CellBlock*> ordered;
  ordered.reserve(cells_.size());
  for (const CellBlock& c : cells_) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const CellBlock* a, const CellBlock* b) { return a->cell < b->cell; });

  f << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  std::string line;
  const auto emit = [&](const std::string& body) {
    if (!first) f << ",\n";
    first = false;
    f << body;
  };

  for (const CellBlock* cb : ordered) {
    const auto pid = static_cast<unsigned long long>(cb->cell);
    // Process metadata: name the pid after the scenario.
    line.clear();
    line += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    line += std::to_string(pid);
    line += ",\"tid\":0,\"args\":{\"name\":\"";
    util::json_escape_into(line, cb->name);
    line += "\"}}";
    emit(line);

    // Track name -> tid, in first-appearance order; tid 0 is the main track.
    std::vector<std::string> tracks{""};
    const auto tid_of = [&](const std::string& track) -> std::size_t {
      for (std::size_t i = 0; i < tracks.size(); ++i) {
        if (tracks[i] == track) return i;
      }
      tracks.push_back(track);
      return tracks.size() - 1;
    };

    for (const CellTrace::Ev& e : cb->trace.events_) {
      line.clear();
      line += "{\"name\":\"";
      util::json_escape_into(line, e.name);
      line += "\",\"ph\":\"";
      line += e.ph;
      line += "\",\"ts\":";
      append_f(line, "%.3f", e.t0 * kMicros);
      if (e.ph == 'X') {
        line += ",\"dur\":";
        append_f(line, "%.3f", std::max(0.0, e.t1 - e.t0) * kMicros);
      }
      line += ",\"pid\":";
      line += std::to_string(pid);
      line += ",\"tid\":";
      line += std::to_string(e.ph == 'C' ? 0 : tid_of(e.track));
      if (e.ph == 'i') {
        line += ",\"s\":\"t\"";  // thread-scoped instant
      } else if (e.ph == 'C') {
        line += ",\"args\":{\"value\":";
        append_f(line, "%.6g", e.value);
        line += "}";
      }
      line += "}";
      emit(line);
    }

    // Thread metadata after the fact, once the track set is known.
    for (std::size_t tid = 1; tid < tracks.size(); ++tid) {
      line.clear();
      line += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
      line += std::to_string(pid);
      line += ",\"tid\":";
      line += std::to_string(tid);
      line += ",\"args\":{\"name\":\"";
      util::json_escape_into(line, tracks[tid]);
      line += "\"}}";
      emit(line);
    }
  }
  f << "\n]}\n";
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace ebrc::obs
