// obs::FlightRecorder — a crash-surviving ring of the last N executed kernel
// events.
//
// The recorder maps a small file MAP_SHARED and hands the simulator a
// sim::KernelRing view into it; the hot loop then writes one 16-byte POD
// record per executed event straight into the mapping. Because the mapping
// is file-backed and shared, the pages live in the page cache: when the
// supervisor SIGKILLs a wedged worker (or the worker crashes on a signal),
// the last-written records are still readable from the file — no flush,
// destructor, or signal handler needed. The parent then renders the tail
// into the crash repro bundle so post-mortems see exactly what the simulator
// was executing when it died.
//
// File layout: a 64-byte header {magic, version, capacity, cursor} followed
// by `capacity` (power of two) records. `cursor` counts records ever
// written; the live tail is the last min(cursor, capacity) slots in ring
// order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/simulator.hpp"

namespace ebrc::obs {

class FlightRecorder {
 public:
  static constexpr std::uint64_t kMagic = 0x45425243'464C5431ull;  // "EBRCFLT1"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Creates (truncating) the ring file and maps it. Returns nullptr on any
  /// I/O or mmap failure — callers treat a missing recorder as "obs off",
  /// never as a fatal error. `capacity` is rounded up to a power of two.
  static std::unique_ptr<FlightRecorder> create(const std::string& path,
                                                std::size_t capacity = kDefaultCapacity);

  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// View for Simulator::set_kernel_ring. Valid for this object's lifetime.
  [[nodiscard]] sim::KernelRing ring() const noexcept { return ring_; }

  /// Records written so far (reads the mapped cursor).
  [[nodiscard]] std::uint64_t cursor() const noexcept { return *ring_.cursor; }

  /// Post-mortem: reads `ring_path` (typically after the writing process
  /// died) and renders the tail as text into `out_path`. The dump starts
  /// with a "flight-recorder v1" banner, then one line per record, oldest
  /// first: `#<seq> t=<sim time> slot=0x<hex> src=<heap|wheel|pinned-heap|
  /// pinned-wheel>`. Returns false if the file is missing, truncated, or
  /// fails the magic/version check.
  static bool dump_to_text(const std::string& ring_path, const std::string& out_path);

 private:
  struct Header {
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t capacity;
    std::uint64_t cursor;
    std::uint8_t pad[40];
  };
  static_assert(sizeof(Header) == 64);

  FlightRecorder(void* map, std::size_t map_len, sim::KernelRing ring)
      : map_(map), map_len_(map_len), ring_(ring) {}

  void* map_;
  std::size_t map_len_;
  sim::KernelRing ring_;
};

}  // namespace ebrc::obs
