#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ebrc::obs {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins >= 1");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
  bins_.assign(bins, 0);
}

void Histogram::record(double v) noexcept {
  const double idx = (v - lo_) / width_;
  std::size_t b = 0;
  if (idx >= static_cast<double>(bins_.size())) {
    b = bins_.size() - 1;
  } else if (idx > 0.0) {
    b = static_cast<std::size_t>(idx);
  }
  ++bins_[b];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v > max_) max_ = v;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const std::uint64_t in_bin = bins_[b];
    if (static_cast<double>(seen + in_bin) >= target && in_bin > 0) {
      // Interpolate inside the bin by the fraction of its mass below target.
      const double frac =
          in_bin > 0 ? (target - static_cast<double>(seen)) / static_cast<double>(in_bin) : 0.0;
      return lo_ + (static_cast<double>(b) + std::clamp(frac, 0.0, 1.0)) * width_;
    }
    seen += in_bin;
  }
  return lo_ + static_cast<double>(bins_.size()) * width_;
}

void Registry::add_counter(std::string name, Sampler s) {
  order_.push_back(
      Instrument{Instrument::Kind::kCounter, false, std::move(name), std::move(s), nullptr});
}

void Registry::add_gauge(std::string name, Sampler s, bool probe_only) {
  gauges_.push_back(GaugeRef{name, s});
  order_.push_back(
      Instrument{Instrument::Kind::kGauge, probe_only, std::move(name), std::move(s), nullptr});
}

Histogram* Registry::add_histogram(std::string name, double lo, double hi, std::size_t bins) {
  hists_.emplace_back(lo, hi, bins);
  Histogram* h = &hists_.back();
  order_.push_back(Instrument{Instrument::Kind::kHistogram, false, std::move(name), {}, h});
  return h;
}

Snapshot Registry::snapshot(double now) const {
  Snapshot out;
  out.reserve(order_.size() + 4 * hists_.size());
  for (const Instrument& in : order_) {
    switch (in.kind) {
      case Instrument::Kind::kCounter:
        out.emplace_back(in.name, in.sampler(now));
        break;
      case Instrument::Kind::kGauge:
        if (!in.probe_only) out.emplace_back(in.name, in.sampler(now));
        break;
      case Instrument::Kind::kHistogram:
        out.emplace_back(in.name + "_count", static_cast<double>(in.hist->count()));
        out.emplace_back(in.name + "_mean", in.hist->mean());
        out.emplace_back(in.name + "_p50", in.hist->quantile(0.50));
        out.emplace_back(in.name + "_p90", in.hist->quantile(0.90));
        out.emplace_back(in.name + "_max", in.hist->max());
        break;
    }
  }
  return out;
}

}  // namespace ebrc::obs
