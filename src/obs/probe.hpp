// obs::Probe — fixed-interval sim-time sampling of registered gauges.
//
// The probe never injects events into the kernel. It exposes a sample
// schedule (`next_due()`), and the experiment loop drives it by running the
// simulator in segments: `run_until(next_due()); sample();`. Segmenting
// run_until is perturbation-free — the merge-pop loop's wheel peek is
// idempotent between pops, and nothing is inserted into the wheel or heap —
// so a probed run executes the exact same event sequence, pops included, as
// an unprobed one. That is the property that lets a probed run share a cache
// entry (bit-identical result payload) with an unprobed run, which is why
// --probe-interval is excluded from the cache fingerprint.
//
// Storage is bounded: each series keeps the most recent `capacity` samples
// (ring overwrite) plus the total sample count, so a million-second run with
// a 10 ms probe cannot eat the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "sim/simulator.hpp"

namespace ebrc::obs {

class CellTrace;

/// One gauge's sampled time series: a preallocated ring keeping the most
/// recent `cap` samples plus the total ever taken.
struct Series {
  std::string name;
  double interval_s = 0.0;
  double start_s = 0.0;        // sim time of sample index 0 (the first ever)
  std::uint64_t total = 0;     // samples ever taken (>= samples kept)
  std::size_t cap = 0;         // ring capacity, fixed at construction
  std::vector<double> values;  // resized to cap up front; ring-indexed

  void push(double v) noexcept {
    values[static_cast<std::size_t>(total % cap)] = v;
    ++total;
  }
  /// Number of retained samples (<= cap).
  [[nodiscard]] std::size_t size() const noexcept {
    return total < cap ? static_cast<std::size_t>(total) : cap;
  }
  /// i-th retained sample, oldest first.
  [[nodiscard]] double at(std::size_t i) const noexcept {
    const std::size_t head = total > cap ? static_cast<std::size_t>(total % cap) : 0;
    return values[(head + i) % cap];
  }
  /// Sim time of the i-th retained sample.
  [[nodiscard]] double time_at(std::size_t i) const noexcept {
    const auto dropped = static_cast<double>(total - size());
    return start_s + (dropped + static_cast<double>(i)) * interval_s;
  }
};

class Probe {
 public:
  /// Samples every gauge of `reg` each `interval_s` sim seconds, starting at
  /// sim.now() + interval and stopping after `stop_at`, keeping the last
  /// `capacity` samples per gauge. If `trace` is given, samples are mirrored
  /// into it as chrome://tracing counter tracks.
  Probe(sim::Simulator& sim, const Registry& reg, double interval_s, std::size_t capacity,
        double stop_at, CellTrace* trace = nullptr);

  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;

  /// Sim time of the next pending sample, or +inf when the schedule is done
  /// (past stop_at, or the registry has no gauges). The driver loop is
  ///   while (p.next_due() <= horizon) { sim.run_until(p.next_due()); p.sample(); }
  [[nodiscard]] double next_due() const noexcept {
    if (series_.empty()) return std::numeric_limits<double>::infinity();
    const double due = start_s_ + static_cast<double>(samples_) * interval_s_;
    return due <= stop_at_ ? due : std::numeric_limits<double>::infinity();
  }

  /// Reads every gauge once at the current sim time. Call after
  /// sim.run_until(next_due()).
  void sample();

  /// Hands the collected series out (call after the run).
  [[nodiscard]] std::vector<Series> take_series() { return std::move(series_); }

 private:
  sim::Simulator& sim_;
  const Registry& reg_;
  double interval_s_;
  double start_s_;
  double stop_at_;
  std::uint64_t samples_ = 0;
  std::vector<Series> series_;
  CellTrace* trace_;
};

}  // namespace ebrc::obs
