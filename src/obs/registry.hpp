// obs::Registry — the per-run instrument catalogue.
//
// An experiment registers its instruments once, at construction time, and the
// registry never touches a hot path: counters and gauges are *pull-based*
// samplers over state the components already maintain (kernel pop counters,
// queue drop totals, the population tracker), so reading them costs nothing
// until somebody asks. Histograms are the one push-style instrument, fed only
// from rare paths (a queue drop, a transfer completion).
//
// Determinism contract: snapshot() depends only on simulated state, never on
// whether a probe was attached — gauges registered `probe_only` (stateful
// rate estimators that advance when sampled) are visible to obs::Probe but
// excluded from the snapshot, so cached results stay bit-identical whether or
// not --probe-interval was set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace ebrc::obs {

/// Fixed-range linear-bin histogram. Values outside [lo, hi) clamp to the
/// edge bins, so the export is total (count is exact, tails are visible as
/// saturated edge bins). All storage is allocated at registration.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void record(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  /// Linear-interpolated quantile from the bin midpoints; 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double width_;  // per-bin width
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// A snapshot is a flat, insertion-ordered (name, value) list — the shape
/// both ExperimentResult and the JSONL feed want.
using Snapshot = std::vector<std::pair<std::string, double>>;

class Registry {
 public:
  /// Samplers read component state at sample time; `now` is the simulated
  /// clock so rate-style gauges can difference against it.
  using Sampler = std::function<double(double now)>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// A monotone total (events executed, packets dropped). Snapshot value is
  /// whatever the sampler reads at snapshot time.
  void add_counter(std::string name, Sampler s);

  /// An instantaneous level (queue occupancy, active flows). `probe_only`
  /// gauges are sampled by obs::Probe but never appear in snapshot() — use
  /// it for stateful samplers whose value depends on the sampling schedule.
  void add_gauge(std::string name, Sampler s, bool probe_only = false);

  /// Registers a histogram and returns a stable pointer for the feeding
  /// component to record into. Exports `<name>_count/_mean/_p50/_p90/_max`
  /// in every snapshot (zeros when empty — the key set is fixed at
  /// registration so batch aggregation sees homogeneous rows).
  Histogram* add_histogram(std::string name, double lo, double hi, std::size_t bins);

  /// All registered instruments in registration order, histograms expanded.
  /// Probe-only gauges are excluded (see the determinism contract above).
  [[nodiscard]] Snapshot snapshot(double now) const;

  // --- probe interface: gauges by dense index (probe_only included) --------
  [[nodiscard]] std::size_t gauge_count() const noexcept { return gauges_.size(); }
  [[nodiscard]] const std::string& gauge_name(std::size_t i) const { return gauges_[i].name; }
  [[nodiscard]] double sample_gauge(std::size_t i, double now) const {
    return gauges_[i].sampler(now);
  }

 private:
  struct Instrument {
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
    Kind kind;
    bool probe_only = false;
    std::string name;
    Sampler sampler;           // counters and gauges
    const Histogram* hist = nullptr;
  };
  struct GaugeRef {
    std::string name;
    Sampler sampler;
  };

  std::vector<Instrument> order_;   // registration order, drives snapshot()
  std::vector<GaugeRef> gauges_;    // dense probe-facing view (incl. probe_only)
  std::deque<Histogram> hists_;     // deque: add_histogram pointers stay stable
};

}  // namespace ebrc::obs
