#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace ebrc::obs {

std::unique_ptr<FlightRecorder> FlightRecorder::create(const std::string& path,
                                                       std::size_t capacity) {
  if (capacity == 0) capacity = kDefaultCapacity;
  capacity = std::bit_ceil(capacity);
  if (capacity > (1u << 24)) capacity = 1u << 24;  // 256 MiB hard cap

  const std::size_t len = sizeof(Header) + capacity * sizeof(sim::KernelRing::Record);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  if (::ftruncate(fd, static_cast<off_t>(len)) != 0) {
    ::close(fd);
    return nullptr;
  }
  void* map = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file contents reachable
  if (map == MAP_FAILED) return nullptr;

  auto* hdr = static_cast<Header*>(map);
  std::memset(hdr, 0, sizeof(Header));
  hdr->magic = kMagic;
  hdr->version = kVersion;
  hdr->capacity = static_cast<std::uint32_t>(capacity);
  hdr->cursor = 0;

  sim::KernelRing ring;
  ring.records = reinterpret_cast<sim::KernelRing::Record*>(static_cast<char*>(map) +
                                                            sizeof(Header));
  ring.mask = static_cast<std::uint32_t>(capacity - 1);
  ring.cursor = &hdr->cursor;
  return std::unique_ptr<FlightRecorder>(new FlightRecorder(map, len, ring));
}

FlightRecorder::~FlightRecorder() { ::munmap(map_, map_len_); }

bool FlightRecorder::dump_to_text(const std::string& ring_path, const std::string& out_path) {
  std::ifstream in(ring_path, std::ios::binary);
  if (!in) return false;
  Header hdr{};
  if (!in.read(reinterpret_cast<char*>(&hdr), sizeof(hdr))) return false;
  if (hdr.magic != kMagic || hdr.version != kVersion) return false;
  if (hdr.capacity == 0 || (hdr.capacity & (hdr.capacity - 1)) != 0) return false;

  std::vector<sim::KernelRing::Record> recs(hdr.capacity);
  in.read(reinterpret_cast<char*>(recs.data()),
          static_cast<std::streamsize>(recs.size() * sizeof(recs[0])));
  // Accept a short read of the record area (e.g. the worker died before the
  // page made it out) as long as the written tail is covered.
  const auto got = static_cast<std::size_t>(in.gcount()) / sizeof(recs[0]);
  const std::uint64_t kept = hdr.cursor < hdr.capacity ? hdr.cursor : hdr.capacity;
  if (got < (hdr.cursor < hdr.capacity ? hdr.cursor : static_cast<std::uint64_t>(hdr.capacity))) {
    return false;
  }

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) return false;
  out << "flight-recorder v" << hdr.version << " capacity=" << hdr.capacity
      << " executed=" << hdr.cursor << " kept=" << kept << "\n";
  static constexpr const char* kSrc[4] = {"heap", "wheel", "pinned-heap", "pinned-wheel"};
  char line[128];
  for (std::uint64_t i = 0; i < kept; ++i) {
    const std::uint64_t seq = hdr.cursor - kept + i;  // global event index
    const sim::KernelRing::Record& r = recs[static_cast<std::size_t>(seq & (hdr.capacity - 1))];
    std::snprintf(line, sizeof(line), "#%llu t=%.9f slot=0x%08x src=%s\n",
                  static_cast<unsigned long long>(seq), r.at, r.slot, kSrc[r.src & 3]);
    out << line;
  }
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace ebrc::obs
