// obs::RunObs — the per-run observability request handed to run_experiment.
//
// Null/default everything means "obs off": the experiment still registers
// its instruments (registration is construction-time and cheap) and still
// snapshots them into ExperimentResult::obs, but no probe is scheduled, no
// trace is buffered, and the kernel ring stays uninstalled, so the hot path
// keeps its single predictable branch.
#pragma once

#include <cstddef>

#include "sim/simulator.hpp"

namespace ebrc::obs {

class CellTrace;

struct RunObs {
  /// > 0 schedules an obs::Probe at this sim-time interval.
  double probe_interval_s = 0.0;
  /// Ring capacity per probed series.
  std::size_t probe_capacity = 4096;
  /// Optional per-cell chrome://tracing buffer (spans, instants, counters).
  CellTrace* trace = nullptr;
  /// Optional flight-recorder ring to install on the simulator.
  sim::KernelRing ring;
};

}  // namespace ebrc::obs
