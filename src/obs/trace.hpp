// obs::CellTrace / obs::TraceWriter — chrome://tracing export.
//
// A CellTrace is a per-cell, single-threaded event buffer filled during a
// run: spans (transfers, cell attempts), instants (drops, retries, controller
// state changes), and counter samples mirrored from the probe. BatchRunner
// moves finished cell traces into the sweep-wide TraceWriter, which writes
// one Trace Event Format JSON file loadable by chrome://tracing or Perfetto.
//
// Time base: every timestamp is SIMULATED time converted to microseconds
// (the Trace Event Format's native unit), so the viewer's timeline reads
// directly in sim seconds. Each cell becomes one "process" (pid = cell
// index, process_name = scenario name); tracks within a cell become threads.
//
// Tracing is opt-in (--trace-out); this path is allowed to allocate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ebrc::obs {

class CellTrace {
 public:
  /// `max_events` bounds memory per cell; past it, events are counted as
  /// dropped instead of recorded (the writer reports the loss).
  explicit CellTrace(std::size_t max_events = 1 << 16) : cap_(max_events) {
    events_.reserve(std::min<std::size_t>(max_events, 1024));
  }

  /// Complete span [t0, t1] (sim seconds) on the named track.
  void span(double t0, double t1, std::string_view name, std::string_view track);
  /// Instant event at t (sim seconds) on the named track.
  void instant(double t, std::string_view name, std::string_view track);
  /// Counter sample: one value series per name.
  void counter(double t, std::string_view name, double value);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  friend class TraceWriter;
  struct Ev {
    char ph;        // 'X' span, 'i' instant, 'C' counter
    double t0 = 0;  // sim seconds
    double t1 = 0;  // span end (ph == 'X')
    double value = 0;  // counter value (ph == 'C')
    std::string name;
    std::string track;  // thread-equivalent; empty for counters
  };
  [[nodiscard]] bool admit() noexcept {
    if (events_.size() >= cap_) {
      ++dropped_;
      return false;
    }
    return true;
  }

  std::size_t cap_;
  std::size_t dropped_ = 0;
  std::vector<Ev> events_;
};

class TraceWriter {
 public:
  /// Takes ownership of a finished cell's trace. Thread-safe: BatchRunner
  /// workers absorb concurrently.
  void absorb(std::size_t cell, std::string cell_name, CellTrace&& trace);

  /// Total events dropped across absorbed cells (buffer caps).
  [[nodiscard]] std::size_t dropped() const;

  /// Writes the Trace Event Format JSON file; returns false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  struct CellBlock {
    std::size_t cell;
    std::string name;
    CellTrace trace;
  };
  mutable std::mutex mu_;
  std::vector<CellBlock> cells_;
};

}  // namespace ebrc::obs
