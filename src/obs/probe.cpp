#include "obs/probe.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace ebrc::obs {

Probe::Probe(sim::Simulator& sim, const Registry& reg, double interval_s, std::size_t capacity,
             double stop_at, CellTrace* trace)
    : sim_(sim),
      reg_(reg),
      interval_s_(interval_s),
      start_s_(sim.now() + interval_s),
      stop_at_(stop_at),
      trace_(trace) {
  if (!(interval_s > 0.0)) throw std::invalid_argument("Probe: interval must be > 0");
  if (capacity == 0) throw std::invalid_argument("Probe: capacity must be >= 1");
  series_.reserve(reg.gauge_count());
  for (std::size_t i = 0; i < reg.gauge_count(); ++i) {
    Series s;
    s.name = reg.gauge_name(i);
    s.interval_s = interval_s;
    s.start_s = start_s_;
    s.cap = capacity;
    s.values.resize(capacity, 0.0);
    series_.push_back(std::move(s));
  }
}

void Probe::sample() {
  const double now = sim_.now();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const double v = reg_.sample_gauge(i, now);
    series_[i].push(v);
    if (trace_ != nullptr) trace_->counter(now, series_[i].name, v);
  }
  ++samples_;
}

}  // namespace ebrc::obs
