// Experiment scenarios: the knobs of the paper's ns-2, lab, and Internet
// setups, expressed against our simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/queue.hpp"
#include "tcp/tcp_connection.hpp"
#include "tfrc/tfrc_connection.hpp"
#include "workload/workload_config.hpp"

namespace ebrc::testbed {

enum class QueueKind { kDropTail, kRed };

struct Scenario {
  std::string name = "scenario";

  // Bottleneck.
  double bottleneck_bps = 15e6;       // the paper's ns-2 link
  double base_rtt_s = 0.050;          // two-way propagation (no queueing)
  QueueKind queue = QueueKind::kRed;
  std::size_t droptail_buffer = 100;  // packets (DropTail only)
  std::optional<net::RedParams> red;  // derived from BDP when unset

  // Flow population.
  int n_tfrc = 1;
  int n_tcp = 1;
  int n_poisson = 0;            // Poisson probe flows (Figure 7's p'')
  double poisson_rate_pps = 8.0;

  // Background (cross) traffic for the WAN emulations.
  int n_onoff = 0;
  double onoff_peak_pps = 200.0;
  double onoff_mean_on_s = 0.5;
  double onoff_mean_off_s = 0.5;

  // Protocol configuration.
  tfrc::TfrcConfig tfrc{};
  tcp::TcpConfig tcp{};

  // Dynamic workload: flow churn layered on top of (or replacing) the static
  // population above. Default-disabled; a disabled block is invisible to
  // serialization and the cache fingerprint, so pre-workload scenario files
  // parse and fingerprint unchanged.
  workload::WorkloadConfig workload{};

  // Measurement window.
  double duration_s = 300.0;  // total simulated time
  double warmup_s = 50.0;     // discarded prefix (the paper truncates 200 s)
  std::uint64_t seed = 1;

  /// Fractional spread of per-flow RTTs around base_rtt_s (0 = identical).
  double rtt_spread = 0.1;
};

/// The paper's ns-2 setup (Section V-A.2): 15 Mb/s RED bottleneck, RTT about
/// 50 ms, RED thresholds from the bandwidth-delay product.
[[nodiscard]] Scenario ns2_scenario(int n_tfrc, int n_tcp, std::size_t history_length,
                                    std::uint64_t seed);

/// The paper's lab setup (Section V-A.3): 10 Mb/s bottleneck, 25 ms added
/// propagation each way, DropTail(64|100) or RED, PFTK-standard, L = 8,
/// comprehensive control disabled.
[[nodiscard]] Scenario lab_scenario(QueueKind queue, std::size_t buffer_packets, int n_each,
                                    std::uint64_t seed);

/// A flow-churn scenario on the ns-2 bottleneck: NO static flows; finite
/// transfers (mean 100 packets) arrive as a Poisson process whose rate is
/// set so the offered load is `offered_load` × the bottleneck's packet
/// capacity, with a `tfrc_fraction` : (1 − tfrc_fraction) TFRC : TCP mix and
/// a 128-slot pool. offered_load > 1 drives the pool to saturation — the
/// many-flows regime.
[[nodiscard]] Scenario churn_scenario(double offered_load, double tfrc_fraction,
                                      std::uint64_t seed);

}  // namespace ebrc::testbed
