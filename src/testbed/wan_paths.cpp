#include "testbed/wan_paths.hpp"

#include <cmath>

namespace ebrc::testbed {

std::vector<WanPath> table1_paths() {
  // Access class and RTT from Table I; background load tuned so the ambient
  // loss-event rates land in the per-path ranges of Figures 12-15
  // (INRIA ~4e-3, KTH ~2e-4, UMASS ~1e-3, UMELB ~4e-3).
  return {
      WanPath{"INRIA", 20e6, 0.030, 0.55},
      WanPath{"UMASS", 20e6, 0.097, 0.45},
      WanPath{"KTH", 6e6, 0.046, 0.18},
      WanPath{"UMELB", 6e6, 0.350, 0.80},
  };
}

Scenario wan_scenario(const WanPath& path, int n_each, std::uint64_t seed) {
  Scenario s;
  s.name = "wan-" + path.name + "-n" + std::to_string(n_each);
  s.bottleneck_bps = path.access_bps;
  s.base_rtt_s = path.base_rtt_s;
  s.queue = QueueKind::kDropTail;
  // A WAN router buffer on the order of the bandwidth-delay product.
  const double bdp_packets = path.access_bps / 8.0 * std::max(0.05, path.base_rtt_s) / 1000.0;
  s.droptail_buffer = static_cast<std::size_t>(std::max(30.0, bdp_packets));
  s.n_tfrc = n_each;
  s.n_tcp = n_each;
  s.n_poisson = 0;
  s.tfrc.history_length = 8;
  s.tfrc.comprehensive = true;  // the Internet runs enabled it
  s.tfrc.formula = "pftk";
  s.rtt_spread = 0.15;

  // Cross traffic: enough on/off sources to hold the target average load,
  // each bursting at ~1/8 of the bottleneck. Long-RTT paths (UMELB) get
  // burstier sources: their loss arrives in batches, which is also what
  // produced the negative covariance the paper observed there (Figure 10).
  const double bottleneck_pps = path.access_bps / 8.0 / 1000.0;
  s.n_onoff = 8;
  s.onoff_mean_on_s = path.base_rtt_s > 0.2 ? 1.5 : 0.5;
  s.onoff_mean_off_s = s.onoff_mean_on_s;
  s.onoff_peak_pps = 2.0 * path.background_load * bottleneck_pps / s.n_onoff;

  s.duration_s = 240.0;
  s.warmup_s = 40.0;
  s.seed = seed;
  return s;
}

}  // namespace ebrc::testbed
