#include "testbed/scenario.hpp"

#include <cstdio>

namespace ebrc::testbed {

Scenario ns2_scenario(int n_tfrc, int n_tcp, std::size_t history_length, std::uint64_t seed) {
  Scenario s;
  s.name = "ns2-red-15mbps";
  s.bottleneck_bps = 15e6;
  s.base_rtt_s = 0.050;
  s.queue = QueueKind::kRed;
  s.n_tfrc = n_tfrc;
  s.n_tcp = n_tcp;
  s.tfrc.history_length = history_length;
  s.tfrc.comprehensive = true;   // ns-2 TFRC implements the comprehensive law
  s.tfrc.formula = "pftk";       // PFTK-standard, as in the experiments
  s.seed = seed;
  return s;
}

Scenario lab_scenario(QueueKind queue, std::size_t buffer_packets, int n_each,
                      std::uint64_t seed) {
  Scenario s;
  s.name = queue == QueueKind::kDropTail
               ? "lab-droptail-" + std::to_string(buffer_packets)
               : "lab-red";
  s.bottleneck_bps = 10e6;   // the 10 Mb/s hub
  s.base_rtt_s = 0.050;      // NIST Net added 25 ms each way
  s.queue = queue;
  s.droptail_buffer = buffer_packets;
  if (queue == QueueKind::kRed) {
    // Matches the lab: buffer 5/2 U, thresholds 3/20 U and 5/4 U for
    // U = 62500 B (in 1000-byte packets), weight 0.002, max_p 1/10.
    net::RedParams prm;
    prm.buffer_packets = 156;  // 2.5 * 62.5
    prm.min_th = 9.375;        // 0.15 * 62.5
    prm.max_th = 78.125;       // 1.25 * 62.5
    prm.max_p = 0.10;
    prm.weight = 0.002;
    prm.gentle = false;        // not available in the lab's tc module
    prm.mean_packet_time = 1000.0 * 8.0 / 10e6;
    s.red = prm;
  }
  s.n_tfrc = n_each;
  s.n_tcp = n_each;
  s.tfrc.history_length = 8;
  s.tfrc.comprehensive = false;  // disabled in the lab experiments
  s.tfrc.formula = "pftk";
  s.seed = seed;
  return s;
}

Scenario churn_scenario(double offered_load, double tfrc_fraction, std::uint64_t seed) {
  Scenario s;
  char name[64];
  std::snprintf(name, sizeof(name), "churn-rho%.2f-tfrc%.2f", offered_load, tfrc_fraction);
  s.name = name;
  s.bottleneck_bps = 15e6;
  s.base_rtt_s = 0.050;
  s.queue = QueueKind::kRed;
  s.n_tfrc = 0;  // the population is entirely dynamic
  s.n_tcp = 0;
  s.tfrc.history_length = 8;
  s.tfrc.formula = "pftk";
  s.workload.mean_size_pkts = 100.0;
  // Offered load rho = lambda * E[S] / C with C the bottleneck's packet
  // capacity: lambda = rho * C / E[S].
  const double capacity_pps = s.bottleneck_bps / (8.0 * s.tfrc.packet_bytes);
  s.workload.arrival_rate_per_s =
      offered_load * capacity_pps / s.workload.mean_size_pkts;
  s.workload.tfrc_fraction = tfrc_fraction;
  s.workload.max_concurrent = 128;
  s.duration_s = 120.0;
  s.warmup_s = 20.0;
  s.seed = seed;
  return s;
}

}  // namespace ebrc::testbed
