#include "testbed/result_store.hpp"

#include <unistd.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "testbed/fault_injection.hpp"
#include "testbed/scenario_io.hpp"
#include "util/binary_io.hpp"

namespace ebrc::testbed {

namespace {

// "EBRCRES1" little-endian.
constexpr std::uint64_t kMagic = 0x3153455243524245ull;
constexpr std::uint64_t kFormatVersion = 1;

// "EBRCIDX1" little-endian: the index sidecar's magic.
constexpr std::uint64_t kIndexMagic = 0x3158444943524245ull;
constexpr std::uint64_t kIndexVersion = 1;
constexpr std::size_t kIndexHeaderBytes = 2 * 8;
constexpr std::size_t kIndexRecordBytes = 4 * 8;  // fp, seed, salt, checksum

[[nodiscard]] std::uint64_t index_record_checksum(std::uint64_t fp, std::uint64_t seed,
                                                  std::uint64_t salt) {
  util::Fnv1a h;
  h.u64(fp);
  h.u64(seed);
  h.u64(salt);
  return h.digest();
}

[[nodiscard]] std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return s;
}

/// Inverse of hex16; false on anything that is not exactly 16 hex digits.
[[nodiscard]] bool parse_hex16(std::string_view s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

[[nodiscard]] std::uint64_t payload_hash(std::string_view payload) {
  util::Fnv1a h;
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

[[nodiscard]] std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buf).str();
}

struct Header {
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint64_t salt = 0;
  std::string_view payload;
};

/// Splits and structurally validates a raw file; nullopt on any defect.
[[nodiscard]] std::optional<Header> open_envelope(std::string_view bytes) {
  util::ByteReader r(bytes);
  if (r.u64() != kMagic) return std::nullopt;
  if (r.u64() != kFormatVersion) return std::nullopt;
  Header h;
  h.fingerprint = r.u64();
  h.seed = r.u64();
  h.salt = r.u64();
  const std::uint64_t hash = r.u64();
  const std::uint64_t len = r.u64();
  if (!r.ok()) return std::nullopt;
  constexpr std::size_t kHeaderBytes = 7 * 8;
  if (bytes.size() != kHeaderBytes + len) return std::nullopt;
  h.payload = bytes.substr(kHeaderBytes);
  if (payload_hash(h.payload) != hash) return std::nullopt;
  return h;
}

}  // namespace

std::string encode_result(const ExperimentResult& r) {
  util::ByteWriter w;
  w.str(r.scenario_name);
  w.u64(r.flows.size());
  for (const auto& f : r.flows) {
    w.str(f.kind);
    w.i64(f.flow_id);
    w.f64(f.throughput_pps);
    w.f64(f.p);
    w.f64(f.mean_rtt_s);
    w.f64(f.formula_rate);
    w.f64(f.normalized);
    w.f64(f.cov_theta_thetahat);
    w.f64(f.normalized_cov);
    w.u64(f.loss_events);
  }
  w.f64(r.tfrc_throughput);
  w.f64(r.tcp_throughput);
  w.f64(r.tfrc_p);
  w.f64(r.tcp_p);
  w.f64(r.poisson_p);
  w.f64(r.tfrc_rtt);
  w.f64(r.tcp_rtt);
  w.f64(r.bottleneck_utilization);
  w.f64(r.breakdown.conservativeness);
  w.f64(r.breakdown.loss_rate_ratio);
  w.f64(r.breakdown.rtt_ratio);
  w.f64(r.breakdown.tcp_formula_ratio);
  w.f64(r.breakdown.friendliness);
  w.u64(r.workload_active ? 1 : 0);
  const auto& wl = r.workload;
  w.u64(wl.arrivals);
  w.u64(wl.completions);
  w.u64(wl.rejections);
  w.f64(wl.mean_flows);
  w.f64(wl.mean_flows_tfrc);
  w.f64(wl.mean_flows_tcp);
  w.u64(wl.peak_flows);
  w.f64(wl.tfrc_completion_s);
  w.f64(wl.tcp_completion_s);
  w.f64(wl.tfrc_completion_cov);
  w.f64(wl.tcp_completion_cov);
  w.f64(wl.tfrc_goodput_pps);
  w.f64(wl.tcp_goodput_pps);
  w.f64(wl.tfrc_share);
  w.f64(wl.tfrc_p);
  w.f64(wl.tcp_p);
  w.f64(wl.mean_flows_aimd);
  w.f64(wl.mean_flows_rcp);
  w.f64(wl.aimd_completion_s);
  w.f64(wl.rcp_completion_s);
  w.f64(wl.aimd_completion_cov);
  w.f64(wl.rcp_completion_cov);
  w.f64(wl.aimd_goodput_pps);
  w.f64(wl.rcp_goodput_pps);
  w.f64(wl.aimd_p);
  w.f64(wl.rcp_p);
  w.f64(wl.qdelay_mean_s);
  // PR 10: the deterministic obs snapshot (probe series are deliberately NOT
  // encoded — a cache hit has no simulator to sample).
  w.u64(r.obs.size());
  for (const auto& [name, value] : r.obs) {
    w.str(name);
    w.f64(value);
  }
  return w.take();
}

std::optional<ExperimentResult> decode_result(std::string_view payload) {
  util::ByteReader r(payload);
  ExperimentResult out;
  out.scenario_name = r.str();
  const std::uint64_t n_flows = r.u64();
  for (std::uint64_t i = 0; i < n_flows && r.ok(); ++i) {
    FlowStats f;
    f.kind = r.str();
    f.flow_id = static_cast<int>(r.i64());
    f.throughput_pps = r.f64();
    f.p = r.f64();
    f.mean_rtt_s = r.f64();
    f.formula_rate = r.f64();
    f.normalized = r.f64();
    f.cov_theta_thetahat = r.f64();
    f.normalized_cov = r.f64();
    f.loss_events = r.u64();
    out.flows.push_back(std::move(f));
  }
  out.tfrc_throughput = r.f64();
  out.tcp_throughput = r.f64();
  out.tfrc_p = r.f64();
  out.tcp_p = r.f64();
  out.poisson_p = r.f64();
  out.tfrc_rtt = r.f64();
  out.tcp_rtt = r.f64();
  out.bottleneck_utilization = r.f64();
  out.breakdown.conservativeness = r.f64();
  out.breakdown.loss_rate_ratio = r.f64();
  out.breakdown.rtt_ratio = r.f64();
  out.breakdown.tcp_formula_ratio = r.f64();
  out.breakdown.friendliness = r.f64();
  out.workload_active = r.u64() != 0;
  auto& wl = out.workload;
  wl.arrivals = r.u64();
  wl.completions = r.u64();
  wl.rejections = r.u64();
  wl.mean_flows = r.f64();
  wl.mean_flows_tfrc = r.f64();
  wl.mean_flows_tcp = r.f64();
  wl.peak_flows = r.u64();
  wl.tfrc_completion_s = r.f64();
  wl.tcp_completion_s = r.f64();
  wl.tfrc_completion_cov = r.f64();
  wl.tcp_completion_cov = r.f64();
  wl.tfrc_goodput_pps = r.f64();
  wl.tcp_goodput_pps = r.f64();
  wl.tfrc_share = r.f64();
  wl.tfrc_p = r.f64();
  wl.tcp_p = r.f64();
  wl.mean_flows_aimd = r.f64();
  wl.mean_flows_rcp = r.f64();
  wl.aimd_completion_s = r.f64();
  wl.rcp_completion_s = r.f64();
  wl.aimd_completion_cov = r.f64();
  wl.rcp_completion_cov = r.f64();
  wl.aimd_goodput_pps = r.f64();
  wl.rcp_goodput_pps = r.f64();
  wl.aimd_p = r.f64();
  wl.rcp_p = r.f64();
  wl.qdelay_mean_s = r.f64();
  const std::uint64_t n_obs = r.u64();
  for (std::uint64_t i = 0; i < n_obs && r.ok(); ++i) {
    std::string name = r.str();
    const double value = r.f64();
    out.obs.emplace_back(std::move(name), value);
  }
  if (!r.ok() || !r.exhausted() || out.flows.size() != n_flows ||
      out.obs.size() != n_obs) {
    return std::nullopt;
  }
  return out;
}

ResultStore::ResultStore(std::filesystem::path root, std::uint64_t salt)
    : root_(std::move(root)), salt_(salt) {
  std::filesystem::create_directories(root_);
  load_or_rebuild_index();
}

std::filesystem::path ResultStore::index_path() const { return root_ / "INDEX.ebrcidx"; }

void ResultStore::load_or_rebuild_index() {
  const auto bytes = read_file(index_path());
  if (!bytes) {
    rebuild_index();
    return;
  }
  // Header, then whole records only; a short/foreign file, a bad checksum,
  // or a torn trailing record all abandon the file and rebuild from the
  // entry filenames — the index is never trusted past its first defect.
  util::ByteReader r(*bytes);
  if (r.u64() != kIndexMagic || r.u64() != kIndexVersion || !r.ok() ||
      (bytes->size() - kIndexHeaderBytes) % kIndexRecordBytes != 0) {
    rebuild_index();
    return;
  }
  std::unordered_set<IndexKey, IndexKeyHash> keys;
  const std::size_t records = (bytes->size() - kIndexHeaderBytes) / kIndexRecordBytes;
  for (std::size_t i = 0; i < records; ++i) {
    const std::uint64_t fp = r.u64();
    const std::uint64_t seed = r.u64();
    const std::uint64_t salt = r.u64();
    const std::uint64_t checksum = r.u64();
    if (!r.ok() || checksum != index_record_checksum(fp, seed, salt)) {
      rebuild_index();
      return;
    }
    if (salt == salt_) keys.insert(IndexKey{fp, seed});
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  index_ = std::move(keys);
}

std::size_t ResultStore::rebuild_index() {
  // Presence is recoverable from the filenames alone — <fp>-<seed>-<salt> is
  // the full key — so the rebuild is one directory walk, no payload reads.
  // Records for ALL salts are preserved; only our salt's keys go in memory.
  struct Record {
    std::uint64_t fp, seed, salt;
  };
  std::vector<Record> records;
  std::unordered_set<IndexKey, IndexKeyHash> keys;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const auto& p = entry.path();
    if (p.extension() != result_file_extension()) continue;
    const std::string stem = p.stem().string();
    std::uint64_t fp = 0, seed = 0, salt = 0;
    if (stem.size() != 16 + 1 + 16 + 1 + 16 || stem[16] != '-' || stem[33] != '-' ||
        !parse_hex16(std::string_view(stem).substr(0, 16), fp) ||
        !parse_hex16(std::string_view(stem).substr(17, 16), seed) ||
        !parse_hex16(std::string_view(stem).substr(34, 16), salt)) {
      continue;  // foreign file wearing our extension; not an entry
    }
    records.push_back(Record{fp, seed, salt});
    if (salt == salt_) keys.insert(IndexKey{fp, seed});
  }

  util::ByteWriter w;
  w.u64(kIndexMagic);
  w.u64(kIndexVersion);
  for (const auto& rec : records) {
    w.u64(rec.fp);
    w.u64(rec.seed);
    w.u64(rec.salt);
    w.u64(index_record_checksum(rec.fp, rec.seed, rec.salt));
  }
  // Temp + rename, like the entries themselves: a crashed rebuild leaves the
  // old index (or none) intact, never a half-written one.
  const auto temp = index_path().concat(".tmp" + std::to_string(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ResultStore: cannot create " + temp.string());
    out << w.bytes();
    if (!out.flush()) {
      throw std::runtime_error("ResultStore: write failed for " + temp.string());
    }
  }
  std::filesystem::rename(temp, index_path());

  std::lock_guard<std::mutex> lock(index_mu_);
  index_ = std::move(keys);
  return records.size();
}

void ResultStore::append_index_record(std::uint64_t fp, std::uint64_t seed) const {
  util::ByteWriter w;
  w.u64(fp);
  w.u64(seed);
  w.u64(salt_);
  w.u64(index_record_checksum(fp, seed, salt_));
  std::string record = std::move(w).take();
  if (fault::fire(fault::Kind::kTornIndexRecord, append_seq_.fetch_add(1))) {
    record.resize(record.size() / 2);  // crash mid-append: prefix only
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  {
    std::ofstream out(index_path(), std::ios::binary | std::ios::app);
    out << record;
    // An append failure is not fatal: the in-memory set stays correct for
    // this process and the next reader's checksum walk triggers a rebuild.
  }
  index_.insert(IndexKey{fp, seed});
}

bool ResultStore::index_contains(std::uint64_t fp, std::uint64_t seed) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_.count(IndexKey{fp, seed}) != 0;
}

bool ResultStore::probe(const Scenario& s) const { return index_contains(fingerprint(s), s.seed); }

void ResultStore::admit(const Scenario& s) const {
  const IndexKey key{fingerprint(s), s.seed};
  std::lock_guard<std::mutex> lock(index_mu_);
  index_.insert(key);
}

std::filesystem::path ResultStore::path_for(std::uint64_t fp, std::uint64_t seed) const {
  const std::string name =
      hex16(fp) + "-" + hex16(seed) + "-" + hex16(salt_) + std::string(result_file_extension());
  return root_ / hex16(fp).substr(0, 2) / name;
}

std::filesystem::path ResultStore::path_for(const Scenario& s) const {
  return path_for(fingerprint(s), s.seed);
}

std::optional<ExperimentResult> ResultStore::load(const Scenario& s) const {
  const std::uint64_t fp = fingerprint(s);
  if (!index_contains(fp, s.seed)) {
    // The index answers outright misses with zero filesystem operations —
    // this is what keeps a cold probe of a million-cell sweep O(1) per cell
    // instead of a million failed stats.
    index_filtered_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto path = path_for(fp, s.seed);
  fs_probes_.fetch_add(1, std::memory_order_relaxed);
  const auto bytes = read_file(path);
  if (!bytes) {
    // Stale index verdict: the entry was quarantined or deleted since the
    // index was read. Degrades to an ordinary miss.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto quarantine = [&] {
    // A file that exists but does not verify is a damaged entry, not a miss:
    // count it, move it aside for forensics (the re-simulation then stores a
    // fresh entry instead of silently overwriting the evidence), and say so
    // on stderr — stdout stays bit-comparable.
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto dest = path;
    dest += quarantine_suffix();
    std::error_code ec;
    std::filesystem::rename(path, dest, ec);
    if (!ec) {
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      std::cerr << "[cache] quarantined " << path.string() << "\n";
    }
  };
  const auto envelope = open_envelope(*bytes);
  if (!envelope || envelope->fingerprint != fp || envelope->seed != s.seed ||
      envelope->salt != salt_) {
    quarantine();
    return std::nullopt;
  }
  auto result = decode_result(envelope->payload);
  if (!result) {
    quarantine();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void ResultStore::store(const Scenario& s, const ExperimentResult& r) const {
  const std::string payload = encode_result(r);
  const std::uint64_t fp = fingerprint(s);
  util::ByteWriter w;
  w.u64(kMagic);
  w.u64(kFormatVersion);
  w.u64(fp);
  w.u64(s.seed);
  w.u64(salt_);
  w.u64(payload_hash(payload));
  w.u64(payload.size());
  const auto path = path_for(fp, s.seed);
  std::filesystem::create_directories(path.parent_path());

  // Temp name unique across threads (counter) AND processes (pid): shards
  // sharing one cache directory may race on the same key, and each writer
  // must own its in-flight bytes until the atomic POSIX rename.
  static std::atomic<std::uint64_t> temp_counter{0};
  const auto temp =
      path.parent_path() /
      (path.filename().string() + ".tmp" + std::to_string(::getpid()) + "." +
       std::to_string(temp_counter.fetch_add(1)));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ResultStore: cannot create " + temp.string());
    out << w.bytes() << payload;
    if (!out.flush()) {
      throw std::runtime_error("ResultStore: write failed for " + temp.string());
    }
  }
  std::filesystem::rename(temp, path);
  if (fault::fire(fault::Kind::kTornCacheWrite, write_seq_.fetch_add(1))) {
    // Post-crash corruption model: the rename landed but the data did not.
    std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  }
  append_index_record(fp, s.seed);
  stored_.fetch_add(1, std::memory_order_relaxed);
}

ResultStore::Counters ResultStore::counters() const noexcept {
  return Counters{hits_.load(std::memory_order_relaxed),
                  misses_.load(std::memory_order_relaxed),
                  corrupt_.load(std::memory_order_relaxed),
                  stored_.load(std::memory_order_relaxed),
                  quarantined_.load(std::memory_order_relaxed),
                  index_filtered_.load(std::memory_order_relaxed),
                  fs_probes_.load(std::memory_order_relaxed)};
}

bool validate_result_file(const std::filesystem::path& path) {
  const auto bytes = read_file(path);
  if (!bytes) return false;
  const auto envelope = open_envelope(*bytes);
  return envelope && decode_result(envelope->payload).has_value();
}

std::string_view result_file_extension() { return ".ebrcres"; }

std::string_view quarantine_suffix() { return ".corrupt"; }

}  // namespace ebrc::testbed
