#include "testbed/result_store.hpp"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "testbed/scenario_io.hpp"
#include "util/binary_io.hpp"

namespace ebrc::testbed {

namespace {

// "EBRCRES1" little-endian.
constexpr std::uint64_t kMagic = 0x3153455243524245ull;
constexpr std::uint64_t kFormatVersion = 1;

[[nodiscard]] std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return s;
}

[[nodiscard]] std::uint64_t payload_hash(std::string_view payload) {
  util::Fnv1a h;
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

[[nodiscard]] std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buf).str();
}

struct Header {
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint64_t salt = 0;
  std::string_view payload;
};

/// Splits and structurally validates a raw file; nullopt on any defect.
[[nodiscard]] std::optional<Header> open_envelope(std::string_view bytes) {
  util::ByteReader r(bytes);
  if (r.u64() != kMagic) return std::nullopt;
  if (r.u64() != kFormatVersion) return std::nullopt;
  Header h;
  h.fingerprint = r.u64();
  h.seed = r.u64();
  h.salt = r.u64();
  const std::uint64_t hash = r.u64();
  const std::uint64_t len = r.u64();
  if (!r.ok()) return std::nullopt;
  constexpr std::size_t kHeaderBytes = 7 * 8;
  if (bytes.size() != kHeaderBytes + len) return std::nullopt;
  h.payload = bytes.substr(kHeaderBytes);
  if (payload_hash(h.payload) != hash) return std::nullopt;
  return h;
}

}  // namespace

std::string encode_result(const ExperimentResult& r) {
  util::ByteWriter w;
  w.str(r.scenario_name);
  w.u64(r.flows.size());
  for (const auto& f : r.flows) {
    w.str(f.kind);
    w.i64(f.flow_id);
    w.f64(f.throughput_pps);
    w.f64(f.p);
    w.f64(f.mean_rtt_s);
    w.f64(f.formula_rate);
    w.f64(f.normalized);
    w.f64(f.cov_theta_thetahat);
    w.f64(f.normalized_cov);
    w.u64(f.loss_events);
  }
  w.f64(r.tfrc_throughput);
  w.f64(r.tcp_throughput);
  w.f64(r.tfrc_p);
  w.f64(r.tcp_p);
  w.f64(r.poisson_p);
  w.f64(r.tfrc_rtt);
  w.f64(r.tcp_rtt);
  w.f64(r.bottleneck_utilization);
  w.f64(r.breakdown.conservativeness);
  w.f64(r.breakdown.loss_rate_ratio);
  w.f64(r.breakdown.rtt_ratio);
  w.f64(r.breakdown.tcp_formula_ratio);
  w.f64(r.breakdown.friendliness);
  w.u64(r.workload_active ? 1 : 0);
  const auto& wl = r.workload;
  w.u64(wl.arrivals);
  w.u64(wl.completions);
  w.u64(wl.rejections);
  w.f64(wl.mean_flows);
  w.f64(wl.mean_flows_tfrc);
  w.f64(wl.mean_flows_tcp);
  w.u64(wl.peak_flows);
  w.f64(wl.tfrc_completion_s);
  w.f64(wl.tcp_completion_s);
  w.f64(wl.tfrc_completion_cov);
  w.f64(wl.tcp_completion_cov);
  w.f64(wl.tfrc_goodput_pps);
  w.f64(wl.tcp_goodput_pps);
  w.f64(wl.tfrc_share);
  w.f64(wl.tfrc_p);
  w.f64(wl.tcp_p);
  return w.take();
}

std::optional<ExperimentResult> decode_result(std::string_view payload) {
  util::ByteReader r(payload);
  ExperimentResult out;
  out.scenario_name = r.str();
  const std::uint64_t n_flows = r.u64();
  for (std::uint64_t i = 0; i < n_flows && r.ok(); ++i) {
    FlowStats f;
    f.kind = r.str();
    f.flow_id = static_cast<int>(r.i64());
    f.throughput_pps = r.f64();
    f.p = r.f64();
    f.mean_rtt_s = r.f64();
    f.formula_rate = r.f64();
    f.normalized = r.f64();
    f.cov_theta_thetahat = r.f64();
    f.normalized_cov = r.f64();
    f.loss_events = r.u64();
    out.flows.push_back(std::move(f));
  }
  out.tfrc_throughput = r.f64();
  out.tcp_throughput = r.f64();
  out.tfrc_p = r.f64();
  out.tcp_p = r.f64();
  out.poisson_p = r.f64();
  out.tfrc_rtt = r.f64();
  out.tcp_rtt = r.f64();
  out.bottleneck_utilization = r.f64();
  out.breakdown.conservativeness = r.f64();
  out.breakdown.loss_rate_ratio = r.f64();
  out.breakdown.rtt_ratio = r.f64();
  out.breakdown.tcp_formula_ratio = r.f64();
  out.breakdown.friendliness = r.f64();
  out.workload_active = r.u64() != 0;
  auto& wl = out.workload;
  wl.arrivals = r.u64();
  wl.completions = r.u64();
  wl.rejections = r.u64();
  wl.mean_flows = r.f64();
  wl.mean_flows_tfrc = r.f64();
  wl.mean_flows_tcp = r.f64();
  wl.peak_flows = r.u64();
  wl.tfrc_completion_s = r.f64();
  wl.tcp_completion_s = r.f64();
  wl.tfrc_completion_cov = r.f64();
  wl.tcp_completion_cov = r.f64();
  wl.tfrc_goodput_pps = r.f64();
  wl.tcp_goodput_pps = r.f64();
  wl.tfrc_share = r.f64();
  wl.tfrc_p = r.f64();
  wl.tcp_p = r.f64();
  if (!r.ok() || !r.exhausted() || out.flows.size() != n_flows) return std::nullopt;
  return out;
}

ResultStore::ResultStore(std::filesystem::path root, std::uint64_t salt)
    : root_(std::move(root)), salt_(salt) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path ResultStore::path_for(std::uint64_t fp, std::uint64_t seed) const {
  const std::string name =
      hex16(fp) + "-" + hex16(seed) + "-" + hex16(salt_) + std::string(result_file_extension());
  return root_ / hex16(fp).substr(0, 2) / name;
}

std::filesystem::path ResultStore::path_for(const Scenario& s) const {
  return path_for(fingerprint(s), s.seed);
}

std::optional<ExperimentResult> ResultStore::load(const Scenario& s) const {
  const std::uint64_t fp = fingerprint(s);
  const auto path = path_for(fp, s.seed);
  const auto bytes = read_file(path);
  if (!bytes) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto envelope = open_envelope(*bytes);
  if (!envelope || envelope->fingerprint != fp || envelope->seed != s.seed ||
      envelope->salt != salt_) {
    // A file that exists but does not verify is a damaged entry, not a miss:
    // count it separately so operators can see a sick cache.
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  auto result = decode_result(envelope->payload);
  if (!result) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void ResultStore::store(const Scenario& s, const ExperimentResult& r) const {
  const std::string payload = encode_result(r);
  const std::uint64_t fp = fingerprint(s);
  util::ByteWriter w;
  w.u64(kMagic);
  w.u64(kFormatVersion);
  w.u64(fp);
  w.u64(s.seed);
  w.u64(salt_);
  w.u64(payload_hash(payload));
  w.u64(payload.size());
  const auto path = path_for(fp, s.seed);
  std::filesystem::create_directories(path.parent_path());

  // Temp name unique across threads (counter) AND processes (pid): shards
  // sharing one cache directory may race on the same key, and each writer
  // must own its in-flight bytes until the atomic POSIX rename.
  static std::atomic<std::uint64_t> temp_counter{0};
  const auto temp =
      path.parent_path() /
      (path.filename().string() + ".tmp" + std::to_string(::getpid()) + "." +
       std::to_string(temp_counter.fetch_add(1)));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ResultStore: cannot create " + temp.string());
    out << w.bytes() << payload;
    if (!out.flush()) {
      throw std::runtime_error("ResultStore: write failed for " + temp.string());
    }
  }
  std::filesystem::rename(temp, path);
  stored_.fetch_add(1, std::memory_order_relaxed);
}

ResultStore::Counters ResultStore::counters() const noexcept {
  return Counters{hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
                  corrupt_.load(std::memory_order_relaxed),
                  stored_.load(std::memory_order_relaxed)};
}

bool validate_result_file(const std::filesystem::path& path) {
  const auto bytes = read_file(path);
  if (!bytes) return false;
  const auto envelope = open_envelope(*bytes);
  return envelope && decode_result(envelope->payload).has_value();
}

std::string_view result_file_extension() { return ".ebrcres"; }

}  // namespace ebrc::testbed
