#include "testbed/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <stdexcept>

#include "core/conditions.hpp"
#include "core/weights.hpp"
#include "model/throughput_function.hpp"
#include "net/dumbbell.hpp"
#include "obs/run_obs.hpp"
#include "obs/trace.hpp"
#include "net/probe_senders.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "tfrc/tfrc_connection.hpp"
#include "util/math.hpp"

namespace ebrc::testbed {
namespace {

constexpr double kSharedProp = 0.001;  // s, propagation of the shared segment

struct RecorderSnapshot {
  std::uint64_t packets = 0;
  std::uint64_t losses = 0;
  std::uint64_t events = 0;
  std::size_t intervals = 0;
};

RecorderSnapshot snap(const stats::LossEventRecorder& rec) {
  return {rec.packets(), rec.losses(), rec.events(), rec.intervals_packets().size()};
}

/// Loss-event rate over the measurement window: new events / new packets
/// (arrived + lost), the empirical Eq. (1).
double delta_loss_rate(const stats::LossEventRecorder& rec, const RecorderSnapshot& s0) {
  const auto packets = (rec.packets() - s0.packets) + (rec.losses() - s0.losses);
  const auto events = rec.events() - s0.events;
  if (packets == 0 || events == 0) return 0.0;
  return static_cast<double>(events) / static_cast<double>(packets);
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

net::Queue make_queue(const Scenario& sc) {
  if (sc.queue == QueueKind::kDropTail) {
    return net::Queue::drop_tail(sc.droptail_buffer);
  }
  const net::RedParams prm = sc.red ? *sc.red
                                    : net::red_params_for_bdp(sc.bottleneck_bps, sc.base_rtt_s,
                                                              sc.tfrc.packet_bytes);
  return net::Queue::red(prm, sim::hash_seed(sc.seed, "red"));
}

/// Upper bound on how long a retired dynamic flow's packets can stay in the
/// network: worst-case bottleneck queueing plus a full (spread-inflated)
/// round trip, plus the delayed-ACK timeout a receiver may sit on before
/// answering the transfer's final packet. The flow pool quarantines retired
/// slots this long before reusing them.
double drain_guard(const Scenario& sc) {
  double buffer_packets;
  if (sc.queue == QueueKind::kDropTail) {
    buffer_packets = static_cast<double>(sc.droptail_buffer);
  } else if (sc.red) {
    buffer_packets = static_cast<double>(sc.red->buffer_packets);
  } else {
    buffer_packets = static_cast<double>(
        net::red_params_for_bdp(sc.bottleneck_bps, sc.base_rtt_s, sc.tfrc.packet_bytes)
            .buffer_packets);
  }
  const double packet_time = 8.0 * sc.tfrc.packet_bytes / sc.bottleneck_bps;
  return sc.base_rtt_s * (1.0 + sc.rtt_spread) + buffer_packets * packet_time +
         sc.tcp.delayed_ack_timeout + 0.05;
}

}  // namespace

std::vector<const FlowStats*> ExperimentResult::of_kind(const std::string& kind) const {
  std::vector<const FlowStats*> out;
  for (const auto& f : flows) {
    if (f.kind == kind) out.push_back(&f);
  }
  return out;
}

ExperimentResult run_experiment(const Scenario& sc, const obs::RunObs* ro) {
  if (sc.duration_s <= sc.warmup_s) {
    throw std::invalid_argument("run_experiment: duration must exceed warmup");
  }
  sim::Simulator sim;
  sim::Rng rng(sim::hash_seed(sc.seed, "experiment"));

  net::Dumbbell net(sim, make_queue(sc), sc.bottleneck_bps, kSharedProp);

  // Per-flow RTT spread (the lab/Internet flows never share exactly one RTT).
  const auto flow_rtt = [&]() {
    const double jitter = sc.rtt_spread > 0 ? sc.rtt_spread * (rng.uniform() - 0.5) : 0.0;
    return sc.base_rtt_s * (1.0 + jitter);
  };
  const auto add_flow = [&](double rtt) {
    const double one_way = std::max(0.0, rtt / 2.0 - kSharedProp);
    return net.add_flow(one_way, rtt / 2.0);
  };

  // Connections live by value in deques (stable addresses for their wired
  // callbacks, no per-flow unique_ptr hop on the delivery path).
  std::deque<tfrc::TfrcConnection> tfrcs;
  std::deque<tcp::TcpConnection> tcps;
  std::deque<net::ProbeSender> probes;
  std::deque<net::OnOffSender> onoffs;

  for (int i = 0; i < sc.n_tfrc; ++i) {
    const double rtt = flow_rtt();
    const int id = add_flow(rtt);
    tfrcs.emplace_back(net, id, rtt, sc.tfrc).start(rng.uniform(0.0, 1.0));
  }
  for (int i = 0; i < sc.n_tcp; ++i) {
    const double rtt = flow_rtt();
    const int id = add_flow(rtt);
    tcps.emplace_back(net, id, rtt, sc.tcp).start(rng.uniform(0.0, 1.0));
  }
  for (int i = 0; i < sc.n_poisson; ++i) {
    const double rtt = flow_rtt();
    const int id = add_flow(rtt);
    probes
        .emplace_back(net, id, sc.poisson_rate_pps, sc.tfrc.packet_bytes,
                      net::ProbePattern::kPoisson, rtt,
                      sim::hash_seed(sc.seed, "poisson" + std::to_string(i)))
        .start(rng.uniform(0.0, 1.0));
  }
  for (int i = 0; i < sc.n_onoff; ++i) {
    const double rtt = flow_rtt();
    const int id = add_flow(rtt);
    onoffs
        .emplace_back(net, id, sc.onoff_peak_pps, sc.tfrc.packet_bytes, sc.onoff_mean_on_s,
                      sc.onoff_mean_off_s, sim::hash_seed(sc.seed, "onoff" + std::to_string(i)))
        .start(rng.uniform(0.0, 1.0));
  }

  // Dynamic workload: flow churn on the same bottleneck, after the static
  // population so flow-id assignment of existing scenarios is untouched.
  std::optional<workload::FlowManager> churn;
  if (workload::workload_enabled(sc.workload)) {
    // Router-assisted controller: the bottleneck computes the RCP fair share
    // and stamps it into passing data packets.
    if (sc.workload.controller == "rcp") {
      net::RcpParams rp;
      rp.d0_s = sc.base_rtt_s;
      rp.packet_bytes = sc.tfrc.packet_bytes;
      net.bottleneck().enable_rcp(rp);
    }
    workload::FlowManagerConfig wcfg;
    wcfg.workload = sc.workload;
    wcfg.tfrc = sc.tfrc;
    wcfg.tcp = sc.tcp;
    wcfg.aimd.packet_bytes = sc.tfrc.packet_bytes;
    wcfg.rcp.packet_bytes = sc.tfrc.packet_bytes;
    wcfg.base_rtt_s = sc.base_rtt_s;
    wcfg.rtt_spread = sc.rtt_spread;
    wcfg.shared_prop_s = kSharedProp;
    wcfg.drain_s = drain_guard(sc);
    wcfg.seed = sim::hash_seed(sc.seed, "workload");
    churn.emplace(net, wcfg);
    churn->start(rng.uniform(0.0, 1.0));
  }

  // --- observability -------------------------------------------------------
  // Instruments are registered unconditionally (construction-time, off the
  // hot path) so every result carries the same deterministic obs snapshot;
  // only the probe / trace / flight ring are gated on `ro`.
  obs::CellTrace* trace = ro != nullptr ? ro->trace : nullptr;
  obs::Registry reg;
  reg.add_counter("kernel_events",
                  [&sim](double) { return static_cast<double>(sim.events_executed()); });
  reg.add_counter("kernel_wheel_pops",
                  [&sim](double) { return static_cast<double>(sim.wheel_pops()); });
  reg.add_counter("kernel_heap_pops",
                  [&sim](double) { return static_cast<double>(sim.heap_pops()); });
  reg.add_counter("queue_drops",
                  [&net](double) { return static_cast<double>(net.bottleneck().queue().drops()); });
  reg.add_counter("queue_accepted", [&net](double) {
    return static_cast<double>(net.bottleneck().queue().accepted());
  });
  reg.add_counter("link_delivered",
                  [&net](double) { return static_cast<double>(net.bottleneck().delivered()); });
  reg.add_gauge("queue_occupancy", [&net](double now) {
    return static_cast<double>(net.bottleneck().queue().packets(now));
  });
  reg.add_gauge("queue_avg",
                [&net](double) { return net.bottleneck().queue().average_queue(); });

  // Occupancy-at-drop histogram, fed by the queue's drop hook — a rare path,
  // always installed, so the snapshot never depends on probing.
  struct DropObs {
    obs::Histogram* occupancy = nullptr;
    obs::CellTrace* trace = nullptr;
  } drop_obs;
  const auto cap = static_cast<double>(net.bottleneck().queue().capacity());
  drop_obs.occupancy = reg.add_histogram("queue_drop_occupancy", 0.0, std::max(1.0, cap), 32);
  drop_obs.trace = trace;
  net.bottleneck().queue().set_drop_hook(
      [](void* ctx, double now, std::size_t occ) {
        auto* d = static_cast<DropObs*>(ctx);
        d->occupancy->record(static_cast<double>(occ));
        if (d->trace != nullptr) d->trace->instant(now, "drop", "queue");
      },
      &drop_obs);

  // Churn instruments: per-class open/close totals, the live population, and
  // a completion-time histogram fed from the FlowManager's completion hook.
  struct CompObs {
    obs::Histogram* duration = nullptr;
    obs::CellTrace* trace = nullptr;
  } comp_obs;
  if (churn) {
    static constexpr const char* kClsName[workload::kFlowClasses] = {"tfrc", "tcp", "aimd",
                                                                     "rcp"};
    for (int c = 0; c < workload::kFlowClasses; ++c) {
      reg.add_counter(std::string("wl_opens_") + kClsName[c], [&churn, c](double) {
        return static_cast<double>(churn->population().class_opens(c));
      });
      reg.add_counter(std::string("wl_closes_") + kClsName[c], [&churn, c](double) {
        return static_cast<double>(churn->population().class_closes(c));
      });
    }
    reg.add_gauge("wl_active_flows",
                  [&churn](double) { return static_cast<double>(churn->active_flows()); });
    comp_obs.duration =
        reg.add_histogram("wl_completion_s", 0.0, std::max(1.0, sc.duration_s), 64);
    comp_obs.trace = trace;
    churn->set_completion_hook(
        [](void* ctx, double t0, double t1, int cls, double size_pkts) {
          (void)size_pkts;
          auto* co = static_cast<CompObs*>(ctx);
          co->duration->record(t1 - t0);
          if (co->trace != nullptr) {
            static constexpr const char* kSpan[workload::kFlowClasses] = {
                "transfer:tfrc", "transfer:tcp", "transfer:aimd", "transfer:rcp"};
            co->trace->span(t0, t1, kSpan[cls & 3], "transfers");
          }
        },
        &comp_obs);
  }

  // Aggregate delivery rate: stateful (differences the delivered counter
  // between samples), so probe-only — it never enters the snapshot.
  struct RateState {
    double last_t = 0.0;
    double last_delivered = 0.0;
  } rate_state;
  reg.add_gauge(
      "agg_rate_pps",
      [&net, &rate_state](double now) {
        const auto d = static_cast<double>(net.bottleneck().delivered());
        const double dt = now - rate_state.last_t;
        const double r = dt > 0.0 ? (d - rate_state.last_delivered) / dt : 0.0;
        rate_state.last_t = now;
        rate_state.last_delivered = d;
        return r;
      },
      /*probe_only=*/true);

  std::optional<obs::Probe> probe;
  if (ro != nullptr) {
    if (ro->ring.records != nullptr) sim.set_kernel_ring(ro->ring);
    if (ro->probe_interval_s > 0.0) {
      probe.emplace(sim, reg, ro->probe_interval_s, ro->probe_capacity, sc.duration_s, trace);
    }
  }
  // The probe is driven from outside the kernel: run to each sample time,
  // read the gauges, continue. No event is ever inserted on its behalf, so
  // the executed event sequence — pops, wheel routing, everything — is
  // byte-for-byte the same as an unprobed run's.
  const auto run_probed_until = [&](double horizon) {
    if (probe) {
      while (probe->next_due() <= horizon) {
        sim.run_until(probe->next_due());
        probe->sample();
      }
    }
    sim.run_until(horizon);
  };

  // Warm-up, snapshot, measure.
  run_probed_until(sc.warmup_s);
  if (trace != nullptr) trace->instant(sc.warmup_s, "warmup_end", "run");
  if (churn) churn->begin_epoch();
  std::vector<RecorderSnapshot> tfrc_s, tcp_s, probe_s;
  std::vector<std::uint64_t> tfrc_d0, tcp_d0;
  for (auto& c : tfrcs) {
    tfrc_s.push_back(snap(c.recorder()));
    tfrc_d0.push_back(c.delivered());
  }
  for (auto& c : tcps) {
    tcp_s.push_back(snap(c.recorder()));
    tcp_d0.push_back(c.delivered());
  }
  for (auto& p : probes) probe_s.push_back(snap(p.recorder()));

  run_probed_until(sc.duration_s);
  const double window = sc.duration_s - sc.warmup_s;

  ExperimentResult out;
  out.scenario_name = sc.name;
  out.bottleneck_utilization = net.bottleneck().utilization();
  if (churn) {
    out.workload_active = true;
    out.workload = churn->summarize();
  }
  out.obs = reg.snapshot(sim.now());
  if (probe) out.obs_series = probe->take_series();

  const auto analyze = [&](const std::string& kind, int flow_id,
                           const stats::LossEventRecorder& rec, const RecorderSnapshot& s0,
                           double goodput, double mean_rtt) {
    FlowStats fs;
    fs.kind = kind;
    fs.flow_id = flow_id;
    fs.throughput_pps = goodput;
    fs.p = delta_loss_rate(rec, s0);
    fs.mean_rtt_s = mean_rtt;
    fs.loss_events = rec.events() - s0.events;
    if (fs.p > 0.0 && mean_rtt > 0.0) {
      const auto f = model::make_throughput_function(sc.tfrc.formula, mean_rtt);
      fs.formula_rate = f->rate(std::min(1.0, fs.p));
      fs.normalized = fs.throughput_pps / fs.formula_rate;
      const auto& all = rec.intervals_packets();
      if (all.size() > s0.intervals + 2 * sc.tfrc.history_length) {
        const std::vector<double> tail(all.begin() + static_cast<long>(s0.intervals),
                                       all.end());
        const auto cov = core::check_covariance_conditions(
            *f, tail, core::tfrc_weights(sc.tfrc.history_length));
        fs.cov_theta_thetahat = cov.cov_theta_thetahat;
        fs.normalized_cov = cov.cov_theta_thetahat * util::sq(fs.p);
      }
    }
    out.flows.push_back(fs);
  };

  for (std::size_t i = 0; i < tfrcs.size(); ++i) {
    auto& c = tfrcs[i];
    const double goodput = static_cast<double>(c.delivered() - tfrc_d0[i]) / window;
    analyze("tfrc", i < tfrc_s.size() ? static_cast<int>(i) : 0, c.recorder(), tfrc_s[i],
            goodput, c.rtt_stats().count() > 0 ? c.rtt_stats().mean() : c.srtt());
  }
  for (std::size_t i = 0; i < tcps.size(); ++i) {
    auto& c = tcps[i];
    const double goodput = static_cast<double>(c.delivered() - tcp_d0[i]) / window;
    analyze("tcp", static_cast<int>(i), c.recorder(), tcp_s[i], goodput,
            c.rtt_stats().count() > 0 ? c.rtt_stats().mean() : c.srtt());
  }
  for (std::size_t i = 0; i < probes.size(); ++i) {
    auto& p = probes[i];
    FlowStats fs;
    fs.kind = "poisson";
    fs.flow_id = static_cast<int>(i);
    fs.p = delta_loss_rate(p.recorder(), probe_s[i]);
    fs.loss_events = p.recorder().events() - probe_s[i].events;
    out.flows.push_back(fs);
  }

  // Aggregates and the breakdown.
  std::vector<double> tfrc_x, tcp_x, tfrc_p, tcp_p, poisson_p, tfrc_r, tcp_r, tfrc_norm,
      tcp_norm;
  for (const auto& f : out.flows) {
    if (f.kind == "tfrc") {
      tfrc_x.push_back(f.throughput_pps);
      if (f.p > 0) tfrc_p.push_back(f.p);
      tfrc_r.push_back(f.mean_rtt_s);
      if (f.normalized > 0) tfrc_norm.push_back(f.normalized);
    } else if (f.kind == "tcp") {
      tcp_x.push_back(f.throughput_pps);
      if (f.p > 0) tcp_p.push_back(f.p);
      tcp_r.push_back(f.mean_rtt_s);
      if (f.normalized > 0) tcp_norm.push_back(f.normalized);
    } else if (f.p > 0) {
      poisson_p.push_back(f.p);
    }
  }
  out.tfrc_throughput = mean_of(tfrc_x);
  out.tcp_throughput = mean_of(tcp_x);
  out.tfrc_p = mean_of(tfrc_p);
  out.tcp_p = mean_of(tcp_p);
  out.poisson_p = mean_of(poisson_p);
  out.tfrc_rtt = mean_of(tfrc_r);
  out.tcp_rtt = mean_of(tcp_r);

  out.breakdown.conservativeness = mean_of(tfrc_norm);
  out.breakdown.tcp_formula_ratio = mean_of(tcp_norm);
  out.breakdown.loss_rate_ratio = out.tfrc_p > 0 ? out.tcp_p / out.tfrc_p : 0.0;
  out.breakdown.rtt_ratio = out.tfrc_rtt > 0 ? out.tcp_rtt / out.tfrc_rtt : 0.0;
  out.breakdown.friendliness =
      out.tcp_throughput > 0 ? out.tfrc_throughput / out.tcp_throughput : 0.0;
  return out;
}

}  // namespace ebrc::testbed
