#include "testbed/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__GLIBC__)
#include <stdio_ext.h>
#endif

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "util/json_escape.hpp"

namespace ebrc::testbed {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

[[nodiscard]] std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

/// Appends to a bounded tail buffer: only the last `limit` bytes survive.
void append_tail(std::string& tail, const char* data, std::size_t n, std::size_t limit) {
  tail.append(data, n);
  if (tail.size() > limit) tail.erase(0, tail.size() - limit);
}

/// Reads everything currently available on a nonblocking fd into the tail.
/// Returns false once the write end is closed (EOF).
bool drain_pipe(int fd, std::string& tail, std::size_t limit) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      append_tail(tail, buf, static_cast<std::size_t>(n), limit);
      continue;
    }
    if (n == 0) return false;  // EOF: worker (and any stray children) gone
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // unexpected read error: treat as closed
  }
}

}  // namespace

IsolationMode isolation_from(const std::string& name) {
  if (name == "none" || name == "in-process") return IsolationMode::kInProcess;
  if (name == "process") return IsolationMode::kProcess;
  throw std::invalid_argument("--isolate: unknown mode '" + name +
                              "' (valid: none, process)");
}

const char* isolation_name(IsolationMode mode) noexcept {
  return mode == IsolationMode::kProcess ? "process" : "none";
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGHUP: return "SIGHUP";
    case SIGINT: return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default: return "signal " + std::to_string(sig);
  }
}

std::string WorkerOutcome::describe() const {
  if (ok) return "exited 0";
  if (killed) {
    return "killed at the cell deadline (SIGKILL) after " + format_seconds(elapsed_s) + " s";
  }
  if (crashed) {
    std::string s = "crashed: " + signal_name(term_signal);
    if (term_signal == SIGKILL) {
      // We did not send it (killed would be set) — the kernel OOM killer is
      // the usual sender of an unexplained SIGKILL.
      s += " (not sent by the supervisor — possibly the kernel OOM killer)";
    }
    return s;
  }
  if (exit_code >= 0) return "exited " + std::to_string(exit_code);
  return "did not start";
}

WorkerOutcome run_supervised(const std::function<int()>& body, const WorkerLimits& limits) {
  WorkerOutcome out;
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    out.stderr_tail = errno_message("pipe");
    return out;
  }

  const auto t0 = Clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    out.stderr_tail = errno_message("fork");
    ::close(fds[0]);
    ::close(fds[1]);
    return out;
  }

  if (pid == 0) {
    // ---- worker ----
    // Die with the parent: a crashed supervisor must not leak workers.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    ::close(fds[0]);
#if defined(__GLIBC__)
    // Discard the parent's not-yet-flushed stdio buffers inherited across
    // the fork: the child's final flush must emit only what the CHILD
    // wrote, not replay half the parent's banner into the stderr tail.
    __fpurge(stdout);
    __fpurge(stderr);
#endif
    // Both stdout and stderr go to the supervision pipe so nothing a dying
    // worker prints can reach the parent's bit-comparable stdout.
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    if (fds[1] != STDOUT_FILENO && fds[1] != STDERR_FILENO) ::close(fds[1]);
    int code = 1;
    try {
      code = body();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "worker: %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "worker: unknown exception\n");
    }
    std::cout.flush();
    std::cerr.flush();
    std::fflush(nullptr);
    ::_exit(code);  // never exit(): inherited stdio buffers must not reflush
  }

  // ---- supervisor ----
  ::close(fds[1]);
  const int rfd = fds[0];
  ::fcntl(rfd, F_SETFL, ::fcntl(rfd, F_GETFL, 0) | O_NONBLOCK);

  const bool has_deadline = limits.deadline_s > 0.0;
  const auto deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     has_deadline ? limits.deadline_s : 0.0));
  std::string tail;
  bool pipe_open = true;
  int status = 0;
  rusage ru{};
  for (;;) {
    if (has_deadline && !out.killed && Clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      out.killed = true;
    }
    const pid_t r = ::wait4(pid, &status, WNOHANG, &ru);
    if (r == pid) break;
    if (r < 0 && errno != EINTR) break;  // ECHILD: nothing left to reap
    if (pipe_open) {
      pollfd p{rfd, POLLIN, 0};
      if (::poll(&p, 1, /*timeout_ms=*/20) > 0) {
        pipe_open = drain_pipe(rfd, tail, limits.stderr_tail_bytes);
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  // The pipe buffer can still hold the worker's last words after the reap.
  if (pipe_open) drain_pipe(rfd, tail, limits.stderr_tail_bytes);
  ::close(rfd);

  out.elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
  out.max_rss_kb = ru.ru_maxrss;
  out.stderr_tail = std::move(tail);
  if (WIFEXITED(status)) {
    out.exit_code = WEXITSTATUS(status);
    out.ok = !out.killed && out.exit_code == 0;
  } else if (WIFSIGNALED(status)) {
    out.term_signal = WTERMSIG(status);
    // A SIGKILL we sent is a deadline kill, not a crash.
    out.crashed = !(out.killed && out.term_signal == SIGKILL);
  }
  return out;
}

namespace {

using util::json_escape_into;

/// Stamps the common line prefix: `{"ts":<wall>,"event":"<event>"`.
void begin_line(std::string& line, std::string_view event) {
  const double ts = std::chrono::duration<double>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"ts\":%.6f,\"event\":\"", ts);
  line += buf;
  json_escape_into(line, event);
  line += "\"";
}

}  // namespace

SweepEventFeed::SweepEventFeed(const std::filesystem::path& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("--events-out: cannot open '" + path.string() + "' for writing");
  }
  // One-time schema header (version 2: schema line + obs fields + sweep
  // events). Event and field lists are space-separated strings, not JSON
  // arrays, so every line stays parseable by util::parse_json too.
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  begin_line(line, "schema");
  line +=
      ",\"version\":2,\"events\":\"cell_start cell_done cell_failed cell_crashed "
      "cell_killed retry sweep_done\",\"fields\":\"ts event cell scenario seed attempt "
      "elapsed_s rss_kb detail obs\"}\n";
  out_ << line;
  out_.flush();
}

void SweepEventFeed::emit(std::string_view event, std::size_t cell, std::string_view scenario,
                          std::uint64_t seed, int attempt, double elapsed_s, long rss_kb,
                          std::string_view detail, std::string_view extra_json) {
  // The lock covers the ts stamp in begin_line, not just the write: file
  // order and timestamp order must agree for the feed to be validatable.
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  line.reserve(192 + scenario.size() + detail.size() + extra_json.size());
  begin_line(line, event);
  line += ",\"cell\":" + std::to_string(cell) + ",\"scenario\":\"";
  json_escape_into(line, scenario);
  line += "\",\"seed\":" + std::to_string(seed) + ",\"attempt\":" + std::to_string(attempt);
  if (elapsed_s >= 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"elapsed_s\":%.6f", elapsed_s);
    line += buf;
  }
  if (rss_kb >= 0) line += ",\"rss_kb\":" + std::to_string(rss_kb);
  if (!detail.empty()) {
    line += ",\"detail\":\"";
    json_escape_into(line, detail);
    line += "\"";
  }
  line += extra_json;
  line += "}\n";
  out_ << line;
  out_.flush();  // per-line: the feed must be tail-able mid-sweep
}

void SweepEventFeed::emit_sweep(std::string_view event, std::string_view extra_json) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  line.reserve(64 + extra_json.size());
  begin_line(line, event);
  line += extra_json;
  line += "}\n";
  out_ << line;
  out_.flush();
}

}  // namespace ebrc::testbed
