#include "testbed/batch.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/flight_recorder.hpp"
#include "obs/run_obs.hpp"
#include "obs/trace.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "testbed/fault_injection.hpp"
#include "testbed/result_store.hpp"
#include "testbed/scenario_io.hpp"
#include "util/doc.hpp"
#include "util/json_escape.hpp"

namespace ebrc::testbed {

ShardSpec::ShardSpec(std::size_t index, std::size_t count) : index(index), count(count) {
  if (count < 1) throw std::invalid_argument("ShardSpec: shard count must be >= 1");
  if (index >= count) {
    throw std::invalid_argument("ShardSpec: --shard-index (" + std::to_string(index) +
                                ") must be < --shard-count (" + std::to_string(count) + ")");
  }
}

std::vector<Scenario> replicate(const Scenario& base, std::uint64_t root_seed, int reps) {
  if (reps < 1) throw std::invalid_argument("replicate: reps must be >= 1");
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    Scenario s = base;
    // Seed from (root, name, rep) only: adding replications or reordering the
    // batch never perturbs another replication's sample path.
    s.seed = sim::hash_seed(root_seed, base.name + "#rep" + std::to_string(rep));
    out.push_back(std::move(s));
  }
  return out;
}

PairedBatch replicate_paired(const Scenario& a, const Scenario& b, const std::string& pair_tag,
                             std::uint64_t root_seed, int reps) {
  if (reps < 1) throw std::invalid_argument("replicate_paired: reps must be >= 1");
  if (pair_tag.empty()) throw std::invalid_argument("replicate_paired: empty pair_tag");
  PairedBatch out;
  out.a.reserve(static_cast<std::size_t>(reps));
  out.b.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed =
        sim::hash_seed(root_seed, pair_tag + "#pair" + std::to_string(rep));
    Scenario sa = a;
    Scenario sb = b;
    sa.seed = seed;
    sb.seed = seed;  // common random numbers: identical derived streams
    out.a.push_back(std::move(sa));
    out.b.push_back(std::move(sb));
  }
  return out;
}

BatchResult paired_difference(const std::vector<ExperimentResult>& a,
                              const std::vector<ExperimentResult>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paired_difference: arm sizes differ (" +
                                std::to_string(a.size()) + " vs " + std::to_string(b.size()) +
                                ")");
  }
  BatchResult out;
  out.runs = a.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const BatchResult ra = aggregate({a[i]});
    const BatchResult rb = aggregate({b[i]});
    for (const auto& [name, moments] : ra.metrics) {
      const auto it = rb.metrics.find(name);
      if (it == rb.metrics.end()) continue;  // keep only metrics both arms report
      out.metrics[name].add(moments.mean() - it->second.mean());
    }
  }
  return out;
}

const stats::OnlineMoments& BatchResult::metric(const std::string& name) const {
  const auto it = metrics.find(name);
  if (it == metrics.end()) {
    std::string msg = "BatchResult: no metric '" + name + "' (known:";
    for (const auto& [k, v] : metrics) {
      (void)v;
      msg += " " + k;
    }
    msg += ")";
    throw std::out_of_range(msg);
  }
  return it->second;
}

BatchResult aggregate(const std::vector<ExperimentResult>& runs) {
  BatchResult out;
  out.runs = runs.size();
  for (const auto& r : runs) {
    out.metrics["tfrc_throughput"].add(r.tfrc_throughput);
    out.metrics["tcp_throughput"].add(r.tcp_throughput);
    out.metrics["tfrc_p"].add(r.tfrc_p);
    out.metrics["tcp_p"].add(r.tcp_p);
    out.metrics["poisson_p"].add(r.poisson_p);
    out.metrics["tfrc_rtt"].add(r.tfrc_rtt);
    out.metrics["tcp_rtt"].add(r.tcp_rtt);
    out.metrics["bottleneck_utilization"].add(r.bottleneck_utilization);
    out.metrics["conservativeness"].add(r.breakdown.conservativeness);
    out.metrics["loss_rate_ratio"].add(r.breakdown.loss_rate_ratio);
    out.metrics["rtt_ratio"].add(r.breakdown.rtt_ratio);
    out.metrics["tcp_formula_ratio"].add(r.breakdown.tcp_formula_ratio);
    out.metrics["friendliness"].add(r.breakdown.friendliness);
    // Observability snapshot: every registered instrument surfaces as an
    // obs_-prefixed sweep metric. The snapshot is deterministic (it never
    // depends on --probe-interval), so cold and warm-cache aggregates agree.
    for (const auto& [name, v] : r.obs) out.metrics["obs_" + name].add(v);
    // Workload telemetry, only for churn runs — batches are homogeneous (one
    // scenario shape), so the metric key set stays consistent within a batch
    // and pre-workload summary files keep their exact key set.
    if (!r.workload_active) continue;
    const auto& wl = r.workload;
    out.metrics["wl_arrivals"].add(static_cast<double>(wl.arrivals));
    out.metrics["wl_completions"].add(static_cast<double>(wl.completions));
    out.metrics["wl_rejections"].add(static_cast<double>(wl.rejections));
    out.metrics["wl_mean_flows"].add(wl.mean_flows);
    out.metrics["wl_mean_flows_tfrc"].add(wl.mean_flows_tfrc);
    out.metrics["wl_mean_flows_tcp"].add(wl.mean_flows_tcp);
    out.metrics["wl_peak_flows"].add(static_cast<double>(wl.peak_flows));
    out.metrics["wl_tfrc_completion_s"].add(wl.tfrc_completion_s);
    out.metrics["wl_tcp_completion_s"].add(wl.tcp_completion_s);
    out.metrics["wl_tfrc_completion_cov"].add(wl.tfrc_completion_cov);
    out.metrics["wl_tcp_completion_cov"].add(wl.tcp_completion_cov);
    out.metrics["wl_tfrc_goodput_pps"].add(wl.tfrc_goodput_pps);
    out.metrics["wl_tcp_goodput_pps"].add(wl.tcp_goodput_pps);
    out.metrics["wl_tfrc_share"].add(wl.tfrc_share);
    out.metrics["wl_tfrc_p"].add(wl.tfrc_p);
    out.metrics["wl_tcp_p"].add(wl.tcp_p);
    out.metrics["wl_mean_flows_aimd"].add(wl.mean_flows_aimd);
    out.metrics["wl_mean_flows_rcp"].add(wl.mean_flows_rcp);
    out.metrics["wl_aimd_completion_s"].add(wl.aimd_completion_s);
    out.metrics["wl_rcp_completion_s"].add(wl.rcp_completion_s);
    out.metrics["wl_aimd_completion_cov"].add(wl.aimd_completion_cov);
    out.metrics["wl_rcp_completion_cov"].add(wl.rcp_completion_cov);
    out.metrics["wl_aimd_goodput_pps"].add(wl.aimd_goodput_pps);
    out.metrics["wl_rcp_goodput_pps"].add(wl.rcp_goodput_pps);
    out.metrics["wl_aimd_p"].add(wl.aimd_p);
    out.metrics["wl_rcp_p"].add(wl.rcp_p);
    out.metrics["wl_qdelay_mean_s"].add(wl.qdelay_mean_s);
  }
  return out;
}

BatchRunner::BatchRunner(std::size_t jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? hw : 1;
  }
}

void BatchRunner::dispatch(std::size_t n, void (*invoke)(void*, std::size_t),
                           void* ctx) const {
  if (n == 0) return;
  const std::size_t workers = std::min(jobs_, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) invoke(ctx, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      // Stop claiming work once any index has thrown: a failing batch should
      // rethrow in one run's time, not after finishing the whole sweep.
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        invoke(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ExperimentResult> BatchRunner::run(const std::vector<Scenario>& scenarios) const {
  // Delegate to the persistence path with no store: same cell executor, so
  // a crashing cell names itself here too.
  return run(scenarios, nullptr);
}

namespace {

[[nodiscard]] std::string cell_context(std::size_t index, const Scenario& s) {
  return "sweep cell #" + std::to_string(index) + " '" + s.name + "' (seed " +
         std::to_string(s.seed) + ")";
}

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---- cell-keyed fault injections --------------------------------------------

/// Wedges the current attempt. In a worker subprocess we sleep far past any
/// deadline and let the supervisor's SIGKILL end it; in-process we spin on
/// the cooperative wall-deadline poll, which throws once --cell-deadline
/// expires (or immediately when none is armed — an undetectable in-process
/// hang would otherwise wedge the whole sweep).
void hang_now(bool in_worker) {
  if (in_worker) {
    for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
  }
  if (!sim::thread_wall_deadline_armed()) {
    throw std::runtime_error("injected fault: hang with no --cell-deadline armed");
  }
  for (;;) {
    sim::poll_thread_wall_deadline();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Allocation storm. In a worker subprocess: cap our own address space, then
/// allocate (and touch) until the cap bites — a deterministic, self-limiting
/// stand-in for the kernel OOM killer — and abort. In-process: throw
/// bad_alloc, modeling allocator exhaustion without destabilizing the sweep.
void oom_now(bool in_worker, std::size_t cell) {
  if (!in_worker) throw std::bad_alloc();
  rlimit lim{};
  ::getrlimit(RLIMIT_AS, &lim);
  const rlim_t cap = rlim_t{1} << 31;  // 2 GiB: far above the sim footprint
  if (lim.rlim_cur == RLIM_INFINITY || lim.rlim_cur > cap) {
    lim.rlim_cur = cap;
    ::setrlimit(RLIMIT_AS, &lim);
  }
  std::vector<std::unique_ptr<char[]>> hoard;
  try {
    constexpr std::size_t kBlock = std::size_t{16} << 20;
    for (;;) {
      hoard.push_back(std::make_unique<char[]>(kBlock));
      for (std::size_t off = 0; off < kBlock; off += 4096) hoard.back()[off] = 1;
    }
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "injected fault: oom storm at cell #%zu exhausted RLIMIT_AS\n", cell);
  }
  std::abort();
}

/// The cell-keyed injections shared by both isolation modes. kThrow and
/// kOomStorm(in-process) surface as exceptions; kCrash aborts whichever
/// process this is — under --isolate=process that is the worker, which is
/// exactly the failure class process isolation exists to contain.
void fire_cell_injections(std::size_t i, int attempt, bool in_worker) {
  if (fault::fire(fault::Kind::kThrow, i, attempt)) {
    throw std::runtime_error("injected fault: throw at cell #" + std::to_string(i) +
                             " attempt " + std::to_string(attempt));
  }
  if (fault::fire(fault::Kind::kCrash, i, attempt)) {
    std::fprintf(stderr, "injected fault: crash at cell #%zu attempt %d\n", i, attempt);
    std::fflush(stderr);
    std::abort();
  }
  if (fault::fire(fault::Kind::kHang, i, attempt)) hang_now(in_worker);
  if (fault::fire(fault::Kind::kOomStorm, i, attempt)) oom_now(in_worker, i);
}

/// Arms the thread-local cooperative deadline for one in-process attempt.
struct WallDeadlineGuard {
  bool armed = false;
  explicit WallDeadlineGuard(double seconds) {
    if (seconds > 0) {
      sim::arm_thread_wall_deadline(seconds);
      armed = true;
    }
  }
  ~WallDeadlineGuard() {
    if (armed) sim::disarm_thread_wall_deadline();
  }
  WallDeadlineGuard(const WallDeadlineGuard&) = delete;
  WallDeadlineGuard& operator=(const WallDeadlineGuard&) = delete;
};

// ---- process-isolated cell execution ----------------------------------------

/// Writes `payload` via temp + rename so the parent never reads a torn file.
void write_handoff(const std::filesystem::path& path, const std::string& payload) {
  namespace fs = std::filesystem;
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.write(payload.data(), static_cast<std::streamsize>(payload.size())) ||
        !out.flush()) {
      throw std::runtime_error("worker: cannot write result handoff " + tmp.string());
    }
  }
  fs::rename(tmp, path);
}

[[nodiscard]] std::optional<ExperimentResult> read_handoff(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string payload((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return decode_result(payload);
}

struct WorkerReturn {
  std::optional<ExperimentResult> result;  // set iff the worker succeeded
  WorkerOutcome outcome;
  /// Flight-recorder ring file left behind by a dead worker (empty when the
  /// recorder was not armed or the attempt succeeded). The parent dumps it
  /// into the crash bundle and removes it.
  std::string flight_path;
};

/// One supervised attempt of one cell. The forked child re-runs the exact
/// in-process executor (same code, same seed — bit-identical numbers),
/// stores through its OWN ResultStore (fork can snapshot the parent's store
/// mutexes mid-lock; a fresh instance has fresh mutexes and the on-disk
/// format is concurrent-writer safe), and hands the encoded result back
/// through a temp+rename file the parent decodes after reaping.
[[nodiscard]] WorkerReturn run_cell_worker(const Scenario& sc, std::size_t i, int attempt,
                                           const ResultStore* store, const RunPolicy& policy) {
  namespace fs = std::filesystem;
  const fs::path handoff =
      fs::temp_directory_path() /
      ("ebrc-cell-" + std::to_string(::getpid()) + "-" + std::to_string(i) + "-" +
       std::to_string(attempt) + ".handoff");
  std::error_code ec;
  fs::remove(handoff, ec);
  const fs::path store_root = store != nullptr ? store->root() : fs::path{};
  const std::uint64_t store_salt = store != nullptr ? store->salt() : 0;

  // Crash forensics: whenever a crash dir is configured, the worker arms a
  // file-backed flight recorder. The mmap is MAP_SHARED, so the kernel's last
  // executed events survive any way the worker dies — SIGSEGV, abort, even
  // the supervisor's deadline SIGKILL — via the page cache.
  const fs::path flight = handoff.string() + ".flight";
  fs::remove(flight, ec);
  const bool arm_flight = !policy.crash_dir.empty();

  WorkerLimits limits;
  limits.deadline_s = policy.cell_deadline_s;
  WorkerReturn ret;
  ret.outcome = run_supervised(
      [&]() -> int {
        std::unique_ptr<obs::FlightRecorder> recorder;
        obs::RunObs ro;
        ro.probe_interval_s = policy.probe_interval_s;
        ro.probe_capacity = policy.probe_capacity;
        if (arm_flight) {
          // Created BEFORE the injections: an attempt that crashes at t=0
          // still leaves a valid (empty) ring for the bundle.
          recorder = obs::FlightRecorder::create(flight.string());
          if (recorder != nullptr) ro.ring = recorder->ring();
        }
        fire_cell_injections(i, attempt, /*in_worker=*/true);
        const ExperimentResult r = run_experiment(sc, &ro);
        if (!store_root.empty()) {
          const ResultStore child_store(store_root, store_salt);
          child_store.store(sc, r);
        }
        write_handoff(handoff, encode_result(r));
        return 0;
      },
      limits);
  if (arm_flight) {
    if (ret.outcome.ok) {
      fs::remove(flight, ec);
    } else {
      ret.flight_path = flight.string();
    }
  }
  if (ret.outcome.ok) {
    ret.result = read_handoff(handoff);
    if (!ret.result) {
      // Exited 0 without a readable result: treat as a failed attempt rather
      // than silently dropping the cell.
      ret.outcome.ok = false;
      ret.outcome.stderr_tail += "worker exited 0 but left no readable result handoff\n";
    }
  }
  fs::remove(handoff, ec);
  return ret;
}

/// Condenses a stderr tail into a single-line suffix for CellFailure::what.
[[nodiscard]] std::string tail_snippet(const std::string& tail) {
  if (tail.empty()) return {};
  std::string s = tail;
  for (char& c : s) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  constexpr std::size_t kMax = 240;
  if (s.size() > kMax) s = "..." + s.substr(s.size() - kMax);
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

/// Repro bundle for a crashed/killed cell: everything needed to rerun it.
/// Best-effort by design — diagnostics must never fail the sweep.
void write_crash_bundle(const RunPolicy& policy, std::size_t i, int attempt,
                        const Scenario& sc, const WorkerOutcome& outcome,
                        const std::string& flight_path = {}) {
  if (policy.crash_dir.empty()) return;
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(policy.crash_dir) / ("cell-" + std::to_string(i));
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return;
  if (!flight_path.empty()) {
    // The dead worker's flight-recorder ring: decode it into a human-readable
    // tail of the kernel's last executed events. Best-effort like the rest.
    (void)obs::FlightRecorder::dump_to_text(flight_path,
                                            (dir / "flight_recorder.txt").string());
  }
  try {
    // The scenario TOML serializes the derived seed, so replaying this file
    // replays this exact cell.
    save_scenario(sc, dir / "scenario.toml");
  } catch (...) {
  }
  {
    std::ofstream out(dir / "stderr.txt", std::ios::binary | std::ios::trunc);
    out << outcome.stderr_tail;
  }
  {
    std::ofstream out(dir / "status.txt", std::ios::trunc);
    out << "cell " << i << "\n"
        << "scenario " << sc.name << "\n"
        << "seed " << sc.seed << "\n"
        << "attempt " << attempt << "\n"
        << "outcome " << outcome.describe() << "\n"
        << "exit_code " << outcome.exit_code << "\n"
        << "term_signal " << outcome.term_signal << "\n"
        << "elapsed_s " << outcome.elapsed_s << "\n"
        << "max_rss_kb " << outcome.max_rss_kb << "\n";
  }
  {
    std::ofstream out(dir / "repro.txt", std::ios::trunc);
    out << "# scenario.toml carries this cell's derived seed; with the sweep's\n"
           "# --cache attached, re-running the original invocation simulates\n"
           "# only the missing cells, so it reproduces this crash directly:\n";
    if (!policy.invocation.empty()) out << policy.invocation << "\n";
  }
}

void emit_event(const RunPolicy& policy, std::string_view event, std::size_t i,
                const Scenario& sc, int attempt, double elapsed_s = -1.0, long rss_kb = -1,
                std::string_view detail = {}, std::string_view extra_json = {}) {
  if (policy.events == nullptr) return;
  policy.events->emit(event, i, sc.name, sc.seed, attempt, elapsed_s, rss_kb, detail,
                      extra_json);
}

/// Renders a result's obs snapshot as a `,"obs":{...}` feed fragment (empty
/// string when the snapshot is empty). Non-finite values are emitted as 0 so
/// every feed line stays strict JSON.
[[nodiscard]] std::string obs_json(const obs::Snapshot& snap) {
  if (snap.empty()) return {};
  std::string out = ",\"obs\":{";
  bool first = true;
  char buf[64];
  for (const auto& [name, v] : snap) {
    if (!first) out += ',';
    first = false;
    out += '"';
    util::json_escape_into(out, name);
    std::snprintf(buf, sizeof(buf), "\":%.17g", std::isfinite(v) ? v : 0.0);
    out += buf;
  }
  out += '}';
  return out;
}

}  // namespace

std::vector<ExperimentResult> BatchRunner::run(const std::vector<Scenario>& scenarios,
                                               const ResultStore* store, ShardSpec shard,
                                               SweepReport* report,
                                               const RunPolicy& policy) const {
  const std::size_t n = scenarios.size();
  std::vector<ExperimentResult> out(n);
  SweepReport rep;
  rep.total = n;
  rep.available.assign(n, 0);
  const ResultStore::Counters before =
      store != nullptr ? store->counters() : ResultStore::Counters{};

  // Phase 1: probe the cache for EVERY index, not only owned ones — a warm
  // store makes any shard's run complete, which is exactly how a merge pass
  // reconstructs the full sweep without simulating. The store's index
  // answers outright misses in memory, so this phase costs one filesystem
  // read per HIT, never per cell.
  std::vector<std::uint8_t> hit(n, 0);
  if (store != nullptr) {
    auto probe = [&](std::size_t i) {
      if (auto cached = store->load(scenarios[i])) {
        out[i] = std::move(*cached);
        hit[i] = 1;
      }
    };
    dispatch(
        n, [](void* ctx, std::size_t i) { (*static_cast<decltype(probe)*>(ctx))(i); }, &probe);
  }

  // Phase 2: simulate the misses this shard owns, persisting each result as
  // it lands so an interrupted sweep keeps its finished work. Each cell runs
  // an attempt loop — retries reuse the cell's UNCHANGED derived seed, so a
  // recovered transient failure is bit-identical to a run that never failed
  // (common random numbers survive). Under keep_going a cell that exhausts
  // its attempts becomes a CellFailure instead of aborting the sweep.
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < n; ++i) {
    if (hit[i] != 0) {
      rep.available[i] = 1;
      ++rep.hits;
    } else if (shard.owns(i)) {
      todo.push_back(i);
    } else {
      ++rep.skipped;
    }
  }
  std::vector<std::uint8_t> done(n, 0);
  std::mutex failures_mu;
  std::vector<CellFailure> failures;
  std::atomic<std::size_t> retried{0};
  auto simulate = [&](std::size_t k) {
    const std::size_t i = todo[k];
    const Scenario& sc = scenarios[i];
    const int attempts_allowed = 1 + std::max(0, policy.max_retries);
    const bool isolate = policy.isolate == IsolationMode::kProcess;
    CellFailure fail;
    fail.index = i;
    fail.scenario = sc.name;
    fail.seed = sc.seed;
    fail.shard = shard.index;
    for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
      if (attempt > 0) {
        retried.fetch_add(1, std::memory_order_relaxed);
        emit_event(policy, "retry", i, sc, attempt);
        if (policy.backoff_base_s > 0) {
          // Deterministic exponential backoff: base * 2^(attempt-1).
          const double scale = static_cast<double>(1ull << std::min(attempt - 1, 30));
          std::this_thread::sleep_for(
              std::chrono::duration<double>(policy.backoff_base_s * scale));
        }
      }
      fail.attempts = attempt + 1;
      fail.timed_out = false;
      fail.crashed = false;
      fail.signal = 0;
      emit_event(policy, "cell_start", i, sc, attempt);
      const auto t0 = std::chrono::steady_clock::now();

      if (isolate) {
        // Process isolation: the attempt runs in a forked, supervised
        // worker; any way it can die — throw, SIGSEGV, OOM kill, wedge —
        // lands here as a WorkerOutcome instead of taking the sweep down.
        WorkerReturn wr = run_cell_worker(sc, i, attempt, store, policy);
        fail.elapsed_s = wr.outcome.elapsed_s;
        fail.max_rss_kb = wr.outcome.max_rss_kb;
        if (wr.result) {
          out[i] = std::move(*wr.result);
          // The worker stored the entry and appended the on-disk index
          // record itself; admit the key so this process's index agrees.
          if (store != nullptr) store->admit(sc);
          done[i] = 1;
          if (policy.trace != nullptr) {
            // The worker's in-memory trace buffer died with the worker; the
            // parent still contributes the attempt span (retries included:
            // attempt > 0 names itself).
            obs::CellTrace t;
            t.span(0.0, sc.duration_s,
                   attempt > 0 ? "attempt (retry " + std::to_string(attempt) + ")"
                               : "attempt",
                   "run");
            policy.trace->absorb(i, sc.name, std::move(t));
          }
          emit_event(policy, "cell_done", i, sc, attempt, wr.outcome.elapsed_s,
                     wr.outcome.max_rss_kb, {}, obs_json(out[i].obs));
          return;
        }
        fail.crashed = wr.outcome.crashed;
        fail.signal = wr.outcome.term_signal;
        fail.timed_out = wr.outcome.killed;
        fail.what = wr.outcome.describe();
        if (const std::string snippet = tail_snippet(wr.outcome.stderr_tail);
            !snippet.empty()) {
          fail.what += "; stderr: " + snippet;
        }
        if (wr.outcome.crashed || wr.outcome.killed) {
          write_crash_bundle(policy, i, attempt, sc, wr.outcome, wr.flight_path);
        }
        if (!wr.flight_path.empty()) {
          std::error_code flight_ec;
          std::filesystem::remove(wr.flight_path, flight_ec);
        }
        emit_event(policy,
                   wr.outcome.killed ? "cell_killed"
                   : wr.outcome.crashed ? "cell_crashed"
                                        : "cell_failed",
                   i, sc, attempt, wr.outcome.elapsed_s, wr.outcome.max_rss_kb, fail.what);
        continue;  // a retry (same seed) may clear a transient crash
      }

      try {
        // Arm the cooperative wall deadline before the injections so an
        // injected in-process hang spins on a live deadline.
        WallDeadlineGuard deadline_guard(policy.cell_deadline_s);
        fire_cell_injections(i, attempt, /*in_worker=*/false);
        // In-process observability: probes sample at policy.probe_interval_s
        // and the cell's full trace (transfer spans, drop instants, probe
        // counter tracks) is absorbed into the sweep-wide writer on success.
        obs::CellTrace cell_trace;
        obs::RunObs ro;
        ro.probe_interval_s = policy.probe_interval_s;
        ro.probe_capacity = policy.probe_capacity;
        ro.trace = policy.trace != nullptr ? &cell_trace : nullptr;
        ExperimentResult r = run_experiment(sc, &ro);
        double elapsed = seconds_since(t0);
        if (fault::fire(fault::Kind::kDeadlineOverrun, i, attempt)) {
          elapsed = (policy.cell_deadline_s > 0 ? policy.cell_deadline_s : elapsed) + 1.0;
        }
        fail.elapsed_s = elapsed;
        if (policy.cell_deadline_s > 0 && elapsed > policy.cell_deadline_s) {
          fail.timed_out = true;
          fail.what = "cell exceeded --cell-deadline (" + std::to_string(elapsed) + " s > " +
                      std::to_string(policy.cell_deadline_s) + " s)";
          emit_event(policy, "cell_failed", i, sc, attempt, elapsed, -1, fail.what);
          continue;  // a retry may clear a transient stall
        }
        out[i] = std::move(r);
        if (store != nullptr) store->store(sc, out[i]);
        done[i] = 1;
        if (policy.trace != nullptr) {
          cell_trace.span(0.0, sc.duration_s,
                          attempt > 0 ? "attempt (retry " + std::to_string(attempt) + ")"
                                      : "attempt",
                          "run");
          policy.trace->absorb(i, sc.name, std::move(cell_trace));
        }
        emit_event(policy, "cell_done", i, sc, attempt, elapsed, -1, {},
                   obs_json(out[i].obs));
        return;
      } catch (const sim::WallDeadlineError& e) {
        // The 64k-event poll preempted a cell running past --cell-deadline.
        fail.elapsed_s = seconds_since(t0);
        fail.timed_out = true;
        fail.what = "cell exceeded --cell-deadline (" + std::to_string(fail.elapsed_s) +
                    " s > " + std::to_string(policy.cell_deadline_s) + " s): " + e.what();
      } catch (const std::exception& e) {
        fail.elapsed_s = seconds_since(t0);
        fail.what = e.what();
      } catch (...) {
        fail.elapsed_s = seconds_since(t0);
        fail.what = "unknown exception";
      }
      emit_event(policy, "cell_failed", i, sc, attempt, fail.elapsed_s, -1, fail.what);
    }
    if (!policy.keep_going) {
      // Fail fast, but never anonymously: a crashing million-cell sweep
      // must name its cell.
      throw std::runtime_error(cell_context(i, sc) + " failed after " +
                               std::to_string(fail.attempts) + " attempt(s): " + fail.what);
    }
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(fail));
  };
  dispatch(
      todo.size(), [](void* ctx, std::size_t i) { (*static_cast<decltype(simulate)*>(ctx))(i); },
      &simulate);
  for (std::size_t i : todo) {
    if (done[i] != 0) {
      rep.available[i] = 1;
      ++rep.simulated;
    }
  }

  // Worker interleaving is nondeterministic; the manifest order is not.
  std::sort(failures.begin(), failures.end(),
            [](const CellFailure& a, const CellFailure& b) { return a.index < b.index; });
  rep.failed = failures.size();
  for (const auto& f : failures) {
    if (f.timed_out) ++rep.timed_out;
    if (f.crashed) ++rep.crashed;
  }
  rep.retried = retried.load(std::memory_order_relaxed);
  rep.failures = std::move(failures);
  if (store != nullptr) {
    rep.quarantined = store->counters().quarantined - before.quarantined;
  }

  if (report != nullptr) *report = std::move(rep);
  return out;
}

BatchResult BatchRunner::run_aggregate(const std::vector<Scenario>& scenarios) const {
  return aggregate(run(scenarios));
}

// ---- sweep summaries ---------------------------------------------------------

BatchResult merge_batch_results(const std::vector<BatchResult>& parts) {
  BatchResult out;
  for (const auto& p : parts) {
    out.runs += p.runs;
    for (const auto& [name, moments] : p.metrics) out.metrics[name].merge(moments);
  }
  return out;
}

namespace {

[[nodiscard]] double parse_double_token(const std::string& token, const std::string& context) {
  double v = 0.0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto r = std::from_chars(first, last, v);
  if (r.ec != std::errc{} || r.ptr != last) {
    throw std::invalid_argument("batch-result file: malformed number '" + token + "' in " +
                                context);
  }
  return v;
}

}  // namespace

void save_batch_result(const BatchResult& result, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_batch_result: cannot open " + path.string());
  out << "ebrc-batch-result v1\n";
  out << "runs " << result.runs << "\n";
  for (const auto& [name, m] : result.metrics) {
    if (name.find_first_of(" \t\n") != std::string::npos) {
      throw std::invalid_argument("save_batch_result: metric name with whitespace: '" + name +
                                  "'");
    }
    out << "metric " << name << ' ' << m.count() << ' ' << util::format_double(m.mean()) << ' '
        << util::format_double(m.m2()) << ' ' << util::format_double(m.min()) << ' '
        << util::format_double(m.max()) << "\n";
  }
  if (!out.flush()) {
    throw std::runtime_error("save_batch_result: write failed for " + path.string());
  }
}

BatchResult load_batch_result(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_batch_result: cannot open " + path.string());
  std::string header;
  std::getline(in, header);
  if (header != "ebrc-batch-result v1") {
    throw std::invalid_argument("load_batch_result: " + path.string() +
                                " is not a batch-result file");
  }
  BatchResult out;
  std::string line;
  bool saw_runs = false;
  const auto parse_count = [](const std::string& token, const std::string& context) {
    std::uint64_t count = 0;
    const auto r = std::from_chars(token.data(), token.data() + token.size(), count);
    if (token.empty() || r.ec != std::errc{} || r.ptr != token.data() + token.size()) {
      throw std::invalid_argument("batch-result file: malformed count '" + token + "' in " +
                                  context);
    }
    return count;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "runs") {
      if (saw_runs) {
        throw std::invalid_argument("load_batch_result: duplicate 'runs' line");
      }
      std::string runs_tok;
      fields >> runs_tok;
      out.runs = parse_count(runs_tok, line);
      saw_runs = true;
    } else if (tag == "metric") {
      std::string name, count_tok, mean_tok, m2_tok, min_tok, max_tok;
      fields >> name >> count_tok >> mean_tok >> m2_tok >> min_tok >> max_tok;
      if (fields.fail() || name.empty()) {
        throw std::invalid_argument("load_batch_result: malformed metric line '" + line + "'");
      }
      if (out.metrics.count(name) != 0) {
        throw std::invalid_argument("load_batch_result: duplicate metric '" + name + "'");
      }
      out.metrics[name] = stats::OnlineMoments::from_state(
          parse_count(count_tok, line), parse_double_token(mean_tok, line),
          parse_double_token(m2_tok, line), parse_double_token(min_tok, line),
          parse_double_token(max_tok, line));
    } else {
      throw std::invalid_argument("load_batch_result: unknown line '" + line + "'");
    }
  }
  if (!saw_runs) {
    throw std::invalid_argument("load_batch_result: missing 'runs' line in " + path.string());
  }
  return out;
}

// ---- failure manifest --------------------------------------------------------

void save_failure_manifest(const std::vector<CellFailure>& failures,
                           const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_failure_manifest: cannot open " + path.string());
  out << "ebrc-failure-manifest v2\n";
  out << "failures " << failures.size() << "\n";
  for (const auto& f : failures) {
    std::string name = f.scenario;
    for (char& c : name) {
      // The loader tokenizes on whitespace; any control character (operator>>
      // treats \v and \f as whitespace too) would shear the line apart.
      const auto u = static_cast<unsigned char>(c);
      if (u <= 0x20 || u == 0x7f) c = '_';
    }
    std::string what = f.what;
    for (char& c : what) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    out << "cell " << f.index << " seed " << f.seed << " shard " << f.shard << " attempts "
        << f.attempts << " timed_out " << (f.timed_out ? 1 : 0) << " crashed "
        << (f.crashed ? 1 : 0) << " signal " << f.signal << " elapsed_s "
        << util::format_double(f.elapsed_s) << " scenario " << name << " what " << what << "\n";
  }
  if (!out.flush()) {
    throw std::runtime_error("save_failure_manifest: write failed for " + path.string());
  }
}

std::vector<CellFailure> load_failure_manifest(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_failure_manifest: cannot open " + path.string());
  std::string header;
  std::getline(in, header);
  if (header != "ebrc-failure-manifest v2") {
    throw std::invalid_argument("load_failure_manifest: " + path.string() +
                                " is not a v2 failure manifest");
  }
  std::string count_line;
  std::getline(in, count_line);
  std::istringstream count_fields(count_line);
  std::string count_tag;
  std::uint64_t declared = 0;
  count_fields >> count_tag >> declared;
  if (count_tag != "failures" || count_fields.fail()) {
    throw std::invalid_argument("load_failure_manifest: missing 'failures' line in " +
                                path.string());
  }

  std::vector<CellFailure> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string cell_tag, seed_tag, shard_tag, attempts_tag, timed_tag, crashed_tag,
        signal_tag, elapsed_tag, scenario_tag, what_tag;
    CellFailure f;
    int timed = 0;
    int crashed = 0;
    fields >> cell_tag >> f.index >> seed_tag >> f.seed >> shard_tag >> f.shard >>
        attempts_tag >> f.attempts >> timed_tag >> timed >> crashed_tag >> crashed >>
        signal_tag >> f.signal >> elapsed_tag >> f.elapsed_s >> scenario_tag >> f.scenario >>
        what_tag;
    if (fields.fail() || cell_tag != "cell" || seed_tag != "seed" || shard_tag != "shard" ||
        attempts_tag != "attempts" || timed_tag != "timed_out" || crashed_tag != "crashed" ||
        signal_tag != "signal" || elapsed_tag != "elapsed_s" || scenario_tag != "scenario" ||
        what_tag != "what") {
      throw std::invalid_argument("load_failure_manifest: malformed line '" + line + "'");
    }
    f.timed_out = timed != 0;
    f.crashed = crashed != 0;
    std::getline(fields, f.what);
    if (!f.what.empty() && f.what.front() == ' ') f.what.erase(0, 1);
    out.push_back(std::move(f));
  }
  if (out.size() != declared) {
    throw std::invalid_argument("load_failure_manifest: " + path.string() + " declares " +
                                std::to_string(declared) + " failures but lists " +
                                std::to_string(out.size()));
  }
  return out;
}

}  // namespace ebrc::testbed
