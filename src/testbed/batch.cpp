#include "testbed/batch.hpp"

#include <mutex>
#include <stdexcept>

#include "sim/random.hpp"

namespace ebrc::testbed {

std::vector<Scenario> replicate(const Scenario& base, std::uint64_t root_seed, int reps) {
  if (reps < 1) throw std::invalid_argument("replicate: reps must be >= 1");
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    Scenario s = base;
    // Seed from (root, name, rep) only: adding replications or reordering the
    // batch never perturbs another replication's sample path.
    s.seed = sim::hash_seed(root_seed, base.name + "#rep" + std::to_string(rep));
    out.push_back(std::move(s));
  }
  return out;
}

const stats::OnlineMoments& BatchResult::metric(const std::string& name) const {
  const auto it = metrics.find(name);
  if (it == metrics.end()) {
    std::string msg = "BatchResult: no metric '" + name + "' (known:";
    for (const auto& [k, v] : metrics) {
      (void)v;
      msg += " " + k;
    }
    msg += ")";
    throw std::out_of_range(msg);
  }
  return it->second;
}

BatchResult aggregate(const std::vector<ExperimentResult>& runs) {
  BatchResult out;
  out.runs = runs.size();
  for (const auto& r : runs) {
    out.metrics["tfrc_throughput"].add(r.tfrc_throughput);
    out.metrics["tcp_throughput"].add(r.tcp_throughput);
    out.metrics["tfrc_p"].add(r.tfrc_p);
    out.metrics["tcp_p"].add(r.tcp_p);
    out.metrics["poisson_p"].add(r.poisson_p);
    out.metrics["tfrc_rtt"].add(r.tfrc_rtt);
    out.metrics["tcp_rtt"].add(r.tcp_rtt);
    out.metrics["bottleneck_utilization"].add(r.bottleneck_utilization);
    out.metrics["conservativeness"].add(r.breakdown.conservativeness);
    out.metrics["loss_rate_ratio"].add(r.breakdown.loss_rate_ratio);
    out.metrics["rtt_ratio"].add(r.breakdown.rtt_ratio);
    out.metrics["tcp_formula_ratio"].add(r.breakdown.tcp_formula_ratio);
    out.metrics["friendliness"].add(r.breakdown.friendliness);
  }
  return out;
}

BatchRunner::BatchRunner(std::size_t jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? hw : 1;
  }
}

void BatchRunner::dispatch(std::size_t n, void (*invoke)(void*, std::size_t),
                           void* ctx) const {
  if (n == 0) return;
  const std::size_t workers = std::min(jobs_, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) invoke(ctx, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      // Stop claiming work once any index has thrown: a failing batch should
      // rethrow in one run's time, not after finishing the whole sweep.
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        invoke(ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ExperimentResult> BatchRunner::run(const std::vector<Scenario>& scenarios) const {
  return map<ExperimentResult>(scenarios.size(),
                               [&](std::size_t i) { return run_experiment(scenarios[i]); });
}

BatchResult BatchRunner::run_aggregate(const std::vector<Scenario>& scenarios) const {
  return aggregate(run(scenarios));
}

}  // namespace ebrc::testbed
