// Process-level supervision for sweep cells.
//
// PR 7's fault tolerance is exception-level: a cell that SIGSEGVs, gets OOM
// killed, or wedges in an infinite loop still takes the whole BatchRunner
// process (and every in-flight cell) with it. This layer closes that gap for
// `--isolate=process` sweeps: each (scenario, seed) cell runs in a forked
// worker subprocess, the parent enforces a *hard* wall-clock deadline via
// SIGKILL, reaps exit status / termination signal / rusage, and captures a
// bounded tail of the worker's stderr for the failure manifest and the
// crash repro bundle.
//
// Design notes:
//  - fork() without exec(): the worker body is a plain callable, so the cell
//    runs the exact same code path as the in-process mode (bit-identical
//    results are an acceptance criterion). The child therefore inherits the
//    parent's entire address space — including mutexes another BatchRunner
//    thread may hold at the instant of fork. The worker body must only touch
//    fork-safe state: fresh objects it constructs itself (e.g. its own
//    ResultStore) and the lock-free fault_injection read path.
//  - The child's stdout AND stderr are both redirected onto the supervision
//    pipe: the parent's stdout stays bit-comparable across runs no matter
//    what a worker prints while dying.
//  - The child exits via _exit(), never exit(): the parent's stdio buffers
//    are inherited by the fork and must not be flushed a second time.
//  - PR_SET_PDEATHSIG ensures no worker outlives a crashed parent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace ebrc::testbed {

/// How BatchRunner executes each cell attempt.
enum class IsolationMode {
  kInProcess,  // PR 7 behavior: cell runs on the pool thread (default)
  kProcess,    // each attempt runs in a forked, supervised worker subprocess
};

/// Parses an --isolate flag value ("none" | "process"). Throws
/// std::invalid_argument naming the valid values on anything else.
[[nodiscard]] IsolationMode isolation_from(const std::string& name);

/// Inverse of isolation_from, for diagnostics.
[[nodiscard]] const char* isolation_name(IsolationMode mode) noexcept;

/// Limits the supervisor enforces on one worker.
struct WorkerLimits {
  /// Hard wall-clock deadline in seconds; <= 0 disables the kill. Unlike the
  /// in-process --cell-deadline (a cooperative poll), this one is enforced
  /// with SIGKILL and therefore also stops cells wedged outside the
  /// simulator event loop.
  double deadline_s = 0.0;
  /// How much of the end of the worker's stderr to keep.
  std::size_t stderr_tail_bytes = 8192;
};

/// What happened to one supervised worker.
struct WorkerOutcome {
  bool ok = false;       // exited 0 within the deadline
  bool crashed = false;  // died on a signal the supervisor did not send
  bool killed = false;   // SIGKILLed by the supervisor at the deadline
  int exit_code = -1;    // WEXITSTATUS when the worker exited normally
  int term_signal = 0;   // WTERMSIG when the worker died on a signal
  double elapsed_s = 0.0;
  long max_rss_kb = 0;  // ru_maxrss of the reaped worker
  std::string stderr_tail;

  /// One-line human-readable classification ("crashed: SIGSEGV", "killed at
  /// the 30 s cell deadline", "exited 1", ...).
  [[nodiscard]] std::string describe() const;
};

/// Forks, runs `body` in the child (its int return becomes the exit code;
/// an escaping exception prints to stderr and exits 1), and supervises from
/// the parent: polls the stderr pipe, kills at the deadline, reaps with
/// rusage. Never throws on worker misbehavior — that is all encoded in the
/// returned WorkerOutcome (fork/pipe setup failure reports ok = false with
/// the reason in stderr_tail).
[[nodiscard]] WorkerOutcome run_supervised(const std::function<int()>& body,
                                           const WorkerLimits& limits);

/// Human-readable name for a termination signal ("SIGSEGV", "signal 42").
[[nodiscard]] std::string signal_name(int sig);

/// Append-only JSONL telemetry for a sweep (--events-out). One object per
/// line, flushed per event so `tail -f` works mid-sweep. The first line is
/// always a schema header:
///
///   {"ts":...,"event":"schema","version":2,
///    "events":"cell_start cell_done cell_failed cell_crashed cell_killed retry sweep_done",
///    "fields":"ts event cell scenario seed attempt elapsed_s rss_kb detail obs"}
///
/// then one object per event:
///
///   {"ts":1754650000.123456,"event":"cell_crashed","cell":7,
///    "scenario":"fig16/b=0.25","seed":123456789,"attempt":0,
///    "elapsed_s":1.932,"rss_kb":51240,"detail":"crashed: SIGABRT"}
///
/// cell_done events additionally carry the cell's deterministic obs snapshot
/// as a nested object: ,"obs":{"kernel_events":12345,...}. sweep_done is a
/// sweep-level event (cell fields absent) carrying store counters the same
/// way. elapsed_s / rss_kb / detail are omitted when unknown. Thread-safe:
/// BatchRunner workers emit concurrently. scripts/validate_events.py checks
/// all of this strictly; README documents the schema.
class SweepEventFeed {
 public:
  /// Opens (truncates) the feed file and writes the schema header line.
  /// Throws std::runtime_error if the path cannot be opened — a sweep asked
  /// to record telemetry must not silently drop it.
  explicit SweepEventFeed(const std::filesystem::path& path);

  /// `extra_json` is a pre-rendered fragment appended verbatim before the
  /// closing brace (e.g. `,"obs":{...}`); empty means no extra fields.
  void emit(std::string_view event, std::size_t cell, std::string_view scenario,
            std::uint64_t seed, int attempt, double elapsed_s = -1.0, long rss_kb = -1,
            std::string_view detail = {}, std::string_view extra_json = {});

  /// Sweep-level event: no cell / scenario / seed / attempt fields.
  void emit_sweep(std::string_view event, std::string_view extra_json = {});

 private:
  // Serialises line CONSTRUCTION as well as the write: the ts stamp happens
  // under this lock, so timestamps are non-decreasing in file order — a
  // property scripts/validate_events.py checks.
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace ebrc::testbed
