#include "testbed/scenario_io.hpp"

#include <concepts>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "util/binary_io.hpp"
#include "util/doc.hpp"

namespace ebrc::testbed {

namespace {

using util::DocTable;
using util::DocValue;

// ---- the single field traversal ---------------------------------------------
// Every serializable Scenario field is listed exactly once, here. The three
// visitors below (writer, reader, hasher) all run through this function, so
// the TOML/JSON schema and the fingerprint cannot disagree about what a
// Scenario is.

template <class V, class S>
void visit_scenario(V& v, S& s) {
  v.field("name", s.name);
  v.field("bottleneck_bps", s.bottleneck_bps);
  v.field("base_rtt_s", s.base_rtt_s);
  v.enum_field("queue", s.queue);
  v.field("droptail_buffer", s.droptail_buffer);
  v.field("n_tfrc", s.n_tfrc);
  v.field("n_tcp", s.n_tcp);
  v.field("n_poisson", s.n_poisson);
  v.field("poisson_rate_pps", s.poisson_rate_pps);
  v.field("n_onoff", s.n_onoff);
  v.field("onoff_peak_pps", s.onoff_peak_pps);
  v.field("onoff_mean_on_s", s.onoff_mean_on_s);
  v.field("onoff_mean_off_s", s.onoff_mean_off_s);
  v.field("duration_s", s.duration_s);
  v.field("warmup_s", s.warmup_s);
  v.seed_field("seed", s.seed);
  v.field("rtt_spread", s.rtt_spread);
  v.optional_table("red", s.red, [](auto& vv, auto& r) {
    vv.field("buffer_packets", r.buffer_packets);
    vv.field("min_th", r.min_th);
    vv.field("max_th", r.max_th);
    vv.field("max_p", r.max_p);
    vv.field("weight", r.weight);
    vv.field("gentle", r.gentle);
    vv.field("mean_packet_time", r.mean_packet_time);
  });
  v.table("tfrc", s.tfrc, [](auto& vv, auto& t) {
    vv.field("history_length", t.history_length);
    vv.field("comprehensive", t.comprehensive);
    vv.field("history_discounting", t.history_discounting);
    vv.field("receive_rate_cap", t.receive_rate_cap);
    vv.field("formula", t.formula);
    vv.field("packet_bytes", t.packet_bytes);
    vv.field("initial_rate_pps", t.initial_rate_pps);
    vv.field("rtt_smoothing", t.rtt_smoothing);
    vv.field("min_rate_pps", t.min_rate_pps);
  });
  v.table("tcp", s.tcp, [](auto& vv, auto& t) {
    vv.field("packet_bytes", t.packet_bytes);
    vv.field("initial_cwnd", t.initial_cwnd);
    vv.field("initial_ssthresh", t.initial_ssthresh);
    vv.field("dupack_threshold", t.dupack_threshold);
    vv.field("ack_every", t.ack_every);
    vv.field("delayed_ack_timeout", t.delayed_ack_timeout);
    vv.field("min_rto", t.min_rto);
    vv.field("max_rto", t.max_rto);
    vv.field("max_cwnd", t.max_cwnd);
  });
  // Back-compat contract: a default (disabled) workload block is emitted to
  // neither the document nor the fingerprint, so pre-workload scenario files
  // parse unchanged and keep their exact pre-workload fingerprints
  // (scenario_io_test pins the golden values).
  v.defaulted_table("workload", s.workload, [](auto& vv, auto& w) {
    vv.field("arrival_rate_per_s", w.arrival_rate_per_s);
    vv.field("interarrival", w.interarrival);
    vv.field("interarrival_shape", w.interarrival_shape);
    vv.field("size_dist", w.size_dist);
    vv.field("mean_size_pkts", w.mean_size_pkts);
    vv.field("pareto_shape", w.pareto_shape);
    vv.field("max_size_pkts", w.max_size_pkts);
    vv.field("min_size_pkts", w.min_size_pkts);
    vv.field("tfrc_fraction", w.tfrc_fraction);
    // PR 9: elided at the FIELD level while it holds the default, so even
    // enabled-workload scenarios from before the controller zoo keep their
    // exact documents and fingerprints.
    vv.defaulted_field("controller", w.controller, std::string());
    vv.field("max_concurrent", w.max_concurrent);
    vv.field("session_fraction", w.session_fraction);
    vv.field("session_transfers_mean", w.session_transfers_mean);
    vv.field("session_think_s", w.session_think_s);
  });
}

// ---- writer -----------------------------------------------------------------

struct DocWriter {
  DocTable out;

  void field(const char* k, const std::string& v) { out.push_back({k, DocValue(v)}); }
  void field(const char* k, double v) { out.push_back({k, DocValue(v)}); }
  void field(const char* k, bool v) { out.push_back({k, DocValue(v)}); }
  template <std::integral T>
  void field(const char* k, T v) {
    if constexpr (std::is_signed_v<T>) {
      if (v < 0) {
        out.push_back({k, DocValue(static_cast<std::int64_t>(v))});
        return;
      }
    }
    out.push_back({k, DocValue(static_cast<std::uint64_t>(v))});
  }
  void seed_field(const char* k, std::uint64_t v) { field(k, v); }
  void enum_field(const char* k, QueueKind q) { field(k, std::string(queue_kind_name(q))); }

  template <class Opt, class Fn>
  void optional_table(const char* k, const Opt& opt, Fn fn) {
    if (!opt) return;
    DocWriter w;
    fn(w, *opt);
    out.push_back({k, DocValue(std::move(w.out))});
  }
  template <class Sub, class Fn>
  void table(const char* k, const Sub& sub, Fn fn) {
    DocWriter w;
    fn(w, sub);
    out.push_back({k, DocValue(std::move(w.out))});
  }
  /// Sub-table elided entirely while it equals its default-constructed value.
  template <class Sub, class Fn>
  void defaulted_table(const char* k, const Sub& sub, Fn fn) {
    if (sub == Sub{}) return;
    table(k, sub, fn);
  }
  /// Scalar field elided from the document while it equals its default —
  /// schema growth inside an already-serialized table stays invisible to
  /// old documents.
  template <class T>
  void defaulted_field(const char* k, const T& v, const T& dflt) {
    if (v == dflt) return;
    field(k, v);
  }
};

// ---- reader -----------------------------------------------------------------

struct DocReader {
  DocReader(const DocTable& t, std::string ctx) : ctx_(std::move(ctx)) {
    for (const auto& e : t) remaining_.emplace(e.key, &e.value);
  }

  [[nodiscard]] const DocValue* take(const char* k) {
    const auto it = remaining_.find(k);
    if (it == remaining_.end()) return nullptr;
    const DocValue* v = it->second;
    remaining_.erase(it);
    return v;
  }

  [[noreturn]] void type_error(const char* k, const DocValue& v, const char* want) const {
    throw std::invalid_argument("scenario field '" + ctx_ + k + "': expected " + want +
                                ", got " + v.type_name());
  }

  void field(const char* k, std::string& out) {
    if (const DocValue* v = take(k)) {
      if (const std::string* s = v->if_string()) {
        out = *s;
      } else {
        type_error(k, *v, "string");
      }
    }
  }
  void field(const char* k, double& out) {
    if (const DocValue* v = take(k)) {
      if (const double* d = v->if_double()) {
        out = *d;
      } else if (const std::uint64_t* u = v->if_u64()) {
        out = static_cast<double>(*u);
      } else if (const std::int64_t* i = v->if_i64()) {
        out = static_cast<double>(*i);
      } else {
        type_error(k, *v, "float");
      }
    }
  }
  void field(const char* k, bool& out) {
    if (const DocValue* v = take(k)) {
      if (const bool* b = v->if_bool()) {
        out = *b;
      } else {
        type_error(k, *v, "bool");
      }
    }
  }
  template <std::integral T>
  void field(const char* k, T& out) {
    const DocValue* v = take(k);
    if (v == nullptr) return;
    if (const std::uint64_t* u = v->if_u64()) {
      if (*u > static_cast<std::uint64_t>(std::numeric_limits<T>::max())) {
        type_error(k, *v, "integer in range");
      }
      out = static_cast<T>(*u);
    } else if (const std::int64_t* i = v->if_i64()) {
      if constexpr (std::is_signed_v<T>) {
        if (*i < static_cast<std::int64_t>(std::numeric_limits<T>::min()) ||
            *i > static_cast<std::int64_t>(std::numeric_limits<T>::max())) {
          type_error(k, *v, "integer in range");
        }
        out = static_cast<T>(*i);
      } else {
        type_error(k, *v, "non-negative integer");
      }
    } else {
      type_error(k, *v, "integer");
    }
  }
  void seed_field(const char* k, std::uint64_t& out) { field(k, out); }
  void enum_field(const char* k, QueueKind& q) {
    std::string name(queue_kind_name(q));
    field(k, name);
    q = queue_kind_from(name);
  }

  template <class Opt, class Fn>
  void optional_table(const char* k, Opt& opt, Fn fn) {
    const DocValue* v = take(k);
    if (v == nullptr) {
      opt.reset();
      return;
    }
    const DocTable* t = v->if_table();
    if (t == nullptr) type_error(k, *v, "table");
    opt.emplace();
    DocReader r(*t, ctx_ + k + ".");
    fn(r, *opt);
    r.finish();
  }
  template <class Sub, class Fn>
  void table(const char* k, Sub& sub, Fn fn) {
    const DocValue* v = take(k);
    if (v == nullptr) return;
    const DocTable* t = v->if_table();
    if (t == nullptr) type_error(k, *v, "table");
    DocReader r(*t, ctx_ + k + ".");
    fn(r, sub);
    r.finish();
  }
  /// Reading: identical to table() — an absent block keeps the default.
  template <class Sub, class Fn>
  void defaulted_table(const char* k, Sub& sub, Fn fn) {
    table(k, sub, fn);
  }
  /// Reading: identical to field() — an absent key keeps the default.
  template <class T>
  void defaulted_field(const char* k, T& v, const T&) {
    field(k, v);
  }

  /// Rejects keys the schema does not know — a typo in a scenario file must
  /// not silently run the default configuration.
  void finish() const {
    if (remaining_.empty()) return;
    std::string msg = "unknown scenario field(s):";
    for (const auto& [k, v] : remaining_) {
      (void)v;
      msg += " '" + ctx_ + k + "'";
    }
    throw std::invalid_argument(msg);
  }

  std::map<std::string, const DocValue*> remaining_;
  std::string ctx_;
};

// ---- hasher -----------------------------------------------------------------

struct Hasher {
  util::Fnv1a h;

  void field(const char* k, const std::string& v) {
    h.str(k);
    h.str(v);
  }
  void field(const char* k, double v) {
    h.str(k);
    h.f64(v);
  }
  void field(const char* k, bool v) {
    h.str(k);
    h.u64(v ? 1 : 0);
  }
  template <std::integral T>
  void field(const char* k, T v) {
    h.str(k);
    if constexpr (std::is_signed_v<T>) {
      h.i64(static_cast<std::int64_t>(v));
    } else {
      h.u64(static_cast<std::uint64_t>(v));
    }
  }
  // The seed is a separate cache-key component, not scenario content.
  void seed_field(const char*, std::uint64_t) {}
  void enum_field(const char* k, QueueKind q) { field(k, std::string(queue_kind_name(q))); }

  template <class Opt, class Fn>
  void optional_table(const char* k, const Opt& opt, Fn fn) {
    h.str(k);
    h.u64(opt ? 1 : 0);
    if (opt) fn(*this, *opt);
  }
  template <class Sub, class Fn>
  void table(const char* k, const Sub& sub, Fn fn) {
    h.str(k);
    fn(*this, sub);
  }
  /// A default sub-table contributes NOTHING to the digest (not even its
  /// key): fingerprints of pre-existing scenarios survive schema growth, so
  /// their cache entries are invalidated by the salt policy, never by the
  /// mere existence of a new feature they do not use.
  template <class Sub, class Fn>
  void defaulted_table(const char* k, const Sub& sub, Fn fn) {
    if (sub == Sub{}) return;
    table(k, sub, fn);
  }
  /// Same policy at scalar granularity: a field at its default contributes
  /// nothing, so fingerprints predating the field survive its introduction.
  template <class T>
  void defaulted_field(const char* k, const T& v, const T& dflt) {
    if (v == dflt) return;
    field(k, v);
  }
};

[[nodiscard]] DocTable to_doc(const Scenario& s) {
  DocWriter w;
  visit_scenario(w, s);
  return std::move(w.out);
}

[[nodiscard]] Scenario from_doc(const DocTable& doc) {
  Scenario s;
  DocReader r(doc, "");
  visit_scenario(r, s);
  r.finish();
  return s;
}

}  // namespace

std::string scenario_to_toml(const Scenario& s) { return util::to_toml(to_doc(s)); }
std::string scenario_to_json(const Scenario& s) { return util::to_json(to_doc(s)); }

Scenario scenario_from_toml(std::string_view text) { return from_doc(util::parse_toml(text)); }
Scenario scenario_from_json(std::string_view text) { return from_doc(util::parse_json(text)); }

void save_scenario(const Scenario& s, const std::filesystem::path& path) {
  const auto ext = path.extension().string();
  std::string text;
  if (ext == ".toml") {
    text = scenario_to_toml(s);
  } else if (ext == ".json") {
    text = scenario_to_json(s);
  } else {
    throw std::invalid_argument("save_scenario: unsupported extension '" + ext +
                                "' (use .toml or .json)");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_scenario: cannot open " + path.string());
  out << text;
  if (!out.flush()) throw std::runtime_error("save_scenario: write failed for " + path.string());
}

Scenario load_scenario(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_scenario: cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto ext = path.extension().string();
  if (ext == ".toml") return scenario_from_toml(buf.str());
  if (ext == ".json") return scenario_from_json(buf.str());
  throw std::invalid_argument("load_scenario: unsupported extension '" + ext +
                              "' (use .toml or .json)");
}

std::uint64_t fingerprint(const Scenario& s) {
  Hasher h;
  visit_scenario(h, s);
  return h.h.digest();
}

std::string_view queue_kind_name(QueueKind kind) {
  return kind == QueueKind::kDropTail ? "droptail" : "red";
}

QueueKind queue_kind_from(std::string_view name) {
  if (name == "droptail") return QueueKind::kDropTail;
  if (name == "red") return QueueKind::kRed;
  throw std::invalid_argument("unknown queue kind '" + std::string(name) +
                              "' (expected droptail | red)");
}

}  // namespace ebrc::testbed
