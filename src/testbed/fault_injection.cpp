#include "testbed/fault_injection.hpp"

#include <atomic>
#include <charconv>
#include <mutex>
#include <stdexcept>

namespace ebrc::testbed::fault {

namespace {

std::mutex g_mu;
std::vector<Injection> g_plan;          // written under g_mu, read lock-free
std::atomic<bool> g_armed{false};       // fast-path gate + publish fence
std::atomic<std::uint64_t> g_fired{0};

[[nodiscard]] std::uint64_t parse_u64(std::string_view token, const std::string& context) {
  std::uint64_t v = 0;
  const auto r = std::from_chars(token.data(), token.data() + token.size(), v);
  if (token.empty() || r.ec != std::errc{} || r.ptr != token.data() + token.size()) {
    throw std::invalid_argument("fault plan: malformed number '" + std::string(token) +
                                "' in '" + context + "'");
  }
  return v;
}

[[nodiscard]] Injection parse_token(const std::string& token) {
  const auto at = token.find('@');
  if (at == std::string::npos || at == 0) {
    throw std::invalid_argument("fault plan: expected kind@key[:attempt], got '" + token + "'");
  }
  const std::string kind_name = token.substr(0, at);
  Injection inj;
  bool takes_attempt = false;
  if (kind_name == "throw") {
    inj.kind = Kind::kThrow;
    takes_attempt = true;
  } else if (kind_name == "timeout") {
    inj.kind = Kind::kDeadlineOverrun;
    takes_attempt = true;
  } else if (kind_name == "crash") {
    inj.kind = Kind::kCrash;
    takes_attempt = true;
  } else if (kind_name == "hang") {
    inj.kind = Kind::kHang;
    takes_attempt = true;
  } else if (kind_name == "oom") {
    inj.kind = Kind::kOomStorm;
    takes_attempt = true;
  } else if (kind_name == "torn-cache") {
    inj.kind = Kind::kTornCacheWrite;
  } else if (kind_name == "torn-index") {
    inj.kind = Kind::kTornIndexRecord;
  } else {
    throw std::invalid_argument(
        "fault plan: unknown kind '" + kind_name +
        "' (known: throw, timeout, crash, hang, oom, torn-cache, torn-index) in '" + token + "'");
  }

  std::string rest = token.substr(at + 1);
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    if (!takes_attempt) {
      throw std::invalid_argument("fault plan: '" + kind_name +
                                  "' takes no :attempt suffix in '" + token + "'");
    }
    const std::string attempt_tok = rest.substr(colon + 1);
    if (attempt_tok == "*") {
      inj.attempt = kEveryAttempt;
    } else {
      inj.attempt = static_cast<int>(parse_u64(attempt_tok, token));
    }
    rest = rest.substr(0, colon);
  }
  inj.key = parse_u64(rest, token);
  return inj;
}

}  // namespace

void arm(std::vector<Injection> plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = std::move(plan);
  g_fired.store(0, std::memory_order_relaxed);
  g_armed.store(!g_plan.empty(), std::memory_order_release);
}

void disarm() { arm({}); }

bool armed() noexcept { return g_armed.load(std::memory_order_acquire); }

bool fire(Kind kind, std::uint64_t key, int attempt) {
  // Lock-free on purpose: fire() runs inside forked worker subprocesses,
  // which inherit the parent's mutexes in whatever state the moment of fork
  // caught them — taking g_mu here could deadlock a child forever. arm()'s
  // release-store on g_armed publishes the plan; the acquire-load above
  // makes reading g_plan without the lock safe as long as nobody re-arms
  // mid-sweep (see the header contract).
  if (!armed()) return false;
  for (const auto& inj : g_plan) {
    if (inj.kind != kind || inj.key != key) continue;
    if (kind != Kind::kTornCacheWrite && kind != Kind::kTornIndexRecord) {
      if (inj.attempt != kEveryAttempt && inj.attempt != attempt) continue;
    }
    g_fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::uint64_t fired() noexcept { return g_fired.load(std::memory_order_relaxed); }

std::vector<Injection> parse_plan(const std::string& spec) {
  std::vector<Injection> plan;
  std::string token;
  const auto flush = [&] {
    if (!token.empty()) {
      plan.push_back(parse_token(token));
      token.clear();
    }
  };
  for (char c : spec) {
    if (c == ',' || c == ';') {
      flush();
    } else if (c != ' ') {
      token += c;
    }
  }
  flush();
  if (plan.empty()) {
    throw std::invalid_argument("fault plan: no injections in '" + spec + "'");
  }
  return plan;
}

}  // namespace ebrc::testbed::fault
