// Scenario ⇄ TOML/JSON round-trip and content fingerprinting.
//
// Registry entries and grid sweeps become definable in files — new workloads
// without recompiling — and the fingerprint is the scenario half of the
// ResultStore cache key. One field-visitor traversal (scenario_io.cpp)
// drives the serializer, the parser, and the hash, so a field added there is
// automatically round-tripped AND invalidates stale cache entries; a field
// added to Scenario but not to the visitor is caught by the property test's
// perturbation sweep.
//
// Round-trips are lossless: doubles are printed with std::to_chars shortest
// form and re-parsed with std::from_chars, which restores the exact bit
// pattern, so fingerprint(parse(serialize(s))) == fingerprint(s).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "testbed/scenario.hpp"

namespace ebrc::testbed {

[[nodiscard]] std::string scenario_to_toml(const Scenario& s);
[[nodiscard]] std::string scenario_to_json(const Scenario& s);

/// Parse a scenario document. Missing keys keep their Scenario defaults
/// (files only need to state what they change); unknown keys and type
/// mismatches throw std::invalid_argument naming the offending field.
[[nodiscard]] Scenario scenario_from_toml(std::string_view text);
[[nodiscard]] Scenario scenario_from_json(std::string_view text);

/// File I/O dispatching on the extension: ".toml" or ".json".
void save_scenario(const Scenario& s, const std::filesystem::path& path);
[[nodiscard]] Scenario load_scenario(const std::filesystem::path& path);

/// Content hash over every field EXCEPT the seed (the ResultStore keys runs
/// by (fingerprint, seed, code salt); the seed axis stays separate so one
/// scenario's replications share a fingerprint).
[[nodiscard]] std::uint64_t fingerprint(const Scenario& s);

/// QueueKind ⇄ its serialized name ("droptail" | "red").
[[nodiscard]] std::string_view queue_kind_name(QueueKind kind);
[[nodiscard]] QueueKind queue_kind_from(std::string_view name);

}  // namespace ebrc::testbed
