// Deterministic fault-injection harness for the sweep execution layer.
//
// Compiled in unconditionally (the hooks are a disarmed atomic-flag check on
// the hot path, ~1 ns) and armed only by tests and the --inject-faults CLI
// hook, this is how the fault-tolerance machinery in batch.cpp and
// result_store.cpp is PROVEN rather than assumed: a test arms a plan of
// injections at chosen cells, runs a real sweep, and asserts the failure
// manifest, the retry counters, and the resume behavior.
//
// Fault kinds and what their `key` means:
//
//   kThrow            — throw from inside the cell executor. key = batch cell
//                       index; fires on the spec's attempt (default 0, the
//                       first try — so a sweep with --max-retries >= 1
//                       recovers, modeling a transient infra failure;
//                       attempt = kEveryAttempt makes it persistent).
//   kDeadlineOverrun  — inflate the cell's measured wall-clock elapsed past
//                       the configured --cell-deadline, as if the cell hung.
//                       key = batch cell index; attempt as above.
//   kCrash            — abort() inside the cell executor, modeling SIGSEGV /
//                       SIGABRT worker death. Under --isolate=process only
//                       the worker subprocess dies; in-process it takes the
//                       whole driver down (that asymmetry is the point).
//                       key = batch cell index; attempt as above.
//   kHang             — wedge the cell: under --isolate=process the worker
//                       sleeps far past any deadline until the supervisor
//                       SIGKILLs it; in-process it spins on the cooperative
//                       wall-deadline poll until that throws. key = batch
//                       cell index; attempt as above.
//   kOomStorm         — allocate until the allocator gives out: under
//                       --isolate=process the worker caps its own RLIMIT_AS,
//                       allocates to the cap, and aborts (a deterministic
//                       stand-in for the kernel OOM killer); in-process it
//                       throws std::bad_alloc. key = batch cell index;
//                       attempt as above.
//   kTornCacheWrite   — truncate a ResultStore entry to half its size right
//                       after the atomic rename, modeling post-crash on-disk
//                       corruption. key = the store's write ordinal (0-based
//                       count of store() calls on that ResultStore).
//   kTornIndexRecord  — write only a prefix of an INDEX.ebrcidx record,
//                       modeling a crash mid-append. key = the store's index
//                       append ordinal.
//
// Plans parse from a compact spec string (the --inject-faults value):
//
//   "throw@3,throw@7:1,timeout@5,crash@1:*,hang@2:*,oom@4,torn-cache@0"
//
// i.e. comma/semicolon-separated `kind@key[:attempt]` tokens where kind is
// throw | timeout | crash | hang | oom | torn-cache | torn-index and
// `:attempt` (all cell-keyed kinds) selects the attempt to fire on
// (`:*` = every attempt).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ebrc::testbed::fault {

enum class Kind {
  kThrow,
  kDeadlineOverrun,
  kCrash,
  kHang,
  kOomStorm,
  kTornCacheWrite,
  kTornIndexRecord,
};

/// Fires on every attempt instead of one specific attempt number.
inline constexpr int kEveryAttempt = -1;

struct Injection {
  Kind kind = Kind::kThrow;
  std::uint64_t key = 0;  // cell index or write/append ordinal (see above)
  int attempt = 0;        // cell-keyed kinds only; kEveryAttempt = all
};

/// Replaces the armed plan. Thread-safe against other arm()/disarm() calls,
/// but must not race a concurrent fire(): the read path is deliberately
/// lock-free so a forked worker can fire() without touching a mutex the
/// parent's threads may hold (fork snapshots mutexes mid-lock). Sweeps arm
/// the plan before launching workers and disarm after joining them.
void arm(std::vector<Injection> plan);

/// Clears the plan; every subsequent fire() is false.
void disarm();

/// True when a plan is armed (cheap, lock-free).
[[nodiscard]] bool armed() noexcept;

/// True when the armed plan contains a matching injection — the caller must
/// then inject the fault. Counts each match. Disarmed: always false.
[[nodiscard]] bool fire(Kind kind, std::uint64_t key, int attempt = 0);

/// Total injections fired since the last arm().
[[nodiscard]] std::uint64_t fired() noexcept;

/// Parses the --inject-faults spec syntax documented above. Throws
/// std::invalid_argument naming the offending token on malformed input.
[[nodiscard]] std::vector<Injection> parse_plan(const std::string& spec);

}  // namespace ebrc::testbed::fault
