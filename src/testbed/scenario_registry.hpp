// Named scenario factories and sweep generators.
//
// The registry maps a stable name ("ns2", "lab-red", "wan-umelb", ...) to a
// factory producing the corresponding Scenario for a given seed. Benches,
// tests, and future drivers address experiment setups by name instead of
// hand-constructing them, and the sweep generators expand (names × reps) or
// (parameter grid × reps) into the flat std::vector<Scenario> that
// BatchRunner consumes — with every seed derived up front from the root seed,
// so batches stay deterministic under any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "testbed/scenario.hpp"

namespace ebrc::testbed {

class ScenarioRegistry {
 public:
  using Factory = std::function<Scenario(std::uint64_t seed)>;

  /// Registers `factory` under `name`; throws std::invalid_argument on a
  /// duplicate name.
  void add(const std::string& name, const std::string& description, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Builds the named scenario; unknown names throw with the registered
  /// names listed.
  [[nodiscard]] Scenario make(const std::string& name, std::uint64_t seed) const;

  [[nodiscard]] const std::string& description(const std::string& name) const;

  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// The paper's setups, preloaded:
  ///   ns2                      Section V-A.2 (15 Mb/s RED, 1 TFRC + 1 TCP)
  ///   lab-droptail-64          Section V-A.3 lab hub, DropTail(64)
  ///   lab-droptail-100         ... DropTail(100)
  ///   lab-red                  ... lab RED parameters
  ///   wan-inria|kth|umass|umelb  the Table-I emulated paths (1 flow each)
  ///   churn-mixed              dynamic workload, 85% offered load, 50/50 mix
  ///   churn-overload           dynamic workload, offered load 1.2 (saturated pool)
  [[nodiscard]] static const ScenarioRegistry& builtin();

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Expands names × reps into a flat batch (name-major, replication-minor),
/// seeding each run from (root_seed, name, rep).
[[nodiscard]] std::vector<Scenario> sweep(const ScenarioRegistry& registry,
                                          const std::vector<std::string>& names,
                                          std::uint64_t root_seed, int reps);

/// Parameterized sweep over one named scenario: for every value in `values`
/// and every replication, builds the scenario and applies
/// `apply(scenario, value)`. Seeds depend on (root_seed, name, value index,
/// rep), never on batch order, so extending the grid does not perturb
/// existing points. Layout is value-major: index = v * reps + rep.
[[nodiscard]] std::vector<Scenario> grid_sweep(
    const ScenarioRegistry& registry, const std::string& name, std::uint64_t root_seed,
    int reps, const std::vector<double>& values,
    const std::function<void(Scenario&, double)>& apply);

}  // namespace ebrc::testbed
