// The experiment runner: builds the dumbbell, attaches the flow population,
// runs with warm-up truncation, and evaluates the paper's per-flow metrics
// and the four-way TCP-friendliness breakdown (Section I-A):
//
//   (1) conservativeness      x̄  / f(p, r)       (TFRC)
//   (2) loss-event rates      p' / p              (TCP vs TFRC)
//   (3) round-trip times      r' / r
//   (4) TCP formula obedience x̄' / f(p', r')
//
// plus the headline friendliness ratio x̄ / x̄'.
#pragma once

#include <string>
#include <vector>

#include "obs/probe.hpp"
#include "obs/registry.hpp"
#include "testbed/scenario.hpp"
#include "workload/flow_manager.hpp"

namespace ebrc::obs {
struct RunObs;
}

namespace ebrc::testbed {

struct FlowStats {
  std::string kind;          // "tfrc" | "tcp" | "poisson"
  int flow_id = 0;
  double throughput_pps = 0.0;  // goodput over the measurement window
  double p = 0.0;               // loss-event rate (one-RTT grouping)
  double mean_rtt_s = 0.0;      // event-average RTT
  double formula_rate = 0.0;    // f(p, r) at this flow's p and r
  double normalized = 0.0;      // throughput / formula_rate
  double cov_theta_thetahat = 0.0;  // replayed with the scenario's weights
  double normalized_cov = 0.0;      // cov * p^2 (Figures 5 and 10)
  std::uint64_t loss_events = 0;
};

struct Breakdown {
  double conservativeness = 0.0;  // x̄/f(p,r), TFRC aggregate
  double loss_rate_ratio = 0.0;   // p'/p
  double rtt_ratio = 0.0;         // r'/r
  double tcp_formula_ratio = 0.0; // x̄'/f(p',r')
  double friendliness = 0.0;      // x̄/x̄'
};

struct ExperimentResult {
  std::string scenario_name;
  std::vector<FlowStats> flows;

  // population aggregates (means over flows of the kind)
  double tfrc_throughput = 0.0;
  double tcp_throughput = 0.0;
  double tfrc_p = 0.0;
  double tcp_p = 0.0;
  double poisson_p = 0.0;
  double tfrc_rtt = 0.0;
  double tcp_rtt = 0.0;
  double bottleneck_utilization = 0.0;

  Breakdown breakdown;

  // Dynamic-workload telemetry; meaningful only when workload_active (the
  // scenario's workload block was enabled).
  bool workload_active = false;
  workload::WorkloadSummary workload;

  /// End-of-run obs::Registry snapshot (kernel pops, queue drops, per-class
  /// transfer counts, ...). Deterministic — depends only on the scenario and
  /// seed, never on probing — so it is cached alongside the other metrics
  /// and surfaces as `obs_<name>` in batch aggregates and the event feed.
  obs::Snapshot obs;
  /// Probe time series (--probe-interval only). Never cached: a warm cell
  /// replays its metrics from the store but has no simulator to sample.
  std::vector<obs::Series> obs_series;

  [[nodiscard]] std::vector<const FlowStats*> of_kind(const std::string& kind) const;
};

/// Runs the scenario to completion and computes all metrics. `ro` carries
/// the optional observability request (probe interval, trace buffer, flight
/// ring); null means instruments-only (snapshot still taken, no sampling).
[[nodiscard]] ExperimentResult run_experiment(const Scenario& scenario,
                                              const obs::RunObs* ro = nullptr);

}  // namespace ebrc::testbed
