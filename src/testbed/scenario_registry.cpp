#include "testbed/scenario_registry.hpp"

#include <cctype>
#include <stdexcept>

#include "sim/random.hpp"
#include "testbed/batch.hpp"
#include "testbed/wan_paths.hpp"

namespace ebrc::testbed {

void ScenarioRegistry::add(const std::string& name, const std::string& description,
                           Factory factory) {
  if (!factory) throw std::invalid_argument("ScenarioRegistry::add: null factory for " + name);
  if (!entries_.emplace(name, Entry{description, std::move(factory)}).second) {
    throw std::invalid_argument("ScenarioRegistry::add: duplicate scenario '" + name + "'");
  }
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

Scenario ScenarioRegistry::make(const std::string& name, std::uint64_t seed) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string msg = "ScenarioRegistry: unknown scenario '" + name + "' (registered:";
    for (const auto& [k, e] : entries_) {
      (void)e;
      msg += " " + k;
    }
    msg += ")";
    throw std::invalid_argument(msg);
  }
  return it->second.factory(seed);
}

const std::string& ScenarioRegistry::description(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("ScenarioRegistry: unknown scenario '" + name + "'");
  }
  return it->second.description;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, e] : entries_) {
    (void)e;
    out.push_back(k);
  }
  return out;
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry reg = [] {
    ScenarioRegistry r;
    r.add("ns2", "paper ns-2 setup: 15 Mb/s RED, 1 TFRC + 1 TCP, L=8, comprehensive",
          [](std::uint64_t seed) { return ns2_scenario(1, 1, 8, seed); });
    r.add("lab-droptail-64", "lab hub: 10 Mb/s DropTail(64), 1 TFRC + 1 TCP",
          [](std::uint64_t seed) { return lab_scenario(QueueKind::kDropTail, 64, 1, seed); });
    r.add("lab-droptail-100", "lab hub: 10 Mb/s DropTail(100), 1 TFRC + 1 TCP",
          [](std::uint64_t seed) { return lab_scenario(QueueKind::kDropTail, 100, 1, seed); });
    r.add("lab-red", "lab hub: 10 Mb/s RED (tc parameters), 1 TFRC + 1 TCP",
          [](std::uint64_t seed) { return lab_scenario(QueueKind::kRed, 100, 1, seed); });
    r.add("churn-mixed",
          "flow churn: Poisson arrivals of finite transfers at 85% offered load, "
          "50/50 TFRC:TCP mix, 128-slot pool",
          [](std::uint64_t seed) { return churn_scenario(0.85, 0.5, seed); });
    r.add("churn-overload",
          "flow churn: offered load 1.2 (pool saturates — the many-flows regime), "
          "50/50 TFRC:TCP mix",
          [](std::uint64_t seed) { return churn_scenario(1.2, 0.5, seed); });
    for (const auto& path : table1_paths()) {
      std::string lower = path.name;
      for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      r.add("wan-" + lower,
            "Table-I emulated path to " + path.name + ", 1 TFRC + 1 TCP + cross traffic",
            [path](std::uint64_t seed) { return wan_scenario(path, 1, seed); });
    }
    return r;
  }();
  return reg;
}

std::vector<Scenario> sweep(const ScenarioRegistry& registry,
                            const std::vector<std::string>& names, std::uint64_t root_seed,
                            int reps) {
  if (reps < 1) throw std::invalid_argument("sweep: reps must be >= 1");
  std::vector<Scenario> out;
  out.reserve(names.size() * static_cast<std::size_t>(reps));
  for (const auto& name : names) {
    // Delegate to replicate() so both batch entry points key seeds off
    // Scenario::name — the same logical scenario gets the same sample paths
    // whether the batch came from the registry or a hand-built Scenario.
    const auto runs = replicate(registry.make(name, /*seed=*/0), root_seed, reps);
    out.insert(out.end(), runs.begin(), runs.end());
  }
  return out;
}

std::vector<Scenario> grid_sweep(const ScenarioRegistry& registry, const std::string& name,
                                 std::uint64_t root_seed, int reps,
                                 const std::vector<double>& values,
                                 const std::function<void(Scenario&, double)>& apply) {
  if (reps < 1) throw std::invalid_argument("grid_sweep: reps must be >= 1");
  if (!apply) throw std::invalid_argument("grid_sweep: null apply");
  std::vector<Scenario> out;
  out.reserve(values.size() * static_cast<std::size_t>(reps));
  for (std::size_t v = 0; v < values.size(); ++v) {
    for (int rep = 0; rep < reps; ++rep) {
      Scenario s = registry.make(name, /*seed=*/0);
      apply(s, values[v]);
      // Keyed off Scenario::name like replicate(), with the value index
      // distinguishing grid points whose apply() does not rename.
      s.seed = sim::hash_seed(root_seed, s.name + "#v" + std::to_string(v) + "#rep" +
                                             std::to_string(rep));
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace ebrc::testbed
