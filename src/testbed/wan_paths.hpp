// Emulated wide-area paths standing in for the paper's Internet experiments
// (Table I): per-path access rate and base RTT from the table, with on/off
// background traffic supplying the bursty ambient loss that a real WAN path
// exhibits.
//
// Substitution note (see DESIGN.md): the paper used live paths from EPFL to
// INRIA / UMASS / KTH / UMELB purely as sources of diverse RTTs and low
// loss-event rates. We reproduce the rate class and RTT of each receiver and
// generate losses with cross traffic through the same bottleneck the test
// flows use; the access rates are scaled down (100 -> 20 Mb/s, 10 -> 6 Mb/s)
// to keep packet-event counts tractable, which preserves every ratio the
// figures report (all quantities are normalized per path).
#pragma once

#include <vector>

#include "testbed/scenario.hpp"

namespace ebrc::testbed {

struct WanPath {
  std::string name;       // receiver site
  double access_bps;      // emulated bottleneck rate
  double base_rtt_s;      // Table I RTT
  double background_load; // fraction of the bottleneck eaten by cross traffic
};

/// The four Table-I receivers.
[[nodiscard]] std::vector<WanPath> table1_paths();

/// Builds the scenario for `path` with `n_each` TCP and TFRC test flows
/// (the paper ran n in {1, 2, 4, 6, 8, 10}).
[[nodiscard]] Scenario wan_scenario(const WanPath& path, int n_each, std::uint64_t seed);

}  // namespace ebrc::testbed
