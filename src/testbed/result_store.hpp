// Content-addressed on-disk cache of ExperimentResults.
//
// A run is keyed by (scenario fingerprint, derived seed, code-version salt):
// the fingerprint covers every Scenario field except the seed
// (scenario_io.hpp), the seed is the per-replication derived seed assigned
// before the batch launches, and the salt names the simulator's behavioral
// version — bump kResultCacheSalt whenever a change shifts sample paths or
// metric definitions, and every stale entry silently becomes a miss.
//
// Files are self-contained: a header carrying the magic, format version, the
// full key, and an FNV-1a checksum of the payload, then the payload with
// every double stored as its IEEE bit pattern. Loads therefore return
// bit-identical results, and ANY defect — truncation, flipped bytes, a
// foreign file — fails validation and reads as a miss (the runner falls back
// to re-simulating; it never crashes on a bad cache). Writes go through a
// temp file + rename so concurrent readers and crashed writers cannot
// observe a half-written entry.
//
// Layout under root(): <2 hex of fingerprint>/<fingerprint>-<seed>-<salt>.ebrcres
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

namespace ebrc::testbed {

/// Behavioral version of the simulator baked into every cache key. Bump on
/// any change that alters sample paths or metrics (new RNG, packet-path
/// reorder, metric redefinition, ...) so old entries are never replayed.
inline constexpr std::uint64_t kResultCacheSalt = 5;  // PR 5: workload telemetry in the payload

class ResultStore {
 public:
  /// Creates `root` (and parents) if absent.
  explicit ResultStore(std::filesystem::path root, std::uint64_t salt = kResultCacheSalt);

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }
  [[nodiscard]] std::uint64_t salt() const noexcept { return salt_; }

  /// Cache probe; nullopt on miss or on a malformed/corrupt file (which also
  /// bumps counters().corrupt). Thread-safe.
  [[nodiscard]] std::optional<ExperimentResult> load(const Scenario& s) const;

  /// Persists the result under the scenario's key (temp file + rename; the
  /// last writer of identical content wins harmlessly). Thread-safe.
  void store(const Scenario& s, const ExperimentResult& r) const;

  /// Where the scenario's entry lives (exposed for tests and tooling).
  [[nodiscard]] std::filesystem::path path_for(const Scenario& s) const;

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t stored = 0;
  };
  [[nodiscard]] Counters counters() const noexcept;

 private:
  /// Fingerprint-precomputed variant behind both load() and store(), so one
  /// call hashes the scenario exactly once.
  [[nodiscard]] std::filesystem::path path_for(std::uint64_t fp, std::uint64_t seed) const;

  std::filesystem::path root_;
  std::uint64_t salt_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> corrupt_{0};
  mutable std::atomic<std::uint64_t> stored_{0};
};

/// The raw payload codec, exposed for the merge tool and tests.
[[nodiscard]] std::string encode_result(const ExperimentResult& r);
[[nodiscard]] std::optional<ExperimentResult> decode_result(std::string_view payload);

/// True when `path` holds a structurally valid result file (any key):
/// magic, version, length, and checksum all verify. merge_results uses this
/// to skip corrupt shard entries instead of propagating them.
[[nodiscard]] bool validate_result_file(const std::filesystem::path& path);

/// The store's file extension (".ebrcres").
[[nodiscard]] std::string_view result_file_extension();

}  // namespace ebrc::testbed
