// Content-addressed on-disk cache of ExperimentResults.
//
// A run is keyed by (scenario fingerprint, derived seed, code-version salt):
// the fingerprint covers every Scenario field except the seed
// (scenario_io.hpp), the seed is the per-replication derived seed assigned
// before the batch launches, and the salt names the simulator's behavioral
// version — bump kResultCacheSalt whenever a change shifts sample paths or
// metric definitions, and every stale entry silently becomes a miss.
//
// Files are self-contained: a header carrying the magic, format version, the
// full key, and an FNV-1a checksum of the payload, then the payload with
// every double stored as its IEEE bit pattern. Loads therefore return
// bit-identical results, and ANY defect — truncation, flipped bytes, a
// foreign file — fails validation and reads as a miss (the runner falls back
// to re-simulating; it never crashes on a bad cache). Writes go through a
// temp file + rename so concurrent readers and crashed writers cannot
// observe a half-written entry.
//
// Layout under root(): <2 hex of fingerprint>/<fingerprint>-<seed>-<salt>.ebrcres
//
// A sidecar index (root()/INDEX.ebrcidx) makes warm probes O(1): an
// append-only file of 32-byte checksummed (fingerprint, seed, salt) records,
// loaded into memory once at construction, answers "is this key cached?"
// without touching the filesystem — a 10^6-cell sweep against a partial
// cache costs one index read instead of 10^6 failed stats. Every store()
// appends a record; a missing, foreign, or torn index (crash mid-append) is
// detected by the per-record checksum and REBUILT from the entry filenames,
// so the index is a pure accelerator — it can always be deleted. Entries
// that fail validation at load are quarantined to <entry>.corrupt (kept for
// forensics, diagnosed on stderr) rather than silently overwritten; the
// runner then re-simulates and stores a fresh entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>

#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

namespace ebrc::testbed {

/// Behavioral version of the simulator baked into every cache key. Bump on
/// any change that alters sample paths or metrics (new RNG, packet-path
/// reorder, metric redefinition, ...) so old entries are never replayed.
inline constexpr std::uint64_t kResultCacheSalt = 7;  // PR 10: obs snapshot in the payload

class ResultStore {
 public:
  /// Creates `root` (and parents) if absent.
  explicit ResultStore(std::filesystem::path root, std::uint64_t salt = kResultCacheSalt);

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }
  [[nodiscard]] std::uint64_t salt() const noexcept { return salt_; }

  /// Cache probe; nullopt on miss or on a malformed/corrupt file (which also
  /// bumps counters().corrupt and quarantines the file). Keys absent from
  /// the index answer without touching the filesystem. Thread-safe.
  [[nodiscard]] std::optional<ExperimentResult> load(const Scenario& s) const;

  /// Pure in-memory existence probe against the index: zero filesystem
  /// operations, O(1). A true verdict can be stale (entry quarantined or
  /// deleted since the index was read) — load() degrades that to a miss.
  [[nodiscard]] bool probe(const Scenario& s) const;

  /// Persists the result under the scenario's key (temp file + rename; the
  /// last writer of identical content wins harmlessly) and appends its index
  /// record. Thread-safe.
  void store(const Scenario& s, const ExperimentResult& r) const;

  /// Merges one key into the in-memory index without touching the
  /// filesystem. Used by the process-isolated sweep path: a worker
  /// subprocess stores the entry (and appends the on-disk index record)
  /// through its own ResultStore, so after reaping it the parent admits the
  /// key here to keep its in-memory index coherent with the disk.
  /// Thread-safe.
  void admit(const Scenario& s) const;

  /// Where the scenario's entry lives (exposed for tests and tooling).
  [[nodiscard]] std::filesystem::path path_for(const Scenario& s) const;

  /// Rescans root() for entry files and rewrites the index from their
  /// filenames (all salts preserved), then reloads the in-memory set.
  /// Returns the number of records written. Use after placing entries
  /// without going through store() (merge_results does).
  std::size_t rebuild_index();

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t stored = 0;
    std::uint64_t quarantined = 0;      // corrupt entries renamed to *.corrupt
    std::uint64_t index_filtered = 0;   // misses answered by the index alone
    std::uint64_t fs_probes = 0;        // load() calls that touched the filesystem
  };
  [[nodiscard]] Counters counters() const noexcept;

  /// The index sidecar's location (root()/INDEX.ebrcidx).
  [[nodiscard]] std::filesystem::path index_path() const;

 private:
  /// Fingerprint-precomputed variant behind both load() and store(), so one
  /// call hashes the scenario exactly once.
  [[nodiscard]] std::filesystem::path path_for(std::uint64_t fp, std::uint64_t seed) const;

  /// Loads the index file into index_; any structural defect (missing file,
  /// bad header, torn record) falls through to rebuild_index().
  void load_or_rebuild_index();
  void append_index_record(std::uint64_t fp, std::uint64_t seed) const;
  [[nodiscard]] bool index_contains(std::uint64_t fp, std::uint64_t seed) const;

  std::filesystem::path root_;
  std::uint64_t salt_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> corrupt_{0};
  mutable std::atomic<std::uint64_t> stored_{0};
  mutable std::atomic<std::uint64_t> quarantined_{0};
  mutable std::atomic<std::uint64_t> index_filtered_{0};
  mutable std::atomic<std::uint64_t> fs_probes_{0};
  mutable std::atomic<std::uint64_t> write_seq_{0};   // fault-injection ordinal
  mutable std::atomic<std::uint64_t> append_seq_{0};  // fault-injection ordinal

  struct IndexKey {
    std::uint64_t fp = 0;
    std::uint64_t seed = 0;
    bool operator==(const IndexKey&) const = default;
  };
  struct IndexKeyHash {
    std::size_t operator()(const IndexKey& k) const noexcept {
      // splitmix64-style mix keeps the table balanced even though fp and
      // seed are themselves hash-like.
      std::uint64_t x = k.fp ^ (k.seed + 0x9e3779b97f4a7c15ull);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  mutable std::mutex index_mu_;
  mutable std::unordered_set<IndexKey, IndexKeyHash> index_;
};

/// The raw payload codec, exposed for the merge tool and tests.
[[nodiscard]] std::string encode_result(const ExperimentResult& r);
[[nodiscard]] std::optional<ExperimentResult> decode_result(std::string_view payload);

/// True when `path` holds a structurally valid result file (any key):
/// magic, version, length, and checksum all verify. merge_results uses this
/// to skip corrupt shard entries instead of propagating them.
[[nodiscard]] bool validate_result_file(const std::filesystem::path& path);

/// The store's file extension (".ebrcres").
[[nodiscard]] std::string_view result_file_extension();

/// The quarantine suffix appended to corrupt entries (".corrupt").
[[nodiscard]] std::string_view quarantine_suffix();

}  // namespace ebrc::testbed
