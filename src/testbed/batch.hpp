// Batch execution engine: fans a vector of scenarios (scenarios × seeds) out
// across a bounded team of worker threads and aggregates the per-run
// metrics. Workers are spawned per run()/map() call and joined before it
// returns — there is no persistent pool, so a BatchRunner is cheap to
// construct and carries no state beyond its job count. Every run owns its Simulator and Rng, and every Scenario carries a
// seed assigned BEFORE the batch is launched (see replicate() and the sweep
// generators in scenario_registry.hpp), so per-run results are bit-identical
// regardless of how many workers the pool has — --jobs only changes
// wall-clock time, never numbers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <map>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "stats/online.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

namespace ebrc::testbed {

/// Expands `base` into `reps` replications whose seeds are derived
/// deterministically from `root_seed` and the replication index (not from the
/// scenario's own seed field, which is overwritten).
[[nodiscard]] std::vector<Scenario> replicate(const Scenario& base, std::uint64_t root_seed,
                                              int reps);

/// Per-metric summary of a batch: mean/stddev/CI across runs via
/// stats::OnlineMoments. Metric keys are the ExperimentResult aggregate names
/// ("tfrc_throughput", "friendliness", "conservativeness", ...).
struct BatchResult {
  std::size_t runs = 0;
  std::map<std::string, stats::OnlineMoments> metrics;

  /// Accumulator for `name`; throws std::out_of_range with the known keys
  /// listed when the metric was never recorded.
  [[nodiscard]] const stats::OnlineMoments& metric(const std::string& name) const;
  [[nodiscard]] double mean(const std::string& name) const { return metric(name).mean(); }
  /// 95% normal-approximation half-width on the mean of `name`.
  [[nodiscard]] double ci(const std::string& name) const {
    return metric(name).ci_halfwidth();
  }
};

/// Folds the per-run aggregates (and four-way breakdown) of `runs` into one
/// BatchResult. Runs with a zero metric still contribute zeros — callers that
/// want "valid runs only" should filter first.
[[nodiscard]] BatchResult aggregate(const std::vector<ExperimentResult>& runs);

/// Bounded parallel executor over self-contained simulation runs; at most
/// `jobs` worker threads live at a time, spawned per call.
class BatchRunner {
 public:
  /// `jobs` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit BatchRunner(std::size_t jobs = 0);

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Runs every scenario through run_experiment(); results in input order.
  [[nodiscard]] std::vector<ExperimentResult> run(const std::vector<Scenario>& scenarios) const;

  /// run() followed by aggregate().
  [[nodiscard]] BatchResult run_aggregate(const std::vector<Scenario>& scenarios) const;

  /// Deterministic parallel map: evaluates fn(i) for i in [0, n) across the
  /// pool and returns the results in index order. fn must be self-contained
  /// (its own Simulator/Rng/loss process) — it runs concurrently with other
  /// indices. The first exception thrown by any fn is rethrown here after
  /// all workers have stopped. The callable is taken as a template (invoked
  /// through one function pointer + context pointer in the driver), so no
  /// std::function sits on the per-run dispatch path.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(std::size_t n, Fn&& fn) const {
    static_assert(std::is_invocable_r_v<T, Fn&, std::size_t>);
    std::vector<T> out(n);
    auto body = [&](std::size_t i) { out[i] = fn(i); };
    dispatch(
        n,
        [](void* ctx, std::size_t i) { (*static_cast<decltype(body)*>(ctx))(i); },
        &body);
    return out;
  }

 private:
  /// Shared work-queue driver behind run() and map(): claims indices off an
  /// atomic counter and invokes `invoke(ctx, i)` on the worker team.
  void dispatch(std::size_t n, void (*invoke)(void*, std::size_t), void* ctx) const;

  std::size_t jobs_;
};

}  // namespace ebrc::testbed
