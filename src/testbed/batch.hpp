// Batch execution engine: fans a vector of scenarios (scenarios × seeds) out
// across a bounded team of worker threads and aggregates the per-run
// metrics. Workers are spawned per run()/map() call and joined before it
// returns — there is no persistent pool, so a BatchRunner is cheap to
// construct and carries no state beyond its job count. Every run owns its Simulator and Rng, and every Scenario carries a
// seed assigned BEFORE the batch is launched (see replicate() and the sweep
// generators in scenario_registry.hpp), so per-run results are bit-identical
// regardless of how many workers the pool has — --jobs only changes
// wall-clock time, never numbers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "stats/online.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"
#include "testbed/supervisor.hpp"

namespace ebrc::obs {
class TraceWriter;
}

namespace ebrc::testbed {

class ResultStore;

/// One process's slice of a sweep: this process owns batch indices i with
/// i % count == index (interleaved, so every shard gets a balanced mix of
/// cheap and expensive grid cells). count == 1 is the whole sweep.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  ShardSpec() = default;
  /// Throws std::invalid_argument unless index < count and count >= 1.
  ShardSpec(std::size_t index, std::size_t count);

  [[nodiscard]] bool owns(std::size_t i) const noexcept { return i % count == index; }
  [[nodiscard]] bool whole() const noexcept { return count == 1; }
};

/// One cell that exhausted its attempts: everything needed to name, triage,
/// and re-run it — the failure manifest is a list of these.
struct CellFailure {
  std::size_t index = 0;      // position in the batch
  std::string scenario;       // cell's scenario name
  std::uint64_t seed = 0;     // derived per-replication seed
  std::size_t shard = 0;      // shard index that owned the cell
  int attempts = 0;           // total attempts made (1 = no retries)
  bool timed_out = false;     // final attempt tripped the cell deadline
  bool crashed = false;       // final attempt's worker died on a signal
  int signal = 0;             // the terminating signal when crashed/killed
  double elapsed_s = 0.0;     // wall-clock of the final attempt
  long max_rss_kb = 0;        // worker peak RSS (process isolation only)
  std::string what;           // exception what() or the supervisor diagnostic
};

/// How run() treats a failing cell. The default is the historical behavior:
/// fail fast, no retries, no deadline — the first failing cell aborts the
/// sweep (with the cell named in the rethrown error). keep_going instead
/// isolates failures: every healthy cell completes, failed cells are
/// captured as CellFailures in the SweepReport, and an attached store makes
/// a re-run simulate only the missing/failed cells, bit-identical to a
/// clean cold run (seeds are never perturbed by retries or resumption).
struct RunPolicy {
  bool keep_going = false;
  int max_retries = 0;        // extra attempts per failing cell, same seed
  double cell_deadline_s = 0;  // > 0: wall-clock budget per attempt
  double backoff_base_s = 0;  // sleep base*2^k before retry k+1 (0 = none)

  /// kProcess runs every simulated attempt in a forked, supervised worker
  /// subprocess: a SIGSEGV/OOM-killed/wedged cell becomes a retryable
  /// CellFailure instead of taking the sweep down, and cell_deadline_s is
  /// enforced with a hard SIGKILL rather than the cooperative in-process
  /// poll. Results cross back bit-exactly (encoded double bit patterns), so
  /// isolation never changes numbers. Cache probes stay in-process either
  /// way — a warm sweep forks nothing.
  IsolationMode isolate = IsolationMode::kInProcess;
  /// When non-empty, each crashed/killed cell leaves a repro bundle under
  /// <crash_dir>/cell-<index>/ (scenario TOML with the derived seed, the
  /// worker's stderr tail, exit status, and the sweep invocation).
  std::string crash_dir;
  /// The driver's command line, verbatim, for the repro bundle.
  std::string invocation;
  /// Optional JSONL telemetry sink (not owned; must outlive run()).
  SweepEventFeed* events = nullptr;

  // --- observability (PR 10) ----------------------------------------------
  /// > 0: every simulated cell gets an obs::Probe sampling its registered
  /// gauges at this sim-time interval (series surface via
  /// ExperimentResult::obs_series on freshly simulated cells; cache hits
  /// have no simulator to sample and carry none).
  double probe_interval_s = 0.0;
  /// Ring capacity per probed series.
  std::size_t probe_capacity = 4096;
  /// Optional sweep-wide chrome://tracing sink (not owned; must outlive
  /// run()). In-process cells absorb their full trace (transfer spans, drop
  /// instants, probe counter tracks) as they finish; process-isolated cells
  /// contribute only their attempt span — the worker's buffer dies with the
  /// worker's address space.
  obs::TraceWriter* trace = nullptr;
  /// Process-isolated attempts arm an obs::FlightRecorder automatically
  /// whenever crash_dir is set; a crashed/killed cell's bundle then contains
  /// flight_recorder.txt with the kernel's last executed events.
};

/// What a (possibly cached, possibly sharded) batch run actually did.
/// complete() means every result slot is populated — either freshly
/// simulated or loaded bit-identical from the store — so downstream
/// aggregation and table printing are meaningful.
struct SweepReport {
  std::size_t total = 0;
  std::size_t hits = 0;       // loaded from the store
  std::size_t simulated = 0;  // run here (and stored, when a store is attached)
  std::size_t skipped = 0;    // cache misses owned by other shards
  std::size_t failed = 0;     // cells that exhausted their attempts (keep_going)
  std::size_t retried = 0;    // extra attempts consumed across all cells
  std::size_t timed_out = 0;  // failed cells whose last attempt hit the deadline
  std::size_t crashed = 0;    // failed cells whose last attempt died on a signal
  std::size_t quarantined = 0;  // corrupt cache entries moved to *.corrupt
  std::vector<std::uint8_t> available;  // per-index: result slot populated
  std::vector<CellFailure> failures;    // index-ordered, one per failed cell

  [[nodiscard]] bool complete() const noexcept { return hits + simulated == total; }
};

/// Expands `base` into `reps` replications whose seeds are derived
/// deterministically from `root_seed` and the replication index (not from the
/// scenario's own seed field, which is overwritten).
[[nodiscard]] std::vector<Scenario> replicate(const Scenario& base, std::uint64_t root_seed,
                                              int reps);

/// A variance-reduction pairing of two configurations: a[i] and b[i] carry
/// the SAME derived seed, so every stochastic component that hashes its name
/// off the scenario seed draws common random numbers in both runs and their
/// metric difference cancels the shared sampling noise.
struct PairedBatch {
  std::vector<Scenario> a;
  std::vector<Scenario> b;
};

/// Expands the (a, b) contrast into `reps` common-random-number pairs. Seeds
/// derive from (root_seed, pair_tag, rep) — NOT from either scenario's name,
/// so renaming one arm never silently unpairs the contrast. The scenarios'
/// fingerprints still differ (name + differing fields), so a shared result
/// cache keeps the two arms' entries apart.
[[nodiscard]] PairedBatch replicate_paired(const Scenario& a, const Scenario& b,
                                           const std::string& pair_tag,
                                           std::uint64_t root_seed, int reps);

/// Per-metric summary of a batch: mean/stddev/CI across runs via
/// stats::OnlineMoments. Metric keys are the ExperimentResult aggregate names
/// ("tfrc_throughput", "friendliness", "conservativeness", ...).
struct BatchResult {
  std::size_t runs = 0;
  std::map<std::string, stats::OnlineMoments> metrics;

  /// Accumulator for `name`; throws std::out_of_range with the known keys
  /// listed when the metric was never recorded.
  [[nodiscard]] const stats::OnlineMoments& metric(const std::string& name) const;
  [[nodiscard]] double mean(const std::string& name) const { return metric(name).mean(); }
  /// 95% normal-approximation half-width on the mean of `name`.
  [[nodiscard]] double ci(const std::string& name) const {
    return metric(name).ci_halfwidth();
  }
};

/// Folds the per-run aggregates (and four-way breakdown) of `runs` into one
/// BatchResult. Runs with a zero metric still contribute zeros — callers that
/// want "valid runs only" should filter first.
[[nodiscard]] BatchResult aggregate(const std::vector<ExperimentResult>& runs);

/// Paired-difference fold over CRN-paired runs: for every metric common to
/// both arms, metric(name) accumulates (a[i] − b[i]) across pairs, so
/// mean(name) is the paired-difference estimate and ci(name) its 95%
/// half-width — typically far tighter than differencing two independent
/// CIs when the arms share seeds (replicate_paired). Requires equal sizes.
[[nodiscard]] BatchResult paired_difference(const std::vector<ExperimentResult>& a,
                                            const std::vector<ExperimentResult>& b);

/// Bounded parallel executor over self-contained simulation runs; at most
/// `jobs` worker threads live at a time, spawned per call.
class BatchRunner {
 public:
  /// `jobs` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit BatchRunner(std::size_t jobs = 0);

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Runs every scenario through run_experiment(); results in input order.
  /// A throwing cell aborts the run with the cell's name and seed wrapped
  /// into the rethrown error.
  [[nodiscard]] std::vector<ExperimentResult> run(const std::vector<Scenario>& scenarios) const;

  /// The sweep-persistence entry point: consults `store` (may be null) before
  /// simulating, simulates only the cache-missing indices owned by `shard`,
  /// and persists what it simulated. Results come back in input order;
  /// indices that were neither cached nor owned stay default-constructed
  /// (report->available tells them apart). Cache hits are bit-identical to
  /// the simulation they stand in for, so a warm-cache run reproduces a cold
  /// run exactly while performing zero simulations.
  ///
  /// `policy` governs failing cells (see RunPolicy): fail fast by default;
  /// under keep_going a failed cell is recorded in report->failures and the
  /// rest of the sweep completes. The per-attempt deadline is cooperative
  /// in-process — polled inside the simulator event loop every 64k events,
  /// so a runaway cell times out mid-run — and a hard SIGKILL under
  /// policy.isolate = kProcess. Either way a timed-out cell is excluded
  /// from results and the store, exactly as if it had thrown.
  [[nodiscard]] std::vector<ExperimentResult> run(const std::vector<Scenario>& scenarios,
                                                  const ResultStore* store,
                                                  ShardSpec shard = {},
                                                  SweepReport* report = nullptr,
                                                  const RunPolicy& policy = {}) const;

  /// run() followed by aggregate().
  [[nodiscard]] BatchResult run_aggregate(const std::vector<Scenario>& scenarios) const;

  /// Deterministic parallel map: evaluates fn(i) for i in [0, n) across the
  /// pool and returns the results in index order. fn must be self-contained
  /// (its own Simulator/Rng/loss process) — it runs concurrently with other
  /// indices. The first exception thrown by any fn is rethrown here after
  /// all workers have stopped. The callable is taken as a template (invoked
  /// through one function pointer + context pointer in the driver), so no
  /// std::function sits on the per-run dispatch path.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(std::size_t n, Fn&& fn) const {
    static_assert(std::is_invocable_r_v<T, Fn&, std::size_t>);
    std::vector<T> out(n);
    auto body = [&](std::size_t i) { out[i] = fn(i); };
    dispatch(
        n,
        [](void* ctx, std::size_t i) { (*static_cast<decltype(body)*>(ctx))(i); },
        &body);
    return out;
  }

 private:
  /// Shared work-queue driver behind run() and map(): claims indices off an
  /// atomic counter and invokes `invoke(ctx, i)` on the worker team.
  void dispatch(std::size_t n, void (*invoke)(void*, std::size_t), void* ctx) const;

  std::size_t jobs_;
};

// ---- sweep summaries across processes ---------------------------------------

/// Folds per-shard summaries into one via stats::OnlineMoments::merge
/// (count/min/max exact; mean/variance agree with the unsharded aggregate up
/// to floating-point rounding). For BIT-identical merged sweeps, shard
/// through a shared ResultStore and re-run the sweep unsharded against the
/// warm cache instead: aggregate() then folds the same per-run results in
/// the same order as a from-scratch run.
[[nodiscard]] BatchResult merge_batch_results(const std::vector<BatchResult>& parts);

/// Text round-trip for BatchResult summary files (one "metric <name> <count>
/// <mean> <m2> <min> <max>" line per metric; doubles in std::to_chars
/// shortest form, so values survive exactly). load throws
/// std::runtime_error/std::invalid_argument on unreadable or malformed files.
void save_batch_result(const BatchResult& result, const std::filesystem::path& path);
[[nodiscard]] BatchResult load_batch_result(const std::filesystem::path& path);

/// Text round-trip for the failure manifest a keep_going sweep writes next
/// to --summary-out (one "cell <index> seed <seed> shard <shard> attempts
/// <n> timed_out <0|1> crashed <0|1> signal <n> elapsed_s <s> scenario
/// <name> what <message...>" line per failure; whitespace and control
/// characters in scenario names are sanitized to '_', the message keeps the
/// rest of the line with newlines flattened). load throws on unreadable or
/// malformed files.
void save_failure_manifest(const std::vector<CellFailure>& failures,
                           const std::filesystem::path& path);
[[nodiscard]] std::vector<CellFailure> load_failure_manifest(const std::filesystem::path& path);

}  // namespace ebrc::testbed
