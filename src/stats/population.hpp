// Dynamic flow-population telemetry.
//
// Under flow churn the paper's per-flow, whole-run statistics stop being the
// right primitives: the population itself is a stochastic process. This
// tracker turns open/close/reject notifications from the workload layer into
// the long-run quantities the churn experiments report — the time-averaged
// number of concurrent flows per traffic class (a TimeWeightedAverage over
// the piecewise-constant population signal), the peak population, arrival /
// completion / rejection counts, and per-class moments of the completion
// time and transfer size (whose CoV is how heavy-tailed sizes show up).
//
// begin_epoch(t) restarts every windowed statistic at t without touching the
// instantaneous population — the same warm-up truncation the experiment
// runner applies to its other metrics.
#pragma once

#include <array>
#include <cstdint>

#include "stats/online.hpp"
#include "stats/time_average.hpp"

namespace ebrc::stats {

class PopulationTracker {
 public:
  /// Traffic classes tracked separately (the workload layer's FlowClass:
  /// 0 = TFRC, 1 = TCP, 2 = delay-AIMD, 3 = RCP).
  static constexpr int kClasses = 4;

  /// A flow of class `cls` became active at time `t`.
  void on_open(double t, int cls);

  /// An arrival of class `cls` was turned away (pool full) at time `t`.
  void on_reject(double t, int cls);

  /// A flow of class `cls` retired at `t` after `duration_s` seconds,
  /// having carried a transfer of `size_pkts` packets.
  void on_close(double t, int cls, double duration_s, double size_pkts);

  /// Restarts the windowed statistics (time averages, counters, completion
  /// moments) at `t`; the current population carries over.
  void begin_epoch(double t);

  /// Closes the time-average window at `t` (call once, at the end of the
  /// measurement window, before reading the averages).
  void finish(double t);

  // --- instantaneous ---------------------------------------------------
  [[nodiscard]] int active(int cls) const { return active_.at(static_cast<std::size_t>(cls)); }
  [[nodiscard]] int active_total() const noexcept;
  /// Largest concurrent population ever seen (not reset by begin_epoch —
  /// peaks during warm-up count; churn ramps up from an empty system).
  [[nodiscard]] std::uint64_t peak() const noexcept { return peak_; }

  /// Cumulative per-class open/close totals since construction. NOT reset by
  /// begin_epoch — these back the obs layer's monotone counters, which want
  /// whole-run totals, not the warm-up-truncated window.
  [[nodiscard]] std::uint64_t class_opens(int cls) const {
    return class_opens_.at(static_cast<std::size_t>(cls));
  }
  [[nodiscard]] std::uint64_t class_closes(int cls) const {
    return class_closes_.at(static_cast<std::size_t>(cls));
  }

  // --- windowed --------------------------------------------------------
  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] std::uint64_t completions() const noexcept { return completions_; }
  [[nodiscard]] std::uint64_t rejections() const noexcept { return rejections_; }
  /// Time-averaged concurrent flows of `cls` over the epoch.
  [[nodiscard]] double mean_flows(int cls) const {
    return flows_avg_.at(static_cast<std::size_t>(cls)).average();
  }
  [[nodiscard]] double mean_flows_total() const noexcept { return total_avg_.average(); }
  /// Completion-time moments (seconds) of transfers that FINISHED in the
  /// epoch, including ones opened before it (long-run view).
  [[nodiscard]] const OnlineMoments& completion_time(int cls) const {
    return completion_s_.at(static_cast<std::size_t>(cls));
  }
  /// Size moments (packets) of transfers that finished in the epoch.
  [[nodiscard]] const OnlineMoments& completion_size(int cls) const {
    return completion_pkts_.at(static_cast<std::size_t>(cls));
  }

 private:
  void set_population(double t);

  std::array<int, kClasses> active_{};
  std::array<std::uint64_t, kClasses> class_opens_{};
  std::array<std::uint64_t, kClasses> class_closes_{};
  std::uint64_t peak_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t rejections_ = 0;
  std::array<TimeWeightedAverage, kClasses> flows_avg_{};
  TimeWeightedAverage total_avg_{};
  std::array<OnlineMoments, kClasses> completion_s_{};
  std::array<OnlineMoments, kClasses> completion_pkts_{};
};

}  // namespace ebrc::stats
