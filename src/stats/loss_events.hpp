// Loss-event instrumentation shared by every sender in the testbed.
//
// Following TFRC (and the paper's measurement methodology), packet losses
// that occur within one round-trip time of the start of a loss event belong
// to that same event. The recorder turns a raw (packet-sent, packet-lost)
// stream into:
//   * the loss-event count and the loss-event rate p = events / packets,
//   * the loss-event intervals theta_n (packets between successive events),
//   * the inter-event times S_n (seconds), and
//   * the send rate X_n sampled at each event (when provided by the caller).
//
// Using one recorder type for TCP, TFRC, and probe senders removes the
// measurement asymmetry the paper had to bridge with tcpdump post-processing.
#pragma once

#include <cstdint>
#include <vector>

namespace ebrc::stats {

class LossEventRecorder {
 public:
  /// `rtt_window`: losses within this many seconds of the event start are
  /// merged into the event (use the connection's smoothed RTT).
  explicit LossEventRecorder(double rtt_window, bool store_series = true);

  /// Updates the merge window as the RTT estimate evolves.
  void set_rtt_window(double rtt_window) noexcept { rtt_window_ = rtt_window; }

  /// Counts one sent (or arrived — pick one convention per experiment) packet.
  void on_packet(double t) noexcept;

  /// Reports a detected loss at time `t`. Returns true when this loss opened
  /// a NEW loss event.
  bool on_loss(double t);

  /// Reports the sender's (new) send rate. Call it right after reacting to a
  /// loss event so the recorded X_n is the paper's "rate set at the nth
  /// loss-event"; calling it at other times keeps the current-rate shadow
  /// fresh for senders whose rate drifts between events.
  void note_rate(double rate) noexcept;

  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_; }
  [[nodiscard]] std::uint64_t losses() const noexcept { return losses_; }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

  /// Loss-event rate p = events / packets (Eq. 1's empirical counterpart);
  /// 0 before any packet.
  [[nodiscard]] double loss_event_rate() const noexcept;

  /// Mean loss-event interval in packets (1/p).
  [[nodiscard]] double mean_interval() const noexcept;

  /// Completed loss-event intervals theta_n in packets (needs store_series).
  [[nodiscard]] const std::vector<double>& intervals_packets() const noexcept {
    return theta_;
  }
  /// Completed inter-event durations S_n in seconds.
  [[nodiscard]] const std::vector<double>& intervals_seconds() const noexcept {
    return s_;
  }
  /// Send rate X_n at the start of interval n (parallel to intervals_*).
  [[nodiscard]] const std::vector<double>& rates_at_event() const noexcept { return x_; }

  /// Packets sent since the current (open) loss event started.
  [[nodiscard]] std::uint64_t open_interval_packets() const noexcept {
    return packets_since_event_;
  }
  /// Time of the most recent loss-event start; negative before any event.
  [[nodiscard]] double last_event_time() const noexcept { return last_event_t_; }

 private:
  double rtt_window_;
  bool store_series_;
  std::uint64_t packets_ = 0;
  std::uint64_t losses_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t packets_since_event_ = 0;
  std::uint64_t packets_at_first_event_ = 0;
  double last_event_t_ = -1.0;
  bool have_event_ = false;
  bool awaiting_rate_ = false;
  double rate_at_interval_start_ = 0.0;
  double current_rate_ = 0.0;
  std::vector<double> theta_;
  std::vector<double> s_;
  std::vector<double> x_;
};

}  // namespace ebrc::stats
