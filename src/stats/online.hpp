// Online (single-pass, numerically stable) moment estimators.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ebrc::stats {

/// Welford mean/variance accumulator.
class OnlineMoments {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation stddev/mean; 0 when mean is 0.
  [[nodiscard]] double cv() const noexcept;
  /// Standard error of the mean stddev/sqrt(n); 0 when fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  /// Half-width of the normal-approximation confidence interval on the mean;
  /// z = 1.96 gives the usual 95% interval. 0 when fewer than two samples.
  [[nodiscard]] double ci_halfwidth(double z = 1.96) const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator (parallel Welford combine). Exact on count,
  /// min, and max; mean and M2 are mathematically order-independent but may
  /// differ from sequential add() by floating-point rounding — tools that
  /// need bit-identical sweep summaries re-aggregate from per-run results
  /// (see testbed::merge_batch_results' doc comment).
  void merge(const OnlineMoments& other) noexcept;

  /// Sum of squared deviations (the raw Welford M2 state).
  [[nodiscard]] double m2() const noexcept { return m2_; }

  /// Rehydrates an accumulator from persisted state (testbed batch-summary
  /// files). Inverse of reading {count, mean, m2, min, max}.
  [[nodiscard]] static OnlineMoments from_state(std::uint64_t n, double mean, double m2,
                                                double min, double max) noexcept {
    OnlineMoments m;
    m.n_ = n;
    m.mean_ = mean;
    m.m2_ = m2;
    m.min_ = min;
    m.max_ = max;
    return m;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Online covariance of paired samples (x, y).
class OnlineCovariance {
 public:
  void add(double x, double y) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean_x() const noexcept { return mx_; }
  [[nodiscard]] double mean_y() const noexcept { return my_; }
  /// Unbiased sample covariance; 0 when fewer than two samples.
  [[nodiscard]] double covariance() const noexcept;
  /// Pearson correlation; 0 when either variance vanishes.
  [[nodiscard]] double correlation() const noexcept;
  [[nodiscard]] double variance_x() const noexcept;
  [[nodiscard]] double variance_y() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mx_ = 0.0, my_ = 0.0;
  double cxy_ = 0.0, mx2_ = 0.0, my2_ = 0.0;
};

}  // namespace ebrc::stats
