#include "stats/time_average.hpp"

// Header-only implementation; this translation unit exists so the target has
// a concrete archive member and the header stays self-contained under ODR.
