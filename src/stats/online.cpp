#include "stats/online.hpp"

#include <algorithm>
#include <cmath>

namespace ebrc::stats {

void OnlineMoments::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double OnlineMoments::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineMoments::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineMoments::cv() const noexcept {
  return mean_ == 0.0 ? 0.0 : stddev() / mean_;
}

double OnlineMoments::stderr_mean() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineMoments::ci_halfwidth(double z) const noexcept { return z * stderr_mean(); }

void OnlineMoments::merge(const OnlineMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double d = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += d * nb / n;
  m2_ += other.m2_ + d * d * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void OnlineCovariance::add(double x, double y) noexcept {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mx_;
  const double dy = y - my_;
  mx_ += dx / n;
  my_ += dy / n;
  cxy_ += dx * (y - my_);
  mx2_ += dx * (x - mx_);
  my2_ += dy * (y - my_);
}

double OnlineCovariance::covariance() const noexcept {
  return n_ < 2 ? 0.0 : cxy_ / static_cast<double>(n_ - 1);
}

double OnlineCovariance::variance_x() const noexcept {
  return n_ < 2 ? 0.0 : mx2_ / static_cast<double>(n_ - 1);
}

double OnlineCovariance::variance_y() const noexcept {
  return n_ < 2 ? 0.0 : my2_ / static_cast<double>(n_ - 1);
}

double OnlineCovariance::correlation() const noexcept {
  const double vx = variance_x();
  const double vy = variance_y();
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return covariance() / std::sqrt(vx * vy);
}

}  // namespace ebrc::stats
