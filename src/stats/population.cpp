#include "stats/population.hpp"

#include <stdexcept>

namespace ebrc::stats {

namespace {
void check_class(int cls) {
  if (cls < 0 || cls >= PopulationTracker::kClasses) {
    throw std::invalid_argument("PopulationTracker: class out of range");
  }
}
}  // namespace

int PopulationTracker::active_total() const noexcept {
  int n = 0;
  for (int a : active_) n += a;
  return n;
}

void PopulationTracker::set_population(double t) {
  for (std::size_t c = 0; c < flows_avg_.size(); ++c) {
    flows_avg_[c].set(t, static_cast<double>(active_[c]));
  }
  total_avg_.set(t, static_cast<double>(active_total()));
}

void PopulationTracker::on_open(double t, int cls) {
  check_class(cls);
  ++active_[static_cast<std::size_t>(cls)];
  ++class_opens_[static_cast<std::size_t>(cls)];
  ++arrivals_;
  const auto total = static_cast<std::uint64_t>(active_total());
  if (total > peak_) peak_ = total;
  set_population(t);
}

void PopulationTracker::on_reject(double t, int cls) {
  check_class(cls);
  ++rejections_;
  set_population(t);  // keeps the time average exact through idle stretches
}

void PopulationTracker::on_close(double t, int cls, double duration_s, double size_pkts) {
  check_class(cls);
  auto& n = active_[static_cast<std::size_t>(cls)];
  if (n <= 0) throw std::logic_error("PopulationTracker: close without open");
  --n;
  ++class_closes_[static_cast<std::size_t>(cls)];
  ++completions_;
  completion_s_[static_cast<std::size_t>(cls)].add(duration_s);
  completion_pkts_[static_cast<std::size_t>(cls)].add(size_pkts);
  set_population(t);
}

void PopulationTracker::begin_epoch(double t) {
  arrivals_ = 0;
  completions_ = 0;
  rejections_ = 0;
  for (std::size_t c = 0; c < flows_avg_.size(); ++c) {
    flows_avg_[c] = TimeWeightedAverage{};
    flows_avg_[c].start(t, static_cast<double>(active_[c]));
    completion_s_[c] = OnlineMoments{};
    completion_pkts_[c] = OnlineMoments{};
  }
  total_avg_ = TimeWeightedAverage{};
  total_avg_.start(t, static_cast<double>(active_total()));
}

void PopulationTracker::finish(double t) {
  for (auto& a : flows_avg_) {
    if (a.started()) a.finish(t);
  }
  if (total_avg_.started()) total_avg_.finish(t);
}

}  // namespace ebrc::stats
