// Time-weighted average of a piecewise-constant signal.
//
// The paper's central quantity is the long-run time average
//   x̄ = lim (1/t) ∫ X(s) ds = E[X(0)],
// which differs from the event (Palm) average E0_N[X(0)] taken at loss
// events. This accumulator computes the former; OnlineMoments over the
// per-event values computes the latter.
#pragma once

#include <stdexcept>

namespace ebrc::stats {

class TimeWeightedAverage {
 public:
  /// Starts the signal at `t0` with value `v0`.
  void start(double t0, double v0) noexcept {
    t_last_ = t0;
    value_ = v0;
    started_ = true;
  }

  /// Records that the signal changed to `v` at time `t` (t must not decrease).
  void set(double t, double v) {
    if (!started_) {
      start(t, v);
      return;
    }
    if (t < t_last_) throw std::invalid_argument("TimeWeightedAverage::set: time went backwards");
    integral_ += value_ * (t - t_last_);
    elapsed_ += t - t_last_;
    t_last_ = t;
    value_ = v;
  }

  /// Closes the observation window at `t` without changing the value.
  void finish(double t) { set(t, value_); }

  [[nodiscard]] double integral() const noexcept { return integral_; }
  [[nodiscard]] double elapsed() const noexcept { return elapsed_; }
  /// Time average over the observed window; 0 when no time has elapsed.
  [[nodiscard]] double average() const noexcept {
    return elapsed_ > 0.0 ? integral_ / elapsed_ : 0.0;
  }
  [[nodiscard]] double current_value() const noexcept { return value_; }
  [[nodiscard]] bool started() const noexcept { return started_; }

 private:
  bool started_ = false;
  double t_last_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
  double elapsed_ = 0.0;
};

}  // namespace ebrc::stats
