// Lagged autocovariance of a scalar series.
//
// Used to evaluate Eq. (11) of the paper: cov[theta_0, hat-theta_0] equals a
// weighted sum of the autocovariances of the loss-event intervals at lags
// 1..L.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "stats/online.hpp"

namespace ebrc::stats {

class LaggedAutocovariance {
 public:
  /// Tracks lags 1..max_lag (max_lag >= 1).
  explicit LaggedAutocovariance(std::size_t max_lag);

  /// Feeds the next sample of the series.
  void add(double x);

  /// Unbiased sample autocovariance at `lag` (1-based). 0 with < 2 pairs.
  [[nodiscard]] double at(std::size_t lag) const;

  /// Autocorrelation at `lag`.
  [[nodiscard]] double correlation_at(std::size_t lag) const;

  /// Weighted combination sum_l w[l-1] * at(l); evaluates Eq. (11) given the
  /// moving-average weights.
  [[nodiscard]] double weighted(const std::vector<double>& weights) const;

  [[nodiscard]] std::size_t max_lag() const noexcept { return lag_accum_.size(); }
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] const OnlineMoments& marginal() const noexcept { return marginal_; }

 private:
  std::deque<double> window_;  // most recent sample at back
  std::vector<OnlineCovariance> lag_accum_;
  OnlineMoments marginal_;
  std::uint64_t n_ = 0;
};

}  // namespace ebrc::stats
