#include "stats/autocovariance.hpp"

#include <stdexcept>

namespace ebrc::stats {

LaggedAutocovariance::LaggedAutocovariance(std::size_t max_lag) : lag_accum_(max_lag) {
  if (max_lag == 0) throw std::invalid_argument("LaggedAutocovariance: max_lag must be >= 1");
}

void LaggedAutocovariance::add(double x) {
  ++n_;
  marginal_.add(x);
  // Pair the new sample with each lagged predecessor currently in the window.
  for (std::size_t lag = 1; lag <= window_.size() && lag <= lag_accum_.size(); ++lag) {
    lag_accum_[lag - 1].add(window_[window_.size() - lag], x);
  }
  window_.push_back(x);
  if (window_.size() > lag_accum_.size()) window_.pop_front();
}

double LaggedAutocovariance::at(std::size_t lag) const {
  if (lag == 0 || lag > lag_accum_.size()) {
    throw std::out_of_range("LaggedAutocovariance::at: lag out of range");
  }
  return lag_accum_[lag - 1].covariance();
}

double LaggedAutocovariance::correlation_at(std::size_t lag) const {
  if (lag == 0 || lag > lag_accum_.size()) {
    throw std::out_of_range("LaggedAutocovariance::correlation_at: lag out of range");
  }
  return lag_accum_[lag - 1].correlation();
}

double LaggedAutocovariance::weighted(const std::vector<double>& weights) const {
  if (weights.size() > lag_accum_.size()) {
    throw std::invalid_argument("LaggedAutocovariance::weighted: more weights than tracked lags");
  }
  double s = 0.0;
  for (std::size_t l = 0; l < weights.size(); ++l) s += weights[l] * lag_accum_[l].covariance();
  return s;
}

}  // namespace ebrc::stats
