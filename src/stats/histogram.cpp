#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace ebrc::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // guards fp edge at hi
  ++counts_[idx];
}

double Histogram::center(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::center");
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width_;
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Histogram::quantile: q outside [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  const std::uint64_t peak = counts_.empty()
                                 ? 0
                                 : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : static_cast<std::size_t>(width * counts_[i] / peak);
    std::snprintf(line, sizeof(line), "%10.4g | ", center(i));
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof(line), " %llu\n", static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace ebrc::stats
