// Fixed-width histogram for distribution summaries in examples and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ebrc::stats {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal-width cells; out-of-range samples are
  /// counted in underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  /// Center of bin i.
  [[nodiscard]] double center(std::size_t i) const;
  /// Empirical quantile q in [0,1] (linear within the bin).
  [[nodiscard]] double quantile(double q) const;
  /// Multi-line ASCII rendering (for examples).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace ebrc::stats
