#include "stats/binned.hpp"

#include <cmath>
#include <stdexcept>

namespace ebrc::stats {

double t_quantile_975(std::size_t df) noexcept {
  // Table of the two-sided 95% Student-t quantiles; beyond 30 df the normal
  // quantile is accurate to < 2%.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

BinnedSeries::BinnedSeries(double t_begin, double t_end, std::size_t bins)
    : t_begin_(t_begin), t_end_(t_end), bins_(bins) {
  if (bins == 0) throw std::invalid_argument("BinnedSeries: need at least one bin");
  if (!(t_end > t_begin)) throw std::invalid_argument("BinnedSeries: empty time window");
}

void BinnedSeries::add(double t, double x) {
  if (t < t_begin_ || t >= t_end_) return;
  const double frac = (t - t_begin_) / (t_end_ - t_begin_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(bins_.size()));
  if (idx >= bins_.size()) idx = bins_.size() - 1;
  bins_[idx].add(x);
}

std::vector<double> BinnedSeries::bin_means() const {
  std::vector<double> means;
  means.reserve(bins_.size());
  for (const auto& b : bins_) {
    if (b.count() > 0) means.push_back(b.mean());
  }
  return means;
}

Estimate BinnedSeries::estimate() const { return estimate_from(bin_means()); }

Estimate estimate_from(const std::vector<double>& values) {
  Estimate e;
  e.bins = values.size();
  if (values.empty()) return e;
  OnlineMoments m;
  for (double v : values) m.add(v);
  e.mean = m.mean();
  if (values.size() >= 2) {
    const double sem = m.stddev() / std::sqrt(static_cast<double>(values.size()));
    e.half_width = t_quantile_975(values.size() - 1) * sem;
  }
  return e;
}

}  // namespace ebrc::stats
