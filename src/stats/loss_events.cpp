#include "stats/loss_events.hpp"

namespace ebrc::stats {

LossEventRecorder::LossEventRecorder(double rtt_window, bool store_series)
    : rtt_window_(rtt_window), store_series_(store_series) {}

void LossEventRecorder::on_packet(double /*t*/) noexcept {
  ++packets_;
  ++packets_since_event_;
}

bool LossEventRecorder::on_loss(double t) {
  ++losses_;
  if (have_event_ && t < last_event_t_ + rtt_window_) {
    return false;  // same loss event (within one RTT of its start)
  }
  if (have_event_) {
    // Close the previous interval; X_n is the rate set when it started.
    if (store_series_) {
      theta_.push_back(static_cast<double>(packets_since_event_));
      s_.push_back(t - last_event_t_);
      x_.push_back(rate_at_interval_start_);
    }
  } else {
    packets_at_first_event_ = packets_;
  }
  have_event_ = true;
  ++events_;
  last_event_t_ = t;
  packets_since_event_ = 0;
  awaiting_rate_ = true;
  // Until the sender reports its post-event rate, fall back to the last
  // known rate so probe senders (CBR/Poisson) still get meaningful X_n.
  rate_at_interval_start_ = current_rate_;
  return true;
}

void LossEventRecorder::note_rate(double rate) noexcept {
  current_rate_ = rate;
  if (awaiting_rate_) {
    rate_at_interval_start_ = rate;
    awaiting_rate_ = false;
  }
}

double LossEventRecorder::loss_event_rate() const noexcept {
  // Rate over the span covered by complete intervals: events that closed an
  // interval divided by packets sent between the first and last event.
  if (events_ < 2) return 0.0;
  const auto span_packets = packets_ - packets_at_first_event_ - packets_since_event_;
  if (span_packets == 0) return 0.0;
  return static_cast<double>(events_ - 1) / static_cast<double>(span_packets);
}

double LossEventRecorder::mean_interval() const noexcept {
  const double p = loss_event_rate();
  return p > 0.0 ? 1.0 / p : 0.0;
}

}  // namespace ebrc::stats
