// Binned long-run estimates with Student-t confidence intervals.
//
// Mirrors the paper's measurement methodology (Section V-A.3): discard a
// warm-up prefix, split the remainder into consecutive equal-duration bins,
// estimate the quantity per bin, and report the across-bin mean and a 95% CI.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/online.hpp"

namespace ebrc::stats {

/// 97.5% Student-t quantile for `df` degrees of freedom (two-sided 95% CI).
[[nodiscard]] double t_quantile_975(std::size_t df) noexcept;

struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  // 95% CI half width; 0 when < 2 bins
  std::size_t bins = 0;

  [[nodiscard]] double lo() const noexcept { return mean - half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + half_width; }
};

/// Accumulates scalar samples stamped with a time, assigns them to
/// equal-duration bins of [t_begin, t_end), and reports per-bin means plus
/// the across-bin estimate.
class BinnedSeries {
 public:
  BinnedSeries(double t_begin, double t_end, std::size_t bins);

  /// Adds a sample observed at time `t`; samples outside the window are
  /// dropped (e.g. warm-up).
  void add(double t, double x);

  [[nodiscard]] std::size_t bins() const noexcept { return bins_.size(); }
  [[nodiscard]] const OnlineMoments& bin(std::size_t i) const { return bins_.at(i); }
  /// Per-bin means for bins that received data.
  [[nodiscard]] std::vector<double> bin_means() const;
  /// Across-bin mean and 95% Student-t CI.
  [[nodiscard]] Estimate estimate() const;

 private:
  double t_begin_;
  double t_end_;
  std::vector<OnlineMoments> bins_;
};

/// Across-sample mean and 95% CI from raw replicate values (one value per
/// bin/replica), e.g. per-bin ratio estimates computed externally.
[[nodiscard]] Estimate estimate_from(const std::vector<double>& values);

}  // namespace ebrc::stats
