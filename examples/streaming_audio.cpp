// Streaming-audio scenario (Claim 2 / Figure 6): an adaptive audio source
// sends packets at a FIXED rate (one per 20 ms) and adapts its bit rate by
// changing packet sizes, through a link that drops packets independently of
// their size (RED in packet mode / a Bernoulli channel).
//
// Because the real-time spacing of loss events is then independent of the
// send rate, Theorem 2 applies with (C2c) at equality, and the choice of
// throughput formula decides the outcome:
//   * SQRT            -> always conservative,
//   * PFTK at high p  -> NON-conservative (the paper's surprising case).
//
// Build & run:  ./build/examples/streaming_audio [--p 0.2] [--seconds 2000]
#include <iostream>

#include "loss/droppers.hpp"
#include "model/throughput_function.hpp"
#include "sim/simulator.hpp"
#include "tfrc/variable_packet_sender.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ebrc;
  util::Cli cli(argc, argv);
  cli.know("p").know("seconds").know("L");
  cli.finish();
  const double p = cli.get("p", 0.20);
  const double seconds = cli.get("seconds", 2000.0);
  const auto L = static_cast<std::size_t>(cli.get("L", 4));

  std::cout << "Audio source: 50 packets/s, variable packet length, Bernoulli(p=" << p
            << ") channel, L=" << L << "\n\n";

  util::Table t({"formula", "loss-event rate", "mean rate", "f(p)", "x/f(p)", "verdict"});
  for (const char* name : {"sqrt", "pftk", "pftk-simplified"}) {
    sim::Simulator sim;
    loss::BernoulliDropper channel(p, /*seed=*/7);
    auto f = model::make_throughput_function(name, 1.0);
    tfrc::VariablePacketConfig cfg;
    cfg.packet_rate_pps = 50.0;
    cfg.history_length = L;
    // Claim 2 is stated for the basic control; the comprehensive control only
    // adds throughput on top (Proposition 2), so this is the conservative
    // reading of each formula.
    cfg.comprehensive = false;
    tfrc::VariablePacketSender audio(sim, channel, f, cfg);
    audio.start(0.0);
    sim.run_until(seconds * 0.1);
    audio.reset_measurement();  // warm-up
    sim.run_until(seconds);

    const double norm = audio.normalized_throughput();
    t.row({f->name(), util::fmt(audio.loss_event_rate(), 3), util::fmt(audio.mean_rate(), 4),
           util::fmt(f->rate(std::min(1.0, audio.loss_event_rate())), 4), util::fmt(norm, 4),
           norm > 1.0 ? "NON-conservative" : "conservative"});
  }
  t.print();

  std::cout << "\nWhat to look for: at p around 0.2 the PFTK rows exceed f(p) — the audio\n"
            << "source systematically sends FASTER than the formula it plugs its own loss\n"
            << "measurements into (Theorem 2, part 2). With --p 0.02 all rows turn\n"
            << "conservative: f(1/x) is concave in the rare-loss region.\n";
  return 0;
}
