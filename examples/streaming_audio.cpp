// Streaming-audio scenario (Claim 2 / Figure 6): an adaptive audio source
// sends packets at a FIXED rate (one per 20 ms) and adapts its bit rate by
// changing packet sizes, through a link that drops packets independently of
// their size (RED in packet mode / a Bernoulli channel).
//
// Because the real-time spacing of loss events is then independent of the
// send rate, Theorem 2 applies with (C2c) at equality, and the choice of
// throughput formula decides the outcome:
//   * SQRT            -> always conservative,
//   * PFTK at high p  -> NON-conservative (the paper's surprising case).
//
// Ported onto the batch engine: the (formula × rep) cells fan out through
// BatchRunner::map with per-cell seeds derived from --seed (numbers depend
// only on --seed, never on --jobs), and replications aggregate with a 95%
// CI like every figure driver.
//
// Build & run:  ./build/examples/streaming_audio [--p 0.2] [--seconds 2000]
//                 [--reps N] [--jobs N] [--seed N]
#include <iostream>
#include <string>
#include <vector>

#include "loss/droppers.hpp"
#include "model/throughput_function.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/online.hpp"
#include "testbed/batch.hpp"
#include "tfrc/variable_packet_sender.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct AudioCell {
  double loss_event_rate = 0.0;
  double mean_rate = 0.0;
  double normalized = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ebrc;
  util::Cli cli(argc, argv);
  cli.know("p").know("seconds").know("L").know("reps").know("jobs").know("seed");
  cli.finish();
  const double p = cli.get("p", 0.20);
  const double seconds = cli.get("seconds", 2000.0);
  const auto L = static_cast<std::size_t>(cli.get("L", 4));
  const int reps = cli.get("reps", 1);
  const auto jobs = static_cast<std::size_t>(cli.get("jobs", 0));
  const std::uint64_t seed = cli.get("seed", std::uint64_t{7});
  if (reps < 1) throw std::invalid_argument("--reps must be >= 1");

  std::cout << "Audio source: 50 packets/s, variable packet length, Bernoulli(p=" << p
            << ") channel, L=" << L << ", reps=" << reps << "\n\n";

  const std::vector<std::string> formulas{"sqrt", "pftk", "pftk-simplified"};

  // (formula × rep) cells through the batch engine, formula-major; each cell
  // is a self-contained simulator seeded from (--seed, formula, rep).
  const auto cells = testbed::BatchRunner(jobs).map<AudioCell>(
      formulas.size() * static_cast<std::size_t>(reps), [&](std::size_t idx) {
        const std::string& name = formulas[idx / static_cast<std::size_t>(reps)];
        const auto rep = idx % static_cast<std::size_t>(reps);
        sim::Simulator sim;
        loss::BernoulliDropper channel(
            p, sim::hash_seed(seed, "audio-" + name + "#rep" + std::to_string(rep)));
        auto f = model::make_throughput_function(name, 1.0);
        tfrc::VariablePacketConfig cfg;
        cfg.packet_rate_pps = 50.0;
        cfg.history_length = L;
        // Claim 2 is stated for the basic control; the comprehensive control
        // only adds throughput on top (Proposition 2), so this is the
        // conservative reading of each formula.
        cfg.comprehensive = false;
        tfrc::VariablePacketSender audio(sim, channel, f, cfg);
        audio.start(0.0);
        sim.run_until(seconds * 0.1);
        audio.reset_measurement();  // warm-up
        sim.run_until(seconds);
        return AudioCell{audio.loss_event_rate(), audio.mean_rate(),
                         audio.normalized_throughput()};
      });

  util::Table t(
      {"formula", "loss-event rate", "mean rate", "f(p)", "x/f(p)", "ci95", "verdict"});
  std::size_t idx = 0;
  for (const auto& name : formulas) {
    stats::OnlineMoments p_m, rate_m, norm_m;
    for (int rep = 0; rep < reps; ++rep) {
      const auto& c = cells[idx++];
      p_m.add(c.loss_event_rate);
      rate_m.add(c.mean_rate);
      norm_m.add(c.normalized);
    }
    const auto f = model::make_throughput_function(name, 1.0);
    t.row({f->name(), util::fmt(p_m.mean(), 3), util::fmt(rate_m.mean(), 4),
           util::fmt(f->rate(std::min(1.0, p_m.mean())), 4), util::fmt(norm_m.mean(), 4),
           util::fmt(norm_m.ci_halfwidth(), 3),
           norm_m.mean() > 1.0 ? "NON-conservative" : "conservative"});
  }
  t.print();

  std::cout << "\nWhat to look for: at p around 0.2 the PFTK rows exceed f(p) — the audio\n"
            << "source systematically sends FASTER than the formula it plugs its own loss\n"
            << "measurements into (Theorem 2, part 2). With --p 0.02 all rows turn\n"
            << "conservative: f(1/x) is concave in the rare-loss region.\n";
  return 0;
}
