// Loss-trace analysis: feed a measured sequence of loss-event intervals
// (one number per line: packets between successive loss events) and get the
// paper's diagnosis for a TFRC-like sender driven by that loss process:
//
//   * loss-event rate p and interval statistics,
//   * cov[theta_0, hat-theta_0] under the TFRC estimator (condition C1) and
//     the per-lag autocovariances behind it (Eq. 11),
//   * the Proposition-1 prediction of the normalized throughput, and
//   * the Theorem-1 / Proposition-4 bounds.
//
// With no file argument a demo trace is generated from a two-phase
// (congested / clear) loss process — the predictability scenario of
// Section III-B.2.
//
// Build & run:  ./build/examples/trace_analysis [trace.txt] [--L 8]
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/analyzer.hpp"
#include "core/conditions.hpp"
#include "core/estimator.hpp"
#include "core/weights.hpp"
#include "loss/markov_modulated.hpp"
#include "model/throughput_function.hpp"
#include "stats/autocovariance.hpp"
#include "stats/online.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

std::vector<double> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::vector<double> v;
  double x;
  while (in >> x) {
    if (x > 0) v.push_back(x);
  }
  return v;
}

std::vector<double> demo_trace() {
  // Two-phase network weather: long clear stretches, short congested bursts.
  auto proc = ebrc::loss::make_two_phase(/*good=*/120.0, /*bad=*/8.0,
                                         /*mean_sojourn_events=*/60.0, /*seed=*/17);
  std::vector<double> v;
  v.reserve(200000);
  for (int i = 0; i < 200000; ++i) v.push_back(proc.next());
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ebrc;
  util::Cli cli(argc, argv);
  cli.know("L").know("formula").know("rtt");
  cli.finish();
  const auto L = static_cast<std::size_t>(cli.get("L", 8));
  const double rtt = cli.get("rtt", 0.1);
  const std::string fname = cli.get("formula", std::string("pftk-simplified"));

  const bool demo = cli.positional().empty();
  const std::vector<double> trace = demo ? demo_trace() : load_trace(cli.positional()[0]);
  if (trace.size() < 10 * L) {
    std::cerr << "trace too short (" << trace.size() << " intervals)\n";
    return 1;
  }
  std::cout << (demo ? "Demo trace: two-phase congestion weather, " : "Trace: ")
            << trace.size() << " loss-event intervals\n\n";

  // Marginal statistics.
  stats::OnlineMoments m;
  stats::LaggedAutocovariance ac(L);
  for (double th : trace) {
    m.add(th);
    ac.add(th);
  }
  const double p = 1.0 / m.mean();
  util::Table stat({"metric", "value"});
  stat.row({std::string("loss-event rate p"), util::fmt(p, 4)});
  stat.row({std::string("mean interval (pkts)"), util::fmt(m.mean(), 5)});
  stat.row({std::string("interval cv (conventional)"), util::fmt(m.cv(), 4)});
  stat.print("Marginal statistics:");

  // Correlation structure: Eq. (11) decomposition of cov[theta, hat-theta].
  const auto weights = core::tfrc_weights(L);
  util::Table lagt({"lag l", "autocorrelation", "weight w_l", "contribution"});
  for (std::size_t l = 1; l <= L; ++l) {
    lagt.row({static_cast<double>(l), ac.correlation_at(l), weights[l - 1],
              weights[l - 1] * ac.at(l)});
  }
  lagt.print("\nEq. (11): cov[theta_0, hat-theta_0] = sum_l w_l cov[theta_0, theta_-l]:");

  const auto f = model::make_throughput_function(fname, rtt);
  const auto cov = core::check_covariance_conditions(*f, trace, weights);
  std::cout << "\n  cov[theta_0, hat-theta_0] = " << util::fmt(cov.cov_theta_thetahat, 4)
            << "  -> normalized cov*p^2 = "
            << util::fmt(cov.cov_theta_thetahat * util::sq(p), 4) << "\n"
            << "  condition (C1) cov <= 0:  " << (cov.C1 ? "HOLDS" : "VIOLATED") << "\n";

  // Proposition-1 prediction by replaying the trace through the control.
  core::MovingAverageEstimator est(weights);
  double sum_theta = 0, sum_s = 0;
  for (double th : trace) {
    if (est.history_size() >= L) {
      sum_theta += th;
      sum_s += th / f->rate_from_interval(est.value());
    }
    est.push(th);
  }
  const double normalized = (sum_theta / sum_s) / f->rate(std::min(1.0, p));
  std::cout << "\nProposition 1 replay (" << f->name() << ", r = " << rtt << " s):\n"
            << "  predicted normalized throughput x/f(p) = " << util::fmt(normalized, 4) << "\n"
            << "  Theorem-1 bound at the measured covariance: "
            << util::fmt(core::theorem1_bound(*f, std::min(1.0, p), cov.cov_theta_thetahat) /
                             f->rate(std::min(1.0, p)),
                         4)
            << "\n";

  if (!cov.C1 && normalized > 1.0) {
    std::cout << "\nDiagnosis: the loss process is PREDICTABLE (phases), (C1) fails, and\n"
              << "the control overshoots its formula — the Section III-B.2 scenario.\n";
  } else if (normalized <= 1.0) {
    std::cout << "\nDiagnosis: conservative under this trace. More estimator smoothing\n"
              << "(larger --L) would move x/f(p) towards 1.\n";
  }
  return 0;
}
